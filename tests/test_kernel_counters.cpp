// Exact work-counter accounting: the counters are the bench harnesses'
// machine-independent evidence, so their values are pinned here against
// closed-form expectations on clean (conflict-free) runs.
#include <gtest/gtest.h>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

#if defined(GCOL_COUNTERS)

eid_t vertex_round_edges(const BipartiteGraph& g) {
  // Alg. 4 over all vertices: every vertex scans all entries of all its
  // nets (including itself once per containing net).
  eid_t total = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (const vid_t v : g.nets(u)) total += g.net_degree(v);
  return total;
}

TEST(Counters, VertexColoringFirstRoundIsSumDegSquared) {
  PowerLawBipartiteParams p;
  p.rows = 60;
  p.cols = 200;
  p.min_deg = 2;
  p.max_deg = 30;
  p.seed = 9;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 1;  // conflict-free => exactly one coloring round
  const auto r = color_bgpc(g, opt);
  ASSERT_EQ(r.rounds, 1);
  EXPECT_EQ(r.iterations[0].color_counters.edges_visited,
            static_cast<std::uint64_t>(vertex_round_edges(g)));
  // Conflict removal also scans each vertex's full neighborhood (no
  // early exits on a conflict-free coloring).
  EXPECT_EQ(r.iterations[0].conflict_counters.edges_visited,
            static_cast<std::uint64_t>(vertex_round_edges(g)));
  EXPECT_EQ(r.iterations[0].conflict_counters.conflicts, 0u);
  // Isolated columns are pre-colored outside the kernels.
  std::uint64_t non_isolated = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    non_isolated += g.vertex_degree(u) > 0;
  EXPECT_EQ(r.iterations[0].color_counters.colored, non_isolated);
}

TEST(Counters, NetRoundsAreLinearInEdges) {
  const BipartiteGraph g = build_bipartite(gen_mesh2d(20, 20, 1));
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.num_threads = 1;
  const auto r = color_bgpc(g, opt);
  // Net coloring pass 1 visits every (net, vertex) incidence once.
  EXPECT_EQ(r.iterations[0].color_counters.edges_visited,
            static_cast<std::uint64_t>(g.num_edges()));
  // Net conflict removal likewise.
  EXPECT_EQ(r.iterations[0].conflict_counters.edges_visited,
            static_cast<std::uint64_t>(g.num_edges()));
}

TEST(Counters, SequentialMatchesSingleThreadVV) {
  const BipartiteGraph g = testing::disjoint_nets(7, 5);
  const auto seq = color_bgpc_sequential(g);
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 1;
  const auto par = color_bgpc(g, opt);
  EXPECT_EQ(seq.iterations[0].color_counters.edges_visited,
            par.iterations[0].color_counters.edges_visited);
  EXPECT_EQ(seq.iterations[0].color_counters.colored,
            par.iterations[0].color_counters.colored);
}

TEST(Counters, ProbesCountFirstFitScans) {
  // Single net of width k, sequential: vertex i probes i+1 colors.
  const BipartiteGraph g = testing::single_net(6);
  const auto r = color_bgpc_sequential(g);
  // 1 + 2 + ... + 6 = 21.
  EXPECT_EQ(r.iterations[0].color_counters.color_probes, 21u);
}

TEST(Counters, TotalsAggregateAcrossRounds) {
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(500, 200, 2, 30, 1.8, 3));
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.num_threads = 4;
  const auto r = color_bgpc(g, opt);
  KernelCounters sum;
  for (const auto& it : r.iterations) sum += it.color_counters;
  EXPECT_EQ(sum.edges_visited,
            r.total_color_counters().edges_visited);
  EXPECT_EQ(sum.color_probes, r.total_color_counters().color_probes);
  EXPECT_GT(r.total_color_counters().total_work(), 0u);
}

TEST(Counters, D2gcNetRoundLinear) {
  const Graph g = build_graph(gen_mesh2d(15, 15, 1));
  ColoringOptions opt = d2gc_preset("N1-N2");
  opt.num_threads = 1;
  const auto r = color_d2gc(g, opt);
  EXPECT_EQ(r.iterations[0].color_counters.edges_visited,
            static_cast<std::uint64_t>(g.num_adjacency_entries()));
}

#else
TEST(Counters, DisabledBuild) { GTEST_SKIP() << "GCOL_COUNTERS off"; }
#endif

}  // namespace
}  // namespace gcol
