#include "greedcolor/util/work_queue.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <vector>

namespace gcol {
namespace {

TEST(SharedWorkQueue, SequentialPushes) {
  SharedWorkQueue q(10);
  q.reset(10);
  for (vid_t v = 0; v < 5; ++v) q.push(v * 2);
  EXPECT_EQ(q.size(), 5u);
  std::vector<vid_t> out;
  q.swap_into(out);
  EXPECT_EQ(out, (std::vector<vid_t>{0, 2, 4, 6, 8}));
}

TEST(SharedWorkQueue, ConcurrentPushesLoseNothing) {
  constexpr int kN = 10000;
  SharedWorkQueue q;
  q.reset(kN);
#pragma omp parallel for num_threads(4)
  for (int i = 0; i < kN; ++i) q.push(static_cast<vid_t>(i));
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kN));
  std::vector<vid_t> out;
  q.swap_into(out);
  std::sort(out.begin(), out.end());
  for (int i = 0; i < kN; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(SharedWorkQueue, ResetReusesStorage) {
  SharedWorkQueue q(4);
  q.reset(4);
  q.push(1);
  q.reset(4);
  EXPECT_EQ(q.size(), 0u);
  q.push(9);
  std::vector<vid_t> out;
  q.swap_into(out);
  EXPECT_EQ(out, (std::vector<vid_t>{9}));
}

TEST(LocalWorkQueues, MergePreservesAllItems) {
  LocalWorkQueues q(3);
  q.begin_round();
  q.push(0, 1);
  q.push(1, 2);
  q.push(1, 3);
  q.push(2, 4);
  EXPECT_EQ(q.total_size(), 4u);
  std::vector<vid_t> out;
  q.merge_into(out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<vid_t>{1, 2, 3, 4}));
}

TEST(LocalWorkQueues, MergeConcatenatesByThread) {
  LocalWorkQueues q(2);
  q.begin_round();
  q.push(0, 10);
  q.push(0, 11);
  q.push(1, 20);
  std::vector<vid_t> out;
  q.merge_into(out);
  EXPECT_EQ(out, (std::vector<vid_t>{10, 11, 20}));
}

TEST(LocalWorkQueues, BeginRoundClears) {
  LocalWorkQueues q(2);
  q.begin_round();
  q.push(0, 5);
  q.begin_round();
  EXPECT_EQ(q.total_size(), 0u);
}

TEST(LocalWorkQueues, ConcurrentOwnerOnlyPushes) {
  const int threads = 4;
  LocalWorkQueues q(threads);
  q.begin_round();
#pragma omp parallel num_threads(threads)
  {
    const int tid = omp_get_thread_num();
    for (int i = 0; i < 1000; ++i)
      q.push(tid, static_cast<vid_t>(tid * 1000 + i));
  }
  // Oversubscribed single-core machines may run fewer threads; all
  // pushes from the threads that did run must survive.
  std::vector<vid_t> out;
  q.merge_into(out);
  EXPECT_EQ(out.size(), q.total_size());
  EXPECT_EQ(out.size() % 1000, 0u);
  EXPECT_GE(out.size(), 1000u);
}

}  // namespace
}  // namespace gcol
