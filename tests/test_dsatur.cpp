#include "greedcolor/core/dsatur.hpp"

#include <gtest/gtest.h>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d1gc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(DsaturBgpc, ValidOnSkewedInstance) {
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(1200, 500, 2, 60, 1.8, 21));
  const auto r = color_bgpc_dsatur(g);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  EXPECT_GE(r.num_colors, g.max_net_degree());
}

TEST(DsaturBgpc, NeverWorseThanNaturalOnTestSuite) {
  // DSATUR is a heuristic, not a guarantee, but on these fixed seeds it
  // should match or beat first-fit-natural — that is its reason to
  // exist. Deterministic, so no flake risk.
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const BipartiteGraph g =
        build_bipartite(gen_clique_union(900, 400, 2, 40, 1.7, seed));
    const auto dsatur = color_bgpc_dsatur(g);
    const auto natural = color_bgpc_sequential(g);
    EXPECT_TRUE(is_valid_bgpc(g, dsatur.colors));
    EXPECT_LE(dsatur.num_colors, natural.num_colors) << "seed " << seed;
  }
}

TEST(DsaturBgpc, ExactOnSingleNet) {
  const BipartiteGraph g = testing::single_net(12);
  const auto r = color_bgpc_dsatur(g);
  EXPECT_EQ(r.num_colors, 12);
}

TEST(DsaturBgpc, ReusesColorsAcrossDisjointNets) {
  const BipartiteGraph g = testing::disjoint_nets(8, 5);
  const auto r = color_bgpc_dsatur(g);
  EXPECT_EQ(r.num_colors, 5);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
}

TEST(DsaturBgpc, Deterministic) {
  PowerLawBipartiteParams p;
  p.rows = 100;
  p.cols = 300;
  p.min_deg = 2;
  p.max_deg = 40;
  p.seed = 5;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  EXPECT_EQ(color_bgpc_dsatur(g).colors, color_bgpc_dsatur(g).colors);
}

TEST(DsaturD1, OddCycleOptimal) {
  // Brélaz colors odd cycles with 3 and even cycles with 2 — exactly.
  EXPECT_EQ(color_d1gc_dsatur(build_graph(testing::cycle_coo(7)))
                .num_colors,
            3);
  EXPECT_EQ(color_d1gc_dsatur(build_graph(testing::cycle_coo(8)))
                .num_colors,
            2);
}

TEST(DsaturD1, CrownGraphShowcase) {
  // Crown graph S_n^0 (K_{n,n} minus a perfect matching): first-fit in
  // natural (alternating) order uses n colors; DSATUR finds the
  // bipartition and uses 2. The canonical separation example.
  constexpr vid_t kHalf = 6;
  Coo coo;
  coo.num_rows = coo.num_cols = 2 * kHalf;
  for (vid_t a = 0; a < kHalf; ++a)
    for (vid_t b = 0; b < kHalf; ++b) {
      if (a == b) continue;  // the removed matching
      coo.add(a, kHalf + b);
      coo.add(kHalf + b, a);
    }
  const Graph g = build_graph(std::move(coo));

  // Interleaved order 0, n, 1, n+1, ... is the adversarial one.
  std::vector<vid_t> interleaved;
  for (vid_t i = 0; i < kHalf; ++i) {
    interleaved.push_back(i);
    interleaved.push_back(kHalf + i);
  }
  const auto greedy = color_d1gc_sequential(g, interleaved);
  const auto dsatur = color_d1gc_dsatur(g);
  EXPECT_TRUE(is_valid_d1gc(g, dsatur.colors));
  EXPECT_EQ(greedy.num_colors, kHalf);  // greedy falls in the trap
  EXPECT_EQ(dsatur.num_colors, 2);      // DSATUR does not
}

TEST(DsaturD1, ValidOnIrregularGraph) {
  const Graph g = build_graph(gen_preferential_attachment(1500, 4, 9));
  const auto r = color_d1gc_dsatur(g);
  EXPECT_TRUE(is_valid_d1gc(g, r.colors));
  EXPECT_LE(r.num_colors, d1gc_color_bound(g));
}

TEST(Dsatur, EmptyAndIsolatedInputs) {
  Coo iso;
  iso.num_rows = iso.num_cols = 3;
  const Graph g = build_graph(std::move(iso));
  EXPECT_EQ(color_d1gc_dsatur(g).num_colors, 1);

  Coo one;
  one.num_rows = 1;
  one.num_cols = 3;
  one.add(0, 1);
  const BipartiteGraph bg = build_bipartite(std::move(one));
  const auto r = color_bgpc_dsatur(bg);
  EXPECT_TRUE(is_valid_bgpc(bg, r.colors));
}

}  // namespace
}  // namespace gcol
