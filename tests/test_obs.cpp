// gcol-trace / metrics / run-report tests: ring semantics (overflow
// drops oldest, counted), span nesting under a forced 1-thread run,
// Chrome-trace balance under multi-thread and adversarial input, shard
// tracks from the dist runtime, the MetricsRegistry adapters (every
// DistStats field surfaced — nothing print-path-only), and the
// gcol-report-v1 envelope. The GCOL_TRACE=OFF macro contract lives in
// test_obs_off.cpp.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/dist/dist_bgpc.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/obs/json.hpp"
#include "greedcolor/obs/metrics.hpp"
#include "greedcolor/obs/report.hpp"
#include "greedcolor/obs/trace.hpp"
#include "greedcolor/robust/verified.hpp"

namespace gcol::obs {
namespace {

BipartiteGraph small_graph() {
  return build_bipartite(gen_clique_union(600, 250, 2, 40, 1.8, 17));
}

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(TraceBuffer, OverflowDropsOldestAndCounts) {
  TraceBuffer ring;
  ring.reset(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    TraceEvent ev;
    ev.name = "x";
    ev.arg = i;
    ring.push(ev);
  }
  EXPECT_EQ(ring.pushed(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const auto survivors = ring.snapshot();
  ASSERT_EQ(survivors.size(), 8u);
  // Ring semantics: the tail survives, oldest first.
  for (std::size_t i = 0; i < survivors.size(); ++i)
    EXPECT_EQ(survivors[i].arg, 12 + i);
}

TEST(Tracer, RecordsClearsAndCountsDrops) {
  TracerOptions opts;
  opts.ring_capacity = 4;
  Tracer t(opts);
  for (int i = 0; i < 10; ++i) t.instant("tick", i);
  EXPECT_EQ(t.recorded(), 4u);  // survivors
  EXPECT_EQ(t.dropped(), 6u);
  MetricsRegistry m;
  m.record_tracer(t);
  EXPECT_EQ(m.value("trace.events"), 4u);
  EXPECT_EQ(m.value("trace.dropped"), 6u);
  EXPECT_GE(m.value("trace.threads"), 1u);
  t.clear();
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

// Spans from a forced single-thread run obey stack discipline and the
// taxonomy: every bgpc.color / bgpc.conflict span sits inside a
// bgpc.round span, and everything that begins ends.
TEST(Tracer, SpansNestUnderSingleThreadRun) {
  const BipartiteGraph g = small_graph();
  Tracer tracer;
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.num_threads = 1;
  opt.tracer = &tracer;
  const auto r = color_bgpc(g, opt);
  EXPECT_GT(r.num_colors, 0);

  int depth = 0;
  int rounds_open = 0;
  int color_spans = 0;
  int conflict_spans = 0;
  for (const TraceEvent& ev : tracer.events()) {
    const std::string name = ev.name;
    if (ev.phase == TraceEvent::Phase::kBegin) {
      if (name == "bgpc.round") ++rounds_open;
      if (name == "bgpc.color") {
        ++color_spans;
        EXPECT_EQ(rounds_open, 1) << "color span outside a round";
      }
      if (name == "bgpc.conflict") {
        ++conflict_spans;
        EXPECT_EQ(rounds_open, 1) << "conflict span outside a round";
      }
      ++depth;
    } else if (ev.phase == TraceEvent::Phase::kEnd) {
      --depth;
      EXPECT_GE(depth, 0) << "end without begin at " << name;
      if (name == "bgpc.round") --rounds_open;
    }
  }
  EXPECT_EQ(depth, 0) << "unbalanced spans";
  EXPECT_GE(color_spans, r.rounds);
  EXPECT_GE(conflict_spans, r.rounds);
}

TEST(Tracer, ChromeTraceBalancedUnderMultiThreadRun) {
  const BipartiteGraph g = small_graph();
  Tracer tracer;
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.num_threads = 4;
  opt.tracer = &tracer;
  (void)color_bgpc(g, opt);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("gcol-trace-chrome-v1"), std::string::npos);
  // The exporter's contract: balanced by construction.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"B\""),
            count_occurrences(json, "\"ph\": \"E\""));
  // Every engine event rides the engine pid.
  EXPECT_GT(count_occurrences(json, "\"pid\": 1"), 0u);
}

// Adversarial input: a begin that never ends and an end that never
// began must still export balanced (close-at-max-ts / skip-orphan).
TEST(Tracer, ChromeTraceBalancesAdversarialInput) {
  Tracer tracer;
  tracer.begin("open.forever", 1);
  tracer.instant("tick", 2);
  tracer.end("never.opened");
  tracer.end("never.opened");
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"B\""),
            count_occurrences(json, "\"ph\": \"E\""));
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"B\""), 1u);
}

TEST(Tracer, DistRunProducesShardTracks) {
  const BipartiteGraph g = small_graph();
  Tracer tracer;
  DistOptions opt;
  opt.num_ranks = 4;
  opt.tracer = &tracer;
  const auto r = color_bgpc_distributed(g, opt);
  EXPECT_GT(r.num_colors, 0);

  bool saw_shard = false;
  bool saw_superstep = false;
  for (const TraceEvent& ev : tracer.events()) {
    if (ev.shard >= 0) saw_shard = true;
    if (std::string(ev.name) == "dist.superstep") saw_superstep = true;
  }
  EXPECT_TRUE(saw_shard);
  EXPECT_TRUE(saw_superstep);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_GT(count_occurrences(json, "\"pid\": 2"), 0u);  // shard tracks
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"B\""),
            count_occurrences(json, "\"ph\": \"E\""));
}

TEST(MetricsRegistry, BasicCountersAndFlags) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add("a.count", 3);
  m.add("a.count", 2);
  m.set("b.level", 7);
  m.set_flag("c.flag", true);
  EXPECT_EQ(m.value("a.count"), 5u);
  EXPECT_EQ(m.value("b.level"), 7u);
  EXPECT_EQ(m.value("c.flag"), 1u);
  EXPECT_EQ(m.value("missing"), 0u);
  EXPECT_FALSE(m.has("missing"));
  EXPECT_EQ(m.size(), 3u);
}

TEST(MetricsRegistry, RecordResultMatchesRun) {
  const BipartiteGraph g = small_graph();
  const auto r = color_bgpc_verified(g, bgpc_preset("N1-N2"));
  MetricsRegistry m;
  m.record_result(r);
  EXPECT_EQ(m.value("core.colors"), static_cast<std::uint64_t>(r.num_colors));
  EXPECT_EQ(m.value("core.rounds"), static_cast<std::uint64_t>(r.rounds));
  EXPECT_EQ(m.value("core.color.colored"),
            r.total_color_counters().colored);
  EXPECT_EQ(m.value("core.conflict.conflicts"),
            r.total_conflict_counters().conflicts);
}

// Satellite guard: every DistStats field reaches the registry — the
// text printer can never again be the only place a field shows up.
TEST(MetricsRegistry, SurfacesEveryDistStatsField) {
  DistResult r;
  r.num_colors = 5;
  r.stats.interior_vertices = 1;
  r.stats.boundary_vertices = 2;
  r.stats.supersteps = 3;
  r.stats.messages_sent = 4;
  r.stats.messages_delivered = 5;
  r.stats.messages_dropped = 6;
  r.stats.messages_stale_ignored = 7;
  r.stats.messages_duplicated = 8;
  r.stats.conflicts = 9;
  r.stats.retries = 10;
  r.stats.backoff_us_total = 11;  // accounted even when retries prints 0
  r.stats.dirty_boundary = 12;
  r.stats.repair_recolored = 13;
  r.stats.fallback = true;
  r.stats.deadline_hit = true;
  r.degraded = true;
  r.repaired_vertices = 14;
  r.retry_trace.push_back({1, 0, 1, 1, 100});

  MetricsRegistry m;
  m.record_dist(r);
  EXPECT_EQ(m.value("dist.interior_vertices"), 1u);
  EXPECT_EQ(m.value("dist.boundary_vertices"), 2u);
  EXPECT_EQ(m.value("dist.supersteps"), 3u);
  EXPECT_EQ(m.value("dist.messages.sent"), 4u);
  EXPECT_EQ(m.value("dist.messages.delivered"), 5u);
  EXPECT_EQ(m.value("dist.messages.dropped"), 6u);
  EXPECT_EQ(m.value("dist.messages.stale_ignored"), 7u);
  EXPECT_EQ(m.value("dist.messages.duplicated"), 8u);
  EXPECT_EQ(m.value("dist.conflicts"), 9u);
  EXPECT_EQ(m.value("dist.retries"), 10u);
  EXPECT_EQ(m.value("dist.backoff_us_total"), 11u);
  EXPECT_EQ(m.value("dist.dirty_boundary"), 12u);
  EXPECT_EQ(m.value("dist.repair_recolored"), 13u);
  EXPECT_EQ(m.value("dist.fallback"), 1u);
  EXPECT_EQ(m.value("dist.deadline_hit"), 1u);
  EXPECT_EQ(m.value("dist.degraded"), 1u);
  EXPECT_EQ(m.value("dist.repaired_vertices"), 14u);
  EXPECT_EQ(m.value("dist.retry_trace.events"), 1u);
  EXPECT_EQ(m.value("dist.colors"), 5u);
}

TEST(Json, OrderedWriterEscapesAndNests) {
  Json root = Json::object();
  root.set("b", 1);
  root.set("a", "quote\"back\\slash\nnewline");
  Json arr = Json::array();
  arr.push_back(true);
  arr.push_back(Json());
  arr.push_back(2.5);
  root.set("arr", std::move(arr));
  root.set("b", 9);  // replace keeps first-insertion order
  const std::string s = root.dump();
  EXPECT_LT(s.find("\"b\""), s.find("\"a\""));
  EXPECT_NE(s.find("quote\\\"back\\\\slash\\nnewline"), std::string::npos);
  EXPECT_NE(s.find("[\n    true,\n    null,\n    2.5\n  ]"),
            std::string::npos);
  EXPECT_NE(s.find("\"b\": 9"), std::string::npos);
}

TEST(RunReport, FingerprintIsStableAndContentSensitive) {
  const BipartiteGraph a = small_graph();
  const BipartiteGraph b = small_graph();
  const BipartiteGraph c =
      build_bipartite(gen_clique_union(600, 250, 2, 40, 1.8, 18));
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a), fingerprint(c));
  EXPECT_EQ(fingerprint_string(a).rfind("fnv1a64:", 0), 0u);
}

TEST(RunReport, EnvelopeCarriesSections) {
  const BipartiteGraph g = small_graph();
  Tracer tracer;
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.tracer = &tracer;
  const auto r = color_bgpc_verified(g, opt);

  RunReport rep("test_obs");
  rep.set_option("algo", "N1-N2");
  rep.set_graph(g);
  rep.set_coloring(r);
  MetricsRegistry m;
  m.record_result(r);
  m.record_tracer(tracer);
  rep.set_metrics(m);
  rep.set_tracer(tracer);

  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"schema\": \"gcol-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"test_obs\""), std::string::npos);
  for (const char* section :
       {"\"options\"", "\"graph\"", "\"totals\"", "\"rounds\"",
        "\"degradation\"", "\"metrics\"", "\"trace\""})
    EXPECT_NE(json.find(section), std::string::npos) << section;
  EXPECT_NE(json.find("\"fingerprint\": \"fnv1a64:"), std::string::npos);
}

}  // namespace
}  // namespace gcol::obs
