#include "greedcolor/core/recolor.hpp"

#include "greedcolor/core/color_stats.hpp"

#include <gtest/gtest.h>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/result.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(Recolor, NeverIncreasesBgpcColors) {
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(800, 350, 2, 50, 1.8, 41));
  auto r = color_bgpc(g, bgpc_preset("N1-N2"));
  const color_t before = r.num_colors;
  const color_t after = recolor_bgpc(g, r.colors);
  EXPECT_LE(after, before);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  EXPECT_EQ(after, count_colors(r.colors));
}

TEST(Recolor, FixpointConvergesAndIsValid) {
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(700, 300, 2, 40, 1.7, 43));
  auto r = color_bgpc(g, bgpc_preset("N2-N2"));
  const color_t before = r.num_colors;
  const color_t after = recolor_bgpc_to_fixpoint(g, r.colors);
  EXPECT_LE(after, before);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
}

TEST(Recolor, ImprovesAnInflatedColoring) {
  // Hand the recolorer a deliberately wasteful coloring: every vertex
  // its own color in a two-net instance.
  const BipartiteGraph g = testing::disjoint_nets(2, 4);
  std::vector<color_t> colors = {0, 1, 2, 3, 4, 5, 6, 7};
  const color_t after = recolor_bgpc(g, colors);
  EXPECT_EQ(after, 4);  // disjoint nets reuse colors
  EXPECT_TRUE(is_valid_bgpc(g, colors));
}

TEST(Recolor, D2gcVariantIsValidAndMonotone) {
  const Graph g = build_graph(gen_random_geometric(500, 0.07, 47));
  auto r = color_d2gc(g, d2gc_preset("N1-N2"));
  const color_t before = r.num_colors;
  const color_t after = recolor_d2gc(g, r.colors);
  EXPECT_LE(after, before);
  EXPECT_TRUE(is_valid_d2gc(g, r.colors));
}

TEST(Recolor, StableAtOptimalColoring) {
  const BipartiteGraph g = testing::single_net(5);
  std::vector<color_t> colors = {0, 1, 2, 3, 4};
  EXPECT_EQ(recolor_bgpc(g, colors), 5);
  EXPECT_TRUE(is_valid_bgpc(g, colors));
}

TEST(RecolorVariants, AllOrdersPreserveValidityAndNeverGrow) {
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(900, 380, 2, 45, 1.8, 51));
  const auto base = color_bgpc(g, bgpc_preset("N1-N2"));
  ASSERT_TRUE(is_valid_bgpc(g, base.colors));
  for (const auto order :
       {RecolorOrder::kReverseColors, RecolorOrder::kRandomClasses,
        RecolorOrder::kDecreasingSize}) {
    auto colors = base.colors;
    const color_t after = recolor_bgpc_with(g, colors, order, 7);
    EXPECT_LE(after, base.num_colors);
    EXPECT_TRUE(is_valid_bgpc(g, colors));
  }
}

TEST(RecolorVariants, ReverseColorsMatchesDefaultPass) {
  const BipartiteGraph g = testing::disjoint_nets(4, 3);
  auto a = color_bgpc_sequential(g).colors;
  auto b = a;
  recolor_bgpc(g, a);
  recolor_bgpc_with(g, b, RecolorOrder::kReverseColors);
  EXPECT_EQ(a, b);
}

TEST(BalancedRecolor, ImprovesBalanceWithoutMoreColors) {
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(1500, 600, 2, 70, 1.7, 53));
  auto r = color_bgpc(g, bgpc_preset("V-N2"));
  ASSERT_TRUE(is_valid_bgpc(g, r.colors));
  const double sd_before = color_class_stats(r.colors).stddev;
  const color_t before = r.num_colors;
  const color_t after = balanced_recolor_bgpc(g, r.colors);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  EXPECT_LE(after, before);
  EXPECT_LT(color_class_stats(r.colors).stddev, sd_before);
}

TEST(BalancedRecolor, PreservesCountsOnTinyInstances) {
  const BipartiteGraph g = testing::single_net(4);
  std::vector<color_t> colors = {0, 1, 2, 3};
  EXPECT_EQ(balanced_recolor_bgpc(g, colors), 4);
  EXPECT_TRUE(is_valid_bgpc(g, colors));
}

}  // namespace
}  // namespace gcol
