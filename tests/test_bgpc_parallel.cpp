// Parameterized validity sweep: every preset x several graph shapes x
// thread counts x orderings must produce a valid coloring within the
// structural bound, without tripping the sequential-fallback valve.
#include <gtest/gtest.h>

#include <tuple>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/order/ordering.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

BipartiteGraph make_test_graph(const std::string& shape) {
  if (shape == "mesh") return build_bipartite(gen_mesh2d(40, 40, 2));
  if (shape == "powerlaw") {
    PowerLawBipartiteParams p;
    p.rows = 300;
    p.cols = 1500;
    p.min_deg = 3;
    p.max_deg = 200;
    p.alpha = 1.1;
    p.seed = 77;
    return build_bipartite(gen_powerlaw_bipartite(p));
  }
  if (shape == "cliques")
    return build_bipartite(gen_clique_union(1200, 500, 2, 60, 1.8, 9));
  if (shape == "blockrows")
    return build_bipartite(gen_block_rows(600, 30, 90, 0.3, 2));
  throw std::invalid_argument(shape);
}

using Param = std::tuple<std::string /*algo*/, std::string /*shape*/,
                         int /*threads*/>;

class BgpcValidity : public ::testing::TestWithParam<Param> {};

TEST_P(BgpcValidity, ProducesValidBoundedColoring) {
  const auto& [algo, shape, threads] = GetParam();
  const BipartiteGraph g = make_test_graph(shape);
  ColoringOptions opt = bgpc_preset(algo);
  opt.num_threads = threads;
  const auto r = color_bgpc(g, opt);
  const auto violation = check_bgpc(g, r.colors);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->to_string() : "");
  EXPECT_FALSE(r.sequential_fallback);
  EXPECT_LE(r.num_colors, bgpc_color_bound(g));
  EXPECT_GE(r.num_colors, g.max_net_degree());
  EXPECT_GE(r.rounds, 1);
}

INSTANTIATE_TEST_SUITE_P(
    PresetsByShapeByThreads, BgpcValidity,
    ::testing::Combine(
        ::testing::Values("V-V", "V-V-64", "V-V-64D", "V-Ninf", "V-N1",
                          "V-N2", "N1-N2", "N2-N2"),
        ::testing::Values("mesh", "powerlaw", "cliques", "blockrows"),
        ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param) + "_" +
                      std::get<1>(info.param) + "_t" +
                      std::to_string(std::get<2>(info.param));
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

class BgpcOrderings : public ::testing::TestWithParam<OrderingKind> {};

TEST_P(BgpcOrderings, AllOrdersYieldValidColorings) {
  const BipartiteGraph g = make_test_graph("powerlaw");
  const auto order = make_ordering(g, GetParam(), 3);
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.num_threads = 2;
  const auto r = color_bgpc(g, opt, order);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BgpcOrderings,
    ::testing::Values(OrderingKind::kNatural, OrderingKind::kRandom,
                      OrderingKind::kLargestFirst,
                      OrderingKind::kSmallestLast,
                      OrderingKind::kIncidenceDegree),
    [](const auto& info) {
      std::string n = to_string(info.param);
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(BgpcParallel, SingleThreadVertexKernelMatchesSequential) {
  // With one thread, V-V degenerates to the sequential greedy in the
  // same order: identical colors, zero conflicts.
  const BipartiteGraph g = make_test_graph("blockrows");
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 1;
  const auto par = color_bgpc(g, opt);
  const auto seq = color_bgpc_sequential(g);
  EXPECT_EQ(par.colors, seq.colors);
  EXPECT_EQ(par.rounds, 1);
  ASSERT_FALSE(par.iterations.empty());
  EXPECT_EQ(par.iterations.front().conflicts, 0u);
}

TEST(BgpcParallel, Lemma1SingleNetRoundUsesLowerBoundColors) {
  // Lemma 1: a net-based coloring round never assigns a color >= L.
  // With one thread there are no races, net round 1 colors everything
  // conflict-free, so the full run must use exactly L colors.
  const BipartiteGraph g = testing::single_net(32);
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.num_threads = 1;
  const auto r = color_bgpc(g, opt);
  EXPECT_EQ(r.num_colors, 32);
  for (const color_t c : r.colors) EXPECT_LT(c, 32);
}

TEST(BgpcParallel, Lemma1HoldsOnDisjointNets) {
  const BipartiteGraph g = testing::disjoint_nets(20, 7);
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.num_threads = 4;
  const auto r = color_bgpc(g, opt);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  // Every color must be < L = 7 (reverse first-fit from |vtxs|-1).
  for (const color_t c : r.colors) EXPECT_LT(c, 7);
  EXPECT_EQ(r.num_colors, 7);
}

TEST(BgpcParallel, ReverseFirstFitColorsDescendWithinNet) {
  // One net of width 5 colored by Alg. 8 with one thread: colors are
  // assigned 4,3,2,1,0 in adjacency order.
  const BipartiteGraph g = testing::single_net(5);
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.num_threads = 1;
  const auto r = color_bgpc(g, opt);
  EXPECT_EQ(r.colors, (std::vector<color_t>{4, 3, 2, 1, 0}));
}

TEST(BgpcParallel, NetV1VariantsAreValidAndLeaveMoreConflicts) {
  // Table I's claim: Alg. 6 leaves more uncolored vertices after the
  // first round than Alg. 6+reverse, which leaves more than Alg. 8.
  const BipartiteGraph g = make_test_graph("cliques");

  auto conflicts_after_round1 = [&](bool v1, bool v1rev) {
    ColoringOptions opt = bgpc_preset("N1-N2");
    opt.net_v1 = v1;
    opt.net_v1_reverse = v1rev;
    opt.num_threads = 4;
    const auto r = color_bgpc(g, opt);
    EXPECT_TRUE(is_valid_bgpc(g, r.colors));
    return r.iterations.front().conflicts;
  };

  const auto ff = conflicts_after_round1(true, false);
  const auto rev = conflicts_after_round1(true, true);
  const auto alg8 = conflicts_after_round1(false, false);
  // The full ordering ff >= rev >= alg8 is statistical; assert the
  // robust endpoints.
  EXPECT_GT(ff, alg8);
  EXPECT_GE(ff, rev);
}

TEST(BgpcParallel, IterationStatsAreCoherent) {
  const BipartiteGraph g = make_test_graph("mesh");
  ColoringOptions opt = bgpc_preset("V-N2");
  opt.num_threads = 2;
  const auto r = color_bgpc(g, opt);
  ASSERT_FALSE(r.iterations.empty());
  EXPECT_EQ(r.iterations.front().queue_size,
            static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t i = 1; i < r.iterations.size(); ++i)
    EXPECT_EQ(r.iterations[i].queue_size, r.iterations[i - 1].conflicts);
  EXPECT_EQ(r.iterations.back().conflicts, 0u);
  EXPECT_EQ(static_cast<int>(r.iterations.size()), r.rounds);
}

TEST(BgpcParallel, StatsCollectionCanBeDisabled) {
  const BipartiteGraph g = testing::disjoint_nets(4, 4);
  ColoringOptions opt = bgpc_preset("V-V-64D");
  opt.collect_iteration_stats = false;
  const auto r = color_bgpc(g, opt);
  EXPECT_TRUE(r.iterations.empty());
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
}

TEST(BgpcParallel, InvalidOptionsThrow) {
  const BipartiteGraph g = testing::single_net(3);
  ColoringOptions opt;
  opt.net_color_rounds = 2;
  opt.net_conflict_rounds = 1;  // vertex removal after net coloring
  EXPECT_THROW(color_bgpc(g, opt), std::invalid_argument);
  ColoringOptions opt2;
  opt2.chunk_size = 0;
  EXPECT_THROW(color_bgpc(g, opt2), std::invalid_argument);
  EXPECT_THROW(bgpc_preset("X-X"), std::invalid_argument);
}

TEST(BgpcParallel, OrderSizeMismatchThrows) {
  const BipartiteGraph g = testing::single_net(3);
  EXPECT_THROW(color_bgpc(g, {}, {0, 1}), std::invalid_argument);
}

TEST(BgpcParallel, HandlesGraphWithIsolatedVertices) {
  Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 6;  // 3..5 isolated
  coo.add(0, 0);
  coo.add(0, 1);
  coo.add(1, 1);
  coo.add(1, 2);
  const BipartiteGraph g = build_bipartite(std::move(coo));
  for (const char* algo : {"V-V", "N1-N2"}) {
    const auto r = color_bgpc(g, bgpc_preset(algo));
    EXPECT_TRUE(is_valid_bgpc(g, r.colors)) << algo;
    EXPECT_EQ(r.colors[4], 0) << algo;
  }
}

TEST(BgpcParallel, AdaptivePresetValidOnAllShapes) {
  for (const char* shape : {"mesh", "powerlaw", "cliques", "blockrows"}) {
    const BipartiteGraph g = make_test_graph(shape);
    ColoringOptions opt = bgpc_preset("ADAPTIVE");
    opt.num_threads = 2;
    const auto r = color_bgpc(g, opt);
    EXPECT_TRUE(is_valid_bgpc(g, r.colors)) << shape;
    EXPECT_FALSE(r.sequential_fallback) << shape;
    // The hybrid must never loop net coloring (observation 5): at most
    // two net-colored rounds.
    int net_rounds = 0;
    for (const auto& it : r.iterations) net_rounds += it.net_based_coloring;
    EXPECT_LE(net_rounds, 2) << shape;
  }
}

TEST(BgpcParallel, AdaptiveOptionValidation) {
  const BipartiteGraph g = testing::single_net(3);
  ColoringOptions opt;
  opt.adaptive_threshold = 1.5;
  EXPECT_THROW(color_bgpc(g, opt), std::invalid_argument);
  opt.adaptive_threshold = 0.1;
  opt.net_v1 = true;
  opt.net_color_rounds = 1;
  opt.net_conflict_rounds = 1;
  EXPECT_THROW(color_bgpc(g, opt), std::invalid_argument);
}

TEST(BgpcParallel, ManyThreadsOversubscriptionStillValid) {
  const BipartiteGraph g = make_test_graph("powerlaw");
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.num_threads = 16;  // far above the single hardware core
  const auto r = color_bgpc(g, opt);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
}

}  // namespace
}  // namespace gcol
