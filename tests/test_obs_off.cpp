// The GCOL_TRACE=OFF contract, tested from inside a normal ON build:
// defining GCOL_TRACE_FORCE_OFF before including the header selects
// the same macro branch an OFF build compiles, so this TU proves the
// macros reduce to an unevaluated sizeof — no recording, no argument
// evaluation, no reference to any obs symbol from the macro expansion.
#define GCOL_TRACE_FORCE_OFF 1
#include "greedcolor/obs/trace.hpp"

#include <gtest/gtest.h>

namespace gcol::obs {
namespace {

static_assert(!kTraceEnabled,
              "GCOL_TRACE_FORCE_OFF must compile the disabled branch");

int g_evaluations = 0;

Tracer* counted_tracer(Tracer* t) {
  ++g_evaluations;
  return t;
}

const char* counted_name() {
  ++g_evaluations;
  return "never.recorded";
}

TEST(TraceOff, MacrosRecordNothingEvenWhenAttached) {
  Tracer tracer;  // the class itself still exists; only the macros gate
  tracer.attach(2);
  {
    GCOL_TRACE_SPAN(&tracer, "off.span", 1);
    GCOL_TRACE_BEGIN(&tracer, "off.begin", 2);
    GCOL_TRACE_EVENT(&tracer, "off.event", 3);
    GCOL_TRACE_END(&tracer, "off.begin");
  }
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// The disabled macros must not evaluate ANY operand — the tracer
// expression sits under sizeof and the rest vanishes entirely. A call
// that sneaks an evaluation in would show up as g_evaluations != 0.
TEST(TraceOff, MacroOperandsAreNotEvaluated) {
  Tracer tracer;
  g_evaluations = 0;
  GCOL_TRACE_SPAN(counted_tracer(&tracer), counted_name(), 1);
  GCOL_TRACE_BEGIN(counted_tracer(&tracer), counted_name());
  GCOL_TRACE_END(counted_tracer(&tracer), counted_name());
  GCOL_TRACE_EVENT(counted_tracer(&tracer), counted_name());
  EXPECT_EQ(g_evaluations, 0);
  EXPECT_EQ(tracer.recorded(), 0u);
}

}  // namespace
}  // namespace gcol::obs
