#include "greedcolor/core/verify.hpp"

#include <gtest/gtest.h>

#include "greedcolor/graph/builder.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(VerifyBgpc, AcceptsValidColoring) {
  const BipartiteGraph g = testing::single_net(3);
  EXPECT_TRUE(is_valid_bgpc(g, {0, 1, 2}));
}

TEST(VerifyBgpc, RejectsSharedColorInNet) {
  const BipartiteGraph g = testing::single_net(3);
  const auto v = check_bgpc(g, {0, 1, 0});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->via, 0);
  EXPECT_TRUE((v->a == 0 && v->b == 2) || (v->a == 2 && v->b == 0));
}

TEST(VerifyBgpc, RejectsUncolored) {
  const BipartiteGraph g = testing::single_net(2);
  const auto v = check_bgpc(g, {0, kNoColor});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->a, 1);
  EXPECT_NE(v->what.find("uncolored"), std::string::npos);
}

TEST(VerifyBgpc, RejectsSizeMismatch) {
  const BipartiteGraph g = testing::single_net(3);
  EXPECT_FALSE(is_valid_bgpc(g, {0, 1}));
}

TEST(VerifyBgpc, DisjointNetsMayReuseColors) {
  const BipartiteGraph g = testing::disjoint_nets(2, 2);
  EXPECT_TRUE(is_valid_bgpc(g, {0, 1, 0, 1}));
}

TEST(VerifyBgpc, CatchesCrossNetConflictOnlyViaSharedNet) {
  // vertices 0,1 share net 0; vertices 1,2 share net 1. 0 and 2 may
  // share a color.
  Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 3;
  coo.add(0, 0);
  coo.add(0, 1);
  coo.add(1, 1);
  coo.add(1, 2);
  const BipartiteGraph g = build_bipartite(std::move(coo));
  EXPECT_TRUE(is_valid_bgpc(g, {0, 1, 0}));
  EXPECT_FALSE(is_valid_bgpc(g, {0, 0, 1}));
  EXPECT_FALSE(is_valid_bgpc(g, {1, 0, 0}));
}

TEST(VerifyD2gc, PathNeedsThreeColorsInWindows) {
  const Graph g = build_graph(testing::path_coo(5));
  // 0-1-2-3-4: any window of 3 consecutive must be all-distinct.
  EXPECT_TRUE(is_valid_d2gc(g, {0, 1, 2, 0, 1}));
  EXPECT_FALSE(is_valid_d2gc(g, {0, 1, 0, 1, 0}));  // 0 and 2 clash
}

TEST(VerifyD2gc, Distance3PairsMayShare) {
  const Graph g = build_graph(testing::path_coo(4));
  EXPECT_TRUE(is_valid_d2gc(g, {0, 1, 2, 0}));  // d(0,3)=3
}

TEST(VerifyD2gc, ReportsMiddleVertex) {
  const Graph g = build_graph(testing::path_coo(3));
  const auto v = check_d2gc(g, {0, 1, 0});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->via, 1);  // 0 and 2 clash through middle vertex 1
}

TEST(VerifyD2gc, RejectsUncoloredAndSizeMismatch) {
  const Graph g = build_graph(testing::path_coo(3));
  EXPECT_FALSE(is_valid_d2gc(g, {0, kNoColor, 1}));
  EXPECT_FALSE(is_valid_d2gc(g, {0, 1}));
}

TEST(VerifyD2gc, StarRequiresAllDistinct) {
  const Graph g = build_graph(testing::star_coo(5));
  EXPECT_TRUE(is_valid_d2gc(g, {0, 1, 2, 3, 4}));
  EXPECT_FALSE(is_valid_d2gc(g, {0, 1, 2, 3, 1}));  // two leaves clash
}

TEST(ViolationToString, MentionsAllParts) {
  ColoringViolation v{1, 2, 3, "boom"};
  const std::string s = v.to_string();
  EXPECT_NE(s.find("boom"), std::string::npos);
  EXPECT_NE(s.find("vertex=1"), std::string::npos);
  EXPECT_NE(s.find("partner=2"), std::string::npos);
  EXPECT_NE(s.find("via=3"), std::string::npos);
}

}  // namespace
}  // namespace gcol
