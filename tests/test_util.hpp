// Shared fixtures: tiny graphs with known coloring structure.
#pragma once

#include <vector>

#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/coo.hpp"

namespace gcol::testing {

/// Path graph P_n (vertices 0-1-2-...-n-1).
inline Coo path_coo(vid_t n) {
  Coo coo;
  coo.num_rows = coo.num_cols = n;
  for (vid_t v = 0; v + 1 < n; ++v) {
    coo.add(v, v + 1);
    coo.add(v + 1, v);
  }
  return coo;
}

/// Cycle graph C_n.
inline Coo cycle_coo(vid_t n) {
  Coo coo = path_coo(n);
  coo.add(n - 1, 0);
  coo.add(0, n - 1);
  return coo;
}

/// Star K_{1,n-1} with center 0.
inline Coo star_coo(vid_t n) {
  Coo coo;
  coo.num_rows = coo.num_cols = n;
  for (vid_t v = 1; v < n; ++v) {
    coo.add(0, v);
    coo.add(v, 0);
  }
  return coo;
}

/// Complete graph K_n (no diagonal).
inline Coo complete_coo(vid_t n) {
  Coo coo;
  coo.num_rows = coo.num_cols = n;
  for (vid_t a = 0; a < n; ++a)
    for (vid_t b = 0; b < n; ++b)
      if (a != b) coo.add(a, b);
  return coo;
}

/// BGPC instance: one net covering all `cols` vertices (rows = 1).
inline BipartiteGraph single_net(vid_t cols) {
  Coo coo;
  coo.num_rows = 1;
  coo.num_cols = cols;
  for (vid_t c = 0; c < cols; ++c) coo.add(0, c);
  return build_bipartite(std::move(coo));
}

/// BGPC instance: `rows` disjoint nets of `width` vertices each.
inline BipartiteGraph disjoint_nets(vid_t rows, vid_t width) {
  Coo coo;
  coo.num_rows = rows;
  coo.num_cols = rows * width;
  for (vid_t r = 0; r < rows; ++r)
    for (vid_t k = 0; k < width; ++k) coo.add(r, r * width + k);
  return build_bipartite(std::move(coo));
}

/// Identity pattern: n nets, one vertex each (every vertex isolated
/// from every other — 1 color suffices).
inline BipartiteGraph identity_pattern(vid_t n) {
  Coo coo;
  coo.num_rows = coo.num_cols = n;
  for (vid_t i = 0; i < n; ++i) coo.add(i, i);
  return build_bipartite(std::move(coo));
}

}  // namespace gcol::testing
