#include "greedcolor/graph/sparse_matrix.hpp"

#include <gtest/gtest.h>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/util/prng.hpp"

namespace gcol {
namespace {

Coo small_matrix() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 3;
  coo.add(0, 0, 1.0);
  coo.add(0, 2, 2.0);
  coo.add(1, 1, 3.0);
  return coo;
}

TEST(CsrMatrix, BuildAndAccess) {
  const CsrMatrix a = CsrMatrix::from_coo(small_matrix());
  EXPECT_EQ(a.num_rows(), 2);
  EXPECT_EQ(a.num_cols(), 3);
  EXPECT_EQ(a.nnz(), 3);
  const auto idx = a.row_indices(0);
  const auto val = a.row_values(0);
  EXPECT_EQ(std::vector<vid_t>(idx.begin(), idx.end()),
            (std::vector<vid_t>{0, 2}));
  EXPECT_DOUBLE_EQ(val[1], 2.0);
}

TEST(CsrMatrix, PatternOnlyGetsUnitValues) {
  Coo coo;
  coo.num_rows = coo.num_cols = 2;
  coo.add(0, 1);
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  EXPECT_DOUBLE_EQ(a.row_values(0)[0], 1.0);
}

TEST(CsrMatrix, Multiply) {
  const CsrMatrix a = CsrMatrix::from_coo(small_matrix());
  std::vector<double> y;
  a.multiply(std::vector<double>{1.0, 1.0, 1.0}, y);
  EXPECT_EQ(y, (std::vector<double>{3.0, 3.0}));
  EXPECT_THROW(a.multiply(std::vector<double>{1.0}, y),
               std::invalid_argument);
}

TEST(CsrMatrix, MultiplyTranspose) {
  const CsrMatrix a = CsrMatrix::from_coo(small_matrix());
  std::vector<double> y;
  a.multiply_transpose(std::vector<double>{1.0, 2.0}, y);
  EXPECT_EQ(y, (std::vector<double>{1.0, 6.0, 2.0}));
}

TEST(CsrMatrix, CooRoundTrip) {
  const CsrMatrix a = CsrMatrix::from_coo(small_matrix());
  const Coo back = a.to_coo();
  EXPECT_EQ(back.nnz(), 3);
  EXPECT_EQ(back.rows, (std::vector<vid_t>{0, 0, 1}));
  EXPECT_EQ(back.vals, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(CscMatrix, BuildAndColumnAccess) {
  const CscMatrix a = CscMatrix::from_coo(small_matrix());
  const auto c2 = a.col_indices(2);
  EXPECT_EQ(std::vector<vid_t>(c2.begin(), c2.end()),
            (std::vector<vid_t>{0}));
  EXPECT_DOUBLE_EQ(a.col_values(2)[0], 2.0);
  EXPECT_DOUBLE_EQ(a.column_sqnorm(2), 4.0);
  EXPECT_DOUBLE_EQ(a.column_sqnorm(1), 9.0);
}

TEST(CscMatrix, MultiplyMatchesCsr) {
  Xoshiro256 rng(3);
  Coo coo = gen_random_bipartite(50, 70, 400, 4);
  coo.vals.resize(coo.rows.size());
  for (auto& v : coo.vals) v = rng.uniform();
  const CsrMatrix ar = CsrMatrix::from_coo(coo);
  const CscMatrix ac = CscMatrix::from_coo(coo);
  std::vector<double> x(70);
  for (auto& v : x) v = rng.uniform() - 0.5;
  std::vector<double> y1, y2;
  ar.multiply(x, y1);
  ac.multiply(x, y2);
  ASSERT_EQ(y1.size(), y2.size());
  for (std::size_t i = 0; i < y1.size(); ++i)
    EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(SparseMatrix, OutOfBoundsEntryThrows) {
  Coo coo;
  coo.num_rows = coo.num_cols = 2;
  coo.add(0, 3, 1.0);
  EXPECT_THROW(CsrMatrix::from_coo(std::move(coo)), std::out_of_range);
}

TEST(Compression, ExactRecoveryWithValidColoring) {
  Xoshiro256 rng(8);
  Coo coo = gen_random_bipartite(60, 90, 420, 6);
  coo.vals.resize(coo.rows.size());
  for (auto& v : coo.vals) v = 1.0 + rng.uniform();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const BipartiteGraph g = build_bipartite(coo);
  const auto r = color_bgpc(g, bgpc_preset("N1-N2"));
  ASSERT_TRUE(is_valid_bgpc(g, r.colors));
  const auto b = compress_columns(a, r.colors, r.num_colors);
  EXPECT_EQ(b.size(), static_cast<std::size_t>(a.num_rows()) *
                          static_cast<std::size_t>(r.num_colors));
  EXPECT_DOUBLE_EQ(recovery_error(a, r.colors, r.num_colors, b), 0.0);
}

TEST(Compression, InvalidColoringLosesInformation) {
  // All columns one color: any row with 2+ nonzeros collides.
  Coo coo;
  coo.num_rows = 1;
  coo.num_cols = 2;
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 1.0);
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  const std::vector<color_t> bogus = {0, 0};
  const auto b = compress_columns(a, bogus, 1);
  EXPECT_GT(recovery_error(a, bogus, 1, b), 0.5);
}

TEST(Compression, RejectsBadArguments) {
  const CsrMatrix a = CsrMatrix::from_coo(small_matrix());
  EXPECT_THROW(compress_columns(a, {0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(compress_columns(a, {0, 1, 5}, 2), std::out_of_range);
}

}  // namespace
}  // namespace gcol
