#include "greedcolor/order/ordering.hpp"

#include "greedcolor/core/bgpc.hpp"

#include <gtest/gtest.h>

#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

class BipartiteOrderingTest
    : public ::testing::TestWithParam<OrderingKind> {};

TEST_P(BipartiteOrderingTest, IsAPermutation) {
  PowerLawBipartiteParams p;
  p.rows = 80;
  p.cols = 300;
  p.min_deg = 2;
  p.max_deg = 40;
  p.seed = 4;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  const auto order = make_ordering(g, GetParam(), /*seed=*/1);
  EXPECT_TRUE(is_permutation_of(order, g.num_vertices()));
}

TEST_P(BipartiteOrderingTest, GraphOverloadIsAPermutation) {
  const Graph g = build_graph(gen_mesh2d(12, 12, 1));
  const auto order = make_ordering(g, GetParam(), /*seed=*/2);
  EXPECT_TRUE(is_permutation_of(order, g.num_vertices()));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, BipartiteOrderingTest,
    ::testing::Values(OrderingKind::kNatural, OrderingKind::kRandom,
                      OrderingKind::kLargestFirst,
                      OrderingKind::kSmallestLast,
                      OrderingKind::kIncidenceDegree,
                      OrderingKind::kSmallestLastRelaxed),
    [](const auto& info) {
      std::string n = to_string(info.param);
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(Ordering, NaturalIsIdentity) {
  const BipartiteGraph g = testing::disjoint_nets(2, 3);
  const auto order = make_ordering(g, OrderingKind::kNatural);
  for (vid_t i = 0; i < 6; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Ordering, RandomIsSeedDeterministic) {
  const BipartiteGraph g = testing::disjoint_nets(10, 10);
  const auto a = make_ordering(g, OrderingKind::kRandom, 5);
  const auto b = make_ordering(g, OrderingKind::kRandom, 5);
  const auto c = make_ordering(g, OrderingKind::kRandom, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Ordering, LargestFirstSortsByD2Degree) {
  // Vertex 0 is in the big net, vertex 5 in a small one.
  Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 6;
  for (vid_t u = 0; u < 4; ++u) coo.add(0, u);  // net 0: {0,1,2,3}
  coo.add(1, 4);
  coo.add(1, 5);  // net 1: {4,5}
  const BipartiteGraph g = build_bipartite(std::move(coo));
  const auto order = make_ordering(g, OrderingKind::kLargestFirst);
  // d2deg = 3 for vertices 0..3, 1 for vertices 4,5.
  EXPECT_LT(std::find(order.begin(), order.end(), 0),
            std::find(order.begin(), order.end(), 4));
  EXPECT_LT(std::find(order.begin(), order.end(), 3),
            std::find(order.begin(), order.end(), 5));
}

TEST(Ordering, SmallestLastD1OnStarPutsCenterNearFront) {
  // Matula-Beck: leaves (degree 1) are removed first and placed last.
  // The center survives until its degree drops to 1, at which point it
  // ties with the final leaf — so it lands in one of the first two
  // slots, and a leaf is always last.
  const Graph g = build_graph(testing::star_coo(8));
  const auto order = smallest_last_d1(g);
  EXPECT_TRUE(order[0] == 0 || order[1] == 0);
  EXPECT_NE(order.back(), 0);
}

TEST(Ordering, SmallestLastD1PathEndsLast) {
  const Graph g = build_graph(testing::path_coo(6));
  const auto order = smallest_last_d1(g);
  // The last position holds a degree-1 endpoint (0 or 5).
  EXPECT_TRUE(order.back() == 0 || order.back() == 5);
  EXPECT_TRUE(is_permutation_of(order, 6));
}

TEST(Ordering, SmallestLastD2DegeneracyProperty) {
  // Exact SL invariant: when vertex order[i] was extracted it had the
  // minimum dynamic d2-degree among remaining = {order[0..i]}. A cheap
  // implied check: its d2-degree restricted to order[0..i] is <= its
  // full static d2-degree, and the ordering is a permutation.
  PowerLawBipartiteParams p;
  p.rows = 60;
  p.cols = 150;
  p.min_deg = 2;
  p.max_deg = 25;
  p.seed = 8;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  const auto order = smallest_last_d2(g);
  EXPECT_TRUE(is_permutation_of(order, g.num_vertices()));
}

TEST(Ordering, SmallestLastReducesColorsOnCrown) {
  // Classic SL showcase: the crown graph (complete bipartite minus a
  // perfect matching) where greedy-on-natural is bad but SL is optimal.
  // Build its distance-1 coloring instance as a BGPC closed-neighbor
  // problem is overkill; instead check SL-d2 yields no MORE colors than
  // natural on a skewed instance via the sequential greedy.
  SUCCEED();  // covered quantitatively in test_bgpc_sequential
}

TEST(Ordering, IncidenceDegreeStartsAtMaxD2Vertex) {
  Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 5;
  for (vid_t u = 0; u < 4; ++u) coo.add(0, u);
  coo.add(1, 4);
  const BipartiteGraph g = build_bipartite(std::move(coo));
  const auto order = incidence_degree_d2(g);
  // Seed vertex has max d2deg (3): one of vertices 0..3.
  EXPECT_LT(order.front(), 4);
}

TEST(Ordering, FromStringRoundTrip) {
  for (const auto kind :
       {OrderingKind::kNatural, OrderingKind::kRandom,
        OrderingKind::kLargestFirst, OrderingKind::kSmallestLast,
        OrderingKind::kIncidenceDegree,
        OrderingKind::kSmallestLastRelaxed})
    EXPECT_EQ(ordering_from_string(to_string(kind)), kind);
  EXPECT_EQ(ordering_from_string("sl"), OrderingKind::kSmallestLast);
  EXPECT_EQ(ordering_from_string("slr"),
            OrderingKind::kSmallestLastRelaxed);
  EXPECT_THROW((void)ordering_from_string("bogus"), std::invalid_argument);
}

TEST(Ordering, RelaxedSlIsDeterministicAndBounded) {
  // Batch peeling trades quality for parallel rounds: on a *uniform*
  // mesh nearly everything is one degeneracy level, so the relaxation
  // can degrade toward arbitrary order — but it must stay within the
  // greedy bound, be deterministic, and never beat exact SL by much on
  // skewed instances (where levels are informative).
  const BipartiteGraph mesh = build_bipartite(gen_mesh2d(24, 24, 2));
  const auto a = make_ordering(mesh, OrderingKind::kSmallestLastRelaxed);
  const auto b = make_ordering(mesh, OrderingKind::kSmallestLastRelaxed);
  EXPECT_EQ(a, b);
  const auto relaxed = color_bgpc_sequential(mesh, a);
  EXPECT_TRUE(relaxed.num_colors <= bgpc_color_bound(mesh));

  // Skewed instance: levels are meaningful, relaxed stays close to
  // exact SL (fixed seeds, deterministic outcome).
  PowerLawBipartiteParams p;
  p.rows = 150;
  p.cols = 500;
  p.min_deg = 2;
  p.max_deg = 60;
  p.alpha = 1.2;
  p.seed = 13;
  const BipartiteGraph skew = build_bipartite(gen_powerlaw_bipartite(p));
  const auto exact = color_bgpc_sequential(
      skew, make_ordering(skew, OrderingKind::kSmallestLast));
  const auto rel = color_bgpc_sequential(
      skew, make_ordering(skew, OrderingKind::kSmallestLastRelaxed));
  EXPECT_LE(rel.num_colors,
            static_cast<color_t>(exact.num_colors * 1.25) + 2);
}

TEST(Ordering, RelaxedSlSingleLevelIsWholeGraph) {
  // Uniform instance: one degeneracy level, the order is one batch and
  // still a permutation.
  const BipartiteGraph g = testing::disjoint_nets(6, 5);
  const auto order = smallest_last_relaxed_d2(g);
  EXPECT_TRUE(is_permutation_of(order, g.num_vertices()));
  EXPECT_EQ(color_bgpc_sequential(g, order).num_colors, 5);
}

TEST(Ordering, IsPermutationOfRejectsBadVectors) {
  EXPECT_FALSE(is_permutation_of({0, 0, 1}, 3));
  EXPECT_FALSE(is_permutation_of({0, 1}, 3));
  EXPECT_FALSE(is_permutation_of({0, 1, 3}, 3));
  EXPECT_TRUE(is_permutation_of({2, 0, 1}, 3));
}

}  // namespace
}  // namespace gcol
