// End-to-end coverage for the forbidden-set policies and the locality
// pass: every preset must produce a valid coloring under the stamped,
// bitmap, twolevel, and adaptive kernels, single-thread runs must be
// bit-identical across all four modes (the policies only change how a
// color is found, not which color first-fit picks — and the adaptive
// engine only switches representation, never the pick), and locality
// reordering must be a pure renumbering (identical colors at one
// thread, valid in parallel).
#include <gtest/gtest.h>

#include <vector>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/options.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/order/ordering.hpp"

namespace gcol {
namespace {

const BipartiteGraph& test_bgraph() {
  static const BipartiteGraph g =
      build_bipartite(gen_clique_union(1500, 520, 2, 40, 1.6, 42));
  return g;
}

const Graph& test_ugraph() {
  static const Graph g = build_graph(gen_mesh2d(28, 28, 1));
  return g;
}

constexpr ForbiddenSetKind kBothKinds[] = {ForbiddenSetKind::kStamped,
                                           ForbiddenSetKind::kBitmap};

constexpr ForbiddenSetKind kAllKinds[] = {
    ForbiddenSetKind::kStamped, ForbiddenSetKind::kBitmap,
    ForbiddenSetKind::kTwoLevel, ForbiddenSetKind::kAdaptive};

TEST(ForbiddenPolicies, BgpcAllPresetsValidAllModes) {
  const auto& g = test_bgraph();
  for (const auto& name : bgpc_preset_names()) {
    for (const ForbiddenSetKind fset : kAllKinds) {
      ColoringOptions opt = bgpc_preset(name);
      opt.num_threads = 4;
      opt.forbidden_set = fset;
      const auto r = color_bgpc(g, opt);
      EXPECT_TRUE(is_valid_bgpc(g, r.colors))
          << name << " fset=" << to_string(fset);
      EXPECT_GT(r.num_colors, 0) << name << " fset=" << to_string(fset);
    }
  }
}

TEST(ForbiddenPolicies, BgpcAdaptivePresetValidAllModes) {
  const auto& g = test_bgraph();
  for (const ForbiddenSetKind fset : kAllKinds) {
    ColoringOptions opt = bgpc_preset("ADAPTIVE");
    opt.num_threads = 4;
    opt.forbidden_set = fset;
    const auto r = color_bgpc(g, opt);
    EXPECT_TRUE(is_valid_bgpc(g, r.colors)) << "fset=" << to_string(fset);
  }
}

TEST(ForbiddenPolicies, BgpcBalancedValidAllModes) {
  const auto& g = test_bgraph();
  for (const BalancePolicy b : {BalancePolicy::kB1, BalancePolicy::kB2}) {
    for (const ForbiddenSetKind fset : kAllKinds) {
      ColoringOptions opt = bgpc_preset("V-N2");
      opt.num_threads = 4;
      opt.balance = b;
      opt.forbidden_set = fset;
      const auto r = color_bgpc(g, opt);
      EXPECT_TRUE(is_valid_bgpc(g, r.colors))
          << to_string(b) << " fset=" << to_string(fset);
    }
  }
}

TEST(ForbiddenPolicies, BgpcSingleThreadModesAgree) {
  const auto& g = test_bgraph();
  for (const auto& name : bgpc_preset_names()) {
    ColoringOptions opt = bgpc_preset(name);
    opt.num_threads = 1;
    opt.forbidden_set = ForbiddenSetKind::kStamped;
    const auto stamped = color_bgpc(g, opt);
    for (const ForbiddenSetKind fset :
         {ForbiddenSetKind::kBitmap, ForbiddenSetKind::kTwoLevel,
          ForbiddenSetKind::kAdaptive}) {
      opt.forbidden_set = fset;
      const auto other = color_bgpc(g, opt);
      EXPECT_EQ(stamped.colors, other.colors)
          << name << " fset=" << to_string(fset);
      EXPECT_EQ(stamped.num_colors, other.num_colors)
          << name << " fset=" << to_string(fset);
    }
  }
}

TEST(ForbiddenPolicies, BgpcEdgesVisitedInvariantAcrossModes) {
  if (!kCountersEnabled) GTEST_SKIP() << "counters compiled out";
  // Neighbor dedup in bitmap mode skips marker work, never traversal:
  // the edges_visited profile must stay identical at one thread.
  const auto& g = test_bgraph();
  for (const auto& name : {"V-V", "N1-N2"}) {
    ColoringOptions opt = bgpc_preset(name);
    opt.num_threads = 1;
    opt.forbidden_set = ForbiddenSetKind::kStamped;
    const auto stamped = color_bgpc(g, opt);
    opt.forbidden_set = ForbiddenSetKind::kBitmap;
    const auto bitmap = color_bgpc(g, opt);
    EXPECT_EQ(stamped.total_color_counters().edges_visited,
              bitmap.total_color_counters().edges_visited)
        << name;
    EXPECT_EQ(stamped.total_conflict_counters().edges_visited,
              bitmap.total_conflict_counters().edges_visited)
        << name;
    // The whole point: whole-word scans need far fewer probes.
    EXPECT_LT(bitmap.total_color_counters().color_probes,
              stamped.total_color_counters().color_probes)
        << name;
  }
}

TEST(ForbiddenPolicies, D2gcAllPresetsValidAllModes) {
  const auto& g = test_ugraph();
  for (const auto& name : d2gc_preset_names()) {
    for (const ForbiddenSetKind fset : kAllKinds) {
      ColoringOptions opt = d2gc_preset(name);
      opt.num_threads = 4;
      opt.forbidden_set = fset;
      const auto r = color_d2gc(g, opt);
      EXPECT_TRUE(is_valid_d2gc(g, r.colors))
          << name << " fset=" << to_string(fset);
    }
  }
}

TEST(ForbiddenPolicies, D2gcSingleThreadModesAgree) {
  const auto& g = test_ugraph();
  for (const auto& name : d2gc_preset_names()) {
    ColoringOptions opt = d2gc_preset(name);
    opt.num_threads = 1;
    opt.forbidden_set = ForbiddenSetKind::kStamped;
    const auto stamped = color_d2gc(g, opt);
    for (const ForbiddenSetKind fset :
         {ForbiddenSetKind::kBitmap, ForbiddenSetKind::kTwoLevel,
          ForbiddenSetKind::kAdaptive}) {
      opt.forbidden_set = fset;
      const auto other = color_d2gc(g, opt);
      EXPECT_EQ(stamped.colors, other.colors)
          << name << " fset=" << to_string(fset);
    }
  }
}

TEST(Locality, BgpcFullReorderIsPureRenumbering) {
  const auto& g = test_bgraph();
  ColoringOptions base = bgpc_preset("V-V");
  base.num_threads = 1;
  const auto plain = color_bgpc(g, base);
  for (const LocalityMode mode :
       {LocalityMode::kSortAdj, LocalityMode::kFull}) {
    ColoringOptions opt = base;
    opt.locality = mode;
    const auto reordered = color_bgpc(g, opt);
    EXPECT_EQ(plain.colors, reordered.colors) << to_string(mode);
  }
}

TEST(Locality, BgpcParallelLocalityValid) {
  const auto& g = test_bgraph();
  for (const auto& name : {"V-V", "N1-N2"}) {
    for (const LocalityMode mode :
         {LocalityMode::kSortAdj, LocalityMode::kFull}) {
      for (const ForbiddenSetKind fset : kBothKinds) {
        ColoringOptions opt = bgpc_preset(name);
        opt.num_threads = 4;
        opt.locality = mode;
        opt.forbidden_set = fset;
        const auto r = color_bgpc(g, opt);
        EXPECT_TRUE(is_valid_bgpc(g, r.colors))
            << name << " locality=" << to_string(mode)
            << " fset=" << to_string(fset);
      }
    }
  }
}

TEST(Locality, BgpcLocalityRespectsExplicitOrder) {
  const auto& g = test_bgraph();
  const auto order = make_ordering(g, OrderingKind::kSmallestLast);
  ColoringOptions base = bgpc_preset("V-V");
  base.num_threads = 1;
  const auto plain = color_bgpc(g, base, order);
  ColoringOptions opt = base;
  opt.locality = LocalityMode::kFull;
  const auto reordered = color_bgpc(g, opt, order);
  EXPECT_EQ(plain.colors, reordered.colors);
}

TEST(Locality, D2gcFullReorderIsPureRenumbering) {
  const auto& g = test_ugraph();
  ColoringOptions base = d2gc_preset("V-V-64D");
  base.num_threads = 1;
  const auto plain = color_d2gc(g, base);
  for (const LocalityMode mode :
       {LocalityMode::kSortAdj, LocalityMode::kFull}) {
    ColoringOptions opt = base;
    opt.locality = mode;
    const auto reordered = color_d2gc(g, opt);
    EXPECT_EQ(plain.colors, reordered.colors) << to_string(mode);
  }
}

TEST(Locality, D2gcParallelLocalityValid) {
  const auto& g = test_ugraph();
  for (const LocalityMode mode :
       {LocalityMode::kSortAdj, LocalityMode::kFull}) {
    for (const ForbiddenSetKind fset : kBothKinds) {
      ColoringOptions opt = d2gc_preset("N1-N2");
      opt.num_threads = 4;
      opt.locality = mode;
      opt.forbidden_set = fset;
      const auto r = color_d2gc(g, opt);
      EXPECT_TRUE(is_valid_d2gc(g, r.colors))
          << "locality=" << to_string(mode) << " fset=" << to_string(fset);
    }
  }
}

}  // namespace
}  // namespace gcol
