#include "greedcolor/graph/bipartite.hpp"

#include <gtest/gtest.h>

#include "greedcolor/graph/builder.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(BipartiteGraph, BuildFromRectangularCoo) {
  Coo coo;
  coo.num_rows = 2;  // nets
  coo.num_cols = 3;  // vertices
  coo.add(0, 0);
  coo.add(0, 2);
  coo.add(1, 1);
  coo.add(1, 2);
  const BipartiteGraph g = build_bipartite(std::move(coo));
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_nets(), 2);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.validate());
}

TEST(BipartiteGraph, AdjacencyIsConsistentBothSides) {
  Coo coo;
  coo.num_rows = 3;
  coo.num_cols = 4;
  coo.add(0, 1);
  coo.add(0, 3);
  coo.add(1, 0);
  coo.add(2, 1);
  coo.add(2, 2);
  const BipartiteGraph g = build_bipartite(std::move(coo));
  // vtxs(0) = {1,3}; nets(1) = {0,2}
  const auto v0 = g.vtxs(0);
  EXPECT_EQ(std::vector<vid_t>(v0.begin(), v0.end()),
            (std::vector<vid_t>{1, 3}));
  const auto n1 = g.nets(1);
  EXPECT_EQ(std::vector<vid_t>(n1.begin(), n1.end()),
            (std::vector<vid_t>{0, 2}));
  EXPECT_TRUE(g.validate());
}

TEST(BipartiteGraph, Degrees) {
  const BipartiteGraph g = testing::disjoint_nets(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_nets(), 3);
  for (vid_t v = 0; v < 3; ++v) EXPECT_EQ(g.net_degree(v), 4);
  for (vid_t u = 0; u < 12; ++u) EXPECT_EQ(g.vertex_degree(u), 1);
  EXPECT_EQ(g.max_net_degree(), 4);
  EXPECT_EQ(g.max_vertex_degree(), 1);
}

TEST(BipartiteGraph, DuplicateEntriesCollapse) {
  Coo coo;
  coo.num_rows = 1;
  coo.num_cols = 2;
  coo.add(0, 1);
  coo.add(0, 1);
  coo.add(0, 0);
  const BipartiteGraph g = build_bipartite(std::move(coo));
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(BipartiteGraph, EmptyNetsAndVerticesAllowed) {
  Coo coo;
  coo.num_rows = 3;
  coo.num_cols = 3;
  coo.add(1, 1);
  const BipartiteGraph g = build_bipartite(std::move(coo));
  EXPECT_EQ(g.net_degree(0), 0);
  EXPECT_EQ(g.vertex_degree(2), 0);
  EXPECT_TRUE(g.validate());
}

TEST(BipartiteGraph, CtorRejectsInconsistentHalves) {
  // vptr claims 1 edge, nptr claims 2.
  EXPECT_THROW(BipartiteGraph(1, 1, {0, 1}, {0}, {0, 2}, {0, 0}),
               std::invalid_argument);
}

TEST(BipartiteGraph, MaxNetDegreeIsLowerBoundSource) {
  const BipartiteGraph g = testing::single_net(7);
  EXPECT_EQ(g.max_net_degree(), 7);
}

}  // namespace
}  // namespace gcol
