#include "greedcolor/core/d1gc.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

Graph make_test_graph(const std::string& shape) {
  if (shape == "mesh") return build_graph(gen_mesh2d(40, 40, 1));
  if (shape == "pa")
    return build_graph(gen_preferential_attachment(2000, 5, 3));
  if (shape == "cliques")
    return build_graph(gen_clique_union(1500, 600, 2, 50, 1.8, 8));
  throw std::invalid_argument(shape);
}

TEST(D1gcSequential, KnownSmallGraphs) {
  EXPECT_EQ(color_d1gc_sequential(build_graph(testing::path_coo(6)))
                .num_colors,
            2);
  EXPECT_EQ(color_d1gc_sequential(build_graph(testing::cycle_coo(6)))
                .num_colors,
            2);
  EXPECT_EQ(color_d1gc_sequential(build_graph(testing::cycle_coo(5)))
                .num_colors,
            3);  // odd cycle
  EXPECT_EQ(color_d1gc_sequential(build_graph(testing::star_coo(9)))
                .num_colors,
            2);
  EXPECT_EQ(color_d1gc_sequential(build_graph(testing::complete_coo(7)))
                .num_colors,
            7);
}

TEST(D1gcSequential, GreedyBoundHolds) {
  const Graph g = make_test_graph("pa");
  const auto r = color_d1gc_sequential(g);
  EXPECT_TRUE(is_valid_d1gc(g, r.colors));
  EXPECT_LE(r.num_colors, d1gc_color_bound(g));
}

using Param = std::tuple<std::string, int, BalancePolicy>;

class D1gcSpeculative : public ::testing::TestWithParam<Param> {};

TEST_P(D1gcSpeculative, ValidColoring) {
  const auto& [shape, threads, balance] = GetParam();
  const Graph g = make_test_graph(shape);
  ColoringOptions opt = bgpc_preset("V-V-64D");
  opt.num_threads = threads;
  opt.balance = balance;
  const auto r = color_d1gc(g, opt);
  const auto violation = check_d1gc(g, r.colors);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->to_string() : "");
  EXPECT_LE(r.num_colors, d1gc_color_bound(g));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesThreadsPolicies, D1gcSpeculative,
    ::testing::Combine(::testing::Values("mesh", "pa", "cliques"),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(BalancePolicy::kNone,
                                         BalancePolicy::kB1,
                                         BalancePolicy::kB2)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_" +
             to_string(std::get<2>(info.param));
    });

TEST(D1gcSpeculative, SingleThreadMatchesSequential) {
  const Graph g = make_test_graph("pa");
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 1;
  EXPECT_EQ(color_d1gc(g, opt).colors, color_d1gc_sequential(g).colors);
}

TEST(D1gcSpeculative, RejectsNetRounds) {
  const Graph g = build_graph(testing::path_coo(3));
  EXPECT_THROW(color_d1gc(g, bgpc_preset("N1-N2")),
               std::invalid_argument);
  EXPECT_THROW(color_d1gc(g, bgpc_preset("V-N1")), std::invalid_argument);
}

TEST(D1gcJonesPlassmann, ValidOnAllShapes) {
  for (const char* shape : {"mesh", "pa", "cliques"}) {
    const Graph g = make_test_graph(shape);
    const auto r = color_d1gc_jones_plassmann(g, 7, 4);
    EXPECT_TRUE(is_valid_d1gc(g, r.colors)) << shape;
    EXPECT_LE(r.num_colors, d1gc_color_bound(g)) << shape;
  }
}

TEST(D1gcJonesPlassmann, DeterministicAcrossThreadCounts) {
  const Graph g = make_test_graph("cliques");
  const auto t1 = color_d1gc_jones_plassmann(g, 42, 1);
  const auto t4 = color_d1gc_jones_plassmann(g, 42, 4);
  EXPECT_EQ(t1.colors, t4.colors);
  EXPECT_EQ(t1.rounds, t4.rounds);
}

TEST(D1gcJonesPlassmann, SeedChangesResult) {
  const Graph g = make_test_graph("pa");
  const auto a = color_d1gc_jones_plassmann(g, 1, 2);
  const auto b = color_d1gc_jones_plassmann(g, 2, 2);
  EXPECT_TRUE(is_valid_d1gc(g, a.colors));
  EXPECT_TRUE(is_valid_d1gc(g, b.colors));
  EXPECT_NE(a.colors, b.colors);  // astronomically unlikely to match
}

TEST(D1gcJonesPlassmann, RoundCountIsLogarithmicNotLinear) {
  // JP's expected round count is O(log n) on bounded-degree graphs; on
  // the 1600-vertex mesh a generous cap of 50 demonstrates it is far
  // from the n rounds of a serial schedule.
  const Graph g = make_test_graph("mesh");
  const auto r = color_d1gc_jones_plassmann(g, 3, 4);
  EXPECT_LE(r.rounds, 50);
  EXPECT_GE(r.rounds, 2);
}

TEST(D1gcVerifier, CatchesPlantedConflicts) {
  const Graph g = build_graph(testing::path_coo(3));
  EXPECT_TRUE(is_valid_d1gc(g, {0, 1, 0}));
  EXPECT_FALSE(is_valid_d1gc(g, {0, 0, 1}));
  EXPECT_FALSE(is_valid_d1gc(g, {0, kNoColor, 0}));
  EXPECT_FALSE(is_valid_d1gc(g, {0, 1}));
}

TEST(D1gc, IntroClaimD1MuchCheaperThanD2) {
  // The paper's introduction: sequential D1GC is fast while D2GC "can
  // be in the order of minutes". Check the work-complexity gap on a
  // mesh: D1 visits O(E), D2 visits O(sum deg^2).
  const Graph g = make_test_graph("mesh");
  const auto d1 = color_d1gc_sequential(g);
  EXPECT_TRUE(is_valid_d1gc(g, d1.colors));
  // 2-D 9-point mesh: 4-ish colors for D1, ~9+ for D2 lower bound.
  EXPECT_LE(d1.num_colors, 6);
  EXPECT_GE(d1gc_color_bound(g), d1.num_colors);
}

}  // namespace
}  // namespace gcol
