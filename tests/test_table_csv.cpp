#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "greedcolor/util/csv.hpp"
#include "greedcolor/util/table.hpp"

namespace gcol {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"name", "value"},
               {TextTable::Align::kLeft, TextTable::Align::kRight});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string s = t.to_string();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  // Right-aligned numbers end at the same column.
  std::istringstream in(s);
  std::string l0, l1, l2, l3;
  std::getline(in, l0);
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l2.size(), l3.size());
  EXPECT_EQ(l2.back(), '1');
  EXPECT_EQ(l3.back(), '5');
}

TEST(TextTable, RuleSeparatesSections) {
  TextTable t;
  t.set_header({"xxx"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // Two rules: one under the header, one added explicitly.
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("---", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 2u);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW({ const auto s = t.to_string(); });
}

TEST(TextTable, NumericFormatters) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(TextTable::fmt(static_cast<std::int64_t>(-7)), "-7");
  EXPECT_EQ(TextTable::fmt_sep(1508065), "1,508,065");
  EXPECT_EQ(TextTable::fmt_sep(42), "42");
  EXPECT_EQ(TextTable::fmt_sep(-1234), "-1,234");
  EXPECT_EQ(TextTable::fmt_sep(0), "0");
}

TEST(CsvWriter, WritesRowsAndQuotes) {
  const std::string path = ::testing::TempDir() + "gcol_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b,с", "plain"});
    csv.row("x", 1, 2.0);
  }
  std::ifstream in(path);
  std::string l1, l2;
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_EQ(l1, "a,\"b,с\",plain");
  EXPECT_EQ(l2.substr(0, 4), "x,1,");
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace gcol
