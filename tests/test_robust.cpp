// The robust subsystem's contract, exercised end to end: typed errors,
// deterministic fault plans, the convergence watchdog's degradation
// flags, incremental verify-and-repair, and the fail-safe verified
// entry points under injected faults.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/dist/dist_bgpc.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/robust/error.hpp"
#include "greedcolor/robust/fault.hpp"
#include "greedcolor/robust/repair.hpp"
#include "greedcolor/robust/verified.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

// ---------------------------------------------------------------- errors

TEST(RobustError, CarriesCodeAndMessage) {
  const Error e(ErrorCode::kBadInput, "broken thing");
  EXPECT_EQ(e.code(), ErrorCode::kBadInput);
  EXPECT_STREQ(e.what(), "broken thing");
}

TEST(RobustError, IsCatchableAsRuntimeError) {
  // Existing catch sites predate the typed layer; they must keep working.
  try {
    raise(ErrorCode::kTruncatedInput, "ctx", "short");
    FAIL() << "raise returned";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "ctx: short");
  }
}

TEST(RobustError, InputErrorClassification) {
  for (const auto code :
       {ErrorCode::kInvalidArgument, ErrorCode::kIoError, ErrorCode::kBadInput,
        ErrorCode::kTruncatedInput, ErrorCode::kCorruptHeader,
        ErrorCode::kOutOfRange})
    EXPECT_TRUE(Error(code, "x").is_input_error()) << to_string(code);
  EXPECT_FALSE(Error(ErrorCode::kDeadlineExceeded, "x").is_input_error());
  EXPECT_FALSE(Error(ErrorCode::kInternalInvariant, "x").is_input_error());
}

TEST(RobustError, ToStringIsStableAndDistinct) {
  EXPECT_STREQ(to_string(ErrorCode::kBadInput), "bad-input");
  EXPECT_STREQ(to_string(ErrorCode::kCorruptHeader), "corrupt-header");
  EXPECT_STRNE(to_string(ErrorCode::kIoError),
               to_string(ErrorCode::kOutOfRange));
}

// ------------------------------------------------------------ fault plan

TEST(FaultPlan, SpecRoundTrips) {
  const auto plan = FaultPlan::parse(
      "seed=42,stale=0.05,drop=0.2,reorder=0.1,dup=0.15,delay-steps=2,"
      "part=1,part-start=2,part-steps=3,delay-rounds=3,delay-ms=10,"
      "flip=0.01,trunc=0.5");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.stale_color_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan.drop_update_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan.reorder_update_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan.duplicate_update_rate, 0.15);
  EXPECT_EQ(plan.delay_update_supersteps, 2);
  EXPECT_EQ(plan.partition_shard, 1);
  EXPECT_EQ(plan.partition_start_superstep, 2);
  EXPECT_EQ(plan.partition_supersteps, 3);
  EXPECT_EQ(plan.delay_rounds, 3);
  EXPECT_EQ(plan.delay_ms, 10);
  EXPECT_DOUBLE_EQ(plan.flip_byte_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan.truncate_fraction, 0.5);
  const auto back = FaultPlan::parse(plan.to_spec());
  EXPECT_EQ(back.to_spec(), plan.to_spec());
}

TEST(FaultPlan, DistFaultDetectionCoversNewKinds) {
  EXPECT_FALSE(FaultPlan{}.any_dist_faults());
  EXPECT_TRUE(FaultPlan::parse("dup=0.1").any_dist_faults());
  EXPECT_TRUE(FaultPlan::parse("part=0,part-steps=2").any_dist_faults());
  // delay-steps alone only shapes reorder victims; it is not a fault.
  EXPECT_FALSE(FaultPlan::parse("delay-steps=3").any_dist_faults());
}

TEST(FaultPlan, UnderscoresNormalizeToDashes) {
  const auto plan = FaultPlan::parse("delay_rounds=2,delay_ms=5");
  EXPECT_EQ(plan.delay_rounds, 2);
  EXPECT_EQ(plan.delay_ms, 5);
}

TEST(FaultPlan, BadSpecsThrowTyped) {
  for (const auto* spec : {"bogus=1", "stale=nope", "stale=-0.5", "stale=1.5",
                           "delay-ms=-2", "seed=", "=3"}) {
    try {
      (void)FaultPlan::parse(spec);
      FAIL() << "accepted '" << spec << "'";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument) << spec;
    }
  }
}

TEST(FaultPlan, DecisionsAreDeterministic) {
  FaultPlan plan;
  plan.seed = 7;
  plan.stale_color_rate = 0.3;
  plan.drop_update_rate = 0.3;
  int hits = 0;
  for (vid_t u = 0; u < 1000; ++u) {
    EXPECT_EQ(plan.corrupt_color(2, u), plan.corrupt_color(2, u));
    if (plan.corrupt_color(2, u)) ++hits;
  }
  // A Bernoulli(0.3) over 1000 items lands well inside [150, 450].
  EXPECT_GT(hits, 150);
  EXPECT_LT(hits, 450);
  // Streams are independent: drop decisions differ from stale decisions.
  int agree = 0;
  for (vid_t u = 0; u < 1000; ++u)
    if (plan.corrupt_color(1, u) == plan.drop_update(1, u)) ++agree;
  EXPECT_LT(agree, 1000);
}

TEST(FaultPlan, CorruptBytesIsDeterministicAndVaried) {
  FaultPlan plan;
  plan.seed = 11;
  plan.flip_byte_rate = 0.05;
  plan.truncate_fraction = 0.5;
  const std::string bytes(4096, 'A');
  const std::string a = plan.corrupt_bytes(bytes, 0);
  EXPECT_EQ(a, plan.corrupt_bytes(bytes, 0));
  EXPECT_NE(a, plan.corrupt_bytes(bytes, 1));
  EXPECT_LE(a.size(), bytes.size());
}

TEST(FaultPlan, StaleInjectionCreatesRealConflicts) {
  const BipartiteGraph g =
      build_bipartite(gen_random_bipartite(60, 200, 900, 5));
  auto base = color_bgpc_sequential(g);
  ASSERT_FALSE(check_bgpc(g, base.colors).has_value());
  FaultPlan plan;
  plan.seed = 3;
  plan.stale_color_rate = 0.25;
  auto colors = base.colors;
  const vid_t corrupted = inject_stale_colors(plan, g, 1, colors);
  EXPECT_GT(corrupted, 0);
  // The injected writes are real distance-2 conflicts, not no-ops.
  EXPECT_TRUE(check_bgpc(g, colors).has_value());
}

// -------------------------------------------------------------- watchdog

/// Closed-neighborhood BGPC instance of a cycle: every vertex shares a
/// net with its neighbors, so the optimistic net_v1 kernel leaves
/// deterministic conflicts even on one thread.
BipartiteGraph cycle_closed(vid_t n) {
  return graph_to_bipartite_closed(build_graph(testing::cycle_coo(n)));
}

ColoringOptions netv1_options() {
  ColoringOptions opt;
  opt.name = "net-v1";
  opt.net_v1 = true;
  opt.net_color_rounds = 1;
  opt.net_conflict_rounds = 1;
  opt.num_threads = 1;
  return opt;
}

TEST(Watchdog, RoundBudgetDegradesGracefully) {
  const BipartiteGraph g = cycle_closed(301);
  ColoringOptions opt = netv1_options();
  opt.max_rounds = 1;
  const auto r = color_bgpc(g, opt);
  EXPECT_TRUE(r.rounds_capped);
  EXPECT_TRUE(r.degraded);
  EXPECT_TRUE(r.sequential_fallback);
  EXPECT_FALSE(r.deadline_hit);
  // The fallback is the guaranteed-valid sequential cleanup.
  EXPECT_FALSE(check_bgpc(g, r.colors).has_value());
}

TEST(Watchdog, DeadlineDegradesGracefully) {
  const BipartiteGraph g = cycle_closed(301);
  FaultPlan plan;
  plan.delay_rounds = 10;
  plan.delay_ms = 10;
  ColoringOptions opt = netv1_options();
  opt.fault_plan = &plan;          // straggler stall trips the deadline
  opt.deadline_seconds = 0.002;
  const auto r = color_bgpc(g, opt);
  EXPECT_TRUE(r.deadline_hit);
  EXPECT_TRUE(r.degraded);
  EXPECT_TRUE(r.sequential_fallback);
  EXPECT_FALSE(check_bgpc(g, r.colors).has_value());
}

TEST(Watchdog, CleanRunsCarryNoDegradationFlags) {
  const BipartiteGraph g = cycle_closed(64);
  const auto r = color_bgpc(g, bgpc_preset("V-V"));
  EXPECT_FALSE(r.degraded);
  EXPECT_FALSE(r.rounds_capped);
  EXPECT_FALSE(r.deadline_hit);
  EXPECT_EQ(r.faults_injected, 0);
  EXPECT_EQ(r.repaired_vertices, 0);
}

TEST(Watchdog, NegativeDeadlineRejected) {
  ColoringOptions opt;
  opt.deadline_seconds = -1.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------- repair

TEST(Repair, FixesInjectedDamageIncrementally) {
  const BipartiteGraph g =
      build_bipartite(gen_random_bipartite(80, 400, 1600, 9));
  auto colors = color_bgpc_sequential(g).colors;
  FaultPlan plan;
  plan.seed = 13;
  plan.stale_color_rate = 0.1;
  const vid_t corrupted = inject_stale_colors(plan, g, 1, colors);
  ASSERT_GT(corrupted, 0);
  const RepairStats stats = repair_bgpc(g, colors);
  EXPECT_FALSE(check_bgpc(g, colors).has_value());
  // The acceptance bar: repair touches strictly fewer vertices than the
  // from-scratch rerun (which recolors every vertex) would.
  EXPECT_GT(stats.repaired, 0);
  EXPECT_LT(stats.repaired, g.num_vertices());
}

TEST(Repair, IsIdempotentOnValidColorings) {
  const BipartiteGraph g = testing::disjoint_nets(4, 5);
  auto colors = color_bgpc_sequential(g).colors;
  const RepairStats stats = repair_bgpc(g, colors);
  EXPECT_TRUE(stats.clean());
  EXPECT_FALSE(check_bgpc(g, colors).has_value());
}

TEST(Repair, SanitizesGarbageWithoutHugeAllocations) {
  const BipartiteGraph g = testing::single_net(8);
  auto colors = color_bgpc_sequential(g).colors;
  colors[0] = -42;
  colors[1] = std::numeric_limits<color_t>::max();  // would OOM a naive set
  colors[2] = kNoColor;
  const RepairStats stats = repair_bgpc(g, colors);
  EXPECT_EQ(stats.sanitized, 2);
  EXPECT_GE(stats.repaired, 3);
  EXPECT_FALSE(check_bgpc(g, colors).has_value());
}

TEST(Repair, RejectsSizeMismatch) {
  const BipartiteGraph g = testing::single_net(4);
  std::vector<color_t> colors(3, kNoColor);
  try {
    (void)repair_bgpc(g, colors);
    FAIL() << "accepted mismatched colors";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST(Repair, D2gcFlavorRepairsDistanceTwoDamage) {
  Coo coo = gen_random_bipartite(150, 150, 900, 21);
  coo.symmetrize();
  const Graph g = build_graph(std::move(coo));
  auto colors = color_d2gc_sequential(g).colors;
  FaultPlan plan;
  plan.seed = 17;
  plan.stale_color_rate = 0.15;
  const vid_t corrupted = inject_stale_colors(plan, g, 1, colors);
  ASSERT_GT(corrupted, 0);
  const RepairStats stats = repair_d2gc(g, colors);
  EXPECT_FALSE(check_d2gc(g, colors).has_value());
  EXPECT_GT(stats.repaired, 0);
  EXPECT_LT(stats.repaired, g.num_vertices());
}

// ------------------------------------------------- verified entry points

TEST(Verified, RepairsFaultedBgpcRun) {
  const BipartiteGraph g =
      build_bipartite(gen_random_bipartite(70, 300, 1200, 31));
  FaultPlan plan;
  plan.seed = 5;
  plan.stale_color_rate = 0.2;
  ColoringOptions opt = bgpc_preset("V-V");
  opt.fault_plan = &plan;
  const auto r = color_bgpc_verified(g, opt);
  EXPECT_FALSE(check_bgpc(g, r.colors).has_value());
  EXPECT_GT(r.faults_injected, 0);
  EXPECT_TRUE(r.degraded);
  EXPECT_GT(r.repaired_vertices, 0);
  EXPECT_LT(r.repaired_vertices, g.num_vertices());
}

TEST(Verified, CleanRunsPassThroughUntouched) {
  const BipartiteGraph g = testing::disjoint_nets(6, 4);
  const auto r = color_bgpc_verified(g, bgpc_preset("N1-N2"));
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.repaired_vertices, 0);
  EXPECT_FALSE(check_bgpc(g, r.colors).has_value());
}

TEST(Verified, TranslatesApiMisuseToTypedError) {
  const BipartiteGraph g = testing::single_net(4);
  std::vector<vid_t> bad_order = {0, 1};  // wrong length
  try {
    (void)color_bgpc_verified(g, bgpc_preset("V-V"), bad_order);
    FAIL() << "accepted bad order";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST(Verified, DistSurvivesDroppedAndReorderedUpdates) {
  const BipartiteGraph g =
      build_bipartite(gen_random_bipartite(60, 240, 1400, 77));
  FaultPlan plan;
  plan.seed = 19;
  plan.drop_update_rate = 0.4;
  plan.reorder_update_rate = 0.3;
  DistOptions opt;
  opt.num_ranks = 4;
  opt.fault_plan = &plan;
  const auto r = color_bgpc_distributed_verified(g, opt);
  EXPECT_FALSE(check_bgpc(g, r.colors).has_value());
  EXPECT_GT(r.stats.messages_dropped, 0u);
  EXPECT_GT(r.stats.retries, 0u);
  EXPECT_FALSE(r.stats.fallback);
}

TEST(Verified, DistDeadlineFallsBackToSequential) {
  const BipartiteGraph g =
      build_bipartite(gen_random_bipartite(60, 240, 1400, 78));
  FaultPlan plan;
  plan.seed = 23;
  plan.drop_update_rate = 0.9;  // starve convergence so the deadline fires
  DistOptions opt;
  opt.num_ranks = 4;
  opt.fault_plan = &plan;
  opt.deadline_seconds = 1e-9;
  const auto r = color_bgpc_distributed_verified(g, opt);
  EXPECT_TRUE(r.stats.fallback);
  EXPECT_TRUE(r.stats.deadline_hit);
  EXPECT_TRUE(r.degraded);
  EXPECT_FALSE(check_bgpc(g, r.colors).has_value());
}

TEST(Verified, D2gcRepairsFaultedRun) {
  Coo coo = gen_random_bipartite(180, 180, 1100, 41);
  coo.symmetrize();
  const Graph g = build_graph(std::move(coo));
  FaultPlan plan;
  plan.seed = 29;
  plan.stale_color_rate = 0.2;
  ColoringOptions opt = d2gc_preset("V-N1");
  opt.fault_plan = &plan;
  const auto r = color_d2gc_verified(g, opt);
  EXPECT_FALSE(check_d2gc(g, r.colors).has_value());
  EXPECT_GT(r.faults_injected, 0);
  EXPECT_TRUE(r.degraded);
}

}  // namespace
}  // namespace gcol
