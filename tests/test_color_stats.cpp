#include "greedcolor/core/color_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "greedcolor/core/result.hpp"

namespace gcol {
namespace {

TEST(CountColors, Basics) {
  EXPECT_EQ(count_colors({}), 0);
  EXPECT_EQ(count_colors({kNoColor, kNoColor}), 0);
  EXPECT_EQ(count_colors({0}), 1);
  EXPECT_EQ(count_colors({2, 0, 5}), 6);
}

TEST(ColorClassStats, ExactHistogram) {
  // colors: 0 x3, 1 x1, 2 x2
  const auto s = color_class_stats({0, 0, 0, 1, 2, 2});
  EXPECT_EQ(s.num_colors, 3);
  EXPECT_EQ(s.cardinality, (std::vector<vid_t>{3, 1, 2}));
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 3);
  EXPECT_EQ(s.singleton_sets, 1);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(ColorClassStats, IgnoresUncolored) {
  const auto s = color_class_stats({0, kNoColor, 0});
  EXPECT_EQ(s.num_colors, 1);
  EXPECT_EQ(s.cardinality, (std::vector<vid_t>{2}));
}

TEST(ColorClassStats, DropsEmptyClasses) {
  // Color 1 unused.
  const auto s = color_class_stats({0, 2, 2});
  EXPECT_EQ(s.num_colors, 2);
  EXPECT_EQ(s.cardinality, (std::vector<vid_t>{1, 2}));
}

TEST(ColorClassStats, SortedCardinalitiesDescend) {
  const auto s = color_class_stats({0, 1, 1, 2, 2, 2});
  EXPECT_EQ(s.sorted_cardinalities(), (std::vector<vid_t>{3, 2, 1}));
}

TEST(ColorClassStats, EmptyInput) {
  const auto s = color_class_stats({});
  EXPECT_EQ(s.num_colors, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(ColorClassStats, UniformClassesHaveZeroStddev) {
  const auto s = color_class_stats({0, 1, 2, 0, 1, 2});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.singleton_sets, 0);
}

}  // namespace
}  // namespace gcol
