#include "greedcolor/graph/mtx_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "greedcolor/robust/error.hpp"

namespace gcol {
namespace {

/// The parser must reject `body` with exactly this error code.
void expect_rejected(const std::string& body, ErrorCode code) {
  std::istringstream in(body);
  try {
    (void)read_matrix_market(in);
    FAIL() << "accepted: " << body;
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), code) << e.what();
  }
}

TEST(MtxIo, ParsesGeneralPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1\n"
      "2 4\n"
      "3 2\n");
  const Coo coo = read_matrix_market(in);
  EXPECT_EQ(coo.num_rows, 3);
  EXPECT_EQ(coo.num_cols, 4);
  EXPECT_EQ(coo.nnz(), 3);
  EXPECT_FALSE(coo.has_values());
  EXPECT_EQ(coo.rows, (std::vector<vid_t>{0, 1, 2}));
  EXPECT_EQ(coo.cols, (std::vector<vid_t>{0, 3, 1}));
}

TEST(MtxIo, ParsesRealValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 2 3.5\n"
      "2 1 -1e2\n");
  const Coo coo = read_matrix_market(in);
  ASSERT_TRUE(coo.has_values());
  EXPECT_DOUBLE_EQ(coo.vals[0], 3.5);
  EXPECT_DOUBLE_EQ(coo.vals[1], -100.0);
}

TEST(MtxIo, ExpandsSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5\n"
      "3 3 7\n");
  const Coo coo = read_matrix_market(in);
  EXPECT_EQ(coo.nnz(), 3);  // (1,0) + mirror (0,1) + diagonal (2,2)
  EXPECT_TRUE(coo.is_structurally_symmetric());
}

TEST(MtxIo, SkewSymmetricNegatesMirror) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 4\n");
  const Coo coo = read_matrix_market(in);
  ASSERT_EQ(coo.nnz(), 2);
  // sorted: (0,1)=-4, (1,0)=4
  EXPECT_DOUBLE_EQ(coo.vals[0], -4.0);
  EXPECT_DOUBLE_EQ(coo.vals[1], 4.0);
}

TEST(MtxIo, ParsesIntegerAndComplexFields) {
  std::istringstream i1(
      "%%MatrixMarket matrix coordinate integer general\n"
      "1 1 1\n"
      "1 1 9\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(i1).vals[0], 9.0);
  std::istringstream i2(
      "%%MatrixMarket matrix coordinate complex general\n"
      "1 1 1\n"
      "1 1 2.5 -1.0\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(i2).vals[0], 2.5);
}

TEST(MtxIo, RejectsMalformedInput) {
  std::istringstream no_banner("1 1 1\n1 1\n");
  EXPECT_THROW(read_matrix_market(no_banner), std::runtime_error);

  std::istringstream bad_format(
      "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_matrix_market(bad_format), std::runtime_error);

  std::istringstream out_of_range(
      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n");
  EXPECT_THROW(read_matrix_market(out_of_range), std::runtime_error);

  std::istringstream truncated(
      "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n");
  EXPECT_THROW(read_matrix_market(truncated), std::runtime_error);
}

TEST(MtxIo, CaseInsensitiveHeader) {
  std::istringstream in(
      "%%matrixmarket MATRIX Coordinate Pattern General\n"
      "1 1 1\n"
      "1 1\n");
  EXPECT_EQ(read_matrix_market(in).nnz(), 1);
}

TEST(MtxIo, WriteReadRoundTripPattern) {
  Coo coo;
  coo.num_rows = 3;
  coo.num_cols = 5;
  coo.add(0, 4);
  coo.add(2, 0);
  coo.sort_and_dedup();

  std::stringstream buf;
  write_matrix_market(buf, coo);
  const Coo back = read_matrix_market(buf);
  EXPECT_EQ(back.num_rows, coo.num_rows);
  EXPECT_EQ(back.num_cols, coo.num_cols);
  EXPECT_EQ(back.rows, coo.rows);
  EXPECT_EQ(back.cols, coo.cols);
}

TEST(MtxIo, WriteReadRoundTripValues) {
  Coo coo;
  coo.num_rows = coo.num_cols = 2;
  coo.add(0, 1, 0.125);
  coo.add(1, 0, -8.0);
  coo.sort_and_dedup();

  std::stringstream buf;
  write_matrix_market(buf, coo);
  const Coo back = read_matrix_market(buf);
  ASSERT_TRUE(back.has_values());
  EXPECT_DOUBLE_EQ(back.vals[0], 0.125);
  EXPECT_DOUBLE_EQ(back.vals[1], -8.0);
}

TEST(MtxIo, FileNotFoundThrows) {
  EXPECT_THROW(read_matrix_market_file("/no/such/file.mtx"),
               std::runtime_error);
}

TEST(MtxIoHardening, RejectsHostileSizeLines) {
  const std::string banner =
      "%%MatrixMarket matrix coordinate pattern general\n";
  expect_rejected(banner + "0 4 0\n", ErrorCode::kOutOfRange);
  expect_rejected(banner + "-3 4 1\n1 1\n", ErrorCode::kOutOfRange);
  expect_rejected(banner + "3 -4 1\n1 1\n", ErrorCode::kOutOfRange);
  expect_rejected(banner + "3 4 -1\n", ErrorCode::kOutOfRange);
  // Dimensions past the 32-bit vertex-id space.
  expect_rejected(banner + "4294967296 4 0\n", ErrorCode::kOutOfRange);
  // An entry count no real matrix reaches (and no reader should trust).
  expect_rejected(banner + "3 4 99999999999999\n", ErrorCode::kOutOfRange);
  // >19 digits overflows long long — must fail parse, not wrap.
  expect_rejected(banner + "3 4 99999999999999999999999\n",
                  ErrorCode::kBadInput);
  expect_rejected(banner + "99999999999999999999999 4 1\n1 1\n",
                  ErrorCode::kBadInput);
  expect_rejected(banner + "3 x 1\n1 1\n", ErrorCode::kBadInput);
}

TEST(MtxIoHardening, RejectsShortEntryLines) {
  const std::string banner =
      "%%MatrixMarket matrix coordinate pattern general\n";
  // A short line must not steal fields from the next line.
  expect_rejected(banner + "2 2 2\n1\n2 2\n", ErrorCode::kBadInput);
  std::istringstream real(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n");
  try {
    (void)read_matrix_market(real);
    FAIL() << "accepted entry without value";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadInput);
  }
}

TEST(MtxIoHardening, ReportsTruncationDistinctly) {
  const std::string banner =
      "%%MatrixMarket matrix coordinate pattern general\n";
  expect_rejected(banner, ErrorCode::kTruncatedInput);  // no size line
  expect_rejected(banner + "2 2 2\n1 1\n", ErrorCode::kTruncatedInput);
  expect_rejected("", ErrorCode::kTruncatedInput);
}

TEST(MtxIoHardening, LyingNnzDoesNotPreallocate) {
  // nnz below the cap but far beyond the data: entry storage must grow
  // with parsed lines, not the promise, so this fails fast and small.
  const std::string banner =
      "%%MatrixMarket matrix coordinate pattern general\n";
  expect_rejected(banner + "3 4 1000000000\n1 1\n",
                  ErrorCode::kTruncatedInput);
}

TEST(MtxIoHardening, BlankLinesBetweenEntriesAreTolerated) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "\n"
      "2 2\n");
  EXPECT_EQ(read_matrix_market(in).nnz(), 2);
}

TEST(MtxIoHardening, FileErrorsCarryIoCode) {
  try {
    (void)read_matrix_market_file("/no/such/file.mtx");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
    EXPECT_TRUE(e.is_input_error());
  }
}

}  // namespace
}  // namespace gcol
