#include <gtest/gtest.h>

#include "greedcolor/graph/builder.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(Conversions, BipartiteToGraphDropsDiagonal) {
  Coo coo;
  coo.num_rows = coo.num_cols = 3;
  coo.add(0, 0);
  coo.add(0, 1);
  coo.add(1, 0);
  coo.add(1, 1);
  coo.add(2, 2);
  const BipartiteGraph bg = build_bipartite(std::move(coo));
  const Graph g = bipartite_to_graph(bg);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_adjacency_entries(), 2);  // edge {0,1} both directions
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_TRUE(g.validate());
}

TEST(Conversions, BipartiteToGraphRequiresSquare) {
  Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 3;
  coo.add(0, 0);
  const BipartiteGraph bg = build_bipartite(std::move(coo));
  EXPECT_THROW(bipartite_to_graph(bg), std::invalid_argument);
}

TEST(Conversions, ClosedNeighborhoodNets) {
  const Graph g = build_graph(testing::path_coo(4));
  const BipartiteGraph bg = graph_to_bipartite_closed(g);
  EXPECT_EQ(bg.num_vertices(), 4);
  EXPECT_EQ(bg.num_nets(), 4);
  // Net of vertex 1 on the path 0-1-2-3 is N[1] = {0,1,2}.
  const auto net1 = bg.vtxs(1);
  EXPECT_EQ(std::vector<vid_t>(net1.begin(), net1.end()),
            (std::vector<vid_t>{0, 1, 2}));
  // Max net degree = 1 + max graph degree.
  EXPECT_EQ(bg.max_net_degree(), g.max_degree() + 1);
}

TEST(Conversions, ClosedNetsCoverAllDistance2Pairs) {
  const Graph g = build_graph(testing::cycle_coo(6));
  const BipartiteGraph bg = graph_to_bipartite_closed(g);
  // On C6, vertices 0 and 2 are at distance 2: they must share a net
  // (namely N[1]).
  bool share = false;
  for (const vid_t v : bg.nets(0)) {
    for (const vid_t u : bg.vtxs(v))
      if (u == 2) share = true;
  }
  EXPECT_TRUE(share);
  // Vertices 0 and 3 are at distance 3: no shared net.
  for (const vid_t v : bg.nets(0))
    for (const vid_t u : bg.vtxs(v)) EXPECT_NE(u, 3);
}

TEST(Conversions, RoundTripPreservesAdjacency) {
  const Graph g = build_graph(testing::complete_coo(5));
  // complete graph -> bipartite with diagonal -> back to graph
  Coo coo;
  coo.num_rows = coo.num_cols = 5;
  for (vid_t v = 0; v < 5; ++v) {
    coo.add(v, v);
    for (const vid_t u : g.neighbors(v)) coo.add(v, u);
  }
  const Graph g2 = bipartite_to_graph(build_bipartite(std::move(coo)));
  EXPECT_EQ(g2.num_adjacency_entries(), g.num_adjacency_entries());
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(g2.degree(v), g.degree(v));
}

}  // namespace
}  // namespace gcol
