// Cross-module integration: file IO -> graph -> ordering -> coloring ->
// verification -> post-processing, plus the Jacobian-compression
// round-trip that motivates BGPC, and a full registry sweep.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/color_stats.hpp"
#include "greedcolor/core/recolor.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/graph/mtx_io.hpp"
#include "greedcolor/order/ordering.hpp"
#include "greedcolor/util/prng.hpp"

namespace gcol {
namespace {

TEST(Integration, MtxFileToValidColoring) {
  const std::string path = ::testing::TempDir() + "gcol_integration.mtx";
  {
    PowerLawBipartiteParams p;
    p.rows = 120;
    p.cols = 400;
    p.min_deg = 2;
    p.max_deg = 60;
    p.seed = 55;
    write_matrix_market_file(path, gen_powerlaw_bipartite(p));
  }
  const BipartiteGraph g = build_bipartite(read_matrix_market_file(path));
  std::remove(path.c_str());

  const auto order = make_ordering(g, OrderingKind::kSmallestLast);
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.num_threads = 2;
  auto r = color_bgpc(g, opt, order);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  const color_t improved = recolor_bgpc_to_fixpoint(g, r.colors);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  EXPECT_LE(improved, r.num_colors);
}

TEST(Integration, JacobianCompressionRoundTrip) {
  // The motivating application: structurally-orthogonal column groups
  // let a sparse Jacobian J be recovered from J*S where S has one
  // column per color. Recovery is exact iff the coloring is a valid
  // BGPC of J's pattern.
  Xoshiro256 rng(2024);
  Coo coo;
  coo.num_rows = 80;
  coo.num_cols = 120;
  for (vid_t r = 0; r < coo.num_rows; ++r) {
    const int deg = 2 + static_cast<int>(rng.bounded(6));
    for (int k = 0; k < deg; ++k)
      coo.add(r, static_cast<vid_t>(rng.bounded(120)),
              1.0 + rng.uniform());
  }
  coo.sort_and_dedup();
  const Coo jac = coo;  // keep values
  const BipartiteGraph g = build_bipartite(coo);

  const auto res = color_bgpc(g, bgpc_preset("N1-N2"));
  ASSERT_TRUE(is_valid_bgpc(g, res.colors));
  const color_t p = res.num_colors;

  // Compressed product B = J * S, S[j][c] = 1 iff color(j) == c.
  std::vector<double> b(static_cast<std::size_t>(jac.num_rows) * p, 0.0);
  for (std::size_t i = 0; i < jac.rows.size(); ++i) {
    const auto row = static_cast<std::size_t>(jac.rows[i]);
    const auto col = static_cast<std::size_t>(
        res.colors[static_cast<std::size_t>(jac.cols[i])]);
    b[row * p + col] += jac.vals[i];
  }
  // Direct recovery: J[r][j] = B[r][color(j)] for structural nonzeros.
  for (std::size_t i = 0; i < jac.rows.size(); ++i) {
    const auto row = static_cast<std::size_t>(jac.rows[i]);
    const auto col = static_cast<std::size_t>(
        res.colors[static_cast<std::size_t>(jac.cols[i])]);
    EXPECT_DOUBLE_EQ(b[row * p + col], jac.vals[i])
        << "entry (" << jac.rows[i] << "," << jac.cols[i] << ")";
  }
}

TEST(Integration, FullRegistrySweepN1N2IsValid) {
  for (const auto& name : dataset_names()) {
    const BipartiteGraph g = load_bipartite(name);
    ColoringOptions opt = bgpc_preset("N1-N2");
    opt.num_threads = 4;
    const auto r = color_bgpc(g, opt);
    const auto violation = check_bgpc(g, r.colors);
    EXPECT_FALSE(violation.has_value())
        << name << ": " << (violation ? violation->to_string() : "");
    EXPECT_GE(r.num_colors, g.max_net_degree()) << name;
    EXPECT_FALSE(r.sequential_fallback) << name;
  }
}

TEST(Integration, ColorClassesPartitionTheVertexSet) {
  const BipartiteGraph g = load_bipartite("nlpkkt_s");
  const auto r = color_bgpc(g, bgpc_preset("V-N2"));
  const auto stats = color_class_stats(r.colors);
  vid_t total = 0;
  for (const vid_t c : stats.cardinality) total += c;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Integration, MaxRoundsFallbackProducesValidColoring) {
  // Force the safety valve with max_rounds=1 on a conflict-rich run.
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(2000, 700, 2, 70, 1.7, 61));
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.max_rounds = 1;
  opt.num_threads = 4;
  const auto r = color_bgpc(g, opt);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  // On a single hardware thread round 1 may finish conflict-free; only
  // require the fallback to have produced validity, not to have fired.
}

}  // namespace
}  // namespace gcol
