#include "greedcolor/graph/graph_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "greedcolor/graph/builder.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(GraphStats, NetDegreeStatsExact) {
  // Nets of degrees 1, 2, 3.
  Coo coo;
  coo.num_rows = 3;
  coo.num_cols = 3;
  coo.add(0, 0);
  coo.add(1, 0);
  coo.add(1, 1);
  coo.add(2, 0);
  coo.add(2, 1);
  coo.add(2, 2);
  const BipartiteGraph g = build_bipartite(std::move(coo));
  const DegreeStats s = net_degree_stats(g);
  EXPECT_EQ(s.max, 3);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(GraphStats, VertexDegreeStats) {
  const BipartiteGraph g = testing::single_net(4);
  const DegreeStats s = vertex_degree_stats(g);
  EXPECT_EQ(s.max, 1);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(GraphStats, UnipartiteDegreeStats) {
  const Graph g = build_graph(testing::star_coo(5));
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 5.0);
}

TEST(GraphStats, SignatureMentionsKeyNumbers) {
  const BipartiteGraph g = testing::disjoint_nets(2, 3);
  const std::string sig = signature(g);
  EXPECT_NE(sig.find("2x6"), std::string::npos);
  EXPECT_NE(sig.find("Lmax=3"), std::string::npos);
}

TEST(GraphStats, EmptyGraphStatsAreZero) {
  Coo coo;
  coo.num_rows = coo.num_cols = 0;
  // A 0x0 pattern cannot be built (dims must be positive for builders),
  // so check the degenerate all-isolated case instead.
  Coo iso;
  iso.num_rows = 2;
  iso.num_cols = 2;
  const BipartiteGraph g = build_bipartite(std::move(iso));
  const DegreeStats s = net_degree_stats(g);
  EXPECT_EQ(s.max, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace gcol
