// gcol-mc: schedule exploration over the speculative kernels.
//
// The trace-codec and attachment tests run in every build. The
// exploration tests need the GCOL_MC schedule points compiled into the
// kernels (the modelcheck preset) and GTEST_SKIP elsewhere — in a
// normal build the kernels never yield, so there is nothing to explore.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "greedcolor/check/explore.hpp"
#include "greedcolor/check/mc.hpp"
#include "greedcolor/check/trace.hpp"
#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/robust/error.hpp"
#include "greedcolor/robust/fault.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

using check::ExploreMode;
using check::McContext;
using check::McOptions;
using check::McResult;
using check::McTrace;
using check::McViolationKind;

McOptions mc_options(ExploreMode mode) {
  McOptions opts;
  opts.mode = mode;
  opts.virtual_threads = 2;
  opts.max_schedules = 200000;
  opts.time_budget_seconds = 60.0;
  return opts;
}

// ---- trace codec (build-independent) --------------------------------

TEST(McTrace, EncodeDecodeRoundTrip) {
  McTrace trace;
  trace.label = "bgpc V-V mode=dpor vthreads=2 seed=7";
  trace.choices = {0, 1, 1, 0, 2, 0};
  const McTrace back = check::decode_trace(check::encode_trace(trace));
  EXPECT_EQ(back, trace);
  EXPECT_EQ(back.label, trace.label);
}

TEST(McTrace, EmptyChoicesRoundTrip) {
  McTrace trace;  // a schedule with no real decision points
  const McTrace back = check::decode_trace(check::encode_trace(trace));
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(back.version, 1u);
}

TEST(McTrace, DecodeRejectsMalformed) {
  const auto code_of = [](const std::string& text) {
    try {
      (void)check::decode_trace(text);
    } catch (const Error& e) {
      return e.code();
    }
    return ErrorCode::kInternalInvariant;  // "did not throw"
  };
  EXPECT_EQ(code_of(""), ErrorCode::kBadInput);
  EXPECT_EQ(code_of("not-a-trace v1\nchoices=0"), ErrorCode::kBadInput);
  EXPECT_EQ(code_of("gcol-mc-trace v9\nchoices=0"), ErrorCode::kBadInput);
  EXPECT_EQ(code_of("gcol-mc-trace v1\nchoices=0,bogus"),
            ErrorCode::kBadInput);
  EXPECT_EQ(code_of("gcol-mc-trace v1\nchoices=999"), ErrorCode::kBadInput);
  EXPECT_EQ(code_of("gcol-mc-trace v1\nwhat=ever"), ErrorCode::kBadInput);
  // Missing choices line entirely.
  EXPECT_EQ(code_of("gcol-mc-trace v1\nlabel=x"), ErrorCode::kBadInput);
}

TEST(McTrace, FileRoundTripAndIoErrors) {
  McTrace trace;
  trace.label = "file round-trip";
  trace.choices = {1, 0, 1};
  const std::string path =
      ::testing::TempDir() + "gcol_mc_trace_roundtrip.mctrace";
  check::write_trace_file(trace, path);
  EXPECT_EQ(check::read_trace_file(path), trace);
  std::remove(path.c_str());
  EXPECT_THROW((void)check::read_trace_file(path), Error);
}

// ---- attachment semantics (build-independent) -----------------------

// An attached but never-armed checker must be inert: the driver hooks
// and (in GCOL_MC builds) the kernel yields all no-op.
TEST(McAttach, UnarmedCheckerIsInert) {
  const BipartiteGraph g = testing::single_net(4);
  McContext ctx;
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 2;
  opt.checker = &ctx;
  const ColoringResult r = color_bgpc(g, opt);
  EXPECT_EQ(r.colors.size(), 4u);
  EXPECT_EQ(r.num_colors, 4);
}

TEST(McAttach, ArmRequiresMcBuild) {
  if (check::kMcEnabled) GTEST_SKIP() << "GCOL_MC build: arm is allowed";
  McContext ctx;
  class Never : public check::Strategy {
    int pick(const check::SchedulePoint&) override { return 0; }
  } strategy;
  try {
    ctx.arm(strategy);
    FAIL() << "arm() must throw without GCOL_MC";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

// ---- schedule exploration (GCOL_MC builds only) ---------------------

#define GCOL_MC_ONLY()                                              \
  do {                                                              \
    if (!check::kMcEnabled)                                         \
      GTEST_SKIP() << "needs a GCOL_MC build (modelcheck preset)";  \
  } while (0)

// Acceptance (a): exhaustive exploration of a <=6-vertex BGPC fixture
// with 2 virtual threads, zero violations on clean kernels.
TEST(McExplore, ExhaustiveCleanSingleNet) {
  GCOL_MC_ONLY();
  const BipartiteGraph g = testing::single_net(3);
  McOptions opts = mc_options(ExploreMode::kExhaustive);
  const McResult res = model_check_bgpc(g, bgpc_preset("V-V"), {}, opts);
  SCOPED_TRACE(res.summary());
  EXPECT_TRUE(res.clean());
  EXPECT_TRUE(res.complete);
  EXPECT_FALSE(res.budget_exhausted);
  EXPECT_EQ(res.max_team, 2);
  EXPECT_GE(res.schedules_explored, 2u);
}

// The 6-vertex corner of the corpus: tractable for the hash-pruned
// exhaustive DFS (the per-decision state space is small even though the
// raw schedule count is astronomical).
TEST(McExplore, ExhaustiveCleanDisjointNets) {
  GCOL_MC_ONLY();
  const BipartiteGraph g = testing::disjoint_nets(2, 3);  // 6 vertices
  McOptions opts = mc_options(ExploreMode::kExhaustive);
  const McResult res = model_check_bgpc(g, bgpc_preset("V-V"), {}, opts);
  SCOPED_TRACE(res.summary());
  EXPECT_TRUE(res.clean());
  EXPECT_TRUE(res.complete);
}

TEST(McExplore, DporCleanSingleNet) {
  GCOL_MC_ONLY();
  const BipartiteGraph g = testing::single_net(3);
  McOptions opts = mc_options(ExploreMode::kDpor);
  const McResult res = model_check_bgpc(g, bgpc_preset("V-V"), {}, opts);
  SCOPED_TRACE(res.summary());
  EXPECT_TRUE(res.clean());
  EXPECT_TRUE(res.complete);
}

// The net-based kernels (Algs. 7/8) run through the same seam.
TEST(McExplore, DporCleanNetKernels) {
  GCOL_MC_ONLY();
  const BipartiteGraph g = testing::single_net(3);
  McOptions opts = mc_options(ExploreMode::kDpor);
  const McResult res = model_check_bgpc(g, bgpc_preset("N1-N2"), {}, opts);
  SCOPED_TRACE(res.summary());
  EXPECT_TRUE(res.clean());
  EXPECT_TRUE(res.complete);
}

TEST(McExplore, DporCleanD2gc) {
  GCOL_MC_ONLY();
  const Graph g = build_graph(testing::path_coo(4));
  McOptions opts = mc_options(ExploreMode::kDpor);
  const McResult res = model_check_d2gc(g, d2gc_preset("V-V"), {}, opts);
  SCOPED_TRACE(res.summary());
  EXPECT_TRUE(res.clean());
  EXPECT_TRUE(res.complete);
}

TEST(McExplore, RandomFuzzCleanAndSeedStable) {
  GCOL_MC_ONLY();
  const BipartiteGraph g = testing::disjoint_nets(2, 2);
  McOptions opts = mc_options(ExploreMode::kRandom);
  opts.seed = 42;
  opts.random_schedules = 64;
  const McResult a = model_check_bgpc(g, bgpc_preset("V-V"), {}, opts);
  SCOPED_TRACE(a.summary());
  EXPECT_TRUE(a.clean());
  EXPECT_FALSE(a.complete);  // sampling proves nothing about coverage
  EXPECT_TRUE(a.budget_exhausted);
  EXPECT_EQ(a.schedules_explored, 64u);
  // Same seed, same campaign.
  const McResult b = model_check_bgpc(g, bgpc_preset("V-V"), {}, opts);
  EXPECT_EQ(a.decisions_total, b.decisions_total);
}

// Acceptance (b): a seeded FaultPlan stale write — the exact escape
// ThreadSanitizer provably cannot flag, because the corrupting store is
// a single-threaded post-round write — is reported as an
// escaped-conflict violation with a replayable trace.
TEST(McExplore, FaultPlanEscapeFoundWithTrace) {
  GCOL_MC_ONLY();
  const BipartiteGraph g = testing::single_net(3);
  FaultPlan faults;
  faults.seed = 7;
  faults.stale_color_rate = 1.0;
  ColoringOptions base = bgpc_preset("V-V");
  base.fault_plan = &faults;

  McOptions opts = mc_options(ExploreMode::kDpor);
  const McResult res = model_check_bgpc(g, base, {}, opts);
  SCOPED_TRACE(res.summary());
  ASSERT_FALSE(res.violations.empty());
  EXPECT_EQ(res.violations.front().kind, McViolationKind::kEscapedConflict);
  EXPECT_FALSE(res.witness.label.empty());

  // The witness replays to the identical violation, deterministically.
  McOptions ropts = mc_options(ExploreMode::kReplay);
  ropts.replay = res.witness;
  ropts.minimize = false;
  const McResult r1 = model_check_bgpc(g, base, {}, ropts);
  const McResult r2 = model_check_bgpc(g, base, {}, ropts);
  ASSERT_FALSE(r1.violations.empty());
  ASSERT_FALSE(r2.violations.empty());
  EXPECT_TRUE(r1.violations.front().same_shape(res.violations.front()));
  EXPECT_TRUE(r2.violations.front().same_shape(res.violations.front()));
  EXPECT_EQ(r1.witness.choices, r2.witness.choices);

  // And survives the on-disk round trip (the --mc-replay file path).
  const std::string path = ::testing::TempDir() + "gcol_mc_witness.mctrace";
  check::write_trace_file(res.witness, path);
  McOptions fopts = mc_options(ExploreMode::kReplay);
  fopts.replay = check::read_trace_file(path);
  fopts.minimize = false;
  const McResult r3 = model_check_bgpc(g, base, {}, fopts);
  std::remove(path.c_str());
  ASSERT_FALSE(r3.violations.empty());
  EXPECT_TRUE(r3.violations.front().same_shape(res.violations.front()));
}

// The same escape hunt on the D2GC engine.
TEST(McExplore, FaultPlanEscapeFoundD2gc) {
  GCOL_MC_ONLY();
  const Graph g = build_graph(testing::path_coo(4));
  FaultPlan faults;
  faults.seed = 3;
  faults.stale_color_rate = 1.0;
  ColoringOptions base = d2gc_preset("V-V");
  base.fault_plan = &faults;
  McOptions opts = mc_options(ExploreMode::kDpor);
  const McResult res = model_check_d2gc(g, base, {}, opts);
  SCOPED_TRACE(res.summary());
  ASSERT_FALSE(res.violations.empty());
  EXPECT_EQ(res.violations.front().kind, McViolationKind::kEscapedConflict);
}

// The DPOR reduction must not change the verdict, only the work: the
// reduced exploration agrees with ground-truth exhaustive (hash pruning
// off — with it on, "exhaustive" is itself a reduction) on a clean
// fixture, while exploring no more schedules.
TEST(McExplore, DporAgreesWithExhaustive) {
  GCOL_MC_ONLY();
  const BipartiteGraph g = testing::single_net(2);
  McOptions ground_truth = mc_options(ExploreMode::kExhaustive);
  ground_truth.hash_prune = false;
  const McResult full =
      model_check_bgpc(g, bgpc_preset("V-V"), {}, ground_truth);
  const McResult reduced = model_check_bgpc(
      g, bgpc_preset("V-V"), {}, mc_options(ExploreMode::kDpor));
  SCOPED_TRACE(full.summary() + " | " + reduced.summary());
  EXPECT_TRUE(full.clean());
  EXPECT_TRUE(reduced.clean());
  EXPECT_TRUE(full.complete);
  EXPECT_TRUE(reduced.complete);
  EXPECT_LE(reduced.schedules_explored, full.schedules_explored);
}

}  // namespace
}  // namespace gcol
