#include "greedcolor/util/argparse.hpp"

#include <gtest/gtest.h>

namespace gcol {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(ArgParser, KeyValueSpaceForm) {
  const auto a = parse({"prog", "--threads", "8"});
  EXPECT_EQ(a.get_int("threads", 0), 8);
}

TEST(ArgParser, KeyValueEqualsForm) {
  const auto a = parse({"prog", "--threads=16"});
  EXPECT_EQ(a.get_int("threads", 0), 16);
}

TEST(ArgParser, BareFlag) {
  const auto a = parse({"prog", "--verify"});
  EXPECT_TRUE(a.has("verify"));
  EXPECT_TRUE(a.get_bool("verify", false));
  EXPECT_FALSE(a.has("other"));
}

TEST(ArgParser, BoolValues) {
  EXPECT_TRUE(parse({"p", "--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"p", "--x=1"}).get_bool("x", false));
  EXPECT_TRUE(parse({"p", "--x=on"}).get_bool("x", false));
  EXPECT_FALSE(parse({"p", "--x=false"}).get_bool("x", true));
  EXPECT_TRUE(parse({"p"}).get_bool("x", true));  // fallback
}

TEST(ArgParser, Fallbacks) {
  const auto a = parse({"prog"});
  EXPECT_EQ(a.get_int("n", 42), 42);
  EXPECT_EQ(a.get_string("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(a.get_double("d", 2.5), 2.5);
}

TEST(ArgParser, DoubleParsing) {
  const auto a = parse({"prog", "--alpha", "1.75"});
  EXPECT_DOUBLE_EQ(a.get_double("alpha", 0.0), 1.75);
}

TEST(ArgParser, IntList) {
  const auto a = parse({"prog", "--threads", "1,2,4,8,16"});
  EXPECT_EQ(a.get_int_list("threads", {}),
            (std::vector<int>{1, 2, 4, 8, 16}));
}

TEST(ArgParser, IntListFallback) {
  const auto a = parse({"prog"});
  EXPECT_EQ(a.get_int_list("threads", {3}), (std::vector<int>{3}));
}

TEST(ArgParser, Positional) {
  const auto a = parse({"prog", "input.mtx", "--algo", "V-V", "more"});
  EXPECT_EQ(a.positional(),
            (std::vector<std::string>{"input.mtx", "more"}));
  EXPECT_EQ(a.get_string("algo", ""), "V-V");
}

TEST(ArgParser, NegativeNumberIsValueNotOption) {
  const auto a = parse({"prog", "--offset", "-5"});
  // "-5" does not start with "--", so it is consumed as a value.
  EXPECT_EQ(a.get_int("offset", 0), -5);
}

TEST(ArgParser, UnknownOptionDetection) {
  const auto a = parse({"prog", "--thraeds", "4", "--algo", "V-V"});
  const auto unknown = a.unknown_options({"threads", "algo"});
  EXPECT_EQ(unknown, (std::vector<std::string>{"thraeds"}));
}

}  // namespace
}  // namespace gcol
