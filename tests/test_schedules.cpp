// Schedule semantics: which kernel runs in which round for every named
// preset — the defining property of the paper's algorithm names.
#include <gtest/gtest.h>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

/// A conflict-rich instance guaranteeing several rounds at 4 threads.
BipartiteGraph busy_graph() {
  return build_bipartite(gen_clique_union(2500, 900, 2, 80, 1.7, 66));
}

std::pair<std::string, std::string> kernel_trace(
    const ColoringResult& r) {
  std::string color, conflict;
  for (const auto& it : r.iterations) {
    color += it.net_based_coloring ? 'N' : 'V';
    conflict += it.net_based_conflict ? 'N' : 'V';
  }
  return {color, conflict};
}

TEST(Schedules, TracesMatchAlgorithmNames) {
  const BipartiteGraph g = busy_graph();
  auto run = [&](const char* name) {
    ColoringOptions opt = bgpc_preset(name);
    opt.num_threads = 4;
    const auto r = color_bgpc(g, opt);
    EXPECT_TRUE(is_valid_bgpc(g, r.colors)) << name;
    return kernel_trace(r);
  };

  {
    const auto [color, conflict] = run("V-V");
    EXPECT_EQ(color.find('N'), std::string::npos);
    EXPECT_EQ(conflict.find('N'), std::string::npos);
  }
  {
    const auto [color, conflict] = run("V-Ninf");
    EXPECT_EQ(color.find('N'), std::string::npos);
    EXPECT_EQ(conflict.find('V'), std::string::npos);  // net everywhere
  }
  {
    const auto [color, conflict] = run("V-N1");
    EXPECT_EQ(color.find('N'), std::string::npos);
    EXPECT_EQ(conflict.substr(0, 1), "N");
    if (conflict.size() > 1) {
      EXPECT_EQ(conflict.find('N', 1), std::string::npos);
    }
  }
  {
    const auto [color, conflict] = run("V-N2");
    EXPECT_EQ(color.find('N'), std::string::npos);
    EXPECT_EQ(conflict.substr(0, std::min<std::size_t>(2, conflict.size())),
              std::string("NN").substr(0, std::min<std::size_t>(
                                              2, conflict.size())));
    if (conflict.size() > 2) {
      EXPECT_EQ(conflict.find('N', 2), std::string::npos);
    }
  }
  {
    const auto [color, conflict] = run("N1-N2");
    EXPECT_EQ(color.substr(0, 1), "N");
    if (color.size() > 1) {
      EXPECT_EQ(color.find('N', 1), std::string::npos);
    }
    EXPECT_EQ(conflict.substr(0, 1), "N");
  }
  {
    const auto [color, conflict] = run("N2-N2");
    if (color.size() >= 2) {
      EXPECT_EQ(color.substr(0, 2), "NN");
    }
    if (color.size() > 2) {
      EXPECT_EQ(color.find('N', 2), std::string::npos);
    }
    (void)conflict;
  }
}

TEST(Schedules, SharedAndLazyQueuesFindTheSameConflictsSequentially) {
  // At one thread the two queue strategies are semantically identical
  // (order may differ; V-V at t=1 is conflict-free anyway, so compare
  // on a forced multi-round adaptive run instead: t=1 => same rounds).
  const BipartiteGraph g = busy_graph();
  ColoringOptions shared = bgpc_preset("V-V");
  shared.num_threads = 1;
  ColoringOptions lazy = shared;
  lazy.queue = QueuePolicy::kLazy;
  const auto a = color_bgpc(g, shared);
  const auto b = color_bgpc(g, lazy);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Schedules, D2gcTracesMatchToo) {
  const Graph g = build_graph(gen_clique_union(1200, 450, 2, 40, 1.8, 15));
  ColoringOptions opt = d2gc_preset("N1-N2");
  opt.num_threads = 4;
  const auto r = color_d2gc(g, opt);
  EXPECT_TRUE(is_valid_d2gc(g, r.colors));
  const auto [color, conflict] = kernel_trace(r);
  EXPECT_EQ(color.substr(0, 1), "N");
  if (color.size() > 1) {
    EXPECT_EQ(color.find('N', 1), std::string::npos);
  }
  EXPECT_EQ(conflict.substr(0, 1), "N");
}

TEST(Schedules, D2gcMaxRoundsFallbackStaysValid) {
  const Graph g = build_graph(gen_clique_union(1200, 450, 2, 40, 1.8, 16));
  ColoringOptions opt = d2gc_preset("N1-N2");
  opt.max_rounds = 1;
  opt.num_threads = 4;
  const auto r = color_d2gc(g, opt);
  EXPECT_TRUE(is_valid_d2gc(g, r.colors));
}

}  // namespace
}  // namespace gcol
