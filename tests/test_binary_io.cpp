#include "greedcolor/graph/binary_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(BinaryIo, BipartiteRoundTrip) {
  PowerLawBipartiteParams p;
  p.rows = 80;
  p.cols = 300;
  p.min_deg = 2;
  p.max_deg = 40;
  p.seed = 9;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  const BipartiteGraph back = read_binary_bipartite(buf);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_nets(), g.num_nets());
  EXPECT_EQ(back.vptr(), g.vptr());
  EXPECT_EQ(back.vadj(), g.vadj());
  EXPECT_EQ(back.nptr(), g.nptr());
  EXPECT_EQ(back.nadj(), g.nadj());
}

TEST(BinaryIo, GraphRoundTrip) {
  const Graph g = build_graph(gen_mesh2d(12, 9, 1));
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  const Graph back = read_binary_graph(buf);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.ptr(), g.ptr());
  EXPECT_EQ(back.adj(), g.adj());
}

TEST(BinaryIo, KindDetection) {
  const BipartiteGraph bg = testing::single_net(4);
  const Graph g = build_graph(testing::path_coo(4));
  std::stringstream b1(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(b1, bg);
  EXPECT_EQ(binary_kind(b1), "bipartite");
  // Peeking must not consume: a full read must still succeed.
  EXPECT_EQ(read_binary_bipartite(b1).num_vertices(), 4);

  std::stringstream b2(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(b2, g);
  EXPECT_EQ(binary_kind(b2), "graph");

  std::stringstream junk("not a greedcolor file");
  EXPECT_EQ(binary_kind(junk), "");
}

TEST(BinaryIo, RejectsWrongKind) {
  const Graph g = build_graph(testing::path_coo(4));
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  EXPECT_THROW(read_binary_bipartite(buf), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncation) {
  const BipartiteGraph g = testing::disjoint_nets(3, 3);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(read_binary_bipartite(cut), std::runtime_error);
}

TEST(BinaryIo, RejectsGarbage) {
  std::stringstream junk("GARBAGEGARBAGEGARBAGE");
  EXPECT_THROW(read_binary_graph(junk), std::runtime_error);
}

TEST(BinaryIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "gcol_binary_test.bin";
  const BipartiteGraph g = testing::disjoint_nets(5, 4);
  write_binary_file(path, g);
  const BipartiteGraph back = read_binary_bipartite_file(path);
  EXPECT_EQ(back.num_edges(), g.num_edges());
  std::remove(path.c_str());
  EXPECT_THROW(read_binary_bipartite_file("/no/such/file.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace gcol
