#include "greedcolor/graph/binary_io.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/robust/error.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(BinaryIo, BipartiteRoundTrip) {
  PowerLawBipartiteParams p;
  p.rows = 80;
  p.cols = 300;
  p.min_deg = 2;
  p.max_deg = 40;
  p.seed = 9;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  const BipartiteGraph back = read_binary_bipartite(buf);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_nets(), g.num_nets());
  EXPECT_EQ(back.vptr(), g.vptr());
  EXPECT_EQ(back.vadj(), g.vadj());
  EXPECT_EQ(back.nptr(), g.nptr());
  EXPECT_EQ(back.nadj(), g.nadj());
}

TEST(BinaryIo, GraphRoundTrip) {
  const Graph g = build_graph(gen_mesh2d(12, 9, 1));
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  const Graph back = read_binary_graph(buf);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.ptr(), g.ptr());
  EXPECT_EQ(back.adj(), g.adj());
}

TEST(BinaryIo, KindDetection) {
  const BipartiteGraph bg = testing::single_net(4);
  const Graph g = build_graph(testing::path_coo(4));
  std::stringstream b1(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(b1, bg);
  EXPECT_EQ(binary_kind(b1), "bipartite");
  // Peeking must not consume: a full read must still succeed.
  EXPECT_EQ(read_binary_bipartite(b1).num_vertices(), 4);

  std::stringstream b2(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(b2, g);
  EXPECT_EQ(binary_kind(b2), "graph");

  std::stringstream junk("not a greedcolor file");
  EXPECT_EQ(binary_kind(junk), "");
}

TEST(BinaryIo, RejectsWrongKind) {
  const Graph g = build_graph(testing::path_coo(4));
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  EXPECT_THROW(read_binary_bipartite(buf), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncation) {
  const BipartiteGraph g = testing::disjoint_nets(3, 3);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(read_binary_bipartite(cut), std::runtime_error);
}

TEST(BinaryIo, RejectsGarbage) {
  std::stringstream junk("GARBAGEGARBAGEGARBAGE");
  EXPECT_THROW(read_binary_graph(junk), std::runtime_error);
}

/// Serialized bytes of a small valid bipartite graph.
std::string valid_bipartite_bytes() {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, testing::disjoint_nets(3, 3));
  return buf.str();
}

/// Overwrite sizeof(T) bytes at `offset` with `value`.
template <typename T>
std::string patched(std::string bytes, std::size_t offset, T value) {
  std::memcpy(&bytes[offset], &value, sizeof(T));
  return bytes;
}

ErrorCode code_of(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  try {
    (void)read_binary_bipartite(in);
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "tampered bytes accepted";
  return ErrorCode::kInternalInvariant;
}

// Layout: magic[8] | nv int64 | nn int64 | vptr len u64 | vptr data...
constexpr std::size_t kNvOffset = 8;
constexpr std::size_t kVptrLenOffset = 24;

TEST(BinaryIoHardening, HeaderLengthCheckedAgainstStreamSize) {
  // Declare a 2^36-element vptr: structurally plausible only if nv were
  // huge, and far beyond the bytes present. Must be rejected before any
  // allocation happens (a naive reader would try ~512 GiB here).
  const auto bytes = patched<std::uint64_t>(valid_bipartite_bytes(),
                                            kVptrLenOffset, 1ULL << 36);
  EXPECT_EQ(code_of(bytes), ErrorCode::kCorruptHeader);
}

TEST(BinaryIoHardening, LengthBeyondStreamRejectedEvenWhenPlausible) {
  // nv+1 = 5 elements would be plausible for nv=4, but the stream holds
  // the original 4 vertices' data; the byte-budget check must fire.
  auto bytes = valid_bipartite_bytes();
  bytes = patched<std::int64_t>(bytes, kNvOffset, 1LL << 30);
  bytes = patched<std::uint64_t>(bytes, kVptrLenOffset, (1ULL << 30) + 1);
  EXPECT_EQ(code_of(bytes), ErrorCode::kCorruptHeader);
}

TEST(BinaryIoHardening, NegativeDimensionsRejected) {
  const auto bytes =
      patched<std::int64_t>(valid_bipartite_bytes(), kNvOffset, -5);
  EXPECT_EQ(code_of(bytes), ErrorCode::kOutOfRange);
}

TEST(BinaryIoHardening, CorruptPtrContentsRejectedBeforeConstruction) {
  // Poison the first vptr entry (must be 0): validate()-time span
  // construction would be undefined behavior, so the reader has to
  // catch it structurally first.
  const auto bytes = patched<eid_t>(valid_bipartite_bytes(),
                                    kVptrLenOffset + 8, eid_t{999});
  const auto code = code_of(bytes);
  EXPECT_TRUE(code == ErrorCode::kBadInput || code == ErrorCode::kCorruptHeader)
      << to_string(code);
}

TEST(BinaryIoHardening, TypedCodesForTruncationAndBadMagic) {
  const auto full = valid_bipartite_bytes();
  EXPECT_EQ(code_of(full.substr(0, 4)), ErrorCode::kTruncatedInput);
  EXPECT_EQ(code_of(full.substr(0, 20)), ErrorCode::kTruncatedInput);
  std::string wrong = full;
  wrong[0] = 'X';
  EXPECT_EQ(code_of(wrong), ErrorCode::kCorruptHeader);
}

TEST(BinaryIoHardening, EveryPrefixFailsTypedNotFatally) {
  const auto full = valid_bipartite_bytes();
  for (std::size_t len = 0; len < full.size(); len += 7) {
    std::istringstream in(full.substr(0, len), std::ios::binary);
    EXPECT_THROW((void)read_binary_bipartite(in), Error) << "len=" << len;
  }
}

TEST(BinaryIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "gcol_binary_test.bin";
  const BipartiteGraph g = testing::disjoint_nets(5, 4);
  write_binary_file(path, g);
  const BipartiteGraph back = read_binary_bipartite_file(path);
  EXPECT_EQ(back.num_edges(), g.num_edges());
  std::remove(path.c_str());
  EXPECT_THROW(read_binary_bipartite_file("/no/such/file.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace gcol
