#include "greedcolor/graph/datasets.hpp"

#include <gtest/gtest.h>

#include "greedcolor/graph/graph_stats.hpp"

namespace gcol {
namespace {

TEST(Datasets, RegistryHasEightEntriesInPaperOrder) {
  const auto& reg = dataset_registry();
  ASSERT_EQ(reg.size(), 8u);
  EXPECT_EQ(reg[0].name, "movielens_s");
  EXPECT_EQ(reg[7].name, "uk2002_s");
}

TEST(Datasets, FiveAreMarkedForD2gc) {
  // Table II's last column: 5 of 8 matrices used for D2GC.
  EXPECT_EQ(dataset_names(/*d2gc_only=*/true).size(), 5u);
  EXPECT_EQ(dataset_names(false).size(), 8u);
}

TEST(Datasets, FindByNameAndUnknownThrows) {
  EXPECT_EQ(find_dataset("bone_s").mimics, "bone010");
  EXPECT_THROW((void)find_dataset("nope"), std::out_of_range);
}

TEST(Datasets, SymmetryFlagsMatchGeneratedPatterns) {
  for (const auto& d : dataset_registry()) {
    const Coo coo = d.make();
    EXPECT_EQ(coo.is_structurally_symmetric(), d.structurally_symmetric)
        << d.name;
  }
}

TEST(Datasets, D2gcSubsetIsLoadableAsGraph) {
  for (const auto& name : dataset_names(true)) {
    const Graph g = load_graph(name);
    EXPECT_GT(g.num_vertices(), 0) << name;
    // No full validate() here (costly); degree sanity only.
    EXPECT_GT(g.max_degree(), 0) << name;
  }
}

TEST(Datasets, NonSymmetricRejectsGraphView) {
  EXPECT_THROW(load_graph("movielens_s"), std::invalid_argument);
}

TEST(Datasets, DeterministicGeneration) {
  const Coo a = find_dataset("hv15r_s").make();
  const Coo b = find_dataset("hv15r_s").make();
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.cols, b.cols);
}

TEST(Datasets, SignatureShapesMatchTable2Drivers) {
  // The structural signatures the generators were tuned to: skew for
  // movielens/copapers/uk2002, near-uniform for the meshes and HV15R.
  {
    const auto g = load_bipartite("movielens_s");
    const auto s = net_degree_stats(g);
    EXPECT_GT(s.max, 20 * s.mean);  // violent skew
    EXPECT_LT(g.num_nets(), g.num_vertices());  // rectangular
  }
  {
    const auto g = load_bipartite("afshell_s");
    const auto s = net_degree_stats(g);
    EXPECT_LE(s.max, 25);
    EXPECT_LT(s.stddev, 3.0);
  }
  {
    const auto g = load_bipartite("hv15r_s");
    const auto s = net_degree_stats(g);
    EXPECT_GT(s.mean, 50);           // large rows
    EXPECT_LT(s.stddev / s.mean, 0.1);  // near-constant
  }
  {
    const auto g = load_bipartite("uk2002_s");
    const auto s = net_degree_stats(g);
    EXPECT_GT(s.max, 30 * s.mean);  // hubs
  }
}

}  // namespace
}  // namespace gcol
