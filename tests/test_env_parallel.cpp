#include <gtest/gtest.h>

#include "greedcolor/util/counters.hpp"
#include "greedcolor/util/env.hpp"
#include "greedcolor/util/parallel.hpp"
#include "greedcolor/util/timer.hpp"

namespace gcol {
namespace {

TEST(Parallel, ThreadCountScopeRestores) {
  const int before = max_threads();
  {
    ThreadCountScope scope(3);
    EXPECT_EQ(max_threads(), 3);
    {
      ThreadCountScope inner(1);
      EXPECT_EQ(max_threads(), 1);
    }
    EXPECT_EQ(max_threads(), 3);
  }
  EXPECT_EQ(max_threads(), before);
}

TEST(Parallel, ZeroRequestLeavesDefault) {
  const int before = max_threads();
  ThreadCountScope scope(0);
  EXPECT_EQ(max_threads(), before);
}

TEST(Parallel, HardwareThreadsPositive) {
  EXPECT_GE(hardware_threads(), 1);
  EXPECT_GE(current_thread(), 0);
}

TEST(Env, QueryReportsCompilerAndCounters) {
  const EnvInfo e = query_env();
  EXPECT_GE(e.hardware_threads, 1);
  EXPECT_FALSE(e.compiler.empty());
  EXPECT_EQ(e.counters_enabled, kCountersEnabled);
}

TEST(Env, BannerMentionsKeyFields) {
  const std::string b = env_banner();
  EXPECT_NE(b.find("greedcolor"), std::string::npos);
  EXPECT_NE(b.find("hw thread"), std::string::npos);
  EXPECT_NE(b.find("counters"), std::string::npos);
}

TEST(Counters, AccumulateAndTotalWork) {
  KernelCounters a, b;
  a.edges_visited = 10;
  a.color_probes = 5;
  a.conflicts = 1;
  a.colored = 2;
  b.edges_visited = 1;
  b.color_probes = 2;
  b += a;
  EXPECT_EQ(b.edges_visited, 11u);
  EXPECT_EQ(b.color_probes, 7u);
  EXPECT_EQ(b.conflicts, 1u);
  EXPECT_EQ(b.total_work(), 18u);
}

TEST(Timer, MeasuresMonotonically) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);  // reset brings it back near zero
  // milliseconds() is the same clock scaled by 1e3 (up to read skew).
  EXPECT_LT(t.seconds() * 1e3, t.milliseconds() + 1.0);
}

}  // namespace
}  // namespace gcol
