#include "greedcolor/core/bgpc.hpp"

#include <gtest/gtest.h>

#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/order/ordering.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(BgpcSequential, SingleNetUsesExactlyItsDegreeColors) {
  const BipartiteGraph g = testing::single_net(6);
  const auto r = color_bgpc_sequential(g);
  EXPECT_EQ(r.num_colors, 6);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  // First-fit over natural order gives colors 0..5 in order.
  for (vid_t u = 0; u < 6; ++u)
    EXPECT_EQ(r.colors[static_cast<std::size_t>(u)], u);
}

TEST(BgpcSequential, IdentityPatternUsesOneColor) {
  const BipartiteGraph g = testing::identity_pattern(10);
  const auto r = color_bgpc_sequential(g);
  EXPECT_EQ(r.num_colors, 1);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
}

TEST(BgpcSequential, DisjointNetsReuseColors) {
  const BipartiteGraph g = testing::disjoint_nets(5, 4);
  const auto r = color_bgpc_sequential(g);
  EXPECT_EQ(r.num_colors, 4);  // = L, reused across nets
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
}

TEST(BgpcSequential, IsDeterministic) {
  PowerLawBipartiteParams p;
  p.rows = 60;
  p.cols = 200;
  p.seed = 3;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  const auto a = color_bgpc_sequential(g);
  const auto b = color_bgpc_sequential(g);
  EXPECT_EQ(a.colors, b.colors);
}

TEST(BgpcSequential, RespectsOrder) {
  const BipartiteGraph g = testing::single_net(4);
  const std::vector<vid_t> reversed = {3, 2, 1, 0};
  const auto r = color_bgpc_sequential(g, reversed);
  // First-fit assigns 0 to vertex 3 first.
  EXPECT_EQ(r.colors[3], 0);
  EXPECT_EQ(r.colors[0], 3);
}

TEST(BgpcSequential, RejectsWrongOrderSize) {
  const BipartiteGraph g = testing::single_net(4);
  EXPECT_THROW(color_bgpc_sequential(g, {0, 1}), std::invalid_argument);
}

TEST(BgpcSequential, ColorsNeverExceedBound) {
  PowerLawBipartiteParams p;
  p.rows = 100;
  p.cols = 250;
  p.min_deg = 2;
  p.max_deg = 30;
  p.seed = 12;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  const auto r = color_bgpc_sequential(g);
  EXPECT_LE(r.num_colors, bgpc_color_bound(g));
  EXPECT_GE(r.num_colors, g.max_net_degree());  // >= trivial lower bound
}

TEST(BgpcSequential, SmallestLastBeatsRandomOrderOnMesh) {
  // Table II trend: smallest-last lowers the color count relative to an
  // arbitrary vertex numbering. (Our synthetic meshes are numbered
  // lexicographically, which is already near-optimal for a stencil, so
  // the fair baseline for "arbitrary real-world numbering" is random.)
  const BipartiteGraph g = build_bipartite(gen_mesh2d(24, 24, 2));
  const auto random = color_bgpc_sequential(
      g, make_ordering(g, OrderingKind::kRandom, 9));
  const auto sl = color_bgpc_sequential(
      g, make_ordering(g, OrderingKind::kSmallestLast));
  EXPECT_TRUE(is_valid_bgpc(g, sl.colors));
  EXPECT_LT(sl.num_colors, random.num_colors);
}

TEST(BgpcSequential, IsolatedVerticesGetColorZero) {
  Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 4;  // vertices 2,3 isolated
  coo.add(0, 0);
  coo.add(1, 0);
  coo.add(1, 1);
  const BipartiteGraph g = build_bipartite(std::move(coo));
  const auto r = color_bgpc_sequential(g);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  EXPECT_EQ(r.colors[2], 0);
  EXPECT_EQ(r.colors[3], 0);
}

TEST(BgpcSequential, CountersTrackWork) {
  const BipartiteGraph g = testing::single_net(5);
  const auto r = color_bgpc_sequential(g);
  ASSERT_EQ(r.iterations.size(), 1u);
  // Each of the 5 vertices scans the net's 5 entries.
  EXPECT_EQ(r.iterations[0].color_counters.edges_visited, 25u);
  EXPECT_EQ(r.iterations[0].color_counters.colored, 5u);
}

}  // namespace
}  // namespace gcol
