#include <gtest/gtest.h>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(Transpose, SwapsSidesExactly) {
  Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 3;
  coo.add(0, 0);
  coo.add(0, 2);
  coo.add(1, 1);
  const BipartiteGraph g = build_bipartite(std::move(coo));
  const BipartiteGraph t = transpose(g);
  EXPECT_EQ(t.num_vertices(), g.num_nets());
  EXPECT_EQ(t.num_nets(), g.num_vertices());
  EXPECT_EQ(t.num_edges(), g.num_edges());
  EXPECT_TRUE(t.validate());
  // nets(u) in the transpose are vtxs(u) in the original.
  const auto tn = t.nets(0);
  const auto gv = g.vtxs(0);
  EXPECT_EQ(std::vector<vid_t>(tn.begin(), tn.end()),
            std::vector<vid_t>(gv.begin(), gv.end()));
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  PowerLawBipartiteParams p;
  p.rows = 40;
  p.cols = 90;
  p.seed = 3;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  const BipartiteGraph tt = transpose(transpose(g));
  EXPECT_EQ(tt.vptr(), g.vptr());
  EXPECT_EQ(tt.vadj(), g.vadj());
  EXPECT_EQ(tt.nptr(), g.nptr());
  EXPECT_EQ(tt.nadj(), g.nadj());
}

TEST(Transpose, RowColoringIsValidOnTranspose) {
  // Coloring rows of A == coloring columns of Aᵀ: run the engine on
  // the transpose and verify against it.
  PowerLawBipartiteParams p;
  p.rows = 120;
  p.cols = 300;
  p.min_deg = 2;
  p.max_deg = 50;
  p.seed = 6;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  const BipartiteGraph t = transpose(g);
  const auto r = color_bgpc(t, bgpc_preset("N1-N2"));
  EXPECT_TRUE(is_valid_bgpc(t, r.colors));
  EXPECT_EQ(r.colors.size(), static_cast<std::size_t>(g.num_nets()));
  // Lower bound flips to the max *column* degree of the original.
  EXPECT_GE(r.num_colors, g.max_vertex_degree());
}

TEST(Transpose, SymmetricInstanceSameColorCountSequentially) {
  // A structurally symmetric matrix has identical row and column
  // coloring problems.
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(400, 160, 2, 30, 1.8, 4));
  const auto cols = color_bgpc_sequential(g);
  const auto rows = color_bgpc_sequential(transpose(g));
  EXPECT_EQ(cols.num_colors, rows.num_colors);
  EXPECT_EQ(cols.colors, rows.colors);
}

}  // namespace
}  // namespace gcol
