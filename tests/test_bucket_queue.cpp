#include "greedcolor/order/bucket_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "greedcolor/util/prng.hpp"

namespace gcol {
namespace {

TEST(BucketQueue, MinAndMaxTrackKeys) {
  BucketQueue q({5, 2, 9, 2}, 10);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.key(q.find_min()), 2);
  EXPECT_EQ(q.find_max(), 2);  // vertex 2 has key 9
}

TEST(BucketQueue, RemoveShrinksAndSkips) {
  BucketQueue q({1, 3, 5}, 5);
  q.remove(0);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_FALSE(q.contains(0));
  EXPECT_EQ(q.find_min(), 1);
  q.remove(1);
  q.remove(2);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.find_min(), kInvalidVertex);
}

TEST(BucketQueue, DecreaseMovesBelowCursor) {
  BucketQueue q({4, 4, 4}, 8);
  EXPECT_EQ(q.key(q.find_min()), 4);
  q.decrease(1, 3);
  EXPECT_EQ(q.find_min(), 1);
  EXPECT_EQ(q.key(1), 1);
}

TEST(BucketQueue, IncreaseMovesAboveCursor) {
  BucketQueue q({0, 0}, 6);
  (void)q.find_max();
  q.increase(0, 5);
  EXPECT_EQ(q.find_max(), 0);
  EXPECT_EQ(q.key(0), 5);
}

TEST(BucketQueue, ZeroDeltaIsNoop) {
  BucketQueue q({2}, 4);
  q.decrease(0, 0);
  q.increase(0, 0);
  EXPECT_EQ(q.key(0), 2);
}

TEST(BucketQueue, ThrowsOnKeyRangeViolation) {
  BucketQueue q({2}, 4);
  EXPECT_THROW(q.decrease(0, 3), std::logic_error);
  EXPECT_THROW(q.increase(0, 3), std::logic_error);
}

TEST(BucketQueue, RandomizedHeapEquivalence) {
  // Drive the queue against a brute-force reference.
  constexpr int kN = 200;
  Xoshiro256 rng(77);
  std::vector<eid_t> keys(kN);
  for (auto& k : keys) k = static_cast<eid_t>(rng.bounded(50));
  BucketQueue q(keys, 120);
  std::vector<bool> alive(kN, true);

  auto ref_min = [&] {
    vid_t best = kInvalidVertex;
    for (int v = 0; v < kN; ++v)
      if (alive[static_cast<std::size_t>(v)] &&
          (best == kInvalidVertex ||
           keys[static_cast<std::size_t>(v)] <
               keys[static_cast<std::size_t>(best)]))
        best = v;
    return best;
  };

  for (int step = 0; step < 2000; ++step) {
    const auto op = rng.bounded(4);
    const vid_t v = static_cast<vid_t>(rng.bounded(kN));
    if (op == 0 && alive[static_cast<std::size_t>(v)]) {
      q.remove(v);
      alive[static_cast<std::size_t>(v)] = false;
    } else if (op == 1 && alive[static_cast<std::size_t>(v)] &&
               keys[static_cast<std::size_t>(v)] > 0) {
      const eid_t d = 1 + static_cast<eid_t>(rng.bounded(
                              static_cast<std::uint64_t>(
                                  keys[static_cast<std::size_t>(v)])));
      q.decrease(v, d);
      keys[static_cast<std::size_t>(v)] -= d;
    } else if (op == 2 && alive[static_cast<std::size_t>(v)] &&
               keys[static_cast<std::size_t>(v)] < 100) {
      q.increase(v, 5);
      keys[static_cast<std::size_t>(v)] += 5;
    } else {
      const vid_t got = q.find_min();
      const vid_t want = ref_min();
      if (want == kInvalidVertex) {
        EXPECT_EQ(got, kInvalidVertex);
      } else {
        ASSERT_NE(got, kInvalidVertex);
        EXPECT_EQ(keys[static_cast<std::size_t>(got)],
                  keys[static_cast<std::size_t>(want)]);
      }
    }
  }
}

}  // namespace
}  // namespace gcol
