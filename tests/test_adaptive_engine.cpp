// Unit tests for the AdaptiveFsEngine decision logic (the pure chooser
// behind --forbidden-set=adaptive), plus driver-level checks that the
// per-round choices recorded in IterationStats match the engine's
// contract: conflict phases always stamped, round-1 vertex coloring
// stamped, and the adaptive run's representation mix actually varying
// within a run where the rules say it should.
#include "greedcolor/core/adaptive.hpp"

#include <gtest/gtest.h>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"

namespace gcol {
namespace {

using FS = ForbiddenSetKind;

AdaptiveFsThresholds test_thresholds() {
  AdaptiveFsThresholds t;
  t.net_color_bitmap_max_l = 256;  // non-empty band for the unit tests
  t.vertex_bitmap_max_l = 256;
  t.vertex_bitmap_min_colored_frac = 0.55;
  t.vertex_twolevel_min_l = 4096;
  t.switch_margin = 0.05;
  return t;
}

TEST(AdaptiveFsEngine, FixedKindsPassThrough) {
  for (const FS kind : {FS::kStamped, FS::kBitmap, FS::kTwoLevel}) {
    AdaptiveFsEngine e(kind, 100, test_thresholds());
    EXPECT_FALSE(e.adaptive());
    EXPECT_EQ(e.color_kind(false, 1000, 1000), kind);
    EXPECT_EQ(e.color_kind(true, 1000, 1000), kind);
    EXPECT_EQ(e.conflict_kind(false), kind);
    EXPECT_EQ(e.conflict_kind(true), kind);
  }
}

TEST(AdaptiveFsEngine, ConflictPhasesAlwaysStamped) {
  AdaptiveFsEngine e(FS::kAdaptive, 20, test_thresholds());
  EXPECT_EQ(e.conflict_kind(false), FS::kStamped);
  EXPECT_EQ(e.conflict_kind(true), FS::kStamped);
  e.observe_round(100000);  // huge L changes nothing for conflicts
  EXPECT_EQ(e.conflict_kind(false), FS::kStamped);
  EXPECT_EQ(e.conflict_kind(true), FS::kStamped);
}

TEST(AdaptiveFsEngine, VertexColorStampedWhileMostlyUncolored) {
  AdaptiveFsEngine e(FS::kAdaptive, 20, test_thresholds());
  // Round 1: the whole universe is queued, nothing colored yet.
  EXPECT_EQ(e.color_kind(false, 1000, 1000), FS::kStamped);
  // Half colored: still below the 0.55 gate.
  EXPECT_EQ(e.color_kind(false, 500, 1000), FS::kStamped);
}

TEST(AdaptiveFsEngine, VertexColorBitmapOnceColoredAndLSmall) {
  AdaptiveFsEngine e(FS::kAdaptive, 20, test_thresholds());
  e.observe_round(19);  // L stays small
  EXPECT_EQ(e.color_kind(false, 100, 1000), FS::kBitmap);
}

TEST(AdaptiveFsEngine, VertexColorStampedWhenLLarge) {
  AdaptiveFsEngine e(FS::kAdaptive, 1000, test_thresholds());
  e.observe_round(999);  // L well above vertex_bitmap_max_l
  EXPECT_EQ(e.color_kind(false, 100, 1000), FS::kStamped);
}

TEST(AdaptiveFsEngine, VertexColorTwoLevelWhenLHuge) {
  AdaptiveFsEngine e(FS::kAdaptive, 10000, test_thresholds());
  // Even in round 1: L already spans multiple summary blocks.
  EXPECT_EQ(e.color_kind(false, 1000, 1000), FS::kTwoLevel);
}

TEST(AdaptiveFsEngine, NetColorFollowsTheLBand) {
  AdaptiveFsEngine small(FS::kAdaptive, 30, test_thresholds());
  EXPECT_EQ(small.color_kind(true, 1000, 1000), FS::kBitmap);
  AdaptiveFsEngine large(FS::kAdaptive, 700, test_thresholds());
  EXPECT_EQ(large.color_kind(true, 1000, 1000), FS::kStamped);
}

TEST(AdaptiveFsEngine, ShippedNetBandIsEmpty) {
  // The calibrated defaults: the measured insert crossover is "never",
  // so net coloring is stamped at any L (see adaptive.hpp).
  AdaptiveFsEngine e(FS::kAdaptive, 2);
  EXPECT_EQ(e.color_kind(true, 1000, 1000), FS::kStamped);
}

TEST(AdaptiveFsEngine, ObserveRoundReplacesStructuralEstimateOnce) {
  AdaptiveFsEngine e(FS::kAdaptive, 5000, test_thresholds());
  EXPECT_EQ(e.running_bound(), 5000);
  // First observation REPLACES the (loose) structural estimate.
  e.observe_round(30);
  EXPECT_EQ(e.running_bound(), 31);
  // Later observations only ever raise it.
  e.observe_round(10);
  EXPECT_EQ(e.running_bound(), 31);
  e.observe_round(60);
  EXPECT_EQ(e.running_bound(), 61);
  // A no-color round (kNoColor) leaves the bound untouched.
  e.observe_round(kNoColor);
  EXPECT_EQ(e.running_bound(), 61);
}

TEST(AdaptiveFsEngine, VertexChoiceIsStickyOffStamped) {
  AdaptiveFsThresholds t = test_thresholds();
  AdaptiveFsEngine e(FS::kAdaptive, 20, t);
  e.observe_round(19);
  EXPECT_EQ(e.color_kind(false, 100, 1000), FS::kBitmap);
  // The colored fraction can only grow in practice; even if the caller
  // feeds a shrunk one, the phase never drops back to stamped (a flip
  // back would cost a cold structure for a noise-level signal).
  EXPECT_EQ(e.color_kind(false, 1000, 1000), FS::kBitmap);
}

TEST(AdaptiveFsEngine, HysteresisMarginDelaysTheSwitch) {
  AdaptiveFsThresholds t = test_thresholds();
  AdaptiveFsEngine e(FS::kAdaptive, 20, t);
  e.observe_round(19);
  // Exactly at the 0.55 gate: the +5% margin keeps it stamped...
  EXPECT_EQ(e.color_kind(false, 450, 1000), FS::kStamped);
  // ...and clearing the margin (0.55 * 1.05 = 0.5775) flips it.
  EXPECT_EQ(e.color_kind(false, 420, 1000), FS::kBitmap);
}

// --- Driver integration: the stats record what actually ran ----------

TEST(AdaptiveFsEngine, BgpcStatsRecordPerRoundChoices) {
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(1500, 520, 2, 40, 1.6, 42));
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 4;
  opt.forbidden_set = ForbiddenSetKind::kAdaptive;
  const auto r = color_bgpc(g, opt);
  ASSERT_TRUE(is_valid_bgpc(g, r.colors));
  ASSERT_FALSE(r.iterations.empty());
  // Round 1 vertex coloring starts stamped (nothing colored yet) and
  // every conflict phase is stamped by contract.
  EXPECT_EQ(r.iterations.front().color_forbidden_set,
            ForbiddenSetKind::kStamped);
  for (const auto& it : r.iterations)
    EXPECT_EQ(it.conflict_forbidden_set, ForbiddenSetKind::kStamped)
        << "round " << it.round;
}

TEST(AdaptiveFsEngine, BgpcAdaptiveMixesRepresentationsWithinARun) {
  // N1-N2: speculative net coloring produces round-1 conflicts
  // structurally (independent of thread interleaving), so round 2 is a
  // vertex round with a high colored fraction and a small color bound
  // — the engine must have switched it to the bitmap while round 1
  // stayed stamped: the mixed-representation-per-round path the policy
  // template dispatches.
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(1500, 520, 2, 40, 1.6, 42));
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.num_threads = 4;
  opt.forbidden_set = ForbiddenSetKind::kAdaptive;
  const auto r = color_bgpc(g, opt);
  ASSERT_TRUE(is_valid_bgpc(g, r.colors));
  if (r.iterations.size() < 2)
    GTEST_SKIP() << "run converged in one round; no later round to check";
  EXPECT_EQ(r.iterations.front().color_forbidden_set,
            ForbiddenSetKind::kStamped);
  bool saw_bitmap = false;
  for (const auto& it : r.iterations)
    saw_bitmap = saw_bitmap ||
                 it.color_forbidden_set == ForbiddenSetKind::kBitmap;
  EXPECT_TRUE(saw_bitmap)
      << "later vertex rounds should have switched off stamped";
}

TEST(AdaptiveFsEngine, FixedModeStatsRecordTheFixedKind) {
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(800, 300, 2, 30, 1.6, 7));
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 2;
  opt.forbidden_set = ForbiddenSetKind::kTwoLevel;
  const auto r = color_bgpc(g, opt);
  ASSERT_TRUE(is_valid_bgpc(g, r.colors));
  for (const auto& it : r.iterations) {
    EXPECT_EQ(it.color_forbidden_set, ForbiddenSetKind::kTwoLevel);
    EXPECT_EQ(it.conflict_forbidden_set, ForbiddenSetKind::kTwoLevel);
  }
}

}  // namespace
}  // namespace gcol
