// BitMarkerSet unit and randomized-equivalence tests: the word-parallel
// set must agree with the stamped MarkerSet on every membership query
// and with a naive linear scan on every first-free probe, including
// across clear() epochs, stamp wraparound, and word boundaries.
#include "greedcolor/util/marker_set.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "greedcolor/util/prng.hpp"

namespace gcol {
namespace {

// Reference first-fit: smallest key >= start the set does not contain.
color_t ref_first_free_above(const BitMarkerSet& s, color_t start) {
  color_t c = start;
  while (s.contains(c)) ++c;
  return c;
}

// Reference reverse first-fit: largest key <= start not in the set.
color_t ref_first_free_below(const BitMarkerSet& s, color_t start) {
  for (color_t c = start; c >= 0; --c)
    if (!s.contains(c)) return c;
  return kNoColor;
}

TEST(BitMarkerSet, StartsEmpty) {
  BitMarkerSet s(130);
  for (int k = 0; k < 130; ++k) EXPECT_FALSE(s.contains(k));
}

TEST(BitMarkerSet, InsertThenContains) {
  BitMarkerSet s(128);
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(65);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(65));
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.contains(62));
  EXPECT_FALSE(s.contains(66));
}

TEST(BitMarkerSet, ContainsFalseBeyondCapacity) {
  BitMarkerSet s(64);
  EXPECT_FALSE(s.contains(1000));
}

TEST(BitMarkerSet, ClearEmptiesLazily) {
  BitMarkerSet s(256);
  for (int k = 0; k < 256; k += 3) s.insert(k);
  s.clear();
  for (int k = 0; k < 256; ++k) EXPECT_FALSE(s.contains(k));
  s.insert(5);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
}

TEST(BitMarkerSet, TestAndSetMatchesContainsInsert) {
  BitMarkerSet s(128);
  EXPECT_FALSE(s.test_and_set(70));
  EXPECT_TRUE(s.test_and_set(70));
  EXPECT_TRUE(s.contains(70));
  s.clear();
  EXPECT_FALSE(s.test_and_set(70));
}

TEST(BitMarkerSet, AutoGrowsOnInsert) {
  BitMarkerSet s;
  s.insert(500);
  EXPECT_TRUE(s.contains(500));
  EXPECT_GE(s.capacity(), 501u);
  EXPECT_FALSE(s.contains(499));
}

TEST(BitMarkerSet, FirstFreeWordBoundaries) {
  BitMarkerSet s(256);
  std::uint64_t probes = 0;
  // Fill exactly one word.
  for (int k = 0; k < 64; ++k) s.insert(k);
  EXPECT_EQ(s.first_free_at_or_above(0, probes), 64);
  EXPECT_EQ(s.first_free_at_or_above(63, probes), 64);
  EXPECT_EQ(s.first_free_at_or_above(64, probes), 64);
  s.insert(64);
  EXPECT_EQ(s.first_free_at_or_above(0, probes), 65);
  // Reverse scans across the same boundary.
  EXPECT_EQ(s.first_free_at_or_below(65, probes), 65);
  EXPECT_EQ(s.first_free_at_or_below(64, probes), kNoColor);
  EXPECT_EQ(s.first_free_at_or_below(63, probes), kNoColor);
  s.clear();
  s.insert(65);
  EXPECT_EQ(s.first_free_at_or_below(65, probes), 64);
}

TEST(BitMarkerSet, FirstFreeBeyondCapacityIsFree) {
  BitMarkerSet s(64);
  std::uint64_t probes = 0;
  for (int k = 0; k < 64; ++k) s.insert(k);
  EXPECT_EQ(s.first_free_at_or_above(0, probes), 64);
  EXPECT_EQ(s.first_free_at_or_below(1000, probes), 1000);
}

TEST(BitMarkerSet, FirstFreeBelowNegativeStart) {
  BitMarkerSet s(64);
  std::uint64_t probes = 0;
  EXPECT_EQ(s.first_free_at_or_below(-1, probes), kNoColor);
}

TEST(BitMarkerSet, FirstFreeCountsWordProbes) {
  if (!kCountersEnabled) GTEST_SKIP() << "counters compiled out";
  BitMarkerSet s(256);
  for (int k = 0; k < 128; ++k) s.insert(k);
  std::uint64_t probes = 0;
  EXPECT_EQ(s.first_free_at_or_above(0, probes), 128);
  // Two full words examined plus the word holding the answer.
  EXPECT_EQ(probes, 3u);
}

TEST(BitMarkerSet, StampWraparoundResetsBothArrays) {
  BitMarkerSet s(128);
  s.insert(10);
  s.insert(100);
  s.debug_set_stamp(0xFFFFFFFFu);
  s.insert(20);  // written under the pre-wrap stamp
  s.clear();     // wraps: stamp_ -> 1, both arrays zeroed
  for (int k = 0; k < 128; ++k)
    EXPECT_FALSE(s.contains(k)) << "stale key " << k << " survived wrap";
  s.insert(30);
  EXPECT_TRUE(s.contains(30));
  EXPECT_FALSE(s.contains(10));
  EXPECT_FALSE(s.contains(20));
}

TEST(BitMarkerSet, StampWraparoundMatchesMarkerSet) {
  MarkerSet a(128);
  BitMarkerSet b(128);
  a.debug_set_stamp(0xFFFFFFFEu);
  b.debug_set_stamp(0xFFFFFFFEu);
  Xoshiro256 rng(99);
  for (int round = 0; round < 5; ++round) {  // crosses the wrap point
    a.clear();
    b.clear();
    for (int i = 0; i < 40; ++i) {
      const auto k = static_cast<std::int64_t>(rng() % 128);
      a.insert(k);
      b.insert(k);
    }
    for (int k = 0; k < 128; ++k)
      EXPECT_EQ(a.contains(k), b.contains(k))
          << "round " << round << " key " << k;
  }
}

TEST(BitMarkerSet, RandomizedEquivalenceWithMarkerSet) {
  MarkerSet a;
  BitMarkerSet b;
  Xoshiro256 rng(0xC01055);
  for (int round = 0; round < 200; ++round) {
    a.clear();
    b.clear();
    const int universe = 1 + static_cast<int>(rng() % 300);
    const int inserts = static_cast<int>(rng() % 80);
    for (int i = 0; i < inserts; ++i) {
      const auto k = static_cast<std::int64_t>(rng() % universe);
      if (rng() & 1) {
        a.insert(k);
        b.insert(k);
      } else {
        EXPECT_EQ(a.test_and_set(k), b.test_and_set(k)) << "key " << k;
      }
    }
    for (int k = 0; k < universe + 10; ++k)
      EXPECT_EQ(a.contains(k), b.contains(k)) << "key " << k;
  }
}

TEST(BitMarkerSet, RandomizedFirstFreeMatchesLinearScan) {
  BitMarkerSet s;
  Xoshiro256 rng(0xF1F1);
  for (int round = 0; round < 200; ++round) {
    s.clear();
    const int universe = 1 + static_cast<int>(rng() % 400);
    const int inserts = static_cast<int>(rng() % 200);
    for (int i = 0; i < inserts; ++i)
      s.insert(static_cast<std::int64_t>(rng() % universe));
    std::uint64_t probes = 0;
    for (int trial = 0; trial < 8; ++trial) {
      const auto start = static_cast<color_t>(rng() % (universe + 70));
      EXPECT_EQ(s.first_free_at_or_above(start, probes),
                ref_first_free_above(s, start))
          << "round " << round << " up from " << start;
      EXPECT_EQ(s.first_free_at_or_below(start, probes),
                ref_first_free_below(s, start))
          << "round " << round << " down from " << start;
    }
  }
}

TEST(MarkerSetGrowth, GeometricNotPerKey) {
  MarkerSet s(4);
  s.insert(100);
  const std::size_t after_first = s.capacity();
  EXPECT_GE(after_first, 101u);
  // Growth at the boundary doubles (geometric), instead of the old
  // grow-to-key+64 policy that resized on every 65th consecutive key.
  s.insert(static_cast<std::int64_t>(after_first));
  const std::size_t after_second = s.capacity();
  EXPECT_GE(after_second, after_first * 2);
  // Everything inside the doubled capacity inserts without resizing.
  s.insert(static_cast<std::int64_t>(after_second - 1));
  EXPECT_EQ(s.capacity(), after_second);
}

TEST(ThreadWorkspaceTest, PreparesVisitedOnDemand) {
  ThreadWorkspace w;
  w.prepare(128, 16);  // 2-arg form: no visited universe requested
  EXPECT_GE(w.forbidden.capacity(), 128u);
  EXPECT_GE(w.forbidden_bits.capacity(), 128u);
  EXPECT_GE(w.forbidden_two.capacity(), 128u);
  w.prepare(128, 16, 1000);
  EXPECT_GE(w.visited_bits.capacity(), 1000u);
}

}  // namespace
}  // namespace gcol
