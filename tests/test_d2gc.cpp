#include "greedcolor/core/d2gc.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/order/ordering.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

Graph make_test_graph(const std::string& shape) {
  if (shape == "mesh") return build_graph(gen_mesh2d(35, 35, 1));
  if (shape == "cliques")
    return build_graph(gen_clique_union(900, 400, 2, 40, 1.8, 13));
  if (shape == "pa")
    return build_graph(gen_preferential_attachment(800, 4, 19));
  if (shape == "geometric")
    return build_graph(gen_random_geometric(700, 0.06, 23));
  throw std::invalid_argument(shape);
}

TEST(D2gcSequential, PathUsesThreeColors) {
  const Graph g = build_graph(testing::path_coo(10));
  const auto r = color_d2gc_sequential(g);
  EXPECT_EQ(r.num_colors, 3);
  EXPECT_TRUE(is_valid_d2gc(g, r.colors));
}

TEST(D2gcSequential, StarNeedsAllColors) {
  // Every pair in a star is within distance 2.
  const Graph g = build_graph(testing::star_coo(7));
  const auto r = color_d2gc_sequential(g);
  EXPECT_EQ(r.num_colors, 7);
}

TEST(D2gcSequential, CycleFiveIsFullyPairwise) {
  const Graph g = build_graph(testing::cycle_coo(5));
  const auto r = color_d2gc_sequential(g);
  EXPECT_EQ(r.num_colors, 5);
}

TEST(D2gcSequential, CompleteGraphDistance2EqualsDistance1Plus) {
  const Graph g = build_graph(testing::complete_coo(6));
  const auto r = color_d2gc_sequential(g);
  EXPECT_EQ(r.num_colors, 6);
}

TEST(D2gcSequential, LowerBoundRespected) {
  const Graph g = make_test_graph("pa");
  const auto r = color_d2gc_sequential(g);
  EXPECT_GE(r.num_colors, g.max_degree() + 1);
  EXPECT_LE(r.num_colors, d2gc_color_bound(g));
  EXPECT_TRUE(is_valid_d2gc(g, r.colors));
}

TEST(D2gcSequential, Deterministic) {
  const Graph g = make_test_graph("geometric");
  EXPECT_EQ(color_d2gc_sequential(g).colors,
            color_d2gc_sequential(g).colors);
}

using Param = std::tuple<std::string, std::string, int>;

class D2gcValidity : public ::testing::TestWithParam<Param> {};

TEST_P(D2gcValidity, ProducesValidBoundedColoring) {
  const auto& [algo, shape, threads] = GetParam();
  const Graph g = make_test_graph(shape);
  ColoringOptions opt = d2gc_preset(algo);
  opt.num_threads = threads;
  const auto r = color_d2gc(g, opt);
  const auto violation = check_d2gc(g, r.colors);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->to_string() : "");
  EXPECT_FALSE(r.sequential_fallback);
  EXPECT_GE(r.num_colors, g.max_degree() + 1);
  EXPECT_LE(r.num_colors, d2gc_color_bound(g));
}

INSTANTIATE_TEST_SUITE_P(
    PresetsByShapeByThreads, D2gcValidity,
    ::testing::Combine(
        ::testing::Values("V-V", "V-V-64D", "V-N1", "V-N2", "N1-N2"),
        ::testing::Values("mesh", "cliques", "pa", "geometric"),
        ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param) + "_" +
                      std::get<1>(info.param) + "_t" +
                      std::to_string(std::get<2>(info.param));
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(D2gc, SingleThreadVertexKernelMatchesSequential) {
  const Graph g = make_test_graph("mesh");
  ColoringOptions opt = d2gc_preset("V-V");
  opt.num_threads = 1;
  const auto par = color_d2gc(g, opt);
  const auto seq = color_d2gc_sequential(g);
  EXPECT_EQ(par.colors, seq.colors);
}

TEST(D2gc, AgreesWithBgpcOnClosedNeighborhoodReduction) {
  // D2GC on G == BGPC on the closed-neighborhood bipartite instance:
  // any valid result of one must verify under the other's checker.
  const Graph g = make_test_graph("geometric");
  const BipartiteGraph bg = graph_to_bipartite_closed(g);

  const auto d2 = color_d2gc(g, d2gc_preset("N1-N2"));
  EXPECT_TRUE(is_valid_bgpc(bg, d2.colors));

  const auto bp = color_bgpc(bg, bgpc_preset("N1-N2"));
  EXPECT_TRUE(is_valid_d2gc(g, bp.colors));
}

TEST(D2gc, SequentialEqualsBgpcSequentialOnReduction) {
  // Same greedy, same order, same neighborhoods => identical colors.
  const Graph g = build_graph(gen_mesh2d(15, 15, 1));
  const BipartiteGraph bg = graph_to_bipartite_closed(g);
  EXPECT_EQ(color_d2gc_sequential(g).colors,
            color_bgpc_sequential(bg).colors);
}

TEST(D2gc, OrderingsApply) {
  const Graph g = make_test_graph("cliques");
  const auto sl = make_ordering(g, OrderingKind::kSmallestLast);
  const auto r = color_d2gc(g, d2gc_preset("V-N1"), sl);
  EXPECT_TRUE(is_valid_d2gc(g, r.colors));
}

TEST(D2gc, RejectsNetV1AndBadOptions) {
  const Graph g = build_graph(testing::path_coo(4));
  ColoringOptions opt = d2gc_preset("N1-N2");
  opt.net_v1 = true;
  EXPECT_THROW(color_d2gc(g, opt), std::invalid_argument);
  EXPECT_THROW(d2gc_preset("V-N64"), std::invalid_argument);
  EXPECT_THROW(color_d2gc(g, {}, {0, 1}), std::invalid_argument);
}

TEST(D2gc, IsolatedVerticesColoredZero) {
  Coo coo;
  coo.num_rows = coo.num_cols = 4;
  coo.add(0, 1);
  const Graph g = build_graph(std::move(coo));
  const auto r = color_d2gc(g, d2gc_preset("N1-N2"));
  EXPECT_TRUE(is_valid_d2gc(g, r.colors));
  EXPECT_EQ(r.colors[2], 0);
  EXPECT_EQ(r.colors[3], 0);
}

TEST(D2gc, ReverseFirstFitStartsAtDegree) {
  // A single edge {0,1}: net of 0 is {0,1}, |nbor(0)| = 1, so Alg. 9
  // colors from 1 downward. One thread: first net processed is 0,
  // its local queue is [0,1] -> colors 1,0.
  const Graph g = build_graph(testing::path_coo(2));
  ColoringOptions opt = d2gc_preset("N1-N2");
  opt.num_threads = 1;
  const auto r = color_d2gc(g, opt);
  EXPECT_TRUE(is_valid_d2gc(g, r.colors));
  EXPECT_EQ(r.colors, (std::vector<color_t>{1, 0}));
}

}  // namespace
}  // namespace gcol
