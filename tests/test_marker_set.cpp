#include "greedcolor/util/marker_set.hpp"

#include <gtest/gtest.h>

namespace gcol {
namespace {

TEST(MarkerSet, StartsEmpty) {
  MarkerSet s(16);
  for (int k = 0; k < 16; ++k) EXPECT_FALSE(s.contains(k));
}

TEST(MarkerSet, InsertThenContains) {
  MarkerSet s(8);
  s.insert(3);
  s.insert(7);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.contains(4));
}

TEST(MarkerSet, ClearIsConstantTimeEmpty) {
  MarkerSet s(8);
  for (int k = 0; k < 8; ++k) s.insert(k);
  s.clear();
  for (int k = 0; k < 8; ++k) EXPECT_FALSE(s.contains(k));
}

TEST(MarkerSet, ReusableAcrossManyRounds) {
  MarkerSet s(4);
  for (int round = 0; round < 1000; ++round) {
    s.clear();
    s.insert(round % 4);
    for (int k = 0; k < 4; ++k)
      EXPECT_EQ(s.contains(k), k == round % 4) << "round " << round;
  }
}

TEST(MarkerSet, AutoGrowsOnInsert) {
  MarkerSet s(4);
  s.insert(100);  // beyond initial capacity
  EXPECT_TRUE(s.contains(100));
  EXPECT_GE(s.capacity(), 101u);
  EXPECT_FALSE(s.contains(50));
}

TEST(MarkerSet, ContainsBeyondCapacityIsFalse) {
  MarkerSet s(4);
  EXPECT_FALSE(s.contains(1000000));
}

TEST(MarkerSet, GrowPreservesMembership) {
  MarkerSet s(4);
  s.insert(2);
  s.ensure_capacity(1024);
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.contains(512));
}

TEST(MarkerSet, DefaultConstructedGrowsFromZero) {
  MarkerSet s;
  EXPECT_EQ(s.capacity(), 0u);
  s.insert(0);
  EXPECT_TRUE(s.contains(0));
}

TEST(ThreadWorkspace, PrepareReservesBothStructures) {
  ThreadWorkspace ws;
  ws.prepare(128, 64);
  EXPECT_GE(ws.forbidden.capacity(), 128u);
  EXPECT_GE(ws.local_queue.capacity(), 64u);
  // prepare() must not shrink.
  ws.prepare(16, 8);
  EXPECT_GE(ws.forbidden.capacity(), 128u);
  EXPECT_GE(ws.local_queue.capacity(), 64u);
}

}  // namespace
}  // namespace gcol
