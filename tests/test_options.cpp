#include "greedcolor/core/options.hpp"

#include <gtest/gtest.h>

namespace gcol {
namespace {

TEST(Presets, TableMatchesPaperSection6) {
  // V-V: ColPack's defaults.
  const auto vv = bgpc_preset("V-V");
  EXPECT_EQ(vv.chunk_size, 1);
  EXPECT_EQ(vv.queue, QueuePolicy::kShared);
  EXPECT_EQ(vv.net_color_rounds, 0);
  EXPECT_EQ(vv.net_conflict_rounds, 0);

  const auto vv64 = bgpc_preset("V-V-64");
  EXPECT_EQ(vv64.chunk_size, 64);
  EXPECT_EQ(vv64.queue, QueuePolicy::kShared);

  const auto vv64d = bgpc_preset("V-V-64D");
  EXPECT_EQ(vv64d.chunk_size, 64);
  EXPECT_EQ(vv64d.queue, QueuePolicy::kLazy);

  const auto vninf = bgpc_preset("V-Ninf");
  EXPECT_EQ(vninf.net_conflict_rounds, -1);
  EXPECT_EQ(vninf.net_color_rounds, 0);

  EXPECT_EQ(bgpc_preset("V-N1").net_conflict_rounds, 1);
  EXPECT_EQ(bgpc_preset("V-N2").net_conflict_rounds, 2);

  const auto n1n2 = bgpc_preset("N1-N2");
  EXPECT_EQ(n1n2.net_color_rounds, 1);
  EXPECT_EQ(n1n2.net_conflict_rounds, 2);

  const auto n2n2 = bgpc_preset("N2-N2");
  EXPECT_EQ(n2n2.net_color_rounds, 2);
  EXPECT_EQ(n2n2.net_conflict_rounds, 2);

  EXPECT_GT(bgpc_preset("ADAPTIVE").adaptive_threshold, 0.0);
}

TEST(Presets, UnicodeInfinityAliasAccepted) {
  EXPECT_EQ(bgpc_preset("V-N∞").net_conflict_rounds, -1);
  EXPECT_EQ(bgpc_preset("V-N∞").name, "V-Ninf");
}

TEST(Presets, NamesListMatchesPaperOrder) {
  const auto& names = bgpc_preset_names();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names.front(), "V-V");
  EXPECT_EQ(names.back(), "N2-N2");
  for (const auto& n : names) EXPECT_NO_THROW((void)bgpc_preset(n));
}

TEST(Presets, D2gcSubset) {
  const auto& names = d2gc_preset_names();
  ASSERT_EQ(names.size(), 4u);  // Table V's four algorithms
  for (const auto& n : names) EXPECT_NO_THROW((void)d2gc_preset(n));
  EXPECT_NO_THROW((void)d2gc_preset("V-V"));  // baseline allowed
  EXPECT_THROW((void)d2gc_preset("V-Ninf"), std::invalid_argument);
  EXPECT_THROW((void)d2gc_preset("N2-N2"), std::invalid_argument);
}

TEST(Validation, EveryFailureBranchFires) {
  ColoringOptions o;
  EXPECT_NO_THROW(o.validate());

  o = {};
  o.net_color_rounds = -1;
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = {};
  o.net_conflict_rounds = -2;
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = {};
  o.net_color_rounds = 3;
  o.net_conflict_rounds = 2;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.net_conflict_rounds = -1;  // infinity covers any color rounds
  EXPECT_NO_THROW(o.validate());

  o = {};
  o.chunk_size = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = {};
  o.num_threads = -1;
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = {};
  o.max_rounds = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = {};
  o.net_v1 = true;  // needs a net-colored round
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = {};
  o.adaptive_threshold = -0.1;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.adaptive_threshold = 1.1;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(Options, ToStringLabels) {
  EXPECT_EQ(to_string(QueuePolicy::kShared), "shared");
  EXPECT_EQ(to_string(QueuePolicy::kLazy), "lazy");
  EXPECT_EQ(to_string(BalancePolicy::kNone), "U");
  EXPECT_EQ(to_string(BalancePolicy::kB1), "B1");
  EXPECT_EQ(to_string(BalancePolicy::kB2), "B2");
}

TEST(Options, UnknownPresetThrows) {
  EXPECT_THROW((void)bgpc_preset(""), std::invalid_argument);
  EXPECT_THROW((void)bgpc_preset("V-N3"), std::invalid_argument);
}

}  // namespace
}  // namespace gcol
