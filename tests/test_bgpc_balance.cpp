// Balancing heuristics B1 (Alg. 11) and B2 (Alg. 12): validity across
// kernels, and the Table VI trends — stddev(B2) < stddev(B1) <
// stddev(U) on skewed instances at bounded color-count cost.
#include <gtest/gtest.h>

#include <tuple>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/color_stats.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/graph/generators.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

BipartiteGraph skewed_graph() {
  return build_bipartite(gen_clique_union(1500, 600, 2, 80, 1.7, 31));
}

using Param = std::tuple<std::string /*algo*/, BalancePolicy, int>;

class BalanceValidity : public ::testing::TestWithParam<Param> {};

TEST_P(BalanceValidity, ColoringsStayValid) {
  const auto& [algo, policy, threads] = GetParam();
  const BipartiteGraph g = skewed_graph();
  ColoringOptions opt = bgpc_preset(algo);
  opt.balance = policy;
  opt.num_threads = threads;
  const auto r = color_bgpc(g, opt);
  const auto violation = check_bgpc(g, r.colors);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->to_string() : "");
  EXPECT_FALSE(r.sequential_fallback);
}

INSTANTIATE_TEST_SUITE_P(
    HeuristicByKernel, BalanceValidity,
    ::testing::Combine(::testing::Values("V-V-64D", "V-N2", "N1-N2",
                                         "N2-N2"),
                       ::testing::Values(BalancePolicy::kB1,
                                         BalancePolicy::kB2),
                       ::testing::Values(1, 4)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param) + "_" +
                      to_string(std::get<1>(info.param)) + "_t" +
                      std::to_string(std::get<2>(info.param));
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

struct BalanceOutcome {
  color_t colors;
  double stddev;
};

BalanceOutcome run(const BipartiteGraph& g, const std::string& algo,
                   BalancePolicy policy) {
  ColoringOptions opt = bgpc_preset(algo);
  opt.balance = policy;
  opt.num_threads = 2;
  const auto r = color_bgpc(g, opt);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  const auto s = color_class_stats(r.colors);
  return {r.num_colors, s.stddev};
}

TEST(Balance, B2ReducesStddevOnSkewedInstanceVN2) {
  const BipartiteGraph g = skewed_graph();
  const auto u = run(g, "V-N2", BalancePolicy::kNone);
  const auto b2 = run(g, "V-N2", BalancePolicy::kB2);
  EXPECT_LT(b2.stddev, u.stddev);
  // Table VI: ~9-13% more colors; allow generous slack for the small
  // synthetic instance.
  EXPECT_LE(b2.colors, static_cast<color_t>(u.colors * 1.6) + 2);
}

TEST(Balance, B1CostsFewColorsVN2) {
  const BipartiteGraph g = skewed_graph();
  const auto u = run(g, "V-N2", BalancePolicy::kNone);
  const auto b1 = run(g, "V-N2", BalancePolicy::kB1);
  EXPECT_LE(b1.colors, static_cast<color_t>(u.colors * 1.3) + 2);
}

TEST(Balance, B2ReducesStddevOnN1N2CopapersScale) {
  // The N1-N2 balancing effect needs the full skew of the
  // coPapersDBLP-style instance to show (Table VI: 0.62x stddev); on
  // tiny instances the reverse-first-fit spread already balances.
  const BipartiteGraph g = load_bipartite("copapers_s");
  const auto u = run(g, "N1-N2", BalancePolicy::kNone);
  const auto b2 = run(g, "N1-N2", BalancePolicy::kB2);
  EXPECT_LT(b2.stddev, 0.9 * u.stddev);
}

TEST(Balance, B1SingleThreadVertexKernelMatchesAlg11Semantics) {
  // Deterministic scenario: one net of 6 vertices, one thread, vertex
  // kernel (V-V). Alg. 11: even ids reverse-scan from col_max, odd ids
  // first-fit. Walk the exact state machine:
  //   w=0 (even): down from 0 -> 0; col_max=0
  //   w=1 (odd):  up from 0, {0} taken -> 1; col_max=1
  //   w=2 (even): down from 1 -> all of {1,0} taken -> -1; safety: up
  //               from col_max+1=2 -> 2; col_max=2
  //   w=3 (odd):  up -> 3
  //   w=4 (even): down from 3 -> taken... -1; up from 4 -> 4
  //   w=5 (odd):  up -> 5
  const BipartiteGraph g = testing::single_net(6);
  ColoringOptions opt = bgpc_preset("V-V");
  opt.balance = BalancePolicy::kB1;
  opt.num_threads = 1;
  const auto r = color_bgpc(g, opt);
  EXPECT_EQ(r.colors, (std::vector<color_t>{0, 1, 2, 3, 4, 5}));
}

TEST(Balance, B2SingleThreadMatchesAlg12Semantics) {
  // One net of 4 vertices, one thread, vertex kernel. Alg. 12:
  //   w=0: col_next=0 -> col 0; col_max=0; col_next=min(1,0/3+1)=1
  //   w=1: up from 1 -> 1; 1>col_max(0) -> restart from 0 -> all of
  //        {0} taken -> 1; col_max=1; col_next=min(2,1/3+1)=1
  //   w=2: up from 1 -> 2; 2>1 -> restart 0 -> 2; col_max=2;
  //        col_next=min(3, 2/3+1)=1
  //   w=3: up from 1 -> 3; 3>2 -> restart -> 3; col_max=3
  const BipartiteGraph g = testing::single_net(4);
  ColoringOptions opt = bgpc_preset("V-V");
  opt.balance = BalancePolicy::kB2;
  opt.num_threads = 1;
  const auto r = color_bgpc(g, opt);
  EXPECT_EQ(r.colors, (std::vector<color_t>{0, 1, 2, 3}));
  EXPECT_EQ(r.num_colors, 4);
}

TEST(Balance, HeuristicsWorkForD2gc) {
  const Graph g = build_graph(gen_mesh2d(30, 30, 1));
  for (const auto policy : {BalancePolicy::kB1, BalancePolicy::kB2}) {
    ColoringOptions opt = d2gc_preset("N1-N2");
    opt.balance = policy;
    opt.num_threads = 2;
    const auto r = color_d2gc(g, opt);
    EXPECT_TRUE(is_valid_d2gc(g, r.colors)) << to_string(policy);
  }
}

TEST(Balance, D2gcB2ImprovesMeshBalance) {
  const Graph g = build_graph(gen_mesh2d(40, 40, 1));
  ColoringOptions base = d2gc_preset("V-V-64D");
  base.num_threads = 1;
  const auto u = color_d2gc(g, base);
  base.balance = BalancePolicy::kB2;
  const auto b2 = color_d2gc(g, base);
  EXPECT_TRUE(is_valid_d2gc(g, b2.colors));
  EXPECT_LE(color_class_stats(b2.colors).stddev,
            color_class_stats(u.colors).stddev);
}

}  // namespace
}  // namespace gcol
