#include "greedcolor/sched/color_schedule.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"

namespace gcol {
namespace {

TEST(ColorSchedule, GroupsByColor) {
  const ColorSchedule s = ColorSchedule::build({1, 0, 1, 2, 0});
  EXPECT_EQ(s.num_classes(), 3);
  EXPECT_EQ(s.total_items(), 5);
  const auto c0 = s.class_members(0);
  EXPECT_EQ(std::vector<vid_t>(c0.begin(), c0.end()),
            (std::vector<vid_t>{1, 4}));
  const auto c1 = s.class_members(1);
  EXPECT_EQ(std::vector<vid_t>(c1.begin(), c1.end()),
            (std::vector<vid_t>{0, 2}));
  EXPECT_EQ(s.class_size(2), 1);
}

TEST(ColorSchedule, RejectsIncompleteColoring) {
  EXPECT_THROW(ColorSchedule::build({0, kNoColor}), std::invalid_argument);
}

TEST(ColorSchedule, ForEachVisitsEveryItemExactlyOnce) {
  const ColorSchedule s = ColorSchedule::build({0, 1, 0, 2, 1, 0});
  std::vector<std::atomic<int>> visits(6);
  s.for_each_parallel([&](vid_t v) { ++visits[static_cast<std::size_t>(v)]; },
                      4);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ColorSchedule, ClassesAreExecutedInColorOrder) {
  const ColorSchedule s = ColorSchedule::build({0, 1, 2});
  std::vector<vid_t> sequence;
  s.for_each_parallel([&](vid_t v) { sequence.push_back(v); }, 1);
  EXPECT_EQ(sequence, (std::vector<vid_t>{0, 1, 2}));
}

TEST(ColorSchedule, LockFreeNeighborhoodUpdatesAreSafe) {
  // The actual guarantee: with a valid BGPC coloring, all columns in a
  // class touch disjoint rows, so unsynchronized row writes are safe.
  const BipartiteGraph g =
      build_bipartite(gen_random_bipartite(300, 500, 3000, 12));
  const auto r = color_bgpc(g, bgpc_preset("N1-N2"));
  ASSERT_TRUE(is_valid_bgpc(g, r.colors));

  const ColorSchedule s = ColorSchedule::build(r.colors);
  std::vector<int> row_touches(300, 0);  // plain ints: no atomics
  std::vector<int> row_total(300, 0);
  s.for_each_parallel(
      [&](vid_t col) {
        for (const vid_t net : g.nets(col)) {
          ++row_touches[static_cast<std::size_t>(net)];  // race iff invalid
          ++row_total[static_cast<std::size_t>(net)];
        }
      },
      4, 4);
  for (vid_t net = 0; net < 300; ++net)
    EXPECT_EQ(row_touches[static_cast<std::size_t>(net)], g.net_degree(net));
}

TEST(ColorScheduleStats, SpanAndEfficiency) {
  // classes of sizes 4 and 2, P=2: span = 2 + 1 = 3; eff = 6/(2*3)=1.0
  const ColorSchedule s = ColorSchedule::build({0, 0, 0, 0, 1, 1});
  const auto st = s.stats(2);
  EXPECT_EQ(st.num_classes, 2);
  EXPECT_EQ(st.span, 3u);
  EXPECT_DOUBLE_EQ(st.efficiency, 1.0);
  EXPECT_EQ(st.largest_class, 4);
  EXPECT_EQ(st.smallest_class, 2);
}

TEST(ColorScheduleStats, SingletonsWasteParallelism) {
  // 4 singleton classes on 4 threads: span 4, efficiency 0.25.
  const ColorSchedule s = ColorSchedule::build({0, 1, 2, 3});
  const auto st = s.stats(4);
  EXPECT_EQ(st.span, 4u);
  EXPECT_DOUBLE_EQ(st.efficiency, 0.25);
}

TEST(ColorScheduleStats, BalancedColoringImprovesEfficiency) {
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(2000, 800, 2, 80, 1.7, 19));
  ColoringOptions opt = bgpc_preset("V-N2");
  opt.num_threads = 2;
  const auto u = color_bgpc(g, opt);
  opt.balance = BalancePolicy::kB2;
  const auto b2 = color_bgpc(g, opt);
  ASSERT_TRUE(is_valid_bgpc(g, u.colors));
  ASSERT_TRUE(is_valid_bgpc(g, b2.colors));
  const auto eff_u = ColorSchedule::build(u.colors).stats(16).efficiency;
  const auto eff_b2 = ColorSchedule::build(b2.colors).stats(16).efficiency;
  EXPECT_GT(eff_b2, eff_u);  // the Section V claim, quantified
}

TEST(ColorScheduleStats, RejectsBadThreadCount) {
  const ColorSchedule s = ColorSchedule::build({0});
  EXPECT_THROW((void)s.stats(0), std::invalid_argument);
}

}  // namespace
}  // namespace gcol
