// TwoLevelBitMarkerSet unit and randomized-equivalence tests. The
// two-level set adds a summary word per 64-word block (summary bit set
// => that word is all-ones in the current epoch), so beyond the
// BitMarkerSet contract it must keep the summary truthful across
// insert/test_and_set transitions, lazy clears, and stamp wraparound —
// a stale or wrong summary silently corrupts first-fit scans.
#include "greedcolor/util/marker_set.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "greedcolor/util/prng.hpp"

namespace gcol {
namespace {

// Reference first-fit: smallest key >= start the set does not contain.
color_t ref_first_free_above(const TwoLevelBitMarkerSet& s, color_t start) {
  color_t c = start;
  while (s.contains(c)) ++c;
  return c;
}

// Reference reverse first-fit: largest key <= start not in the set.
color_t ref_first_free_below(const TwoLevelBitMarkerSet& s, color_t start) {
  for (color_t c = start; c >= 0; --c)
    if (!s.contains(c)) return c;
  return kNoColor;
}

TEST(TwoLevelBitMarkerSet, StartsEmpty) {
  TwoLevelBitMarkerSet s(130);
  for (int k = 0; k < 130; ++k) EXPECT_FALSE(s.contains(k));
}

TEST(TwoLevelBitMarkerSet, InsertThenContains) {
  TwoLevelBitMarkerSet s(8192);
  for (const int k : {0, 63, 64, 4095, 4096, 8191}) s.insert(k);
  for (const int k : {0, 63, 64, 4095, 4096, 8191}) EXPECT_TRUE(s.contains(k));
  for (const int k : {1, 62, 65, 4094, 4097, 8190})
    EXPECT_FALSE(s.contains(k));
}

TEST(TwoLevelBitMarkerSet, ContainsFalseBeyondCapacity) {
  TwoLevelBitMarkerSet s(64);
  EXPECT_FALSE(s.contains(100000));
}

TEST(TwoLevelBitMarkerSet, ClearEmptiesLazily) {
  TwoLevelBitMarkerSet s(8192);
  for (int k = 0; k < 8192; k += 3) s.insert(k);
  s.clear();
  for (int k = 0; k < 8192; k += 7) EXPECT_FALSE(s.contains(k));
  s.insert(5);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
}

TEST(TwoLevelBitMarkerSet, TestAndSetMatchesContainsInsert) {
  TwoLevelBitMarkerSet s(128);
  EXPECT_FALSE(s.test_and_set(70));
  EXPECT_TRUE(s.test_and_set(70));
  EXPECT_TRUE(s.contains(70));
  s.clear();
  EXPECT_FALSE(s.test_and_set(70));
}

TEST(TwoLevelBitMarkerSet, AutoGrowsOnInsert) {
  TwoLevelBitMarkerSet s;
  s.insert(10000);
  EXPECT_TRUE(s.contains(10000));
  EXPECT_GE(s.capacity(), 10001u);
  EXPECT_FALSE(s.contains(9999));
}

TEST(TwoLevelBitMarkerSet, FirstFreeSkipsFullBlocks) {
  if (!kCountersEnabled) GTEST_SKIP() << "counters compiled out";
  TwoLevelBitMarkerSet s(3 * 4096);
  // Fill the first full summary block plus one extra word.
  for (int k = 0; k < 4096 + 64; ++k) s.insert(k);
  std::uint64_t probes = 0;
  EXPECT_EQ(s.first_free_at_or_above(0, probes), 4096 + 64);
  // One probe for the skipped 64-word block, then the per-word tail:
  // far below the 65 word-probes a flat scan would pay.
  EXPECT_LE(probes, 4u);
}

TEST(TwoLevelBitMarkerSet, FirstFreeAcrossBlockBoundaries) {
  TwoLevelBitMarkerSet s(2 * 4096);
  std::uint64_t probes = 0;
  for (int k = 0; k < 4096; ++k) s.insert(k);
  EXPECT_EQ(s.first_free_at_or_above(0, probes), 4096);
  EXPECT_EQ(s.first_free_at_or_above(4095, probes), 4096);
  EXPECT_EQ(s.first_free_at_or_above(4096, probes), 4096);
  s.insert(4096);
  EXPECT_EQ(s.first_free_at_or_above(0, probes), 4097);
  // Reverse scans across the same boundary.
  EXPECT_EQ(s.first_free_at_or_below(4097, probes), 4097);
  EXPECT_EQ(s.first_free_at_or_below(4096, probes), kNoColor);
  EXPECT_EQ(s.first_free_at_or_below(4095, probes), kNoColor);
  s.clear();
  s.insert(4097);
  EXPECT_EQ(s.first_free_at_or_below(4097, probes), 4096);
}

TEST(TwoLevelBitMarkerSet, FirstFreeBeyondCapacityIsFree) {
  TwoLevelBitMarkerSet s(64);
  std::uint64_t probes = 0;
  for (int k = 0; k < 64; ++k) s.insert(k);
  EXPECT_EQ(s.first_free_at_or_above(0, probes), 64);
  EXPECT_EQ(s.first_free_at_or_below(100000, probes), 100000);
}

TEST(TwoLevelBitMarkerSet, FirstFreeBelowNegativeStart) {
  TwoLevelBitMarkerSet s(64);
  std::uint64_t probes = 0;
  EXPECT_EQ(s.first_free_at_or_below(-1, probes), kNoColor);
}

TEST(TwoLevelBitMarkerSet, StampWraparoundResetsEverything) {
  TwoLevelBitMarkerSet s(8192);
  for (int k = 0; k < 4096; ++k) s.insert(k);  // first block summary full
  s.debug_set_stamp(0xFFFFFFFFu);
  s.insert(20);  // written under the pre-wrap stamp
  s.clear();     // wraps: stamp_ -> 1, words and summaries zeroed
  for (int k = 0; k < 8192; k += 5)
    EXPECT_FALSE(s.contains(k)) << "stale key " << k << " survived wrap";
  std::uint64_t probes = 0;
  // A stale summary would skip the whole first block here.
  EXPECT_EQ(s.first_free_at_or_above(0, probes), 0);
  s.insert(30);
  EXPECT_TRUE(s.contains(30));
  EXPECT_FALSE(s.contains(20));
}

TEST(TwoLevelBitMarkerSet, StampWraparoundMatchesMarkerSet) {
  MarkerSet a(128);
  TwoLevelBitMarkerSet b(128);
  a.debug_set_stamp(0xFFFFFFFEu);
  b.debug_set_stamp(0xFFFFFFFEu);
  Xoshiro256 rng(99);
  for (int round = 0; round < 5; ++round) {  // crosses the wrap point
    a.clear();
    b.clear();
    for (int i = 0; i < 40; ++i) {
      const auto k = static_cast<std::int64_t>(rng() % 128);
      a.insert(k);
      b.insert(k);
    }
    for (int k = 0; k < 128; ++k)
      EXPECT_EQ(a.contains(k), b.contains(k))
          << "round " << round << " key " << k;
  }
}

TEST(TwoLevelBitMarkerSet, RandomizedEquivalenceWithBitMarkerSet) {
  BitMarkerSet a;
  TwoLevelBitMarkerSet b;
  Xoshiro256 rng(0xC02255);
  for (int round = 0; round < 100; ++round) {
    a.clear();
    b.clear();
    // Universe spans up to ~2 summary blocks so block boundaries and
    // partially-stamped blocks both occur.
    const int universe = 1 + static_cast<int>(rng() % 9000);
    const int inserts = static_cast<int>(rng() % 400);
    for (int i = 0; i < inserts; ++i) {
      const auto k = static_cast<std::int64_t>(rng() % universe);
      if (rng() & 1) {
        a.insert(k);
        b.insert(k);
      } else {
        EXPECT_EQ(a.test_and_set(k), b.test_and_set(k)) << "key " << k;
      }
    }
    for (int trial = 0; trial < 64; ++trial) {
      const int k = static_cast<int>(rng() % (universe + 10));
      EXPECT_EQ(a.contains(k), b.contains(k)) << "key " << k;
    }
  }
}

TEST(TwoLevelBitMarkerSet, RandomizedFirstFreeMatchesLinearScan) {
  TwoLevelBitMarkerSet s;
  Xoshiro256 rng(0xF2F2);
  for (int round = 0; round < 60; ++round) {
    s.clear();
    const int universe = 1 + static_cast<int>(rng() % 10000);
    // Alternate sparse rounds with dense prefixes (the shape that
    // actually produces full blocks for the summary to skip).
    if (round & 1) {
      const int prefix = static_cast<int>(rng() % universe);
      for (int k = 0; k < prefix; ++k) s.insert(k);
    }
    const int inserts = static_cast<int>(rng() % 500);
    for (int i = 0; i < inserts; ++i)
      s.insert(static_cast<std::int64_t>(rng() % universe));
    std::uint64_t probes = 0;
    for (int trial = 0; trial < 8; ++trial) {
      const auto start = static_cast<color_t>(rng() % (universe + 70));
      EXPECT_EQ(s.first_free_at_or_above(start, probes),
                ref_first_free_above(s, start))
          << "round " << round << " up from " << start;
      EXPECT_EQ(s.first_free_at_or_below(start, probes),
                ref_first_free_below(s, start))
          << "round " << round << " down from " << start;
    }
  }
}

}  // namespace
}  // namespace gcol
