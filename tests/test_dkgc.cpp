#include "greedcolor/core/dkgc.hpp"

#include <gtest/gtest.h>

#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(Dkgc, K1IsProperColoring) {
  const Graph g = build_graph(gen_random_geometric(300, 0.08, 3));
  const auto r = color_dkgc_sequential(g, 1);
  EXPECT_TRUE(is_valid_dkgc(g, 1, r.colors));
  // k=1 proper coloring: no adjacent pair shares a color.
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    for (const vid_t u : g.neighbors(v))
      EXPECT_NE(r.colors[static_cast<std::size_t>(v)],
                r.colors[static_cast<std::size_t>(u)]);
}

TEST(Dkgc, K2MatchesD2gcSequential) {
  const Graph g = build_graph(gen_mesh2d(12, 12, 1));
  const auto dk = color_dkgc_sequential(g, 2);
  const auto d2 = color_d2gc_sequential(g);
  EXPECT_EQ(dk.colors, d2.colors);
}

TEST(Dkgc, PathDistanceK) {
  // On a path, distance-k coloring needs exactly k+1 colors.
  const Graph g = build_graph(testing::path_coo(20));
  for (int k = 1; k <= 5; ++k) {
    const auto r = color_dkgc_sequential(g, k);
    EXPECT_EQ(r.num_colors, k + 1) << "k=" << k;
    EXPECT_TRUE(is_valid_dkgc(g, k, r.colors));
  }
}

TEST(Dkgc, ColorsAreMonotoneInK) {
  const Graph g = build_graph(gen_random_geometric(250, 0.07, 8));
  color_t prev = 0;
  for (int k = 1; k <= 4; ++k) {
    const auto r = color_dkgc_sequential(g, k);
    EXPECT_GE(r.num_colors, prev);
    prev = r.num_colors;
  }
}

TEST(Dkgc, ParallelEngineIsValidForEvenK) {
  const Graph g = build_graph(gen_random_geometric(400, 0.07, 5));
  for (int k : {2, 4}) {
    ColoringOptions opt = bgpc_preset("N1-N2");
    opt.num_threads = 2;
    const auto r = color_dkgc(g, k, opt);
    EXPECT_TRUE(is_valid_dkgc(g, k, r.colors)) << "k=" << k;
  }
}

TEST(Dkgc, ParallelEngineOverCoversOddK) {
  // For odd k the ball-reduction enforces distance-(k+1) separation:
  // still valid for k, just possibly more colors.
  const Graph g = build_graph(gen_random_geometric(300, 0.07, 6));
  const auto r = color_dkgc(g, 3, bgpc_preset("V-N1"));
  EXPECT_TRUE(is_valid_dkgc(g, 3, r.colors));
}

TEST(Dkgc, RejectsOutOfRangeK) {
  const Graph g = build_graph(testing::path_coo(3));
  EXPECT_THROW(color_dkgc_sequential(g, 0), std::invalid_argument);
  EXPECT_THROW(color_dkgc_sequential(g, 7), std::invalid_argument);
  EXPECT_THROW(color_dkgc(g, 0), std::invalid_argument);
  EXPECT_THROW((void)is_valid_dkgc(g, 9, {0, 1, 2}), std::invalid_argument);
}

TEST(Dkgc, ValidatorCatchesPlantedViolation) {
  const Graph g = build_graph(testing::path_coo(5));
  // d(0,2)=2 <= 3 but same color.
  EXPECT_FALSE(is_valid_dkgc(g, 3, {0, 1, 0, 2, 3}));
  EXPECT_FALSE(is_valid_dkgc(g, 2, {0, 1, kNoColor, 2, 3}));
}

}  // namespace
}  // namespace gcol
