#include "greedcolor/util/prng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gcol {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.bounded(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Xoshiro256, BoundedCoversRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, UniformInHalfOpenUnitInterval) {
  Xoshiro256 rng(123);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // law of large numbers sanity
}

TEST(Mix64, IsAPermutationLikeHash) {
  // Distinct inputs should essentially never collide on 64 bits.
  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < 4096; ++x) seen.insert(mix64(x));
  EXPECT_EQ(seen.size(), 4096u);
}

}  // namespace
}  // namespace gcol
