#include "greedcolor/graph/csr.hpp"

#include <gtest/gtest.h>

#include "greedcolor/graph/builder.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

using testing::complete_coo;
using testing::cycle_coo;
using testing::path_coo;
using testing::star_coo;

TEST(Graph, PathStructure) {
  const Graph g = build_graph(path_coo(5));
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_adjacency_entries(), 8);  // 4 undirected edges
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, NeighborsAreSortedUnique) {
  const Graph g = build_graph(cycle_coo(6));
  for (vid_t v = 0; v < 6; ++v) {
    const auto nb = g.neighbors(v);
    ASSERT_EQ(nb.size(), 2u);
    EXPECT_LT(nb[0], nb[1]);
  }
}

TEST(Graph, BuilderSymmetrizesOneDirectionalInput) {
  Coo coo;
  coo.num_rows = coo.num_cols = 3;
  coo.add(0, 1);  // only one direction given
  coo.add(1, 2);
  const Graph g = build_graph(std::move(coo));
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Graph, BuilderDropsSelfLoopsAndDuplicates) {
  Coo coo;
  coo.num_rows = coo.num_cols = 3;
  coo.add(0, 0);
  coo.add(1, 1);
  coo.add(0, 1);
  coo.add(0, 1);
  coo.add(1, 0);
  const Graph g = build_graph(std::move(coo));
  EXPECT_EQ(g.num_adjacency_entries(), 2);
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, StarDegrees) {
  const Graph g = build_graph(star_coo(10));
  EXPECT_EQ(g.degree(0), 9);
  for (vid_t v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1);
}

TEST(Graph, CompleteGraphDegrees) {
  const Graph g = build_graph(complete_coo(6));
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, RejectsRectangular) {
  Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 3;
  EXPECT_THROW(build_graph(std::move(coo)), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEntries) {
  Coo coo;
  coo.num_rows = coo.num_cols = 2;
  coo.add(0, 5);
  EXPECT_THROW(build_graph(std::move(coo)), std::out_of_range);
}

TEST(Graph, CtorRejectsBadPtrArray) {
  EXPECT_THROW(Graph(2, {0, 1}, {1, 0}), std::invalid_argument);
  EXPECT_THROW(Graph(2, {0, 1, 3}, {1, 0}), std::invalid_argument);
}

TEST(Graph, EmptyGraph) {
  const Graph g = build_graph([&] {
    Coo coo;
    coo.num_rows = coo.num_cols = 4;
    return coo;
  }());
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_adjacency_entries(), 0);
  EXPECT_EQ(g.max_degree(), 0);
}

}  // namespace
}  // namespace gcol
