// Independent oracle cross-checks.
//
// The BGPC verifier, the coloring engines, and the distance-2
// reductions are all hand-written; this file validates them against a
// brute-force oracle built a completely different way: the explicit
// conflict graph (column-intersection graph), on which BGPC validity
// is plain distance-1 validity.
#include <gtest/gtest.h>

#include <set>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d1gc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/util/prng.hpp"

namespace gcol {
namespace {

/// Explicit conflict graph: u ~ w iff they share at least one net.
Graph conflict_graph(const BipartiteGraph& g) {
  Coo coo;
  coo.num_rows = coo.num_cols = g.num_vertices();
  for (vid_t v = 0; v < g.num_nets(); ++v) {
    const auto vs = g.vtxs(v);
    for (std::size_t i = 0; i < vs.size(); ++i)
      for (std::size_t j = i + 1; j < vs.size(); ++j) {
        coo.add(vs[i], vs[j]);
        coo.add(vs[j], vs[i]);
      }
  }
  // Isolated vertices keep their position via the square dimensions.
  return build_graph(std::move(coo));
}

class OracleSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleSeeds, VerifierAgreesWithConflictGraphOracle) {
  const BipartiteGraph g =
      build_bipartite(gen_random_bipartite(40, 70, 350, GetParam()));
  const Graph cg = conflict_graph(g);

  // Valid colorings must pass both; random perturbations must agree on
  // accept/reject, whichever way they fall.
  auto r = color_bgpc(g, bgpc_preset("N1-N2"));
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  EXPECT_TRUE(is_valid_d1gc(cg, r.colors));

  Xoshiro256 rng(GetParam() ^ 0xFEED);
  for (int trial = 0; trial < 30; ++trial) {
    auto mutated = r.colors;
    const auto victim = static_cast<std::size_t>(
        rng.bounded(static_cast<std::uint64_t>(mutated.size())));
    mutated[victim] = static_cast<color_t>(rng.bounded(
        static_cast<std::uint64_t>(r.num_colors)));
    EXPECT_EQ(is_valid_bgpc(g, mutated), is_valid_d1gc(cg, mutated))
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

TEST_P(OracleSeeds, GreedyOnConflictGraphMatchesBgpcSequential) {
  // The sequential BGPC greedy and the sequential D1 greedy on the
  // conflict graph see identical forbidden sets (module multiplicity),
  // hence produce identical colorings in the same order.
  const BipartiteGraph g =
      build_bipartite(gen_random_bipartite(30, 60, 260, GetParam() ^ 0x7));
  const Graph cg = conflict_graph(g);
  EXPECT_EQ(color_bgpc_sequential(g).colors,
            color_d1gc_sequential(cg).colors);
}

TEST_P(OracleSeeds, ColorCountNeverBelowCliqueBound) {
  // Every net is a clique of the conflict graph: chromatic >= max net
  // degree. Check all engines respect it (they must — verifier-valid
  // implies it — but this pins the bound computation itself).
  const BipartiteGraph g =
      build_bipartite(gen_random_bipartite(35, 50, 300, GetParam() ^ 0x9));
  EXPECT_GE(color_bgpc_sequential(g).num_colors, g.max_net_degree());
  EXPECT_GE(color_bgpc(g, bgpc_preset("V-N2")).num_colors,
            g.max_net_degree());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSeeds,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Oracle, ConflictGraphConstructionSanity) {
  // nets {0,1,2} and {2,3}: conflict edges 01 02 12 23.
  Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 4;
  coo.add(0, 0);
  coo.add(0, 1);
  coo.add(0, 2);
  coo.add(1, 2);
  coo.add(1, 3);
  const Graph cg = conflict_graph(build_bipartite(std::move(coo)));
  EXPECT_EQ(cg.num_adjacency_entries(), 8);  // 4 undirected edges
  EXPECT_EQ(cg.degree(2), 3);
  EXPECT_EQ(cg.degree(3), 1);
}

}  // namespace
}  // namespace gcol
