#include "greedcolor/dist/dist_bgpc.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/dist/shard.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/robust/fault.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(DistPartition, BlockCoversAllRanksContiguously) {
  DistOptions opt;
  opt.num_ranks = 4;
  const auto owner = make_partition(100, opt);
  EXPECT_EQ(owner.front(), 0);
  EXPECT_EQ(owner.back(), 3);
  for (std::size_t i = 1; i < owner.size(); ++i)
    EXPECT_LE(owner[i - 1], owner[i]);  // monotone = contiguous blocks
}

TEST(DistPartition, HashIsDeterministicAndSpread) {
  DistOptions opt;
  opt.num_ranks = 8;
  opt.partition = DistOptions::Partition::kHash;
  const auto a = make_partition(1000, opt);
  const auto b = make_partition(1000, opt);
  EXPECT_EQ(a, b);
  std::vector<int> count(8, 0);
  for (const int r : a) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 8);
    ++count[static_cast<std::size_t>(r)];
  }
  for (const int ct : count) EXPECT_GT(ct, 60);  // roughly even
}

TEST(DistPartition, RejectsZeroRanks) {
  DistOptions opt;
  opt.num_ranks = 0;
  EXPECT_THROW(make_partition(10, opt), std::invalid_argument);
}

using Param = std::tuple<int /*ranks*/, DistOptions::Partition>;

class DistValidity : public ::testing::TestWithParam<Param> {};

TEST_P(DistValidity, ValidColoringAndSaneStats) {
  const auto& [ranks, partition] = GetParam();
  PowerLawBipartiteParams p;
  p.rows = 400;
  p.cols = 1600;
  p.min_deg = 3;
  p.max_deg = 120;
  p.alpha = 1.2;
  p.seed = 31;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));

  DistOptions opt;
  opt.num_ranks = ranks;
  opt.partition = partition;
  const auto r = color_bgpc_distributed(g, opt);
  const auto violation = check_bgpc(g, r.colors);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->to_string() : "");
  EXPECT_FALSE(r.stats.fallback);
  EXPECT_EQ(r.stats.interior_vertices + r.stats.boundary_vertices,
            g.num_vertices());
  EXPECT_GE(r.num_colors, g.max_net_degree());
  EXPECT_LE(r.num_colors, bgpc_color_bound(g));
}

INSTANTIATE_TEST_SUITE_P(
    RanksByPartition, DistValidity,
    ::testing::Combine(::testing::Values(1, 2, 4, 16),
                       ::testing::Values(DistOptions::Partition::kBlock,
                                         DistOptions::Partition::kHash)),
    [](const auto& info) {
      return std::string("r") + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == DistOptions::Partition::kBlock
                  ? "_block"
                  : "_hash");
    });

TEST(Dist, SingleRankIsPureSequentialNoMessages) {
  const BipartiteGraph g = testing::disjoint_nets(10, 6);
  DistOptions opt;
  opt.num_ranks = 1;
  const auto r = color_bgpc_distributed(g, opt);
  EXPECT_EQ(r.stats.boundary_vertices, 0);
  EXPECT_EQ(r.stats.messages_sent, 0u);
  EXPECT_EQ(r.stats.supersteps, 0);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  // With one rank the schedule is the natural sequential greedy.
  EXPECT_EQ(r.colors, color_bgpc_sequential(g).colors);
}

TEST(Dist, DisjointNetsAlignedWithBlocksNeedNoCommunication) {
  // 4 nets x 4 vertices, 4 ranks, block partition of 16: each net's
  // vertices land in one rank => zero boundary vertices.
  const BipartiteGraph g = testing::disjoint_nets(4, 4);
  DistOptions opt;
  opt.num_ranks = 4;
  const auto r = color_bgpc_distributed(g, opt);
  EXPECT_EQ(r.stats.boundary_vertices, 0);
  EXPECT_EQ(r.stats.messages_sent, 0u);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
}

TEST(Dist, SingleNetAcrossRanksCommunicates) {
  const BipartiteGraph g = testing::single_net(16);
  DistOptions opt;
  opt.num_ranks = 4;
  const auto r = color_bgpc_distributed(g, opt);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  EXPECT_EQ(r.num_colors, 16);
  EXPECT_EQ(r.stats.boundary_vertices, 16);
  EXPECT_GT(r.stats.messages_sent, 0u);
  EXPECT_GE(r.stats.supersteps, 1);
  // Staleness forces conflicts: all ranks first-fit into the same low
  // colors in superstep 1.
  EXPECT_GT(r.stats.conflicts, 0u);
}

TEST(Dist, DeterministicForFixedOptions) {
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(600, 250, 2, 40, 1.8, 17));
  DistOptions opt;
  opt.num_ranks = 8;
  const auto a = color_bgpc_distributed(g, opt);
  const auto b = color_bgpc_distributed(g, opt);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.supersteps, b.stats.supersteps);
}

TEST(Dist, MoreRanksMoreBoundary) {
  const BipartiteGraph g = build_bipartite(gen_mesh2d(30, 30, 1));
  vid_t prev = 0;
  for (const int ranks : {2, 4, 8}) {
    DistOptions opt;
    opt.num_ranks = ranks;
    const auto r = color_bgpc_distributed(g, opt);
    EXPECT_TRUE(is_valid_bgpc(g, r.colors));
    EXPECT_GE(r.stats.boundary_vertices, prev);
    prev = r.stats.boundary_vertices;
  }
}

TEST(Dist, ColorCountStaysNearSharedMemory) {
  // The distributed rounds should not blow up the color count relative
  // to the shared-memory N1-N2 (paper-family quality).
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(900, 380, 2, 50, 1.8, 23));
  DistOptions opt;
  opt.num_ranks = 8;
  const auto dist = color_bgpc_distributed(g, opt);
  const auto shared = color_bgpc(g, bgpc_preset("N1-N2"));
  EXPECT_TRUE(is_valid_bgpc(g, dist.colors));
  EXPECT_LE(dist.num_colors,
            static_cast<color_t>(shared.num_colors * 1.3) + 2);
}

// ---- Shard construction ----

TEST(Shards, SingleShardOwnsEverythingWithNoGhosts) {
  const BipartiteGraph g = testing::single_net(8);
  DistOptions opt;
  opt.num_ranks = 1;
  const auto shards = make_shards(g, make_partition(g.num_vertices(), opt), 1);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].num_owned(), g.num_vertices());
  EXPECT_EQ(shards[0].num_ghosts(), 0);
  EXPECT_TRUE(shards[0].neighbors.empty());
  EXPECT_EQ(shards[0].local.num_nets(), g.num_nets());
  EXPECT_EQ(shards[0].local.num_edges(), g.num_edges());
}

TEST(Shards, GhostsAndBordersAreSymmetric) {
  PowerLawBipartiteParams p;
  p.rows = 120;
  p.cols = 480;
  p.min_deg = 2;
  p.max_deg = 40;
  p.alpha = 1.3;
  p.seed = 5;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  DistOptions opt;
  opt.num_ranks = 4;
  opt.partition = DistOptions::Partition::kHash;
  const auto owner = make_partition(g.num_vertices(), opt);
  const auto shards = make_shards(g, owner, opt.num_ranks);

  vid_t total_owned = 0;
  for (const auto& shard : shards) {
    total_owned += shard.num_owned();
    // Every ghost of shard s is in the border set its owner keeps for s:
    // the ghost's colors really do arrive each superstep.
    for (std::size_t i = 0; i < shard.ghosts.size(); ++i) {
      const int o = shard.ghost_owner[i];
      const auto& other = shards[static_cast<std::size_t>(o)];
      const int ni = other.neighbor_index(shard.id);
      ASSERT_GE(ni, 0) << "ghost owner not a neighbor";
      bool found = false;
      for (const vid_t lu : other.border[static_cast<std::size_t>(ni)])
        if (other.global_of(lu) == shard.ghosts[i]) {
          found = true;
          break;
        }
      EXPECT_TRUE(found) << "ghost " << shard.ghosts[i]
                         << " missing from owner border set";
    }
    // ghost_local round-trips and neighbor lists are mutual.
    for (std::size_t i = 0; i < shard.ghosts.size(); ++i)
      EXPECT_EQ(shard.global_of(shard.ghost_local(shard.ghosts[i])),
                shard.ghosts[i]);
    for (const int nb : shard.neighbors)
      EXPECT_GE(shards[static_cast<std::size_t>(nb)].neighbor_index(shard.id),
                0);
  }
  EXPECT_EQ(total_owned, g.num_vertices());
}

// ---- Fault matrix: every transport x plan combination must converge
// to a verified conflict-free coloring without the sequential fallback.

struct FaultCase {
  const char* name;
  const char* spec;  // "" = clean
  bool expect_repair;
};

using ChaosParam = std::tuple<DistOptions::TransportKind, FaultCase>;

class DistFaultMatrix : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(DistFaultMatrix, SurvivesWithoutSequentialFallback) {
  const auto& [kind, fc] = GetParam();
  PowerLawBipartiteParams p;
  p.rows = 200;
  p.cols = 800;
  p.min_deg = 2;
  p.max_deg = 60;
  p.alpha = 1.25;
  p.seed = 11;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));

  FaultPlan plan;
  if (fc.spec[0] != '\0') plan = FaultPlan::parse(fc.spec);
  DistOptions opt;
  opt.num_ranks = 4;
  opt.transport = kind;
  if (fc.spec[0] != '\0') opt.fault_plan = &plan;

  const auto r = color_bgpc_distributed(g, opt);
  const auto violation = check_bgpc(g, r.colors);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->to_string() : "");
  EXPECT_FALSE(r.stats.fallback) << "degradation must stop at repair";
  EXPECT_FALSE(r.stats.deadline_hit);
  EXPECT_LT(r.stats.supersteps, opt.max_supersteps);
  EXPECT_EQ(r.stats.interior_vertices + r.stats.boundary_vertices,
            g.num_vertices());
  EXPECT_GE(r.num_colors, g.max_net_degree());
  if (fc.expect_repair) {
    EXPECT_GT(r.stats.dirty_boundary, 0);
    EXPECT_TRUE(r.degraded);
  } else if (fc.spec[0] == '\0') {
    EXPECT_EQ(r.stats.dirty_boundary, 0);
    EXPECT_EQ(r.stats.retries, 0u);
    EXPECT_FALSE(r.degraded);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TransportByPlan, DistFaultMatrix,
    ::testing::Combine(
        ::testing::Values(DistOptions::TransportKind::kMailbox,
                          DistOptions::TransportKind::kSocket),
        ::testing::Values(
            FaultCase{"clean", "", false},
            FaultCase{"drop50", "seed=7,drop=0.5", false},
            FaultCase{"reorder50", "seed=7,reorder=0.5,delay-steps=2",
                      false},
            FaultCase{"dup50", "seed=7,dup=0.5", false},
            FaultCase{"mixed", "seed=7,drop=0.3,reorder=0.3,dup=0.3",
                      false},
            // 100% drop: every pair gives up at max_retries, the whole
            // border goes dirty, and repair finishes the job.
            FaultCase{"blackout", "seed=7,drop=1", true},
            // One shard fully partitioned for supersteps 1..3.
            FaultCase{"partition3", "seed=7,part=1,part-start=1,part-steps=3",
                      true})),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ==
                                 DistOptions::TransportKind::kMailbox
                             ? "mailbox_"
                             : "socket_") +
             std::get<1>(info.param).name;
    });

TEST(DistChaos, BlackoutBoundsSuperstepsAndRecordsRetries) {
  const BipartiteGraph g = testing::single_net(16);
  const FaultPlan plan = FaultPlan::parse("seed=3,drop=1");
  DistOptions opt;
  opt.num_ranks = 4;
  opt.fault_plan = &plan;
  const auto r = color_bgpc_distributed(g, opt);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  // Nothing ever arrives: one superstep of give-up finalizes the whole
  // boundary, repair settles it — no spinning toward max_supersteps.
  EXPECT_EQ(r.stats.supersteps, 1);
  EXPECT_FALSE(r.stats.fallback);
  EXPECT_EQ(r.stats.dirty_boundary, 16);
  EXPECT_GT(r.stats.retries, 0u);
  EXPECT_EQ(r.stats.retries, r.retry_trace.size());
  EXPECT_EQ(r.stats.messages_delivered, 0u);
  EXPECT_GT(r.stats.messages_dropped, 0u);
  // Backoff grows exponentially along each pair's retry ladder.
  EXPECT_GT(r.stats.backoff_us_total, 0u);
  for (const auto& e : r.retry_trace) {
    if (e.attempt > 1) {
      EXPECT_GE(e.backoff_us, opt.backoff_base_us);
    }
  }
}

TEST(DistChaos, DeterministicColorsAndRetryTraceUnderFaults) {
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(600, 250, 2, 40, 1.8, 17));
  const FaultPlan plan =
      FaultPlan::parse("seed=9,drop=0.4,reorder=0.3,dup=0.2,delay-steps=2");
  for (const auto kind : {DistOptions::TransportKind::kMailbox,
                          DistOptions::TransportKind::kSocket}) {
    DistOptions opt;
    opt.num_ranks = 8;
    opt.transport = kind;
    opt.fault_plan = &plan;
    const auto a = color_bgpc_distributed(g, opt);
    const auto b = color_bgpc_distributed(g, opt);
    EXPECT_EQ(a.colors, b.colors);
    EXPECT_EQ(a.retry_trace, b.retry_trace);
    EXPECT_EQ(a.stats.retries, b.stats.retries);
    EXPECT_EQ(a.stats.backoff_us_total, b.stats.backoff_us_total);
    EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
    EXPECT_EQ(a.stats.messages_stale_ignored,
              b.stats.messages_stale_ignored);
  }
}

TEST(DistChaos, MailboxAndSocketTransportsAgree) {
  PowerLawBipartiteParams p;
  p.rows = 150;
  p.cols = 600;
  p.min_deg = 2;
  p.max_deg = 50;
  p.alpha = 1.3;
  p.seed = 23;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  const FaultPlan plan = FaultPlan::parse("seed=5,drop=0.3,dup=0.3");
  for (const FaultPlan* fp : {static_cast<const FaultPlan*>(nullptr), &plan}) {
    DistOptions mbox;
    mbox.num_ranks = 4;
    mbox.fault_plan = fp;
    DistOptions sock = mbox;
    sock.transport = DistOptions::TransportKind::kSocket;
    const auto a = color_bgpc_distributed(g, mbox);
    const auto b = color_bgpc_distributed(g, sock);
    EXPECT_EQ(a.colors, b.colors);
    EXPECT_EQ(a.stats.supersteps, b.stats.supersteps);
    EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
    EXPECT_EQ(a.stats.messages_delivered, b.stats.messages_delivered);
    EXPECT_EQ(a.retry_trace, b.retry_trace);
  }
}

TEST(DistChaos, CleanRunAccountingBalances) {
  const BipartiteGraph g = testing::single_net(16);
  DistOptions opt;
  opt.num_ranks = 4;
  const auto r = color_bgpc_distributed(g, opt);
  // No decorator in the path: everything sent is delivered, nothing
  // dropped or duplicated; stale_ignored only counts the redundant
  // entries cumulative batches re-carry by design.
  EXPECT_EQ(r.stats.messages_sent, r.stats.messages_delivered);
  EXPECT_EQ(r.stats.messages_dropped, 0u);
  EXPECT_EQ(r.stats.messages_duplicated, 0u);
  EXPECT_EQ(r.stats.retries, 0u);
  EXPECT_TRUE(r.retry_trace.empty());
}

}  // namespace
}  // namespace gcol
