#include "greedcolor/dist/dist_bgpc.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "test_util.hpp"

namespace gcol {
namespace {

TEST(DistPartition, BlockCoversAllRanksContiguously) {
  DistOptions opt;
  opt.num_ranks = 4;
  const auto owner = make_partition(100, opt);
  EXPECT_EQ(owner.front(), 0);
  EXPECT_EQ(owner.back(), 3);
  for (std::size_t i = 1; i < owner.size(); ++i)
    EXPECT_LE(owner[i - 1], owner[i]);  // monotone = contiguous blocks
}

TEST(DistPartition, HashIsDeterministicAndSpread) {
  DistOptions opt;
  opt.num_ranks = 8;
  opt.partition = DistOptions::Partition::kHash;
  const auto a = make_partition(1000, opt);
  const auto b = make_partition(1000, opt);
  EXPECT_EQ(a, b);
  std::vector<int> count(8, 0);
  for (const int r : a) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 8);
    ++count[static_cast<std::size_t>(r)];
  }
  for (const int ct : count) EXPECT_GT(ct, 60);  // roughly even
}

TEST(DistPartition, RejectsZeroRanks) {
  DistOptions opt;
  opt.num_ranks = 0;
  EXPECT_THROW(make_partition(10, opt), std::invalid_argument);
}

using Param = std::tuple<int /*ranks*/, DistOptions::Partition>;

class DistValidity : public ::testing::TestWithParam<Param> {};

TEST_P(DistValidity, ValidColoringAndSaneStats) {
  const auto& [ranks, partition] = GetParam();
  PowerLawBipartiteParams p;
  p.rows = 400;
  p.cols = 1600;
  p.min_deg = 3;
  p.max_deg = 120;
  p.alpha = 1.2;
  p.seed = 31;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));

  DistOptions opt;
  opt.num_ranks = ranks;
  opt.partition = partition;
  const auto r = color_bgpc_distributed(g, opt);
  const auto violation = check_bgpc(g, r.colors);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->to_string() : "");
  EXPECT_FALSE(r.stats.fallback);
  EXPECT_EQ(r.stats.interior_vertices + r.stats.boundary_vertices,
            g.num_vertices());
  EXPECT_GE(r.num_colors, g.max_net_degree());
  EXPECT_LE(r.num_colors, bgpc_color_bound(g));
}

INSTANTIATE_TEST_SUITE_P(
    RanksByPartition, DistValidity,
    ::testing::Combine(::testing::Values(1, 2, 4, 16),
                       ::testing::Values(DistOptions::Partition::kBlock,
                                         DistOptions::Partition::kHash)),
    [](const auto& info) {
      return std::string("r") + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == DistOptions::Partition::kBlock
                  ? "_block"
                  : "_hash");
    });

TEST(Dist, SingleRankIsPureSequentialNoMessages) {
  const BipartiteGraph g = testing::disjoint_nets(10, 6);
  DistOptions opt;
  opt.num_ranks = 1;
  const auto r = color_bgpc_distributed(g, opt);
  EXPECT_EQ(r.stats.boundary_vertices, 0);
  EXPECT_EQ(r.stats.messages, 0u);
  EXPECT_EQ(r.stats.supersteps, 0);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  // With one rank the schedule is the natural sequential greedy.
  EXPECT_EQ(r.colors, color_bgpc_sequential(g).colors);
}

TEST(Dist, DisjointNetsAlignedWithBlocksNeedNoCommunication) {
  // 4 nets x 4 vertices, 4 ranks, block partition of 16: each net's
  // vertices land in one rank => zero boundary vertices.
  const BipartiteGraph g = testing::disjoint_nets(4, 4);
  DistOptions opt;
  opt.num_ranks = 4;
  const auto r = color_bgpc_distributed(g, opt);
  EXPECT_EQ(r.stats.boundary_vertices, 0);
  EXPECT_EQ(r.stats.messages, 0u);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
}

TEST(Dist, SingleNetAcrossRanksCommunicates) {
  const BipartiteGraph g = testing::single_net(16);
  DistOptions opt;
  opt.num_ranks = 4;
  const auto r = color_bgpc_distributed(g, opt);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  EXPECT_EQ(r.num_colors, 16);
  EXPECT_EQ(r.stats.boundary_vertices, 16);
  EXPECT_GT(r.stats.messages, 0u);
  EXPECT_GE(r.stats.supersteps, 1);
  // Staleness forces conflicts: all ranks first-fit into the same low
  // colors in superstep 1.
  EXPECT_GT(r.stats.conflicts, 0u);
}

TEST(Dist, DeterministicForFixedOptions) {
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(600, 250, 2, 40, 1.8, 17));
  DistOptions opt;
  opt.num_ranks = 8;
  const auto a = color_bgpc_distributed(g, opt);
  const auto b = color_bgpc_distributed(g, opt);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.supersteps, b.stats.supersteps);
}

TEST(Dist, MoreRanksMoreBoundary) {
  const BipartiteGraph g = build_bipartite(gen_mesh2d(30, 30, 1));
  vid_t prev = 0;
  for (const int ranks : {2, 4, 8}) {
    DistOptions opt;
    opt.num_ranks = ranks;
    const auto r = color_bgpc_distributed(g, opt);
    EXPECT_TRUE(is_valid_bgpc(g, r.colors));
    EXPECT_GE(r.stats.boundary_vertices, prev);
    prev = r.stats.boundary_vertices;
  }
}

TEST(Dist, ColorCountStaysNearSharedMemory) {
  // The distributed rounds should not blow up the color count relative
  // to the shared-memory N1-N2 (paper-family quality).
  const BipartiteGraph g =
      build_bipartite(gen_clique_union(900, 380, 2, 50, 1.8, 23));
  DistOptions opt;
  opt.num_ranks = 8;
  const auto dist = color_bgpc_distributed(g, opt);
  const auto shared = color_bgpc(g, bgpc_preset("N1-N2"));
  EXPECT_TRUE(is_valid_bgpc(g, dist.colors));
  EXPECT_LE(dist.num_colors,
            static_cast<color_t>(shared.num_colors * 1.3) + 2);
}

}  // namespace
}  // namespace gcol
