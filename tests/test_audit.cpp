// Speculative-race auditor tests.
//
// The headline property: a conflict that escapes conflict removal is a
// *logic* bug, not a data race — every access involved is a relaxed
// atomic, so ThreadSanitizer has nothing to flag (the tsan preset runs
// the fault-injection suite race-clean). The auditor checks the
// semantic property instead: these tests seed exactly such a bug with
// FaultPlan stale-write injection and require the auditor to catch it,
// in every build mode.
#include <gtest/gtest.h>

#include <array>
#include <thread>

#include "greedcolor/analyze/audit.hpp"
#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/robust/error.hpp"
#include "greedcolor/robust/fault.hpp"
#include "greedcolor/robust/verified.hpp"

namespace gcol {
namespace {

BipartiteGraph audit_bipartite(std::uint64_t seed) {
  return build_bipartite(gen_random_bipartite(150, 120, 900, seed));
}

Graph audit_symmetric(std::uint64_t seed) {
  Coo coo = gen_random_bipartite(160, 160, 800, seed);
  coo.symmetrize();
  return build_graph(coo);
}

TEST(AuditBgpc, CleanRunReportsClean) {
  const BipartiteGraph g = audit_bipartite(0xAB1);
  for (const auto& name : {"V-V", "V-Ninf", "N1-N2"}) {
    audit::AuditContext ctx;
    ColoringOptions opt = bgpc_preset(name);
    opt.num_threads = 4;
    opt.auditor = &ctx;
    const auto r = color_bgpc(g, opt);
    EXPECT_TRUE(is_valid_bgpc(g, r.colors)) << name;
    const auto& rep = ctx.report();
    EXPECT_TRUE(rep.clean()) << name << ": " << rep.summary();
    EXPECT_EQ(rep.escaped_conflicts, 0u) << name;
    EXPECT_EQ(rep.rounds_audited, r.rounds) << name;
    EXPECT_TRUE(rep.violations.empty()) << name;
  }
}

TEST(AuditBgpc, LedgersRecordSpeculationInAuditBuilds) {
  const BipartiteGraph g = audit_bipartite(0xAB2);
  audit::AuditContext ctx;
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 4;
  opt.auditor = &ctx;
  const auto r = color_bgpc(g, opt);
  ASSERT_TRUE(is_valid_bgpc(g, r.colors));
  const auto& rep = ctx.report();
  if constexpr (audit::kAuditEnabled) {
    // Every vertex gets at least one speculative store, and coloring
    // reads neighbor colors throughout.
    EXPECT_GE(rep.writes_recorded,
              static_cast<std::uint64_t>(g.num_vertices()));
    EXPECT_GT(rep.reads_recorded, 0u);
  } else {
    EXPECT_EQ(rep.writes_recorded, 0u);
    EXPECT_EQ(rep.reads_recorded, 0u);
  }
}

// The acceptance-criteria test: a seeded escaped-conflict bug (stale
// speculative writes landing after conflict removal) that produces no
// data race whatsoever — invisible to tsan — must be caught by the
// auditor in any build mode.
TEST(AuditBgpc, SeededEscapedConflictIsCaught) {
  const BipartiteGraph g = audit_bipartite(0xAB3);
  const FaultPlan plan = FaultPlan::parse("seed=5,stale=0.3");
  audit::AuditContext ctx;
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 2;
  opt.fault_plan = &plan;
  opt.auditor = &ctx;
  const auto r = color_bgpc(g, opt);
  ASSERT_GT(r.faults_injected, 0) << "plan injected nothing";
  const auto& rep = ctx.report();
  EXPECT_FALSE(rep.clean());
  EXPECT_GT(rep.escaped_conflicts, 0u);
  ASSERT_FALSE(rep.violations.empty());
  const auto& v = rep.violations.front();
  EXPECT_NE(v.a, v.b);
  EXPECT_GE(v.color, 0);
  EXPECT_FALSE(v.to_string().empty());
}

TEST(AuditBgpc, FailFastThrowsTypedError) {
  const BipartiteGraph g = audit_bipartite(0xAB4);
  const FaultPlan plan = FaultPlan::parse("seed=7,stale=0.4");
  audit::AuditContext ctx({.fail_fast = true});
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 2;
  opt.fault_plan = &plan;
  opt.auditor = &ctx;
  try {
    (void)color_bgpc(g, opt);
    FAIL() << "fail_fast auditor did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternalInvariant);
  }
  // The scope unwound: no context may be left installed.
  EXPECT_EQ(audit::active(), nullptr);
}

TEST(AuditBgpc, VerifiedEntryRepairsWhatTheAuditorSaw) {
  // The auditor observes the corruption mid-run; the verified wrapper
  // still delivers a valid final coloring. Both reports are true.
  const BipartiteGraph g = audit_bipartite(0xAB5);
  const FaultPlan plan = FaultPlan::parse("seed=9,stale=0.3");
  audit::AuditContext ctx;
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 2;
  opt.fault_plan = &plan;
  opt.auditor = &ctx;
  const auto r = color_bgpc_verified(g, opt);
  EXPECT_TRUE(is_valid_bgpc(g, r.colors));
  EXPECT_GT(ctx.report().escaped_conflicts, 0u);
}

TEST(AuditBgpc, ScopeRestoresAndReportAccumulates) {
  const BipartiteGraph g = audit_bipartite(0xAB6);
  audit::AuditContext ctx;
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 2;
  opt.auditor = &ctx;
  const auto r1 = color_bgpc(g, opt);
  const int after_first = ctx.report().rounds_audited;
  EXPECT_EQ(after_first, r1.rounds);
  const auto r2 = color_bgpc(g, opt);
  EXPECT_EQ(ctx.report().rounds_audited, after_first + r2.rounds);
  EXPECT_TRUE(ctx.report().clean());
  EXPECT_EQ(audit::active(), nullptr);
}

TEST(AuditD2gc, CleanRunReportsClean) {
  const Graph g = audit_symmetric(0xD21);
  for (const auto& name : {"V-V-64D", "N1-N2"}) {
    audit::AuditContext ctx;
    ColoringOptions opt = d2gc_preset(name);
    opt.num_threads = 4;
    opt.auditor = &ctx;
    const auto r = color_d2gc(g, opt);
    EXPECT_TRUE(is_valid_d2gc(g, r.colors)) << name;
    EXPECT_TRUE(ctx.report().clean())
        << name << ": " << ctx.report().summary();
    EXPECT_EQ(ctx.report().rounds_audited, r.rounds) << name;
  }
}

TEST(AuditD2gc, SeededEscapedConflictIsCaught) {
  const Graph g = audit_symmetric(0xD22);
  const FaultPlan plan = FaultPlan::parse("seed=11,stale=0.3");
  audit::AuditContext ctx;
  ColoringOptions opt = d2gc_preset("V-V-64D");
  opt.num_threads = 2;
  opt.fault_plan = &plan;
  opt.auditor = &ctx;
  const auto r = color_d2gc(g, opt);
  ASSERT_GT(r.faults_injected, 0) << "plan injected nothing";
  EXPECT_FALSE(ctx.report().clean());
  EXPECT_GT(ctx.report().escaped_conflicts, 0u);
}

// Registry contention: many threads race their own audited colorings.
// The first-wins install contract promises (a) no UB / torn registry,
// (b) every context still gets its full per-round sweep (that path does
// not go through the registry), (c) nothing is left installed after the
// last scope exits.
TEST(AuditScopeTest, ConcurrentAttachDetachIsSafe) {
  constexpr int kThreads = 4;
  constexpr int kIters = 6;
  std::array<audit::AuditContext, kThreads> ctxs;
  std::array<int, kThreads> rounds{};
  std::array<bool, kThreads> valid{};
  valid.fill(true);
  {
    std::array<std::thread, kThreads> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool[static_cast<std::size_t>(t)] = std::thread([&, t] {
        const BipartiteGraph g =
            audit_bipartite(0xC0 + static_cast<std::uint64_t>(t));
        ColoringOptions opt = bgpc_preset("V-V");
        opt.num_threads = 2;
        opt.auditor = &ctxs[static_cast<std::size_t>(t)];
        for (int i = 0; i < kIters; ++i) {
          const auto r = color_bgpc(g, opt);
          valid[static_cast<std::size_t>(t)] =
              valid[static_cast<std::size_t>(t)] &&
              is_valid_bgpc(g, r.colors);
          rounds[static_cast<std::size_t>(t)] += r.rounds;
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    const auto& rep = ctxs[static_cast<std::size_t>(t)].report();
    EXPECT_TRUE(valid[static_cast<std::size_t>(t)]) << "thread " << t;
    EXPECT_TRUE(rep.clean()) << "thread " << t << ": " << rep.summary();
    // The sweep layer is per-context and registry-independent: every
    // round of every coloring was audited even when the scope lost the
    // ledger-hook registry to a sibling.
    EXPECT_EQ(rep.rounds_audited, rounds[static_cast<std::size_t>(t)])
        << "thread " << t;
  }
  EXPECT_EQ(audit::active(), nullptr);
}

// Overflow policy: a reservation the round outruns must reallocate and
// keep recording (grow-never-drop), with the growth surfaced in the
// report rather than silently absorbed.
TEST(AuditLedger, OverflowGrowsAndNeverDrops) {
  const BipartiteGraph g = audit_bipartite(0xAB8);
  audit::AuditContext ctx({.ledger_reserve = 1});
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 2;
  opt.auditor = &ctx;
  const auto r = color_bgpc(g, opt);
  ASSERT_TRUE(is_valid_bgpc(g, r.colors));
  const auto& rep = ctx.report();
  EXPECT_TRUE(rep.clean()) << rep.summary();
  if constexpr (audit::kAuditEnabled) {
    // Far more than one write per thread happens, so a one-slot
    // reservation must have grown — and despite that, every
    // speculative store is still accounted for (degree-0 vertices are
    // colored outside the kernels and never hit the hooks).
    EXPECT_GT(rep.ledger_growths, 0u) << rep.summary();
    std::uint64_t kernel_colored = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      if (g.vertex_degree(v) > 0) ++kernel_colored;
    EXPECT_GE(rep.writes_recorded, kernel_colored) << rep.summary();
  } else {
    EXPECT_EQ(rep.ledger_growths, 0u);
    EXPECT_EQ(rep.writes_recorded, 0u);
  }
}

TEST(AuditReport, SummaryAndViolationFormat) {
  const BipartiteGraph g = audit_bipartite(0xAB7);
  const FaultPlan plan = FaultPlan::parse("seed=13,stale=0.4");
  audit::AuditContext ctx;
  ColoringOptions opt = bgpc_preset("V-V");
  opt.num_threads = 2;
  opt.fault_plan = &plan;
  opt.auditor = &ctx;
  (void)color_bgpc(g, opt);
  const auto& rep = ctx.report();
  ASSERT_FALSE(rep.violations.empty());
  const std::string s = rep.summary();
  EXPECT_NE(s.find("escaped"), std::string::npos) << s;
  EXPECT_LE(rep.violations.size(), std::size_t{32});  // default cap
}

}  // namespace
}  // namespace gcol
