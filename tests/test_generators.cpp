#include "greedcolor/graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "greedcolor/graph/builder.hpp"

namespace gcol {
namespace {

TEST(Generators, Mesh2dInteriorDegreeIsExactWindow) {
  const Coo coo = gen_mesh2d(10, 10, 1);
  const BipartiteGraph g = build_bipartite(std::move(Coo(coo)));
  // Interior node (5,5) -> id 55: 3x3 window including itself.
  EXPECT_EQ(g.net_degree(55), 9);
  // Corner (0,0): 2x2 window.
  EXPECT_EQ(g.net_degree(0), 4);
  EXPECT_TRUE(g.validate());
}

TEST(Generators, Mesh2dIsSymmetric) {
  Coo coo = gen_mesh2d(8, 6, 2);
  EXPECT_TRUE(coo.is_structurally_symmetric());
}

TEST(Generators, Mesh3dCrossStencilDegree) {
  const Coo coo = gen_mesh3d(5, 5, 5, 1, /*full_box=*/false);
  const BipartiteGraph g = build_bipartite(std::move(Coo(coo)));
  // Interior point: 7-point stencil.
  const vid_t center = (2 * 5 + 2) * 5 + 2;
  EXPECT_EQ(g.net_degree(center), 7);
}

TEST(Generators, Mesh3dBoxStencilDegree) {
  const Coo coo = gen_mesh3d(5, 5, 5, 1, /*full_box=*/true);
  const BipartiteGraph g = build_bipartite(std::move(Coo(coo)));
  const vid_t center = (2 * 5 + 2) * 5 + 2;
  EXPECT_EQ(g.net_degree(center), 27);
}

TEST(Generators, PowerLawBipartiteRespectsDims) {
  PowerLawBipartiteParams p;
  p.rows = 100;
  p.cols = 500;
  p.min_deg = 3;
  p.max_deg = 50;
  p.alpha = 1.5;
  p.seed = 7;
  const Coo coo = gen_powerlaw_bipartite(p);
  EXPECT_EQ(coo.num_rows, 100);
  EXPECT_EQ(coo.num_cols, 500);
  const BipartiteGraph g = build_bipartite(std::move(Coo(coo)));
  EXPECT_GE(g.max_net_degree(), p.min_deg);
  EXPECT_LE(g.max_net_degree(), 50);
  for (vid_t v = 0; v < g.num_nets(); ++v)
    EXPECT_GE(g.net_degree(v), p.min_deg);
}

TEST(Generators, PowerLawDeterministicPerSeed) {
  PowerLawBipartiteParams p;
  p.rows = 50;
  p.cols = 200;
  p.seed = 11;
  const Coo a = gen_powerlaw_bipartite(p);
  const Coo b = gen_powerlaw_bipartite(p);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.cols, b.cols);
  p.seed = 12;
  const Coo c = gen_powerlaw_bipartite(p);
  EXPECT_TRUE(a.rows != c.rows || a.cols != c.cols);
}

TEST(Generators, CliqueUnionContainsItsCliques) {
  // One way to observe clique structure: max net degree >= min_clique.
  const Coo coo = gen_clique_union(200, 30, 4, 20, 2.0, 3);
  EXPECT_TRUE(coo.is_structurally_symmetric());
  const BipartiteGraph g = build_bipartite(std::move(Coo(coo)));
  EXPECT_GE(g.max_net_degree(), 4);
  // Diagonal present: every vertex has at least its own entry.
  for (vid_t v = 0; v < g.num_nets(); ++v) EXPECT_GE(g.net_degree(v), 1);
}

TEST(Generators, PreferentialAttachmentShape) {
  const Coo coo = gen_preferential_attachment(500, 3, 21);
  EXPECT_TRUE(coo.is_structurally_symmetric());
  const Graph g = build_graph(std::move(Coo(coo)));
  EXPECT_EQ(g.num_vertices(), 500);
  // Power-law-ish: the max degree should far exceed the mean (~6).
  EXPECT_GT(g.max_degree(), 20);
}

TEST(Generators, KktHasSaddleStructure) {
  const Coo coo = gen_kkt(6, 6, 6, 100, 5, 17);
  EXPECT_EQ(coo.num_rows, 6 * 6 * 6 + 100);
  EXPECT_TRUE(coo.is_structurally_symmetric());
}

TEST(Generators, BlockRowsDegreeConcentration) {
  const Coo coo = gen_block_rows(300, 40, 100, 0.25, 5);
  const BipartiteGraph g = build_bipartite(std::move(Coo(coo)));
  // Row degrees concentrate near 40 (dedup can remove a few).
  for (vid_t v = 0; v < g.num_nets(); ++v) {
    EXPECT_GE(g.net_degree(v), 25);
    EXPECT_LE(g.net_degree(v), 40);
  }
}

TEST(Generators, RandomBipartiteExactNnz) {
  const Coo coo = gen_random_bipartite(40, 60, 500, 9);
  EXPECT_EQ(coo.nnz(), 500);
  const BipartiteGraph g = build_bipartite(std::move(Coo(coo)));
  EXPECT_EQ(g.num_edges(), 500);  // entries were distinct
}

TEST(Generators, RandomBipartiteRejectsOverfull) {
  EXPECT_THROW(gen_random_bipartite(3, 3, 10, 1), std::invalid_argument);
}

TEST(Generators, RandomGeometricAdjacencyMatchesRadius) {
  // With grid bucketing, verify against the O(n^2) ground truth.
  const double radius = 0.15;
  const Coo coo = gen_random_geometric(150, radius, 33);
  EXPECT_TRUE(coo.is_structurally_symmetric());
  // Each vertex has a diagonal entry.
  const BipartiteGraph g = build_bipartite(std::move(Coo(coo)));
  for (vid_t v = 0; v < g.num_nets(); ++v) EXPECT_GE(g.net_degree(v), 1);
}

TEST(Generators, ParameterValidation) {
  EXPECT_THROW(gen_mesh2d(0, 5, 1), std::invalid_argument);
  EXPECT_THROW(gen_mesh3d(2, 2, 2, 0), std::invalid_argument);
  EXPECT_THROW(gen_clique_union(10, 5, 1, 0, 2.0, 1), std::invalid_argument);
  EXPECT_THROW(gen_preferential_attachment(3, 5, 1), std::invalid_argument);
  EXPECT_THROW(gen_block_rows(10, 5, 2, 0.2, 1), std::invalid_argument);
  EXPECT_THROW(gen_random_geometric(0, 0.1, 1), std::invalid_argument);
  PowerLawBipartiteParams bad;
  bad.rows = 0;
  EXPECT_THROW(gen_powerlaw_bipartite(bad), std::invalid_argument);
}

}  // namespace
}  // namespace gcol
