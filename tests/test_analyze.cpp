// Structural analyzer + contract layer tests: analyze_graph() must
// accept everything the generators produce, pinpoint each class of
// hand-made CSR corruption by kind, and agree with the boolean
// validate() members on the corrupted-input corpus. The contract macros
// must throw typed errors in checked builds and vanish in release.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "greedcolor/analyze/contract.hpp"
#include "greedcolor/analyze/structure.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/graph/mtx_io.hpp"
#include "greedcolor/robust/error.hpp"
#include "greedcolor/robust/fault.hpp"
#include "greedcolor/util/prng.hpp"

namespace gcol {
namespace {

bool has_kind(const GraphAnalysis& a, StructuralIssueKind kind) {
  return std::any_of(a.issues.begin(), a.issues.end(),
                     [kind](const StructuralIssue& i) {
                       return i.kind == kind;
                     });
}

// A tiny well-formed bipartite instance: vertex 0 in net {0},
// vertex 1 in nets {0,1}, vertex 2 in net {1}.
BipartiteGraph tiny_bipartite() {
  return BipartiteGraph(3, 2, {0, 1, 3, 4}, {0, 0, 1, 1}, {0, 2, 4},
                        {0, 1, 1, 2});
}

TEST(AnalyzeBipartite, CleanGraphHasNoIssuesAndCorrectFacts) {
  const BipartiteGraph g = tiny_bipartite();
  const GraphAnalysis a = analyze_graph(g);
  EXPECT_TRUE(a.ok()) << a.to_string();
  EXPECT_EQ(a.num_vertices, 3);
  EXPECT_EQ(a.num_nets, 2);
  EXPECT_EQ(a.num_edges, 4);
  EXPECT_EQ(a.max_vertex_degree, 2);
  EXPECT_EQ(a.max_net_degree, 2);
  EXPECT_EQ(a.color_lower_bound, 2);  // L = max net degree
}

TEST(AnalyzeBipartite, GeneratedGraphsAreClean) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const BipartiteGraph g =
        build_bipartite(gen_random_bipartite(60, 80, 300, seed));
    const GraphAnalysis a = analyze_graph(g);
    EXPECT_TRUE(a.ok()) << "seed " << seed << ": " << a.to_string();
    EXPECT_EQ(a.color_lower_bound, g.max_net_degree());
  }
}

TEST(AnalyzeBipartite, UnsortedAdjacencyFlagged) {
  const BipartiteGraph g(3, 2, {0, 1, 3, 4}, {0, 1, 0, 1}, {0, 2, 4},
                         {0, 1, 1, 2});
  const GraphAnalysis a = analyze_graph(g);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(has_kind(a, StructuralIssueKind::kUnsortedAdjacency))
      << a.to_string();
}

TEST(AnalyzeBipartite, OutOfRangeIndexFlagged) {
  const BipartiteGraph g(3, 2, {0, 1, 3, 4}, {0, 0, 5, 1}, {0, 2, 4},
                         {0, 1, 1, 2});
  const GraphAnalysis a = analyze_graph(g);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(has_kind(a, StructuralIssueKind::kIndexOutOfRange))
      << a.to_string();
}

TEST(AnalyzeBipartite, DuplicateAdjacencyFlagged) {
  const BipartiteGraph g(3, 2, {0, 1, 3, 4}, {0, 0, 0, 1}, {0, 2, 4},
                         {0, 1, 1, 2});
  const GraphAnalysis a = analyze_graph(g);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(has_kind(a, StructuralIssueKind::kDuplicateAdjacency))
      << a.to_string();
}

TEST(AnalyzeBipartite, TransposeMismatchFlagged) {
  // Both halves are individually sorted and in range, but vertex 2
  // claims net 0 while net 0 does not list vertex 2.
  const BipartiteGraph g(3, 2, {0, 1, 3, 4}, {0, 0, 1, 0}, {0, 2, 4},
                         {0, 1, 1, 2});
  const GraphAnalysis a = analyze_graph(g);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(has_kind(a, StructuralIssueKind::kTransposeMismatch))
      << a.to_string();
}

TEST(AnalyzeBipartite, NonMonotonePointerArrayFlagged) {
  const BipartiteGraph g(3, 2, {0, 3, 1, 4}, {0, 0, 1, 1}, {0, 2, 4},
                         {0, 1, 1, 2});
  const GraphAnalysis a = analyze_graph(g);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(has_kind(a, StructuralIssueKind::kBadPointerArray))
      << a.to_string();
}

TEST(AnalyzeBipartite, IssueCapKeepsCounting) {
  // Every vertex adjacency entry out of range: far more issues than the
  // cap materializes, but total_issues sees them all.
  const BipartiteGraph g(3, 2, {0, 1, 3, 4}, {9, 9, 9, 9}, {0, 2, 4},
                         {0, 1, 1, 2});
  const GraphAnalysis a = analyze_graph(g, 2);
  EXPECT_FALSE(a.ok());
  EXPECT_LE(a.issues.size(), 2u);
  EXPECT_GT(a.total_issues, a.issues.size());
}

TEST(AnalyzeUnipartite, CleanGraphHasNoIssues) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Coo coo = gen_random_bipartite(80, 80, 400, seed);
    coo.symmetrize();
    const Graph g = build_graph(coo);
    const GraphAnalysis a = analyze_graph(g);
    EXPECT_TRUE(a.ok()) << "seed " << seed << ": " << a.to_string();
    EXPECT_EQ(a.num_vertices, g.num_vertices());
    EXPECT_EQ(a.color_lower_bound, g.max_degree() + 1);
  }
}

TEST(AnalyzeUnipartite, SelfLoopFlagged) {
  const Graph g(2, {0, 2, 3}, {0, 1, 0});
  const GraphAnalysis a = analyze_graph(g);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(has_kind(a, StructuralIssueKind::kSelfLoop)) << a.to_string();
}

TEST(AnalyzeUnipartite, AsymmetricAdjacencyFlagged) {
  const Graph g(3, {0, 1, 1, 1}, {1});
  const GraphAnalysis a = analyze_graph(g);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(has_kind(a, StructuralIssueKind::kAsymmetricAdjacency))
      << a.to_string();
}

TEST(AnalyzeUnipartite, NonMonotonePointerArrayFlagged) {
  const Graph g(2, {0, 2, 1}, {1});
  const GraphAnalysis a = analyze_graph(g);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(has_kind(a, StructuralIssueKind::kBadPointerArray))
      << a.to_string();
}

// The corrupted-input corpus from the fuzz suite: whatever survives the
// parser must get the same verdict from analyze_graph() as from the
// boolean validate() — the analyzer is a diagnosing superset, not a
// different oracle.
TEST(AnalyzeCorpus, AgreesWithValidateOnCorruptedInputs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Coo coo = gen_random_bipartite(
        40 + static_cast<vid_t>(seed * 7), 60, 250, seed);
    std::ostringstream out;
    write_matrix_market(out, coo);
    const std::string good = out.str();

    FaultPlan plan;
    plan.seed = seed;
    plan.flip_byte_rate = 0.02;
    plan.truncate_fraction = 0.6;
    for (std::uint64_t variant = 0; variant < 12; ++variant) {
      std::istringstream in(plan.corrupt_bytes(good, variant));
      try {
        const BipartiteGraph g = build_bipartite(read_matrix_market(in));
        const GraphAnalysis a = analyze_graph(g);
        EXPECT_EQ(a.ok(), g.validate())
            << "seed " << seed << " variant " << variant << ": "
            << a.to_string();
      } catch (const Error&) {
        // Typed rejection at parse/build is the other allowed outcome.
      }
    }
  }
}

TEST(Contract, FailThrowsTypedInternalInvariant) {
  try {
    contract::fail("somefile.cpp", 42, "x > 0", "forced by test");
    FAIL() << "contract::fail returned";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternalInvariant);
    EXPECT_NE(std::string(e.what()).find("somefile.cpp:42"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("x > 0"), std::string::npos);
  }
}

TEST(Contract, MacroMatchesBuildMode) {
  if constexpr (contract::kContractsEnabled) {
    const std::uint64_t before = contract::checks_evaluated();
    GCOL_CONTRACT(1 + 1 == 2, "arithmetic still works");
    GCOL_ASSUME(true);
    EXPECT_GE(contract::checks_evaluated(), before + 2);
    EXPECT_THROW({ GCOL_CONTRACT(false, "forced"); }, Error);
    EXPECT_THROW(GCOL_ASSUME(false), Error);
  } else {
    // Release builds: the macros neither evaluate nor throw.
    EXPECT_NO_THROW({ GCOL_CONTRACT(false, "never evaluated"); });
    EXPECT_NO_THROW(GCOL_ASSUME(false));
    EXPECT_EQ(contract::checks_evaluated(), 0u);
  }
}

TEST(Contract, CheckedIngestAcceptsWellFormedGraphs) {
  // In checked builds build_bipartite/build_graph run analyze_graph as a
  // contract; a clean instance must pass through unchanged in any build.
  const BipartiteGraph g =
      build_bipartite(gen_random_bipartite(50, 50, 200, 0xA11CE));
  EXPECT_TRUE(g.validate());
  Coo coo = gen_random_bipartite(40, 40, 160, 0xB0B);
  coo.symmetrize();
  EXPECT_TRUE(build_graph(coo).validate());
}

}  // namespace
}  // namespace gcol
