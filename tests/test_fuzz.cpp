// Randomized property sweep: many seeded random instances through every
// engine, asserting the invariants that must hold universally —
// validity, bounds, termination without the fallback valve, and
// cross-engine consistency.
#include <gtest/gtest.h>

#include <sstream>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d1gc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/dsatur.hpp"
#include "greedcolor/core/recolor.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/dist/dist_bgpc.hpp"
#include "greedcolor/graph/binary_io.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/graph/mtx_io.hpp"
#include "greedcolor/robust/error.hpp"
#include "greedcolor/robust/fault.hpp"
#include "greedcolor/robust/verified.hpp"
#include "greedcolor/util/prng.hpp"

namespace gcol {
namespace {

/// A random instance family parameterized by seed: dimensions, density,
/// and skew all vary with the seed so the sweep covers a broad shape
/// range, deterministically.
Coo random_instance(std::uint64_t seed) {
  SplitMix64 sm(seed);
  const vid_t rows = 20 + static_cast<vid_t>(sm.next() % 400);
  const vid_t cols = 20 + static_cast<vid_t>(sm.next() % 700);
  const eid_t max_nnz = static_cast<eid_t>(rows) * cols;
  const eid_t nnz =
      std::min<eid_t>(max_nnz, 1 + static_cast<eid_t>(
                                       sm.next() % (8ULL * rows)));
  return gen_random_bipartite(rows, cols, nnz, seed);
}

class FuzzBgpc : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzBgpc, AllPresetsValidOnRandomInstance) {
  const BipartiteGraph g = build_bipartite(random_instance(GetParam()));
  for (const auto& name : bgpc_preset_names()) {
    ColoringOptions opt = bgpc_preset(name);
    opt.num_threads = 1 + static_cast<int>(GetParam() % 4);
    const auto r = color_bgpc(g, opt);
    const auto violation = check_bgpc(g, r.colors);
    EXPECT_FALSE(violation.has_value())
        << name << " seed=" << GetParam()
        << (violation ? ": " + violation->to_string() : "");
    EXPECT_FALSE(r.sequential_fallback) << name;
    EXPECT_GE(r.num_colors, g.max_net_degree()) << name;
    EXPECT_LE(r.num_colors, bgpc_color_bound(g)) << name;
  }
}

TEST_P(FuzzBgpc, BalancedVariantsValid) {
  const BipartiteGraph g = build_bipartite(random_instance(GetParam() ^ 0xB));
  for (const auto policy : {BalancePolicy::kB1, BalancePolicy::kB2}) {
    ColoringOptions opt = bgpc_preset("N1-N2");
    opt.balance = policy;
    opt.num_threads = 2;
    const auto r = color_bgpc(g, opt);
    EXPECT_TRUE(is_valid_bgpc(g, r.colors))
        << to_string(policy) << " seed=" << GetParam();
  }
}

TEST_P(FuzzBgpc, DsaturAndRecolorPreserveValidity) {
  const BipartiteGraph g = build_bipartite(random_instance(GetParam() ^ 0xD));
  const auto ds = color_bgpc_dsatur(g);
  EXPECT_TRUE(is_valid_bgpc(g, ds.colors));
  auto colors = ds.colors;
  const color_t after = recolor_bgpc(g, colors);
  EXPECT_TRUE(is_valid_bgpc(g, colors));
  EXPECT_LE(after, ds.num_colors);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBgpc,
                         ::testing::Range<std::uint64_t>(1, 21));

/// Random symmetric graphs for the unipartite engines.
Coo random_symmetric(std::uint64_t seed) {
  SplitMix64 sm(seed);
  const vid_t n = 30 + static_cast<vid_t>(sm.next() % 500);
  Coo coo = gen_random_bipartite(
      n, n, std::min<eid_t>(static_cast<eid_t>(n) * n, 6 * n), seed);
  coo.symmetrize();
  return coo;
}

class FuzzUnipartite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzUnipartite, D2gcPresetsValid) {
  const Graph g = build_graph(random_symmetric(GetParam()));
  for (const auto& name : d2gc_preset_names()) {
    ColoringOptions opt = d2gc_preset(name);
    opt.num_threads = 1 + static_cast<int>(GetParam() % 3);
    const auto r = color_d2gc(g, opt);
    EXPECT_TRUE(is_valid_d2gc(g, r.colors))
        << name << " seed=" << GetParam();
    EXPECT_FALSE(r.sequential_fallback) << name;
  }
}

TEST_P(FuzzUnipartite, D1FamilyAgreesOnValidity) {
  const Graph g = build_graph(random_symmetric(GetParam() ^ 0x1));
  const auto seq = color_d1gc_sequential(g);
  const auto spec = color_d1gc(g, bgpc_preset("V-V-64D"));
  const auto jp = color_d1gc_jones_plassmann(g, GetParam(), 3);
  const auto ds = color_d1gc_dsatur(g);
  EXPECT_TRUE(is_valid_d1gc(g, seq.colors));
  EXPECT_TRUE(is_valid_d1gc(g, spec.colors));
  EXPECT_TRUE(is_valid_d1gc(g, jp.colors));
  EXPECT_TRUE(is_valid_d1gc(g, ds.colors));
  // D1 never needs more colors than D2 on the same graph.
  const auto d2 = color_d2gc_sequential(g);
  EXPECT_LE(seq.num_colors, d2.num_colors);
}

TEST_P(FuzzUnipartite, D2EqualsBgpcOnClosedNeighborhoods) {
  const Graph g = build_graph(random_symmetric(GetParam() ^ 0x2));
  const BipartiteGraph bg = graph_to_bipartite_closed(g);
  EXPECT_EQ(color_d2gc_sequential(g).colors,
            color_bgpc_sequential(bg).colors);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzUnipartite,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------
// Corrupted-input corpus: well-formed files put through deterministic
// byte corruption. The ingest contract is binary — either the corrupted
// bytes still parse into a graph that validates, or a typed gcol::Error
// is thrown. Crashes, hangs, huge allocations, and untyped exceptions
// are all failures.
// ---------------------------------------------------------------------

class FuzzCorruptedInput : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCorruptedInput, MtxEitherParsesOrThrowsTyped) {
  const Coo coo = random_instance(GetParam());
  std::ostringstream out;
  write_matrix_market(out, coo);
  const std::string good = out.str();

  FaultPlan plan;
  plan.seed = GetParam();
  plan.flip_byte_rate = 0.02;
  plan.truncate_fraction = 0.6;
  for (std::uint64_t variant = 0; variant < 16; ++variant) {
    std::istringstream in(plan.corrupt_bytes(good, variant));
    try {
      const Coo back = read_matrix_market(in);
      const BipartiteGraph g = build_bipartite(back);
      EXPECT_TRUE(g.validate()) << "variant " << variant;
    } catch (const Error&) {
      // Typed rejection is the expected outcome for most variants.
    }
  }
}

TEST_P(FuzzCorruptedInput, BinaryEitherParsesOrThrowsTyped) {
  const BipartiteGraph g = build_bipartite(random_instance(GetParam() ^ 0xC));
  std::ostringstream out(std::ios::binary);
  write_binary(out, g);
  const std::string good = out.str();

  FaultPlan plan;
  plan.seed = GetParam() * 3 + 1;
  plan.flip_byte_rate = 0.01;
  plan.truncate_fraction = 0.7;
  for (std::uint64_t variant = 0; variant < 16; ++variant) {
    std::istringstream in(plan.corrupt_bytes(good, variant),
                          std::ios::binary);
    try {
      const BipartiteGraph back = read_binary_bipartite(in);
      EXPECT_TRUE(back.validate()) << "variant " << variant;
    } catch (const Error&) {
      // Typed rejection expected; anything else propagates and fails.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCorruptedInput,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Fault matrix: every fault scenario x every algorithm family through
// the verified entry points must end in a coloring that passes the
// oracle — degraded if need be, invalid never.
// ---------------------------------------------------------------------

struct FaultScenario {
  const char* name;
  const char* spec;     ///< FaultPlan spec ("" = clean control run)
  int max_rounds;       ///< 0 keeps the default budget
  double deadline;      ///< 0 disables the watchdog
};

constexpr FaultScenario kKernelScenarios[] = {
    {"clean", "", 0, 0.0},
    {"stale-light", "seed=3,stale=0.05", 0, 0.0},
    {"stale-heavy", "seed=5,stale=0.5", 0, 0.0},
    {"stale-capped", "seed=7,stale=0.3", 2, 0.0},
    {"stall-deadline", "seed=9,stale=0.2,delay-rounds=4,delay-ms=3", 0, 0.004},
};

class FaultMatrix : public ::testing::TestWithParam<FaultScenario> {};

TEST_P(FaultMatrix, BgpcPresetsAlwaysEndValid) {
  const FaultScenario& s = GetParam();
  const BipartiteGraph g = build_bipartite(random_instance(0x5EED));
  const FaultPlan plan = FaultPlan::parse(s.spec);
  for (const auto& name : {"V-V", "V-Ninf", "N1-N2"}) {
    ColoringOptions opt = bgpc_preset(name);
    opt.num_threads = 2;
    if (*s.spec) opt.fault_plan = &plan;
    if (s.max_rounds > 0) opt.max_rounds = s.max_rounds;
    opt.deadline_seconds = s.deadline;
    const auto r = color_bgpc_verified(g, opt);
    const auto violation = check_bgpc(g, r.colors);
    EXPECT_FALSE(violation.has_value())
        << s.name << "/" << name
        << (violation ? ": " + violation->to_string() : "");
  }
}

TEST_P(FaultMatrix, D2gcPresetsAlwaysEndValid) {
  const FaultScenario& s = GetParam();
  const Graph g = build_graph(random_symmetric(0x5EED));
  const FaultPlan plan = FaultPlan::parse(s.spec);
  for (const auto& name : {"V-V-64D", "N1-N2"}) {
    ColoringOptions opt = d2gc_preset(name);
    opt.num_threads = 2;
    if (*s.spec) opt.fault_plan = &plan;
    if (s.max_rounds > 0) opt.max_rounds = s.max_rounds;
    opt.deadline_seconds = s.deadline;
    const auto r = color_d2gc_verified(g, opt);
    EXPECT_TRUE(is_valid_d2gc(g, r.colors)) << s.name << "/" << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Kernel, FaultMatrix,
                         ::testing::ValuesIn(kKernelScenarios),
                         [](const auto& info) {
                           std::string id = info.param.name;
                           for (auto& c : id)
                             if (c == '-') c = '_';
                           return id;
                         });

struct DistScenario {
  const char* name;
  const char* spec;
  double deadline;
};

constexpr DistScenario kDistScenarios[] = {
    {"clean", "", 0.0},
    {"drop", "seed=11,drop=0.3", 0.0},
    {"reorder", "seed=13,reorder=0.4", 0.0},
    {"drop_reorder", "seed=17,drop=0.2,reorder=0.2", 0.0},
    {"drop_deadline", "seed=19,drop=0.8", 1e-6},
};

class DistFaultMatrix : public ::testing::TestWithParam<DistScenario> {};

TEST_P(DistFaultMatrix, DistAlwaysEndsValid) {
  const DistScenario& s = GetParam();
  const BipartiteGraph g = build_bipartite(random_instance(0xD157));
  const FaultPlan plan = FaultPlan::parse(s.spec);
  for (const int ranks : {2, 5}) {
    DistOptions opt;
    opt.num_ranks = ranks;
    if (*s.spec) opt.fault_plan = &plan;
    opt.deadline_seconds = s.deadline;
    const auto r = color_bgpc_distributed_verified(g, opt);
    const auto violation = check_bgpc(g, r.colors);
    EXPECT_FALSE(violation.has_value())
        << s.name << "/ranks=" << ranks
        << (violation ? ": " + violation->to_string() : "");
  }
}

INSTANTIATE_TEST_SUITE_P(Dist, DistFaultMatrix,
                         ::testing::ValuesIn(kDistScenarios),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace gcol
