// Randomized property sweep: many seeded random instances through every
// engine, asserting the invariants that must hold universally —
// validity, bounds, termination without the fallback valve, and
// cross-engine consistency.
#include <gtest/gtest.h>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d1gc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/dsatur.hpp"
#include "greedcolor/core/recolor.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/util/prng.hpp"

namespace gcol {
namespace {

/// A random instance family parameterized by seed: dimensions, density,
/// and skew all vary with the seed so the sweep covers a broad shape
/// range, deterministically.
Coo random_instance(std::uint64_t seed) {
  SplitMix64 sm(seed);
  const vid_t rows = 20 + static_cast<vid_t>(sm.next() % 400);
  const vid_t cols = 20 + static_cast<vid_t>(sm.next() % 700);
  const eid_t max_nnz = static_cast<eid_t>(rows) * cols;
  const eid_t nnz =
      std::min<eid_t>(max_nnz, 1 + static_cast<eid_t>(
                                       sm.next() % (8ULL * rows)));
  return gen_random_bipartite(rows, cols, nnz, seed);
}

class FuzzBgpc : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzBgpc, AllPresetsValidOnRandomInstance) {
  const BipartiteGraph g = build_bipartite(random_instance(GetParam()));
  for (const auto& name : bgpc_preset_names()) {
    ColoringOptions opt = bgpc_preset(name);
    opt.num_threads = 1 + static_cast<int>(GetParam() % 4);
    const auto r = color_bgpc(g, opt);
    const auto violation = check_bgpc(g, r.colors);
    EXPECT_FALSE(violation.has_value())
        << name << " seed=" << GetParam()
        << (violation ? ": " + violation->to_string() : "");
    EXPECT_FALSE(r.sequential_fallback) << name;
    EXPECT_GE(r.num_colors, g.max_net_degree()) << name;
    EXPECT_LE(r.num_colors, bgpc_color_bound(g)) << name;
  }
}

TEST_P(FuzzBgpc, BalancedVariantsValid) {
  const BipartiteGraph g = build_bipartite(random_instance(GetParam() ^ 0xB));
  for (const auto policy : {BalancePolicy::kB1, BalancePolicy::kB2}) {
    ColoringOptions opt = bgpc_preset("N1-N2");
    opt.balance = policy;
    opt.num_threads = 2;
    const auto r = color_bgpc(g, opt);
    EXPECT_TRUE(is_valid_bgpc(g, r.colors))
        << to_string(policy) << " seed=" << GetParam();
  }
}

TEST_P(FuzzBgpc, DsaturAndRecolorPreserveValidity) {
  const BipartiteGraph g = build_bipartite(random_instance(GetParam() ^ 0xD));
  const auto ds = color_bgpc_dsatur(g);
  EXPECT_TRUE(is_valid_bgpc(g, ds.colors));
  auto colors = ds.colors;
  const color_t after = recolor_bgpc(g, colors);
  EXPECT_TRUE(is_valid_bgpc(g, colors));
  EXPECT_LE(after, ds.num_colors);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBgpc,
                         ::testing::Range<std::uint64_t>(1, 21));

/// Random symmetric graphs for the unipartite engines.
Coo random_symmetric(std::uint64_t seed) {
  SplitMix64 sm(seed);
  const vid_t n = 30 + static_cast<vid_t>(sm.next() % 500);
  Coo coo = gen_random_bipartite(
      n, n, std::min<eid_t>(static_cast<eid_t>(n) * n, 6 * n), seed);
  coo.symmetrize();
  return coo;
}

class FuzzUnipartite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzUnipartite, D2gcPresetsValid) {
  const Graph g = build_graph(random_symmetric(GetParam()));
  for (const auto& name : d2gc_preset_names()) {
    ColoringOptions opt = d2gc_preset(name);
    opt.num_threads = 1 + static_cast<int>(GetParam() % 3);
    const auto r = color_d2gc(g, opt);
    EXPECT_TRUE(is_valid_d2gc(g, r.colors))
        << name << " seed=" << GetParam();
    EXPECT_FALSE(r.sequential_fallback) << name;
  }
}

TEST_P(FuzzUnipartite, D1FamilyAgreesOnValidity) {
  const Graph g = build_graph(random_symmetric(GetParam() ^ 0x1));
  const auto seq = color_d1gc_sequential(g);
  const auto spec = color_d1gc(g, bgpc_preset("V-V-64D"));
  const auto jp = color_d1gc_jones_plassmann(g, GetParam(), 3);
  const auto ds = color_d1gc_dsatur(g);
  EXPECT_TRUE(is_valid_d1gc(g, seq.colors));
  EXPECT_TRUE(is_valid_d1gc(g, spec.colors));
  EXPECT_TRUE(is_valid_d1gc(g, jp.colors));
  EXPECT_TRUE(is_valid_d1gc(g, ds.colors));
  // D1 never needs more colors than D2 on the same graph.
  const auto d2 = color_d2gc_sequential(g);
  EXPECT_LE(seq.num_colors, d2.num_colors);
}

TEST_P(FuzzUnipartite, D2EqualsBgpcOnClosedNeighborhoods) {
  const Graph g = build_graph(random_symmetric(GetParam() ^ 0x2));
  const BipartiteGraph bg = graph_to_bipartite_closed(g);
  EXPECT_EQ(color_d2gc_sequential(g).colors,
            color_bgpc_sequential(bg).colors);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzUnipartite,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace gcol
