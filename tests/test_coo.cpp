#include "greedcolor/graph/coo.hpp"

#include <gtest/gtest.h>

namespace gcol {
namespace {

TEST(Coo, SortAndDedupOrdersByRowThenCol) {
  Coo coo;
  coo.num_rows = coo.num_cols = 3;
  coo.add(2, 1);
  coo.add(0, 2);
  coo.add(0, 1);
  coo.add(2, 1);  // duplicate
  coo.sort_and_dedup();
  ASSERT_EQ(coo.nnz(), 3);
  EXPECT_EQ(coo.rows, (std::vector<vid_t>{0, 0, 2}));
  EXPECT_EQ(coo.cols, (std::vector<vid_t>{1, 2, 1}));
}

TEST(Coo, DedupKeepsFirstValue) {
  Coo coo;
  coo.num_rows = coo.num_cols = 2;
  coo.add(0, 0, 1.5);
  coo.add(0, 0, 9.9);
  coo.sort_and_dedup();
  ASSERT_EQ(coo.nnz(), 1);
  EXPECT_DOUBLE_EQ(coo.vals[0], 1.5);
}

TEST(Coo, SymmetryDetection) {
  Coo sym;
  sym.num_rows = sym.num_cols = 3;
  sym.add(0, 1);
  sym.add(1, 0);
  sym.add(2, 2);
  EXPECT_TRUE(sym.is_structurally_symmetric());

  Coo asym;
  asym.num_rows = asym.num_cols = 3;
  asym.add(0, 1);
  EXPECT_FALSE(asym.is_structurally_symmetric());

  Coo rect;
  rect.num_rows = 2;
  rect.num_cols = 3;
  EXPECT_FALSE(rect.is_structurally_symmetric());
}

TEST(Coo, SymmetrizeAddsMissingTransposes) {
  Coo coo;
  coo.num_rows = coo.num_cols = 3;
  coo.add(0, 1);
  coo.add(1, 2);
  coo.add(2, 1);  // already mutual with (1,2)
  coo.symmetrize();
  EXPECT_TRUE(coo.is_structurally_symmetric());
  EXPECT_EQ(coo.nnz(), 4);  // (0,1),(1,0),(1,2),(2,1)
}

TEST(Coo, SymmetrizeRejectsRectangular) {
  Coo coo;
  coo.num_rows = 2;
  coo.num_cols = 3;
  EXPECT_THROW(coo.symmetrize(), std::invalid_argument);
}

TEST(Coo, SymmetrizeKeepsValues) {
  Coo coo;
  coo.num_rows = coo.num_cols = 2;
  coo.add(0, 1, 3.0);
  coo.symmetrize();
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_DOUBLE_EQ(coo.vals[0], 3.0);
  EXPECT_DOUBLE_EQ(coo.vals[1], 3.0);
}

TEST(Coo, EmptyPatternIsFine) {
  Coo coo;
  coo.num_rows = coo.num_cols = 4;
  coo.sort_and_dedup();
  EXPECT_EQ(coo.nnz(), 0);
  EXPECT_TRUE(coo.is_structurally_symmetric());
}

}  // namespace
}  // namespace gcol
