// Quickstart: color the columns of a sparse matrix with the paper's
// fastest algorithm (N1-N2), verify the coloring, and print a summary.
//
// Usage:
//   quickstart [--dataset copapers_s] [--algo N1-N2] [--threads N]
//              [--order natural|smallest-last|...] [--balance U|B1|B2]
//              [--mtx path/to/matrix.mtx]
#include <cstdlib>
#include <iostream>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/color_stats.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/graph/graph_stats.hpp"
#include "greedcolor/graph/mtx_io.hpp"
#include "greedcolor/order/ordering.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/env.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  std::cout << env_banner() << "\n";

  // 1. Load a BGPC instance: a bundled synthetic dataset or a
  //    MatrixMarket file (rows = nets, columns = vertices to color).
  BipartiteGraph graph;
  if (args.has("mtx")) {
    graph = build_bipartite(read_matrix_market_file(
        args.get_string("mtx", "")));
  } else {
    graph = load_bipartite(args.get_string("dataset", "copapers_s"));
  }
  std::cout << "instance: " << signature(graph) << "\n";

  // 2. Pick an algorithm preset and (optionally) an ordering.
  ColoringOptions options = bgpc_preset(args.get_string("algo", "N1-N2"));
  options.num_threads = static_cast<int>(args.get_int("threads", 0));
  const std::string balance = args.get_string("balance", "U");
  if (balance == "B1") options.balance = BalancePolicy::kB1;
  if (balance == "B2") options.balance = BalancePolicy::kB2;
  const auto order = make_ordering(
      graph, ordering_from_string(args.get_string("order", "natural")));

  // 3. Color.
  const ColoringResult result = color_bgpc(graph, options, order);

  // 4. Verify and report.
  if (const auto violation = check_bgpc(graph, result.colors)) {
    std::cerr << "INVALID coloring: " << violation->to_string() << "\n";
    return EXIT_FAILURE;
  }
  const ColorClassStats stats = color_class_stats(result.colors);
  std::cout << "algorithm:  " << options.name << " (balance "
            << to_string(options.balance) << ")\n"
            << "colors:     " << result.num_colors
            << "  (lower bound " << graph.max_net_degree() << ")\n"
            << "rounds:     " << result.rounds << "\n"
            << "time:       " << result.total_seconds * 1e3 << " ms\n"
            << "class size: mean " << stats.mean << ", stddev "
            << stats.stddev << ", max " << stats.max << "\n";
  for (const auto& it : result.iterations) {
    std::cout << "  round " << it.round << ": |W|=" << it.queue_size
              << " conflicts=" << it.conflicts << " color="
              << it.color_seconds * 1e3 << "ms conflict="
              << it.conflict_seconds * 1e3 << "ms"
              << (it.net_based_coloring ? " [net-color]" : "")
              << (it.net_based_conflict ? " [net-conflict]" : "") << "\n";
  }
  return EXIT_SUCCESS;
}
