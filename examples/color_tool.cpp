// color_tool: command-line BGPC/D2GC runner — the "real tool" built on
// the public API. Reads a bundled dataset or a MatrixMarket file, runs
// any algorithm preset (or the sequential baseline), verifies, and
// reports timing, colors, balance, and work counters.
//
// Examples:
//   color_tool --dataset movielens_s --algo V-V --threads 4
//   color_tool --mtx my.mtx --algo N1-N2 --order smallest-last --balance B2
//   color_tool --dataset bone_s --problem d2gc --algo V-N1
//   color_tool --list
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "greedcolor/analyze/audit.hpp"
#include "greedcolor/analyze/structure.hpp"
#include "greedcolor/check/explore.hpp"
#include "greedcolor/check/trace.hpp"
#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/color_stats.hpp"
#include "greedcolor/core/d1gc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/dsatur.hpp"
#include "greedcolor/core/recolor.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/dist/dist_bgpc.hpp"
#include "greedcolor/obs/metrics.hpp"
#include "greedcolor/obs/report.hpp"
#include "greedcolor/obs/trace.hpp"
#include "greedcolor/robust/error.hpp"
#include "greedcolor/robust/fault.hpp"
#include "greedcolor/robust/verified.hpp"
#include "greedcolor/graph/binary_io.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/graph/graph_stats.hpp"
#include "greedcolor/graph/mtx_io.hpp"
#include "greedcolor/order/ordering.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/env.hpp"
#include "greedcolor/util/table.hpp"

namespace {

void print_report(const gcol::ColoringResult& result,
                  const std::string& algo_name, gcol::vid_t lower_bound) {
  using gcol::TextTable;
  const gcol::ColorClassStats stats =
      gcol::color_class_stats(result.colors);
  std::cout << "algorithm        " << algo_name << "\n"
            << "wall time        " << TextTable::fmt(result.total_seconds * 1e3)
            << " ms\n"
            << "colors           " << result.num_colors << " (lower bound "
            << lower_bound << ")\n"
            << "rounds           " << result.rounds
            << (result.sequential_fallback ? " (sequential fallback!)" : "")
            << "\n"
            << "class sizes      mean " << TextTable::fmt(stats.mean)
            << ", stddev " << TextTable::fmt(stats.stddev) << ", max "
            << stats.max << ", singletons " << stats.singleton_sets << "\n";
  const auto cc = result.total_color_counters();
  const auto kc = result.total_conflict_counters();
  std::cout << "work (color)     edges=" << cc.edges_visited
            << " probes=" << cc.color_probes << " colored=" << cc.colored
            << "\n"
            << "work (conflict)  edges=" << kc.edges_visited
            << " conflicts=" << kc.conflicts << "\n";
  std::cout << "robust           degraded=" << (result.degraded ? "yes" : "no")
            << " rounds_capped=" << (result.rounds_capped ? "yes" : "no")
            << " deadline_hit=" << (result.deadline_hit ? "yes" : "no")
            << " repaired=" << result.repaired_vertices
            << " faults_injected=" << result.faults_injected << "\n";
  TextTable t;
  t.set_header({"round", "|W|", "conflicts", "color ms", "conflict ms",
                "kernels", "fset"},
               {TextTable::Align::kRight});
  for (const auto& it : result.iterations) {
    std::string kernels = it.net_based_coloring ? "N-" : "V-";
    kernels += it.net_based_conflict ? "N" : "V";
    // The concrete representation each phase ran with (the adaptive
    // engine's per-round choice; fixed modes show the same pair).
    const std::string fsets = gcol::to_string(it.color_forbidden_set) + "/" +
                              gcol::to_string(it.conflict_forbidden_set);
    t.add_row({TextTable::fmt(static_cast<std::int64_t>(it.round)),
               TextTable::fmt(static_cast<std::int64_t>(it.queue_size)),
               TextTable::fmt(static_cast<std::int64_t>(it.conflicts)),
               TextTable::fmt(it.color_seconds * 1e3),
               TextTable::fmt(it.conflict_seconds * 1e3), kernels, fsets});
  }
  std::cout << t.to_string();
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);

  if (args.has("help")) {
    std::cout
        << "usage: color_tool [--dataset NAME | --mtx FILE | --bin FILE] "
           "[options]\n"
           "  --list               list bundled datasets and exit\n"
           "  --problem bgpc|d2gc|d1gc|dist  (default bgpc)\n"
           "  --algo NAME          bgpc/d2gc: V-V V-V-64 V-V-64D V-Ninf\n"
           "                       V-N1 V-N2 N1-N2 N2-N2, 'seq', 'dsatur'\n"
           "                       d1gc: seq spec jp dsatur\n"
           "  --order NAME         natural random largest-first\n"
           "                       smallest-last smallest-last-relaxed\n"
           "                       incidence-degree\n"
           "  --balance U|B1|B2    balancing heuristic (default U)\n"
           "  --forbidden-set stamped|bitmap|twolevel|adaptive\n"
           "                       forbidden-set representation (default\n"
           "                       adaptive = per-phase choice; stamped = "
           "paper-exact)\n"
           "  --locality none|sort|full  cache-locality pre-pass "
           "(default none)\n"
           "  --threads N          0 = OpenMP default\n"
           "  --ranks N            dist: shard count (default 4)\n"
           "  --transport T        dist: mailbox|socket (default mailbox)\n"
           "  --retries N          dist: batch retries before give-up "
           "(default 8)\n"
           "  --recolor            run iterated-greedy post-pass (bgpc)\n"
           "  --stats-only         print dataset statistics and exit\n"
           "  --deadline-ms N      convergence-watchdog wall deadline\n"
           "  --max-rounds N       speculative round / superstep budget\n"
           "  --fault-plan SPEC    inject faults, e.g. "
           "'seed=7,stale=0.1,drop=0.2'\n"
           "  --trace-out FILE     write a Chrome trace-event JSON of the "
           "run\n"
           "                       (open in Perfetto / about://tracing; "
           "bgpc, d2gc, dist)\n"
           "  --report FILE        write a gcol-report-v1 JSON run report\n"
           "  --analyze            structural input analysis; exit 2 if "
           "the graph is broken\n"
           "  --audit              attach the speculative-race auditor "
           "and print its report\n"
           "  --model-check [MODE] explore kernel schedules instead of "
           "timing one run\n"
           "                       (GCOL_MC builds; exhaustive|dpor|random, "
           "default dpor)\n"
           "  --mc-seed N          random-mode schedule seed (default 1)\n"
           "  --mc-schedules N     random-mode schedule budget (default "
           "256)\n"
           "  --mc-vthreads N      virtual threads to schedule (default 2)\n"
           "  --mc-replay FILE     replay one recorded schedule trace\n"
           "  --mc-trace-out FILE  where to write a violation witness "
           "(default violation.mctrace)\n"
           "exit codes: 0 ok, 1 usage, 2 bad input (typed), 3 internal / "
           "schedule violation\n";
    return EXIT_SUCCESS;
  }
  if (args.has("list")) {
    TextTable t;
    t.set_header({"name", "mimics", "symmetric", "d2gc"},
                 {TextTable::Align::kLeft, TextTable::Align::kLeft});
    for (const auto& d : dataset_registry())
      t.add_row({d.name, d.mimics, d.structurally_symmetric ? "yes" : "no",
                 d.used_for_d2gc ? "yes" : "no"});
    std::cout << t.to_string();
    return EXIT_SUCCESS;
  }

  std::cout << env_banner() << "\n";
  const std::string problem = args.get_string("problem", "bgpc");
  const std::string algo = args.get_string("algo", "N1-N2");
  const std::string dataset = args.get_string("dataset", "copapers_s");

  Coo coo;
  BipartiteGraph preloaded;
  bool have_preloaded = false;
  if (args.has("bin")) {
    preloaded = read_binary_bipartite_file(args.get_string("bin", ""));
    have_preloaded = true;
  } else if (args.has("mtx")) {
    coo = read_matrix_market_file(args.get_string("mtx", ""));
  } else {
    coo = find_dataset(dataset).make();
  }

  const int threads = static_cast<int>(args.get_int("threads", 0));
  const auto order_kind =
      ordering_from_string(args.get_string("order", "natural"));
  const std::string balance = args.get_string("balance", "U");

  // Robustness controls: watchdog budgets and the fault-injection plan.
  const double deadline_seconds =
      static_cast<double>(args.get_int("deadline-ms", 0)) / 1e3;
  const int max_rounds = static_cast<int>(args.get_int("max-rounds", 0));
  FaultPlan fault_plan;
  bool have_fault_plan = false;
  if (args.has("fault-plan")) {
    fault_plan = FaultPlan::parse(args.get_string("fault-plan", ""));
    have_fault_plan = true;
    std::cout << "fault plan       " << fault_plan.to_spec() << "\n";
  }
  const ForbiddenSetKind forbidden_set =
      forbidden_set_from_string(args.get_string("forbidden-set", "adaptive"));
  const LocalityMode locality =
      locality_from_string(args.get_string("locality", "none"));
  // Speculative-race auditor (--audit): checks the partial coloring
  // after every conflict-removal pass; report printed after the run.
  audit::AuditContext audit_ctx;
  const bool want_audit = args.has("audit");
  // gcol-trace / run report (--trace-out / --report): one tracer for the
  // whole invocation, attached through the same options seam as the
  // auditor; artifacts written after the run.
  const std::string trace_out = args.get_string("trace-out", "");
  const std::string report_out = args.get_string("report", "");
  const bool want_obs = !trace_out.empty() || !report_out.empty();
  obs::Tracer tracer;
  // Everything the text report prints also lands in the registry — the
  // report path and the print path share one flattening.
  obs::MetricsRegistry metrics;
  const auto write_obs_artifacts = [&](obs::RunReport& rep) {
    if (want_audit) metrics.record_audit(audit_ctx.report());
    metrics.record_contracts();
    metrics.record_tracer(tracer);
    rep.set_metrics(metrics);
    rep.set_tracer(tracer, trace_out);
    if (!trace_out.empty()) {
      tracer.write_chrome_trace_file(trace_out);
      std::cout << "trace            " << trace_out << " ("
                << tracer.recorded() << " events, " << tracer.dropped()
                << " dropped)\n";
    }
    if (!report_out.empty()) {
      rep.write_file(report_out);
      std::cout << "report           " << report_out << "\n";
    }
  };
  const auto base_report = [&](const std::string& problem_name,
                               const std::string& algo_name) {
    obs::RunReport rep("color_tool");
    rep.set_option("problem", problem_name);
    rep.set_option("algo", algo_name);
    rep.set_option("order", args.get_string("order", "natural"));
    rep.set_option("balance", balance);
    rep.set_option("forbidden_set", to_string(forbidden_set));
    rep.set_option("locality", to_string(locality));
    rep.set_option("threads", threads);
    if (have_fault_plan) rep.set_option("fault_plan", fault_plan.to_spec());
    return rep;
  };
  // Structural input analysis (--analyze): report + typed rejection of
  // broken graphs before any kernel runs on them.
  const auto analyze_input = [&](const auto& graph) {
    if (!args.has("analyze")) return;
    const GraphAnalysis analysis = analyze_graph(graph);
    std::cout << analysis.to_string() << "\n";
    if (!analysis.ok())
      throw Error(ErrorCode::kBadInput,
                  "structural analysis found " +
                      std::to_string(analysis.total_issues) + " issue(s)");
  };
  const auto print_audit = [&]() {
    if (want_audit)
      std::cout << "audit            " << audit_ctx.report().summary()
                << "\n";
  };
  // Schedule exploration (--model-check): run the gcol-mc cooperative
  // model checker over the configured kernels instead of timing a run.
  const bool want_model_check = args.has("model-check");
  check::McOptions mc_opts;
  std::string mc_trace_out;
  if (want_model_check) {
    if (!check::kMcEnabled)
      throw Error(ErrorCode::kInvalidArgument,
                  "--model-check needs a GCOL_MC build "
                  "(cmake --preset modelcheck)");
    std::string mode = args.get_string("model-check", "dpor");
    if (mode.empty()) mode = "dpor";
    mc_opts.mode = check::explore_mode_from_string(mode);
    mc_opts.seed = static_cast<std::uint64_t>(args.get_int("mc-seed", 1));
    mc_opts.random_schedules =
        static_cast<std::size_t>(args.get_int("mc-schedules", 256));
    mc_opts.virtual_threads =
        static_cast<int>(args.get_int("mc-vthreads", 2));
    if (args.has("mc-replay")) {
      mc_opts.mode = check::ExploreMode::kReplay;
      mc_opts.replay =
          check::read_trace_file(args.get_string("mc-replay", ""));
    }
    mc_trace_out = args.get_string("mc-trace-out", "violation.mctrace");
    if (problem != "bgpc" && problem != "d2gc") {
      std::cerr << "--model-check covers bgpc and d2gc, not '" << problem
                << "'\n";
      return EXIT_FAILURE;
    }
  }
  const auto report_model_check = [&](const check::McResult& res) -> int {
    std::cout << "model check      " << res.summary() << "\n";
    if (res.clean()) return EXIT_SUCCESS;
    for (const auto& v : res.violations)
      std::cout << "violation        " << v.to_string() << "\n";
    if (!res.witness.empty()) {
      check::write_trace_file(res.witness, mc_trace_out);
      std::cout << "witness trace    " << mc_trace_out
                << " (reproduce with --mc-replay " << mc_trace_out << ")\n";
    }
    return 3;
  };
  const auto apply_robust_options = [&](ColoringOptions& options) {
    options.deadline_seconds = deadline_seconds;
    if (max_rounds > 0) options.max_rounds = max_rounds;
    if (have_fault_plan) options.fault_plan = &fault_plan;
    if (want_audit) options.auditor = &audit_ctx;
    if (want_obs) options.tracer = &tracer;
    options.forbidden_set = forbidden_set;
    options.locality = locality;
    std::cout << "kernel mode      " << to_string(options.forbidden_set)
              << " forbidden set, locality " << to_string(options.locality)
              << "\n";
  };

  if (problem == "bgpc" || problem == "dist") {
    BipartiteGraph graph = have_preloaded
                               ? std::move(preloaded)
                               : build_bipartite(std::move(coo));
    if (args.get_string("side", "cols") == "rows")
      graph = transpose(graph);  // color matrix rows instead
    analyze_input(graph);
    if (problem == "dist") {
      DistOptions dopt;
      dopt.num_ranks = static_cast<int>(args.get_int("ranks", 4));
      dopt.deadline_seconds = deadline_seconds;
      if (max_rounds > 0) dopt.max_supersteps = max_rounds;
      if (have_fault_plan) dopt.fault_plan = &fault_plan;
      if (args.get_string("transport", "mailbox") == "socket")
        dopt.transport = DistOptions::TransportKind::kSocket;
      dopt.max_retries = static_cast<int>(args.get_int("retries", 8));
      if (want_obs) dopt.tracer = &tracer;
      const auto r = color_bgpc_distributed_verified(graph, dopt);
      std::cout << "instance         " << signature(graph) << "\n"
                << "ranks            " << dopt.num_ranks << " ("
                << (dopt.transport == DistOptions::TransportKind::kSocket
                        ? "socket"
                        : "mailbox")
                << " transport)\n"
                << "colors           " << r.num_colors << " (lower bound "
                << graph.max_net_degree() << ")\n"
                << "boundary         " << r.stats.boundary_vertices << " of "
                << graph.num_vertices() << "\n"
                << "supersteps       " << r.stats.supersteps << "\n"
                << "messages         sent=" << r.stats.messages_sent
                << " delivered=" << r.stats.messages_delivered
                << " dropped=" << r.stats.messages_dropped
                << " stale_ignored=" << r.stats.messages_stale_ignored
                << " duplicated=" << r.stats.messages_duplicated << "\n"
                << "conflicts        " << r.stats.conflicts << "\n"
                << "retries          " << r.stats.retries
                << " (simulated backoff " << r.stats.backoff_us_total
                << " us)\n";
      // Backoff can be accounted with zero surviving retries (the last
      // attempt of a batch succeeds); surface the trace whenever either
      // signal fired so the text report never hides accounted work.
      if (!r.retry_trace.empty() || r.stats.backoff_us_total > 0) {
        std::cout << "retry trace      " << r.retry_trace.size()
                  << " event(s)";
        const std::size_t shown = std::min<std::size_t>(4, r.retry_trace.size());
        for (std::size_t i = 0; i < shown; ++i) {
          const auto& e = r.retry_trace[i];
          std::cout << (i == 0 ? ": " : ", ") << "s" << e.superstep << " "
                    << e.src << "->" << e.dst << " attempt " << e.attempt
                    << " (+" << e.backoff_us << "us)";
        }
        if (r.retry_trace.size() > shown) std::cout << ", ...";
        std::cout << "\n";
      }
      std::cout << "robust           degraded=" << (r.degraded ? "yes" : "no")
                << " fallback=" << (r.stats.fallback ? "yes" : "no")
                << " deadline_hit=" << (r.stats.deadline_hit ? "yes" : "no")
                << " dirty=" << r.stats.dirty_boundary
                << " repair_recolored=" << r.stats.repair_recolored
                << " repaired=" << r.repaired_vertices << "\n"
                << "wall time        " << r.total_seconds * 1e3 << " ms\n";
      if (want_obs) {
        obs::RunReport rep = base_report("dist", "dist-bgpc");
        rep.set_option("ranks", dopt.num_ranks);
        rep.set_option("max_retries", dopt.max_retries);
        rep.set_graph(graph);
        rep.set_dist(dopt, r);
        metrics.record_dist(r);
        write_obs_artifacts(rep);
      }
      return EXIT_SUCCESS;
    }
    std::cout << "instance         " << signature(graph) << "\n";
    if (args.has("stats-only")) {
      const DegreeStats nd = net_degree_stats(graph);
      double sumsq = 0;
      for (vid_t v = 0; v < graph.num_nets(); ++v)
        sumsq += static_cast<double>(graph.net_degree(v)) *
                 graph.net_degree(v);
      std::cout << "net degree       max " << nd.max << " mean " << nd.mean
                << " sd " << nd.stddev << "\n"
                << "sum(deg^2)       " << sumsq
                << "  (vertex-kernel first-round work)\n";
      return EXIT_SUCCESS;
    }
    const auto order = make_ordering(graph, order_kind);
    ColoringResult result;
    std::string name = algo;
    if (algo == "seq") {
      result = color_bgpc_sequential(graph, order);
    } else if (algo == "dsatur") {
      result = color_bgpc_dsatur(graph);
    } else {
      ColoringOptions options = bgpc_preset(algo);
      options.num_threads = threads;
      if (balance == "B1") options.balance = BalancePolicy::kB1;
      if (balance == "B2") options.balance = BalancePolicy::kB2;
      apply_robust_options(options);
      if (want_model_check)
        return report_model_check(
            check::model_check_bgpc(graph, options, order, mc_opts));
      name += " " + to_string(options.balance);
      result = color_bgpc_verified(graph, options, order);
    }
    if (want_model_check) {
      std::cerr << "--model-check needs a speculative preset, not '" << algo
                << "'\n";
      return EXIT_FAILURE;
    }
    if (const auto violation = check_bgpc(graph, result.colors)) {
      std::cerr << "INVALID coloring: " << violation->to_string() << "\n";
      return EXIT_FAILURE;
    }
    if (args.has("recolor")) {
      const color_t before = result.num_colors;
      result.num_colors = recolor_bgpc_to_fixpoint(graph, result.colors);
      std::cout << "recolor          " << before << " -> "
                << result.num_colors << " colors\n";
    }
    print_audit();
    print_report(result, name, graph.max_net_degree());
    if (want_obs) {
      obs::RunReport rep = base_report("bgpc", name);
      rep.set_graph(graph);
      rep.set_coloring(result);
      metrics.record_result(result);
      write_obs_artifacts(rep);
    }
  } else if (problem == "d2gc") {
    const Graph graph = build_graph(std::move(coo));
    std::cout << "instance         " << signature(graph) << "\n";
    analyze_input(graph);
    const auto order = make_ordering(graph, order_kind);
    ColoringResult result;
    if (algo == "seq") {
      result = color_d2gc_sequential(graph, order);
    } else {
      ColoringOptions options = d2gc_preset(algo);
      options.num_threads = threads;
      if (balance == "B1") options.balance = BalancePolicy::kB1;
      if (balance == "B2") options.balance = BalancePolicy::kB2;
      apply_robust_options(options);
      if (want_model_check)
        return report_model_check(
            check::model_check_d2gc(graph, options, order, mc_opts));
      result = color_d2gc_verified(graph, options, order);
    }
    if (want_model_check) {
      std::cerr << "--model-check needs a speculative preset, not 'seq'\n";
      return EXIT_FAILURE;
    }
    if (const auto violation = check_d2gc(graph, result.colors)) {
      std::cerr << "INVALID coloring: " << violation->to_string() << "\n";
      return EXIT_FAILURE;
    }
    print_audit();
    print_report(result, algo, graph.max_degree() + 1);
    if (want_obs) {
      obs::RunReport rep = base_report("d2gc", algo);
      rep.set_graph(graph);
      rep.set_coloring(result);
      metrics.record_result(result);
      write_obs_artifacts(rep);
    }
  } else if (problem == "d1gc") {
    const Graph graph = build_graph(std::move(coo));
    std::cout << "instance         " << signature(graph) << "\n";
    ColoringResult result;
    if (algo == "seq" || algo == "N1-N2") {  // default algo falls here
      result = color_d1gc_sequential(graph, make_ordering(graph, order_kind));
    } else if (algo == "spec") {
      ColoringOptions options = bgpc_preset("V-V-64D");
      options.num_threads = threads;
      if (balance == "B1") options.balance = BalancePolicy::kB1;
      if (balance == "B2") options.balance = BalancePolicy::kB2;
      result = color_d1gc(graph, options, make_ordering(graph, order_kind));
    } else if (algo == "jp") {
      result = color_d1gc_jones_plassmann(
          graph, static_cast<std::uint64_t>(args.get_int("seed", 1)),
          threads);
    } else if (algo == "dsatur") {
      result = color_d1gc_dsatur(graph);
    } else {
      std::cerr << "unknown d1gc algo: " << algo << "\n";
      return EXIT_FAILURE;
    }
    if (const auto violation = check_d1gc(graph, result.colors)) {
      std::cerr << "INVALID coloring: " << violation->to_string() << "\n";
      return EXIT_FAILURE;
    }
    print_report(result, algo, 1);
  } else {
    std::cerr << "unknown problem: " << problem << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}

int main(int argc, char** argv) {
  // The robust contract at the process boundary: bad input is reported
  // with its error code and exit 2; anything else that escapes — a
  // watchdog-exceeded internal state or a broken invariant — exits 3.
  try {
    return run(argc, argv);
  } catch (const gcol::Error& e) {
    std::cerr << "error [" << gcol::to_string(e.code()) << "] " << e.what()
              << "\n";
    return e.is_input_error() ? 2 : 3;
  } catch (const std::exception& e) {
    std::cerr << "error [unclassified] " << e.what() << "\n";
    return 3;
  }
}
