// dataset_gen: export the bundled synthetic datasets (or custom
// generator runs) as MatrixMarket or greedcolor binary files — so the
// test-bed can be inspected, plotted, or fed to other tools (e.g.
// ColPack itself, for an external cross-check).
//
// Usage:
//   dataset_gen --dataset copapers_s --out copapers.mtx
//   dataset_gen --dataset bone_s --out bone.bin --format bin
//   dataset_gen --kind mesh2d --nx 100 --ny 100 --radius 2 --out m.mtx
//   dataset_gen --kind powerlaw --rows 1000 --cols 5000 --alpha 1.1
//               --max-deg 800 --out p.mtx
#include <cstdlib>
#include <iostream>

#include "greedcolor/graph/binary_io.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/graph/graph_stats.hpp"
#include "greedcolor/graph/mtx_io.hpp"
#include "greedcolor/util/argparse.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: dataset_gen (--dataset NAME | --kind KIND opts) "
                 "--out FILE [--format mtx|bin]\n"
                 "kinds: mesh2d(nx,ny,radius) mesh3d(nx,ny,nz,radius,box) "
                 "powerlaw(rows,cols,\n  min-deg,max-deg,alpha,col-skew) "
                 "cliques(n,count,min,max,alpha) pa(n,edges)\n  "
                 "blockrows(n,row-deg,bandwidth,offband) "
                 "geometric(n,radius) random(rows,cols,nnz)\n"
                 "common: --seed S\n";
    return EXIT_SUCCESS;
  }

  Coo coo;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (args.has("dataset")) {
    coo = find_dataset(args.get_string("dataset", "")).make();
  } else {
    const std::string kind = args.get_string("kind", "mesh2d");
    if (kind == "mesh2d") {
      coo = gen_mesh2d(static_cast<vid_t>(args.get_int("nx", 100)),
                       static_cast<vid_t>(args.get_int("ny", 100)),
                       static_cast<int>(args.get_int("radius", 1)));
    } else if (kind == "mesh3d") {
      coo = gen_mesh3d(static_cast<vid_t>(args.get_int("nx", 30)),
                       static_cast<vid_t>(args.get_int("ny", 30)),
                       static_cast<vid_t>(args.get_int("nz", 30)),
                       static_cast<int>(args.get_int("radius", 1)),
                       args.get_bool("box", false));
    } else if (kind == "powerlaw") {
      PowerLawBipartiteParams p;
      p.rows = static_cast<vid_t>(args.get_int("rows", 1000));
      p.cols = static_cast<vid_t>(args.get_int("cols", 4000));
      p.min_deg = static_cast<vid_t>(args.get_int("min-deg", 2));
      p.max_deg = static_cast<vid_t>(args.get_int("max-deg", 0));
      p.alpha = args.get_double("alpha", 1.5);
      p.col_skew = args.get_double("col-skew", 0.0);
      p.seed = seed;
      coo = gen_powerlaw_bipartite(p);
    } else if (kind == "cliques") {
      coo = gen_clique_union(static_cast<vid_t>(args.get_int("n", 10000)),
                             static_cast<vid_t>(args.get_int("count", 4000)),
                             static_cast<vid_t>(args.get_int("min", 2)),
                             static_cast<vid_t>(args.get_int("max", 100)),
                             args.get_double("alpha", 1.8), seed);
    } else if (kind == "pa") {
      coo = gen_preferential_attachment(
          static_cast<vid_t>(args.get_int("n", 20000)),
          static_cast<vid_t>(args.get_int("edges", 5)), seed);
    } else if (kind == "blockrows") {
      coo = gen_block_rows(static_cast<vid_t>(args.get_int("n", 5000)),
                           static_cast<vid_t>(args.get_int("row-deg", 60)),
                           static_cast<vid_t>(args.get_int("bandwidth", 300)),
                           args.get_double("offband", 0.25), seed);
    } else if (kind == "geometric") {
      coo = gen_random_geometric(static_cast<vid_t>(args.get_int("n", 10000)),
                                 args.get_double("radius", 0.015), seed);
    } else if (kind == "random") {
      coo = gen_random_bipartite(
          static_cast<vid_t>(args.get_int("rows", 1000)),
          static_cast<vid_t>(args.get_int("cols", 1000)),
          static_cast<eid_t>(args.get_int("nnz", 10000)), seed);
    } else {
      std::cerr << "unknown kind: " << kind << " (see --help)\n";
      return EXIT_FAILURE;
    }
  }

  const std::string out = args.get_string("out", "");
  if (out.empty()) {
    std::cerr << "--out FILE is required\n";
    return EXIT_FAILURE;
  }
  const std::string format = args.get_string(
      "format", out.size() > 4 && out.substr(out.size() - 4) == ".bin"
                    ? "bin"
                    : "mtx");
  const BipartiteGraph g = build_bipartite(Coo(coo));
  if (format == "bin") {
    write_binary_file(out, g);
  } else {
    write_matrix_market_file(out, coo);
  }
  std::cout << "wrote " << out << " (" << format
            << "): " << signature(g) << "\n";
  return EXIT_SUCCESS;
}
