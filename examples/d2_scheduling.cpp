// Distance-2 frequency scheduling — the classic D2GC application:
// assign frequency slots to wireless transmitters so that no two
// transmitters within two hops of each other (i.e. mutually audible or
// sharing a receiver) use the same slot.
//
// Builds a random geometric interference graph, runs the paper's
// parallel D2GC (N1-N2), verifies the schedule, and compares the slot
// count against the theoretical lower bound and the sequential
// baseline; optionally shows the balancing heuristics' effect on slot
// occupancy (balanced slots = even airtime).
#include <cstdlib>
#include <iostream>

#include "greedcolor/core/color_stats.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/env.hpp"
#include "greedcolor/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const vid_t n = static_cast<vid_t>(args.get_int("nodes", 20000));
  const double radius = args.get_double("radius", 0.012);
  std::cout << env_banner() << "\n";

  const Graph g = build_graph(
      gen_random_geometric(n, radius, args.get_int("seed", 11)));
  std::cout << "interference graph: " << g.num_vertices()
            << " transmitters, max degree " << g.max_degree() << "\n";

  // Sequential baseline.
  WallTimer timer;
  const auto seq = color_d2gc_sequential(g);
  const double seq_ms = timer.milliseconds();

  // Parallel N1-N2, unbalanced and balanced.
  for (const auto balance :
       {BalancePolicy::kNone, BalancePolicy::kB2}) {
    ColoringOptions opt = d2gc_preset(args.get_string("algo", "N1-N2"));
    opt.num_threads = static_cast<int>(args.get_int("threads", 0));
    opt.balance = balance;
    timer.reset();
    const auto r = color_d2gc(g, opt);
    const double ms = timer.milliseconds();
    if (const auto bad = check_d2gc(g, r.colors)) {
      std::cerr << "INVALID schedule: " << bad->to_string() << "\n";
      return EXIT_FAILURE;
    }
    const auto stats = color_class_stats(r.colors);
    std::cout << opt.name << "-" << to_string(balance) << ": "
              << r.num_colors << " slots in " << ms
              << " ms  (seq: " << seq.num_colors << " slots in " << seq_ms
              << " ms; lower bound " << g.max_degree() + 1 << ")\n"
              << "  slot occupancy: mean " << stats.mean << " sd "
              << stats.stddev << " min " << stats.min << " max "
              << stats.max << "\n";
  }
  std::cout << "valid schedule: transmitters in one slot are pairwise "
               ">2 hops apart.\n";
  return EXIT_SUCCESS;
}
