// Color-parallel coordinate descent — the matrix-decomposition /
// machine-learning motivation behind the paper's 20M_movielens
// experiment.
//
// Minimizing f(x) = 1/2 ||Ax - b||^2 by coordinate descent updates one
// column's coefficient at a time; two columns sharing a nonzero row
// race on the shared residual entries. A BGPC coloring of A's columns
// partitions them into structurally-orthogonal groups, so all columns
// of one color update the residual concurrently WITHOUT locks or
// atomics — ColorSchedule executes exactly that plan. Balanced color
// classes (heuristic B2) keep every round saturated, which is the
// effect Section V of the paper targets.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/color_stats.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/graph/sparse_matrix.hpp"
#include "greedcolor/sched/color_schedule.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/env.hpp"
#include "greedcolor/util/prng.hpp"
#include "greedcolor/util/timer.hpp"

namespace {

double norm2(const std::vector<double>& r) {
  double s = 0.0;
  for (const double v : r) s += v * v;
  return std::sqrt(s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  std::cout << env_banner() << "\n";

  // 1. A MovieLens-like rating pattern with values.
  PowerLawBipartiteParams p;
  p.rows = static_cast<vid_t>(args.get_int("rows", 3000));
  p.cols = static_cast<vid_t>(args.get_int("cols", 9000));
  p.min_deg = 6;
  p.max_deg = static_cast<vid_t>(args.get_int("max-deg", 800));
  p.alpha = 1.0;
  p.seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  Coo coo = gen_powerlaw_bipartite(p);
  Xoshiro256 rng(p.seed ^ 0xC0FFEE);
  coo.vals.resize(coo.rows.size());
  for (auto& v : coo.vals) v = rng.uniform() * 2.0 - 1.0;

  const CscMatrix a = CscMatrix::from_coo(coo);
  const BipartiteGraph g = build_bipartite(coo);
  std::cout << "A: " << a.num_rows() << " x " << a.num_cols() << ", nnz "
            << a.nnz() << "\n";

  // 2. Color the columns; optionally balance the class sizes.
  ColoringOptions opt = bgpc_preset(args.get_string("algo", "N1-N2"));
  opt.num_threads = static_cast<int>(args.get_int("threads", 0));
  const std::string balance = args.get_string("balance", "B2");
  if (balance == "B1") opt.balance = BalancePolicy::kB1;
  if (balance == "B2") opt.balance = BalancePolicy::kB2;
  const auto coloring = color_bgpc(g, opt);
  if (!is_valid_bgpc(g, coloring.colors)) {
    std::cerr << "invalid coloring\n";
    return EXIT_FAILURE;
  }
  const auto cstats = color_class_stats(coloring.colors);
  const ColorSchedule schedule = ColorSchedule::build(coloring.colors);
  const auto plan = schedule.stats(std::max(1, opt.num_threads));
  std::cout << "coloring (" << opt.name << "-" << to_string(opt.balance)
            << "): " << cstats.num_colors << " classes, sizes mean "
            << cstats.mean << " sd " << cstats.stddev << " max "
            << cstats.max << "\n"
            << "schedule: span " << plan.span << ", efficiency "
            << plan.efficiency << " at " << std::max(1, opt.num_threads)
            << " thread(s)\n";

  // 3. Synthetic target b = A * x_true.
  std::vector<double> x_true(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x_true) v = rng.uniform() * 2.0 - 1.0;
  std::vector<double> b;
  a.multiply(x_true, b);

  // 4. Color-parallel coordinate descent on the residual r = b - A x.
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 0.0);
  std::vector<double> r = b;
  const int epochs = static_cast<int>(args.get_int("epochs", 10));
  std::cout << "initial ||r|| = " << norm2(r) << "\n";
  WallTimer timer;
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    // Columns within one class touch disjoint residual rows: the plain
    // (non-atomic) updates below are race-free because — and only
    // because — the coloring is a valid BGPC.
    schedule.for_each_parallel(
        [&](vid_t j) {
          const double sq = a.column_sqnorm(j);
          if (sq == 0.0) return;
          const auto idx = a.col_indices(j);
          const auto val = a.col_values(j);
          double dot = 0.0;
          for (std::size_t k = 0; k < idx.size(); ++k)
            dot += val[k] * r[static_cast<std::size_t>(idx[k])];
          const double delta = dot / sq;
          x[static_cast<std::size_t>(j)] += delta;
          for (std::size_t k = 0; k < idx.size(); ++k)
            r[static_cast<std::size_t>(idx[k])] -= delta * val[k];
        },
        opt.num_threads);
    if (epoch == 1 || epoch == epochs || epoch % 5 == 0)
      std::cout << "epoch " << epoch << ": ||r|| = " << norm2(r) << "\n";
  }
  std::cout << "CD time: " << timer.milliseconds() << " ms ("
            << cstats.num_colors << " barriers/epoch)\n";

  const double final_norm = norm2(r);
  const double initial_norm = norm2(b);
  std::cout << "reduction: " << initial_norm / std::max(final_norm, 1e-300)
            << "x\n";
  return final_norm < 0.5 * initial_norm ? EXIT_SUCCESS : EXIT_FAILURE;
}
