// Jacobian compression via BGPC — the numerical-optimization use case
// the paper's introduction cites (Coleman & Moré; "What color is your
// Jacobian?").
//
// A sparse Jacobian J (m x n) whose columns are partitioned into p
// structurally-orthogonal groups can be evaluated with only p
// forward-difference passes instead of n: compute B = J * S where
// S(j,c) = 1 iff color(j) == c, then read every nonzero J(i,j) directly
// from B(i, color(j)). A valid BGPC coloring of J's pattern is exactly
// such a partition.
//
// The demo builds a synthetic banded Jacobian, colors it with N1-N2,
// simulates the p compressed evaluations, recovers all nonzeros, and
// reports the compression factor and recovery error.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/sparse_matrix.hpp"
#include "greedcolor/order/ordering.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/env.hpp"
#include "greedcolor/util/prng.hpp"
#include "greedcolor/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const vid_t m = static_cast<vid_t>(args.get_int("rows", 20000));
  const vid_t n = static_cast<vid_t>(args.get_int("cols", 24000));
  const vid_t row_deg = static_cast<vid_t>(args.get_int("row-deg", 12));
  std::cout << env_banner() << "\n";

  // 1. Synthesize a banded sparse Jacobian pattern with values.
  Xoshiro256 rng(args.get_int("seed", 7));
  Coo jac;
  jac.num_rows = m;
  jac.num_cols = n;
  for (vid_t r = 0; r < m; ++r) {
    const vid_t base = static_cast<vid_t>(
        (static_cast<eid_t>(r) * n) / m);
    for (vid_t k = 0; k < row_deg; ++k) {
      const vid_t c = static_cast<vid_t>(
          (base + rng.bounded(static_cast<std::uint64_t>(4 * row_deg))) %
          static_cast<std::uint64_t>(n));
      jac.add(r, c, 1.0 + rng.uniform());
    }
  }
  jac.sort_and_dedup();
  const CsrMatrix a = CsrMatrix::from_coo(jac);
  std::cout << "Jacobian: " << m << " x " << n << ", nnz = " << a.nnz()
            << "\n";

  // 2. Color the columns (partial distance-2 on the bipartite pattern).
  const BipartiteGraph g = build_bipartite(jac);  // copies the pattern
  ColoringOptions opt = bgpc_preset(args.get_string("algo", "N1-N2"));
  opt.num_threads = static_cast<int>(args.get_int("threads", 0));
  const auto order = make_ordering(
      g, ordering_from_string(args.get_string("order", "smallest-last")));
  WallTimer timer;
  const auto res = color_bgpc(g, opt, order);
  const double color_ms = timer.milliseconds();
  if (!is_valid_bgpc(g, res.colors)) {
    std::cerr << "coloring invalid — aborting\n";
    return EXIT_FAILURE;
  }
  const color_t p = res.num_colors;
  std::cout << "coloring: " << p << " groups (lower bound "
            << g.max_net_degree() << ") in " << color_ms << " ms via "
            << opt.name << "\n";

  // 3. "Evaluate" the compressed Jacobian: B = J * S. Each of the p
  // seed vectors corresponds to one forward-difference pass.
  const std::vector<double> compressed = compress_columns(a, res.colors, p);

  // 4. Recover every structural nonzero and measure the error (exact
  // recovery is guaranteed by structural orthogonality).
  const double max_err = recovery_error(a, res.colors, p, compressed);

  std::cout << "function evaluations: " << p << " instead of " << n
            << "  (compression " << static_cast<double>(n) / p << "x)\n"
            << "max recovery error: " << max_err
            << (max_err == 0.0 ? "  (exact, as guaranteed)" : "") << "\n";
  return max_err == 0.0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
