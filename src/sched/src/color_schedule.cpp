#include "greedcolor/sched/color_schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace gcol {

ColorSchedule ColorSchedule::build(const std::vector<color_t>& colors) {
  color_t num_classes = 0;
  for (const color_t c : colors) {
    if (c < 0)
      throw std::invalid_argument(
          "ColorSchedule::build: incomplete coloring (uncolored item)");
    num_classes = std::max(num_classes, static_cast<color_t>(c + 1));
  }
  ColorSchedule s;
  s.class_ptr_.assign(static_cast<std::size_t>(num_classes) + 1, 0);
  for (const color_t c : colors)
    ++s.class_ptr_[static_cast<std::size_t>(c) + 1];
  for (std::size_t i = 1; i < s.class_ptr_.size(); ++i)
    s.class_ptr_[i] += s.class_ptr_[i - 1];
  s.members_.resize(colors.size());
  std::vector<eid_t> cursor(s.class_ptr_.begin(), s.class_ptr_.end() - 1);
  for (vid_t v = 0; v < static_cast<vid_t>(colors.size()); ++v)
    s.members_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(
            colors[static_cast<std::size_t>(v)])]++)] = v;
  return s;
}

ScheduleStats ColorSchedule::stats(int num_threads) const {
  if (num_threads < 1)
    throw std::invalid_argument("ColorSchedule::stats: threads must be >=1");
  ScheduleStats st;
  st.num_classes = num_classes();
  st.total_items = total_items();
  if (st.num_classes == 0) return st;
  st.smallest_class = class_size(0);
  for (color_t c = 0; c < num_classes(); ++c) {
    const vid_t size = class_size(c);
    st.smallest_class = std::min(st.smallest_class, size);
    st.largest_class = std::max(st.largest_class, size);
    st.span += (static_cast<std::uint64_t>(size) +
                static_cast<std::uint64_t>(num_threads) - 1) /
               static_cast<std::uint64_t>(num_threads);
  }
  st.efficiency =
      st.span == 0
          ? 0.0
          : static_cast<double>(st.total_items) /
                (static_cast<double>(num_threads) *
                 static_cast<double>(st.span));
  return st;
}

}  // namespace gcol
