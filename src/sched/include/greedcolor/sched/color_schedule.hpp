// Color-set parallel execution — the reason to color at all.
//
// "Given a valid coloring, each color set, formed by independent
// vertices, can be simultaneously processed in a lock-free manner"
// (paper, §I). ColorSchedule turns a coloring into that execution
// plan: vertices grouped by color, one OpenMP parallel-for per class,
// an implicit barrier between classes, zero locks inside a class.
//
// It also quantifies what the balancing heuristics B1/B2 buy: the
// schedule's span (number of chunk-granules on the critical path) and
// parallel efficiency for a given core count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "greedcolor/util/types.hpp"

namespace gcol {

struct ScheduleStats {
  color_t num_classes = 0;
  vid_t total_items = 0;
  vid_t smallest_class = 0;
  vid_t largest_class = 0;
  /// Rounds of P-wide execution on the critical path:
  /// Σ_c ceil(|class c| / P).
  std::uint64_t span = 0;
  /// total_items / (P * span): 1.0 = perfectly balanced classes.
  double efficiency = 0.0;
};

class ColorSchedule {
 public:
  /// Group items by color. Every entry must be >= 0 (a complete
  /// coloring); throws std::invalid_argument otherwise.
  static ColorSchedule build(const std::vector<color_t>& colors);

  [[nodiscard]] color_t num_classes() const {
    return static_cast<color_t>(class_ptr_.size()) - 1;
  }

  [[nodiscard]] vid_t total_items() const {
    return static_cast<vid_t>(members_.size());
  }

  [[nodiscard]] std::span<const vid_t> class_members(color_t c) const {
    return {members_.data() + class_ptr_[static_cast<std::size_t>(c)],
            members_.data() + class_ptr_[static_cast<std::size_t>(c) + 1]};
  }

  [[nodiscard]] vid_t class_size(color_t c) const {
    return static_cast<vid_t>(class_ptr_[static_cast<std::size_t>(c) + 1] -
                              class_ptr_[static_cast<std::size_t>(c)]);
  }

  /// Run fn(item) for every item, one color class at a time. Within a
  /// class the calls run concurrently (schedule(dynamic, chunk)); a
  /// barrier separates classes. fn must be safe to call concurrently
  /// for items of one class — which is exactly what a valid coloring
  /// guarantees for neighborhood-local updates.
  template <typename Fn>
  void for_each_parallel(Fn&& fn, int num_threads = 0,
                         int chunk = 16) const {
#if defined(_OPENMP)
    const int threads =
        num_threads > 0 ? num_threads : omp_get_max_threads();
#else
    const int threads = 1;
    (void)num_threads;
#endif
    for (color_t c = 0; c < num_classes(); ++c) {
      const auto members = class_members(c);
      const auto size = static_cast<std::int64_t>(members.size());
#pragma omp parallel for num_threads(threads) schedule(dynamic, chunk)
      for (std::int64_t i = 0; i < size; ++i)
        fn(members[static_cast<std::size_t>(i)]);
    }
  }

  /// Predicted execution profile on `num_threads` cores.
  [[nodiscard]] ScheduleStats stats(int num_threads) const;

 private:
  std::vector<eid_t> class_ptr_;  // num_classes + 1
  std::vector<vid_t> members_;    // grouped by color, ascending ids
};

}  // namespace gcol
