#include "greedcolor/order/locality.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace gcol {

namespace {

/// Sort every CSR segment ascending.
void sort_segments(const std::vector<eid_t>& ptr, std::vector<vid_t>& adj) {
  for (std::size_t i = 0; i + 1 < ptr.size(); ++i)
    std::sort(adj.begin() + ptr[i], adj.begin() + ptr[i + 1]);
}

/// Rebuild one CSR half under old->new permutations of both its row and
/// column spaces: row_inv[new_row] = old_row, col_perm[old_col] =
/// new_col. Segments come out sorted.
void permute_csr(const std::vector<eid_t>& ptr, const std::vector<vid_t>& adj,
                 const std::vector<vid_t>& row_inv,
                 const std::vector<vid_t>& col_perm,
                 std::vector<eid_t>& out_ptr, std::vector<vid_t>& out_adj) {
  const std::size_t rows = row_inv.size();
  out_ptr.assign(rows + 1, 0);
  out_adj.resize(adj.size());
  for (std::size_t r = 0; r < rows; ++r) {
    const auto old_row = static_cast<std::size_t>(row_inv[r]);
    out_ptr[r + 1] =
        out_ptr[r] + (ptr[old_row + 1] - ptr[old_row]);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const auto old_row = static_cast<std::size_t>(row_inv[r]);
    eid_t out = out_ptr[r];
    for (eid_t e = ptr[old_row]; e < ptr[old_row + 1]; ++e)
      out_adj[static_cast<std::size_t>(out++)] =
          col_perm[static_cast<std::size_t>(adj[static_cast<std::size_t>(e)])];
    std::sort(out_adj.begin() + out_ptr[r], out_adj.begin() + out_ptr[r + 1]);
  }
}

std::vector<vid_t> invert(const std::vector<vid_t>& perm) {
  std::vector<vid_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<vid_t>(i);
  return inv;
}

}  // namespace

BgpcLocalityPlan make_locality_plan(const BipartiteGraph& g,
                                    LocalityMode mode) {
  BgpcLocalityPlan plan;
  if (mode == LocalityMode::kNone) {
    plan.graph = g;
    return plan;
  }
  if (mode == LocalityMode::kSortAdj) {
    std::vector<eid_t> vptr = g.vptr();
    std::vector<vid_t> vadj = g.vadj();
    std::vector<eid_t> nptr = g.nptr();
    std::vector<vid_t> nadj = g.nadj();
    sort_segments(vptr, vadj);
    sort_segments(nptr, nadj);
    plan.graph = BipartiteGraph(g.num_vertices(), g.num_nets(),
                                std::move(vptr), std::move(vadj),
                                std::move(nptr), std::move(nadj));
    return plan;
  }

  // kFull. Nets by descending degree (stable on id): the widest nets —
  // the ones every kernel spends the most time in — get the smallest
  // ids and the front of the nadj array.
  const vid_t nn = g.num_nets();
  const vid_t n = g.num_vertices();
  std::vector<vid_t> nets_by_deg(static_cast<std::size_t>(nn));
  std::iota(nets_by_deg.begin(), nets_by_deg.end(), vid_t{0});
  std::stable_sort(nets_by_deg.begin(), nets_by_deg.end(),
                   [&](vid_t a, vid_t b) {
                     return g.net_degree(a) > g.net_degree(b);
                   });
  plan.net_perm = invert(nets_by_deg);

  // Vertices by first touch over the renumbered nets: members of one
  // net become contiguous, so its color loads land on shared lines.
  plan.vertex_perm.assign(static_cast<std::size_t>(n), kInvalidVertex);
  vid_t next = 0;
  for (const vid_t v : nets_by_deg)
    for (const vid_t u : g.vtxs(v))
      if (plan.vertex_perm[static_cast<std::size_t>(u)] == kInvalidVertex)
        plan.vertex_perm[static_cast<std::size_t>(u)] = next++;
  for (vid_t u = 0; u < n; ++u)  // net-less vertices keep relative order
    if (plan.vertex_perm[static_cast<std::size_t>(u)] == kInvalidVertex)
      plan.vertex_perm[static_cast<std::size_t>(u)] = next++;

  const std::vector<vid_t> vertex_inv = invert(plan.vertex_perm);
  std::vector<eid_t> vptr;
  std::vector<vid_t> vadj;
  std::vector<eid_t> nptr;
  std::vector<vid_t> nadj;
  permute_csr(g.vptr(), g.vadj(), vertex_inv, plan.net_perm, vptr, vadj);
  permute_csr(g.nptr(), g.nadj(), nets_by_deg, plan.vertex_perm, nptr, nadj);
  plan.graph = BipartiteGraph(n, nn, std::move(vptr), std::move(vadj),
                              std::move(nptr), std::move(nadj));
  return plan;
}

GraphLocalityPlan make_locality_plan(const Graph& g, LocalityMode mode) {
  GraphLocalityPlan plan;
  if (mode == LocalityMode::kNone) {
    plan.graph = g;
    return plan;
  }
  if (mode == LocalityMode::kSortAdj) {
    std::vector<eid_t> ptr = g.ptr();
    std::vector<vid_t> adj = g.adj();
    sort_segments(ptr, adj);
    plan.graph = Graph(g.num_vertices(), std::move(ptr), std::move(adj));
    return plan;
  }

  // kFull: BFS numbering — distance-2 neighborhoods become id-compact.
  // Components are seeded in descending degree of their seed vertex.
  const vid_t n = g.num_vertices();
  std::vector<vid_t> seeds(static_cast<std::size_t>(n));
  std::iota(seeds.begin(), seeds.end(), vid_t{0});
  std::stable_sort(seeds.begin(), seeds.end(), [&](vid_t a, vid_t b) {
    return g.degree(a) > g.degree(b);
  });
  plan.vertex_perm.assign(static_cast<std::size_t>(n), kInvalidVertex);
  std::queue<vid_t> frontier;
  vid_t next = 0;
  for (const vid_t seed : seeds) {
    if (plan.vertex_perm[static_cast<std::size_t>(seed)] != kInvalidVertex)
      continue;
    plan.vertex_perm[static_cast<std::size_t>(seed)] = next++;
    frontier.push(seed);
    while (!frontier.empty()) {
      const vid_t v = frontier.front();
      frontier.pop();
      for (const vid_t u : g.neighbors(v)) {
        if (plan.vertex_perm[static_cast<std::size_t>(u)] == kInvalidVertex) {
          plan.vertex_perm[static_cast<std::size_t>(u)] = next++;
          frontier.push(u);
        }
      }
    }
  }

  const std::vector<vid_t> inv = invert(plan.vertex_perm);
  std::vector<eid_t> ptr;
  std::vector<vid_t> adj;
  permute_csr(g.ptr(), g.adj(), inv, plan.vertex_perm, ptr, adj);
  plan.graph = Graph(n, std::move(ptr), std::move(adj));
  return plan;
}

std::vector<vid_t> apply_vertex_perm(const std::vector<vid_t>& perm,
                                     const std::vector<vid_t>& order,
                                     vid_t n) {
  if (perm.empty()) return order;
  if (perm.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("apply_vertex_perm: perm size mismatch");
  std::vector<vid_t> out;
  out.reserve(static_cast<std::size_t>(n));
  if (order.empty()) {
    out = perm;  // position i still processes logical vertex i
    return out;
  }
  for (const vid_t u : order) out.push_back(perm[static_cast<std::size_t>(u)]);
  return out;
}

std::vector<color_t> restore_colors(const std::vector<vid_t>& perm,
                                    std::vector<color_t> colors) {
  if (perm.empty()) return colors;
  std::vector<color_t> out(colors.size());
  for (std::size_t u = 0; u < perm.size(); ++u)
    out[u] = colors[static_cast<std::size_t>(perm[u])];
  return out;
}

}  // namespace gcol
