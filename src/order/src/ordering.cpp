#include "greedcolor/order/ordering.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "greedcolor/graph/builder.hpp"
#include "greedcolor/util/prng.hpp"

namespace gcol {

namespace {

std::vector<vid_t> identity_order(vid_t n) {
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), vid_t{0});
  return order;
}

std::vector<vid_t> random_order(vid_t n, std::uint64_t seed) {
  std::vector<vid_t> order = identity_order(n);
  Xoshiro256 rng(seed ^ 0x5eedULL);
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.bounded(i));
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

std::vector<vid_t> largest_first_d2(const BipartiteGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<eid_t> deg(static_cast<std::size_t>(n), 0);
  for (vid_t u = 0; u < n; ++u) {
    eid_t d = 0;
    for (const vid_t v : g.nets(u)) d += g.net_degree(v) - 1;
    deg[static_cast<std::size_t>(u)] = d;
  }
  std::vector<vid_t> order = identity_order(n);
  std::stable_sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    return deg[static_cast<std::size_t>(a)] >
           deg[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace

std::string to_string(OrderingKind k) {
  switch (k) {
    case OrderingKind::kNatural:
      return "natural";
    case OrderingKind::kRandom:
      return "random";
    case OrderingKind::kLargestFirst:
      return "largest-first";
    case OrderingKind::kSmallestLast:
      return "smallest-last";
    case OrderingKind::kIncidenceDegree:
      return "incidence-degree";
    case OrderingKind::kSmallestLastRelaxed:
      return "smallest-last-relaxed";
  }
  return "?";
}

OrderingKind ordering_from_string(const std::string& name) {
  if (name == "natural") return OrderingKind::kNatural;
  if (name == "random") return OrderingKind::kRandom;
  if (name == "largest-first" || name == "lf")
    return OrderingKind::kLargestFirst;
  if (name == "smallest-last" || name == "sl")
    return OrderingKind::kSmallestLast;
  if (name == "incidence-degree" || name == "id")
    return OrderingKind::kIncidenceDegree;
  if (name == "smallest-last-relaxed" || name == "slr")
    return OrderingKind::kSmallestLastRelaxed;
  throw std::invalid_argument("unknown ordering: " + name);
}

std::vector<vid_t> make_ordering(const BipartiteGraph& g, OrderingKind kind,
                                 std::uint64_t seed) {
  switch (kind) {
    case OrderingKind::kNatural:
      return identity_order(g.num_vertices());
    case OrderingKind::kRandom:
      return random_order(g.num_vertices(), seed);
    case OrderingKind::kLargestFirst:
      return largest_first_d2(g);
    case OrderingKind::kSmallestLast:
      return smallest_last_d2(g);
    case OrderingKind::kIncidenceDegree:
      return incidence_degree_d2(g);
    case OrderingKind::kSmallestLastRelaxed:
      return smallest_last_relaxed_d2(g);
  }
  throw std::logic_error("unreachable ordering kind");
}

std::vector<vid_t> make_ordering(const Graph& g, OrderingKind kind,
                                 std::uint64_t seed) {
  switch (kind) {
    case OrderingKind::kNatural:
      return identity_order(g.num_vertices());
    case OrderingKind::kRandom:
      return random_order(g.num_vertices(), seed);
    default:
      // Degree-based D2GC orders run on the closed-neighborhood
      // bipartite view (net v = N[v]), whose BGPC conflicts equal the
      // graph's distance-2 conflicts; vertex ids are preserved.
      return make_ordering(graph_to_bipartite_closed(g), kind, seed);
  }
}

bool is_permutation_of(const std::vector<vid_t>& order, vid_t n) {
  if (order.size() != static_cast<std::size_t>(n)) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const vid_t v : order) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

}  // namespace gcol
