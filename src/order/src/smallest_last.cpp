// Degeneracy-style orderings (smallest-last, incidence-degree) on the
// dynamic distance-2 degree, built on BucketQueue.
#include <algorithm>
#include <vector>

#include "greedcolor/graph/builder.hpp"
#include "greedcolor/order/bucket_queue.hpp"
#include "greedcolor/order/ordering.hpp"

namespace gcol {

namespace {

/// d2deg(u) = Σ_{v ∈ nets(u)} (|vtxs(v)| − 1): the distance-2 degree
/// with multiplicity — the key all degree-based BGPC orderings use.
std::vector<eid_t> d2_degrees(const BipartiteGraph& g) {
  std::vector<eid_t> deg(static_cast<std::size_t>(g.num_vertices()), 0);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    eid_t d = 0;
    for (const vid_t v : g.nets(u)) d += g.net_degree(v) - 1;
    deg[static_cast<std::size_t>(u)] = d;
  }
  return deg;
}

/// Accumulate, per remaining vertex w, how many nets it shares with u
/// (the exact d2-degree delta when u leaves/enters the ordered set).
void shared_net_deltas(const BipartiteGraph& g, vid_t u,
                       const BucketQueue& q, std::vector<eid_t>& delta,
                       std::vector<vid_t>& touched) {
  touched.clear();
  for (const vid_t v : g.nets(u)) {
    for (const vid_t w : g.vtxs(v)) {
      if (w == u || !q.contains(w)) continue;
      if (delta[static_cast<std::size_t>(w)] == 0) touched.push_back(w);
      ++delta[static_cast<std::size_t>(w)];
    }
  }
}

}  // namespace

std::vector<vid_t> smallest_last_d2(const BipartiteGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<eid_t> deg = d2_degrees(g);
  const eid_t max_key =
      n == 0 ? 0 : *std::max_element(deg.begin(), deg.end());
  BucketQueue q(std::move(deg), max_key);

  std::vector<vid_t> order(static_cast<std::size_t>(n));
  std::vector<eid_t> delta(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> touched;
  for (vid_t i = n; i-- > 0;) {
    const vid_t u = q.find_min();
    q.remove(u);
    order[static_cast<std::size_t>(i)] = u;  // smallest degree goes last
    shared_net_deltas(g, u, q, delta, touched);
    for (const vid_t w : touched) {
      q.decrease(w, delta[static_cast<std::size_t>(w)]);
      delta[static_cast<std::size_t>(w)] = 0;
    }
  }
  return order;
}

std::vector<vid_t> smallest_last_relaxed_d2(const BipartiteGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<eid_t> deg = d2_degrees(g);
  const eid_t max_key =
      n == 0 ? 0 : *std::max_element(deg.begin(), deg.end());
  BucketQueue q(std::move(deg), max_key);

  std::vector<vid_t> order(static_cast<std::size_t>(n));
  std::vector<eid_t> delta(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> touched, batch;
  std::size_t filled = static_cast<std::size_t>(n);
  while (!q.empty()) {
    // Peel the whole current degeneracy level: everything at or below
    // the level key, including cascades the removals create.
    const eid_t level = q.key(q.find_min());
    batch.clear();
    while (!q.empty()) {
      const vid_t u = q.find_min();
      if (q.key(u) > level) break;
      q.remove(u);
      batch.push_back(u);
      shared_net_deltas(g, u, q, delta, touched);
      for (const vid_t w : touched) {
        q.decrease(w, delta[static_cast<std::size_t>(w)]);
        delta[static_cast<std::size_t>(w)] = 0;
      }
    }
    // The batch is one parallel round; later levels precede it in the
    // final order (smallest degrees go last).
    for (auto it = batch.rbegin(); it != batch.rend(); ++it)
      order[--filled] = *it;
  }
  return order;
}

std::vector<vid_t> incidence_degree_d2(const BipartiteGraph& g) {
  const vid_t n = g.num_vertices();
  // Keys are "ordered distance-2 neighbors seen so far" (multiplicity);
  // capacity must admit the largest possible final count = max d2deg.
  std::vector<eid_t> static_deg = d2_degrees(g);
  const eid_t max_key =
      n == 0 ? 0
             : *std::max_element(static_deg.begin(), static_deg.end());
  BucketQueue q(std::vector<eid_t>(static_cast<std::size_t>(n), 0), max_key);

  // Seed: ColPack starts incidence-degree from a max-degree vertex.
  vid_t seed_vertex = 0;
  for (vid_t u = 1; u < n; ++u)
    if (static_deg[static_cast<std::size_t>(u)] >
        static_deg[static_cast<std::size_t>(seed_vertex)])
      seed_vertex = u;

  std::vector<vid_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<eid_t> delta(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> touched;
  for (vid_t i = 0; i < n; ++i) {
    const vid_t u = i == 0 ? seed_vertex : q.find_max();
    q.remove(u);
    order.push_back(u);
    shared_net_deltas(g, u, q, delta, touched);
    for (const vid_t w : touched) {
      q.increase(w, delta[static_cast<std::size_t>(w)]);
      delta[static_cast<std::size_t>(w)] = 0;
    }
  }
  return order;
}

std::vector<vid_t> smallest_last_d1(const Graph& g) {
  const vid_t n = g.num_vertices();
  std::vector<eid_t> deg(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v)
    deg[static_cast<std::size_t>(v)] = g.degree(v);
  const eid_t max_key =
      n == 0 ? 0 : *std::max_element(deg.begin(), deg.end());
  BucketQueue q(std::move(deg), max_key);

  std::vector<vid_t> order(static_cast<std::size_t>(n));
  for (vid_t i = n; i-- > 0;) {
    const vid_t u = q.find_min();
    q.remove(u);
    order[static_cast<std::size_t>(i)] = u;
    for (const vid_t w : g.neighbors(u))
      if (q.contains(w)) q.decrease(w, 1);
  }
  return order;
}

}  // namespace gcol
