// Cache-locality pre-pass for the coloring drivers (the opt-in
// ColoringOptions::locality knob).
//
// The speculative kernels are memory-bound: almost every cycle is spent
// streaming adjacency lists and loading neighbor colors. Two structural
// rewrites help without touching the algorithms: sorting adjacency
// lists (sequential scans instead of random-order id walks) and a full
// degree-aware renumbering that places vertices sharing a net at
// consecutive ids, so their colors share cache lines during the
// net-based passes. The driver colors the rewritten graph and maps the
// colors back through the permutation — callers always see original
// ids.
#pragma once

#include <vector>

#include "greedcolor/core/options.hpp"
#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

/// Rewritten BGPC input plus the permutations (old id -> new id) that
/// produced it. Empty permutation = identity (kSortAdj keeps ids).
struct BgpcLocalityPlan {
  BipartiteGraph graph;
  std::vector<vid_t> vertex_perm;
  std::vector<vid_t> net_perm;
};

/// Rewritten D2GC input plus its vertex permutation (old -> new).
struct GraphLocalityPlan {
  Graph graph;
  std::vector<vid_t> vertex_perm;
};

/// kSortAdj: same ids, both CSR halves' lists sorted ascending.
/// kFull: nets renumbered by descending degree (stable by id), vertices
/// by first-touch order over the renumbered nets, lists sorted.
[[nodiscard]] BgpcLocalityPlan make_locality_plan(const BipartiteGraph& g,
                                                  LocalityMode mode);

/// kSortAdj: adjacency re-sorted (already a Graph invariant, kept for
/// symmetry). kFull: BFS numbering seeded from the highest-degree
/// vertex of each component (components in descending seed degree).
[[nodiscard]] GraphLocalityPlan make_locality_plan(const Graph& g,
                                                   LocalityMode mode);

/// Translate a processing order over old ids into the renumbered space:
/// position i still processes the same logical vertex. An empty `perm`
/// returns `order` unchanged; an empty `order` stands for the natural
/// order over `n` vertices.
[[nodiscard]] std::vector<vid_t> apply_vertex_perm(
    const std::vector<vid_t>& perm, const std::vector<vid_t>& order, vid_t n);

/// Map colors computed in the renumbered space back to old ids:
/// result[u_old] = colors[perm[u_old]]. Empty perm passes through.
[[nodiscard]] std::vector<color_t> restore_colors(
    const std::vector<vid_t>& perm, std::vector<color_t> colors);

}  // namespace gcol
