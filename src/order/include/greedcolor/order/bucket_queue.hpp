// Bucket priority queue over dense integer keys.
//
// The workhorse behind the degeneracy-style orderings (smallest-last,
// incidence-degree) and the DSATUR-style selection: O(1) insert,
// removal, and key change; extract-min / extract-max via cursors whose
// total movement is bounded by the key range plus the number of key
// changes.
#pragma once

#include <stdexcept>
#include <vector>

#include "greedcolor/util/types.hpp"

namespace gcol {

class BucketQueue {
 public:
  BucketQueue() = default;

  /// Build with one initial key per element; keys in [0, max_key].
  BucketQueue(std::vector<eid_t> keys, eid_t max_key)
      : keys_(std::move(keys)),
        head_(static_cast<std::size_t>(max_key) + 1, kNone),
        next_(keys_.size(), kNone),
        prev_(keys_.size(), kNone),
        in_queue_(keys_.size(), true),
        queued_(keys_.size()),
        min_cursor_(max_key),
        max_cursor_(0) {
    for (vid_t v = 0; v < static_cast<vid_t>(keys_.size()); ++v) {
      push_front(v);
      min_cursor_ = std::min(min_cursor_, keys_[static_cast<std::size_t>(v)]);
      max_cursor_ = std::max(max_cursor_, keys_[static_cast<std::size_t>(v)]);
    }
  }

  [[nodiscard]] std::size_t size() const { return queued_; }
  [[nodiscard]] bool empty() const { return queued_ == 0; }

  [[nodiscard]] bool contains(vid_t v) const {
    return in_queue_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] eid_t key(vid_t v) const {
    return keys_[static_cast<std::size_t>(v)];
  }

  void remove(vid_t v) {
    unlink(v);
    in_queue_[static_cast<std::size_t>(v)] = false;
    --queued_;
  }

  /// key[v] -= delta (v must be queued); delta >= 0. Validated before
  /// any mutation so a thrown error leaves the queue intact.
  void decrease(vid_t v, eid_t delta) {
    if (delta == 0) return;
    auto& k = keys_[static_cast<std::size_t>(v)];
    if (k - delta < 0) throw std::logic_error("BucketQueue: negative key");
    unlink(v);
    k -= delta;
    push_front(v);
    min_cursor_ = std::min(min_cursor_, k);
  }

  /// key[v] += delta (v must be queued). Validated before any mutation.
  void increase(vid_t v, eid_t delta) {
    if (delta == 0) return;
    auto& k = keys_[static_cast<std::size_t>(v)];
    if (static_cast<std::size_t>(k + delta) >= head_.size())
      throw std::logic_error("BucketQueue: key above capacity");
    unlink(v);
    k += delta;
    push_front(v);
    max_cursor_ = std::max(max_cursor_, k);
  }

  /// Smallest-key queued element, or kInvalidVertex when empty.
  [[nodiscard]] vid_t find_min() {
    while (min_cursor_ < static_cast<eid_t>(head_.size()) &&
           head_[static_cast<std::size_t>(min_cursor_)] == kNone)
      ++min_cursor_;
    return min_cursor_ < static_cast<eid_t>(head_.size())
               ? head_[static_cast<std::size_t>(min_cursor_)]
               : kInvalidVertex;
  }

  /// Largest-key queued element, or kInvalidVertex when empty.
  [[nodiscard]] vid_t find_max() {
    while (max_cursor_ > 0 &&
           head_[static_cast<std::size_t>(max_cursor_)] == kNone)
      --max_cursor_;
    return head_[static_cast<std::size_t>(max_cursor_)];
  }

 private:
  static constexpr vid_t kNone = -1;

  void push_front(vid_t v) {
    const auto k =
        static_cast<std::size_t>(keys_[static_cast<std::size_t>(v)]);
    const vid_t old = head_[k];
    next_[static_cast<std::size_t>(v)] = old;
    prev_[static_cast<std::size_t>(v)] = kNone;
    if (old != kNone) prev_[static_cast<std::size_t>(old)] = v;
    head_[k] = v;
  }

  void unlink(vid_t v) {
    const vid_t p = prev_[static_cast<std::size_t>(v)];
    const vid_t nx = next_[static_cast<std::size_t>(v)];
    if (p != kNone)
      next_[static_cast<std::size_t>(p)] = nx;
    else
      head_[static_cast<std::size_t>(keys_[static_cast<std::size_t>(v)])] =
          nx;
    if (nx != kNone) prev_[static_cast<std::size_t>(nx)] = p;
  }

  std::vector<eid_t> keys_;
  std::vector<vid_t> head_;
  std::vector<vid_t> next_;
  std::vector<vid_t> prev_;
  std::vector<bool> in_queue_;
  std::size_t queued_ = 0;
  eid_t min_cursor_ = 0;
  eid_t max_cursor_ = 0;
};

}  // namespace gcol
