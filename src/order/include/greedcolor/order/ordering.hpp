// Vertex orderings for the greedy coloring loop.
//
// The paper evaluates two orders: the matrix's *natural* column order
// (Table III) and ColPack's *smallest-last* order (Table IV), which
// typically lowers the color count at the price of a slower sequential
// baseline. We also provide random, largest-first, and incidence-degree
// orders for ablations, mirroring ColPack's ordering menu.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

enum class OrderingKind {
  kNatural,         ///< identity: vertex id order
  kRandom,          ///< seeded uniform shuffle
  kLargestFirst,    ///< static distance-2 degree, descending
  kSmallestLast,    ///< Matula–Beck degeneracy order on the d2 degree
  kIncidenceDegree, ///< greedy max-back-degree (ColPack ID)
  /// Level-peeling relaxation of smallest-last: whole degeneracy levels
  /// are peeled as batches, the multithreaded-ordering idea of Patwary,
  /// Gebremedhin & Pothen (paper ref [16]). Slightly weaker quality,
  /// embarrassingly parallel rounds in a real multicore implementation.
  kSmallestLastRelaxed,
};

[[nodiscard]] std::string to_string(OrderingKind k);
[[nodiscard]] OrderingKind ordering_from_string(const std::string& name);

/// Permutation of the V_A vertices of a BGPC instance. Degree-based
/// orders use the distance-2 degree with multiplicity,
/// d2deg(u) = Σ_{v ∈ nets(u)} (|vtxs(v)| − 1), the quantity ColPack's
/// partial-distance-2 orderings are built on.
[[nodiscard]] std::vector<vid_t> make_ordering(const BipartiteGraph& g,
                                               OrderingKind kind,
                                               std::uint64_t seed = 0);

/// Permutation of the vertices of a D2GC instance; degree-based orders
/// use the distance-2 degree with multiplicity over closed
/// neighborhoods.
[[nodiscard]] std::vector<vid_t> make_ordering(const Graph& g,
                                               OrderingKind kind,
                                               std::uint64_t seed = 0);

/// Classic distance-1 Matula–Beck smallest-last order (exposed for the
/// ordering unit tests and distance-1 ablations).
[[nodiscard]] std::vector<vid_t> smallest_last_d1(const Graph& g);

/// Exact smallest-last order on the dynamic distance-2 degree (the
/// kSmallestLast engine; exposed for tests).
[[nodiscard]] std::vector<vid_t> smallest_last_d2(const BipartiteGraph& g);

/// Batched degeneracy-level peeling (the kSmallestLastRelaxed engine;
/// exposed for tests).
[[nodiscard]] std::vector<vid_t> smallest_last_relaxed_d2(
    const BipartiteGraph& g);

/// Incidence-degree order on distance-2 neighbors (the kIncidenceDegree
/// engine; exposed for tests).
[[nodiscard]] std::vector<vid_t> incidence_degree_d2(const BipartiteGraph& g);

/// True iff `order` is a permutation of [0, n).
[[nodiscard]] bool is_permutation_of(const std::vector<vid_t>& order,
                                     vid_t n);

}  // namespace gcol
