#include "greedcolor/dist/shard.hpp"

#include <algorithm>
#include <string>

#include "greedcolor/robust/error.hpp"

namespace gcol {

vid_t Shard::ghost_local(vid_t global) const {
  const auto it = std::lower_bound(ghosts.begin(), ghosts.end(), global);
  if (it == ghosts.end() || *it != global) return kInvalidVertex;
  return num_owned() + static_cast<vid_t>(it - ghosts.begin());
}

int Shard::neighbor_index(int shard) const {
  const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), shard);
  if (it == neighbors.end() || *it != shard) return -1;
  return static_cast<int>(it - neighbors.begin());
}

std::vector<Shard> make_shards(const BipartiteGraph& g,
                               const std::vector<int>& owner,
                               int num_shards) {
  const vid_t n = g.num_vertices();
  if (num_shards < 1)
    raise(ErrorCode::kInvalidArgument, "make_shards",
          "num_shards must be >= 1, got " + std::to_string(num_shards));
  if (owner.size() != static_cast<std::size_t>(n))
    raise(ErrorCode::kInvalidArgument, "make_shards",
          "owner array has " + std::to_string(owner.size()) +
              " entries for " + std::to_string(n) + " vertices");
  for (const int r : owner)
    if (r < 0 || r >= num_shards)
      raise(ErrorCode::kInvalidArgument, "make_shards",
            "owner id " + std::to_string(r) + " outside [0, " +
                std::to_string(num_shards) + ")");

  std::vector<Shard> shards(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards[static_cast<std::size_t>(s)].id = s;
    shards[static_cast<std::size_t>(s)].num_shards = num_shards;
  }
  for (vid_t u = 0; u < n; ++u)
    shards[static_cast<std::size_t>(owner[static_cast<std::size_t>(u)])]
        .owned.push_back(u);

  // Classify nets once, globally: a net is mixed iff its columns span
  // more than one shard. Every column of a mixed net is a boundary
  // vertex of its owner and a ghost of every other shard on the net.
  std::vector<std::uint8_t> mixed(static_cast<std::size_t>(g.num_nets()), 0);
  for (vid_t v = 0; v < g.num_nets(); ++v) {
    const auto vs = g.vtxs(v);
    if (vs.empty()) continue;
    const int first = owner[static_cast<std::size_t>(vs.front())];
    for (const vid_t w : vs) {
      if (owner[static_cast<std::size_t>(w)] != first) {
        mixed[static_cast<std::size_t>(v)] = 1;
        break;
      }
    }
  }

  // Per shard: incident nets, ghosts, and neighbor shards. `mark` and
  // `smark` dedup per shard; both are reset between shards by sweeping
  // only what was set.
  std::vector<std::uint8_t> net_mark(static_cast<std::size_t>(g.num_nets()),
                                     0);
  std::vector<std::uint8_t> col_mark(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> shard_mark(static_cast<std::size_t>(num_shards),
                                       0);
  for (auto& shard : shards) {
    const int s = shard.id;
    for (const vid_t u : shard.owned) {
      for (const vid_t v : g.nets(u)) {
        if (net_mark[static_cast<std::size_t>(v)]) continue;
        net_mark[static_cast<std::size_t>(v)] = 1;
        shard.nets.push_back(v);
        if (!mixed[static_cast<std::size_t>(v)]) continue;
        for (const vid_t w : g.vtxs(v)) {
          const int rw = owner[static_cast<std::size_t>(w)];
          if (rw == s) continue;
          if (!col_mark[static_cast<std::size_t>(w)]) {
            col_mark[static_cast<std::size_t>(w)] = 1;
            shard.ghosts.push_back(w);
          }
          if (!shard_mark[static_cast<std::size_t>(rw)]) {
            shard_mark[static_cast<std::size_t>(rw)] = 1;
            shard.neighbors.push_back(rw);
          }
        }
      }
    }
    std::sort(shard.nets.begin(), shard.nets.end());
    std::sort(shard.ghosts.begin(), shard.ghosts.end());
    std::sort(shard.neighbors.begin(), shard.neighbors.end());
    shard.ghost_owner.reserve(shard.ghosts.size());
    for (const vid_t w : shard.ghosts)
      shard.ghost_owner.push_back(owner[static_cast<std::size_t>(w)]);
    for (const vid_t v : shard.nets)
      net_mark[static_cast<std::size_t>(v)] = 0;
    for (const vid_t w : shard.ghosts)
      col_mark[static_cast<std::size_t>(w)] = 0;
    for (const int r : shard.neighbors)
      shard_mark[static_cast<std::size_t>(r)] = 0;
  }

  // Build each shard's local CSR slice and border sets. `local_col` is
  // a global scratch map valid for one shard at a time.
  std::vector<vid_t> local_col(static_cast<std::size_t>(n), kInvalidVertex);
  for (auto& shard : shards) {
    const vid_t n_owned = shard.num_owned();
    const vid_t n_local = shard.num_local();
    for (vid_t lu = 0; lu < n_owned; ++lu)
      local_col[static_cast<std::size_t>(
          shard.owned[static_cast<std::size_t>(lu)])] = lu;
    for (std::size_t i = 0; i < shard.ghosts.size(); ++i)
      local_col[static_cast<std::size_t>(shard.ghosts[i])] =
          n_owned + static_cast<vid_t>(i);

    // Net side first: each shard net keeps only its local columns (for
    // mixed nets that is owned + ghosts of *this* shard — a third
    // shard's columns on the net are ghosts here too, so nothing is
    // lost; for local nets it is every column).
    const vid_t n_nets = static_cast<vid_t>(shard.nets.size());
    std::vector<eid_t> nptr(static_cast<std::size_t>(n_nets) + 1, 0);
    std::vector<vid_t> nadj;
    for (vid_t lv = 0; lv < n_nets; ++lv) {
      const vid_t v = shard.nets[static_cast<std::size_t>(lv)];
      for (const vid_t w : g.vtxs(v)) {
        const vid_t lw = local_col[static_cast<std::size_t>(w)];
        if (lw != kInvalidVertex) nadj.push_back(lw);
      }
      nptr[static_cast<std::size_t>(lv) + 1] =
          static_cast<eid_t>(nadj.size());
    }
    // Transpose to the vertex side.
    std::vector<eid_t> vptr(static_cast<std::size_t>(n_local) + 1, 0);
    for (const vid_t lw : nadj)
      ++vptr[static_cast<std::size_t>(lw) + 1];
    for (vid_t lu = 0; lu < n_local; ++lu)
      vptr[static_cast<std::size_t>(lu) + 1] +=
          vptr[static_cast<std::size_t>(lu)];
    std::vector<vid_t> vadj(nadj.size());
    std::vector<eid_t> cursor(vptr.begin(), vptr.end() - 1);
    for (vid_t lv = 0; lv < n_nets; ++lv) {
      for (eid_t e = nptr[static_cast<std::size_t>(lv)];
           e < nptr[static_cast<std::size_t>(lv) + 1]; ++e) {
        const vid_t lw = nadj[static_cast<std::size_t>(e)];
        vadj[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(lw)]++)] = lv;
      }
    }
    shard.local = BipartiteGraph(n_local, n_nets, std::move(vptr),
                                 std::move(vadj), std::move(nptr),
                                 std::move(nadj));

    // Boundary flags and per-neighbor border sets.
    shard.owned_boundary.assign(static_cast<std::size_t>(n_owned), 0);
    shard.border.assign(shard.neighbors.size(), {});
    std::vector<std::uint8_t> seen(shard.neighbors.size(), 0);
    for (vid_t lu = 0; lu < n_owned; ++lu) {
      std::fill(seen.begin(), seen.end(), 0);
      bool boundary = false;
      for (const vid_t lv : shard.local.nets(lu)) {
        const vid_t v = shard.nets[static_cast<std::size_t>(lv)];
        if (!mixed[static_cast<std::size_t>(v)]) continue;
        boundary = true;
        for (const vid_t lw : shard.local.vtxs(lv)) {
          if (lw < n_owned) continue;  // only ghosts pick the neighbor
          const int rw =
              shard.ghost_owner[static_cast<std::size_t>(lw - n_owned)];
          const int ni = shard.neighbor_index(rw);
          if (ni >= 0 && !seen[static_cast<std::size_t>(ni)]) {
            seen[static_cast<std::size_t>(ni)] = 1;
            shard.border[static_cast<std::size_t>(ni)].push_back(lu);
          }
        }
      }
      if (boundary) shard.owned_boundary[static_cast<std::size_t>(lu)] = 1;
    }

    for (const vid_t u : shard.owned)
      local_col[static_cast<std::size_t>(u)] = kInvalidVertex;
    for (const vid_t w : shard.ghosts)
      local_col[static_cast<std::size_t>(w)] = kInvalidVertex;
  }
  return shards;
}

}  // namespace gcol
