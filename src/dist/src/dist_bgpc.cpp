#include "greedcolor/dist/dist_bgpc.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/dist/shard.hpp"
#include "greedcolor/dist/transport.hpp"
#include "greedcolor/obs/trace.hpp"
#include "greedcolor/robust/fault.hpp"
#include "greedcolor/robust/repair.hpp"
#include "greedcolor/util/marker_set.hpp"
#include "greedcolor/util/parallel.hpp"
#include "greedcolor/util/prng.hpp"
#include "greedcolor/util/timer.hpp"

namespace gcol {

namespace {

/// Mutable per-shard runtime state. Shard states are pairwise disjoint,
/// so the compute phases parallelize over shards with no sharing at all
/// — determinism cannot depend on the OpenMP schedule.
struct ShardState {
  /// Local-id colors (owned live, ghosts as last accepted update).
  std::vector<color_t> colors;
  /// Local-id versions: for owned vertices the stamp sent with their
  /// color (2*superstep on coloring, 2*superstep+1 on uncoloring); for
  /// ghosts the version guard that rejects stale deliveries.
  std::vector<std::uint32_t> version;
  /// Owned vertices finalized by a give-up: they keep their speculative
  /// color, skip conflict detection, and are left to repair_bgpc.
  std::vector<std::uint8_t> dirty;
  /// Owned local ids still awaiting a stable color, ascending.
  std::vector<vid_t> pending;
  MarkerSet forbidden;
  std::uint64_t conflicts = 0;  ///< reduced into DistStats after the loop
};

/// Sequential first-fit over the shard's local CSR slice.
color_t first_fit_local(const BipartiteGraph& local, vid_t lu,
                        const std::vector<color_t>& colors,
                        MarkerSet& forbidden) {
  forbidden.clear();
  for (const vid_t lv : local.nets(lu)) {
    for (const vid_t lw : local.vtxs(lv)) {
      if (lw == lu) continue;
      const color_t c = colors[static_cast<std::size_t>(lw)];
      if (c != kNoColor) forbidden.insert(c);
    }
  }
  color_t col = 0;
  while (forbidden.contains(col)) ++col;
  return col;
}

/// Cumulative batch src -> neighbors[ni]: the full border state the
/// destination depends on, so one delivery heals any number of
/// previously lost exchanges.
BoundaryBatch build_batch(const Shard& shard, const ShardState& state,
                          std::size_t ni, int superstep, int attempt) {
  BoundaryBatch b;
  b.src = shard.id;
  b.dst = shard.neighbors[ni];
  b.superstep = superstep;
  b.attempt = attempt;
  b.updates.reserve(shard.border[ni].size());
  for (const vid_t lu : shard.border[ni])
    b.updates.push_back({shard.global_of(lu),
                         state.colors[static_cast<std::size_t>(lu)],
                         state.version[static_cast<std::size_t>(lu)]});
  return b;
}

}  // namespace

std::vector<int> make_partition(vid_t n, const DistOptions& options) {
  if (options.num_ranks < 1)
    throw std::invalid_argument("make_partition: num_ranks must be >= 1");
  std::vector<int> owner(static_cast<std::size_t>(n));
  if (options.partition == DistOptions::Partition::kBlock) {
    for (vid_t u = 0; u < n; ++u)
      owner[static_cast<std::size_t>(u)] = static_cast<int>(
          (static_cast<std::int64_t>(u) * options.num_ranks) / std::max<vid_t>(n, 1));
  } else {
    for (vid_t u = 0; u < n; ++u)
      owner[static_cast<std::size_t>(u)] = static_cast<int>(
          mix64(options.seed ^ static_cast<std::uint64_t>(u)) %
          static_cast<std::uint64_t>(options.num_ranks));
  }
  return owner;
}

DistResult color_bgpc_distributed(const BipartiteGraph& g,
                                  const DistOptions& options) {
  const vid_t n = g.num_vertices();
  const std::vector<int> owner = make_partition(n, options);
  // gcol-trace seam (see bgpc.cpp): driver phases land on the engine
  // tracks, per-shard compute on one track per shard.
  obs::Tracer* const tracer = options.tracer;
  if (tracer != nullptr) tracer->attach(max_threads());
  WallTimer total;

  DistResult result;
  result.colors.assign(static_cast<std::size_t>(n), kNoColor);

  const int num_shards = options.num_ranks;
  const std::vector<Shard> shards = make_shards(g, owner, num_shards);
  const auto marker_cap =
      static_cast<std::size_t>(bgpc_color_bound(g)) + 2;

  std::vector<ShardState> states(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Shard& shard = shards[s];
    ShardState& st = states[s];
    st.colors.assign(static_cast<std::size_t>(shard.num_local()), kNoColor);
    st.version.assign(static_cast<std::size_t>(shard.num_local()), 0);
    st.dirty.assign(static_cast<std::size_t>(shard.num_owned()), 0);
    st.forbidden.ensure_capacity(marker_cap);
    for (vid_t lu = 0; lu < shard.num_owned(); ++lu)
      if (shard.owned_boundary[static_cast<std::size_t>(lu)])
        st.pending.push_back(lu);
    result.stats.boundary_vertices += static_cast<vid_t>(st.pending.size());
    result.stats.interior_vertices +=
        shard.num_owned() - static_cast<vid_t>(st.pending.size());
  }

  // Interior phase: two interior vertices of different shards never
  // share a net, so shard-local greedy is conflict-free and needs no
  // messages. A single-shard run has no boundary at all and first-fits
  // in ascending global order — exactly the sequential schedule.
  const int num_states = static_cast<int>(states.size());
  GCOL_TRACE_BEGIN(tracer, "dist.interior",
                   static_cast<std::uint64_t>(result.stats.interior_vertices));
#pragma omp parallel for schedule(static) default(none) \
    shared(shards, states) firstprivate(num_states, tracer)
  for (int s = 0; s < num_states; ++s) {
    const Shard& shard = shards[static_cast<std::size_t>(s)];
    ShardState& st = states[static_cast<std::size_t>(s)];
    GCOL_TRACE_BEGIN(tracer, "dist.interior",
                     static_cast<std::uint64_t>(shard.num_owned()), s);
    for (vid_t lu = 0; lu < shard.num_owned(); ++lu) {
      if (shard.owned_boundary[static_cast<std::size_t>(lu)]) continue;
      st.colors[static_cast<std::size_t>(lu)] =
          first_fit_local(shard.local, lu, st.colors, st.forbidden);
    }
    GCOL_TRACE_END(tracer, "dist.interior", s);
  }
  GCOL_TRACE_END(tracer, "dist.interior");

  // Transport stack: the real transport, optionally wrapped by the
  // deterministic chaos decorator.
  std::unique_ptr<Transport> base;
  if (options.transport == DistOptions::TransportKind::kSocket)
    base = std::make_unique<LoopbackTransport>(num_shards);
  else
    base = std::make_unique<MailboxTransport>(num_shards);
  const FaultPlan* faults =
      options.fault_plan && options.fault_plan->any_dist_faults()
          ? options.fault_plan
          : nullptr;
  std::unique_ptr<LossyTransport> lossy;
  if (faults)
    lossy = std::make_unique<LossyTransport>(*base, *faults, num_shards);
  Transport& net = lossy ? static_cast<Transport&>(*lossy) : *base;

  const auto past_deadline = [&] {
    return options.deadline_seconds > 0.0 &&
           total.seconds() >= options.deadline_seconds;
  };

  std::size_t remaining = 0;
  for (const auto& st : states) remaining += st.pending.size();

  // awaiting[d][ni] == 1 while shard d still expects this superstep's
  // batch from its ni-th neighbor.
  std::vector<std::vector<std::uint8_t>> awaiting(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s)
    awaiting[s].assign(shards[s].neighbors.size(), 0);

  int superstep = 0;
  std::uint64_t traced_drops = 0;  // LossyTransport drop counter watermark
  while (remaining > 0 && superstep < options.max_supersteps &&
         !past_deadline()) {
    ++superstep;
    GCOL_TRACE_BEGIN(tracer, "dist.superstep",
                     static_cast<std::uint64_t>(superstep));

    // P1 — speculate: each shard first-fits its pending vertices in
    // ascending order against live local colors and (one superstep
    // stale) ghost colors. The staleness is what creates distributed
    // conflicts, exactly as in refs [27], [28].
    GCOL_TRACE_BEGIN(tracer, "dist.speculate",
                     static_cast<std::uint64_t>(remaining));
#pragma omp parallel for schedule(static) default(none) \
    shared(shards, states) firstprivate(num_states, superstep, tracer)
    for (int s = 0; s < num_states; ++s) {
      const Shard& shard = shards[static_cast<std::size_t>(s)];
      ShardState& st = states[static_cast<std::size_t>(s)];
      GCOL_TRACE_BEGIN(tracer, "dist.speculate",
                       static_cast<std::uint64_t>(st.pending.size()), s);
      for (const vid_t lu : st.pending) {
        st.colors[static_cast<std::size_t>(lu)] =
            first_fit_local(shard.local, lu, st.colors, st.forbidden);
        st.version[static_cast<std::size_t>(lu)] =
            2u * static_cast<std::uint32_t>(superstep);
      }
      GCOL_TRACE_END(tracer, "dist.speculate", s);
    }
    GCOL_TRACE_END(tracer, "dist.speculate");

    // X — exchange, driver thread only. One cumulative batch per
    // neighbor pair; missing batches are retried with (simulated)
    // exponential backoff, and after max_retries the receiver gives up
    // and finalizes the affected border as dirty.
    net.advance_to(superstep);
    GCOL_TRACE_BEGIN(tracer, "dist.exchange",
                     static_cast<std::uint64_t>(superstep));
    for (std::size_t s = 0; s < shards.size(); ++s) {
      const Shard& shard = shards[s];
      for (std::size_t ni = 0; ni < shard.neighbors.size(); ++ni) {
        BoundaryBatch b = build_batch(shard, states[s], ni, superstep, 0);
        result.stats.messages_sent += b.updates.size();
        GCOL_TRACE_EVENT(tracer, "dist.send",
                         static_cast<std::uint64_t>(b.updates.size()),
                         static_cast<int>(s));
        net.send(b);
      }
      std::fill(awaiting[s].begin(), awaiting[s].end(), 1);
    }

    int attempt = 0;
    while (true) {
      net.pump();
      // Drops happen inside the transport; surface them as instants by
      // watching the lossy counter move across pumps.
      if (lossy && lossy->counters().dropped > traced_drops) {
        GCOL_TRACE_EVENT(tracer, "dist.drop",
                         lossy->counters().dropped - traced_drops);
        traced_drops = lossy->counters().dropped;
      }
      for (std::size_t d = 0; d < shards.size(); ++d) {
        const Shard& shard = shards[d];
        ShardState& st = states[d];
        for (const BoundaryBatch& b : net.receive(static_cast<int>(d))) {
          result.stats.messages_delivered += b.updates.size();
          GCOL_TRACE_EVENT(tracer, "dist.deliver",
                           static_cast<std::uint64_t>(b.updates.size()),
                           static_cast<int>(d));
          if (b.superstep == superstep) {
            const int ni = shard.neighbor_index(b.src);
            if (ni >= 0) awaiting[d][static_cast<std::size_t>(ni)] = 0;
          }
          // Batches from earlier supersteps (delay victims) still flow
          // through the version guard: cumulative content means any
          // entry newer than the ghost's copy is worth applying.
          for (const BoundaryUpdate& u : b.updates) {
            const vid_t gl = shard.ghost_local(u.vertex);
            if (gl == kInvalidVertex) continue;
            if (u.version > st.version[static_cast<std::size_t>(gl)]) {
              st.version[static_cast<std::size_t>(gl)] = u.version;
              st.colors[static_cast<std::size_t>(gl)] = u.color;
            } else {
              ++result.stats.messages_stale_ignored;
            }
          }
        }
      }
      std::vector<std::pair<int, int>> missing;  // (src, dst)
      for (std::size_t d = 0; d < shards.size(); ++d)
        for (std::size_t ni = 0; ni < awaiting[d].size(); ++ni)
          if (awaiting[d][ni])
            missing.emplace_back(shards[d].neighbors[ni],
                                 static_cast<int>(d));
      if (missing.empty()) break;
      std::sort(missing.begin(), missing.end());
      if (attempt >= options.max_retries) {
        GCOL_TRACE_EVENT(tracer, "dist.giveup",
                         static_cast<std::uint64_t>(missing.size()));
        // Give up: the receiver finalizes every border vertex whose
        // conflict detection depends on the silent sender. They keep
        // their speculative colors; repair_bgpc settles any clash.
        for (const auto& [src, dst] : missing) {
          const Shard& shard = shards[static_cast<std::size_t>(dst)];
          ShardState& st = states[static_cast<std::size_t>(dst)];
          const int ni = shard.neighbor_index(src);
          for (const vid_t lu : shard.border[static_cast<std::size_t>(ni)]) {
            if (!st.dirty[static_cast<std::size_t>(lu)]) {
              st.dirty[static_cast<std::size_t>(lu)] = 1;
              ++result.stats.dirty_boundary;
            }
          }
          awaiting[static_cast<std::size_t>(dst)]
                  [static_cast<std::size_t>(ni)] = 0;
        }
        break;
      }
      ++attempt;
      const auto shift =
          static_cast<unsigned>(std::min(attempt - 1, 20));
      const std::uint64_t backoff = std::min(
          options.backoff_cap_us, options.backoff_base_us << shift);
      GCOL_TRACE_EVENT(tracer, "dist.retry",
                       static_cast<std::uint64_t>(attempt));
      GCOL_TRACE_EVENT(tracer, "dist.backoff_us", backoff);
      for (const auto& [src, dst] : missing) {
        const Shard& shard = shards[static_cast<std::size_t>(src)];
        const auto ni =
            static_cast<std::size_t>(shard.neighbor_index(dst));
        BoundaryBatch b =
            build_batch(shard, states[static_cast<std::size_t>(src)], ni,
                        superstep, attempt);
        result.stats.messages_sent += b.updates.size();
        GCOL_TRACE_EVENT(tracer, "dist.send",
                         static_cast<std::uint64_t>(b.updates.size()), src);
        ++result.stats.retries;
        result.stats.backoff_us_total += backoff;
        result.retry_trace.push_back(
            {superstep, src, dst, attempt, backoff});
        net.send(b);
      }
    }

    GCOL_TRACE_END(tracer, "dist.exchange");

    // P2 — conflict detection: an owned vertex loses iff a ghost on a
    // shared net holds the same color with a smaller global id (the
    // static tie-break of refs [27], [28]); at most one side of any
    // clash uncolors. Dirty vertices are final and skipped.
    GCOL_TRACE_BEGIN(tracer, "dist.conflict",
                     static_cast<std::uint64_t>(superstep));
#pragma omp parallel for schedule(static) default(none) \
    shared(shards, states) firstprivate(num_states, superstep, tracer)
    for (int s = 0; s < num_states; ++s) {
      const Shard& shard = shards[static_cast<std::size_t>(s)];
      ShardState& st = states[static_cast<std::size_t>(s)];
      const vid_t n_owned = shard.num_owned();
      GCOL_TRACE_BEGIN(tracer, "dist.conflict",
                       static_cast<std::uint64_t>(n_owned), s);
      for (vid_t lu = 0; lu < n_owned; ++lu) {
        if (!shard.owned_boundary[static_cast<std::size_t>(lu)] ||
            st.dirty[static_cast<std::size_t>(lu)])
          continue;
        const color_t cu = st.colors[static_cast<std::size_t>(lu)];
        if (cu == kNoColor) continue;
        const vid_t gu = shard.global_of(lu);
        bool lose = false;
        for (const vid_t lv : shard.local.nets(lu)) {
          for (const vid_t lw : shard.local.vtxs(lv)) {
            if (lw < n_owned) continue;  // only ghosts can clash here
            if (st.colors[static_cast<std::size_t>(lw)] == cu &&
                shard.global_of(lw) < gu) {
              lose = true;
              break;
            }
          }
          if (lose) break;
        }
        if (lose) {
          st.colors[static_cast<std::size_t>(lu)] = kNoColor;
          st.version[static_cast<std::size_t>(lu)] =
              2u * static_cast<std::uint32_t>(superstep) + 1u;
          ++st.conflicts;
        }
      }
      // Safety net: a dirty vertex is finalized, so it must hold a
      // color (P1 colors every pending vertex before any give-up, so
      // this loop is normally empty).
      for (vid_t lu = 0; lu < n_owned; ++lu) {
        if (!st.dirty[static_cast<std::size_t>(lu)] ||
            st.colors[static_cast<std::size_t>(lu)] != kNoColor)
          continue;
        st.colors[static_cast<std::size_t>(lu)] =
            first_fit_local(shard.local, lu, st.colors, st.forbidden);
        st.version[static_cast<std::size_t>(lu)] =
            2u * static_cast<std::uint32_t>(superstep);
      }
      st.pending.clear();
      for (vid_t lu = 0; lu < n_owned; ++lu)
        if (shard.owned_boundary[static_cast<std::size_t>(lu)] &&
            !st.dirty[static_cast<std::size_t>(lu)] &&
            st.colors[static_cast<std::size_t>(lu)] == kNoColor)
          st.pending.push_back(lu);
      GCOL_TRACE_END(tracer, "dist.conflict", s);
    }
    GCOL_TRACE_END(tracer, "dist.conflict");

    remaining = 0;
    for (const auto& st : states) remaining += st.pending.size();
    GCOL_TRACE_END(tracer, "dist.superstep");
  }

  for (const auto& st : states) result.stats.conflicts += st.conflicts;
  if (lossy) {
    result.stats.messages_dropped = lossy->counters().dropped;
    result.stats.messages_duplicated = lossy->counters().duplicated;
  }

  // Gather owned colors into the global array.
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Shard& shard = shards[s];
    for (vid_t lu = 0; lu < shard.num_owned(); ++lu)
      result.colors[static_cast<std::size_t>(
          shard.owned[static_cast<std::size_t>(lu)])] =
          states[s].colors[static_cast<std::size_t>(lu)];
  }

  if (remaining > 0) {
    // Bottom of the degradation ladder: max_supersteps or the deadline
    // expired with vertices still pending — finish them sequentially
    // against live global colors (still valid, extra colors ok).
    result.stats.fallback = true;
    result.stats.deadline_hit = past_deadline();
    result.degraded = true;
    GCOL_TRACE_EVENT(tracer, "dist.fallback",
                     static_cast<std::uint64_t>(remaining));
    GCOL_TRACE_BEGIN(tracer, "dist.sequential_cleanup",
                     static_cast<std::uint64_t>(remaining));
    MarkerSet forbidden(marker_cap);
    for (vid_t u = 0; u < n; ++u) {
      if (result.colors[static_cast<std::size_t>(u)] != kNoColor) continue;
      forbidden.clear();
      for (const vid_t v : g.nets(u)) {
        for (const vid_t w : g.vtxs(v)) {
          if (w == u) continue;
          const color_t cw = result.colors[static_cast<std::size_t>(w)];
          if (cw != kNoColor) forbidden.insert(cw);
        }
      }
      color_t col = 0;
      while (forbidden.contains(col)) ++col;
      result.colors[static_cast<std::size_t>(u)] = col;
    }
    GCOL_TRACE_END(tracer, "dist.sequential_cleanup");
  }

  if (result.stats.dirty_boundary > 0) {
    // Middle rung: give-ups finalized vertices without full conflict
    // information; one repair pass settles whatever actually clashed.
    GCOL_TRACE_BEGIN(tracer, "dist.repair",
                     static_cast<std::uint64_t>(result.stats.dirty_boundary));
    const RepairStats rs = repair_bgpc(g, result.colors);
    GCOL_TRACE_END(tracer, "dist.repair");
    GCOL_TRACE_EVENT(tracer, "dist.repaired",
                     static_cast<std::uint64_t>(rs.repaired));
    result.stats.repair_recolored = rs.repaired;
    result.degraded = true;
  }

  result.stats.supersteps = superstep;
  result.num_colors = count_colors(result.colors);
  result.total_seconds = total.seconds();
  return result;
}

}  // namespace gcol
