#include "greedcolor/dist/dist_bgpc.hpp"

#include <algorithm>
#include <stdexcept>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/robust/fault.hpp"
#include "greedcolor/util/marker_set.hpp"
#include "greedcolor/util/prng.hpp"
#include "greedcolor/util/timer.hpp"

namespace gcol {

namespace {

/// First-fit against an explicit color reader (local-live or
/// remote-stale, the caller decides per neighbor).
template <typename ColorReader>
color_t first_fit(const BipartiteGraph& g, vid_t u, MarkerSet& forbidden,
                  ColorReader read) {
  forbidden.clear();
  for (const vid_t v : g.nets(u)) {
    for (const vid_t w : g.vtxs(v)) {
      if (w == u) continue;
      const color_t cw = read(w);
      if (cw != kNoColor) forbidden.insert(cw);
    }
  }
  color_t col = 0;
  while (forbidden.contains(col)) ++col;
  return col;
}

}  // namespace

std::vector<int> make_partition(vid_t n, const DistOptions& options) {
  if (options.num_ranks < 1)
    throw std::invalid_argument("make_partition: num_ranks must be >= 1");
  std::vector<int> owner(static_cast<std::size_t>(n));
  if (options.partition == DistOptions::Partition::kBlock) {
    for (vid_t u = 0; u < n; ++u)
      owner[static_cast<std::size_t>(u)] = static_cast<int>(
          (static_cast<std::int64_t>(u) * options.num_ranks) / std::max<vid_t>(n, 1));
  } else {
    for (vid_t u = 0; u < n; ++u)
      owner[static_cast<std::size_t>(u)] = static_cast<int>(
          mix64(options.seed ^ static_cast<std::uint64_t>(u)) %
          static_cast<std::uint64_t>(options.num_ranks));
  }
  return owner;
}

DistResult color_bgpc_distributed(const BipartiteGraph& g,
                                  const DistOptions& options) {
  const vid_t n = g.num_vertices();
  const std::vector<int> owner = make_partition(n, options);
  WallTimer total;

  DistResult result;
  result.colors.assign(static_cast<std::size_t>(n), kNoColor);

  // Classify: u is boundary iff some net of u touches a foreign column.
  // Precompute per-net "touches ranks" lazily via a scan.
  std::vector<std::uint8_t> boundary(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> mixed_nets;
  for (vid_t v = 0; v < g.num_nets(); ++v) {
    const auto vs = g.vtxs(v);
    if (vs.empty()) continue;
    const int first = owner[static_cast<std::size_t>(vs.front())];
    bool mixed = false;
    for (const vid_t w : vs) {
      if (owner[static_cast<std::size_t>(w)] != first) {
        mixed = true;
        break;
      }
    }
    if (mixed) {
      mixed_nets.push_back(v);
      for (const vid_t w : vs) boundary[static_cast<std::size_t>(w)] = 1;
    }
  }

  // Per-rank vertex lists in id order (deterministic local schedules).
  std::vector<std::vector<vid_t>> interior(
      static_cast<std::size_t>(options.num_ranks));
  std::vector<std::vector<vid_t>> pending(
      static_cast<std::size_t>(options.num_ranks));
  for (vid_t u = 0; u < n; ++u) {
    auto& bucket = boundary[static_cast<std::size_t>(u)]
                       ? pending[static_cast<std::size_t>(
                             owner[static_cast<std::size_t>(u)])]
                       : interior[static_cast<std::size_t>(
                             owner[static_cast<std::size_t>(u)])];
    bucket.push_back(u);
    if (boundary[static_cast<std::size_t>(u)])
      ++result.stats.boundary_vertices;
    else
      ++result.stats.interior_vertices;
  }

  const auto marker_cap =
      static_cast<std::size_t>(bgpc_color_bound(g)) + 2;
  MarkerSet forbidden(marker_cap);
  MarkerSet rank_marks(static_cast<std::size_t>(options.num_ranks));
  color_t* c = result.colors.data();

  // Phase 1: interior vertices — two interior vertices of different
  // ranks never share a net, so rank-local greedy is conflict-free and
  // needs no messages.
  for (const auto& verts : interior) {
    for (const vid_t u : verts) {
      c[static_cast<std::size_t>(u)] = first_fit(
          g, u, forbidden, [&](vid_t w) { return c[static_cast<std::size_t>(w)]; });
    }
  }

  // Phase 2: boundary supersteps. Remote colors are read from the
  // previous superstep's snapshot; local colors are live. After every
  // rank has speculated, conflicts are resolved globally (smaller id
  // keeps its color — the static tie-break of refs [27], [28]).
  std::vector<color_t> snapshot = result.colors;
  int superstep = 0;
  std::size_t remaining = 0;
  for (const auto& verts : pending) remaining += verts.size();

  const FaultPlan* faults =
      options.fault_plan && options.fault_plan->any_dist_faults()
          ? options.fault_plan
          : nullptr;
  // Updates the fault plan reorders are delivered at the *next*
  // exchange, possibly overwriting a newer color (out-of-order).
  std::vector<std::pair<vid_t, color_t>> deferred;
  const auto past_deadline = [&] {
    return options.deadline_seconds > 0.0 &&
           total.seconds() >= options.deadline_seconds;
  };

  while (remaining > 0 && superstep < options.max_supersteps &&
         !past_deadline()) {
    ++superstep;
    // Speculative coloring, rank by rank (each rank is sequential; the
    // simulation's determinism comes from this fixed order, which does
    // not affect the semantics — ranks only read remote *snapshot*
    // colors anyway).
    for (int rank = 0; rank < options.num_ranks; ++rank) {
      for (const vid_t u : pending[static_cast<std::size_t>(rank)]) {
        if (c[static_cast<std::size_t>(u)] != kNoColor) continue;
        const color_t col = first_fit(g, u, forbidden, [&](vid_t w) {
          return owner[static_cast<std::size_t>(w)] == rank
                     ? c[static_cast<std::size_t>(w)]
                     : snapshot[static_cast<std::size_t>(w)];
        });
        c[static_cast<std::size_t>(u)] = col;
        // One notification per distinct remote rank sharing a net.
        rank_marks.clear();
        for (const vid_t v : g.nets(u)) {
          for (const vid_t w : g.vtxs(v)) {
            const int rw = owner[static_cast<std::size_t>(w)];
            if (rw != rank && !rank_marks.contains(rw)) {
              rank_marks.insert(rw);
              ++result.stats.messages;
            }
          }
        }
      }
    }

    // Global conflict resolution, net-based over the rank-crossing
    // nets only (same-rank clashes are impossible: a rank reads its own
    // colors live). The first — i.e. smallest-id — occurrence of each
    // color keeps it, the static tie-break of refs [27], [28].
    for (const vid_t v : mixed_nets) {
      forbidden.clear();
      for (const vid_t u : g.vtxs(v)) {
        const color_t cu = c[static_cast<std::size_t>(u)];
        if (cu == kNoColor) continue;
        if (forbidden.contains(cu)) {
          c[static_cast<std::size_t>(u)] = kNoColor;
          ++result.stats.conflicts;
        } else {
          forbidden.insert(cu);
        }
      }
    }

    remaining = 0;
    for (const auto& verts : pending)
      for (const vid_t u : verts)
        remaining += c[static_cast<std::size_t>(u)] == kNoColor;

    // End-of-superstep exchange. Interior colors are final before the
    // loop, so only boundary notifications can be dropped or reordered.
    // Faults only ever make the snapshot *staler*; the global conflict
    // resolution above reads live colors, so validity is unaffected —
    // convergence is what degrades (watchdog territory).
    if (faults) {
      for (const auto& [u, col] : deferred)
        snapshot[static_cast<std::size_t>(u)] = col;
      deferred.clear();
      for (vid_t u = 0; u < n; ++u) {
        if (!boundary[static_cast<std::size_t>(u)]) continue;
        const color_t live = c[static_cast<std::size_t>(u)];
        if (snapshot[static_cast<std::size_t>(u)] == live) continue;
        if (faults->drop_update(superstep, u)) {
          ++result.stats.dropped_updates;
        } else if (faults->reorder_update(superstep, u)) {
          deferred.emplace_back(u, live);
          ++result.stats.reordered_updates;
        } else {
          snapshot[static_cast<std::size_t>(u)] = live;
        }
      }
    } else {
      snapshot = result.colors;
    }
  }

  if (remaining > 0) {
    // Safety valve: finish sequentially (still valid, extra colors ok).
    result.stats.fallback = true;
    result.stats.deadline_hit = past_deadline();
    result.degraded = true;
    for (const auto& verts : pending) {
      for (const vid_t u : verts) {
        if (c[static_cast<std::size_t>(u)] != kNoColor) continue;
        c[static_cast<std::size_t>(u)] = first_fit(
            g, u, forbidden,
            [&](vid_t w) { return c[static_cast<std::size_t>(w)]; });
      }
    }
  }

  result.stats.supersteps = superstep;
  result.num_colors = count_colors(result.colors);
  result.total_seconds = total.seconds();
  return result;
}

}  // namespace gcol
