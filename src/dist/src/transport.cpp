#include "greedcolor/dist/transport.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "greedcolor/robust/error.hpp"
#include "greedcolor/robust/fault.hpp"

namespace gcol {

namespace {

/// Fault-decision key for a batch: one Bernoulli stream per (src, dst)
/// pair, advanced by superstep and attempt. Retransmissions must roll
/// *fresh* decisions (attempt is mixed into the step), otherwise a
/// dropped batch would stay dropped forever and bounded retry could
/// never help; attempts are capped so the encoding stays dense.
vid_t batch_key(const BoundaryBatch& b, int num_shards) {
  return static_cast<vid_t>(b.src * num_shards + b.dst);
}

int decision_step(const BoundaryBatch& b) {
  return b.superstep * 64 + std::min(b.attempt, 63);
}

void append_raw(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}

template <typename T>
T read_raw(const char* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

}  // namespace

// ---- MailboxTransport ----

MailboxTransport::MailboxTransport(int num_shards)
    : inbox_(static_cast<std::size_t>(num_shards)) {}

void MailboxTransport::send(const BoundaryBatch& batch) {
  inbox_[static_cast<std::size_t>(batch.dst)].push_back(batch);
}

std::vector<BoundaryBatch> MailboxTransport::receive(int dst) {
  auto& box = inbox_[static_cast<std::size_t>(dst)];
  std::vector<BoundaryBatch> out(box.begin(), box.end());
  box.clear();
  return out;
}

// ---- LoopbackTransport ----

LoopbackTransport::LoopbackTransport(int num_shards)
    : inbox_(static_cast<std::size_t>(num_shards)) {
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_) != 0)
    raise(ErrorCode::kIoError, "LoopbackTransport",
          std::string("socketpair: ") + std::strerror(errno));
  for (const int fd : fds_) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
      raise(ErrorCode::kIoError, "LoopbackTransport",
            std::string("fcntl O_NONBLOCK: ") + std::strerror(errno));
  }
}

LoopbackTransport::~LoopbackTransport() {
  for (const int fd : fds_)
    if (fd >= 0) ::close(fd);
}

void LoopbackTransport::send(const BoundaryBatch& batch) {
  // Frame: u32 payload length, then src/dst/superstep/attempt (i32),
  // update count (u32), and count (vertex, color, version) triples.
  const std::uint32_t count =
      static_cast<std::uint32_t>(batch.updates.size());
  const std::uint32_t payload =
      4 * sizeof(std::int32_t) + sizeof(std::uint32_t) +
      count * (sizeof(vid_t) + sizeof(color_t) + sizeof(std::uint32_t));
  append_raw(outbuf_, &payload, sizeof payload);
  const std::int32_t header[4] = {batch.src, batch.dst, batch.superstep,
                                  batch.attempt};
  append_raw(outbuf_, header, sizeof header);
  append_raw(outbuf_, &count, sizeof count);
  for (const BoundaryUpdate& u : batch.updates) {
    append_raw(outbuf_, &u.vertex, sizeof u.vertex);
    append_raw(outbuf_, &u.color, sizeof u.color);
    append_raw(outbuf_, &u.version, sizeof u.version);
  }
}

void LoopbackTransport::pump() {
  // Alternate non-blocking writes and reads until the outgoing buffer
  // is drained: the reader side frees kernel buffer space, so a payload
  // larger than the socket buffer flows through in multiple rounds.
  while (true) {
    bool progress = false;
    while (!outbuf_.empty()) {
      const ssize_t w = ::write(fds_[0], outbuf_.data(), outbuf_.size());
      if (w > 0) {
        outbuf_.erase(0, static_cast<std::size_t>(w));
        progress = true;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else {
        raise(ErrorCode::kIoError, "LoopbackTransport",
              std::string("write: ") + std::strerror(errno));
      }
    }
    char buf[1 << 16];
    while (true) {
      const ssize_t r = ::read(fds_[1], buf, sizeof buf);
      if (r > 0) {
        inbuf_.append(buf, static_cast<std::size_t>(r));
        progress = true;
      } else if (r == 0 ||
                 (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))) {
        break;
      } else {
        raise(ErrorCode::kIoError, "LoopbackTransport",
              std::string("read: ") + std::strerror(errno));
      }
    }
    // Reassemble complete frames; a partial tail waits for more bytes.
    std::size_t pos = 0;
    while (inbuf_.size() - pos >= sizeof(std::uint32_t)) {
      const auto payload = read_raw<std::uint32_t>(inbuf_.data() + pos);
      if (inbuf_.size() - pos - sizeof payload < payload) break;
      const char* p = inbuf_.data() + pos + sizeof payload;
      BoundaryBatch batch;
      batch.src = read_raw<std::int32_t>(p);
      batch.dst = read_raw<std::int32_t>(p + 4);
      batch.superstep = read_raw<std::int32_t>(p + 8);
      batch.attempt = read_raw<std::int32_t>(p + 12);
      const auto count = read_raw<std::uint32_t>(p + 16);
      p += 20;
      batch.updates.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        batch.updates[i].vertex = read_raw<vid_t>(p);
        batch.updates[i].color = read_raw<color_t>(p + sizeof(vid_t));
        batch.updates[i].version = read_raw<std::uint32_t>(
            p + sizeof(vid_t) + sizeof(color_t));
        p += sizeof(vid_t) + sizeof(color_t) + sizeof(std::uint32_t);
      }
      if (batch.dst < 0 ||
          batch.dst >= static_cast<int>(inbox_.size()))
        raise(ErrorCode::kInternalInvariant, "LoopbackTransport",
              "frame routed to unknown shard " + std::to_string(batch.dst));
      inbox_[static_cast<std::size_t>(batch.dst)].push_back(
          std::move(batch));
      pos += sizeof payload + payload;
    }
    inbuf_.erase(0, pos);
    if (outbuf_.empty() || !progress) break;
  }
}

std::vector<BoundaryBatch> LoopbackTransport::receive(int dst) {
  auto& box = inbox_[static_cast<std::size_t>(dst)];
  std::vector<BoundaryBatch> out(std::make_move_iterator(box.begin()),
                                 std::make_move_iterator(box.end()));
  box.clear();
  return out;
}

// ---- LossyTransport ----

LossyTransport::LossyTransport(Transport& inner, const FaultPlan& plan,
                               int num_shards)
    : inner_(inner), plan_(plan), num_shards_(num_shards) {}

void LossyTransport::send(const BoundaryBatch& batch) {
  const vid_t key = batch_key(batch, num_shards_);
  const int step = decision_step(batch);
  const bool partitioned =
      plan_.partition_supersteps > 0 && plan_.partition_shard == batch.src &&
      batch.superstep >= plan_.partition_start_superstep &&
      batch.superstep <
          plan_.partition_start_superstep + plan_.partition_supersteps;
  if (partitioned || plan_.drop_update(step, key)) {
    counters_.dropped += batch.updates.size();
    return;
  }
  if (plan_.reorder_update(step, key)) {
    counters_.delayed += batch.updates.size();
    delayed_.push_back(
        {batch.superstep + std::max(1, plan_.delay_update_supersteps),
         batch});
    return;
  }
  inner_.send(batch);
  if (plan_.duplicate_update(step, key)) {
    counters_.duplicated += batch.updates.size();
    inner_.send(batch);
  }
}

void LossyTransport::pump() { inner_.pump(); }

std::vector<BoundaryBatch> LossyTransport::receive(int dst) {
  return inner_.receive(dst);
}

void LossyTransport::advance_to(int superstep) {
  superstep_ = superstep;
  // Release everything that has served its delay; the receiver's
  // version guard decides whether the contents are still useful.
  auto it = delayed_.begin();
  while (it != delayed_.end()) {
    if (it->due_superstep <= superstep_) {
      inner_.send(it->batch);
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
  inner_.advance_to(superstep);
}

}  // namespace gcol
