// Shard: one rank's slice of a bipartite coloring instance.
//
// A shard owns a contiguous-or-hashed subset of the column (vertex)
// side, produced by make_partition, plus the *ghost* columns it must
// observe: every foreign column sharing a mixed net with an owned one.
// The slice is materialized as a real BipartiteGraph over local ids —
// owned columns first, ghosts after — so the per-shard coloring kernels
// run on shard-local memory only and never dereference the global
// graph. All cross-shard information flows through the Transport layer
// as end-of-superstep boundary batches (see dist_bgpc.cpp); this header
// is deliberately transport-free.
//
// Local id convention: [0, num_owned()) are owned columns in ascending
// global order (so a one-shard run first-fits in exactly the sequential
// order), [num_owned(), num_local()) are ghosts, also ascending.
#pragma once

#include <cstdint>
#include <vector>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

struct Shard {
  int id = 0;
  int num_shards = 1;

  /// Global ids of the owned columns, ascending.
  std::vector<vid_t> owned;
  /// Global ids of the ghost columns (foreign columns sharing a mixed
  /// net with an owned column), ascending.
  std::vector<vid_t> ghosts;
  /// Owner shard of each ghost (parallel to `ghosts`).
  std::vector<int> ghost_owner;
  /// Global ids of the nets present in the slice (every net incident to
  /// an owned column), ascending.
  std::vector<vid_t> nets;

  /// The slice itself: vertices are owned+ghost columns under local
  /// ids, nets are the shard's nets under local ids. Ghost adjacency is
  /// restricted to the shard's nets, so both CSR halves agree.
  BipartiteGraph local;

  /// Per owned local id: 1 iff the column touches a mixed net (and thus
  /// participates in the superstep exchange).
  std::vector<std::uint8_t> owned_boundary;

  /// Neighbor shards (those sharing at least one mixed net), ascending.
  std::vector<int> neighbors;
  /// border[i]: owned local ids sharing a mixed net with a column of
  /// neighbors[i], ascending. This is simultaneously the set whose
  /// colors neighbors[i] needs (the outgoing batch) and the set whose
  /// conflict detection depends on ghosts owned by neighbors[i] (the
  /// vertices marked dirty when that neighbor stays unreachable).
  std::vector<std::vector<vid_t>> border;

  [[nodiscard]] vid_t num_owned() const {
    return static_cast<vid_t>(owned.size());
  }
  [[nodiscard]] vid_t num_ghosts() const {
    return static_cast<vid_t>(ghosts.size());
  }
  [[nodiscard]] vid_t num_local() const {
    return num_owned() + num_ghosts();
  }

  /// Global id of a local column id (owned or ghost).
  [[nodiscard]] vid_t global_of(vid_t local) const {
    return local < num_owned()
               ? owned[static_cast<std::size_t>(local)]
               : ghosts[static_cast<std::size_t>(local - num_owned())];
  }

  /// Local id of a ghost by global id, or kInvalidVertex when the
  /// column is not a ghost of this shard (binary search; deterministic).
  [[nodiscard]] vid_t ghost_local(vid_t global) const;

  /// Index of `shard` in `neighbors`, or -1.
  [[nodiscard]] int neighbor_index(int shard) const;
};

/// Partition g's column side into shards according to `owner` (from
/// make_partition): classifies mixed nets, collects ghosts, and builds
/// each shard's local CSR slice. Throws Error(kInvalidArgument) when
/// owner.size() != g.num_vertices() or an owner id is out of range.
[[nodiscard]] std::vector<Shard> make_shards(const BipartiteGraph& g,
                                             const std::vector<int>& owner,
                                             int num_shards);

}  // namespace gcol
