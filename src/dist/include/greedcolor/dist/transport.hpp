// Transport: the boundary-exchange seam of the sharded BGPC runtime.
//
// Shards never touch each other's memory; the only way color
// information crosses a shard boundary is a BoundaryBatch pushed
// through this interface. Two real transports implement it — an
// in-process mailbox (no locks: sends and pumps are driver-phase
// serialized, shard compute phases never touch the transport) and a
// loopback byte transport that frames every batch through a kernel
// socketpair, exercising real serialization, short reads/writes, and
// flow control on the same code path an MPI/socket backend would use.
// LossyTransport decorates either with deterministic FaultPlan-driven
// drop / duplicate / delay / reorder decisions so every chaos scenario
// replays bit-for-bit.
//
// This header is private to src/dist: everything outside configures the
// runtime through DistOptions (lint rule R006 enforces the confinement,
// mirroring R005's accessor-seam rule).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "greedcolor/util/types.hpp"

namespace gcol {

struct FaultPlan;  // greedcolor/robust/fault.hpp

/// One column's color as of `version` (a Lamport-style per-vertex
/// change counter: 2*superstep for a coloring, 2*superstep+1 for a
/// conflict uncoloring — strictly monotone per vertex, so receivers
/// can discard stale or duplicated deliveries instead of letting an
/// out-of-order batch overwrite newer state).
struct BoundaryUpdate {
  vid_t vertex = 0;  ///< global column id
  color_t color = kNoColor;
  std::uint32_t version = 0;
};

/// End-of-superstep batch src -> dst. Batches are *cumulative*: they
/// carry the full border state relevant to dst, so one successful
/// delivery heals any number of previously lost exchanges.
struct BoundaryBatch {
  int src = 0;
  int dst = 0;
  int superstep = 0;  ///< sequence number per (src, dst) pair
  int attempt = 0;    ///< 0 = first send, >0 = retransmission
  std::vector<BoundaryUpdate> updates;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueue a batch for delivery. May buffer; pump() moves traffic.
  virtual void send(const BoundaryBatch& batch) = 0;

  /// Move in-flight traffic toward the destination inboxes.
  virtual void pump() = 0;

  /// Drain every batch delivered to shard `dst`, in delivery order.
  virtual std::vector<BoundaryBatch> receive(int dst) = 0;

  /// Superstep tick: decorators holding delayed traffic release
  /// batches whose due superstep has arrived.
  virtual void advance_to(int superstep) { (void)superstep; }
};

/// In-process mailbox: per-destination FIFO. Lock-free by phase
/// discipline — all calls happen on the driver thread between shard
/// compute phases, so plain containers suffice and delivery order is
/// deterministic (send order).
class MailboxTransport final : public Transport {
 public:
  explicit MailboxTransport(int num_shards);
  void send(const BoundaryBatch& batch) override;
  void pump() override {}
  std::vector<BoundaryBatch> receive(int dst) override;

 private:
  std::vector<std::deque<BoundaryBatch>> inbox_;
};

/// Loopback byte transport: every batch is length-prefix framed and
/// written through a non-blocking AF_UNIX socketpair, then read back,
/// reassembled from partial reads, and routed by the frame header.
/// Payloads larger than the kernel buffer flow through multiple
/// pump() rounds (writes stop at EAGAIN and resume after the reader
/// drains). Throws Error(kIoError) on socket failures.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(int num_shards);
  ~LoopbackTransport() override;
  LoopbackTransport(const LoopbackTransport&) = delete;
  LoopbackTransport& operator=(const LoopbackTransport&) = delete;

  void send(const BoundaryBatch& batch) override;
  void pump() override;
  std::vector<BoundaryBatch> receive(int dst) override;

 private:
  int fds_[2] = {-1, -1};     ///< [0] write side, [1] read side
  std::string outbuf_;        ///< frames not yet accepted by the kernel
  std::string inbuf_;         ///< partial frame reassembly
  std::vector<std::deque<BoundaryBatch>> inbox_;
};

/// Per-kind delivery counters a LossyTransport accumulates, in
/// per-vertex update units (a batch of k boundary colors counts k), the
/// same units DistStats uses for its messages_* fields.
struct LossyCounters {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;  ///< reorder victims held back >= 1 superstep
};

/// Chaos decorator: consults a FaultPlan before forwarding to the
/// inner transport. Decisions are pure functions of (plan seed, fault
/// stream, superstep, src, dst, attempt) — retransmissions roll fresh
/// decisions, which is what makes bounded retry effective against
/// sub-1.0 rates — so a scenario replays bit-for-bit from its spec.
/// Reorder victims are withheld until `delay_update_supersteps` (>= 1)
/// supersteps later; a partition window drops everything a shard sends
/// for `partition_supersteps` supersteps regardless of retries.
class LossyTransport final : public Transport {
 public:
  LossyTransport(Transport& inner, const FaultPlan& plan, int num_shards);

  void send(const BoundaryBatch& batch) override;
  void pump() override;
  std::vector<BoundaryBatch> receive(int dst) override;
  void advance_to(int superstep) override;

  [[nodiscard]] const LossyCounters& counters() const { return counters_; }

 private:
  struct Delayed {
    int due_superstep;
    BoundaryBatch batch;
  };

  Transport& inner_;
  const FaultPlan& plan_;
  int num_shards_;
  int superstep_ = 0;
  std::deque<Delayed> delayed_;
  LossyCounters counters_;
};

}  // namespace gcol
