// Simulated distributed-memory BGPC (the Bozdağ–Gebremedhin–Manne–
// Boman–Çatalyürek framework, refs [5], [6], [27], [28] of the paper).
//
// The paper's net-based conflict removal descends from the
// distributed-memory D2GC algorithms that resolve conflicts "around
// middle vertices". This module reproduces that lineage as a
// single-process BSP simulation: columns are partitioned across ranks,
// interior vertices are colored communication-free, and boundary
// vertices go through synchronous supersteps of speculative coloring +
// conflict resolution, with remote color information one superstep
// stale — the staleness is exactly what creates distributed conflicts.
// The simulator counts supersteps and messages so the shared- vs
// distributed-memory trade-off the paper's related work discusses can
// be measured offline.
#pragma once

#include <cstdint>
#include <vector>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

struct FaultPlan;  // greedcolor/robust/fault.hpp

struct DistOptions {
  int num_ranks = 4;
  /// Partitioning of the colored (column) side across ranks.
  enum class Partition { kBlock, kHash } partition = Partition::kBlock;
  std::uint64_t seed = 1;   ///< hash-partition seed
  int max_supersteps = 500; ///< safety valve (then sequential cleanup)
  /// Wall-clock watchdog on the superstep loop (0 disables); on expiry
  /// the remaining boundary vertices are finished sequentially.
  double deadline_seconds = 0.0;
  /// Deterministic fault injection for the superstep color exchange
  /// (drop / reorder); not owned, may be null.
  const FaultPlan* fault_plan = nullptr;
};

struct DistStats {
  vid_t interior_vertices = 0;  ///< colored with zero communication
  vid_t boundary_vertices = 0;
  int supersteps = 0;           ///< boundary rounds until conflict-free
  /// Color-notification messages: one per (newly colored boundary
  /// vertex, distinct remote rank sharing a net with it).
  std::uint64_t messages = 0;
  std::uint64_t conflicts = 0;  ///< boundary re-colorings, total
  bool fallback = false;        ///< max_supersteps or deadline hit
  bool deadline_hit = false;    ///< deadline_seconds expired
  std::uint64_t dropped_updates = 0;    ///< injected: exchanges lost
  std::uint64_t reordered_updates = 0;  ///< injected: delivered late
};

struct DistResult {
  std::vector<color_t> colors;
  color_t num_colors = 0;
  DistStats stats;
  double total_seconds = 0.0;
  bool degraded = false;        ///< fallback ran or a repair was needed
  vid_t repaired_vertices = 0;  ///< set by the verified entry point
};

/// Owner rank per column vertex.
[[nodiscard]] std::vector<int> make_partition(vid_t n,
                                              const DistOptions& options);

/// Simulated distributed BGPC. Deterministic for fixed options: ranks
/// are processed in order inside each superstep, and remote colors are
/// read from the previous superstep's snapshot (true BSP semantics).
[[nodiscard]] DistResult color_bgpc_distributed(
    const BipartiteGraph& g, const DistOptions& options = {});

}  // namespace gcol
