// Sharded superstep BGPC runtime (descended from the Bozdağ–
// Gebremedhin–Manne–Boman–Çatalyürek distributed framework, refs [5],
// [6], [27], [28] of the paper).
//
// Columns are partitioned across shards (make_partition + make_shards);
// each shard colors on its own CSR slice — interior vertices
// communication-free, boundary vertices through synchronous supersteps
// of speculative coloring + conflict detection against one-superstep-
// stale ghost colors. Unlike the previous single-process simulation,
// *all* cross-shard information moves as batched, versioned boundary
// messages through a pluggable Transport (in-process mailbox or a real
// loopback socket), and the runtime tolerates a misbehaving transport:
// stale or duplicated deliveries are ignored by a per-vertex version
// guard, missing batches are retried with exponential backoff, and
// after max_retries the affected boundary vertices are marked dirty and
// finished through repair_bgpc — the degradation ladder is
// retry -> repair -> sequential fallback, and every rung still yields a
// valid coloring.
#pragma once

#include <cstdint>
#include <vector>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

struct FaultPlan;  // greedcolor/robust/fault.hpp
namespace obs {
class Tracer;  // greedcolor/obs/trace.hpp
}

struct DistOptions {
  int num_ranks = 4;
  /// Partitioning of the colored (column) side across ranks.
  enum class Partition { kBlock, kHash } partition = Partition::kBlock;
  std::uint64_t seed = 1;   ///< hash-partition seed
  int max_supersteps = 500; ///< safety valve (then sequential cleanup)
  /// Wall-clock watchdog on the superstep loop (0 disables); on expiry
  /// the remaining boundary vertices are finished sequentially.
  double deadline_seconds = 0.0;
  /// Deterministic fault injection for the boundary exchange (drop /
  /// duplicate / reorder / delay / partition); not owned, may be null.
  const FaultPlan* fault_plan = nullptr;

  /// Which transport carries the boundary batches. kMailbox is the
  /// in-process FIFO; kSocket frames every batch through a non-blocking
  /// AF_UNIX socketpair. Both yield identical colorings.
  enum class TransportKind { kMailbox, kSocket } transport =
      TransportKind::kMailbox;
  /// Resend attempts per (src, dst, superstep) batch before the
  /// destination gives up and marks the border dirty.
  int max_retries = 8;
  /// Exponential backoff between retries: min(cap, base << attempt)
  /// microseconds, *simulated* — recorded in the retry trace and
  /// backoff_us_total, never slept, so traces stay deterministic and
  /// tests fast.
  std::uint64_t backoff_base_us = 100;
  std::uint64_t backoff_cap_us = 100000;

  /// gcol-trace tracer: superstep/exchange spans on the engine tracks,
  /// speculate/conflict spans on one track per shard, send/deliver/
  /// retry/drop instants, and the give-up → repair ladder. Not owned,
  /// may be null. See greedcolor/obs/trace.hpp.
  obs::Tracer* tracer = nullptr;
};

struct DistStats {
  vid_t interior_vertices = 0;  ///< colored with zero communication
  vid_t boundary_vertices = 0;
  int supersteps = 0;           ///< boundary rounds until conflict-free

  // Message accounting, in per-vertex update units (a batch of k
  // boundary colors counts k). sent >= delivered + dropped_in_flight;
  // stale_ignored and duplicated are subsets of delivered.
  std::uint64_t messages_sent = 0;       ///< handed to the transport
  std::uint64_t messages_delivered = 0;  ///< drained by a receiver
  std::uint64_t messages_dropped = 0;    ///< lost in flight (injected)
  /// Delivered but discarded by the ghost-version guard (stale,
  /// reordered, or duplicated — the guard cannot tell and need not).
  std::uint64_t messages_stale_ignored = 0;
  std::uint64_t messages_duplicated = 0; ///< injected duplicate deliveries

  std::uint64_t conflicts = 0;  ///< boundary re-colorings, total
  std::uint64_t retries = 0;    ///< batch retransmissions requested
  std::uint64_t backoff_us_total = 0;  ///< simulated backoff, summed
  vid_t dirty_boundary = 0;     ///< vertices finalized via give-up
  vid_t repair_recolored = 0;   ///< recolored by the post-loop repair

  bool fallback = false;        ///< max_supersteps or deadline hit
  bool deadline_hit = false;    ///< deadline_seconds expired
};

/// One retransmission decision, for deterministic trace comparison:
/// the runtime requested attempt `attempt` of the (src -> dst) batch of
/// `superstep` after simulating `backoff_us` of backoff.
struct RetryEvent {
  int superstep = 0;
  int src = 0;
  int dst = 0;
  int attempt = 0;
  std::uint64_t backoff_us = 0;

  friend bool operator==(const RetryEvent&, const RetryEvent&) = default;
};

struct DistResult {
  std::vector<color_t> colors;
  color_t num_colors = 0;
  DistStats stats;
  double total_seconds = 0.0;
  bool degraded = false;        ///< fallback, give-up, or repair ran
  vid_t repaired_vertices = 0;  ///< set by the verified entry point
  /// Every retry in request order; identical across runs for a fixed
  /// (graph, options, fault plan) triple.
  std::vector<RetryEvent> retry_trace;
};

/// Owner rank per column vertex.
[[nodiscard]] std::vector<int> make_partition(vid_t n,
                                              const DistOptions& options);

/// Sharded superstep BGPC. Deterministic for fixed options: shard state
/// is disjoint (OpenMP schedule cannot matter), transport calls are
/// serialized on the driver thread between compute phases, and fault
/// decisions are pure functions of the plan. A single-rank run contains
/// no boundary vertices and reproduces color_bgpc_sequential exactly.
[[nodiscard]] DistResult color_bgpc_distributed(
    const BipartiteGraph& g, const DistOptions& options = {});

}  // namespace gcol
