// Thin OpenMP helpers shared by kernels, benches, and tests.
#pragma once

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace gcol {

inline int max_threads() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

inline int current_thread() {
#if defined(_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

inline int hardware_threads() {
#if defined(_OPENMP)
  return omp_get_num_procs();
#else
  return 1;
#endif
}

/// RAII scope that pins omp_set_num_threads to `n` and restores the
/// previous value on destruction. Kernels take an explicit thread count
/// so a sweep over t ∈ {1,2,4,8,16} never leaks state between runs.
class ThreadCountScope {
 public:
  explicit ThreadCountScope(int n) {
#if defined(_OPENMP)
    previous_ = omp_get_max_threads();
    if (n > 0) omp_set_num_threads(n);
#else
    (void)n;
#endif
  }

  ~ThreadCountScope() {
#if defined(_OPENMP)
    omp_set_num_threads(previous_);
#endif
  }

  ThreadCountScope(const ThreadCountScope&) = delete;
  ThreadCountScope& operator=(const ThreadCountScope&) = delete;

 private:
#if defined(_OPENMP)
  int previous_ = 1;
#endif
};

}  // namespace gcol
