// Deterministic work counters for the coloring kernels.
//
// The reproduction machine has a single physical core, so wall-clock
// thread scaling cannot be observed directly. These counters capture the
// machine-independent work profile of every kernel (edges traversed,
// color probes, conflicts, recolored vertices) and are what the bench
// harnesses use, next to wall time, to reproduce the paper's relative
// results. Compiled out when GCOL_COUNTERS is not defined.
#pragma once

#include <algorithm>
#include <cstdint>

#include "greedcolor/util/types.hpp"

namespace gcol {

struct KernelCounters {
  /// Adjacency entries visited (inner-loop iterations over vtxs/nets).
  std::uint64_t edges_visited = 0;
  /// First-fit / reverse-first-fit probes of the forbidden set.
  std::uint64_t color_probes = 0;
  /// Conflicts detected by a conflict-removal kernel.
  std::uint64_t conflicts = 0;
  /// Vertices (re)assigned a color by a coloring kernel.
  std::uint64_t colored = 0;
  /// Largest color assigned by a coloring kernel, kNoColor when none.
  /// Unlike the fields above this is *always* maintained (not gated on
  /// GCOL_COUNTERS): the adaptive forbidden-set engine reads it as the
  /// running color bound between rounds, so it is load-bearing.
  color_t max_color = kNoColor;

  KernelCounters& operator+=(const KernelCounters& o) {
    edges_visited += o.edges_visited;
    color_probes += o.color_probes;
    conflicts += o.conflicts;
    colored += o.colored;
    max_color = std::max(max_color, o.max_color);
    return *this;
  }

  [[nodiscard]] std::uint64_t total_work() const {
    return edges_visited + color_probes;
  }
};

#if defined(GCOL_COUNTERS)
inline constexpr bool kCountersEnabled = true;
#define GCOL_COUNT(expr) \
  do {                   \
    expr;                \
  } while (0)
#else
inline constexpr bool kCountersEnabled = false;
#define GCOL_COUNT(expr) \
  do {                   \
  } while (0)
#endif

}  // namespace gcol
