// Work-queue strategies for the speculative coloring loop.
//
// The paper distinguishes two ways the conflict-removal phase can build
// the next iteration's vertex queue W_next:
//   * ColPack's original scheme (our SharedWorkQueue): every conflicting
//     vertex is appended immediately to one shared queue via an atomic
//     cursor (algorithms V-V / V-V-64).
//   * The "64D" lazy scheme (our LocalWorkQueues): each thread collects
//     conflicts privately and the private queues are concatenated once
//     at the end of the iteration.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <numeric>
#include <vector>

#include "greedcolor/util/types.hpp"

namespace gcol {

/// Fixed-capacity multi-producer queue with one atomic cursor.
/// Capacity must be an upper bound on the number of pushes per round
/// (|W| is always such a bound for conflict queues).
class SharedWorkQueue {
 public:
  SharedWorkQueue() = default;

  explicit SharedWorkQueue(std::size_t capacity) : slots_(capacity) {}

  void reset(std::size_t capacity) {
    if (slots_.size() < capacity) slots_.resize(capacity);
    size_.store(0, std::memory_order_relaxed);
  }

  /// Thread-safe append. Returns the slot index the item landed in.
  std::size_t push(vid_t v) {
    const std::size_t idx = size_.fetch_add(1, std::memory_order_relaxed);
    assert(idx < slots_.size());
    slots_[idx] = v;
    return idx;
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

  /// Valid only after all producers have finished (e.g. past an OpenMP
  /// barrier at the end of the parallel region).
  [[nodiscard]] const vid_t* data() const { return slots_.data(); }
  [[nodiscard]] vid_t* data() { return slots_.data(); }

  void swap_into(std::vector<vid_t>& out) {
    out.assign(slots_.begin(), slots_.begin() + static_cast<std::ptrdiff_t>(size()));
  }

 private:
  std::vector<vid_t> slots_;
  std::atomic<std::size_t> size_{0};
};

/// Per-thread private queues merged with an exclusive scan: the lazy
/// queue construction of the paper's V-V-64D (and all net-based)
/// variants. Buffers are allocated once and reused across iterations.
class LocalWorkQueues {
 public:
  LocalWorkQueues() = default;

  explicit LocalWorkQueues(int num_threads)
      : queues_(static_cast<std::size_t>(num_threads)) {}

  void configure(int num_threads) {
    queues_.resize(static_cast<std::size_t>(num_threads));
  }

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(queues_.size());
  }

  /// Clear every private queue (cursor reset; storage retained).
  void begin_round() {
    for (auto& q : queues_) q.clear();
  }

  /// Only the owning thread may call this for its own tid.
  void push(int tid, vid_t v) {
    queues_[static_cast<std::size_t>(tid)].push_back(v);
  }

  [[nodiscard]] std::size_t total_size() const {
    std::size_t n = 0;
    for (const auto& q : queues_) n += q.size();
    return n;
  }

  /// Concatenate all private queues into `out` (resized to fit).
  void merge_into(std::vector<vid_t>& out) const {
    out.resize(total_size());
    std::size_t offset = 0;
    for (const auto& q : queues_) {
      std::copy(q.begin(), q.end(), out.begin() + static_cast<std::ptrdiff_t>(offset));
      offset += q.size();
    }
  }

 private:
  std::vector<std::vector<vid_t>> queues_;
};

}  // namespace gcol
