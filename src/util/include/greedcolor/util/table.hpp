// Fixed-width text tables: the bench harnesses print the paper's tables
// with this formatter so the output reads like the originals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gcol {

class TextTable {
 public:
  enum class Align { kLeft, kRight };

  /// Define the header row; alignment applies column-wise to all rows.
  void set_header(std::vector<std::string> names,
                  std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal rule before the next added row.
  void add_rule();

  [[nodiscard]] std::string to_string() const;

  /// Convenience cell formatters.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::int64_t v);
  static std::string fmt(std::uint64_t v);
  /// Thousands-separated integer, e.g. 1,508,065 (as in Table II).
  static std::string fmt_sep(std::int64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

}  // namespace gcol
