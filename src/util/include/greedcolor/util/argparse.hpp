// A small command-line argument parser for the bench harnesses,
// examples, and tools. Supports `--flag`, `--key value`, `--key=value`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gcol {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

  /// True if `--name` was given (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. `--threads 1,2,4,8,16`.
  [[nodiscard]] std::vector<int> get_int_list(
      const std::string& name, const std::vector<int>& fallback) const;

  /// Positional arguments (tokens not starting with `--`).
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Options that were supplied but never queried — typo detection.
  [[nodiscard]] std::vector<std::string> unknown_options(
      const std::vector<std::string>& known) const;

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace gcol
