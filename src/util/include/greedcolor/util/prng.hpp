// Deterministic, seedable pseudo-random number generation.
//
// All synthetic graphs and randomized orderings in this repository are
// derived from SplitMix64/xoshiro256** so experiments are reproducible
// bit-for-bit across runs and machines.
#pragma once

#include <array>
#include <cstdint>

namespace gcol {

/// SplitMix64: used to expand a single 64-bit seed into a full xoshiro
/// state and as a cheap stateless hash for per-item jitter.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Stateless 64-bit mix; handy for deterministic per-vertex randomness.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256**: fast, high-quality generator for graph synthesis.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (bound > 0).
  std::uint64_t bounded(std::uint64_t bound) {
    __extension__ using uint128 = unsigned __int128;
    const auto x = (*this)();
    return static_cast<std::uint64_t>((static_cast<uint128>(x) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace gcol
