// Stamped marker sets: the forbidden-color arrays of the paper.
//
// The paper's "Implementation details" paragraph is explicit: the
// forbidden sets F are allocated once per thread as plain arrays and are
// *never reset*; a per-use stamp distinguishes live entries. This file
// implements exactly that idiom.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "greedcolor/util/types.hpp"

namespace gcol {

/// A set over a dense integer universe [0, capacity) supporting O(1)
/// insert/contains and O(1) clear (stamp bump). Not thread-safe: each
/// worker thread owns one instance for its forbidden-color bookkeeping.
class MarkerSet {
 public:
  MarkerSet() = default;

  explicit MarkerSet(std::size_t capacity) : marks_(capacity, 0) {}

  /// Grow the universe; existing membership survives (marks keep stamps).
  void ensure_capacity(std::size_t capacity) {
    if (marks_.size() < capacity) marks_.resize(capacity, 0);
  }

  [[nodiscard]] std::size_t capacity() const { return marks_.size(); }

  /// Empty the set in O(1) by invalidating all current stamps.
  void clear() {
    if (++stamp_ == 0) {  // stamp wrapped: lazily reset the whole array
      std::fill(marks_.begin(), marks_.end(), 0);
      stamp_ = 1;
    }
  }

  /// Insert, growing the universe if needed. Growth is rare (color ids
  /// stay below the structural bound) but keeps speculative races from
  /// ever writing out of bounds.
  void insert(std::int64_t key) {
    assert(key >= 0);
    if (static_cast<std::size_t>(key) >= marks_.size())
      marks_.resize(static_cast<std::size_t>(key) + 64, 0);
    marks_[static_cast<std::size_t>(key)] = stamp_;
  }

  [[nodiscard]] bool contains(std::int64_t key) const {
    assert(key >= 0);
    if (static_cast<std::size_t>(key) >= marks_.size()) return false;
    return marks_[static_cast<std::size_t>(key)] == stamp_;
  }

 private:
  std::vector<std::uint32_t> marks_;
  std::uint32_t stamp_ = 1;  // marks_ filled with 0 => initially empty
};

/// Thread-private scratch space for one coloring worker: the forbidden
/// color set plus the local vertex queue of Algorithm 8 (emptied by
/// resetting a cursor, never deallocated).
struct ThreadWorkspace {
  MarkerSet forbidden;
  std::vector<vid_t> local_queue;

  void prepare(std::size_t color_capacity, std::size_t queue_capacity) {
    forbidden.ensure_capacity(color_capacity);
    if (local_queue.capacity() < queue_capacity)
      local_queue.reserve(queue_capacity);
  }
};

}  // namespace gcol
