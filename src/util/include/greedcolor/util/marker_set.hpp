// Forbidden-color set representations.
//
// The paper's "Implementation details" paragraph is explicit: the
// forbidden sets F are allocated once per thread as plain arrays and are
// *never reset*; a per-use stamp distinguishes live entries. MarkerSet
// implements exactly that idiom and stays selectable for the
// paper-faithful reproduction benches.
//
// BitMarkerSet is the word-parallel alternative: colors are packed 64
// per machine word and first-fit / reverse-first-fit become single-word
// bit scans (countr_one / countl_one) instead of one probe per color.
// O(1) clear() is preserved through lazy *per-word* stamps: a word whose
// stamp is stale is treated as all-free and only rewritten when next
// touched. See DESIGN.md "Word-parallel forbidden sets".
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "greedcolor/util/counters.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

/// A set over a dense integer universe [0, capacity) supporting O(1)
/// insert/contains and O(1) clear (stamp bump). Not thread-safe: each
/// worker thread owns one instance for its forbidden-color bookkeeping.
class MarkerSet {
 public:
  MarkerSet() = default;

  explicit MarkerSet(std::size_t capacity) : marks_(capacity, 0) {}

  /// Grow the universe; existing membership survives (marks keep stamps).
  void ensure_capacity(std::size_t capacity) {
    if (marks_.size() < capacity) marks_.resize(capacity, 0);
  }

  [[nodiscard]] std::size_t capacity() const { return marks_.size(); }

  /// Empty the set in O(1) by invalidating all current stamps.
  void clear() {
    if (++stamp_ == 0) {  // stamp wrapped: lazily reset the whole array
      std::fill(marks_.begin(), marks_.end(), 0);
      stamp_ = 1;
    }
  }

  /// Insert, growing the universe if needed. The drivers pre-size every
  /// workspace from the structural color bound, so growth never fires
  /// mid-phase; it remains as a guard (geometric, not per-key) so a
  /// speculative race can never write out of bounds.
  void insert(std::int64_t key) {
    assert(key >= 0);
    if (static_cast<std::size_t>(key) >= marks_.size()) grow(key);
    marks_[static_cast<std::size_t>(key)] = stamp_;
  }

  [[nodiscard]] bool contains(std::int64_t key) const {
    assert(key >= 0);
    if (static_cast<std::size_t>(key) >= marks_.size()) return false;
    return marks_[static_cast<std::size_t>(key)] == stamp_;
  }

  /// Insert; returns true iff the key was already present (fused
  /// contains+insert, the duplicate test of the net-based kernels).
  bool test_and_set(std::int64_t key) {
    assert(key >= 0);
    if (static_cast<std::size_t>(key) >= marks_.size()) grow(key);
    const bool present = marks_[static_cast<std::size_t>(key)] == stamp_;
    marks_[static_cast<std::size_t>(key)] = stamp_;
    return present;
  }

  /// Test-only hook: force the stamp near its wraparound point so the
  /// lazy-reset path in clear() is exercised without 2^32 rounds.
  void debug_set_stamp(std::uint32_t stamp) { stamp_ = stamp; }

 private:
  void grow(std::int64_t key) {
    marks_.resize(std::max(static_cast<std::size_t>(key) + 1,
                           marks_.size() * 2),
                  0);
  }

  std::vector<std::uint32_t> marks_;
  std::uint32_t stamp_ = 1;  // marks_ filled with 0 => initially empty
};

/// Word-parallel marker set: the same dense-universe set contract as
/// MarkerSet (O(1) insert/contains/clear, grow-on-demand, contains()
/// false beyond capacity) plus whole-word first-free scans, so a
/// first-fit that would probe up to 64 colors costs one countr_one.
/// Not thread-safe; one instance per worker thread.
class BitMarkerSet {
 public:
  BitMarkerSet() = default;

  explicit BitMarkerSet(std::size_t capacity) { ensure_capacity(capacity); }

  void ensure_capacity(std::size_t capacity) {
    const std::size_t words = (capacity + 63) / 64;
    if (words_.size() < words) words_.resize(words);
  }

  [[nodiscard]] std::size_t capacity() const { return words_.size() * 64; }

  /// O(1): invalidate every word's stamp. On the (rare) wraparound every
  /// slot is reset so a stale stamp can never alias the new epoch.
  void clear() {
    if (++stamp_ == 0) {
      std::fill(words_.begin(), words_.end(), Slot{});
      stamp_ = 1;
    }
  }

  void insert(std::int64_t key) {
    assert(key >= 0);
    const auto k = static_cast<std::size_t>(key);
    const std::size_t wi = k >> 6;
    if (wi >= words_.size()) grow(wi);
    Slot& s = words_[wi];
    if (s.stamp != stamp_) {
      s.stamp = stamp_;
      s.bits = 0;
    }
    s.bits |= std::uint64_t{1} << (k & 63);
  }

  [[nodiscard]] bool contains(std::int64_t key) const {
    assert(key >= 0);
    const auto k = static_cast<std::size_t>(key);
    const std::size_t wi = k >> 6;
    if (wi >= words_.size()) return false;
    const Slot& s = words_[wi];
    if (s.stamp != stamp_) return false;
    return (s.bits >> (k & 63)) & 1u;
  }

  /// Insert; returns true iff the key was already present.
  bool test_and_set(std::int64_t key) {
    assert(key >= 0);
    const auto k = static_cast<std::size_t>(key);
    const std::size_t wi = k >> 6;
    if (wi >= words_.size()) grow(wi);
    Slot& s = words_[wi];
    if (s.stamp != stamp_) {
      s.stamp = stamp_;
      s.bits = 0;
    }
    const std::uint64_t bit = std::uint64_t{1} << (k & 63);
    const bool present = (s.bits & bit) != 0;
    s.bits |= bit;
    return present;
  }

  /// Smallest key >= start not in the set (plain first-fit). Everything
  /// beyond capacity is free by definition. `probes` counts one unit per
  /// *word* examined — the bitmap analogue of MarkerSet's per-color
  /// probe, and what BENCH_kernels.json compares across modes.
  [[nodiscard]] color_t first_free_at_or_above(color_t start,
                                               std::uint64_t& probes) const {
    assert(start >= 0);
    auto k = static_cast<std::size_t>(start);
    std::size_t wi = k >> 6;
    unsigned bit = static_cast<unsigned>(k & 63);
    while (wi < words_.size()) {
      GCOL_COUNT(++probes);
      const Slot& s = words_[wi];
      const std::uint64_t live = s.stamp == stamp_ ? s.bits : 0;
      const unsigned free_at =
          bit + static_cast<unsigned>(std::countr_one(live >> bit));
      if (free_at < 64)
        return static_cast<color_t>(wi * 64 + free_at);
      ++wi;
      bit = 0;
    }
    GCOL_COUNT(++probes);
    const std::size_t past_end = words_.size() * 64;
    return static_cast<color_t>(std::max(k, past_end));
  }

  /// Largest key <= start not in the set, or kNoColor when the scan
  /// passes 0 (Alg. 8's reverse first-fit as a high-bit scan).
  [[nodiscard]] color_t first_free_at_or_below(color_t start,
                                               std::uint64_t& probes) const {
    if (start < 0) {
      GCOL_COUNT(++probes);
      return kNoColor;
    }
    const auto k = static_cast<std::size_t>(start);
    std::size_t wi = k >> 6;
    if (wi >= words_.size()) {
      GCOL_COUNT(++probes);
      return start;  // beyond capacity: free
    }
    unsigned bit = static_cast<unsigned>(k & 63);
    while (true) {
      GCOL_COUNT(++probes);
      const Slot& s = words_[wi];
      const std::uint64_t live = s.stamp == stamp_ ? s.bits : 0;
      // Shift `bit` to the MSB; countl_one then counts the occupied run
      // downward from `bit` (shifted-in low bits are zero, so the count
      // never exceeds bit + 1).
      const auto ones = static_cast<unsigned>(
          std::countl_one(live << (63 - bit)));
      if (ones <= bit)
        return static_cast<color_t>(wi * 64 + bit - ones);
      if (wi == 0) return kNoColor;
      --wi;
      bit = 63;
    }
  }

  /// Test-only hook (see MarkerSet::debug_set_stamp).
  void debug_set_stamp(std::uint32_t stamp) { stamp_ = stamp; }

 private:
  // The word and its lazy-clear epoch share one slot so the hot-path
  // insert touches a single cache line, like MarkerSet's plain store; a
  // split words/stamps pair costs two random lines per insert, which
  // measurably dominates insert-bound kernels.
  struct Slot {
    std::uint64_t bits = 0;
    std::uint32_t stamp = 0;  // slot stamp 0 never matches stamp_ >= 1
  };

  void grow(std::size_t wi) {
    words_.resize(std::max(wi + 1, words_.size() * 2));
  }

  std::vector<Slot> words_;
  std::uint32_t stamp_ = 1;
};

/// Thread-private scratch space for one coloring worker: both
/// forbidden-set representations (the kernels pick one through the
/// ForbiddenSet policy; the unused one stays empty and costs only its
/// header), the visited stamp set that deduplicates distance-2
/// neighbors in the vertex-based kernels, and the local vertex queue of
/// Algorithm 8 (emptied by resetting a cursor, never deallocated).
struct ThreadWorkspace {
  MarkerSet forbidden;
  BitMarkerSet forbidden_bits;
  MarkerSet visited;  // vertex-id universe, bitmap-policy kernels only
  std::vector<vid_t> local_queue;

  void prepare(std::size_t color_capacity, std::size_t queue_capacity,
               std::size_t visited_capacity = 0) {
    forbidden.ensure_capacity(color_capacity);
    forbidden_bits.ensure_capacity(color_capacity);
    if (visited_capacity > 0) visited.ensure_capacity(visited_capacity);
    if (local_queue.capacity() < queue_capacity)
      local_queue.reserve(queue_capacity);
  }
};

}  // namespace gcol
