// Forbidden-color set representations.
//
// The paper's "Implementation details" paragraph is explicit: the
// forbidden sets F are allocated once per thread as plain arrays and are
// *never reset*; a per-use stamp distinguishes live entries. MarkerSet
// implements exactly that idiom and stays selectable for the
// paper-faithful reproduction benches.
//
// BitMarkerSet is the word-parallel alternative: colors are packed 64
// per machine word and first-fit / reverse-first-fit become single-word
// bit scans (countr_one / countl_one) instead of one probe per color.
// O(1) clear() is preserved through lazy *per-word* stamps: a word whose
// stamp is stale is treated as all-free and only rewritten when next
// touched. See DESIGN.md "Word-parallel forbidden sets".
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "greedcolor/util/counters.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

/// A set over a dense integer universe [0, capacity) supporting O(1)
/// insert/contains and O(1) clear (stamp bump). Not thread-safe: each
/// worker thread owns one instance for its forbidden-color bookkeeping.
class MarkerSet {
 public:
  MarkerSet() = default;

  explicit MarkerSet(std::size_t capacity) : marks_(capacity, 0) {}

  /// Grow the universe; existing membership survives (marks keep stamps).
  void ensure_capacity(std::size_t capacity) {
    if (marks_.size() < capacity) marks_.resize(capacity, 0);
  }

  [[nodiscard]] std::size_t capacity() const { return marks_.size(); }

  /// Empty the set in O(1) by invalidating all current stamps.
  void clear() {
    if (++stamp_ == 0) {  // stamp wrapped: lazily reset the whole array
      std::fill(marks_.begin(), marks_.end(), 0);
      stamp_ = 1;
    }
  }

  /// Insert, growing the universe if needed. The drivers pre-size every
  /// workspace from the structural color bound, so growth never fires
  /// mid-phase; it remains as a guard (geometric, not per-key) so a
  /// speculative race can never write out of bounds.
  void insert(std::int64_t key) {
    assert(key >= 0);
    if (static_cast<std::size_t>(key) >= marks_.size()) grow(key);
    marks_[static_cast<std::size_t>(key)] = stamp_;
  }

  [[nodiscard]] bool contains(std::int64_t key) const {
    assert(key >= 0);
    if (static_cast<std::size_t>(key) >= marks_.size()) return false;
    return marks_[static_cast<std::size_t>(key)] == stamp_;
  }

  /// Insert; returns true iff the key was already present (fused
  /// contains+insert, the duplicate test of the net-based kernels).
  bool test_and_set(std::int64_t key) {
    assert(key >= 0);
    if (static_cast<std::size_t>(key) >= marks_.size()) grow(key);
    const bool present = marks_[static_cast<std::size_t>(key)] == stamp_;
    marks_[static_cast<std::size_t>(key)] = stamp_;
    return present;
  }

  /// Test-only hook: force the stamp near its wraparound point so the
  /// lazy-reset path in clear() is exercised without 2^32 rounds.
  void debug_set_stamp(std::uint32_t stamp) { stamp_ = stamp; }

 private:
  void grow(std::int64_t key) {
    marks_.resize(std::max(static_cast<std::size_t>(key) + 1,
                           marks_.size() * 2),
                  0);
  }

  std::vector<std::uint32_t> marks_;
  std::uint32_t stamp_ = 1;  // marks_ filled with 0 => initially empty
};

/// Word-parallel marker set: the same dense-universe set contract as
/// MarkerSet (O(1) insert/contains/clear, grow-on-demand, contains()
/// false beyond capacity) plus whole-word first-free scans, so a
/// first-fit that would probe up to 64 colors costs one countr_one.
/// Not thread-safe; one instance per worker thread.
class BitMarkerSet {
 public:
  BitMarkerSet() = default;

  explicit BitMarkerSet(std::size_t capacity) { ensure_capacity(capacity); }

  void ensure_capacity(std::size_t capacity) {
    const std::size_t words = (capacity + 63) / 64;
    if (words_.size() < words) words_.resize(words);
  }

  [[nodiscard]] std::size_t capacity() const { return words_.size() * 64; }

  /// O(1): invalidate every word's stamp. On the (rare) wraparound every
  /// slot is reset so a stale stamp can never alias the new epoch.
  void clear() {
    if (++stamp_ == 0) {
      std::fill(words_.begin(), words_.end(), Slot{});
      stamp_ = 1;
    }
  }

  void insert(std::int64_t key) {
    assert(key >= 0);
    const auto k = static_cast<std::size_t>(key);
    const std::size_t wi = k >> 6;
    if (wi >= words_.size()) grow(wi);
    Slot& s = words_[wi];
    if (s.stamp != stamp_) {
      s.stamp = stamp_;
      s.bits = 0;
    }
    s.bits |= std::uint64_t{1} << (k & 63);
  }

  [[nodiscard]] bool contains(std::int64_t key) const {
    assert(key >= 0);
    const auto k = static_cast<std::size_t>(key);
    const std::size_t wi = k >> 6;
    if (wi >= words_.size()) return false;
    const Slot& s = words_[wi];
    if (s.stamp != stamp_) return false;
    return (s.bits >> (k & 63)) & 1u;
  }

  /// Insert; returns true iff the key was already present.
  bool test_and_set(std::int64_t key) {
    assert(key >= 0);
    const auto k = static_cast<std::size_t>(key);
    const std::size_t wi = k >> 6;
    if (wi >= words_.size()) grow(wi);
    Slot& s = words_[wi];
    if (s.stamp != stamp_) {
      s.stamp = stamp_;
      s.bits = 0;
    }
    const std::uint64_t bit = std::uint64_t{1} << (k & 63);
    const bool present = (s.bits & bit) != 0;
    s.bits |= bit;
    return present;
  }

  /// Smallest key >= start not in the set (plain first-fit). Everything
  /// beyond capacity is free by definition. `probes` counts one unit per
  /// *word* examined — the bitmap analogue of MarkerSet's per-color
  /// probe, and what BENCH_kernels.json compares across modes.
  ///
  /// The body of the scan runs in aligned kScanStride-word strides: the
  /// per-word stamp select compiles to a cmov and the stride conjunction
  /// has no cross-iteration dependence, so the compiler can vectorize
  /// the dense "all words full" fast path instead of bouncing through
  /// the per-word early-exit branch.
  [[nodiscard]] color_t first_free_at_or_above(color_t start,
                                               std::uint64_t& probes) const {
    assert(start >= 0);
    const auto k = static_cast<std::size_t>(start);
    std::size_t wi = k >> 6;
    const unsigned bit = static_cast<unsigned>(k & 63);
    if (wi < words_.size()) {  // unaligned head word: mask below `bit`
      GCOL_COUNT(++probes);
      const std::uint64_t live = live_bits(words_[wi]);
      const unsigned free_at =
          bit + static_cast<unsigned>(std::countr_one(live >> bit));
      if (free_at < 64)
        return static_cast<color_t>(wi * 64 + free_at);
      ++wi;
    }
    while (wi + kScanStride <= words_.size()) {
      std::uint64_t live[kScanStride];
      if (load_stride<kScanStride>(&words_[wi], stamp_, live) ==
          ~std::uint64_t{0}) {
        GCOL_COUNT(probes += kScanStride);
        wi += kScanStride;
        continue;
      }
      for (unsigned j = 0;; ++j) {
        GCOL_COUNT(++probes);
        if (live[j] != ~std::uint64_t{0})
          return static_cast<color_t>(
              (wi + j) * 64 +
              static_cast<unsigned>(std::countr_one(live[j])));
      }
    }
    for (; wi < words_.size(); ++wi) {
      GCOL_COUNT(++probes);
      const std::uint64_t live = live_bits(words_[wi]);
      if (live != ~std::uint64_t{0})
        return static_cast<color_t>(
            wi * 64 + static_cast<unsigned>(std::countr_one(live)));
    }
    GCOL_COUNT(++probes);
    const std::size_t past_end = words_.size() * 64;
    return static_cast<color_t>(std::max(k, past_end));
  }

  /// Largest key <= start not in the set, or kNoColor when the scan
  /// passes 0 (Alg. 8's reverse first-fit as a high-bit scan).
  [[nodiscard]] color_t first_free_at_or_below(color_t start,
                                               std::uint64_t& probes) const {
    if (start < 0) {
      GCOL_COUNT(++probes);
      return kNoColor;
    }
    const auto k = static_cast<std::size_t>(start);
    std::size_t wi = k >> 6;
    if (wi >= words_.size()) {
      GCOL_COUNT(++probes);
      return start;  // beyond capacity: free
    }
    unsigned bit = static_cast<unsigned>(k & 63);
    while (true) {
      GCOL_COUNT(++probes);
      const Slot& s = words_[wi];
      const std::uint64_t live = s.stamp == stamp_ ? s.bits : 0;
      // Shift `bit` to the MSB; countl_one then counts the occupied run
      // downward from `bit` (shifted-in low bits are zero, so the count
      // never exceeds bit + 1).
      const auto ones = static_cast<unsigned>(
          std::countl_one(live << (63 - bit)));
      if (ones <= bit)
        return static_cast<color_t>(wi * 64 + bit - ones);
      if (wi == 0) return kNoColor;
      --wi;
      bit = 63;
    }
  }

  /// Test-only hook (see MarkerSet::debug_set_stamp).
  void debug_set_stamp(std::uint32_t stamp) { stamp_ = stamp; }

 private:
  // The word and its lazy-clear epoch share one slot so the hot-path
  // insert touches a single cache line, like MarkerSet's plain store; a
  // split words/stamps pair costs two random lines per insert, which
  // measurably dominates insert-bound kernels.
  struct Slot {
    std::uint64_t bits = 0;
    std::uint32_t stamp = 0;  // slot stamp 0 never matches stamp_ >= 1
  };

  // Width of the aligned scan body. Four words (256 colors) per stride
  // keeps the working set inside two cache lines of Slots while giving
  // the vectorizer a fixed-trip inner loop.
  static constexpr unsigned kScanStride = 4;

  [[nodiscard]] std::uint64_t live_bits(const Slot& s) const {
    return s.stamp == stamp_ ? s.bits : 0;
  }

  /// Load kWidth consecutive slots' live bits into `live` and return
  /// their conjunction (all-ones iff every word in the stride is full).
  template <unsigned kWidth>
  [[nodiscard]] static std::uint64_t load_stride(const Slot* slots,
                                                 std::uint32_t stamp,
                                                 std::uint64_t* live) {
    std::uint64_t all = ~std::uint64_t{0};
    for (unsigned j = 0; j < kWidth; ++j) {
      live[j] = slots[j].stamp == stamp ? slots[j].bits : 0;
      all &= live[j];
    }
    return all;
  }

  void grow(std::size_t wi) {
    words_.resize(std::max(wi + 1, words_.size() * 2));
  }

  std::vector<Slot> words_;
  std::uint32_t stamp_ = 1;
};

/// Two-level word-parallel marker set: the BitMarkerSet contract plus a
/// summary word per 64-word *block* (4096 colors) whose bit j, when its
/// block stamp is current, means word j of the block is completely
/// full. insert/contains still touch at most two cache lines (the word
/// slot, plus the block header only on a word's empty→full transition),
/// while first-fit skips a run of full words with a single countr_one
/// over the summary instead of reading 64 word slots. This is the
/// representation for huge color bounds (L in the thousands), where the
/// flat bitmap's dense-prefix scan walks hundreds of slots per pick.
class TwoLevelBitMarkerSet {
 public:
  static constexpr std::size_t kWordsPerBlock = 64;
  static constexpr std::size_t kColorsPerBlock = kWordsPerBlock * 64;

  TwoLevelBitMarkerSet() = default;

  explicit TwoLevelBitMarkerSet(std::size_t capacity) {
    ensure_capacity(capacity);
  }

  void ensure_capacity(std::size_t capacity) {
    const std::size_t words = (capacity + 63) / 64;
    if (words_.size() < words) {
      words_.resize(words);
      blocks_.resize((words_.size() + kWordsPerBlock - 1) / kWordsPerBlock);
    }
  }

  [[nodiscard]] std::size_t capacity() const { return words_.size() * 64; }

  /// O(1): invalidate every word's and block's stamp; full reset only on
  /// the rare stamp wraparound (see BitMarkerSet::clear).
  void clear() {
    if (++stamp_ == 0) {
      std::fill(words_.begin(), words_.end(), Slot{});
      std::fill(blocks_.begin(), blocks_.end(), Block{});
      stamp_ = 1;
    }
  }

  void insert(std::int64_t key) {
    assert(key >= 0);
    const auto k = static_cast<std::size_t>(key);
    const std::size_t wi = k >> 6;
    if (wi >= words_.size()) grow(wi);
    Slot& s = words_[wi];
    if (s.stamp != stamp_) {
      s.stamp = stamp_;
      s.bits = 0;
    }
    const std::uint64_t before = s.bits;
    s.bits = before | (std::uint64_t{1} << (k & 63));
    // Publish to the summary only on the empty→full transition, so a
    // stream of inserts into an already-full word stays one cache line.
    if (s.bits == ~std::uint64_t{0} && before != ~std::uint64_t{0})
      mark_full(wi);
  }

  [[nodiscard]] bool contains(std::int64_t key) const {
    assert(key >= 0);
    const auto k = static_cast<std::size_t>(key);
    const std::size_t wi = k >> 6;
    if (wi >= words_.size()) return false;
    const Slot& s = words_[wi];
    if (s.stamp != stamp_) return false;
    return (s.bits >> (k & 63)) & 1u;
  }

  /// Insert; returns true iff the key was already present.
  bool test_and_set(std::int64_t key) {
    assert(key >= 0);
    const auto k = static_cast<std::size_t>(key);
    const std::size_t wi = k >> 6;
    if (wi >= words_.size()) grow(wi);
    Slot& s = words_[wi];
    if (s.stamp != stamp_) {
      s.stamp = stamp_;
      s.bits = 0;
    }
    const std::uint64_t bit = std::uint64_t{1} << (k & 63);
    const bool present = (s.bits & bit) != 0;
    if (!present) {
      s.bits |= bit;
      if (s.bits == ~std::uint64_t{0}) mark_full(wi);
    }
    return present;
  }

  /// Smallest key >= start not in the set. A summary read that skips a
  /// run of full words counts as one probe (it costs one cache line);
  /// each word slot examined counts one probe, as in BitMarkerSet.
  [[nodiscard]] color_t first_free_at_or_above(color_t start,
                                               std::uint64_t& probes) const {
    assert(start >= 0);
    const auto k = static_cast<std::size_t>(start);
    std::size_t wi = k >> 6;
    unsigned bit = static_cast<unsigned>(k & 63);
    while (wi < words_.size()) {
      const std::size_t bi = wi >> 6;
      const unsigned wib = static_cast<unsigned>(wi & 63);
      const Block& b = blocks_[bi];
      const std::uint64_t full = b.stamp == stamp_ ? b.full : 0;
      // Known-full words [wib, wib+skip) of this block are skipped
      // without touching their cache lines.
      const auto skip =
          static_cast<unsigned>(std::countr_one(full >> wib));
      if (skip > 0) {
        GCOL_COUNT(++probes);
        wi += skip;
        bit = 0;
        if ((wi & 63) == 0) continue;  // crossed into the next block
        if (wi >= words_.size()) break;
      }
      GCOL_COUNT(++probes);
      const Slot& s = words_[wi];
      const std::uint64_t live = s.stamp == stamp_ ? s.bits : 0;
      const unsigned free_at =
          bit + static_cast<unsigned>(std::countr_one(live >> bit));
      if (free_at < 64)
        return static_cast<color_t>(wi * 64 + free_at);
      ++wi;
      bit = 0;
    }
    GCOL_COUNT(++probes);
    const std::size_t past_end = words_.size() * 64;
    return static_cast<color_t>(std::max(k, past_end));
  }

  /// Largest key <= start not in the set, or kNoColor when the scan
  /// passes 0 (reverse first-fit; the mirror of the forward scan).
  [[nodiscard]] color_t first_free_at_or_below(color_t start,
                                               std::uint64_t& probes) const {
    if (start < 0) {
      GCOL_COUNT(++probes);
      return kNoColor;
    }
    const auto k = static_cast<std::size_t>(start);
    std::size_t wi = k >> 6;
    if (wi >= words_.size()) {
      GCOL_COUNT(++probes);
      return start;  // beyond capacity: free
    }
    unsigned bit = static_cast<unsigned>(k & 63);
    while (true) {
      const std::size_t bi = wi >> 6;
      const unsigned wib = static_cast<unsigned>(wi & 63);
      const Block& b = blocks_[bi];
      const std::uint64_t full = b.stamp == stamp_ ? b.full : 0;
      // Occupied run downward from word wib of this block.
      const auto skip =
          static_cast<unsigned>(std::countl_one(full << (63 - wib)));
      if (skip > wib) {  // every word at or below wib in this block is full
        GCOL_COUNT(++probes);
        if (bi == 0) return kNoColor;
        wi = bi * kWordsPerBlock - 1;
        bit = 63;
        continue;
      }
      if (skip > 0) {
        GCOL_COUNT(++probes);
        wi -= skip;
        bit = 63;
      }
      GCOL_COUNT(++probes);
      const Slot& s = words_[wi];
      const std::uint64_t live = s.stamp == stamp_ ? s.bits : 0;
      const auto ones = static_cast<unsigned>(
          std::countl_one(live << (63 - bit)));
      if (ones <= bit)
        return static_cast<color_t>(wi * 64 + bit - ones);
      if (wi == 0) return kNoColor;
      --wi;
      bit = 63;
    }
  }

  /// Test-only hook (see MarkerSet::debug_set_stamp).
  void debug_set_stamp(std::uint32_t stamp) { stamp_ = stamp; }

 private:
  struct Slot {
    std::uint64_t bits = 0;
    std::uint32_t stamp = 0;
  };
  // Summary for one 64-word block. Bit j of `full` (under a current
  // stamp) asserts words_[block*64 + j] is all-ones in this epoch; the
  // implication only ever goes this direction, so a stale summary is
  // safe (the scan just reads the word slot it could have skipped).
  struct Block {
    std::uint64_t full = 0;
    std::uint32_t stamp = 0;
  };

  void mark_full(std::size_t wi) {
    Block& b = blocks_[wi >> 6];
    if (b.stamp != stamp_) {
      b.stamp = stamp_;
      b.full = 0;
    }
    b.full |= std::uint64_t{1} << (wi & 63);
  }

  void grow(std::size_t wi) {
    words_.resize(std::max(wi + 1, words_.size() * 2));
    blocks_.resize((words_.size() + kWordsPerBlock - 1) / kWordsPerBlock);
  }

  std::vector<Slot> words_;
  std::vector<Block> blocks_;
  std::uint32_t stamp_ = 1;
};

/// Thread-private scratch space for one coloring worker: all three
/// forbidden-set representations (the kernels pick one through the
/// ForbiddenSet policy; unused ones stay empty and cost only their
/// headers), the visited sets that deduplicate distance-2 neighbors in
/// the dedup-enabled kernels, and the local vertex queue of Algorithm 8
/// (emptied by resetting a cursor, never deallocated).
///
/// visited_bits replaces the old 4-byte-per-vertex MarkerSet dedup set:
/// at one bit per vertex (12 bytes per 64 vertices with stamps) it
/// stays L1-resident on graphs whose stamp array spilled to L2, which
/// is where the bitmap kernels were losing their random test_and_set.
struct ThreadWorkspace {
  MarkerSet forbidden;
  BitMarkerSet forbidden_bits;
  TwoLevelBitMarkerSet forbidden_two;
  BitMarkerSet visited_bits;  // vertex-id dedup set of the policy kernels
  std::vector<vid_t> local_queue;

  void prepare(std::size_t color_capacity, std::size_t queue_capacity,
               std::size_t visited_capacity = 0) {
    forbidden.ensure_capacity(color_capacity);
    forbidden_bits.ensure_capacity(color_capacity);
    forbidden_two.ensure_capacity(color_capacity);
    if (visited_capacity > 0) visited_bits.ensure_capacity(visited_capacity);
    if (local_queue.capacity() < queue_capacity)
      local_queue.reserve(queue_capacity);
  }
};

}  // namespace gcol
