// Fundamental index and color types shared by every greedcolor module.
#pragma once

#include <cstdint>
#include <limits>

namespace gcol {

/// Vertex identifier. 32-bit signed: the paper's largest graph
/// (uk-2002, 18.5M vertices) fits comfortably, and signed arithmetic
/// keeps OpenMP canonical-loop requirements trivially satisfied.
using vid_t = std::int32_t;

/// Edge/offset identifier for CSR row pointers. 64-bit: nnz counts in
/// the paper's test-bed reach 298M and adjacency offsets must not wrap.
using eid_t = std::int64_t;

/// Color identifier. Non-negative integers are valid colors; kNoColor
/// (-1) marks an uncolored vertex, exactly as in the paper's pseudocode.
using color_t = std::int32_t;

inline constexpr color_t kNoColor = -1;

inline constexpr vid_t kInvalidVertex = -1;

/// Largest representable vertex count (guard for generator parameters).
inline constexpr vid_t kMaxVertices = std::numeric_limits<vid_t>::max();

}  // namespace gcol
