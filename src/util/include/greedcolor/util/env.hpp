// Environment self-description printed by every bench harness so runs
// are reproducible and self-documenting.
#pragma once

#include <string>

namespace gcol {

struct EnvInfo {
  int hardware_threads = 1;
  int omp_max_threads = 1;
  std::string compiler;
  bool counters_enabled = false;
};

[[nodiscard]] EnvInfo query_env();

/// One-line banner, e.g.
/// "greedcolor | 1 hw thread(s) | omp max 1 | gcc 12.2.0 | counters on".
[[nodiscard]] std::string env_banner();

}  // namespace gcol
