// CSV writer used by the figure harnesses to dump plottable series
// (e.g. the Figure 3 color-set cardinality distributions).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace gcol {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  /// Convenience: write a row of doubles/ints mixed as strings upstream.
  template <typename... Ts>
  void row(const Ts&... cells) {
    write_row({to_cell(cells)...});
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>)
      return std::string(v);
    else
      return std::to_string(v);
  }

  std::ofstream out_;
};

}  // namespace gcol
