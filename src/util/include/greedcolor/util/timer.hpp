// Minimal wall-clock timing utilities used by the kernels and harnesses.
#pragma once

#include <chrono>

namespace gcol {

/// Monotonic wall-clock stopwatch. All kernel timings in the paper are
/// wall times (OpenMP regions), so we use steady_clock throughout.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gcol
