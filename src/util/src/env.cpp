#include "greedcolor/util/env.hpp"

#include <sstream>

#include "greedcolor/util/counters.hpp"
#include "greedcolor/util/parallel.hpp"

namespace gcol {

EnvInfo query_env() {
  EnvInfo info;
  info.hardware_threads = hardware_threads();
  info.omp_max_threads = max_threads();
#if defined(__clang__)
  info.compiler = "clang " + std::to_string(__clang_major__) + "." +
                  std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  info.compiler = "gcc " + std::to_string(__GNUC__) + "." +
                  std::to_string(__GNUC_MINOR__) + "." +
                  std::to_string(__GNUC_PATCHLEVEL__);
#else
  info.compiler = "unknown";
#endif
  info.counters_enabled = kCountersEnabled;
  return info;
}

std::string env_banner() {
  const EnvInfo e = query_env();
  std::ostringstream os;
  os << "greedcolor | " << e.hardware_threads << " hw thread(s) | omp max "
     << e.omp_max_threads << " | " << e.compiler << " | counters "
     << (e.counters_enabled ? "on" : "off");
  return os.str();
}

}  // namespace gcol
