#include "greedcolor/util/argparse.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace gcol {

ArgParser::ArgParser(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    std::string key = token.substr(2);
    std::string value;
    if (const auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    options_[key] = value;
  }
}

bool ArgParser::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::stoll(it->second);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::stod(it->second);
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  if (it->second.empty()) return true;  // bare --flag
  return it->second == "1" || it->second == "true" || it->second == "yes" ||
         it->second == "on";
}

std::vector<int> ArgParser::get_int_list(
    const std::string& name, const std::vector<int>& fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  std::vector<int> values;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) values.push_back(std::stoi(item));
  }
  return values;
}

std::vector<std::string> ArgParser::unknown_options(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, _] : options_) {
    if (std::find(known.begin(), known.end(), key) == known.end())
      unknown.push_back(key);
  }
  return unknown;
}

}  // namespace gcol
