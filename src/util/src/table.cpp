#include "greedcolor/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace gcol {

void TextTable::set_header(std::vector<std::string> names,
                           std::vector<Align> aligns) {
  header_ = std::move(names);
  aligns_ = std::move(aligns);
  aligns_.resize(header_.size(), Align::kRight);
  if (!aligns_.empty()) aligns_[0] = aligns_[0];  // keep caller's choice
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.empty() ? cells.size() : header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::to_string() const {
  const std::size_t ncols =
      header_.empty()
          ? (rows_.empty() ? 0 : rows_.front().size())
          : header_.size();
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size() && c < ncols; ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      const Align a = c < aligns_.size() ? aligns_[c] : Align::kRight;
      out << (c == 0 ? "" : "  ");
      out << std::setw(static_cast<int>(width[c]))
          << (a == Align::kLeft ? std::left : std::right) << cell;
    }
    out << '\n';
  };
  auto rule = [&] {
    std::size_t total = 0;
    for (std::size_t c = 0; c < ncols; ++c) total += width[c] + (c ? 2 : 0);
    out << std::string(total, '-') << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) {
    if (r.empty())
      rule();
    else
      emit(r);
  }
  return out.str();
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::fmt(std::int64_t v) { return std::to_string(v); }
std::string TextTable::fmt(std::uint64_t v) { return std::to_string(v); }

std::string TextTable::fmt_sep(std::int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace gcol
