#include "greedcolor/util/csv.hpp"

#include <stdexcept>

namespace gcol {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    // Quote cells containing separators; our data is numeric/identifier
    // so this is rarely triggered but keeps the writer safe for labels.
    const std::string& c = cells[i];
    if (c.find_first_of(",\"\n") != std::string::npos) {
      out_ << '"';
      for (char ch : c) {
        if (ch == '"') out_ << '"';
        out_ << ch;
      }
      out_ << '"';
    } else {
      out_ << c;
    }
  }
  out_ << '\n';
}

}  // namespace gcol
