#include "greedcolor/obs/metrics.hpp"

#include "greedcolor/analyze/audit.hpp"
#include "greedcolor/analyze/contract.hpp"
#include "greedcolor/core/result.hpp"
#include "greedcolor/dist/dist_bgpc.hpp"
#include "greedcolor/obs/trace.hpp"
#include "greedcolor/util/counters.hpp"

namespace gcol::obs {

namespace {

std::string joined(std::string_view prefix, std::string_view leaf) {
  std::string name;
  name.reserve(prefix.size() + 1 + leaf.size());
  name.append(prefix);
  name.push_back('.');
  name.append(leaf);
  return name;
}

}  // namespace

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set(std::string_view name, std::uint64_t value) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

bool MetricsRegistry::has(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

std::uint64_t MetricsRegistry::value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::record_kernel(std::string_view prefix,
                                    const KernelCounters& c) {
  add(joined(prefix, "edges_visited"), c.edges_visited);
  add(joined(prefix, "color_probes"), c.color_probes);
  add(joined(prefix, "conflicts"), c.conflicts);
  add(joined(prefix, "colored"), c.colored);
  if (c.max_color != kNoColor) {
    const auto mc = static_cast<std::uint64_t>(c.max_color);
    const std::string name = joined(prefix, "max_color");
    if (!has(name) || value(name) < mc) set(name, mc);
  }
}

void MetricsRegistry::record_result(const ColoringResult& r) {
  set("core.rounds", static_cast<std::uint64_t>(r.rounds));
  set("core.colors", static_cast<std::uint64_t>(r.num_colors));
  set_flag("core.degraded", r.degraded);
  set_flag("core.sequential_fallback", r.sequential_fallback);
  set_flag("core.rounds_capped", r.rounds_capped);
  set_flag("core.deadline_hit", r.deadline_hit);
  set("core.faults_injected", static_cast<std::uint64_t>(r.faults_injected));
  set("core.repaired_vertices",
      static_cast<std::uint64_t>(r.repaired_vertices));
  record_kernel("core.color", r.total_color_counters());
  record_kernel("core.conflict", r.total_conflict_counters());
}

void MetricsRegistry::record_dist(const DistResult& r) {
  const DistStats& s = r.stats;
  set("dist.interior_vertices",
      static_cast<std::uint64_t>(s.interior_vertices));
  set("dist.boundary_vertices",
      static_cast<std::uint64_t>(s.boundary_vertices));
  set("dist.supersteps", static_cast<std::uint64_t>(s.supersteps));
  set("dist.messages.sent", s.messages_sent);
  set("dist.messages.delivered", s.messages_delivered);
  set("dist.messages.dropped", s.messages_dropped);
  set("dist.messages.stale_ignored", s.messages_stale_ignored);
  set("dist.messages.duplicated", s.messages_duplicated);
  set("dist.conflicts", s.conflicts);
  set("dist.retries", s.retries);
  set("dist.backoff_us_total", s.backoff_us_total);
  set("dist.retry_trace.events", r.retry_trace.size());
  set("dist.dirty_boundary", static_cast<std::uint64_t>(s.dirty_boundary));
  set("dist.repair_recolored",
      static_cast<std::uint64_t>(s.repair_recolored));
  set_flag("dist.fallback", s.fallback);
  set_flag("dist.deadline_hit", s.deadline_hit);
  set("dist.colors", static_cast<std::uint64_t>(r.num_colors));
  set_flag("dist.degraded", r.degraded);
  set("dist.repaired_vertices",
      static_cast<std::uint64_t>(r.repaired_vertices));
}

void MetricsRegistry::record_audit(const audit::AuditReport& r) {
  set("audit.rounds_audited", static_cast<std::uint64_t>(r.rounds_audited));
  set("audit.escaped_conflicts", r.escaped_conflicts);
  set("audit.reads_recorded", r.reads_recorded);
  set("audit.writes_recorded", r.writes_recorded);
  set("audit.writes_overturned", r.writes_overturned);
  set("audit.ledger_growths", r.ledger_growths);
  set("audit.violations", r.violations.size());
}

void MetricsRegistry::record_contracts() {
  set("contract.checks_evaluated", contract::checks_evaluated());
}

void MetricsRegistry::record_tracer(const Tracer& t) {
  set("trace.events", t.recorded());
  set("trace.dropped", t.dropped());
  set("trace.threads", static_cast<std::uint64_t>(t.threads()));
}

}  // namespace gcol::obs
