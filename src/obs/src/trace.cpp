#include "greedcolor/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "greedcolor/util/parallel.hpp"

namespace gcol::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Span names are repo-controlled literals, but the exporter escapes
// them anyway so the emitted document is valid JSON no matter what.
void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (c < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          os << static_cast<char>(c);
        }
    }
  }
  os << '"';
}

// Microsecond timestamp with nanosecond fraction, emitted as a plain
// decimal so the JSON stays locale- and precision-independent.
void write_ts_us(std::ostream& os, std::uint64_t ts_ns) {
  os << ts_ns / 1000 << '.' << static_cast<char>('0' + (ts_ns / 100) % 10)
     << static_cast<char>('0' + (ts_ns / 10) % 10)
     << static_cast<char>('0' + ts_ns % 10);
}

struct Track {
  int pid = 0;
  int tid = 0;
  bool operator<(const Track& o) const {
    return pid != o.pid ? pid < o.pid : tid < o.tid;
  }
  bool operator==(const Track& o) const {
    return pid == o.pid && tid == o.tid;
  }
};

Track track_of(const TraceEvent& ev) {
  if (ev.shard >= 0) return Track{Tracer::kShardPid, ev.shard};
  return Track{Tracer::kEnginePid, static_cast<int>(ev.tid)};
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceBuffer

void TraceBuffer::reset(std::size_t capacity) {
  slots_.assign(capacity, TraceEvent{});
  head_.store(0, std::memory_order_release);
}

void TraceBuffer::push(const TraceEvent& ev) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  if (!slots_.empty()) {
    slots_[static_cast<std::size_t>(head % slots_.size())] = ev;
  }
  // Release-publish the slot write; the driver-side acquire in
  // snapshot()/pushed() is the cross-thread ordering edge (and the one
  // tsan sees through the OpenMP join, like CounterSlots::publish).
  head_.store(head + 1, std::memory_order_release);
}

std::uint64_t TraceBuffer::dropped() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (slots_.empty()) return head;
  return head > slots_.size() ? head - slots_.size() : 0;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::vector<TraceEvent> out;
  if (slots_.empty() || head == 0) return out;
  const std::uint64_t survivors = std::min<std::uint64_t>(head, slots_.size());
  out.reserve(static_cast<std::size_t>(survivors));
  for (std::uint64_t i = head - survivors; i < head; ++i) {
    out.push_back(slots_[static_cast<std::size_t>(i % slots_.size())]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer(TracerOptions options)
    : options_(options), epoch_ns_(steady_now_ns()) {
  attach(1);  // standalone use (no driver) still has a driver-thread ring
}

void Tracer::attach(int threads) {
  if (threads <= ring_count_) return;
  auto grown = std::make_unique<TraceBuffer[]>(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    grown[t].reset(options_.ring_capacity);
  }
  // Carry existing content over (attach happens between runs, never
  // concurrently with recording — same single-owner contract as the
  // auditor seam).
  for (int t = 0; t < ring_count_; ++t) {
    for (const TraceEvent& ev : rings_[t].snapshot()) grown[t].push(ev);
  }
  rings_ = std::move(grown);
  ring_count_ = threads;
}

std::uint64_t Tracer::now_ns() const { return steady_now_ns() - epoch_ns_; }

void Tracer::record(const char* name, TraceEvent::Phase phase,
                    std::uint64_t arg, int shard) {
  const int tid = current_thread();  // gcol::current_thread (omp wrapper)
  if (tid < 0 || tid >= ring_count_) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent ev;
  ev.name = name;
  ev.ts_ns = now_ns();
  ev.arg = arg;
  ev.shard = shard;
  ev.tid = static_cast<std::uint16_t>(tid);
  ev.phase = phase;
  rings_[tid].push(ev);
}

void Tracer::begin(const char* name, std::uint64_t arg, int shard) {
  record(name, TraceEvent::Phase::kBegin, arg, shard);
}

void Tracer::end(const char* name, int shard) {
  record(name, TraceEvent::Phase::kEnd, 0, shard);
}

void Tracer::instant(const char* name, std::uint64_t arg, int shard) {
  record(name, TraceEvent::Phase::kInstant, arg, shard);
}

std::uint64_t Tracer::recorded() const {
  std::uint64_t total = 0;
  for (int t = 0; t < ring_count_; ++t) {
    const std::uint64_t pushed = rings_[t].pushed();
    total += std::min<std::uint64_t>(pushed, rings_[t].capacity());
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = lost_.load(std::memory_order_relaxed);
  for (int t = 0; t < ring_count_; ++t) total += rings_[t].dropped();
  return total;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> all;
  all.reserve(static_cast<std::size_t>(recorded()));
  for (int t = 0; t < ring_count_; ++t) {
    std::vector<TraceEvent> part = rings_[t].snapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  // Stable: same-timestamp events from one ring keep program order, so
  // a begin/end pair recorded back-to-back can never invert.
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return all;
}

void Tracer::clear() {
  for (int t = 0; t < ring_count_; ++t) rings_[t].reset(options_.ring_capacity);
  lost_.store(0, std::memory_order_relaxed);
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> evs = events();

  // Collect the tracks that actually recorded something so metadata
  // rows match the data rows exactly.
  std::vector<Track> tracks;
  std::uint64_t max_ts = 0;
  for (const TraceEvent& ev : evs) {
    tracks.push_back(track_of(ev));
    max_ts = std::max(max_ts, ev.ts_ns);
  }
  std::sort(tracks.begin(), tracks.end());
  tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());

  os << "{\n";
  os << "  \"displayTimeUnit\": \"ms\",\n";
  os << "  \"otherData\": {\"schema\": \"gcol-trace-chrome-v1\", "
     << "\"recorded\": " << evs.size() << ", \"dropped\": " << dropped()
     << "},\n";
  os << "  \"traceEvents\": [";

  bool first = true;
  auto sep = [&]() {
    if (!first) os << ',';
    first = false;
    os << "\n    ";
  };

  // Metadata: name the processes once and every track that appears.
  bool engine_seen = false;
  bool shard_seen = false;
  for (const Track& tr : tracks) {
    engine_seen = engine_seen || tr.pid == kEnginePid;
    shard_seen = shard_seen || tr.pid == kShardPid;
  }
  if (engine_seen) {
    sep();
    os << "{\"ph\": \"M\", \"pid\": " << kEnginePid
       << ", \"tid\": 0, \"name\": \"process_name\", "
       << "\"args\": {\"name\": \"gcol engine\"}}";
  }
  if (shard_seen) {
    sep();
    os << "{\"ph\": \"M\", \"pid\": " << kShardPid
       << ", \"tid\": 0, \"name\": \"process_name\", "
       << "\"args\": {\"name\": \"gcol shards\"}}";
  }
  for (const Track& tr : tracks) {
    sep();
    os << "{\"ph\": \"M\", \"pid\": " << tr.pid << ", \"tid\": " << tr.tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << (tr.pid == kShardPid ? "shard " : "thread ") << tr.tid << "\"}}";
  }

  // Data rows, kept balanced per track: drop-oldest overflow can leave
  // an end without its begin (skip it) or a begin without its end
  // (close it at the final timestamp), so the export is always loadable
  // and tools/check_trace.py-clean.
  struct Open {
    const char* name;
    Track track;
  };
  std::vector<std::pair<Track, std::vector<const char*>>> stacks;
  auto stack_of = [&](const Track& tr) -> std::vector<const char*>& {
    for (auto& [key, st] : stacks) {
      if (key == tr) return st;
    }
    stacks.emplace_back(tr, std::vector<const char*>{});
    return stacks.back().second;
  };

  auto emit = [&](const char* name, char ph, std::uint64_t ts_ns,
                  const Track& tr, const std::uint64_t* arg) {
    sep();
    os << "{\"name\": ";
    write_json_string(os, name);
    os << ", \"ph\": \"" << ph << "\", \"ts\": ";
    write_ts_us(os, ts_ns);
    os << ", \"pid\": " << tr.pid << ", \"tid\": " << tr.tid;
    if (ph == 'i') os << ", \"s\": \"t\"";
    if (arg != nullptr) os << ", \"args\": {\"v\": " << *arg << "}";
    os << "}";
  };

  for (const TraceEvent& ev : evs) {
    const Track tr = track_of(ev);
    switch (ev.phase) {
      case TraceEvent::Phase::kBegin:
        stack_of(tr).push_back(ev.name);
        emit(ev.name, 'B', ev.ts_ns, tr, &ev.arg);
        break;
      case TraceEvent::Phase::kEnd: {
        auto& st = stack_of(tr);
        if (st.empty()) break;  // begin fell off the ring: skip
        st.pop_back();
        emit(ev.name, 'E', ev.ts_ns, tr, nullptr);
        break;
      }
      case TraceEvent::Phase::kInstant:
        emit(ev.name, 'i', ev.ts_ns, tr, &ev.arg);
        break;
    }
  }
  for (auto& [tr, st] : stacks) {
    while (!st.empty()) {
      emit(st.back(), 'E', max_ts, tr, nullptr);
      st.pop_back();
    }
  }

  os << "\n  ]\n}\n";
}

void Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("gcol-trace: cannot open trace output: " + path);
  }
  write_chrome_trace(os);
}

}  // namespace gcol::obs
