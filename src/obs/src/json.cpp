#include "greedcolor/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gcol::obs {

Json& Json::push_back(Json v) {
  if (kind_ != Kind::kArray) {
    throw std::logic_error("obs::Json::push_back on a non-array value");
  }
  array_.push_back(std::move(v));
  return array_.back();
}

Json& Json::set(const std::string& key, Json v) {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("obs::Json::set on a non-object value");
  }
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  object_.emplace_back(key, std::move(v));
  return object_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray:
      return array_.size();
    case Kind::kObject:
      return object_.size();
    default:
      return 0;
  }
}

void Json::write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (c < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          os << raw;
        }
    }
  }
  os << '"';
}

void Json::dump(std::ostream& os, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) *
                            static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      os << int_;
      break;
    case Kind::kUint:
      os << uint_;
      break;
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        os << "null";  // NaN/inf are not JSON
        break;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      os << buf;
      break;
    }
    case Kind::kString:
      write_escaped(os, string_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        os << pad;
        array_[i].dump(os, indent, depth + 1);
        if (i + 1 < array_.size()) os << ',';
        os << '\n';
      }
      os << close_pad << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        os << pad;
        write_escaped(os, object_[i].first);
        os << ": ";
        object_[i].second.dump(os, indent, depth + 1);
        if (i + 1 < object_.size()) os << ',';
        os << '\n';
      }
      os << close_pad << '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent, 0);
  return os.str();
}

}  // namespace gcol::obs
