#include "greedcolor/obs/report.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "greedcolor/core/result.hpp"
#include "greedcolor/dist/dist_bgpc.hpp"
#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/graph/graph_stats.hpp"
#include "greedcolor/obs/metrics.hpp"
#include "greedcolor/obs/trace.hpp"

namespace gcol::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffu;
    h *= kFnvPrime;
  }
}

template <typename T>
void fnv_vec(std::uint64_t& h, const std::vector<T>& vec) {
  fnv_u64(h, vec.size());
  for (const T& v : vec) fnv_u64(h, static_cast<std::uint64_t>(v));
}

std::string hex16(std::uint64_t h) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "fnv1a64:%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

Json degradation_object(const ColoringResult& r) {
  Json d = Json::object();
  d.set("degraded", r.degraded);
  d.set("sequential_fallback", r.sequential_fallback);
  d.set("rounds_capped", r.rounds_capped);
  d.set("deadline_hit", r.deadline_hit);
  d.set("faults_injected", static_cast<std::uint64_t>(r.faults_injected));
  d.set("repaired_vertices",
        static_cast<std::uint64_t>(r.repaired_vertices));
  return d;
}

Json kernel_object(const KernelCounters& c) {
  Json k = Json::object();
  k.set("edges_visited", c.edges_visited);
  k.set("color_probes", c.color_probes);
  k.set("conflicts", c.conflicts);
  k.set("colored", c.colored);
  return k;
}

}  // namespace

std::uint64_t fingerprint(const BipartiteGraph& g) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, static_cast<std::uint64_t>(g.num_vertices()));
  fnv_u64(h, static_cast<std::uint64_t>(g.num_nets()));
  fnv_vec(h, g.vptr());
  fnv_vec(h, g.vadj());
  fnv_vec(h, g.nptr());
  fnv_vec(h, g.nadj());
  return h;
}

std::uint64_t fingerprint(const Graph& g) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, static_cast<std::uint64_t>(g.num_vertices()));
  fnv_vec(h, g.ptr());
  fnv_vec(h, g.adj());
  return h;
}

std::string fingerprint_string(const BipartiteGraph& g) {
  return hex16(fingerprint(g));
}

std::string fingerprint_string(const Graph& g) {
  return hex16(fingerprint(g));
}

RunReport::RunReport(std::string tool) {
  root_.set("schema", kSchema);
  root_.set("tool", std::move(tool));
}

Json& RunReport::section(const std::string& key) {
  if (Json* existing = const_cast<Json*>(root_.find(key))) return *existing;
  return root_.set(key, Json::object());
}

void RunReport::set_option(const std::string& key, Json value) {
  section("options").set(key, std::move(value));
}

void RunReport::set_graph(const BipartiteGraph& g) {
  Json& sec = section("graph");
  sec.set("fingerprint", fingerprint_string(g));
  sec.set("vertices", static_cast<std::uint64_t>(g.num_vertices()));
  sec.set("nets", static_cast<std::uint64_t>(g.num_nets()));
  sec.set("edges", static_cast<std::uint64_t>(g.num_edges()));
  sec.set("signature", signature(g));
}

void RunReport::set_graph(const Graph& g) {
  Json& sec = section("graph");
  sec.set("fingerprint", fingerprint_string(g));
  sec.set("vertices", static_cast<std::uint64_t>(g.num_vertices()));
  sec.set("signature", signature(g));
}

void RunReport::set_coloring(const ColoringResult& r) {
  Json& totals = section("totals");
  totals.set("wall_ms", r.total_seconds * 1000.0);
  totals.set("colors", static_cast<std::uint64_t>(r.num_colors));
  totals.set("rounds", static_cast<std::uint64_t>(r.rounds));
  root_.set("degradation", degradation_object(r));
  if (!r.iterations.empty()) set_rounds(r.iterations);
}

void RunReport::set_rounds(const std::vector<IterationStats>& iterations) {
  Json rounds = Json::array();
  for (const IterationStats& it : iterations) {
    Json row = Json::object();
    row.set("round", static_cast<std::uint64_t>(it.round));
    row.set("queue", static_cast<std::uint64_t>(it.queue_size));
    row.set("conflicts", static_cast<std::uint64_t>(it.conflicts));
    row.set("color_ms", it.color_seconds * 1000.0);
    row.set("conflict_ms", it.conflict_seconds * 1000.0);
    row.set("net_based_coloring", it.net_based_coloring);
    row.set("net_based_conflict", it.net_based_conflict);
    row.set("color_forbidden_set", to_string(it.color_forbidden_set));
    row.set("conflict_forbidden_set", to_string(it.conflict_forbidden_set));
    row.set("color", kernel_object(it.color_counters));
    row.set("conflict", kernel_object(it.conflict_counters));
    rounds.push_back(std::move(row));
  }
  root_.set("rounds", std::move(rounds));
}

void RunReport::set_dist(const DistOptions& options, const DistResult& r) {
  Json& totals = section("totals");
  totals.set("wall_ms", r.total_seconds * 1000.0);
  totals.set("colors", static_cast<std::uint64_t>(r.num_colors));
  totals.set("supersteps", static_cast<std::uint64_t>(r.stats.supersteps));

  Json& sec = section("dist");
  sec.set("ranks", static_cast<std::uint64_t>(options.num_ranks));
  sec.set("partition", options.partition == DistOptions::Partition::kHash
                           ? "hash"
                           : "block");
  sec.set("transport",
          options.transport == DistOptions::TransportKind::kSocket
              ? "socket"
              : "mailbox");
  sec.set("max_retries", static_cast<std::uint64_t>(options.max_retries));
  sec.set("interior_vertices",
          static_cast<std::uint64_t>(r.stats.interior_vertices));
  sec.set("boundary_vertices",
          static_cast<std::uint64_t>(r.stats.boundary_vertices));
  Json messages = Json::object();
  messages.set("sent", r.stats.messages_sent);
  messages.set("delivered", r.stats.messages_delivered);
  messages.set("dropped", r.stats.messages_dropped);
  messages.set("stale_ignored", r.stats.messages_stale_ignored);
  messages.set("duplicated", r.stats.messages_duplicated);
  sec.set("messages", std::move(messages));
  sec.set("conflicts", r.stats.conflicts);
  sec.set("retries", r.stats.retries);
  sec.set("backoff_us_total", r.stats.backoff_us_total);
  Json trace = Json::array();
  for (const RetryEvent& ev : r.retry_trace) {
    Json row = Json::object();
    row.set("superstep", static_cast<std::uint64_t>(ev.superstep));
    row.set("src", static_cast<std::uint64_t>(ev.src));
    row.set("dst", static_cast<std::uint64_t>(ev.dst));
    row.set("attempt", static_cast<std::uint64_t>(ev.attempt));
    row.set("backoff_us", ev.backoff_us);
    trace.push_back(std::move(row));
  }
  sec.set("retry_trace", std::move(trace));

  Json deg = Json::object();
  deg.set("degraded", r.degraded);
  deg.set("fallback", r.stats.fallback);
  deg.set("deadline_hit", r.stats.deadline_hit);
  deg.set("dirty_boundary",
          static_cast<std::uint64_t>(r.stats.dirty_boundary));
  deg.set("repair_recolored",
          static_cast<std::uint64_t>(r.stats.repair_recolored));
  deg.set("repaired_vertices",
          static_cast<std::uint64_t>(r.repaired_vertices));
  root_.set("degradation", std::move(deg));
}

void RunReport::set_metrics(const MetricsRegistry& m) {
  Json& sec = section("metrics");
  for (const auto& [name, value] : m.counters()) sec.set(name, value);
}

void RunReport::set_tracer(const Tracer& t, const std::string& trace_path) {
  Json& sec = section("trace");
  sec.set("events", t.recorded());
  sec.set("dropped", t.dropped());
  sec.set("threads", static_cast<std::uint64_t>(t.threads()));
  if (!trace_path.empty()) sec.set("file", trace_path);
}

void RunReport::write(std::ostream& os) const {
  root_.dump(os);
  os << '\n';
}

void RunReport::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("gcol-report: cannot open report output: " +
                             path);
  }
  write(os);
}

}  // namespace gcol::obs
