// MetricsRegistry: one named-counter surface over the repo's scattered
// telemetry structs (the metrics half of src/obs).
//
// KernelCounters (util), DistStats (dist), AuditReport (analyze), the
// contract check counter, and the tracer's own drop accounting each
// grew their own aggregation path; every consumer (color_tool text
// output, three bench JSON writers) re-flattened them by hand, which is
// how DistStats fields went missing from print paths. The registry is
// the single flattening: record_* adapters map every struct field to a
// dotted lower-case name (`dist.messages.sent`, `audit.escaped_conflicts`,
// `trace.dropped` — full convention in docs/OBSERVABILITY.md), and the
// RunReport emits the whole registry under a stable schema so nothing
// is print-path-only.
//
// Values are unsigned 64-bit monotonic counters (booleans as 0/1).
// Durations are deliberately NOT metrics — wall times belong to the
// trace spans and the per-round report sections, where they keep their
// double precision.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace gcol {

struct KernelCounters;   // greedcolor/util/counters.hpp
struct ColoringResult;   // greedcolor/core/result.hpp
struct DistStats;        // greedcolor/dist/dist_bgpc.hpp
struct DistResult;       // greedcolor/dist/dist_bgpc.hpp

namespace audit {
struct AuditReport;      // greedcolor/analyze/audit.hpp
}

namespace obs {

class Tracer;

class MetricsRegistry {
 public:
  /// Add `delta` to `name` (creating it at 0).
  void add(std::string_view name, std::uint64_t delta = 1);
  /// Set `name` to `value` (creating it).
  void set(std::string_view name, std::uint64_t value);
  /// Booleans are encoded as 0/1 so the schema stays one value type.
  void set_flag(std::string_view name, bool value) {
    set(name, value ? 1 : 0);
  }

  [[nodiscard]] bool has(std::string_view name) const;
  /// 0 when absent — counters that never fired read as zero.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>&
  counters() const {
    return counters_;
  }

  [[nodiscard]] std::size_t size() const { return counters_.size(); }
  [[nodiscard]] bool empty() const { return counters_.empty(); }

  // ---- adapters: one per telemetry struct, names under one prefix ----

  /// KernelCounters under `prefix` (e.g. "core.color"): .edges_visited,
  /// .color_probes, .conflicts, .colored, .max_color (skipped when the
  /// kernel assigned nothing). Adds, so per-round records accumulate.
  void record_kernel(std::string_view prefix, const KernelCounters& c);

  /// Shared-memory run: core.rounds/colors + degradation flags +
  /// kernel totals under core.color / core.conflict.
  void record_result(const ColoringResult& r);

  /// Every DistStats field (satellite: nothing stays print-path-only)
  /// plus the retry-trace length under dist.*.
  void record_dist(const DistResult& r);

  /// audit.* counters from a speculative-race audit.
  void record_audit(const audit::AuditReport& r);

  /// contract.checks_evaluated (0 in unchecked builds).
  void record_contracts();

  /// trace.events / trace.dropped / trace.threads.
  void record_tracer(const Tracer& t);

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

}  // namespace obs
}  // namespace gcol
