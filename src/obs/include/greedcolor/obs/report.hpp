// RunReport: the machine-readable run document (schema gcol-report-v1)
// and the graph fingerprint helper.
//
// One schema for everything that reports a run: color_tool --report,
// bench/chaos_sweep, bench/micro_coloring. A document always carries
//   schema   "gcol-report-v1"
//   tool     producing binary ("color_tool", "chaos_sweep", ...)
// and any of the optional sections the producer filled in:
//   options      flat object of the knobs that shaped the run
//   graph        fingerprint + dims + one-line structural signature
//   totals       wall_ms / colors / rounds-or-supersteps
//   rounds       per-round IterationStats (the Figure 1 breakdown)
//   dist         superstep + retry-trace telemetry
//   degradation  watchdog / fallback / repair flags and counts
//   metrics      the full MetricsRegistry (flat name -> uint64)
//   trace        recorded/dropped event accounting (+ trace file path)
//   bench        harness-specific payload (curves, captures, ...)
// tools/check_trace.py --report validates the envelope; consumers key
// on `schema` + section presence, never on the producing tool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "greedcolor/obs/json.hpp"

namespace gcol {

class BipartiteGraph;    // greedcolor/graph/bipartite.hpp
class Graph;             // greedcolor/graph/csr.hpp
struct ColoringResult;   // greedcolor/core/result.hpp
struct IterationStats;   // greedcolor/core/result.hpp
struct DistOptions;      // greedcolor/dist/dist_bgpc.hpp
struct DistResult;       // greedcolor/dist/dist_bgpc.hpp

namespace obs {

class MetricsRegistry;
class Tracer;

/// FNV-1a over the CSR arrays + dimensions: a stable content hash for
/// "same graph bytes" checks across runs (and the cache key the service
/// front-end will want). Not cryptographic.
[[nodiscard]] std::uint64_t fingerprint(const BipartiteGraph& g);
[[nodiscard]] std::uint64_t fingerprint(const Graph& g);
/// "fnv1a64:<16 hex digits>" as written into reports.
[[nodiscard]] std::string fingerprint_string(const BipartiteGraph& g);
[[nodiscard]] std::string fingerprint_string(const Graph& g);

class RunReport {
 public:
  static constexpr const char* kSchema = "gcol-report-v1";

  explicit RunReport(std::string tool);

  /// Create-or-get a top-level object section ("options", "bench", ...).
  Json& section(const std::string& key);
  /// Convenience for the options section.
  void set_option(const std::string& key, Json value);

  void set_graph(const BipartiteGraph& g);
  void set_graph(const Graph& g);

  /// Shared-memory run: totals + degradation (+ rounds when the run
  /// collected iteration stats).
  void set_coloring(const ColoringResult& r);
  /// Per-round breakdown only (used when the result was not kept).
  void set_rounds(const std::vector<IterationStats>& iterations);

  /// Dist run: totals + dist section (full DistStats + retry trace) +
  /// degradation.
  void set_dist(const DistOptions& options, const DistResult& r);

  void set_metrics(const MetricsRegistry& m);

  /// Trace accounting; `trace_path` (when non-empty) records where the
  /// Chrome trace for this run was written.
  void set_tracer(const Tracer& t, const std::string& trace_path = "");

  [[nodiscard]] const Json& root() const { return root_; }
  [[nodiscard]] std::string to_json() const { return root_.dump(); }
  void write(std::ostream& os) const;
  void write_file(const std::string& path) const;

 private:
  Json root_ = Json::object();
};

}  // namespace obs
}  // namespace gcol
