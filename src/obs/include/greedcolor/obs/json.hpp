// Minimal ordered JSON value for the obs exporters (RunReport,
// MetricsRegistry). Write-only by design: the repo emits machine-read
// artifacts (gcol-report-v1, Chrome traces) but never parses JSON in
// C++ — the readers are tools/*.py. Object keys keep insertion order
// so emitted documents are stable and diffable across runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace gcol::obs {

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kUint,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Json() = default;
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}             // NOLINT
  Json(int v) : kind_(Kind::kInt), int_(v) {}                // NOLINT
  Json(long v) : kind_(Kind::kInt), int_(v) {}               // NOLINT
  Json(long long v) : kind_(Kind::kInt), int_(v) {}          // NOLINT
  Json(unsigned v) : kind_(Kind::kUint), uint_(v) {}         // NOLINT
  Json(unsigned long v) : kind_(Kind::kUint), uint_(v) {}    // NOLINT
  Json(unsigned long long v) : kind_(Kind::kUint), uint_(v) {}  // NOLINT
  Json(double v) : kind_(Kind::kDouble), double_(v) {}       // NOLINT
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}  // NOLINT
  Json(const char* v) : kind_(Kind::kString), string_(v) {}  // NOLINT

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  [[nodiscard]] Kind kind() const { return kind_; }

  /// Array append. The value must already be an array.
  Json& push_back(Json v);

  /// Object insert-or-replace, preserving first-insertion order.
  /// The value must already be an object. Returns the stored value.
  Json& set(const std::string& key, Json v);

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;

  [[nodiscard]] std::size_t size() const;

  /// Pretty-printed UTF-8 JSON. `indent` spaces per level; NaN and
  /// infinities (invalid JSON) are emitted as null.
  void dump(std::ostream& os, int indent = 2, int depth = 0) const;
  [[nodiscard]] std::string dump(int indent = 2) const;

  static void write_escaped(std::ostream& os, const std::string& s);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace gcol::obs
