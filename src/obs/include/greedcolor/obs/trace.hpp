// gcol-trace: lock-free per-thread span/event recording for the
// coloring engines (the tracing half of src/obs).
//
// The paper's whole evaluation is a per-round, per-phase timing story
// (Figure 1, Table I), and the distributed/robust layers added their
// own per-superstep and degradation timelines on top — but none of it
// was correlated in time or exportable. A Tracer closes that gap: the
// drivers record span boundaries (begin/end) and instant events into
// one fixed-capacity ring buffer per engine thread, and the result
// exports as Chrome trace-event JSON (loadable in Perfetto or
// about://tracing) with one track per thread and one per shard.
//
// Design constraints, in order:
//  * Zero cost when absent. Recording is reached only through the
//    GCOL_TRACE_* macros below, which compile to nothing when the
//    GCOL_TRACE build option is OFF — no symbol references, no tracer
//    argument evaluation beyond an unevaluated sizeof. With the option
//    ON but no tracer attached (ColoringOptions::tracer == nullptr,
//    the default), the cost is one null check per macro site, the same
//    contract as the auditor/checker/fault_plan seams.
//  * Lock-free hot path. Each ring has exactly one writer (its OpenMP
//    thread); a push is a slot store plus one release store of the
//    head index. Overflow drops the OLDEST events (ring semantics) and
//    counts them — a long run keeps its tail, and the drop count is
//    surfaced as the `trace.dropped` metric, never silently.
//  * Driver-side reads only. Snapshots and exports are taken between
//    parallel regions (or after the run); the release/acquire pair on
//    the head index is also the tsan-visible ordering edge, mirroring
//    CounterSlots::publish/merge_into.
//
// Span names must be string literals (the rings store the pointer,
// never a copy). The taxonomy lives in docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace gcol::obs {

#if defined(GCOL_TRACE) && !defined(GCOL_TRACE_FORCE_OFF)
inline constexpr bool kTraceEnabled = true;
#else
inline constexpr bool kTraceEnabled = false;
#endif

/// One recorded span boundary or instant event.
struct TraceEvent {
  enum class Phase : std::uint8_t { kBegin, kEnd, kInstant };

  const char* name = nullptr;  ///< string literal, never owned
  std::uint64_t ts_ns = 0;     ///< nanoseconds since the tracer epoch
  std::uint64_t arg = 0;       ///< one numeric payload (round, count, us)
  std::int32_t shard = -1;     ///< >= 0 routes the event to a shard track
  std::uint16_t tid = 0;       ///< recording engine thread
  Phase phase = Phase::kInstant;
};

/// Fixed-capacity single-writer ring. The writer owns push(); any
/// other thread may take a snapshot, ordered by the release/acquire
/// head index (callers still snapshot between regions in practice —
/// a writer lapping a concurrent reader can tear the oldest slots).
class TraceBuffer {
 public:
  TraceBuffer() = default;

  /// Drops all content and resizes to `capacity` slots.
  void reset(std::size_t capacity);

  void push(const TraceEvent& ev);

  /// Total push() calls (monotonic, includes dropped events).
  [[nodiscard]] std::uint64_t pushed() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Events overwritten by ring wrap-around (drop-oldest).
  [[nodiscard]] std::uint64_t dropped() const;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Surviving events, oldest to newest.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> head_{0};
};

struct TracerOptions {
  /// Ring slots per engine thread. Overflow drops the oldest events
  /// and counts them (`Tracer::dropped`, metric `trace.dropped`).
  std::size_t ring_capacity = std::size_t{1} << 14;
};

/// The attachable trace sink (ColoringOptions::tracer /
/// DistOptions::tracer). Not owned by the engines; one coloring at a
/// time per tracer — concurrent colorings need separate tracers, the
/// same contract as the auditor.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  /// Ensure at least `threads` rings exist (existing content is kept).
  /// The drivers call this with their resolved thread count before the
  /// first parallel region; events from a thread id with no ring are
  /// counted as dropped instead of recorded.
  void attach(int threads);

  // ---- hot path (any engine thread) ----
  void begin(const char* name, std::uint64_t arg = 0, int shard = -1);
  void end(const char* name, int shard = -1);
  void instant(const char* name, std::uint64_t arg = 0, int shard = -1);

  // ---- driver side ----
  [[nodiscard]] int threads() const { return ring_count_; }
  /// Events currently recorded (survivors across all rings).
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events lost to ring overflow or missing rings.
  [[nodiscard]] std::uint64_t dropped() const;
  /// All surviving events in timestamp order.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Drop all recorded events (rings keep their capacity).
  void clear();

  /// Chrome trace-event JSON: one track per engine thread under
  /// kEnginePid, one per shard under kShardPid. Spans are balanced by
  /// construction: an end without a surviving begin (ring overflow) is
  /// skipped, and spans still open at export close at the last
  /// timestamp. Validate with tools/check_trace.py.
  void write_chrome_trace(std::ostream& os) const;
  void write_chrome_trace_file(const std::string& path) const;

  static constexpr int kEnginePid = 1;
  static constexpr int kShardPid = 2;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  void record(const char* name, TraceEvent::Phase phase, std::uint64_t arg,
              int shard);
  [[nodiscard]] std::uint64_t now_ns() const;

  TracerOptions options_;
  std::unique_ptr<TraceBuffer[]> rings_;
  int ring_count_ = 0;
  std::atomic<std::uint64_t> lost_{0};  ///< events with no ring to land in
  std::uint64_t epoch_ns_ = 0;          ///< steady-clock origin
};

/// RAII span: begin on construction, end on destruction. Prefer the
/// GCOL_TRACE_SPAN macro, which compiles out with the build option.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, const char* name, std::uint64_t arg = 0,
            int shard = -1)
      : tracer_(tracer), name_(name), shard_(shard) {
    if (tracer_ != nullptr) tracer_->begin(name_, arg, shard_);
  }
  ~SpanGuard() {
    if (tracer_ != nullptr) tracer_->end(name_, shard_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  int shard_;
};

}  // namespace gcol::obs

// The only sanctioned call sites: everything the engines record goes
// through these, so a GCOL_TRACE=OFF build compiles the whole
// instrumentation — tracer argument included — down to nothing but an
// unevaluated sizeof (no unused-variable warnings, no obs symbols).
#if defined(GCOL_TRACE) && !defined(GCOL_TRACE_FORCE_OFF)
#define GCOL_TRACE_CAT2(a, b) a##b
#define GCOL_TRACE_CAT(a, b) GCOL_TRACE_CAT2(a, b)
/// Scoped span over the rest of the enclosing block.
#define GCOL_TRACE_SPAN(tracer, ...) \
  ::gcol::obs::SpanGuard GCOL_TRACE_CAT(gcol_trace_span_, \
                                        __LINE__)((tracer), __VA_ARGS__)
/// Explicit span boundaries (loop bodies with early exits).
#define GCOL_TRACE_BEGIN(tracer, ...)                            \
  do {                                                           \
    if (auto* gcol_trace_t_ = (tracer)) gcol_trace_t_->begin(__VA_ARGS__); \
  } while (0)
#define GCOL_TRACE_END(tracer, ...)                              \
  do {                                                           \
    if (auto* gcol_trace_t_ = (tracer)) gcol_trace_t_->end(__VA_ARGS__); \
  } while (0)
/// Zero-duration instant event.
#define GCOL_TRACE_EVENT(tracer, ...)                            \
  do {                                                           \
    if (auto* gcol_trace_t_ = (tracer)) gcol_trace_t_->instant(__VA_ARGS__); \
  } while (0)
#else
#define GCOL_TRACE_SPAN(tracer, ...) \
  do {                               \
    (void)sizeof((tracer));          \
  } while (0)
#define GCOL_TRACE_BEGIN(tracer, ...) \
  do {                                \
    (void)sizeof((tracer));           \
  } while (0)
#define GCOL_TRACE_END(tracer, ...) \
  do {                              \
    (void)sizeof((tracer));         \
  } while (0)
#define GCOL_TRACE_EVENT(tracer, ...) \
  do {                                \
    (void)sizeof((tracer));           \
  } while (0)
#endif
