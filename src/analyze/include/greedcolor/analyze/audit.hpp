// Speculative-race auditor: turns "we believe the races are benign"
// into a checked property.
//
// The paper's engines (Algs. 4-8) deliberately race on the shared color
// array: coloring kernels read neighbor colors without synchronization
// and a trailing conflict-removal pass is trusted to catch every real
// conflict. The *sanctioned* outcome of that race is an overturned
// write — a speculative color that conflict removal uncolors before the
// round ends. The *unsanctioned* outcome is an escaped conflict: two
// distance-2 neighbors holding the same color after conflict removal
// with neither re-queued. ThreadSanitizer cannot tell the two apart
// (both are relaxed-atomic accesses and data-race-free by the memory
// model), and a logic bug in conflict removal — or a stale write
// landing after the pass, as FaultPlan injects — produces no race at
// all. The auditor checks the semantic property directly.
//
// Two layers:
//  * A per-round partial-coloring sweep (end_round) that works in every
//    build: after each conflict-removal pass, no two colored
//    distance-<=2 neighbors may share a color (uncolored / re-queued
//    vertices are exempt — that is exactly the speculation the paper
//    sanctions). Runs only when an AuditContext is attached, so the
//    happy path pays one null check per round.
//  * Per-thread ledgers (GCOL_AUDIT builds only) fed by hooks in the
//    kernels' color accessors. Ledger replay attributes each escaped
//    conflict to the speculative write that produced it and counts the
//    benign speculation (reads observed, writes overturned) so tests
//    can assert the sanctioned mechanism actually engaged.
//
// The hooks reach the context through a process-global atomic registry
// (AuditScope). Install is first-wins: one audited coloring holds the
// registry at a time, and a scope that loses the race simply runs
// unhooked — its per-round sweeps still fire (the driver calls its
// context directly through ColoringOptions::auditor), only the ledger
// attribution goes to the scope that won. Concurrent attach/detach from
// multiple threads is therefore safe by construction: no torn pointer,
// no dangling restore, no UB — just checked-build tooling that degrades
// to sweep-only when contended.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol::audit {

#if defined(GCOL_AUDIT)
inline constexpr bool kAuditEnabled = true;
#else
inline constexpr bool kAuditEnabled = false;
#endif

struct AuditOptions {
  /// Throw Error(kInternalInvariant) from end_round as soon as an
  /// escaped conflict is found (the "fail loudly" mode). When false the
  /// violations accumulate in the report for inspection.
  bool fail_fast = false;
  /// Cap on recorded violations (the sweep keeps counting, but stops
  /// materializing descriptions).
  std::size_t max_violations = 32;
  /// Write-ledger slots reserved per thread at attach time. The
  /// overflow policy is grow-never-drop: a round that outruns the
  /// reservation reallocates (counted in AuditReport::ledger_growths)
  /// but records every event — an audit that silently dropped the write
  /// it later needs to attribute would be worse than a slow one.
  std::size_t ledger_reserve = 4096;
};

/// One escaped conflict: vertices `a` and `b` share `color` through
/// `via` (the common net for BGPC, the middle vertex for D2GC; equals
/// `a` or `b` for a distance-1 D2GC clash) after conflict removal.
struct AuditViolation {
  int round = 0;
  vid_t a = kInvalidVertex;
  vid_t b = kInvalidVertex;
  vid_t via = kInvalidVertex;
  color_t color = kNoColor;
  /// True when a ledgered speculative write from this round produced
  /// the surviving color (GCOL_AUDIT builds; always false otherwise).
  bool from_recorded_write = false;

  [[nodiscard]] std::string to_string() const;
};

struct AuditReport {
  int rounds_audited = 0;
  /// Escaped conflicts found across all rounds (not capped).
  std::uint64_t escaped_conflicts = 0;
  /// GCOL_AUDIT builds: speculative color loads observed by the hooks.
  std::uint64_t reads_recorded = 0;
  /// GCOL_AUDIT builds: speculative color stores observed by the hooks.
  std::uint64_t writes_recorded = 0;
  /// GCOL_AUDIT builds: recorded writes that did NOT survive to the end
  /// of their round — the sanctioned, paper-endorsed speculation
  /// (overturned by conflict removal or a later same-round store).
  std::uint64_t writes_overturned = 0;
  /// GCOL_AUDIT builds: ledger reallocations past the per-thread
  /// reservation (AuditOptions::ledger_reserve). Nonzero means the
  /// audit paid heap traffic mid-round, never that events were lost.
  std::uint64_t ledger_growths = 0;
  std::vector<AuditViolation> violations;

  [[nodiscard]] bool clean() const { return escaped_conflicts == 0; }
  [[nodiscard]] std::string summary() const;
};

class AuditContext {
 public:
  explicit AuditContext(AuditOptions options = {});

  // ---- driver side (called by color_bgpc / color_d2gc) ----

  /// Size the per-thread ledgers; called by AuditScope on installation.
  void attach(int threads);

  /// Start a round: clears the round ledgers.
  void begin_round(int round);

  /// Audit the partial coloring after this round's conflict removal
  /// (and fault injection, so injected stale writes are visible).
  /// Throws Error(kInternalInvariant) in fail_fast mode on the first
  /// escaped conflict.
  void end_round(const BipartiteGraph& g, const color_t* c);
  void end_round(const Graph& g, const color_t* c);

  [[nodiscard]] const AuditReport& report() const { return report_; }

  // ---- hook side (kernels' color accessors, GCOL_AUDIT builds) ----

  void on_read(vid_t v, color_t col);
  void on_write(vid_t v, color_t col);

 private:
  struct WriteEvent {
    vid_t v;
    color_t col;
  };
  // Cache-line padded so two worker threads never share a ledger line.
  struct alignas(64) Ledger {
    std::vector<WriteEvent> writes;
    std::uint64_t reads = 0;
    std::uint64_t growths = 0;  ///< reallocations past the reservation
  };

  /// Harvest the round's ledgers: fills survivors_ with writes whose
  /// color is still live in `c`, bumps the read/write/overturned tally.
  void harvest_ledgers(const color_t* c);
  [[nodiscard]] bool write_survived(vid_t v) const;
  void record_violation(vid_t a, vid_t b, vid_t via, color_t col);
  void finish_round();

  /// seen_stamp_/seen_vertex_ implement the per-net "first holder of
  /// each color" scan without clearing between nets (stamp idiom).
  void reset_seen(std::size_t capacity);
  [[nodiscard]] vid_t seen_holder(color_t col) const;
  void mark_seen(color_t col, vid_t holder);

  AuditOptions options_;
  AuditReport report_;
  int round_ = 0;
  std::vector<Ledger> ledgers_;
  // v -> "a ledgered write of v's current color survived this round"
  // (stamped per end_round epoch, never cleared).
  std::vector<std::uint32_t> survivor_stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<vid_t> seen_vertex_;
  std::vector<std::uint32_t> seen_stamp_;
  std::uint32_t seen_epoch_ = 0;
};

/// The globally active context, or nullptr (hook fast path).
[[nodiscard]] AuditContext* active() noexcept;

/// RAII installer used by the coloring drivers: installs `ctx` (may be
/// null — then this is a no-op) as the active context for the duration
/// of one engine invocation. Install is a first-wins CAS against the
/// empty registry; a scope that finds it occupied (another coloring is
/// already being audited, possibly on another thread) does not install
/// and does not clear on exit — the winning scope's uninstall is the
/// only store of nullptr, so concurrent scopes can never leave a
/// dangling context behind.
class AuditScope {
 public:
  AuditScope(AuditContext* ctx, int threads);
  ~AuditScope();
  AuditScope(const AuditScope&) = delete;
  AuditScope& operator=(const AuditScope&) = delete;

  /// True when this scope won the registry (its context receives the
  /// kernel ledger hooks; sweep-only otherwise).
  [[nodiscard]] bool installed() const noexcept { return installed_; }

 private:
  bool installed_;
};

}  // namespace gcol::audit
