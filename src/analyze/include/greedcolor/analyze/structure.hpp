// Structural analyzer for CSR / bipartite-CSR inputs.
//
// The coloring kernels assume — and never re-check on the hot path —
// that their input CSR is well-formed: monotone pointer arrays,
// in-range sorted deduplicated adjacency, and (bipartite) a transpose
// half that agrees edge-for-edge with the forward half. analyze_graph()
// verifies every one of those assumptions and reports *all* findings
// (capped), unlike the boolean validate() members, so a corrupted input
// can be diagnosed instead of merely rejected. Checked builds run it at
// ingest (see graph/src/builder.cpp); tools expose it via --analyze.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

enum class StructuralIssueKind {
  kBadPointerArray,     ///< ptr length/monotonicity/terminal broken
  kIndexOutOfRange,     ///< adjacency id outside its vertex universe
  kUnsortedAdjacency,   ///< a list is not strictly ascending
  kDuplicateAdjacency,  ///< repeated id within one list
  kSelfLoop,            ///< unipartite: v in adj(v)
  kAsymmetricAdjacency, ///< unipartite: u in adj(v) but not v in adj(u)
  kTransposeMismatch,   ///< bipartite: forward/transpose halves disagree
  kDegreeBoundExceeded, ///< a degree exceeds the vertex universe size
};

[[nodiscard]] const char* to_string(StructuralIssueKind kind);

struct StructuralIssue {
  StructuralIssueKind kind;
  /// Row (vertex or net id) the issue was found in; kInvalidVertex for
  /// whole-array findings.
  vid_t where = kInvalidVertex;
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

struct GraphAnalysis {
  std::vector<StructuralIssue> issues;
  /// Total issues found (issues.size() is capped, this is not).
  std::size_t total_issues = 0;

  // Summary facts (valid when the pointer arrays were readable).
  vid_t num_vertices = 0;
  vid_t num_nets = 0;  ///< unipartite: == num_vertices
  eid_t num_edges = 0;
  vid_t max_vertex_degree = 0;
  vid_t max_net_degree = 0;
  /// The paper's trivial lower bound L on the number of colors
  /// (max net degree for BGPC; max closed-neighborhood clique floor,
  /// i.e. max degree + 1, for D2GC).
  color_t color_lower_bound = 0;

  [[nodiscard]] bool ok() const { return total_issues == 0; }
  [[nodiscard]] std::string to_string() const;
};

/// Analyze a bipartite (BGPC) instance. `max_issues` caps the
/// materialized issue list; counting continues past it.
[[nodiscard]] GraphAnalysis analyze_graph(const BipartiteGraph& g,
                                          std::size_t max_issues = 16);

/// Analyze a unipartite (D2GC) instance.
[[nodiscard]] GraphAnalysis analyze_graph(const Graph& g,
                                          std::size_t max_issues = 16);

}  // namespace gcol
