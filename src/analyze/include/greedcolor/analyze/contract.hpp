// GCOL_CONTRACT / GCOL_ASSUME: the checked-build contract layer.
//
// GCOL_CONTRACT(cond, msg) states an invariant the library promises to
// maintain. In checked builds (GCOL_AUDIT, or GCOL_CONTRACTS alone) a
// violated contract throws Error(kInternalInvariant) with the source
// location — a library bug, never an input error. In release builds the
// macro compiles to nothing (the condition is not evaluated).
//
// GCOL_ASSUME(cond) states an assumption about values flowing through a
// hot path (e.g. a color cursor is non-negative). Checked builds verify
// it like a contract; release builds keep the expression syntactically
// alive but never evaluate it. It deliberately does NOT lower to
// __builtin_unreachable(): a speculative race could falsify a plausible
// assumption at run time, and turning that into UB would convert a
// recoverable mis-speculation into a miscompile.
#pragma once

#include <cstdint>

namespace gcol::contract {

#if defined(GCOL_AUDIT) || defined(GCOL_CONTRACTS)
inline constexpr bool kContractsEnabled = true;
#else
inline constexpr bool kContractsEnabled = false;
#endif

/// Throws Error(kInternalInvariant) describing the violated contract.
[[noreturn]] void fail(const char* file, int line, const char* expr,
                       const char* msg);

/// Process-wide count of contract checks evaluated (checked builds);
/// lets tests prove the instrumentation is actually live.
[[nodiscard]] std::uint64_t checks_evaluated() noexcept;

/// Internal: bumps checks_evaluated (relaxed; per-check cost is one
/// atomic increment, acceptable for checked builds only).
void note_check() noexcept;

}  // namespace gcol::contract

#if defined(GCOL_AUDIT) || defined(GCOL_CONTRACTS)
#define GCOL_CONTRACT(cond, msg)                                      \
  do {                                                                \
    ::gcol::contract::note_check();                                   \
    if (!(cond))                                                      \
      ::gcol::contract::fail(__FILE__, __LINE__, #cond, (msg));       \
  } while (0)
#define GCOL_ASSUME(cond) GCOL_CONTRACT(cond, "assumption violated")
#else
#define GCOL_CONTRACT(cond, msg) \
  do {                           \
  } while (0)
#define GCOL_ASSUME(cond)           \
  do {                              \
    (void)sizeof((cond) ? 1 : 0);   \
  } while (0)
#endif
