#include "greedcolor/analyze/audit.hpp"

#include <algorithm>
#include <sstream>

#include "greedcolor/robust/error.hpp"
#include "greedcolor/util/parallel.hpp"

namespace gcol::audit {

namespace {

// The active-context registry. Atomic so concurrent colorings on
// different threads can race their AuditScopes without UB: install is a
// first-wins CAS from empty, uninstall is the winner's store of
// nullptr. The worker-side hooks load it inside the engine's parallel
// region, which the winning scope outlives by construction.
std::atomic<AuditContext*> g_active{nullptr};

}  // namespace

AuditContext* active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

AuditScope::AuditScope(AuditContext* ctx, int threads) : installed_(false) {
  if (ctx == nullptr) return;
  ctx->attach(threads);
  AuditContext* expected = nullptr;
  installed_ = g_active.compare_exchange_strong(
      expected, ctx, std::memory_order_acq_rel, std::memory_order_acquire);
  // Lost the race (another coloring is being audited): run sweep-only.
  // The driver still reaches `ctx` directly via options.auditor.
}

AuditScope::~AuditScope() {
  if (installed_) g_active.store(nullptr, std::memory_order_release);
}

std::string AuditViolation::to_string() const {
  std::ostringstream out;
  out << "round " << round << ": vertices " << a << " and " << b
      << " share color " << color << " via " << via
      << " after conflict removal"
      << (from_recorded_write ? " (survived speculative write)" : "");
  return out.str();
}

std::string AuditReport::summary() const {
  std::ostringstream out;
  out << "rounds=" << rounds_audited << " escaped=" << escaped_conflicts
      << " reads=" << reads_recorded << " writes=" << writes_recorded
      << " overturned=" << writes_overturned
      << " ledger-growths=" << ledger_growths;
  return out.str();
}

AuditContext::AuditContext(AuditOptions options) : options_(options) {}

void AuditContext::attach(int threads) {
  const auto want = static_cast<std::size_t>(
      std::max(threads > 0 ? threads : max_threads(), 1));
  if (ledgers_.size() < want) ledgers_.resize(want);
  for (Ledger& l : ledgers_)
    if (l.writes.capacity() < options_.ledger_reserve)
      l.writes.reserve(options_.ledger_reserve);
}

void AuditContext::begin_round(int round) {
  round_ = round;
  for (Ledger& l : ledgers_) {
    l.writes.clear();
    l.reads = 0;
  }
}

void AuditContext::on_read(vid_t v, color_t col) {
  (void)v;
  (void)col;
  const auto tid = static_cast<std::size_t>(current_thread());
  if (tid < ledgers_.size()) ++ledgers_[tid].reads;
}

void AuditContext::on_write(vid_t v, color_t col) {
  const auto tid = static_cast<std::size_t>(current_thread());
  if (tid < ledgers_.size()) {
    Ledger& l = ledgers_[tid];
    // Grow-never-drop: past the reservation we pay a reallocation
    // (counted, so tests and tuners can see it) but lose no event.
    if (l.writes.size() == l.writes.capacity()) ++l.growths;
    l.writes.push_back({v, col});
  }
}

void AuditContext::harvest_ledgers(const color_t* c) {
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(survivor_stamp_.begin(), survivor_stamp_.end(), 0);
    epoch_ = 1;
  }
  for (Ledger& l : ledgers_) {
    report_.reads_recorded += l.reads;
    report_.ledger_growths += l.growths;
    l.growths = 0;
    for (const WriteEvent& e : l.writes) {
      ++report_.writes_recorded;
      if (e.col == kNoColor) continue;  // conflict-removal uncolor
      const auto idx = static_cast<std::size_t>(e.v);
      if (c[idx] == e.col) {
        if (survivor_stamp_.size() <= idx) survivor_stamp_.resize(idx + 1, 0);
        survivor_stamp_[idx] = epoch_;
      } else {
        // Overturned by conflict removal (or superseded by a later
        // same-round store): the sanctioned speculation.
        ++report_.writes_overturned;
      }
    }
  }
}

bool AuditContext::write_survived(vid_t v) const {
  const auto idx = static_cast<std::size_t>(v);
  return idx < survivor_stamp_.size() && survivor_stamp_[idx] == epoch_;
}

void AuditContext::record_violation(vid_t a, vid_t b, vid_t via,
                                    color_t col) {
  ++report_.escaped_conflicts;
  if (report_.violations.size() < options_.max_violations) {
    AuditViolation v;
    v.round = round_;
    v.a = a;
    v.b = b;
    v.via = via;
    v.color = col;
    v.from_recorded_write = write_survived(a) || write_survived(b);
    report_.violations.push_back(std::move(v));
  }
}

void AuditContext::finish_round() {
  ++report_.rounds_audited;
  if (options_.fail_fast && !report_.clean())
    raise(ErrorCode::kInternalInvariant, "speculative-race audit",
          "escaped conflict after conflict removal: " +
              (report_.violations.empty()
                   ? report_.summary()
                   : report_.violations.back().to_string()));
}

void AuditContext::reset_seen(std::size_t capacity) {
  if (seen_stamp_.size() < capacity) {
    seen_stamp_.resize(capacity, 0);
    seen_vertex_.resize(capacity, kInvalidVertex);
  }
}

vid_t AuditContext::seen_holder(color_t col) const {
  const auto idx = static_cast<std::size_t>(col);
  if (idx >= seen_stamp_.size() || seen_stamp_[idx] != seen_epoch_)
    return kInvalidVertex;
  return seen_vertex_[idx];
}

void AuditContext::mark_seen(color_t col, vid_t holder) {
  const auto idx = static_cast<std::size_t>(col);
  if (idx >= seen_stamp_.size()) reset_seen(idx + 1);
  seen_stamp_[idx] = seen_epoch_;
  seen_vertex_[idx] = holder;
}

void AuditContext::end_round(const BipartiteGraph& g, const color_t* c) {
  harvest_ledgers(c);
  // Net-side sweep, the dual of check_bgpc but on a *partial* coloring:
  // within one net every live color may appear once; an uncolored
  // vertex is pending re-coloring and exempt by the paper's contract.
  for (vid_t v = 0; v < g.num_nets(); ++v) {
    if (++seen_epoch_ == 0) {
      std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
      seen_epoch_ = 1;
    }
    for (const vid_t u : g.vtxs(v)) {
      const color_t cu = c[static_cast<std::size_t>(u)];
      if (cu == kNoColor) continue;
      const vid_t holder = seen_holder(cu);
      if (holder != kInvalidVertex)
        record_violation(u, holder, v, cu);
      else
        mark_seen(cu, u);
    }
  }
  finish_round();
}

void AuditContext::end_round(const Graph& g, const color_t* c) {
  harvest_ledgers(c);
  // Closed-neighborhood sweep (the D2GC analogue of the net sweep):
  // the colored members of N[v] must be pairwise distinct.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (++seen_epoch_ == 0) {
      std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
      seen_epoch_ = 1;
    }
    const color_t cv = c[static_cast<std::size_t>(v)];
    if (cv != kNoColor) mark_seen(cv, v);
    for (const vid_t u : g.neighbors(v)) {
      const color_t cu = c[static_cast<std::size_t>(u)];
      if (cu == kNoColor) continue;
      const vid_t holder = seen_holder(cu);
      if (holder != kInvalidVertex && holder != u)
        record_violation(u, holder, v, cu);
      else
        mark_seen(cu, u);
    }
  }
  finish_round();
}

}  // namespace gcol::audit
