#include "greedcolor/analyze/structure.hpp"

#include <algorithm>
#include <sstream>

namespace gcol {

namespace {

class IssueSink {
 public:
  IssueSink(GraphAnalysis& analysis, std::size_t max_issues)
      : analysis_(analysis), max_issues_(max_issues) {}

  void add(StructuralIssueKind kind, vid_t where, std::string detail) {
    ++analysis_.total_issues;
    if (analysis_.issues.size() < max_issues_)
      analysis_.issues.push_back({kind, where, std::move(detail)});
  }

 private:
  GraphAnalysis& analysis_;
  std::size_t max_issues_;
};

std::string fmt_count(const char* noun, std::int64_t n) {
  std::ostringstream out;
  out << n << " " << noun;
  return out.str();
}

/// Shared pointer-array sanity pass. Returns false when the array is too
/// broken to index adjacency through (callers then skip the list walks).
bool check_ptr(const std::vector<eid_t>& ptr, vid_t rows, eid_t adj_size,
               const char* side, IssueSink& sink) {
  if (ptr.size() != static_cast<std::size_t>(rows) + 1) {
    std::ostringstream out;
    out << side << " ptr has " << ptr.size() << " entries, expected "
        << rows + 1;
    sink.add(StructuralIssueKind::kBadPointerArray, kInvalidVertex,
             out.str());
    return false;
  }
  if (!ptr.empty() && ptr.front() != 0)
    sink.add(StructuralIssueKind::kBadPointerArray, 0,
             std::string(side) + " ptr[0] != 0");
  bool monotone = true;
  for (std::size_t i = 1; i < ptr.size(); ++i) {
    if (ptr[i] < ptr[i - 1]) {
      sink.add(StructuralIssueKind::kBadPointerArray,
               static_cast<vid_t>(i - 1),
               std::string(side) + " ptr decreases");
      monotone = false;
      break;  // one report; everything downstream would be noise
    }
  }
  if (!ptr.empty() && ptr.back() != adj_size) {
    std::ostringstream out;
    out << side << " ptr ends at " << ptr.back() << " but adjacency holds "
        << adj_size << " entries";
    sink.add(StructuralIssueKind::kBadPointerArray,
             static_cast<vid_t>(rows), out.str());
    monotone = false;
  }
  return monotone && (ptr.empty() || ptr.front() == 0);
}

/// Per-list pass: range, strict ascending order, duplicates.
/// `universe` is the valid id range of the *referenced* side.
void check_lists(const std::vector<eid_t>& ptr, const std::vector<vid_t>& adj,
                 vid_t rows, vid_t universe, const char* side,
                 IssueSink& sink) {
  for (vid_t r = 0; r < rows; ++r) {
    const auto lo = static_cast<std::size_t>(ptr[static_cast<std::size_t>(r)]);
    const auto hi =
        static_cast<std::size_t>(ptr[static_cast<std::size_t>(r) + 1]);
    for (std::size_t i = lo; i < hi; ++i) {
      const vid_t id = adj[i];
      if (id < 0 || id >= universe) {
        std::ostringstream out;
        out << side << " list of " << r << " holds id " << id
            << " outside [0, " << universe << ")";
        sink.add(StructuralIssueKind::kIndexOutOfRange, r, out.str());
        continue;
      }
      if (i > lo) {
        if (adj[i - 1] == id)
          sink.add(StructuralIssueKind::kDuplicateAdjacency, r,
                   std::string(side) + " list repeats id " +
                       std::to_string(id));
        else if (adj[i - 1] > id)
          sink.add(StructuralIssueKind::kUnsortedAdjacency, r,
                   std::string(side) + " list is not ascending at id " +
                       std::to_string(id));
      }
    }
  }
}

[[nodiscard]] vid_t degree_of(const std::vector<eid_t>& ptr, vid_t r) {
  return static_cast<vid_t>(ptr[static_cast<std::size_t>(r) + 1] -
                            ptr[static_cast<std::size_t>(r)]);
}

}  // namespace

const char* to_string(StructuralIssueKind kind) {
  switch (kind) {
    case StructuralIssueKind::kBadPointerArray: return "bad-pointer-array";
    case StructuralIssueKind::kIndexOutOfRange: return "index-out-of-range";
    case StructuralIssueKind::kUnsortedAdjacency: return "unsorted-adjacency";
    case StructuralIssueKind::kDuplicateAdjacency:
      return "duplicate-adjacency";
    case StructuralIssueKind::kSelfLoop: return "self-loop";
    case StructuralIssueKind::kAsymmetricAdjacency:
      return "asymmetric-adjacency";
    case StructuralIssueKind::kTransposeMismatch: return "transpose-mismatch";
    case StructuralIssueKind::kDegreeBoundExceeded:
      return "degree-bound-exceeded";
  }
  return "unknown";
}

std::string StructuralIssue::to_string() const {
  std::ostringstream out;
  out << "[" << gcol::to_string(kind) << "]";
  if (where != kInvalidVertex) out << " at " << where;
  out << ": " << detail;
  return out.str();
}

std::string GraphAnalysis::to_string() const {
  std::ostringstream out;
  out << "structure: " << fmt_count("vertices", num_vertices) << ", "
      << fmt_count("nets", num_nets) << ", " << fmt_count("edges", num_edges)
      << ", max degrees " << max_vertex_degree << "/" << max_net_degree
      << ", color lower bound L=" << color_lower_bound << ", "
      << total_issues << " issue(s)";
  for (const StructuralIssue& issue : issues) out << "\n  " << issue.to_string();
  if (total_issues > issues.size())
    out << "\n  ... " << (total_issues - issues.size()) << " more";
  return out.str();
}

GraphAnalysis analyze_graph(const BipartiteGraph& g, std::size_t max_issues) {
  GraphAnalysis analysis;
  IssueSink sink(analysis, max_issues);
  analysis.num_vertices = g.num_vertices();
  analysis.num_nets = g.num_nets();

  const bool vptr_ok = check_ptr(g.vptr(), g.num_vertices(),
                                 static_cast<eid_t>(g.vadj().size()),
                                 "vertex", sink);
  const bool nptr_ok = check_ptr(g.nptr(), g.num_nets(),
                                 static_cast<eid_t>(g.nadj().size()),
                                 "net", sink);
  if (!vptr_ok || !nptr_ok) return analysis;

  analysis.num_edges = g.num_edges();
  check_lists(g.vptr(), g.vadj(), g.num_vertices(), g.num_nets(), "net",
              sink);
  check_lists(g.nptr(), g.nadj(), g.num_nets(), g.num_vertices(), "vertex",
              sink);

  // Degree facts + the paper's L lower bound (max net degree: the
  // vertices of one net form a distance-2 clique).
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const vid_t d = degree_of(g.vptr(), u);
    analysis.max_vertex_degree = std::max(analysis.max_vertex_degree, d);
    if (d > g.num_nets())
      sink.add(StructuralIssueKind::kDegreeBoundExceeded, u,
               "vertex degree exceeds net count " +
                   std::to_string(g.num_nets()));
  }
  for (vid_t v = 0; v < g.num_nets(); ++v) {
    const vid_t d = degree_of(g.nptr(), v);
    analysis.max_net_degree = std::max(analysis.max_net_degree, d);
    if (d > g.num_vertices())
      sink.add(StructuralIssueKind::kDegreeBoundExceeded, v,
               "net degree exceeds vertex count " +
                   std::to_string(g.num_vertices()));
  }
  analysis.color_lower_bound = std::max<color_t>(
      1, static_cast<color_t>(analysis.max_net_degree));

  // Forward/transpose consistency: both halves must encode the same
  // incidence multiset. Counts already match (|vadj| == |nadj| checked
  // above via the ptr terminals), so one-directional membership decides
  // equality — provided the lists are sorted, which was just verified.
  const bool sorted_ok =
      std::none_of(analysis.issues.begin(), analysis.issues.end(),
                   [](const StructuralIssue& i) {
                     return i.kind == StructuralIssueKind::kUnsortedAdjacency ||
                            i.kind == StructuralIssueKind::kIndexOutOfRange;
                   }) &&
      analysis.total_issues == analysis.issues.size();
  if (g.vadj().size() != g.nadj().size()) {
    sink.add(StructuralIssueKind::kTransposeMismatch, kInvalidVertex,
             "halves disagree on edge count");
  } else if (sorted_ok) {
    for (vid_t u = 0; u < g.num_vertices(); ++u) {
      for (const vid_t v : g.nets(u)) {
        const auto back = g.vtxs(v);
        if (!std::binary_search(back.begin(), back.end(), u))
          sink.add(StructuralIssueKind::kTransposeMismatch, u,
                   "edge (" + std::to_string(u) + ", net " +
                       std::to_string(v) + ") missing from the net side");
      }
    }
  }
  return analysis;
}

GraphAnalysis analyze_graph(const Graph& g, std::size_t max_issues) {
  GraphAnalysis analysis;
  IssueSink sink(analysis, max_issues);
  analysis.num_vertices = g.num_vertices();
  analysis.num_nets = g.num_vertices();

  if (!check_ptr(g.ptr(), g.num_vertices(),
                 static_cast<eid_t>(g.adj().size()), "adjacency", sink))
    return analysis;

  analysis.num_edges = g.num_adjacency_entries();
  check_lists(g.ptr(), g.adj(), g.num_vertices(), g.num_vertices(),
              "adjacency", sink);

  bool clean_lists = analysis.total_issues == 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const vid_t d = degree_of(g.ptr(), v);
    analysis.max_vertex_degree = std::max(analysis.max_vertex_degree, d);
    for (const vid_t u : g.neighbors(v)) {
      if (u == v) {
        sink.add(StructuralIssueKind::kSelfLoop, v, "self loop");
        clean_lists = false;
      }
    }
  }
  analysis.max_net_degree = analysis.max_vertex_degree;
  // D2GC: a closed neighborhood is a distance-2 clique.
  analysis.color_lower_bound =
      static_cast<color_t>(analysis.max_vertex_degree) + 1;

  // Symmetry (undirected contract): u in adj(v) <=> v in adj(u).
  // Binary search needs sorted in-range lists; skip when already broken.
  if (clean_lists) {
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      for (const vid_t u : g.neighbors(v)) {
        const auto back = g.neighbors(u);
        if (!std::binary_search(back.begin(), back.end(), v))
          sink.add(StructuralIssueKind::kAsymmetricAdjacency, v,
                   "edge (" + std::to_string(v) + ", " + std::to_string(u) +
                       ") has no reverse entry");
      }
    }
  }
  return analysis;
}

}  // namespace gcol
