#include "greedcolor/analyze/contract.hpp"

#include <atomic>
#include <sstream>

#include "greedcolor/robust/error.hpp"

namespace gcol::contract {

namespace {
std::atomic<std::uint64_t> g_checks{0};
}  // namespace

void note_check() noexcept {
  g_checks.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t checks_evaluated() noexcept {
  return g_checks.load(std::memory_order_relaxed);
}

void fail(const char* file, int line, const char* expr, const char* msg) {
  std::ostringstream out;
  out << file << ":" << line << ": contract `" << expr << "` violated ("
      << msg << ")";
  throw Error(ErrorCode::kInternalInvariant, out.str());
}

}  // namespace gcol::contract
