// Internal helpers shared by the BGPC and D2GC kernel translation units:
// relaxed atomic access to the shared color array (speculative phases
// race on it by design) and the color-selection policies of Algorithms
// 2 (first-fit), 8 (reverse first-fit), 11 (B1) and 12 (B2).
#pragma once

#include <atomic>
#include <type_traits>
#include <vector>

#include "greedcolor/analyze/contract.hpp"
#include "greedcolor/core/adaptive.hpp"
#include "greedcolor/core/options.hpp"
#include "greedcolor/util/counters.hpp"
#include "greedcolor/util/marker_set.hpp"
#include "greedcolor/util/types.hpp"

#include "greedcolor/util/parallel.hpp"

// Speculative-race audit hooks. GCOL_AUDIT builds route every color
// load/store through the active AuditContext's per-thread ledgers (see
// greedcolor/analyze/audit.hpp); release builds compile the hooks to
// nothing, so the accessors below stay a bare relaxed atomic op.
#if defined(GCOL_AUDIT)
#include "greedcolor/analyze/audit.hpp"
#define GCOL_AUDIT_READ(v, col)                                   \
  do {                                                            \
    if (auto* a_ = ::gcol::audit::active()) a_->on_read((v), (col)); \
  } while (0)
#define GCOL_AUDIT_WRITE(v, col)                                     \
  do {                                                               \
    if (auto* a_ = ::gcol::audit::active()) a_->on_write((v), (col)); \
  } while (0)
#else
#define GCOL_AUDIT_READ(v, col) \
  do {                          \
  } while (0)
#define GCOL_AUDIT_WRITE(v, col) \
  do {                           \
  } while (0)
#endif

// gcol-mc schedule points. GCOL_MC builds turn every color access into
// a cooperative yield to the armed model checker (see
// greedcolor/check/mc.hpp): the yield runs *before* the access, so the
// checker decides which thread's pending read/write commits next.
// GCOL_MC_REGION() registers the calling thread for one parallel
// region. Both compile to nothing in normal builds — the hot path stays
// a bare relaxed atomic op.
#if defined(GCOL_MC)
#include "greedcolor/check/mc.hpp"
#define GCOL_MC_YIELD(v, kind) \
  ::gcol::check::mc_yield((v), ::gcol::check::AccessKind::kind)
#define GCOL_MC_REGION() \
  ::gcol::check::McRegionScope gcol_mc_region_scope_ {}
#else
#define GCOL_MC_YIELD(v, kind) \
  do {                         \
  } while (0)
#define GCOL_MC_REGION() \
  do {                   \
  } while (0)
#endif

namespace gcol::detail {

/// Resolve 0 ("ambient") to the actual OpenMP thread count.
inline int resolve_threads(int requested) {
  const int threads = requested > 0 ? requested : max_threads();
  GCOL_CONTRACT(threads >= 1, "thread count must be positive");
  return threads;
}

// The optimistic phases read and write colors concurrently without
// synchronization; relaxed atomics make that well-defined without any
// x86 cost. All kernel code funnels c[] accesses through these.
inline color_t load_color(color_t* c, vid_t v) {
  GCOL_MC_YIELD(v, kLoad);
  const color_t col =
      std::atomic_ref<color_t>(c[static_cast<std::size_t>(v)])
          .load(std::memory_order_relaxed);
  GCOL_AUDIT_READ(v, col);
  return col;
}

inline void store_color(color_t* c, vid_t v, color_t col) {
  GCOL_MC_YIELD(v, kStore);
  GCOL_AUDIT_WRITE(v, col);
  std::atomic_ref<color_t>(c[static_cast<std::size_t>(v)])
      .store(col, std::memory_order_relaxed);
}

/// Atomically uncolor v; returns the previous color (kNoColor when it
/// was already uncolored — the caller then skips the queue push, which
/// deduplicates the next round's work queue).
inline color_t exchange_uncolor(color_t* c, vid_t v) {
  GCOL_MC_YIELD(v, kExchange);
  GCOL_AUDIT_WRITE(v, kNoColor);
  return std::atomic_ref<color_t>(c[static_cast<std::size_t>(v)])
      .exchange(kNoColor, std::memory_order_relaxed);
}

/// Lookahead distance (adjacency entries) for prefetching neighbor
/// color words in the gather loops. Deep enough to cover an L2 miss at
/// one entry per iteration, shallow enough not to thrash on short
/// adjacency lists (which skip the prefetch entirely).
inline constexpr std::size_t kColorPrefetchDist = 8;

/// Hint the cache that c[v] is about to be read. Kept here — the one
/// seam allowed to touch the raw color array — so the kernels' gather
/// loops stay free of direct c[] arithmetic (lint R002). Compiles to
/// nothing on toolchains without the builtin; never faults (prefetch
/// of any address is architecturally a no-op).
inline void prefetch_color(const color_t* c, vid_t v) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(c + static_cast<std::size_t>(v), /*rw=*/0,
                     /*locality=*/1);
#else
  (void)c;
  (void)v;
#endif
}

/// Smallest color >= start not in F (plain first-fit).
inline color_t pick_up(const MarkerSet& f, color_t start,
                       std::uint64_t& probes) {
  GCOL_ASSUME(start >= 0);
  color_t col = start;
  while (f.contains(col)) {
    ++col;
    GCOL_COUNT(++probes);
  }
  GCOL_COUNT(++probes);
  return col;
}

/// Largest color <= start not in F, or kNoColor when the scan passes 0.
inline color_t pick_down(const MarkerSet& f, color_t start,
                         std::uint64_t& probes) {
  color_t col = start;
  while (col >= 0 && f.contains(col)) {
    --col;
    GCOL_COUNT(++probes);
  }
  GCOL_COUNT(++probes);
  return col;
}

// Word-parallel variants: the scan happens inside BitMarkerSet /
// TwoLevelBitMarkerSet, one probe counted per 64-color word (or
// skipped-run summary read) instead of per color.
inline color_t pick_up(const BitMarkerSet& f, color_t start,
                       std::uint64_t& probes) {
  return f.first_free_at_or_above(start, probes);
}

inline color_t pick_down(const BitMarkerSet& f, color_t start,
                         std::uint64_t& probes) {
  return f.first_free_at_or_below(start, probes);
}

inline color_t pick_up(const TwoLevelBitMarkerSet& f, color_t start,
                       std::uint64_t& probes) {
  return f.first_free_at_or_above(start, probes);
}

inline color_t pick_down(const TwoLevelBitMarkerSet& f, color_t start,
                         std::uint64_t& probes) {
  return f.first_free_at_or_below(start, probes);
}

/// Forbidden-set policies: which per-thread set the kernels mark into
/// and whether they deduplicate distance-2 neighbors through the
/// workspace's visited set. The stamped policy is byte-for-byte the
/// paper's behavior (no dedup — the Θ(Σ|vtxs(v)|²) walk is part of what
/// the reproduction measures); the word-parallel policies dedup through
/// the workspace's bit-packed visited set. kAdaptive is resolved to one
/// of these per phase by the drivers (AdaptiveFsEngine) and never
/// reaches the kernel templates.
struct StampedPolicy {
  using Set = MarkerSet;
  static constexpr bool kDedupNeighbors = false;
  static MarkerSet& forbidden(ThreadWorkspace& t) { return t.forbidden; }
  static BitMarkerSet& visited(ThreadWorkspace& t) { return t.visited_bits; }
};

struct BitmapPolicy {
  using Set = BitMarkerSet;
  static constexpr bool kDedupNeighbors = true;
  static BitMarkerSet& forbidden(ThreadWorkspace& t) {
    return t.forbidden_bits;
  }
  static BitMarkerSet& visited(ThreadWorkspace& t) { return t.visited_bits; }
};

struct TwoLevelPolicy {
  using Set = TwoLevelBitMarkerSet;
  static constexpr bool kDedupNeighbors = true;
  static TwoLevelBitMarkerSet& forbidden(ThreadWorkspace& t) {
    return t.forbidden_two;
  }
  static BitMarkerSet& visited(ThreadWorkspace& t) { return t.visited_bits; }
};

/// Run `fn` with the ForbiddenSet policy selected by `fset`. kAdaptive
/// must be resolved by the caller (the drivers ask AdaptiveFsEngine for
/// a concrete kind per phase); it is a contract violation here.
template <class Fn>
decltype(auto) with_forbidden_set(ForbiddenSetKind fset, Fn&& fn) {
  GCOL_CONTRACT(fset != ForbiddenSetKind::kAdaptive,
                "kAdaptive must be resolved to a concrete representation "
                "before kernel dispatch");
  switch (fset) {
    case ForbiddenSetKind::kBitmap:
      return fn(BitmapPolicy{});
    case ForbiddenSetKind::kTwoLevel:
      return fn(TwoLevelPolicy{});
    case ForbiddenSetKind::kStamped:
    case ForbiddenSetKind::kAdaptive:  // contract-checked above
    default:
      return fn(StampedPolicy{});
  }
}

/// Run `fn` with the balance policy lifted to a compile-time constant.
template <class Fn>
decltype(auto) with_balance(BalancePolicy b, Fn&& fn) {
  switch (b) {
    case BalancePolicy::kB1:
      return fn(
          std::integral_constant<BalancePolicy, BalancePolicy::kB1>{});
    case BalancePolicy::kB2:
      return fn(
          std::integral_constant<BalancePolicy, BalancePolicy::kB2>{});
    case BalancePolicy::kNone:
    default:
      return fn(
          std::integral_constant<BalancePolicy, BalancePolicy::kNone>{});
  }
}

/// Per-thread counter slots, cache-line padded; replaces the
/// `omp critical` merge at phase exit with a plain post-region sum.
class CounterSlots {
 public:
  explicit CounterSlots(int threads)
      : slots_(static_cast<std::size_t>(threads > 0 ? threads : 1)) {}

  /// Worker-side hand-off; must be the thread's last action in the
  /// parallel region. The release increment pairs with merge_into's
  /// acquire load, ordering *everything* the worker wrote (counters,
  /// private queues, workspace state) before the main thread's
  /// post-region reads. Semantically redundant — the region's implicit
  /// barrier already orders it — but an uninstrumented libgomp runs
  /// that barrier on raw futexes ThreadSanitizer cannot see, and this
  /// is the edge it can.
  void publish(int tid, const KernelCounters& local) {
    slots_[static_cast<std::size_t>(tid)].value = local;
    published_.fetch_add(1, std::memory_order_release);
  }

  /// Main-thread merge; call only after the parallel region joined.
  void merge_into(KernelCounters& total) const {
    (void)published_.load(std::memory_order_acquire);
    for (const Slot& s : slots_) total += s.value;
  }

 private:
  struct alignas(64) Slot {
    KernelCounters value;
  };
  std::vector<Slot> slots_;
  std::atomic<int> published_{0};
};

/// Per-thread, per-round state of the balancing heuristics.
struct PolicyState {
  color_t col_max = 0;   // B1 & B2 (Alg. 11 l.1, Alg. 12 l.1)
  color_t col_next = 0;  // B2 only (Alg. 12 l.2)
};

/// Vertex-kernel color selection (Algorithms 2 / 11 / 12). `w` is the
/// vertex id (B1 alternates policy on its parity).
template <BalancePolicy B, class Set>
inline color_t pick_vertex_color(PolicyState& st, const Set& f,
                                 vid_t w, std::uint64_t& probes) {
  if constexpr (B == BalancePolicy::kNone) {
    (void)st;
    (void)w;
    return pick_up(f, 0, probes);
  } else if constexpr (B == BalancePolicy::kB1) {
    color_t col;
    if (w % 2 == 0) {
      col = pick_down(f, st.col_max, probes);
      if (col == kNoColor) col = pick_up(f, st.col_max + 1, probes);
    } else {
      col = pick_up(f, 0, probes);
    }
    st.col_max = std::max(st.col_max, col);
    return col;
  } else {  // kB2
    color_t col = pick_up(f, st.col_next, probes);
    if (col > st.col_max) col = pick_up(f, 0, probes);
    st.col_max = std::max(st.col_max, col);
    st.col_next = std::min<color_t>(col + 1, st.col_max / 3 + 1);
    return col;
  }
}

/// Net-kernel coloring of one net's local queue (Algorithm 8 lines 9-14
/// and its B1/B2 "net-based variants"). `start` is |vtxs(v)|-1 for BGPC
/// and |nbor(v)| for D2GC (Lemma 1's reverse-first-fit origin). After
/// every assignment the color is added to F so two local-queue vertices
/// never clash within this net. `local.max_color` is maintained
/// unconditionally — the adaptive engine reads it as the running color
/// bound — while the other counters stay GCOL_COUNT-gated.
template <BalancePolicy B, class Set>
inline void color_local_queue(PolicyState& st, Set& f,
                              const std::vector<vid_t>& wlocal,
                              vid_t net_id, color_t start, color_t* c,
                              KernelCounters& local) {
  std::uint64_t& probes = local.color_probes;
  if constexpr (B == BalancePolicy::kNone) {
    (void)st;
    (void)net_id;
    color_t col = start;
    for (const vid_t u : wlocal) {
      col = pick_down(f, col, probes);
      if (col == kNoColor) {
        // Unreachable by Lemma 1's counting argument under a fixed F,
        // but a concurrent-round race can theoretically overfill F;
        // recover with an upward scan instead of corrupting state.
        col = pick_up(f, start + 1, probes);
        store_color(c, u, col);
        f.insert(col);
        local.max_color = std::max(local.max_color, col);
        GCOL_COUNT(++local.colored);
        col = start;
        continue;
      }
      store_color(c, u, col);
      f.insert(col);  // shields the recovery path from reusing col
      local.max_color = std::max(local.max_color, col);
      GCOL_COUNT(++local.colored);
      --col;
    }
  } else if constexpr (B == BalancePolicy::kB1) {
    // Parity of the *net* alternates the two scan directions.
    if (net_id % 2 == 0) {
      for (const vid_t u : wlocal) {
        color_t col = pick_down(f, st.col_max, probes);
        if (col == kNoColor) col = pick_up(f, st.col_max + 1, probes);
        store_color(c, u, col);
        f.insert(col);
        st.col_max = std::max(st.col_max, col);
        local.max_color = std::max(local.max_color, col);
        GCOL_COUNT(++local.colored);
      }
    } else {
      for (const vid_t u : wlocal) {
        const color_t col = pick_up(f, 0, probes);
        store_color(c, u, col);
        f.insert(col);
        st.col_max = std::max(st.col_max, col);
        local.max_color = std::max(local.max_color, col);
        GCOL_COUNT(++local.colored);
      }
    }
  } else {  // kB2
    (void)net_id;
    for (const vid_t u : wlocal) {
      color_t col = pick_up(f, st.col_next, probes);
      if (col > st.col_max) col = pick_up(f, 0, probes);
      store_color(c, u, col);
      f.insert(col);
      st.col_max = std::max(st.col_max, col);
      st.col_next = std::min<color_t>(col + 1, st.col_max / 3 + 1);
      local.max_color = std::max(local.max_color, col);
      GCOL_COUNT(++local.colored);
    }
  }
}

}  // namespace gcol::detail
