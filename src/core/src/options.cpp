#include "greedcolor/core/options.hpp"

#include <stdexcept>

namespace gcol {

std::string to_string(QueuePolicy q) {
  return q == QueuePolicy::kShared ? "shared" : "lazy";
}

std::string to_string(BalancePolicy b) {
  switch (b) {
    case BalancePolicy::kNone:
      return "U";
    case BalancePolicy::kB1:
      return "B1";
    case BalancePolicy::kB2:
      return "B2";
  }
  return "?";
}

std::string to_string(ForbiddenSetKind f) {
  switch (f) {
    case ForbiddenSetKind::kStamped:
      return "stamped";
    case ForbiddenSetKind::kBitmap:
      return "bitmap";
    case ForbiddenSetKind::kTwoLevel:
      return "twolevel";
    case ForbiddenSetKind::kAdaptive:
      return "adaptive";
  }
  return "?";
}

std::string to_string(LocalityMode m) {
  switch (m) {
    case LocalityMode::kNone:
      return "none";
    case LocalityMode::kSortAdj:
      return "sort";
    case LocalityMode::kFull:
      return "full";
  }
  return "?";
}

ForbiddenSetKind forbidden_set_from_string(const std::string& name) {
  if (name == "stamped") return ForbiddenSetKind::kStamped;
  if (name == "bitmap") return ForbiddenSetKind::kBitmap;
  if (name == "twolevel") return ForbiddenSetKind::kTwoLevel;
  if (name == "adaptive") return ForbiddenSetKind::kAdaptive;
  throw std::invalid_argument(
      "unknown forbidden-set kind: " + name +
      " (expected stamped, bitmap, twolevel, or adaptive)");
}

LocalityMode locality_from_string(const std::string& name) {
  if (name == "none") return LocalityMode::kNone;
  if (name == "sort") return LocalityMode::kSortAdj;
  if (name == "full") return LocalityMode::kFull;
  throw std::invalid_argument("unknown locality mode: " + name +
                              " (expected none, sort, or full)");
}

void ColoringOptions::validate() const {
  if (net_color_rounds < 0)
    throw std::invalid_argument("net_color_rounds must be >= 0");
  if (net_conflict_rounds < -1)
    throw std::invalid_argument("net_conflict_rounds must be >= -1");
  if (net_conflict_rounds != -1 && net_conflict_rounds < net_color_rounds)
    throw std::invalid_argument(
        "net_conflict_rounds must cover net_color_rounds: a net-colored "
        "round leaves no explicit queue for vertex-based removal");
  if (chunk_size < 1) throw std::invalid_argument("chunk_size must be >= 1");
  if (num_threads < 0)
    throw std::invalid_argument("num_threads must be >= 0");
  if (max_rounds < 1) throw std::invalid_argument("max_rounds must be >= 1");
  if (deadline_seconds < 0.0)
    throw std::invalid_argument("deadline_seconds must be >= 0");
  if ((net_v1 || net_v1_reverse) && net_color_rounds == 0)
    throw std::invalid_argument("net_v1 requires net_color_rounds >= 1");
  if (adaptive_threshold < 0.0 || adaptive_threshold > 1.0)
    throw std::invalid_argument("adaptive_threshold must be in [0, 1]");
  if (adaptive_threshold > 0.0 && (net_v1 || net_v1_reverse))
    throw std::invalid_argument("adaptive mode is incompatible with net_v1");
}

namespace {

ColoringOptions make_preset(const std::string& name) {
  ColoringOptions o;
  o.name = name;
  // Named presets reproduce the paper's variants exactly, so they pin
  // the stamped forbidden sets; callers wanting the fast kernels flip
  // forbidden_set back to kBitmap (color_tool's --forbidden-set does).
  o.forbidden_set = ForbiddenSetKind::kStamped;
  if (name == "V-V") {
    // ColPack's parallel BGPC: vertex kernels, default dynamic chunk,
    // shared immediate conflict queue.
    o.chunk_size = 1;
    o.queue = QueuePolicy::kShared;
  } else if (name == "V-V-64") {
    o.chunk_size = 64;
    o.queue = QueuePolicy::kShared;
  } else if (name == "V-V-64D") {
    o.chunk_size = 64;
    o.queue = QueuePolicy::kLazy;
  } else if (name == "V-Ninf" || name == "V-N∞") {
    o.name = "V-Ninf";
    o.chunk_size = 64;
    o.queue = QueuePolicy::kLazy;
    o.net_conflict_rounds = -1;
  } else if (name == "V-N1") {
    o.chunk_size = 64;
    o.queue = QueuePolicy::kLazy;
    o.net_conflict_rounds = 1;
  } else if (name == "V-N2") {
    o.chunk_size = 64;
    o.queue = QueuePolicy::kLazy;
    o.net_conflict_rounds = 2;
  } else if (name == "N1-N2") {
    o.chunk_size = 64;
    o.queue = QueuePolicy::kLazy;
    o.net_color_rounds = 1;
    o.net_conflict_rounds = 2;
  } else if (name == "N2-N2") {
    o.chunk_size = 64;
    o.queue = QueuePolicy::kLazy;
    o.net_color_rounds = 2;
    o.net_conflict_rounds = 2;
  } else if (name == "ADAPTIVE") {
    // SVIII hybrid: net kernels while |W| >= 5% of the vertices.
    o.chunk_size = 64;
    o.queue = QueuePolicy::kLazy;
    o.adaptive_threshold = 0.05;
  } else {
    throw std::invalid_argument("unknown algorithm preset: " + name);
  }
  return o;
}

}  // namespace

ColoringOptions bgpc_preset(const std::string& name) {
  return make_preset(name);
}

const std::vector<std::string>& bgpc_preset_names() {
  static const std::vector<std::string> names = {
      "V-V", "V-V-64", "V-V-64D", "V-Ninf",
      "V-N1", "V-N2", "N1-N2", "N2-N2"};
  return names;
}

ColoringOptions d2gc_preset(const std::string& name) {
  if (name != "V-V" && name != "V-V-64D" && name != "V-N1" &&
      name != "V-N2" && name != "N1-N2")
    throw std::invalid_argument("unknown D2GC preset: " + name);
  return make_preset(name);
}

const std::vector<std::string>& d2gc_preset_names() {
  static const std::vector<std::string> names = {"V-V-64D", "V-N1", "V-N2",
                                                 "N1-N2"};
  return names;
}

}  // namespace gcol
