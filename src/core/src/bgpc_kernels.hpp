// Internal BGPC phase kernels (Algorithms 4-8). The public entry point
// is color_bgpc() in greedcolor/core/bgpc.hpp; the Table I harness
// reaches Alg. 6 via ColoringOptions::net_v1. Every kernel takes the
// ForbiddenSetKind selecting the stamped (paper-faithful) or bitmap
// (word-parallel, neighbor-deduplicating) forbidden-set policy.
#pragma once

#include <vector>

#include "greedcolor/core/options.hpp"
#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/util/counters.hpp"
#include "greedcolor/util/marker_set.hpp"
#include "greedcolor/util/work_queue.hpp"

namespace gcol::detail {

/// Alg. 4 + policy: vertex-based optimistic coloring of every w in W.
void bgpc_color_vertex(const BipartiteGraph& g, const std::vector<vid_t>& w,
                       color_t* c, std::vector<ThreadWorkspace>& ws,
                       BalancePolicy balance, ForbiddenSetKind fset,
                       int chunk, int threads, KernelCounters& counters);

/// Alg. 8 + policy: two-pass net-based coloring; colors every vertex
/// that is uncolored or locally duplicated, across all nets.
void bgpc_color_net(const BipartiteGraph& g, color_t* c,
                    std::vector<ThreadWorkspace>& ws, BalancePolicy balance,
                    ForbiddenSetKind fset, int chunk, int threads,
                    KernelCounters& counters);

/// Alg. 6 (most-optimistic single-pass net coloring), first-fit or
/// reverse first-fit ("Alg. 6 + reverse" of Table I).
void bgpc_color_net_v1(const BipartiteGraph& g, color_t* c,
                       std::vector<ThreadWorkspace>& ws, bool reverse,
                       ForbiddenSetKind fset, int chunk, int threads,
                       KernelCounters& counters);

/// Alg. 5: vertex-based conflict removal over W. Conflicting vertices
/// (ties broken toward the larger id) are uncolored and collected into
/// `wnext` through the selected queue strategy.
void bgpc_conflict_vertex(const BipartiteGraph& g, const std::vector<vid_t>& w,
                          color_t* c, std::vector<ThreadWorkspace>& ws,
                          QueuePolicy queue, ForbiddenSetKind fset, int chunk,
                          int threads, std::vector<vid_t>& wnext,
                          KernelCounters& counters);

/// Alg. 7: net-based conflict removal over every net; uncolored
/// vertices are deduplicated via an atomic exchange and collected
/// lazily.
void bgpc_conflict_net(const BipartiteGraph& g, color_t* c,
                       std::vector<ThreadWorkspace>& ws, ForbiddenSetKind fset,
                       int chunk, int threads, std::vector<vid_t>& wnext,
                       KernelCounters& counters);

}  // namespace gcol::detail
