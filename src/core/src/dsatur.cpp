#include "greedcolor/core/dsatur.hpp"

#include <algorithm>
#include <vector>

#include "greedcolor/order/bucket_queue.hpp"
#include "greedcolor/util/marker_set.hpp"
#include "greedcolor/util/timer.hpp"
#include "kernels_common.hpp"

namespace gcol {

namespace {

/// Per-vertex dynamic bitmap of colors seen in the neighborhood; the
/// saturation degree is the population count, tracked incrementally.
class SaturationBits {
 public:
  explicit SaturationBits(std::size_t n) : bits_(n) {}

  /// Returns true when `color` was not yet recorded for `v`.
  bool record(vid_t v, color_t color) {
    auto& words = bits_[static_cast<std::size_t>(v)];
    const auto word = static_cast<std::size_t>(color) / 64;
    const std::uint64_t mask = 1ULL << (static_cast<std::size_t>(color) % 64);
    if (words.size() <= word) words.resize(word + 1, 0);
    if (words[word] & mask) return false;
    words[word] |= mask;
    return true;
  }

 private:
  std::vector<std::vector<std::uint64_t>> bits_;
};

}  // namespace

ColoringResult color_bgpc_dsatur(const BipartiteGraph& g) {
  const vid_t n = g.num_vertices();
  ColoringResult result;
  result.colors.assign(static_cast<std::size_t>(n), kNoColor);
  if (n == 0) return result;

  // Saturation keys only; ties resolved by bucket order (deterministic
  // for a given graph). The first pick is seeded at a max-d2-degree
  // vertex, as Brélaz prescribes.
  std::vector<eid_t> d2deg(static_cast<std::size_t>(n), 0);
  eid_t max_d2 = 0;
  vid_t seed_vertex = 0;
  for (vid_t u = 0; u < n; ++u) {
    eid_t d = 0;
    for (const vid_t v : g.nets(u)) d += g.net_degree(v) - 1;
    d2deg[static_cast<std::size_t>(u)] = d;
    if (d > d2deg[static_cast<std::size_t>(seed_vertex)]) seed_vertex = u;
    max_d2 = std::max(max_d2, d);
  }
  // Saturation never exceeds the color count, itself <= max_d2 + 1.
  BucketQueue queue(std::vector<eid_t>(static_cast<std::size_t>(n), 0),
                    max_d2 + 1);

  SaturationBits seen(static_cast<std::size_t>(n));
  MarkerSet forbidden;
  std::uint64_t probes = 0;
  WallTimer total;
  IterationStats stats;
  stats.round = 1;
  stats.queue_size = static_cast<std::size_t>(n);

  for (vid_t step = 0; step < n; ++step) {
    const vid_t u = step == 0 ? seed_vertex : queue.find_max();
    queue.remove(u);
    forbidden.clear();
    for (const vid_t v : g.nets(u)) {
      for (const vid_t w : g.vtxs(v)) {
        GCOL_COUNT(++stats.color_counters.edges_visited);
        const color_t cw = result.colors[static_cast<std::size_t>(w)];
        if (w != u && cw != kNoColor) forbidden.insert(cw);
      }
    }
    const color_t col = detail::pick_up(forbidden, 0, probes);
    result.colors[static_cast<std::size_t>(u)] = col;
    GCOL_COUNT(++stats.color_counters.colored);
    // Raise the saturation of every still-uncolored distance-2
    // neighbor that had not seen `col` yet.
    for (const vid_t v : g.nets(u)) {
      for (const vid_t w : g.vtxs(v)) {
        if (w == u || !queue.contains(w)) continue;
        if (seen.record(w, col)) queue.increase(w, 1);
      }
    }
  }
  GCOL_COUNT(stats.color_counters.color_probes = probes);
  stats.color_seconds = total.seconds();
  result.total_seconds = stats.color_seconds;
  result.rounds = 1;
  result.iterations.push_back(stats);
  result.num_colors = count_colors(result.colors);
  return result;
}

ColoringResult color_d1gc_dsatur(const Graph& g) {
  const vid_t n = g.num_vertices();
  ColoringResult result;
  result.colors.assign(static_cast<std::size_t>(n), kNoColor);
  if (n == 0) return result;

  vid_t seed_vertex = 0;
  for (vid_t v = 1; v < n; ++v)
    if (g.degree(v) > g.degree(seed_vertex)) seed_vertex = v;
  BucketQueue queue(std::vector<eid_t>(static_cast<std::size_t>(n), 0),
                    g.max_degree() + 1);

  SaturationBits seen(static_cast<std::size_t>(n));
  MarkerSet forbidden;
  std::uint64_t probes = 0;
  WallTimer total;

  for (vid_t step = 0; step < n; ++step) {
    const vid_t u = step == 0 ? seed_vertex : queue.find_max();
    queue.remove(u);
    forbidden.clear();
    for (const vid_t w : g.neighbors(u)) {
      const color_t cw = result.colors[static_cast<std::size_t>(w)];
      if (cw != kNoColor) forbidden.insert(cw);
    }
    const color_t col = detail::pick_up(forbidden, 0, probes);
    result.colors[static_cast<std::size_t>(u)] = col;
    for (const vid_t w : g.neighbors(u)) {
      if (!queue.contains(w)) continue;
      if (seen.record(w, col)) queue.increase(w, 1);
    }
  }
  result.total_seconds = total.seconds();
  result.rounds = 1;
  result.num_colors = count_colors(result.colors);
  return result;
}

}  // namespace gcol
