#include "greedcolor/core/verify.hpp"

#include <sstream>

#include "greedcolor/util/marker_set.hpp"

namespace gcol {

std::string ColoringViolation::to_string() const {
  std::ostringstream os;
  os << what;
  if (a != kInvalidVertex) os << " vertex=" << a;
  if (b != kInvalidVertex) os << " partner=" << b;
  if (via != kInvalidVertex) os << " via=" << via;
  return os.str();
}

std::optional<ColoringViolation> check_bgpc(
    const BipartiteGraph& g, const std::vector<color_t>& colors) {
  if (colors.size() != static_cast<std::size_t>(g.num_vertices()))
    return ColoringViolation{kInvalidVertex, kInvalidVertex, kInvalidVertex,
                             "color array size mismatch"};
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    if (colors[static_cast<std::size_t>(u)] < 0)
      return ColoringViolation{u, kInvalidVertex, kInvalidVertex,
                               "uncolored vertex"};
  }
  // last_seen[color] = most recent vertex with that color in this net:
  // doubles as the marker and names the conflicting partner.
  std::vector<vid_t> last_seen;
  MarkerSet seen;
  for (vid_t v = 0; v < g.num_nets(); ++v) {
    seen.clear();
    for (const vid_t u : g.vtxs(v)) {
      const color_t cu = colors[static_cast<std::size_t>(u)];
      if (seen.contains(cu)) {
        return ColoringViolation{
            u, last_seen[static_cast<std::size_t>(cu)], v,
            "two vertices of one net share a color"};
      }
      seen.insert(cu);
      if (last_seen.size() <= static_cast<std::size_t>(cu))
        last_seen.resize(static_cast<std::size_t>(cu) + 64, kInvalidVertex);
      last_seen[static_cast<std::size_t>(cu)] = u;
    }
  }
  return std::nullopt;
}

std::optional<ColoringViolation> check_d2gc(
    const Graph& g, const std::vector<color_t>& colors) {
  if (colors.size() != static_cast<std::size_t>(g.num_vertices()))
    return ColoringViolation{kInvalidVertex, kInvalidVertex, kInvalidVertex,
                             "color array size mismatch"};
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    if (colors[static_cast<std::size_t>(u)] < 0)
      return ColoringViolation{u, kInvalidVertex, kInvalidVertex,
                               "uncolored vertex"};
  }
  // Every distance-<=2 pair shares a closed neighborhood N[v]; checking
  // distinctness inside each N[v] covers all pairs.
  std::vector<vid_t> last_seen;
  MarkerSet seen;
  auto visit = [&](vid_t member, vid_t middle)
      -> std::optional<ColoringViolation> {
    const color_t cm = colors[static_cast<std::size_t>(member)];
    if (seen.contains(cm)) {
      return ColoringViolation{member,
                               last_seen[static_cast<std::size_t>(cm)],
                               middle,
                               "distance-<=2 vertices share a color"};
    }
    seen.insert(cm);
    if (last_seen.size() <= static_cast<std::size_t>(cm))
      last_seen.resize(static_cast<std::size_t>(cm) + 64, kInvalidVertex);
    last_seen[static_cast<std::size_t>(cm)] = member;
    return std::nullopt;
  };
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    seen.clear();
    if (auto bad = visit(v, v)) return bad;
    for (const vid_t u : g.neighbors(v))
      if (auto bad = visit(u, v)) return bad;
  }
  return std::nullopt;
}

bool is_valid_bgpc(const BipartiteGraph& g,
                   const std::vector<color_t>& colors) {
  return !check_bgpc(g, colors).has_value();
}

bool is_valid_d2gc(const Graph& g, const std::vector<color_t>& colors) {
  return !check_d2gc(g, colors).has_value();
}

}  // namespace gcol
