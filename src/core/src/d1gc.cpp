#include "greedcolor/core/d1gc.hpp"

#include <numeric>
#include <stdexcept>

#include "greedcolor/util/marker_set.hpp"
#include "greedcolor/util/parallel.hpp"
#include "greedcolor/util/prng.hpp"
#include "greedcolor/util/timer.hpp"
#include "greedcolor/util/work_queue.hpp"
#include "kernels_common.hpp"

namespace gcol {

namespace {

std::vector<vid_t> natural_order(vid_t n) {
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), vid_t{0});
  return order;
}

template <BalancePolicy B>
void d1_color_round(const Graph& g, const std::vector<vid_t>& w, color_t* c,
                    std::vector<ThreadWorkspace>& ws, int chunk, int threads,
                    KernelCounters& counters) {
  const auto n = static_cast<std::int64_t>(w.size());
  detail::CounterSlots slots(threads);
#pragma omp parallel num_threads(threads) default(none) \
    shared(g, w, c, ws, slots) firstprivate(chunk, n)
  {
    const int tid = current_thread();
    ThreadWorkspace& tws = ws[static_cast<std::size_t>(tid)];
    MarkerSet& f = tws.forbidden;
    detail::PolicyState st;
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t i = 0; i < n; ++i) {
      const vid_t wv = w[static_cast<std::size_t>(i)];
      f.clear();
      for (const vid_t u : g.neighbors(wv)) {
        GCOL_COUNT(++local.edges_visited);
        const color_t cu = detail::load_color(c, u);
        if (cu != kNoColor) f.insert(cu);
      }
      const color_t col =
          detail::pick_vertex_color<B>(st, f, wv, local.color_probes);
      detail::store_color(c, wv, col);
      GCOL_COUNT(++local.colored);
    }
    slots.publish(tid, local);
  }
  slots.merge_into(counters);
}

void d1_conflict_round(const Graph& g, const std::vector<vid_t>& w,
                       color_t* c, QueuePolicy queue, int chunk, int threads,
                       std::vector<vid_t>& wnext, KernelCounters& counters) {
  const auto n = static_cast<std::int64_t>(w.size());
  SharedWorkQueue shared;
  LocalWorkQueues lazy;
  const bool use_shared = queue == QueuePolicy::kShared;
  if (use_shared)
    shared.reset(w.size());
  else
    lazy.configure(threads), lazy.begin_round();
  detail::CounterSlots slots(threads);
#pragma omp parallel num_threads(threads) default(none) \
    shared(g, w, c, slots, shared, lazy) \
    firstprivate(chunk, n, use_shared)
  {
    const int tid = current_thread();
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t i = 0; i < n; ++i) {
      const vid_t wv = w[static_cast<std::size_t>(i)];
      const color_t cw = detail::load_color(c, wv);
      if (cw == kNoColor) continue;
      bool conflicted = false;
      for (const vid_t u : g.neighbors(wv)) {
        GCOL_COUNT(++local.edges_visited);
        if (detail::load_color(c, u) == cw && wv > u) {
          conflicted = true;
          break;
        }
      }
      if (conflicted) {
        GCOL_COUNT(++local.conflicts);
        detail::store_color(c, wv, kNoColor);
        if (use_shared)
          shared.push(wv);
        else
          lazy.push(tid, wv);
      }
    }
    slots.publish(tid, local);
  }
  slots.merge_into(counters);
  if (use_shared)
    shared.swap_into(wnext);
  else
    lazy.merge_into(wnext);
}

}  // namespace

color_t d1gc_color_bound(const Graph& g) { return g.max_degree() + 1; }

ColoringResult color_d1gc_sequential(const Graph& g,
                                     const std::vector<vid_t>& order) {
  const vid_t n = g.num_vertices();
  if (!order.empty() && order.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("color_d1gc_sequential: order size mismatch");
  ColoringResult result;
  result.colors.assign(static_cast<std::size_t>(n), kNoColor);
  MarkerSet forbidden(static_cast<std::size_t>(d1gc_color_bound(g)) + 1);
  std::uint64_t probes = 0;

  WallTimer total;
  IterationStats stats;
  stats.round = 1;
  stats.queue_size = static_cast<std::size_t>(n);
  const std::vector<vid_t>& base = order.empty() ? natural_order(n) : order;
  for (const vid_t w : base) {
    forbidden.clear();
    for (const vid_t u : g.neighbors(w)) {
      GCOL_COUNT(++stats.color_counters.edges_visited);
      const color_t cu = result.colors[static_cast<std::size_t>(u)];
      if (cu != kNoColor) forbidden.insert(cu);
    }
    result.colors[static_cast<std::size_t>(w)] =
        detail::pick_up(forbidden, 0, probes);
    GCOL_COUNT(++stats.color_counters.colored);
  }
  GCOL_COUNT(stats.color_counters.color_probes = probes);
  stats.color_seconds = total.seconds();
  result.total_seconds = stats.color_seconds;
  result.rounds = 1;
  result.iterations.push_back(stats);
  result.num_colors = count_colors(result.colors);
  return result;
}

ColoringResult color_d1gc(const Graph& g, const ColoringOptions& options,
                          const std::vector<vid_t>& order) {
  options.validate();
  if (options.net_color_rounds != 0 || options.net_conflict_rounds != 0)
    throw std::invalid_argument(
        "color_d1gc: net-based rounds are undefined for distance-1");
  const vid_t n = g.num_vertices();
  if (!order.empty() && order.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("color_d1gc: order size mismatch");

  const int threads = detail::resolve_threads(options.num_threads);
  std::vector<ThreadWorkspace> workspaces(
      static_cast<std::size_t>(threads));
  for (auto& ws : workspaces)
    ws.prepare(static_cast<std::size_t>(d1gc_color_bound(g)) + 2, 0);

  ColoringResult result;
  result.colors.assign(static_cast<std::size_t>(n), kNoColor);
  color_t* c = result.colors.data();
  std::vector<vid_t> w = order.empty() ? natural_order(n) : order;

  WallTimer total;
  std::vector<vid_t> wnext;
  int round = 0;
  while (!w.empty() && round < options.max_rounds) {
    ++round;
    IterationStats stats;
    stats.round = round;
    stats.queue_size = w.size();

    WallTimer phase;
    switch (options.balance) {
      case BalancePolicy::kNone:
        d1_color_round<BalancePolicy::kNone>(g, w, c, workspaces,
                                             options.chunk_size, threads,
                                             stats.color_counters);
        break;
      case BalancePolicy::kB1:
        d1_color_round<BalancePolicy::kB1>(g, w, c, workspaces,
                                           options.chunk_size, threads,
                                           stats.color_counters);
        break;
      case BalancePolicy::kB2:
        d1_color_round<BalancePolicy::kB2>(g, w, c, workspaces,
                                           options.chunk_size, threads,
                                           stats.color_counters);
        break;
    }
    stats.color_seconds = phase.seconds();

    phase.reset();
    d1_conflict_round(g, w, c, options.queue, options.chunk_size, threads,
                      wnext, stats.conflict_counters);
    stats.conflict_seconds = phase.seconds();
    stats.conflicts = wnext.size();

    if (options.collect_iteration_stats)
      result.iterations.push_back(stats);
    std::swap(w, wnext);
    wnext.clear();
  }
  // Speculative D1 always terminates (the smallest conflicting vertex
  // keeps its color each round); max_rounds is an assertion of that.
  if (!w.empty())
    throw std::logic_error("color_d1gc: round limit exceeded");

  result.total_seconds = total.seconds();
  result.rounds = round;
  result.num_colors = count_colors(result.colors);
  return result;
}

ColoringResult color_d1gc_jones_plassmann(const Graph& g, std::uint64_t seed,
                                          int num_threads) {
  const vid_t n = g.num_vertices();
  const int threads = detail::resolve_threads(num_threads);

  ColoringResult result;
  result.colors.assign(static_cast<std::size_t>(n), kNoColor);
  color_t* c = result.colors.data();

  // Random priorities; ties broken by vertex id.
  std::vector<std::uint64_t> priority(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v)
    priority[static_cast<std::size_t>(v)] =
        mix64(seed ^ static_cast<std::uint64_t>(v));
  auto wins = [&](vid_t a, vid_t b) {
    const auto pa = priority[static_cast<std::size_t>(a)];
    const auto pb = priority[static_cast<std::size_t>(b)];
    return pa != pb ? pa > pb : a > b;
  };

  std::vector<ThreadWorkspace> workspaces(
      static_cast<std::size_t>(threads));
  for (auto& ws : workspaces)
    ws.prepare(static_cast<std::size_t>(d1gc_color_bound(g)) + 1, 0);

  std::vector<vid_t> w = natural_order(n);
  std::vector<vid_t> wnext;
  LocalWorkQueues lazy(threads);
  // Round-start snapshot of "still uncolored": the local-max test and
  // the forbidden sets only consult prior-round state, which makes the
  // whole run a deterministic function of (graph, seed).
  std::vector<std::uint8_t> active(static_cast<std::size_t>(n), 1);

  WallTimer total;
  int round = 0;
  while (!w.empty()) {
    ++round;
    IterationStats stats;
    stats.round = round;
    stats.queue_size = w.size();
    lazy.begin_round();
    const auto sz = static_cast<std::int64_t>(w.size());

    WallTimer phase;
    detail::CounterSlots slots(threads);
#pragma omp parallel num_threads(threads) default(none) \
    shared(g, w, c, workspaces, active, lazy, slots, wins) firstprivate(sz)
    {
      const int tid = current_thread();
      ThreadWorkspace& tws = workspaces[static_cast<std::size_t>(tid)];
      MarkerSet& f = tws.forbidden;
      KernelCounters local;
#pragma omp for schedule(dynamic, 64) nowait
      for (std::int64_t i = 0; i < sz; ++i) {
        const vid_t v = w[static_cast<std::size_t>(i)];
        // v colors this round iff it beats every still-active neighbor
        // (the Jones-Plassmann independent set). Two adjacent winners
        // are impossible, so the concurrent stores below never clash.
        bool local_max = true;
        for (const vid_t u : g.neighbors(v)) {
          GCOL_COUNT(++local.edges_visited);
          if (active[static_cast<std::size_t>(u)] && wins(u, v)) {
            local_max = false;
            break;
          }
        }
        if (!local_max) {
          lazy.push(tid, v);
          continue;
        }
        f.clear();
        for (const vid_t u : g.neighbors(v)) {
          if (active[static_cast<std::size_t>(u)]) continue;  // uncolored
          const color_t cu = detail::load_color(c, u);
          if (cu != kNoColor) f.insert(cu);
        }
        detail::store_color(c, v, detail::pick_up(f, 0, local.color_probes));
        GCOL_COUNT(++local.colored);
      }
      slots.publish(tid, local);
    }
    slots.merge_into(stats.color_counters);
    stats.color_seconds = phase.seconds();
    lazy.merge_into(wnext);
    stats.conflicts = wnext.size();
    result.iterations.push_back(stats);
    for (const vid_t v : w) active[static_cast<std::size_t>(v)] = 0;
    for (const vid_t v : wnext) active[static_cast<std::size_t>(v)] = 1;
    std::swap(w, wnext);
    wnext.clear();
  }
  result.total_seconds = total.seconds();
  result.rounds = round;
  result.num_colors = count_colors(result.colors);
  return result;
}

std::optional<ColoringViolation> check_d1gc(
    const Graph& g, const std::vector<color_t>& colors) {
  if (colors.size() != static_cast<std::size_t>(g.num_vertices()))
    return ColoringViolation{kInvalidVertex, kInvalidVertex, kInvalidVertex,
                             "color array size mismatch"};
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (colors[static_cast<std::size_t>(v)] < 0)
      return ColoringViolation{v, kInvalidVertex, kInvalidVertex,
                               "uncolored vertex"};
    for (const vid_t u : g.neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] ==
          colors[static_cast<std::size_t>(v)])
        return ColoringViolation{v, u, kInvalidVertex,
                                 "adjacent vertices share a color"};
    }
  }
  return std::nullopt;
}

bool is_valid_d1gc(const Graph& g, const std::vector<color_t>& colors) {
  return !check_d1gc(g, colors).has_value();
}

}  // namespace gcol
