// Internal D2GC phase kernels (Algorithms 9-10 and the vertex-based
// counterparts the authors derived from ColPack's BGPC code). Every
// kernel takes the ForbiddenSetKind selecting the stamped
// (paper-faithful) or bitmap (word-parallel, neighbor-deduplicating)
// forbidden-set policy.
#pragma once

#include <vector>

#include "greedcolor/core/options.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/util/counters.hpp"
#include "greedcolor/util/marker_set.hpp"

namespace gcol::detail {

/// Vertex-based optimistic D2GC coloring of every w in W: forbidden
/// colors come from the full distance-<=2 neighborhood.
void d2gc_color_vertex(const Graph& g, const std::vector<vid_t>& w,
                       color_t* c, std::vector<ThreadWorkspace>& ws,
                       BalancePolicy balance, ForbiddenSetKind fset,
                       int chunk, int threads, KernelCounters& counters);

/// Alg. 9: net-based D2GC coloring — every closed neighborhood is
/// scanned; its uncolored/duplicated members are reverse-first-fit
/// colored from |nbor(v)|.
void d2gc_color_net(const Graph& g, color_t* c,
                    std::vector<ThreadWorkspace>& ws, BalancePolicy balance,
                    ForbiddenSetKind fset, int chunk, int threads,
                    KernelCounters& counters);

/// Vertex-based D2GC conflict removal over W (larger id loses).
void d2gc_conflict_vertex(const Graph& g, const std::vector<vid_t>& w,
                          color_t* c, std::vector<ThreadWorkspace>& ws,
                          QueuePolicy queue, ForbiddenSetKind fset, int chunk,
                          int threads, std::vector<vid_t>& wnext,
                          KernelCounters& counters);

/// Alg. 10: net-based D2GC conflict removal over every closed
/// neighborhood; later same-colored members are uncolored.
void d2gc_conflict_net(const Graph& g, color_t* c,
                       std::vector<ThreadWorkspace>& ws, ForbiddenSetKind fset,
                       int chunk, int threads, std::vector<vid_t>& wnext,
                       KernelCounters& counters);

}  // namespace gcol::detail
