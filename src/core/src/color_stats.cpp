#include "greedcolor/core/color_stats.hpp"

#include <algorithm>
#include <cmath>

#include "greedcolor/core/result.hpp"

namespace gcol {

color_t count_colors(const std::vector<color_t>& colors) {
  color_t max_color = -1;
  for (const color_t c : colors) max_color = std::max(max_color, c);
  return max_color + 1;
}

std::vector<vid_t> ColorClassStats::sorted_cardinalities() const {
  std::vector<vid_t> sorted = cardinality;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  return sorted;
}

ColorClassStats color_class_stats(const std::vector<color_t>& colors) {
  ColorClassStats s;
  const color_t k = count_colors(colors);
  s.cardinality.assign(static_cast<std::size_t>(std::max<color_t>(k, 0)), 0);
  vid_t colored = 0;
  for (const color_t c : colors) {
    if (c < 0) continue;
    ++s.cardinality[static_cast<std::size_t>(c)];
    ++colored;
  }
  // Drop empty classes (can appear when a post-pass eliminated a color).
  std::erase(s.cardinality, 0);
  s.num_colors = static_cast<color_t>(s.cardinality.size());
  if (s.num_colors == 0) return s;

  double sum = 0.0, sumsq = 0.0;
  s.min = s.cardinality.front();
  s.max = s.cardinality.front();
  for (const vid_t card : s.cardinality) {
    sum += card;
    sumsq += static_cast<double>(card) * card;
    s.min = std::min(s.min, card);
    s.max = std::max(s.max, card);
    if (card < 2) ++s.singleton_sets;
  }
  s.mean = sum / s.num_colors;
  s.stddev = std::sqrt(
      std::max(0.0, sumsq / s.num_colors - s.mean * s.mean));
  return s;
}

}  // namespace gcol
