#include "greedcolor/core/recolor.hpp"

#include <algorithm>
#include <numeric>

#include "greedcolor/core/result.hpp"
#include "greedcolor/util/marker_set.hpp"
#include "greedcolor/util/prng.hpp"
#include "kernels_common.hpp"

namespace gcol {

namespace {

/// Order vertices by current color, largest color class processed
/// first. When every class is re-colored as a block, greedy first-fit
/// can reuse only colors of previously processed classes, so the count
/// cannot grow (Culberson's argument).
std::vector<vid_t> reverse_class_order(const std::vector<color_t>& colors) {
  std::vector<vid_t> order(colors.size());
  std::iota(order.begin(), order.end(), vid_t{0});
  std::stable_sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    return colors[static_cast<std::size_t>(a)] >
           colors[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace

color_t recolor_bgpc(const BipartiteGraph& g, std::vector<color_t>& colors) {
  const std::vector<vid_t> order = reverse_class_order(colors);
  std::vector<color_t> next(colors.size(), kNoColor);
  MarkerSet forbidden;
  std::uint64_t probes = 0;
  for (const vid_t w : order) {
    forbidden.clear();
    for (const vid_t v : g.nets(w))
      for (const vid_t u : g.vtxs(v))
        if (u != w && next[static_cast<std::size_t>(u)] != kNoColor)
          forbidden.insert(next[static_cast<std::size_t>(u)]);
    next[static_cast<std::size_t>(w)] = detail::pick_up(forbidden, 0, probes);
  }
  colors = std::move(next);
  return count_colors(colors);
}

color_t recolor_d2gc(const Graph& g, std::vector<color_t>& colors) {
  const std::vector<vid_t> order = reverse_class_order(colors);
  std::vector<color_t> next(colors.size(), kNoColor);
  MarkerSet forbidden;
  std::uint64_t probes = 0;
  for (const vid_t w : order) {
    forbidden.clear();
    for (const vid_t u : g.neighbors(w)) {
      if (next[static_cast<std::size_t>(u)] != kNoColor)
        forbidden.insert(next[static_cast<std::size_t>(u)]);
      for (const vid_t x : g.neighbors(u))
        if (x != w && next[static_cast<std::size_t>(x)] != kNoColor)
          forbidden.insert(next[static_cast<std::size_t>(x)]);
    }
    next[static_cast<std::size_t>(w)] = detail::pick_up(forbidden, 0, probes);
  }
  colors = std::move(next);
  return count_colors(colors);
}

color_t recolor_bgpc_to_fixpoint(const BipartiteGraph& g,
                                 std::vector<color_t>& colors,
                                 int max_passes) {
  color_t best = count_colors(colors);
  for (int pass = 0; pass < max_passes; ++pass) {
    const color_t now = recolor_bgpc(g, colors);
    if (now >= best) return now;
    best = now;
  }
  return best;
}

color_t recolor_bgpc_with(const BipartiteGraph& g,
                          std::vector<color_t>& colors, RecolorOrder order,
                          std::uint64_t seed) {
  const color_t k = count_colors(colors);
  // Rank per class according to the requested strategy; vertices are
  // then stably sorted by their class rank, keeping classes contiguous.
  std::vector<std::uint64_t> rank(static_cast<std::size_t>(std::max<color_t>(k, 1)));
  switch (order) {
    case RecolorOrder::kReverseColors:
      for (color_t c = 0; c < k; ++c)
        rank[static_cast<std::size_t>(c)] =
            static_cast<std::uint64_t>(k - c);
      break;
    case RecolorOrder::kRandomClasses:
      for (color_t c = 0; c < k; ++c)
        rank[static_cast<std::size_t>(c)] =
            mix64(seed ^ static_cast<std::uint64_t>(c));
      break;
    case RecolorOrder::kDecreasingSize: {
      std::vector<std::uint64_t> size(static_cast<std::size_t>(k), 0);
      for (const color_t c : colors)
        if (c >= 0) ++size[static_cast<std::size_t>(c)];
      for (color_t c = 0; c < k; ++c)
        rank[static_cast<std::size_t>(c)] = ~size[static_cast<std::size_t>(c)];
      break;
    }
  }
  std::vector<vid_t> vertex_order(colors.size());
  std::iota(vertex_order.begin(), vertex_order.end(), vid_t{0});
  std::stable_sort(vertex_order.begin(), vertex_order.end(),
                   [&](vid_t a, vid_t b) {
                     return rank[static_cast<std::size_t>(
                                colors[static_cast<std::size_t>(a)])] <
                            rank[static_cast<std::size_t>(
                                colors[static_cast<std::size_t>(b)])];
                   });
  std::vector<color_t> next(colors.size(), kNoColor);
  MarkerSet forbidden;
  std::uint64_t probes = 0;
  for (const vid_t w : vertex_order) {
    forbidden.clear();
    for (const vid_t v : g.nets(w))
      for (const vid_t u : g.vtxs(v))
        if (u != w && next[static_cast<std::size_t>(u)] != kNoColor)
          forbidden.insert(next[static_cast<std::size_t>(u)]);
    next[static_cast<std::size_t>(w)] = detail::pick_up(forbidden, 0, probes);
  }
  colors = std::move(next);
  return count_colors(colors);
}

color_t balanced_recolor_bgpc(const BipartiteGraph& g,
                              std::vector<color_t>& colors) {
  const color_t k = count_colors(colors);
  if (k <= 1) return k;
  std::vector<vid_t> load(static_cast<std::size_t>(k), 0);
  for (const color_t c : colors)
    if (c >= 0) ++load[static_cast<std::size_t>(c)];

  MarkerSet forbidden;
  for (vid_t w = 0; w < g.num_vertices(); ++w) {
    const color_t old = colors[static_cast<std::size_t>(w)];
    forbidden.clear();
    for (const vid_t v : g.nets(w))
      for (const vid_t u : g.vtxs(v))
        if (u != w && colors[static_cast<std::size_t>(u)] != kNoColor)
          forbidden.insert(colors[static_cast<std::size_t>(u)]);
    // Least-loaded allowed color; the current color is always allowed,
    // so the choice set is never empty and k never grows.
    color_t best = old;
    for (color_t c = 0; c < k; ++c) {
      if (forbidden.contains(c)) continue;
      if (load[static_cast<std::size_t>(c)] <
          load[static_cast<std::size_t>(best)])
        best = c;
    }
    if (best != old) {
      --load[static_cast<std::size_t>(old)];
      ++load[static_cast<std::size_t>(best)];
      colors[static_cast<std::size_t>(w)] = best;
    }
  }
  return count_colors(colors);
}

}  // namespace gcol
