#include "greedcolor/core/dkgc.hpp"

#include <stdexcept>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/result.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/util/marker_set.hpp"
#include "greedcolor/util/timer.hpp"
#include "kernels_common.hpp"

namespace gcol {

namespace {

void require_k(int k) {
  if (k < 1 || k > 6)
    throw std::invalid_argument("distance-k coloring supports k in [1,6]");
}

/// Append the distance-<=depth ball around source (inclusive) to `out`.
/// `level` doubles as the visited marker; `frontier` is scratch.
void bfs_ball(const Graph& g, vid_t source, int depth,
              std::vector<int>& level, std::vector<vid_t>& frontier,
              std::vector<vid_t>& out) {
  out.clear();
  frontier.clear();
  frontier.push_back(source);
  level[static_cast<std::size_t>(source)] = 0;
  out.push_back(source);
  std::size_t head = 0;
  while (head < frontier.size()) {
    const vid_t v = frontier[head++];
    const int lv = level[static_cast<std::size_t>(v)];
    if (lv == depth) continue;
    for (const vid_t u : g.neighbors(v)) {
      if (level[static_cast<std::size_t>(u)] >= 0) continue;
      level[static_cast<std::size_t>(u)] = lv + 1;
      frontier.push_back(u);
      out.push_back(u);
    }
  }
  for (const vid_t v : frontier) level[static_cast<std::size_t>(v)] = -1;
}

}  // namespace

ColoringResult color_dkgc_sequential(const Graph& g, int k) {
  require_k(k);
  const vid_t n = g.num_vertices();
  ColoringResult result;
  result.colors.assign(static_cast<std::size_t>(n), kNoColor);
  MarkerSet forbidden;
  std::vector<int> level(static_cast<std::size_t>(n), -1);
  std::vector<vid_t> frontier, ball;
  std::uint64_t probes = 0;

  WallTimer total;
  for (vid_t w = 0; w < n; ++w) {
    bfs_ball(g, w, k, level, frontier, ball);
    forbidden.clear();
    for (const vid_t u : ball) {
      const color_t cu = result.colors[static_cast<std::size_t>(u)];
      if (u != w && cu != kNoColor) forbidden.insert(cu);
    }
    result.colors[static_cast<std::size_t>(w)] =
        detail::pick_up(forbidden, 0, probes);
  }
  result.total_seconds = total.seconds();
  result.rounds = 1;
  result.num_colors = count_colors(result.colors);
  return result;
}

ColoringResult color_dkgc(const Graph& g, int k,
                          const ColoringOptions& options) {
  require_k(k);
  const vid_t n = g.num_vertices();
  const int radius = (k + 1) / 2;

  // Net v := the distance-<=radius ball around v. Any distance-<=k pair
  // shares the ball of a midpoint of its shortest path, so BGPC on
  // these nets yields a valid distance-k coloring (over-covering by one
  // hop when k is odd).
  Coo coo;
  coo.num_rows = n;
  coo.num_cols = n;
  std::vector<int> level(static_cast<std::size_t>(n), -1);
  std::vector<vid_t> frontier, ball;
  for (vid_t v = 0; v < n; ++v) {
    bfs_ball(g, v, radius, level, frontier, ball);
    for (const vid_t u : ball) coo.add(v, u);
  }
  const BipartiteGraph nets = build_bipartite(std::move(coo));
  return color_bgpc(nets, options);
}

bool is_valid_dkgc(const Graph& g, int k,
                   const std::vector<color_t>& colors) {
  require_k(k);
  const vid_t n = g.num_vertices();
  if (colors.size() != static_cast<std::size_t>(n)) return false;
  std::vector<int> level(static_cast<std::size_t>(n), -1);
  std::vector<vid_t> frontier, ball;
  for (vid_t v = 0; v < n; ++v) {
    const color_t cv = colors[static_cast<std::size_t>(v)];
    if (cv < 0) return false;
    bfs_ball(g, v, k, level, frontier, ball);
    for (const vid_t u : ball)
      if (u != v && colors[static_cast<std::size_t>(u)] == cv) return false;
  }
  return true;
}

}  // namespace gcol
