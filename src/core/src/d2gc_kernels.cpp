#include "d2gc_kernels.hpp"

#include <omp.h>

#include "greedcolor/util/parallel.hpp"
#include "greedcolor/util/work_queue.hpp"
#include "kernels_common.hpp"

namespace gcol::detail {

namespace {

// Same policy structure as bgpc_kernels.cpp. In the dedup (bitmap)
// mode the visited set suppresses repeated color loads for vertices
// reached through several shared neighbors, but a distance-1 neighbor's
// adjacency list is always walked — its neighbors are the distance-2
// sources — and `edges_visited` keeps counting every adjacency entry.

template <BalancePolicy B, class FS>
void color_vertex_impl(const Graph& g, const std::vector<vid_t>& w,
                       color_t* c, std::vector<ThreadWorkspace>& ws,
                       int chunk, int threads, KernelCounters& counters) {
  const auto n = static_cast<std::int64_t>(w.size());
  CounterSlots slots(threads);
#pragma omp parallel num_threads(threads) default(none) \
    shared(g, w, c, ws, slots) firstprivate(chunk, n)
  {
    const int tid = current_thread();
    GCOL_MC_REGION();
    ThreadWorkspace& tws = ws[static_cast<std::size_t>(tid)];
    typename FS::Set& f = FS::forbidden(tws);
    [[maybe_unused]] BitMarkerSet& visited = FS::visited(tws);
    PolicyState st;
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t i = 0; i < n; ++i) {
      const vid_t wv = w[static_cast<std::size_t>(i)];
      f.clear();
      if constexpr (FS::kDedupNeighbors) {
        visited.clear();
        visited.insert(wv);
      }
      for (const vid_t u : g.neighbors(wv)) {
        GCOL_COUNT(++local.edges_visited);
        bool mark_u = true;
        if constexpr (FS::kDedupNeighbors) mark_u = !visited.test_and_set(u);
        if (mark_u) {
          const color_t cu = load_color(c, u);
          if (cu != kNoColor) f.insert(cu);  // distance-1 neighbor
        }
        const auto xs = g.neighbors(u);
        const std::size_t deg = xs.size();
        for (std::size_t j = 0; j < deg; ++j) {
          // Distance-2 gather: random color loads; hint a few ahead.
          if (j + kColorPrefetchDist < deg)
            prefetch_color(c, xs[j + kColorPrefetchDist]);
          const vid_t x = xs[j];
          GCOL_COUNT(++local.edges_visited);
          if constexpr (FS::kDedupNeighbors) {
            if (visited.test_and_set(x)) continue;  // also skips x == wv
          } else {
            if (x == wv) continue;
          }
          const color_t cx = load_color(c, x);
          if (cx != kNoColor) f.insert(cx);  // distance-2 neighbor
        }
      }
      const color_t col = pick_vertex_color<B>(st, f, wv, local.color_probes);
      store_color(c, wv, col);
      local.max_color = std::max(local.max_color, col);
      GCOL_COUNT(++local.colored);
    }
    slots.publish(tid, local);
  }
  slots.merge_into(counters);
}

template <BalancePolicy B, class FS>
void color_net_impl(const Graph& g, color_t* c,
                    std::vector<ThreadWorkspace>& ws, int chunk, int threads,
                    KernelCounters& counters) {
  const auto n = static_cast<std::int64_t>(g.num_vertices());
  CounterSlots slots(threads);
#pragma omp parallel num_threads(threads) default(none) \
    shared(g, c, ws, slots) firstprivate(chunk, n)
  {
    const int tid = current_thread();
    GCOL_MC_REGION();
    ThreadWorkspace& tws = ws[static_cast<std::size_t>(tid)];
    typename FS::Set& f = FS::forbidden(tws);
    std::vector<vid_t>& wlocal = tws.local_queue;
    PolicyState st;
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t vi = 0; vi < n; ++vi) {
      const vid_t v = static_cast<vid_t>(vi);
      f.clear();
      wlocal.clear();
      // Alg. 9 lines 4-7: the middle vertex itself is part of the net.
      const color_t cv = load_color(c, v);
      if (cv != kNoColor)
        f.insert(cv);
      else
        wlocal.push_back(v);
      // Lines 8-12: distance-1 neighbors.
      const auto us = g.neighbors(v);
      const std::size_t deg = us.size();
      for (std::size_t j = 0; j < deg; ++j) {
        if (j + kColorPrefetchDist < deg)
          prefetch_color(c, us[j + kColorPrefetchDist]);
        const vid_t u = us[j];
        GCOL_COUNT(++local.edges_visited);
        const color_t cu = load_color(c, u);
        if (cu == kNoColor || f.test_and_set(cu)) wlocal.push_back(u);
      }
      if (wlocal.empty()) continue;
      // Lines 13-18: reverse first-fit from |nbor(v)| (one more than
      // BGPC's start: the middle vertex occupies a slot too).
      color_local_queue<B>(st, f, wlocal, v, g.degree(v), c, local);
    }
    slots.publish(tid, local);
  }
  slots.merge_into(counters);
}

template <class FS>
void conflict_vertex_impl(const Graph& g, const std::vector<vid_t>& w,
                          color_t* c, std::vector<ThreadWorkspace>& ws,
                          QueuePolicy queue, int chunk, int threads,
                          std::vector<vid_t>& wnext,
                          KernelCounters& counters) {
  const auto n = static_cast<std::int64_t>(w.size());
  SharedWorkQueue shared;
  LocalWorkQueues lazy;
  const bool use_shared = queue == QueuePolicy::kShared;
  if (use_shared)
    shared.reset(w.size());
  else
    lazy.configure(threads), lazy.begin_round();

  CounterSlots slots(threads);
#pragma omp parallel num_threads(threads) default(none) \
    shared(g, w, c, ws, slots, shared, lazy) \
    firstprivate(chunk, n, use_shared)
  {
    const int tid = current_thread();
    GCOL_MC_REGION();
    [[maybe_unused]] BitMarkerSet& visited =
        FS::visited(ws[static_cast<std::size_t>(tid)]);
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t i = 0; i < n; ++i) {
      const vid_t wv = w[static_cast<std::size_t>(i)];
      const color_t cw = load_color(c, wv);
      if (cw == kNoColor) continue;
      if constexpr (FS::kDedupNeighbors) {
        visited.clear();
        visited.insert(wv);
      }
      bool conflicted = false;
      for (const vid_t u : g.neighbors(wv)) {
        GCOL_COUNT(++local.edges_visited);
        bool check_u = true;
        if constexpr (FS::kDedupNeighbors) check_u = !visited.test_and_set(u);
        if (check_u && load_color(c, u) == cw && wv > u) {  // distance-1
          conflicted = true;
          break;
        }
        const auto xs = g.neighbors(u);
        const std::size_t deg = xs.size();
        for (std::size_t j = 0; j < deg; ++j) {
          if (j + kColorPrefetchDist < deg)
            prefetch_color(c, xs[j + kColorPrefetchDist]);
          const vid_t x = xs[j];
          GCOL_COUNT(++local.edges_visited);
          if constexpr (FS::kDedupNeighbors) {
            if (visited.test_and_set(x)) continue;  // also skips x == wv
          } else {
            if (x == wv) continue;
          }
          if (load_color(c, x) == cw && wv > x) {  // distance-2 clash
            conflicted = true;
            break;
          }
        }
        if (conflicted) break;
      }
      if (conflicted) {
        GCOL_COUNT(++local.conflicts);
        store_color(c, wv, kNoColor);
        if (use_shared)
          shared.push(wv);
        else
          lazy.push(tid, wv);
      }
    }
    slots.publish(tid, local);
  }
  slots.merge_into(counters);
  if (use_shared)
    shared.swap_into(wnext);
  else
    lazy.merge_into(wnext);
}

template <class FS>
void conflict_net_impl(const Graph& g, color_t* c,
                       std::vector<ThreadWorkspace>& ws, int chunk,
                       int threads, std::vector<vid_t>& wnext,
                       KernelCounters& counters) {
  const auto n = static_cast<std::int64_t>(g.num_vertices());
  LocalWorkQueues lazy(threads);
  lazy.begin_round();
  CounterSlots slots(threads);
#pragma omp parallel num_threads(threads) default(none) \
    shared(g, c, ws, slots, lazy) firstprivate(chunk, n)
  {
    const int tid = current_thread();
    GCOL_MC_REGION();
    ThreadWorkspace& tws = ws[static_cast<std::size_t>(tid)];
    typename FS::Set& f = FS::forbidden(tws);
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t vi = 0; vi < n; ++vi) {
      const vid_t v = static_cast<vid_t>(vi);
      f.clear();
      // Alg. 10 lines 3-4: seed with the middle vertex's color.
      const color_t cv = load_color(c, v);
      if (cv != kNoColor) f.insert(cv);
      for (const vid_t u : g.neighbors(v)) {
        GCOL_COUNT(++local.edges_visited);
        const color_t cu = load_color(c, u);
        if (cu == kNoColor) continue;
        if (f.test_and_set(cu)) {
          if (exchange_uncolor(c, u) != kNoColor) {
            lazy.push(tid, u);
            GCOL_COUNT(++local.conflicts);
          }
        }
      }
    }
    slots.publish(tid, local);
  }
  slots.merge_into(counters);
  lazy.merge_into(wnext);
}

}  // namespace

void d2gc_color_vertex(const Graph& g, const std::vector<vid_t>& w,
                       color_t* c, std::vector<ThreadWorkspace>& ws,
                       BalancePolicy balance, ForbiddenSetKind fset,
                       int chunk, int threads, KernelCounters& counters) {
  with_forbidden_set(fset, [&](auto fs) {
    using FS = decltype(fs);
    with_balance(balance, [&](auto b) {
      color_vertex_impl<decltype(b)::value, FS>(g, w, c, ws, chunk, threads,
                                                counters);
    });
  });
}

void d2gc_color_net(const Graph& g, color_t* c,
                    std::vector<ThreadWorkspace>& ws, BalancePolicy balance,
                    ForbiddenSetKind fset, int chunk, int threads,
                    KernelCounters& counters) {
  with_forbidden_set(fset, [&](auto fs) {
    using FS = decltype(fs);
    with_balance(balance, [&](auto b) {
      color_net_impl<decltype(b)::value, FS>(g, c, ws, chunk, threads,
                                             counters);
    });
  });
}

void d2gc_conflict_vertex(const Graph& g, const std::vector<vid_t>& w,
                          color_t* c, std::vector<ThreadWorkspace>& ws,
                          QueuePolicy queue, ForbiddenSetKind fset, int chunk,
                          int threads, std::vector<vid_t>& wnext,
                          KernelCounters& counters) {
  with_forbidden_set(fset, [&](auto fs) {
    conflict_vertex_impl<decltype(fs)>(g, w, c, ws, queue, chunk, threads,
                                       wnext, counters);
  });
}

void d2gc_conflict_net(const Graph& g, color_t* c,
                       std::vector<ThreadWorkspace>& ws, ForbiddenSetKind fset,
                       int chunk, int threads, std::vector<vid_t>& wnext,
                       KernelCounters& counters) {
  with_forbidden_set(fset, [&](auto fs) {
    conflict_net_impl<decltype(fs)>(g, c, ws, chunk, threads, wnext,
                                    counters);
  });
}

}  // namespace gcol::detail
