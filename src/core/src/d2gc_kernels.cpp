#include "d2gc_kernels.hpp"

#include <omp.h>

#include "greedcolor/util/parallel.hpp"
#include "greedcolor/util/work_queue.hpp"
#include "kernels_common.hpp"

namespace gcol::detail {

namespace {

void merge_counters(KernelCounters& into, const KernelCounters& from) {
#pragma omp critical(gcol_counter_merge_d2)
  into += from;
}

template <BalancePolicy B>
void color_vertex_impl(const Graph& g, const std::vector<vid_t>& w,
                       color_t* c, std::vector<ThreadWorkspace>& ws,
                       int chunk, int threads, KernelCounters& counters) {
  const auto n = static_cast<std::int64_t>(w.size());
#pragma omp parallel num_threads(threads)
  {
    ThreadWorkspace& tws = ws[static_cast<std::size_t>(current_thread())];
    MarkerSet& f = tws.forbidden;
    PolicyState st;
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t i = 0; i < n; ++i) {
      const vid_t wv = w[static_cast<std::size_t>(i)];
      f.clear();
      for (const vid_t u : g.neighbors(wv)) {
        GCOL_COUNT(++local.edges_visited);
        const color_t cu = load_color(c, u);
        if (cu != kNoColor) f.insert(cu);  // distance-1 neighbor
        for (const vid_t x : g.neighbors(u)) {
          GCOL_COUNT(++local.edges_visited);
          if (x == wv) continue;
          const color_t cx = load_color(c, x);
          if (cx != kNoColor) f.insert(cx);  // distance-2 neighbor
        }
      }
      const color_t col = pick_vertex_color<B>(st, f, wv, local.color_probes);
      store_color(c, wv, col);
      GCOL_COUNT(++local.colored);
    }
    merge_counters(counters, local);
  }
}

template <BalancePolicy B>
void color_net_impl(const Graph& g, color_t* c,
                    std::vector<ThreadWorkspace>& ws, int chunk, int threads,
                    KernelCounters& counters) {
  const auto n = static_cast<std::int64_t>(g.num_vertices());
#pragma omp parallel num_threads(threads)
  {
    ThreadWorkspace& tws = ws[static_cast<std::size_t>(current_thread())];
    MarkerSet& f = tws.forbidden;
    std::vector<vid_t>& wlocal = tws.local_queue;
    PolicyState st;
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t vi = 0; vi < n; ++vi) {
      const vid_t v = static_cast<vid_t>(vi);
      f.clear();
      wlocal.clear();
      // Alg. 9 lines 4-7: the middle vertex itself is part of the net.
      const color_t cv = load_color(c, v);
      if (cv != kNoColor)
        f.insert(cv);
      else
        wlocal.push_back(v);
      // Lines 8-12: distance-1 neighbors.
      for (const vid_t u : g.neighbors(v)) {
        GCOL_COUNT(++local.edges_visited);
        const color_t cu = load_color(c, u);
        if (cu != kNoColor && !f.contains(cu))
          f.insert(cu);
        else
          wlocal.push_back(u);
      }
      if (wlocal.empty()) continue;
      // Lines 13-18: reverse first-fit from |nbor(v)| (one more than
      // BGPC's start: the middle vertex occupies a slot too).
      color_local_queue<B>(st, f, wlocal, v, g.degree(v), c,
                           local.color_probes, local.colored);
    }
    merge_counters(counters, local);
  }
}

}  // namespace

void d2gc_color_vertex(const Graph& g, const std::vector<vid_t>& w,
                       color_t* c, std::vector<ThreadWorkspace>& ws,
                       BalancePolicy balance, int chunk, int threads,
                       KernelCounters& counters) {
  switch (balance) {
    case BalancePolicy::kNone:
      return color_vertex_impl<BalancePolicy::kNone>(g, w, c, ws, chunk,
                                                     threads, counters);
    case BalancePolicy::kB1:
      return color_vertex_impl<BalancePolicy::kB1>(g, w, c, ws, chunk,
                                                   threads, counters);
    case BalancePolicy::kB2:
      return color_vertex_impl<BalancePolicy::kB2>(g, w, c, ws, chunk,
                                                   threads, counters);
  }
}

void d2gc_color_net(const Graph& g, color_t* c,
                    std::vector<ThreadWorkspace>& ws, BalancePolicy balance,
                    int chunk, int threads, KernelCounters& counters) {
  switch (balance) {
    case BalancePolicy::kNone:
      return color_net_impl<BalancePolicy::kNone>(g, c, ws, chunk, threads,
                                                  counters);
    case BalancePolicy::kB1:
      return color_net_impl<BalancePolicy::kB1>(g, c, ws, chunk, threads,
                                                counters);
    case BalancePolicy::kB2:
      return color_net_impl<BalancePolicy::kB2>(g, c, ws, chunk, threads,
                                                counters);
  }
}

void d2gc_conflict_vertex(const Graph& g, const std::vector<vid_t>& w,
                          color_t* c, std::vector<ThreadWorkspace>& ws,
                          QueuePolicy queue, int chunk, int threads,
                          std::vector<vid_t>& wnext,
                          KernelCounters& counters) {
  (void)ws;
  const auto n = static_cast<std::int64_t>(w.size());
  SharedWorkQueue shared;
  LocalWorkQueues lazy;
  const bool use_shared = queue == QueuePolicy::kShared;
  if (use_shared)
    shared.reset(w.size());
  else
    lazy.configure(threads), lazy.begin_round();

#pragma omp parallel num_threads(threads)
  {
    const int tid = current_thread();
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t i = 0; i < n; ++i) {
      const vid_t wv = w[static_cast<std::size_t>(i)];
      const color_t cw = load_color(c, wv);
      if (cw == kNoColor) continue;
      bool conflicted = false;
      for (const vid_t u : g.neighbors(wv)) {
        GCOL_COUNT(++local.edges_visited);
        if (load_color(c, u) == cw && wv > u) {  // distance-1 clash
          conflicted = true;
          break;
        }
        for (const vid_t x : g.neighbors(u)) {
          GCOL_COUNT(++local.edges_visited);
          if (x == wv) continue;
          if (load_color(c, x) == cw && wv > x) {  // distance-2 clash
            conflicted = true;
            break;
          }
        }
        if (conflicted) break;
      }
      if (conflicted) {
        GCOL_COUNT(++local.conflicts);
        store_color(c, wv, kNoColor);
        if (use_shared)
          shared.push(wv);
        else
          lazy.push(tid, wv);
      }
    }
    merge_counters(counters, local);
  }
  if (use_shared)
    shared.swap_into(wnext);
  else
    lazy.merge_into(wnext);
}

void d2gc_conflict_net(const Graph& g, color_t* c,
                       std::vector<ThreadWorkspace>& ws, int chunk,
                       int threads, std::vector<vid_t>& wnext,
                       KernelCounters& counters) {
  const auto n = static_cast<std::int64_t>(g.num_vertices());
  LocalWorkQueues lazy(threads);
  lazy.begin_round();
#pragma omp parallel num_threads(threads)
  {
    const int tid = current_thread();
    ThreadWorkspace& tws = ws[static_cast<std::size_t>(tid)];
    MarkerSet& f = tws.forbidden;
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t vi = 0; vi < n; ++vi) {
      const vid_t v = static_cast<vid_t>(vi);
      f.clear();
      // Alg. 10 lines 3-4: seed with the middle vertex's color.
      const color_t cv = load_color(c, v);
      if (cv != kNoColor) f.insert(cv);
      for (const vid_t u : g.neighbors(v)) {
        GCOL_COUNT(++local.edges_visited);
        const color_t cu = load_color(c, u);
        if (cu == kNoColor) continue;
        if (f.contains(cu)) {
          if (exchange_uncolor(c, u) != kNoColor) {
            lazy.push(tid, u);
            GCOL_COUNT(++local.conflicts);
          }
        } else {
          f.insert(cu);
        }
      }
    }
    merge_counters(counters, local);
  }
  lazy.merge_into(wnext);
}

}  // namespace gcol::detail
