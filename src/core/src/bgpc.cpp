#include "greedcolor/core/bgpc.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <span>
#include <stdexcept>

#include "bgpc_kernels.hpp"
#include "greedcolor/analyze/audit.hpp"
#include "greedcolor/check/mc.hpp"
#include "greedcolor/core/adaptive.hpp"
#include "greedcolor/obs/trace.hpp"
#include "greedcolor/order/locality.hpp"
#include "greedcolor/robust/fault.hpp"
#include "greedcolor/util/marker_set.hpp"
#include "greedcolor/util/timer.hpp"
#include "kernels_common.hpp"

namespace gcol {

namespace {

std::vector<vid_t> natural_order(vid_t n) {
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), vid_t{0});
  return order;
}

/// Color every remaining uncolored vertex sequentially (first-fit):
/// the guaranteed-termination fallback behind ColoringOptions::max_rounds.
void sequential_cleanup(const BipartiteGraph& g, color_t* c,
                        const std::vector<vid_t>& pending,
                        MarkerSet& forbidden) {
  std::uint64_t probes = 0;
  for (const vid_t w : pending) {
    if (detail::load_color(c, w) != kNoColor) continue;
    forbidden.clear();
    for (const vid_t v : g.nets(w))
      for (const vid_t u : g.vtxs(v)) {
        const color_t cu = detail::load_color(c, u);
        if (u != w && cu != kNoColor) forbidden.insert(cu);
      }
    detail::store_color(c, w, detail::pick_up(forbidden, 0, probes));
  }
}

}  // namespace

color_t bgpc_color_bound(const BipartiteGraph& g) {
  eid_t best = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    eid_t d2 = 0;
    for (const vid_t v : g.nets(u)) d2 += g.net_degree(v) - 1;
    best = std::max(best, d2);
  }
  return static_cast<color_t>(best + 1);
}

ColoringResult color_bgpc(const BipartiteGraph& g,
                          const ColoringOptions& options,
                          const std::vector<vid_t>& order) {
  options.validate();
  const vid_t n = g.num_vertices();
  if (!order.empty() && order.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("color_bgpc: order size mismatch");

  // Locality pre-pass: color a rewritten copy of the graph, then map
  // the colors back through the permutation. The processing order is
  // translated too, so position i still handles the same logical
  // vertex as without the pass.
  if (options.locality != LocalityMode::kNone) {
    const BgpcLocalityPlan plan = make_locality_plan(g, options.locality);
    ColoringOptions inner = options;
    inner.locality = LocalityMode::kNone;
    ColoringResult r = color_bgpc(
        plan.graph, inner, apply_vertex_perm(plan.vertex_perm, order, n));
    r.colors = restore_colors(plan.vertex_perm, std::move(r.colors));
    return r;
  }

  const int threads = detail::resolve_threads(options.num_threads);
  // gcol-trace: spans/events recorded only through the GCOL_TRACE_*
  // macros, which compile out with the build option (same seam contract
  // as the auditor below).
  obs::Tracer* const tracer = options.tracer;
  if (tracer != nullptr) tracer->attach(threads);
  // Speculative-race auditor: installed for the whole engine run so the
  // GCOL_AUDIT accessor hooks can reach it; one null check per round on
  // the happy path (same contract as fault_plan).
  audit::AuditScope audit_scope(options.auditor, threads);
  const auto marker_cap =
      static_cast<std::size_t>(bgpc_color_bound(g)) + 2;
  // Any non-stamped mode may run a dedup (visited-set) kernel; adaptive
  // can pick one mid-run, so it pre-sizes the dedup universe too.
  const bool dedup = options.forbidden_set != ForbiddenSetKind::kStamped;
  std::vector<ThreadWorkspace> workspaces(
      static_cast<std::size_t>(threads));
  for (auto& ws : workspaces)
    ws.prepare(marker_cap, static_cast<std::size_t>(g.max_net_degree()),
               dedup ? static_cast<std::size_t>(n) : 0);

  // Resolves kAdaptive to a concrete representation per phase and
  // round; a fixed requested kind passes through unchanged. Seeded with
  // the max net degree: the net kernels' reverse-first-fit never starts
  // above it, so it is the round-1 color-bound estimate.
  AdaptiveFsEngine fs_engine(options.forbidden_set,
                             static_cast<color_t>(g.max_net_degree()));

  ColoringResult result;
  // Raw buffer + static parallel fill: the same threads that will color
  // a region first-touch its pages (std::vector's fill constructor
  // would touch everything from one thread). Copied into the result
  // vector once at the end.
  const auto nsz = static_cast<std::size_t>(n);
  const std::unique_ptr<color_t[]> color_buf(new color_t[nsz]);
  color_t* c = color_buf.get();
  // store_color (relaxed atomic_ref) here and below: libgomp's barriers
  // are invisible to tsan, so any plain driver access to c[] would be
  // reported as racing the kernels' atomics. Free on x86 either way.
#pragma omp parallel for schedule(static) num_threads(threads) \
    default(none) shared(c) firstprivate(n)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i)
    detail::store_color(c, static_cast<vid_t>(i), kNoColor);

  // Initial work queue: the requested permutation, minus isolated
  // vertices (no nets => no conflicts; net-based kernels never see
  // them, so they are colored up front).
  std::vector<vid_t> w;
  w.reserve(nsz);
  const std::vector<vid_t>& base = order.empty() ? natural_order(n) : order;
  for (const vid_t u : base) {
    if (g.vertex_degree(u) == 0)
      detail::store_color(c, u, 0);
    else
      w.push_back(u);
  }

  WallTimer total;
  const FaultPlan* faults = options.fault_plan;
  std::vector<vid_t> wnext;
  int round = 0;
  int net_color_uses = 0;
  bool fs_traced = false;
  ForbiddenSetKind last_color_fs = ForbiddenSetKind::kStamped;
  ForbiddenSetKind last_conflict_fs = ForbiddenSetKind::kStamped;
  while (!w.empty()) {
    ++round;
    GCOL_TRACE_BEGIN(tracer, "bgpc.round", static_cast<std::uint64_t>(round));
    if (options.auditor) options.auditor->begin_round(round);
    if (options.checker) options.checker->begin_round(round, c, nsz);
    if (faults) inject_round_delay(*faults, round);  // straggler stall
    bool net_color, net_conflict;
    if (options.adaptive_threshold > 0.0) {
      // Hybrid rule. Net *conflict removal* is O(|E|) and beats the
      // vertex-based scan while W is a sizable fraction of V. Net
      // *coloring* is only worth it when W is a majority — and looping
      // it regenerates conflicts (the paper's observation 5), so it is
      // capped at two uses.
      const double frac =
          static_cast<double>(w.size()) / static_cast<double>(n);
      net_color = frac >= std::max(options.adaptive_threshold, 0.5) &&
                  net_color_uses < 2;
      if (net_color) ++net_color_uses;
      net_conflict = net_color || frac >= options.adaptive_threshold;
    } else {
      net_color = round <= options.net_color_rounds;
      net_conflict = options.net_conflict_rounds == -1 ||
                     round <= options.net_conflict_rounds;
    }

    IterationStats stats;
    stats.round = round;
    stats.queue_size = w.size();
    stats.net_based_coloring = net_color;
    stats.net_based_conflict = net_conflict;
    const ForbiddenSetKind color_fs =
        fs_engine.color_kind(net_color, w.size(), nsz);
    const ForbiddenSetKind conflict_fs = fs_engine.conflict_kind(net_conflict);
    stats.color_forbidden_set = color_fs;
    stats.conflict_forbidden_set = conflict_fs;
    // Forbidden-set switches (incl. the first resolution): arg is the
    // ForbiddenSetKind the adaptive engine picked for the phase.
    if (!fs_traced || color_fs != last_color_fs)
      GCOL_TRACE_EVENT(tracer, "bgpc.fs.color",
                       static_cast<std::uint64_t>(color_fs));
    if (!fs_traced || conflict_fs != last_conflict_fs)
      GCOL_TRACE_EVENT(tracer, "bgpc.fs.conflict",
                       static_cast<std::uint64_t>(conflict_fs));
    fs_traced = true;
    last_color_fs = color_fs;
    last_conflict_fs = conflict_fs;

    WallTimer phase;
    GCOL_TRACE_BEGIN(tracer, "bgpc.color",
                     static_cast<std::uint64_t>(w.size()));
    if (net_color) {
      if (options.net_v1)
        detail::bgpc_color_net_v1(g, c, workspaces, options.net_v1_reverse,
                                  color_fs, options.chunk_size,
                                  threads, stats.color_counters);
      else
        detail::bgpc_color_net(g, c, workspaces, options.balance,
                               color_fs, options.chunk_size,
                               threads, stats.color_counters);
    } else {
      detail::bgpc_color_vertex(g, w, c, workspaces, options.balance,
                                color_fs, options.chunk_size,
                                threads, stats.color_counters);
    }
    GCOL_TRACE_END(tracer, "bgpc.color");
    stats.color_seconds = phase.seconds();
    fs_engine.observe_round(stats.color_counters.max_color);

    phase.reset();
    GCOL_TRACE_BEGIN(tracer, "bgpc.conflict",
                     static_cast<std::uint64_t>(w.size()));
    if (net_conflict) {
      detail::bgpc_conflict_net(g, c, workspaces, conflict_fs,
                                options.chunk_size, threads, wnext,
                                stats.conflict_counters);
    } else {
      detail::bgpc_conflict_vertex(g, w, c, workspaces, options.queue,
                                   conflict_fs, options.chunk_size,
                                   threads, wnext, stats.conflict_counters);
    }
    GCOL_TRACE_END(tracer, "bgpc.conflict");
    stats.conflict_seconds = phase.seconds();
    stats.conflicts = wnext.size();

    if (options.collect_iteration_stats)
      result.iterations.push_back(stats);
    std::swap(w, wnext);
    wnext.clear();

    // Post-round stale writes: corrupted vertices stay colored and out
    // of the work queue, so the loop itself may never notice — the
    // verified entry points repair what leaks through.
    if (faults)
      result.faults_injected += inject_stale_colors(
          *faults, g, round, std::span<color_t>(c, nsz));

    // Audit after fault injection: an injected stale write is exactly
    // the "escaped conflict" shape the auditor exists to catch.
    if (options.auditor) options.auditor->end_round(g, c);
    // Model checker sweep, same placement; `w` is already the next
    // round's queue here (post-swap), which the no-loss check needs.
    if (options.checker) options.checker->end_round(g, c, w);

    // Convergence watchdog: round budget + wall-clock deadline. Either
    // valve finishes the pending set with the guaranteed-termination
    // sequential cleanup instead of speculating further.
    if (!w.empty()) {
      const bool capped = round >= options.max_rounds;
      const bool late = options.deadline_seconds > 0.0 &&
                        total.seconds() >= options.deadline_seconds;
      if (capped || late) {
        if (capped)
          GCOL_TRACE_EVENT(tracer, "watchdog.rounds_capped",
                           static_cast<std::uint64_t>(round));
        if (late)
          GCOL_TRACE_EVENT(tracer, "watchdog.deadline",
                           static_cast<std::uint64_t>(round));
        GCOL_TRACE_BEGIN(tracer, "bgpc.sequential_cleanup",
                         static_cast<std::uint64_t>(w.size()));
        sequential_cleanup(g, c, w, workspaces.front().forbidden);
        GCOL_TRACE_END(tracer, "bgpc.sequential_cleanup");
        result.sequential_fallback = true;
        result.degraded = true;
        result.rounds_capped = capped;
        result.deadline_hit = late;
        GCOL_TRACE_END(tracer, "bgpc.round");
        break;
      }
    }
    GCOL_TRACE_END(tracer, "bgpc.round");
  }

  result.total_seconds = total.seconds();
  result.rounds = round;
  result.colors.resize(nsz);
  for (std::size_t i = 0; i < nsz; ++i)
    result.colors[i] = detail::load_color(c, static_cast<vid_t>(i));
  GCOL_CONTRACT(std::all_of(result.colors.begin(), result.colors.end(),
                            [](color_t col) { return col >= 0; }),
                "color_bgpc returned an uncolored vertex");
  result.num_colors = count_colors(result.colors);
  return result;
}

ColoringResult color_bgpc_sequential(const BipartiteGraph& g,
                                     const std::vector<vid_t>& order) {
  const vid_t n = g.num_vertices();
  if (!order.empty() && order.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("color_bgpc_sequential: order size mismatch");

  ColoringResult result;
  result.colors.assign(static_cast<std::size_t>(n), kNoColor);
  // Sequential path draws its scratch from a ThreadWorkspace like the
  // parallel kernels (lint R007: no direct marker-set construction in
  // the BGPC/D2GC layer).
  ThreadWorkspace scratch;
  scratch.prepare(static_cast<std::size_t>(bgpc_color_bound(g)) + 2, 0);
  MarkerSet& forbidden = scratch.forbidden;

  WallTimer total;
  IterationStats stats;
  stats.round = 1;
  stats.queue_size = static_cast<std::size_t>(n);
  std::uint64_t probes = 0;
  const std::vector<vid_t>& base = order.empty() ? natural_order(n) : order;
  for (const vid_t w : base) {
    forbidden.clear();
    for (const vid_t v : g.nets(w)) {
      for (const vid_t u : g.vtxs(v)) {
        GCOL_COUNT(++stats.color_counters.edges_visited);
        if (u == w) continue;
        const color_t cu = result.colors[static_cast<std::size_t>(u)];
        if (cu != kNoColor) forbidden.insert(cu);
      }
    }
    result.colors[static_cast<std::size_t>(w)] =
        detail::pick_up(forbidden, 0, probes);
    GCOL_COUNT(++stats.color_counters.colored);
  }
  GCOL_COUNT(stats.color_counters.color_probes = probes);
  stats.color_seconds = total.seconds();
  result.total_seconds = stats.color_seconds;
  result.rounds = 1;
  result.iterations.push_back(stats);
  result.num_colors = count_colors(result.colors);
  return result;
}

}  // namespace gcol
