#include "greedcolor/core/d2gc.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <span>
#include <stdexcept>

#include "d2gc_kernels.hpp"
#include "greedcolor/analyze/audit.hpp"
#include "greedcolor/check/mc.hpp"
#include "greedcolor/core/adaptive.hpp"
#include "greedcolor/obs/trace.hpp"
#include "greedcolor/order/locality.hpp"
#include "greedcolor/robust/fault.hpp"
#include "greedcolor/util/timer.hpp"
#include "kernels_common.hpp"

namespace gcol {

namespace {

std::vector<vid_t> natural_order(vid_t n) {
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), vid_t{0});
  return order;
}

void sequential_cleanup(const Graph& g, color_t* c,
                        const std::vector<vid_t>& pending,
                        MarkerSet& forbidden) {
  std::uint64_t probes = 0;
  for (const vid_t w : pending) {
    if (detail::load_color(c, w) != kNoColor) continue;
    forbidden.clear();
    for (const vid_t u : g.neighbors(w)) {
      const color_t cu = detail::load_color(c, u);
      if (cu != kNoColor) forbidden.insert(cu);
      for (const vid_t x : g.neighbors(u)) {
        const color_t cx = detail::load_color(c, x);
        if (x != w && cx != kNoColor) forbidden.insert(cx);
      }
    }
    detail::store_color(c, w, detail::pick_up(forbidden, 0, probes));
  }
}

// In the BGPC presets `net_conflict_rounds >= net_color_rounds` is
// enforced because a net-colored round has no explicit queue. Same
// constraint applies here; ColoringOptions::validate covers it.

}  // namespace

color_t d2gc_color_bound(const Graph& g) {
  eid_t best = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    eid_t d2 = g.degree(v);
    for (const vid_t u : g.neighbors(v)) d2 += g.degree(u) - 1;
    best = std::max(best, d2);
  }
  return static_cast<color_t>(best + 2);
}

ColoringResult color_d2gc(const Graph& g, const ColoringOptions& options,
                          const std::vector<vid_t>& order) {
  options.validate();
  if (options.net_v1)
    throw std::invalid_argument("color_d2gc: net_v1 is BGPC-only");
  const vid_t n = g.num_vertices();
  if (!order.empty() && order.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("color_d2gc: order size mismatch");

  // Locality pre-pass (see bgpc.cpp): color a rewritten copy, restore
  // the colors through the permutation.
  if (options.locality != LocalityMode::kNone) {
    const GraphLocalityPlan plan = make_locality_plan(g, options.locality);
    ColoringOptions inner = options;
    inner.locality = LocalityMode::kNone;
    ColoringResult r = color_d2gc(
        plan.graph, inner, apply_vertex_perm(plan.vertex_perm, order, n));
    r.colors = restore_colors(plan.vertex_perm, std::move(r.colors));
    return r;
  }

  const int threads = detail::resolve_threads(options.num_threads);
  // gcol-trace seam; see bgpc.cpp.
  obs::Tracer* const tracer = options.tracer;
  if (tracer != nullptr) tracer->attach(threads);
  // Speculative-race auditor; see bgpc.cpp.
  audit::AuditScope audit_scope(options.auditor, threads);
  const auto marker_cap = static_cast<std::size_t>(d2gc_color_bound(g)) + 2;
  // See bgpc.cpp: every non-stamped mode pre-sizes the dedup universe.
  const bool dedup = options.forbidden_set != ForbiddenSetKind::kStamped;
  std::vector<ThreadWorkspace> workspaces(
      static_cast<std::size_t>(threads));
  for (auto& ws : workspaces)
    ws.prepare(marker_cap, static_cast<std::size_t>(g.max_degree()) + 1,
               dedup ? static_cast<std::size_t>(n) : 0);

  // Per-phase representation choice; seeded with the net kernel's
  // reverse-first-fit origin bound (|nbor(v)| + the middle vertex).
  AdaptiveFsEngine fs_engine(options.forbidden_set,
                             static_cast<color_t>(g.max_degree()) + 1);

  ColoringResult result;
  // First-touch init; see bgpc.cpp.
  const auto nsz = static_cast<std::size_t>(n);
  const std::unique_ptr<color_t[]> color_buf(new color_t[nsz]);
  color_t* c = color_buf.get();
  // store_color throughout the driver: see bgpc.cpp.
#pragma omp parallel for schedule(static) num_threads(threads) \
    default(none) shared(c) firstprivate(n)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i)
    detail::store_color(c, static_cast<vid_t>(i), kNoColor);

  std::vector<vid_t> w;
  w.reserve(nsz);
  const std::vector<vid_t>& base = order.empty() ? natural_order(n) : order;
  for (const vid_t u : base) {
    if (g.degree(u) == 0)
      detail::store_color(c, u, 0);  // isolated
    else
      w.push_back(u);
  }

  WallTimer total;
  const FaultPlan* faults = options.fault_plan;
  std::vector<vid_t> wnext;
  int round = 0;
  int net_color_uses = 0;
  bool fs_traced = false;
  ForbiddenSetKind last_color_fs = ForbiddenSetKind::kStamped;
  ForbiddenSetKind last_conflict_fs = ForbiddenSetKind::kStamped;
  while (!w.empty()) {
    ++round;
    GCOL_TRACE_BEGIN(tracer, "d2gc.round", static_cast<std::uint64_t>(round));
    if (options.auditor) options.auditor->begin_round(round);
    if (options.checker) options.checker->begin_round(round, c, nsz);
    if (faults) inject_round_delay(*faults, round);  // straggler stall
    bool net_color, net_conflict;
    if (options.adaptive_threshold > 0.0) {
      // See bgpc.cpp: net coloring only for majority-sized W (capped at
      // two uses, the paper's observation 5); net conflict removal down
      // to the threshold fraction.
      const double frac =
          static_cast<double>(w.size()) / static_cast<double>(n);
      net_color = frac >= std::max(options.adaptive_threshold, 0.5) &&
                  net_color_uses < 2;
      if (net_color) ++net_color_uses;
      net_conflict = net_color || frac >= options.adaptive_threshold;
    } else {
      net_color = round <= options.net_color_rounds;
      net_conflict = options.net_conflict_rounds == -1 ||
                     round <= options.net_conflict_rounds;
    }

    IterationStats stats;
    stats.round = round;
    stats.queue_size = w.size();
    stats.net_based_coloring = net_color;
    stats.net_based_conflict = net_conflict;
    const ForbiddenSetKind color_fs =
        fs_engine.color_kind(net_color, w.size(), nsz);
    const ForbiddenSetKind conflict_fs = fs_engine.conflict_kind(net_conflict);
    stats.color_forbidden_set = color_fs;
    stats.conflict_forbidden_set = conflict_fs;
    // Forbidden-set switches; see bgpc.cpp.
    if (!fs_traced || color_fs != last_color_fs)
      GCOL_TRACE_EVENT(tracer, "d2gc.fs.color",
                       static_cast<std::uint64_t>(color_fs));
    if (!fs_traced || conflict_fs != last_conflict_fs)
      GCOL_TRACE_EVENT(tracer, "d2gc.fs.conflict",
                       static_cast<std::uint64_t>(conflict_fs));
    fs_traced = true;
    last_color_fs = color_fs;
    last_conflict_fs = conflict_fs;

    WallTimer phase;
    GCOL_TRACE_BEGIN(tracer, "d2gc.color",
                     static_cast<std::uint64_t>(w.size()));
    if (net_color)
      detail::d2gc_color_net(g, c, workspaces, options.balance,
                             color_fs, options.chunk_size,
                             threads, stats.color_counters);
    else
      detail::d2gc_color_vertex(g, w, c, workspaces, options.balance,
                                color_fs, options.chunk_size,
                                threads, stats.color_counters);
    GCOL_TRACE_END(tracer, "d2gc.color");
    stats.color_seconds = phase.seconds();
    fs_engine.observe_round(stats.color_counters.max_color);

    phase.reset();
    GCOL_TRACE_BEGIN(tracer, "d2gc.conflict",
                     static_cast<std::uint64_t>(w.size()));
    if (net_conflict)
      detail::d2gc_conflict_net(g, c, workspaces, conflict_fs,
                                options.chunk_size, threads, wnext,
                                stats.conflict_counters);
    else
      detail::d2gc_conflict_vertex(g, w, c, workspaces, options.queue,
                                   conflict_fs, options.chunk_size,
                                   threads, wnext, stats.conflict_counters);
    GCOL_TRACE_END(tracer, "d2gc.conflict");
    stats.conflict_seconds = phase.seconds();
    stats.conflicts = wnext.size();

    if (options.collect_iteration_stats)
      result.iterations.push_back(stats);
    std::swap(w, wnext);
    wnext.clear();

    // See bgpc.cpp: stale writes escape the queue-based detection by
    // design; the verified entry points repair them afterwards.
    if (faults)
      result.faults_injected += inject_stale_colors(
          *faults, g, round, std::span<color_t>(c, nsz));

    // Audit after fault injection; see bgpc.cpp.
    if (options.auditor) options.auditor->end_round(g, c);
    // Model checker sweep; `w` is the next round's queue (post-swap).
    if (options.checker) options.checker->end_round(g, c, w);

    if (!w.empty()) {
      const bool capped = round >= options.max_rounds;
      const bool late = options.deadline_seconds > 0.0 &&
                        total.seconds() >= options.deadline_seconds;
      if (capped || late) {
        if (capped)
          GCOL_TRACE_EVENT(tracer, "watchdog.rounds_capped",
                           static_cast<std::uint64_t>(round));
        if (late)
          GCOL_TRACE_EVENT(tracer, "watchdog.deadline",
                           static_cast<std::uint64_t>(round));
        GCOL_TRACE_BEGIN(tracer, "d2gc.sequential_cleanup",
                         static_cast<std::uint64_t>(w.size()));
        sequential_cleanup(g, c, w, workspaces.front().forbidden);
        GCOL_TRACE_END(tracer, "d2gc.sequential_cleanup");
        result.sequential_fallback = true;
        result.degraded = true;
        result.rounds_capped = capped;
        result.deadline_hit = late;
        GCOL_TRACE_END(tracer, "d2gc.round");
        break;
      }
    }
    GCOL_TRACE_END(tracer, "d2gc.round");
  }

  result.total_seconds = total.seconds();
  result.rounds = round;
  result.colors.resize(nsz);
  for (std::size_t i = 0; i < nsz; ++i)
    result.colors[i] = detail::load_color(c, static_cast<vid_t>(i));
  GCOL_CONTRACT(std::all_of(result.colors.begin(), result.colors.end(),
                            [](color_t col) { return col >= 0; }),
                "color_d2gc returned an uncolored vertex");
  result.num_colors = count_colors(result.colors);
  return result;
}

ColoringResult color_d2gc_sequential(const Graph& g,
                                     const std::vector<vid_t>& order) {
  const vid_t n = g.num_vertices();
  if (!order.empty() && order.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("color_d2gc_sequential: order size mismatch");

  ColoringResult result;
  result.colors.assign(static_cast<std::size_t>(n), kNoColor);
  // Scratch through a ThreadWorkspace (lint R007); see bgpc.cpp.
  ThreadWorkspace scratch;
  scratch.prepare(static_cast<std::size_t>(d2gc_color_bound(g)) + 2, 0);
  MarkerSet& forbidden = scratch.forbidden;

  WallTimer total;
  IterationStats stats;
  stats.round = 1;
  stats.queue_size = static_cast<std::size_t>(n);
  std::uint64_t probes = 0;
  const std::vector<vid_t>& base = order.empty() ? natural_order(n) : order;
  for (const vid_t w : base) {
    forbidden.clear();
    for (const vid_t u : g.neighbors(w)) {
      GCOL_COUNT(++stats.color_counters.edges_visited);
      const color_t cu = result.colors[static_cast<std::size_t>(u)];
      if (cu != kNoColor) forbidden.insert(cu);
      for (const vid_t x : g.neighbors(u)) {
        GCOL_COUNT(++stats.color_counters.edges_visited);
        if (x == w) continue;
        const color_t cx = result.colors[static_cast<std::size_t>(x)];
        if (cx != kNoColor) forbidden.insert(cx);
      }
    }
    result.colors[static_cast<std::size_t>(w)] =
        detail::pick_up(forbidden, 0, probes);
    GCOL_COUNT(++stats.color_counters.colored);
  }
  GCOL_COUNT(stats.color_counters.color_probes = probes);
  stats.color_seconds = total.seconds();
  result.total_seconds = stats.color_seconds;
  result.rounds = 1;
  result.iterations.push_back(stats);
  result.num_colors = count_colors(result.colors);
  return result;
}

}  // namespace gcol
