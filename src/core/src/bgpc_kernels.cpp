#include "bgpc_kernels.hpp"

#include <omp.h>

#include "greedcolor/util/parallel.hpp"
#include "kernels_common.hpp"

namespace gcol::detail {

namespace {

// Every kernel is instantiated over the balance policy (compile-time
// branch in the color pick) and the ForbiddenSet policy FS (stamped =
// paper-faithful probe loops, bitmap = word-parallel scans + visited-set
// neighbor dedup). `edges_visited` keeps its "one per adjacency entry"
// meaning in every mode — dedup skips the color load and marker work,
// not the traversal count — so the counter-pinning tests and the
// cross-mode comparisons in BENCH_kernels.json stay apples-to-apples.

template <BalancePolicy B, class FS>
void color_vertex_impl(const BipartiteGraph& g, const std::vector<vid_t>& w,
                       color_t* c, std::vector<ThreadWorkspace>& ws,
                       int chunk, int threads, KernelCounters& counters) {
  const auto n = static_cast<std::int64_t>(w.size());
  CounterSlots slots(threads);
#pragma omp parallel num_threads(threads) default(none) \
    shared(g, w, c, ws, slots) firstprivate(chunk, n)
  {
    const int tid = current_thread();
    GCOL_MC_REGION();
    ThreadWorkspace& tws = ws[static_cast<std::size_t>(tid)];
    typename FS::Set& f = FS::forbidden(tws);
    [[maybe_unused]] BitMarkerSet& visited = FS::visited(tws);
    PolicyState st;
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t i = 0; i < n; ++i) {
      const vid_t wv = w[static_cast<std::size_t>(i)];
      f.clear();
      if constexpr (FS::kDedupNeighbors) {
        visited.clear();
        visited.insert(wv);
      }
      for (const vid_t v : g.nets(wv)) {
        const auto vs = g.vtxs(v);
        const std::size_t deg = vs.size();
        for (std::size_t j = 0; j < deg; ++j) {
          // The distance-2 gather is the random-access hot spot: hint
          // the color word a few entries ahead so the load below hits.
          if (j + kColorPrefetchDist < deg)
            prefetch_color(c, vs[j + kColorPrefetchDist]);
          const vid_t u = vs[j];
          GCOL_COUNT(++local.edges_visited);
          if constexpr (FS::kDedupNeighbors) {
            // Each distance-2 neighbor contributes one color no matter
            // how many nets it shares with wv.
            if (visited.test_and_set(u)) continue;
          } else {
            if (u == wv) continue;
          }
          const color_t cu = load_color(c, u);
          if (cu != kNoColor) f.insert(cu);
        }
      }
      const color_t col = pick_vertex_color<B>(st, f, wv, local.color_probes);
      store_color(c, wv, col);
      local.max_color = std::max(local.max_color, col);
      GCOL_COUNT(++local.colored);
    }
    slots.publish(tid, local);
  }
  slots.merge_into(counters);
}

template <BalancePolicy B, class FS>
void color_net_impl(const BipartiteGraph& g, color_t* c,
                    std::vector<ThreadWorkspace>& ws, int chunk, int threads,
                    KernelCounters& counters) {
  const auto nn = static_cast<std::int64_t>(g.num_nets());
  CounterSlots slots(threads);
#pragma omp parallel num_threads(threads) default(none) \
    shared(g, c, ws, slots) firstprivate(chunk, nn)
  {
    const int tid = current_thread();
    GCOL_MC_REGION();
    ThreadWorkspace& tws = ws[static_cast<std::size_t>(tid)];
    typename FS::Set& f = FS::forbidden(tws);
    std::vector<vid_t>& wlocal = tws.local_queue;
    PolicyState st;
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t vi = 0; vi < nn; ++vi) {
      const vid_t v = static_cast<vid_t>(vi);
      f.clear();
      wlocal.clear();
      // Pass 1 (Alg. 8 lines 4-8): mark forbidden colors, queue the
      // vertices that are uncolored or locally color-duplicated.
      const auto vs = g.vtxs(v);
      const std::size_t deg = vs.size();
      for (std::size_t j = 0; j < deg; ++j) {
        if (j + kColorPrefetchDist < deg)
          prefetch_color(c, vs[j + kColorPrefetchDist]);
        const vid_t u = vs[j];
        GCOL_COUNT(++local.edges_visited);
        const color_t cu = load_color(c, u);
        if (cu == kNoColor || f.test_and_set(cu)) wlocal.push_back(u);
      }
      if (wlocal.empty()) continue;
      // Pass 2 (lines 9-14): reverse first-fit from |vtxs(v)|-1, or the
      // balancing variant.
      color_local_queue<B>(st, f, wlocal, v, g.net_degree(v) - 1, c, local);
    }
    slots.publish(tid, local);
  }
  slots.merge_into(counters);
}

template <class FS>
void color_net_v1_impl(const BipartiteGraph& g, color_t* c,
                       std::vector<ThreadWorkspace>& ws, bool reverse,
                       int chunk, int threads, KernelCounters& counters) {
  const auto nn = static_cast<std::int64_t>(g.num_nets());
  CounterSlots slots(threads);
#pragma omp parallel num_threads(threads) default(none) \
    shared(g, c, ws, slots) firstprivate(chunk, nn, reverse)
  {
    const int tid = current_thread();
    GCOL_MC_REGION();
    ThreadWorkspace& tws = ws[static_cast<std::size_t>(tid)];
    typename FS::Set& f = FS::forbidden(tws);
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t vi = 0; vi < nn; ++vi) {
      const vid_t v = static_cast<vid_t>(vi);
      f.clear();
      const color_t deg = g.net_degree(v);
      color_t col = reverse ? deg - 1 : 0;  // net-level running cursor
      const auto vs = g.vtxs(v);
      const std::size_t dsz = vs.size();
      for (std::size_t j = 0; j < dsz; ++j) {
        if (j + kColorPrefetchDist < dsz)
          prefetch_color(c, vs[j + kColorPrefetchDist]);
        const vid_t u = vs[j];
        GCOL_COUNT(++local.edges_visited);
        color_t cu = load_color(c, u);
        if (cu == kNoColor || f.contains(cu)) {
          if (reverse) {
            col = pick_down(f, col, local.color_probes);
            if (col == kNoColor) col = pick_up(f, deg, local.color_probes);
          } else {
            col = pick_up(f, col, local.color_probes);
          }
          cu = col;
          store_color(c, u, cu);
          local.max_color = std::max(local.max_color, cu);
          GCOL_COUNT(++local.colored);
        }
        f.insert(cu);
      }
    }
    slots.publish(tid, local);
  }
  slots.merge_into(counters);
}

template <class FS>
void conflict_vertex_impl(const BipartiteGraph& g, const std::vector<vid_t>& w,
                          color_t* c, std::vector<ThreadWorkspace>& ws,
                          QueuePolicy queue, int chunk, int threads,
                          std::vector<vid_t>& wnext,
                          KernelCounters& counters) {
  const auto n = static_cast<std::int64_t>(w.size());
  SharedWorkQueue shared;
  LocalWorkQueues lazy;
  const bool use_shared = queue == QueuePolicy::kShared;
  if (use_shared)
    shared.reset(w.size());
  else
    lazy.configure(threads), lazy.begin_round();

  CounterSlots slots(threads);
#pragma omp parallel num_threads(threads) default(none) \
    shared(g, w, c, ws, slots, shared, lazy) \
    firstprivate(chunk, n, use_shared)
  {
    const int tid = current_thread();
    GCOL_MC_REGION();
    [[maybe_unused]] BitMarkerSet& visited =
        FS::visited(ws[static_cast<std::size_t>(tid)]);
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t i = 0; i < n; ++i) {
      const vid_t wv = w[static_cast<std::size_t>(i)];
      const color_t cw = load_color(c, wv);
      if (cw == kNoColor) continue;  // already uncolored by a peer race
      if constexpr (FS::kDedupNeighbors) {
        visited.clear();
        visited.insert(wv);
      }
      bool conflicted = false;
      for (const vid_t v : g.nets(wv)) {
        const auto vs = g.vtxs(v);
        const std::size_t deg = vs.size();
        for (std::size_t j = 0; j < deg; ++j) {
          if (j + kColorPrefetchDist < deg)
            prefetch_color(c, vs[j + kColorPrefetchDist]);
          const vid_t u = vs[j];
          GCOL_COUNT(++local.edges_visited);
          if constexpr (FS::kDedupNeighbors) {
            if (visited.test_and_set(u)) continue;
          } else {
            if (u == wv) continue;
          }
          // Tie-break (Alg. 3 line 4): the larger id loses.
          if (load_color(c, u) == cw && wv > u) {
            conflicted = true;
            break;
          }
        }
        if (conflicted) break;
      }
      if (conflicted) {
        GCOL_COUNT(++local.conflicts);
        store_color(c, wv, kNoColor);
        if (use_shared)
          shared.push(wv);
        else
          lazy.push(tid, wv);
      }
    }
    slots.publish(tid, local);
  }
  slots.merge_into(counters);
  if (use_shared)
    shared.swap_into(wnext);
  else
    lazy.merge_into(wnext);
}

template <class FS>
void conflict_net_impl(const BipartiteGraph& g, color_t* c,
                       std::vector<ThreadWorkspace>& ws, int chunk,
                       int threads, std::vector<vid_t>& wnext,
                       KernelCounters& counters) {
  const auto nn = static_cast<std::int64_t>(g.num_nets());
  LocalWorkQueues lazy(threads);
  lazy.begin_round();
  CounterSlots slots(threads);
#pragma omp parallel num_threads(threads) default(none) \
    shared(g, c, ws, slots, lazy) firstprivate(chunk, nn)
  {
    const int tid = current_thread();
    GCOL_MC_REGION();
    ThreadWorkspace& tws = ws[static_cast<std::size_t>(tid)];
    typename FS::Set& f = FS::forbidden(tws);
    KernelCounters local;
#pragma omp for schedule(dynamic, chunk) nowait
    for (std::int64_t vi = 0; vi < nn; ++vi) {
      const vid_t v = static_cast<vid_t>(vi);
      f.clear();
      const auto vs = g.vtxs(v);
      const std::size_t deg = vs.size();
      for (std::size_t j = 0; j < deg; ++j) {
        if (j + kColorPrefetchDist < deg)
          prefetch_color(c, vs[j + kColorPrefetchDist]);
        const vid_t u = vs[j];
        GCOL_COUNT(++local.edges_visited);
        const color_t cu = load_color(c, u);
        if (cu == kNoColor) continue;
        // First occurrence keeps the color; the exchange deduplicates
        // pushes when another net uncolors u concurrently.
        if (f.test_and_set(cu)) {
          if (exchange_uncolor(c, u) != kNoColor) {
            lazy.push(tid, u);
            GCOL_COUNT(++local.conflicts);
          }
        }
      }
    }
    slots.publish(tid, local);
  }
  slots.merge_into(counters);
  lazy.merge_into(wnext);
}

}  // namespace

void bgpc_color_vertex(const BipartiteGraph& g, const std::vector<vid_t>& w,
                       color_t* c, std::vector<ThreadWorkspace>& ws,
                       BalancePolicy balance, ForbiddenSetKind fset,
                       int chunk, int threads, KernelCounters& counters) {
  with_forbidden_set(fset, [&](auto fs) {
    using FS = decltype(fs);
    with_balance(balance, [&](auto b) {
      color_vertex_impl<decltype(b)::value, FS>(g, w, c, ws, chunk, threads,
                                                counters);
    });
  });
}

void bgpc_color_net(const BipartiteGraph& g, color_t* c,
                    std::vector<ThreadWorkspace>& ws, BalancePolicy balance,
                    ForbiddenSetKind fset, int chunk, int threads,
                    KernelCounters& counters) {
  with_forbidden_set(fset, [&](auto fs) {
    using FS = decltype(fs);
    with_balance(balance, [&](auto b) {
      color_net_impl<decltype(b)::value, FS>(g, c, ws, chunk, threads,
                                             counters);
    });
  });
}

void bgpc_color_net_v1(const BipartiteGraph& g, color_t* c,
                       std::vector<ThreadWorkspace>& ws, bool reverse,
                       ForbiddenSetKind fset, int chunk, int threads,
                       KernelCounters& counters) {
  with_forbidden_set(fset, [&](auto fs) {
    color_net_v1_impl<decltype(fs)>(g, c, ws, reverse, chunk, threads,
                                    counters);
  });
}

void bgpc_conflict_vertex(const BipartiteGraph& g, const std::vector<vid_t>& w,
                          color_t* c, std::vector<ThreadWorkspace>& ws,
                          QueuePolicy queue, ForbiddenSetKind fset, int chunk,
                          int threads, std::vector<vid_t>& wnext,
                          KernelCounters& counters) {
  with_forbidden_set(fset, [&](auto fs) {
    conflict_vertex_impl<decltype(fs)>(g, w, c, ws, queue, chunk, threads,
                                       wnext, counters);
  });
}

void bgpc_conflict_net(const BipartiteGraph& g, color_t* c,
                       std::vector<ThreadWorkspace>& ws, ForbiddenSetKind fset,
                       int chunk, int threads, std::vector<vid_t>& wnext,
                       KernelCounters& counters) {
  with_forbidden_set(fset, [&](auto fs) {
    conflict_net_impl<decltype(fs)>(g, c, ws, chunk, threads, wnext,
                                    counters);
  });
}

}  // namespace gcol::detail
