// Result of a (parallel) coloring run, including the per-round phase
// breakdown that Figure 1 and Table I are built from.
#pragma once

#include <cstdint>
#include <vector>

#include "greedcolor/core/options.hpp"
#include "greedcolor/util/counters.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

struct IterationStats {
  int round = 0;                 ///< 1-based
  std::size_t queue_size = 0;    ///< |W| entering the round
  std::size_t conflicts = 0;     ///< |W_next| after conflict removal
  double color_seconds = 0.0;    ///< wall time of the coloring phase
  double conflict_seconds = 0.0; ///< wall time of the removal phase
  bool net_based_coloring = false;
  bool net_based_conflict = false;
  /// Concrete representation each phase actually ran with (kAdaptive is
  /// resolved per phase by the engine; fixed modes pass through).
  ForbiddenSetKind color_forbidden_set = ForbiddenSetKind::kStamped;
  ForbiddenSetKind conflict_forbidden_set = ForbiddenSetKind::kStamped;
  KernelCounters color_counters;
  KernelCounters conflict_counters;
};

struct ColoringResult {
  std::vector<color_t> colors;  ///< per-vertex color, all >= 0 on success
  color_t num_colors = 0;       ///< 1 + max assigned color
  int rounds = 0;               ///< speculative rounds executed
  double total_seconds = 0.0;   ///< coloring + conflict-removal wall time
  bool sequential_fallback = false;  ///< a safety valve ran the sequential cleanup
  // Degradation telemetry (the convergence watchdog + robust pipeline).
  bool degraded = false;        ///< any safety valve fired: fallback or repair
  bool rounds_capped = false;   ///< the max_rounds budget was exhausted
  bool deadline_hit = false;    ///< the deadline_seconds watchdog expired
  vid_t faults_injected = 0;    ///< stale colors written by an attached FaultPlan
  vid_t repaired_vertices = 0;  ///< vertices recolored by verify-and-repair
  std::vector<IterationStats> iterations;  ///< empty unless collected

  [[nodiscard]] KernelCounters total_color_counters() const {
    KernelCounters c;
    for (const auto& it : iterations) c += it.color_counters;
    return c;
  }

  [[nodiscard]] KernelCounters total_conflict_counters() const {
    KernelCounters c;
    for (const auto& it : iterations) c += it.conflict_counters;
    return c;
  }
};

/// 1 + max color in `colors` (0 when empty or all uncolored).
[[nodiscard]] color_t count_colors(const std::vector<color_t>& colors);

}  // namespace gcol
