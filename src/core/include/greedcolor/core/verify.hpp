// Coloring validity checkers used by tests, examples, and (optionally)
// the bench harnesses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

/// Description of the first violation found, for test diagnostics.
struct ColoringViolation {
  vid_t a = kInvalidVertex;  ///< first offending vertex
  vid_t b = kInvalidVertex;  ///< conflicting partner (or kInvalidVertex)
  vid_t via = kInvalidVertex;  ///< shared net / middle vertex, if any
  std::string what;

  [[nodiscard]] std::string to_string() const;
};

/// BGPC validity: every V_A vertex colored (>= 0) and no two vertices
/// sharing a net have equal colors. Runs net-side in O(|E|) with one
/// marker pass per net.
[[nodiscard]] std::optional<ColoringViolation> check_bgpc(
    const BipartiteGraph& g, const std::vector<color_t>& colors);

/// D2GC validity: every vertex colored and all distance-<=2 pairs
/// differently colored (checked per closed neighborhood, O(|E|)).
[[nodiscard]] std::optional<ColoringViolation> check_d2gc(
    const Graph& g, const std::vector<color_t>& colors);

/// Convenience wrappers.
[[nodiscard]] bool is_valid_bgpc(const BipartiteGraph& g,
                                 const std::vector<color_t>& colors);
[[nodiscard]] bool is_valid_d2gc(const Graph& g,
                                 const std::vector<color_t>& colors);

}  // namespace gcol
