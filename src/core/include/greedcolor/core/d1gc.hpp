// Distance-1 graph coloring (D1GC).
//
// The paper's introduction contrasts BGPC/D2GC against classic D1GC:
// sequential D1GC is subsecond on most real graphs while the
// distance-2 problems take minutes — this module provides that
// baseline plus the two standard parallelizations referenced in the
// related work: the speculative color/detect loop (Gebremedhin-Manne /
// Çatalyürek et al., the same framework as our BGPC engine) and the
// priority-MIS algorithm of Jones & Plassmann.
#pragma once

#include <optional>
#include <vector>

#include "greedcolor/core/options.hpp"
#include "greedcolor/core/result.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/csr.hpp"

namespace gcol {

/// Sequential greedy first-fit over `order` (natural when empty).
[[nodiscard]] ColoringResult color_d1gc_sequential(
    const Graph& g, const std::vector<vid_t>& order = {});

/// Speculative parallel D1GC: optimistic coloring + conflict removal
/// rounds. Honors chunk_size, queue policy, balance, and num_threads;
/// net_color_rounds/net_conflict_rounds must be 0 (no nets in D1).
[[nodiscard]] ColoringResult color_d1gc(
    const Graph& g, const ColoringOptions& options = {},
    const std::vector<vid_t>& order = {});

/// Jones–Plassmann: random-priority maximal-independent-set rounds.
/// The result is a deterministic function of (graph, seed) regardless
/// of the thread count — the classic trade of speed for determinism.
[[nodiscard]] ColoringResult color_d1gc_jones_plassmann(
    const Graph& g, std::uint64_t seed = 1, int num_threads = 0);

/// Validity: no two adjacent vertices share a color, all colored.
[[nodiscard]] std::optional<ColoringViolation> check_d1gc(
    const Graph& g, const std::vector<color_t>& colors);
[[nodiscard]] bool is_valid_d1gc(const Graph& g,
                                 const std::vector<color_t>& colors);

/// Greedy bound: 1 + max degree.
[[nodiscard]] color_t d1gc_color_bound(const Graph& g);

}  // namespace gcol
