// Distance-2 graph coloring (D2GC) on unipartite graphs.
//
// The same speculative framework as BGPC with the paper's Section IV
// adaptation: the "net" role is played by each vertex's closed
// neighborhood, so kernels additionally handle the middle vertex itself
// (distance-1 neighbors) and reverse first-fit starts at |nbor(v)|.
#pragma once

#include <vector>

#include "greedcolor/core/options.hpp"
#include "greedcolor/core/result.hpp"
#include "greedcolor/graph/csr.hpp"

namespace gcol {

/// Parallel speculative D2GC. Accepts the same presets as BGPC that
/// Table V evaluates (V-V, V-V-64D, V-N1, V-N2, N1-N2).
[[nodiscard]] ColoringResult color_d2gc(
    const Graph& g, const ColoringOptions& options = {},
    const std::vector<vid_t>& order = {});

/// Deterministic sequential greedy D2GC (first-fit over `order`) —
/// ColPack ships only this for D2GC; it is the Table V baseline.
[[nodiscard]] ColoringResult color_d2gc_sequential(
    const Graph& g, const std::vector<vid_t>& order = {});

/// Upper bound on any color id the D2GC kernels can assign:
/// 1 + max_v Σ_{u ∈ N[v]} |nbor(u)| (multiplicity bound).
[[nodiscard]] color_t d2gc_color_bound(const Graph& g);

}  // namespace gcol
