// Distance-k graph coloring: the paper's Section VIII future-work
// extension. A sequential reference (BFS-ball greedy) plus a parallel
// speculative variant built by reducing to BGPC on distance-(k-1)
// ball nets.
#pragma once

#include <vector>

#include "greedcolor/core/options.hpp"
#include "greedcolor/core/result.hpp"
#include "greedcolor/graph/csr.hpp"

namespace gcol {

/// Sequential greedy distance-k coloring (first-fit over natural
/// order); k >= 1. k=1 is classic D1GC, k=2 matches
/// color_d2gc_sequential.
[[nodiscard]] ColoringResult color_dkgc_sequential(const Graph& g, int k);

/// Parallel distance-k coloring via the BGPC engine: net v := the
/// distance-⌈k/2⌉-ball... more precisely, vertices u,w are distance-<=k
/// adjacent iff they share a distance-⌊k/2⌋-ball net around some middle
/// vertex when k is even, or u lies in the ⌈k/2⌉-ball and w in the
/// ⌊k/2⌋-ball. For simplicity and correctness we build nets as
/// distance-⌈k/2⌉ balls, which *over-covers* for odd k (colors remain
/// valid, possibly a few more than necessary). k in [1, 6].
[[nodiscard]] ColoringResult color_dkgc(const Graph& g, int k,
                                        const ColoringOptions& options = {});

/// Validity check by explicit BFS to depth k from every vertex.
/// O(n * ball size) — intended for tests on small graphs.
[[nodiscard]] bool is_valid_dkgc(const Graph& g, int k,
                                 const std::vector<color_t>& colors);

}  // namespace gcol
