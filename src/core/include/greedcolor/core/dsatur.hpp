// Saturation-degree (DSATUR / Brélaz) greedy coloring.
//
// The dynamic-ordering alternative the paper's related work cites
// (Brélaz '79): always color next the vertex that currently sees the
// most distinct colors in its (distance-2) neighborhood. Sequential
// only — the dynamic order is inherently serial — and typically a few
// colors better than any static order, at a large constant-factor cost.
// Provided as the color-quality upper baseline for the ordering
// ablation bench.
#pragma once

#include "greedcolor/core/result.hpp"
#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"

namespace gcol {

/// DSATUR for BGPC: saturation of u = distinct colors among vertices
/// sharing a net with u. Ties broken by distance-2 degree, then id.
[[nodiscard]] ColoringResult color_bgpc_dsatur(const BipartiteGraph& g);

/// Classic Brélaz DSATUR for distance-1 coloring.
[[nodiscard]] ColoringResult color_d1gc_dsatur(const Graph& g);

}  // namespace gcol
