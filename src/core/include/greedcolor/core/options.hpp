// Algorithm configuration for the speculative coloring framework.
//
// Every algorithm the paper evaluates is one point in a small product
// space: which kernel colors (vertex- or net-based, and for how many
// rounds), which kernel removes conflicts (and for how many rounds),
// how the next work queue is built, the OpenMP chunk size, and the
// color-selection policy (first-fit or one of the balancing heuristics).
// The named presets below reproduce the paper's eight variants exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gcol {

struct FaultPlan;  // greedcolor/robust/fault.hpp
namespace audit {
class AuditContext;  // greedcolor/analyze/audit.hpp
}
namespace check {
class McContext;  // greedcolor/check/mc.hpp
}
namespace obs {
class Tracer;  // greedcolor/obs/trace.hpp
}

/// How the conflict queue for the next round is assembled.
enum class QueuePolicy {
  kShared,  ///< one shared atomic queue (ColPack's V-V / V-V-64)
  kLazy,    ///< thread-private queues merged at round end (the "D")
};

/// Color-selection policy plugged into the coloring kernels.
enum class BalancePolicy {
  kNone,  ///< plain (reverse) first-fit — the unbalanced "-U" runs
  kB1,    ///< Alg. 11: alternate FF / reverse-FF from col_max, no extra colors by design
  kB2,    ///< Alg. 12: rotating cursor col_next, aggressive balancing
};

/// Forbidden-set representation used by the coloring kernels.
enum class ForbiddenSetKind {
  kStamped,   ///< the paper's stamped plain arrays (one probe per color)
  kBitmap,    ///< word-parallel BitMarkerSet (first-fit via bit scans)
  kTwoLevel,  ///< two-level bitmap: summary word skips full 64-word blocks
  kAdaptive,  ///< per-phase choice among the above (see core/adaptive.hpp)
};

/// Optional pre-pass that reorders the graph for cache locality before
/// coloring; colors are mapped back through the inverse permutation, so
/// the caller-visible result is always in original vertex ids.
enum class LocalityMode {
  kNone,     ///< color the graph as given
  kSortAdj,  ///< sort adjacency lists ascending (same ids, better scans)
  kFull,     ///< degree-aware renumbering + sorted rebuilt CSR
};

[[nodiscard]] std::string to_string(QueuePolicy q);
[[nodiscard]] std::string to_string(BalancePolicy b);
[[nodiscard]] std::string to_string(ForbiddenSetKind f);
[[nodiscard]] std::string to_string(LocalityMode m);

/// Parse "stamped" / "bitmap" / "twolevel" / "adaptive"; throws
/// std::invalid_argument otherwise.
[[nodiscard]] ForbiddenSetKind forbidden_set_from_string(
    const std::string& name);

/// Parse "none" / "sort" / "full"; throws std::invalid_argument otherwise.
[[nodiscard]] LocalityMode locality_from_string(const std::string& name);

struct ColoringOptions {
  /// Display name ("V-V", "N1-N2", ...). Informational only.
  std::string name = "custom";

  /// Rounds (1-based, counted from the first) that use *net-based*
  /// coloring (Alg. 8); later rounds use vertex-based coloring (Alg. 4).
  int net_color_rounds = 0;

  /// Rounds that use *net-based* conflict removal (Alg. 7); later rounds
  /// use vertex-based removal (Alg. 5). -1 means every round (V-N∞).
  /// Must be >= net_color_rounds (or -1): a net-colored round has no
  /// explicit work queue for a vertex-based removal to scan.
  int net_conflict_rounds = 0;

  /// OpenMP dynamic-scheduling chunk size for vertex-based kernels.
  int chunk_size = 1;

  /// Next-queue construction for vertex-based conflict removal
  /// (net-based removal is always lazy, as in the paper).
  QueuePolicy queue = QueuePolicy::kShared;

  BalancePolicy balance = BalancePolicy::kNone;

  /// Forbidden-set representation. kAdaptive (the default) lets the
  /// drivers pick the representation per phase and round from the
  /// colored fraction and the running color bound — it matches or beats
  /// both fixed modes on every BENCH_kernels.json row. The reproduction
  /// benches pin kStamped to stay paper-faithful.
  ForbiddenSetKind forbidden_set = ForbiddenSetKind::kAdaptive;

  /// Opt-in locality reordering pre-pass (see LocalityMode).
  LocalityMode locality = LocalityMode::kNone;

  /// Thread count; 0 uses the ambient OpenMP default.
  int num_threads = 0;

  /// Keep per-round phase timings and counters in the result.
  bool collect_iteration_stats = true;

  /// Safety valve: after this many speculative rounds the remaining
  /// uncolored vertices are finished sequentially (guaranteed valid).
  int max_rounds = 200;

  /// Convergence-watchdog wall-clock deadline in seconds (0 disables).
  /// Checked once per round: when exceeded, the remaining work is
  /// finished by the sequential cleanup and the result carries
  /// deadline_hit / degraded. Round granularity: one straggling round
  /// can overshoot the deadline before the check fires.
  double deadline_seconds = 0.0;

  /// Deterministic fault-injection plan (tests / chaos harnesses); not
  /// owned, may be null. See greedcolor/robust/fault.hpp.
  const FaultPlan* fault_plan = nullptr;

  /// Speculative-race auditor: when attached, the partial coloring is
  /// checked after every conflict-removal pass and (in GCOL_AUDIT
  /// builds) the kernels ledger their racy color accesses into it. Not
  /// owned, may be null; one coloring at a time per context. See
  /// greedcolor/analyze/audit.hpp.
  audit::AuditContext* auditor = nullptr;

  /// gcol-mc schedule-exploration checker: when attached (and armed),
  /// the drivers report round boundaries into it and — in GCOL_MC
  /// builds — the kernels' color accessors become cooperative schedule
  /// points under its control. Not owned, may be null; one coloring at
  /// a time per context. See greedcolor/check/mc.hpp.
  check::McContext* checker = nullptr;

  /// gcol-trace tracer: when attached, the drivers record per-round and
  /// per-phase spans plus degradation events into its per-thread ring
  /// buffers (the GCOL_TRACE build option compiles the recording sites
  /// out entirely). Not owned, may be null; one coloring at a time per
  /// tracer. See greedcolor/obs/trace.hpp.
  obs::Tracer* tracer = nullptr;

  /// Use the most-optimistic net coloring (Alg. 6, "Net-V1") instead of
  /// the two-pass Alg. 8 during net-colored rounds, optionally with its
  /// first-fit replaced by reverse first-fit ("Alg. 6 + reverse" in
  /// Table I). Only exercised by the Table I harness and tests.
  bool net_v1 = false;
  bool net_v1_reverse = false;

  /// Adaptive hybrid (the paper's SVIII "better net-based (or hybrid)
  /// coloring approach" direction): when > 0, a round uses the
  /// net-based kernels iff the live work queue still holds at least
  /// this fraction of the vertices — net passes are linear in |E|
  /// regardless of |W|, so they only pay off while |W| is large. When
  /// set, net_color_rounds/net_conflict_rounds are ignored.
  double adaptive_threshold = 0.0;

  /// Throws std::invalid_argument when fields are inconsistent.
  void validate() const;
};

/// The paper's eight BGPC variants (Section VI) by name:
/// "V-V", "V-V-64", "V-V-64D", "V-Ninf", "V-N1", "V-N2", "N1-N2",
/// "N2-N2" (the ∞ variant also accepts "V-N∞").
[[nodiscard]] ColoringOptions bgpc_preset(const std::string& name);

/// Preset names in the paper's presentation order.
[[nodiscard]] const std::vector<std::string>& bgpc_preset_names();

/// The four D2GC variants of Table V: "V-V-64D", "V-N1", "V-N2",
/// "N1-N2" (plus "V-V" for the sequential baseline).
[[nodiscard]] ColoringOptions d2gc_preset(const std::string& name);

[[nodiscard]] const std::vector<std::string>& d2gc_preset_names();

}  // namespace gcol
