// Color-set cardinality statistics: the quantities Table VI and
// Figure 3 report for the balancing heuristics.
#pragma once

#include <vector>

#include "greedcolor/util/types.hpp"

namespace gcol {

struct ColorClassStats {
  color_t num_colors = 0;         ///< number of non-empty color sets
  std::vector<vid_t> cardinality; ///< size of each color set, by color id
  double mean = 0.0;              ///< average cardinality
  double stddev = 0.0;            ///< Table VI's balance metric
  vid_t min = 0;
  vid_t max = 0;
  /// Color sets with fewer than 2 members — the skew symptom the paper's
  /// Section V motivation describes.
  vid_t singleton_sets = 0;

  /// Cardinalities sorted descending (the Figure 3 x-axis).
  [[nodiscard]] std::vector<vid_t> sorted_cardinalities() const;
};

/// Compute the per-color cardinalities and dispersion statistics.
/// Uncolored entries (kNoColor) are ignored.
[[nodiscard]] ColorClassStats color_class_stats(
    const std::vector<color_t>& colors);

}  // namespace gcol
