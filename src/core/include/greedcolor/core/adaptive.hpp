// Adaptive forbidden-set engine: per-phase, per-round choice among the
// stamped, flat-bitmap and two-level-bitmap representations.
//
// Why a *phase* choice and not a single global one: the per-phase
// kernel timings (DESIGN.md §8) show the winning representation is a
// property of the phase's access mix, not of the graph —
//
//   * vertex-based COLOR, early rounds: most neighbors are still
//     uncolored, so the gather loop is load-dominated and the bitmap's
//     pricier insert/dedup overhead buys nothing. Stamped wins.
//   * vertex-based COLOR, later rounds, small color bound: neighbors
//     are colored, the phase is insert-dominated, the forbidden words
//     stay L1-resident and the dedup set suppresses the duplicate
//     distance-2 inserts. Bitmap wins (bone_s N1-N2 round 2: 17 ms vs
//     30 ms stamped).
//   * vertex-based COLOR, later rounds, large color bound: the same
//     phase with hundreds of colors in play keeps stamped ahead — the
//     dedup set narrows each vertex's read window (every neighbor color
//     is read exactly once, early), which both costs extra bookkeeping
//     per edge and lets more racing writes slip through, so the bitmap
//     run pays extra conflict rounds on top of a slower gather
//     (copapers_s N1-N2 round 2: 405 ms + 81 conflicts bitmap vs
//     275 ms + 15 conflicts stamped). The discriminator is the running
//     color bound, not the colored fraction.
//   * net-based COLOR: inserts scale with the net degree but the
//     reverse-first-fit runs only ONCE per net, so the phase is
//     insert-dominated at every L — and the micro L-sweep shows the
//     stamped insert winning at every measured L (crossover "never").
//     Per-round timings agree (bone_s N1-N2 round 1: 7.2 ms stamped vs
//     8.3 ms bitmap; afshell_s d2gc N1-N2: 3.2 ms vs 5.7 ms), so the
//     bitmap band is empty on the measured machine and the threshold
//     defaults to 0. A machine with relatively cheaper wide loads
//     would raise it.
//   * CONFLICT phases never probe a forbidden set (the vertex kernel
//     early-breaks on the first clash, the net kernel only
//     test_and_sets), so the cheapest bookkeeping — stamped, no dedup —
//     always wins.
//
// The engine is deliberately dependency-free (pure decision logic over
// two scalar signals) so it is unit-testable and reusable by the bench
// harnesses, which stamp the thresholds into BENCH_kernels.json.
#pragma once

#include <algorithm>
#include <cstddef>

#include "greedcolor/core/options.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

/// Thresholds of the adaptive engine, calibrated from the L-sweep in
/// bench/micro_forbidden_set (see the "lsweep"/"thresholds" blocks of
/// BENCH_kernels.json and DESIGN.md §8 for the derivation).
struct AdaptiveFsThresholds {
  /// Net-based coloring uses the flat bitmap while the running color
  /// bound L is at or below this; 0 = never. The net kernels issue
  /// ~net-degree inserts per net but only one reverse-first-fit, so
  /// the phase tracks the insert L-sweep — whose crossover on the
  /// measured machine is "never" (see the "crossovers" block of
  /// BENCH_kernels.json), hence the empty band.
  color_t net_color_bitmap_max_l = 0;

  /// Vertex-based coloring switches from stamped to the flat bitmap
  /// once BOTH at least vertex_bitmap_min_colored_frac of the universe
  /// is colored (the gather loop turns load-dominated →
  /// insert-dominated and the dedup set pays for itself) AND the
  /// running color bound is at or below this (the forbidden words stay
  /// L1-resident; at larger L the dedup's narrowed read window costs
  /// extra conflict rounds and the gather slows down — see the header
  /// comment's copapers_s numbers).
  color_t vertex_bitmap_max_l = 256;
  double vertex_bitmap_min_colored_frac = 0.55;

  /// Vertex-based coloring goes two-level regardless of the colored
  /// fraction once L crosses this: first-fit probe chains now span
  /// multiple 64-word blocks and the summary word skips whole full
  /// blocks per probe, which neither the flat bitmap nor the stamped
  /// array can do.
  color_t vertex_twolevel_min_l = 4096;

  /// Hysteresis margin: a phase switches representation only when its
  /// signal clears the threshold by this relative margin, and never
  /// switches back within a run (both signals are monotone in practice;
  /// the stickiness guards the pathological non-monotone case).
  double switch_margin = 0.05;
};

/// The calibrated thresholds for this build (single source of truth —
/// drivers and benches read the same instance).
[[nodiscard]] inline const AdaptiveFsThresholds& adaptive_fs_thresholds() {
  static const AdaptiveFsThresholds t{};
  return t;
}

/// Per-run decision state. One instance per color_bgpc/color_d2gc call;
/// not thread-safe (the drivers consult it between parallel phases).
///
/// For a non-adaptive requested kind the engine degenerates to a
/// constant, so the drivers can route every mode through it.
class AdaptiveFsEngine {
 public:
  /// `requested` is options.forbidden_set; `structural_bound` is the
  /// round-1 color-bound estimate (max net degree + 1 for BGPC, the
  /// D2GC degree bound for D2GC) used before any color is assigned.
  AdaptiveFsEngine(ForbiddenSetKind requested, color_t structural_bound,
                   const AdaptiveFsThresholds& t = adaptive_fs_thresholds())
      : thresholds_(t),
        requested_(requested),
        l_run_(std::max<color_t>(structural_bound, 1)) {}

  [[nodiscard]] ForbiddenSetKind requested() const { return requested_; }

  [[nodiscard]] bool adaptive() const {
    return requested_ == ForbiddenSetKind::kAdaptive;
  }

  /// Representation for a coloring phase. `net_based` selects the
  /// net-kernel rule; `queue_size`/`universe` give the still-uncolored
  /// fraction for the vertex-kernel rule.
  [[nodiscard]] ForbiddenSetKind color_kind(bool net_based,
                                            std::size_t queue_size,
                                            std::size_t universe) {
    if (!adaptive()) return requested_;
    if (net_based) {
      const ForbiddenSetKind pick = net_kind_for(l_run_);
      net_color_last_ = sticky(net_color_last_, pick);
      return net_color_last_;
    }
    const double colored_frac =
        universe == 0
            ? 1.0
            : 1.0 - static_cast<double>(std::min(queue_size, universe)) /
                        static_cast<double>(universe);
    const bool leaving_stamped =
        vertex_color_last_ == ForbiddenSetKind::kStamped;
    const double margin = leaving_stamped ? 1.0 + thresholds_.switch_margin
                                          : 1.0 - thresholds_.switch_margin;
    const double frac_gate =
        thresholds_.vertex_bitmap_min_colored_frac * margin;
    // The L gates tighten/loosen in the opposite direction of the frac
    // gate: clearing them means L is *below* the cap.
    const double l_margin = leaving_stamped ? 1.0 - thresholds_.switch_margin
                                            : 1.0 + thresholds_.switch_margin;
    ForbiddenSetKind pick = ForbiddenSetKind::kStamped;
    if (colored_frac >= frac_gate &&
        static_cast<double>(l_run_) <=
            static_cast<double>(thresholds_.vertex_bitmap_max_l) * l_margin)
      pick = ForbiddenSetKind::kBitmap;
    else if (static_cast<double>(l_run_) >=
             static_cast<double>(thresholds_.vertex_twolevel_min_l) * margin)
      pick = ForbiddenSetKind::kTwoLevel;
    vertex_color_last_ = sticky(vertex_color_last_, pick);
    return vertex_color_last_;
  }

  /// Representation for a conflict-removal phase. The conflict kernels
  /// never probe a forbidden set — the vertex kernel early-breaks on
  /// the first clash and the net kernel only test_and_sets — so the
  /// cheapest bookkeeping (stamped, no dedup) always wins.
  [[nodiscard]] ForbiddenSetKind conflict_kind(bool net_based) const {
    (void)net_based;
    if (!adaptive()) return requested_;
    return ForbiddenSetKind::kStamped;
  }

  /// Feed back the coloring phase's observed maximum color; tightens
  /// (or raises) the running color bound for the next round's choices.
  void observe_round(color_t max_color_seen) {
    if (max_color_seen >= 0)
      l_run_ = std::max<color_t>(l_run_observed_
                                     ? std::max(l_run_, max_color_seen + 1)
                                     : max_color_seen + 1,
                                 1);
    l_run_observed_ = l_run_observed_ || max_color_seen >= 0;
  }

  /// The running color bound the next choice will use (structural
  /// estimate until the first round reports real colors).
  [[nodiscard]] color_t running_bound() const { return l_run_; }

 private:
  [[nodiscard]] ForbiddenSetKind net_kind_for(color_t l) const {
    const double margin =
        net_color_last_ == ForbiddenSetKind::kStamped
            ? 1.0 - thresholds_.switch_margin
            : 1.0 + thresholds_.switch_margin;
    if (static_cast<double>(l) <=
        static_cast<double>(thresholds_.net_color_bitmap_max_l) * margin)
      return ForbiddenSetKind::kBitmap;
    return ForbiddenSetKind::kStamped;
  }

  /// Once a phase has left kStamped it never returns to it within a
  /// run: the signals that triggered the switch (colored fraction, the
  /// running bound) are monotone, so a flip back could only come from
  /// noise, and flapping costs a cold structure every time.
  [[nodiscard]] static ForbiddenSetKind sticky(ForbiddenSetKind last,
                                               ForbiddenSetKind pick) {
    if (last != ForbiddenSetKind::kStamped &&
        pick == ForbiddenSetKind::kStamped)
      return last;
    return pick;
  }

  const AdaptiveFsThresholds thresholds_;
  ForbiddenSetKind requested_;
  color_t l_run_;
  bool l_run_observed_ = false;
  ForbiddenSetKind vertex_color_last_ = ForbiddenSetKind::kStamped;
  ForbiddenSetKind net_color_last_ = ForbiddenSetKind::kStamped;
};

}  // namespace gcol
