// Iterated-greedy recoloring (Culberson-style): a sequential post-pass
// that never increases and often decreases the number of colors.
// Implements the paper's related-work improvement path ("iterative
// recoloring", ref [30]) as an optional extension.
#pragma once

#include <vector>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

/// One iterated-greedy pass for BGPC: vertices are re-greedy-colored
/// grouped by current color, largest color first. The class structure
/// guarantees the new color count is <= the old one. Returns the new
/// color count.
color_t recolor_bgpc(const BipartiteGraph& g, std::vector<color_t>& colors);

/// Same for D2GC.
color_t recolor_d2gc(const Graph& g, std::vector<color_t>& colors);

/// Repeat recolor passes until no improvement (at most `max_passes`).
color_t recolor_bgpc_to_fixpoint(const BipartiteGraph& g,
                                 std::vector<color_t>& colors,
                                 int max_passes = 16);

/// Class-processing order for an iterated-greedy pass. Culberson's
/// guarantee (colors never increase) holds for ANY order that keeps
/// each color class contiguous.
enum class RecolorOrder {
  kReverseColors,    ///< largest color id first (the default pass)
  kRandomClasses,    ///< seeded random class permutation
  kDecreasingSize,   ///< biggest class first (tends to compact hardest)
};

color_t recolor_bgpc_with(const BipartiteGraph& g,
                          std::vector<color_t>& colors, RecolorOrder order,
                          std::uint64_t seed = 0);

/// The "expensive" balancing alternative the paper's Section V declines
/// to run online: a sequential post-pass that re-assigns every vertex to
/// the least-populated color among its allowed ones, maintaining exact
/// cardinalities. Never increases the color count; typically shrinks
/// the cardinality stddev far below B1/B2 at the cost of a full
/// sequential sweep. Returns the (possibly smaller) color count.
color_t balanced_recolor_bgpc(const BipartiteGraph& g,
                              std::vector<color_t>& colors);

}  // namespace gcol
