// Bipartite-graph partial coloring (BGPC): the library's primary entry
// points.
//
// color_bgpc() runs the speculative color/conflict-removal loop of the
// paper with any of the eight algorithm presets (or a custom
// ColoringOptions), returning a valid coloring of the V_A side together
// with per-round timings and work counters.
#pragma once

#include <vector>

#include "greedcolor/core/options.hpp"
#include "greedcolor/core/result.hpp"
#include "greedcolor/graph/bipartite.hpp"

namespace gcol {

/// Parallel speculative BGPC. `order` optionally permutes the initial
/// work queue (natural order when empty); it must be a permutation of
/// [0, g.num_vertices()).
[[nodiscard]] ColoringResult color_bgpc(
    const BipartiteGraph& g, const ColoringOptions& options = {},
    const std::vector<vid_t>& order = {});

/// Deterministic sequential greedy BGPC (first-fit over `order`): the
/// Table II baseline. Never needs conflict removal.
[[nodiscard]] ColoringResult color_bgpc_sequential(
    const BipartiteGraph& g, const std::vector<vid_t>& order = {});

/// Upper bound on any color id the kernels can assign on `g` —
/// 1 + the maximum distance-2 degree (with multiplicity). Used to size
/// forbidden-color markers; exposed for tests.
[[nodiscard]] color_t bgpc_color_bound(const BipartiteGraph& g);

}  // namespace gcol
