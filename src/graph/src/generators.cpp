#include "greedcolor/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "greedcolor/util/prng.hpp"

namespace gcol {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

/// Truncated Pareto sample in [lo, hi] with tail exponent alpha > 1.
vid_t pareto_deg(Xoshiro256& rng, vid_t lo, vid_t hi, double alpha) {
  if (hi <= lo) return lo;
  const double u = rng.uniform();
  const double x = static_cast<double>(lo) / std::pow(1.0 - u, 1.0 / alpha);
  return std::min<vid_t>(hi, static_cast<vid_t>(x));
}

}  // namespace

Coo gen_mesh2d(vid_t nx, vid_t ny, int radius) {
  require(nx > 0 && ny > 0 && radius >= 1, "gen_mesh2d: bad dimensions");
  const vid_t n = nx * ny;
  Coo coo;
  coo.num_rows = coo.num_cols = n;
  const vid_t window = static_cast<vid_t>(2 * radius + 1);
  coo.reserve(static_cast<eid_t>(n) * window * window);
  for (vid_t j = 0; j < ny; ++j) {
    for (vid_t i = 0; i < nx; ++i) {
      const vid_t v = j * nx + i;
      for (int dj = -radius; dj <= radius; ++dj) {
        for (int di = -radius; di <= radius; ++di) {
          const vid_t ii = i + di;
          const vid_t jj = j + dj;
          if (ii < 0 || ii >= nx || jj < 0 || jj >= ny) continue;
          coo.add(v, jj * nx + ii);
        }
      }
    }
  }
  return coo;
}

Coo gen_mesh3d(vid_t nx, vid_t ny, vid_t nz, int radius, bool full_box) {
  require(nx > 0 && ny > 0 && nz > 0 && radius >= 1,
          "gen_mesh3d: bad dimensions");
  const vid_t n = nx * ny * nz;
  Coo coo;
  coo.num_rows = coo.num_cols = n;
  auto id = [&](vid_t i, vid_t j, vid_t k) { return (k * ny + j) * nx + i; };
  for (vid_t k = 0; k < nz; ++k) {
    for (vid_t j = 0; j < ny; ++j) {
      for (vid_t i = 0; i < nx; ++i) {
        const vid_t v = id(i, j, k);
        for (int dk = -radius; dk <= radius; ++dk) {
          for (int dj = -radius; dj <= radius; ++dj) {
            for (int di = -radius; di <= radius; ++di) {
              if (!full_box &&
                  std::abs(di) + std::abs(dj) + std::abs(dk) > radius)
                continue;  // cross (7-point-style) stencil
              const vid_t ii = i + di, jj = j + dj, kk = k + dk;
              if (ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 ||
                  kk >= nz)
                continue;
              coo.add(v, id(ii, jj, kk));
            }
          }
        }
      }
    }
  }
  return coo;
}

Coo gen_powerlaw_bipartite(const PowerLawBipartiteParams& p) {
  require(p.rows > 0 && p.cols > 0 && p.min_deg >= 1 && p.alpha > 0.0,
          "gen_powerlaw_bipartite: bad parameters");
  Xoshiro256 rng(p.seed);
  const vid_t cap =
      p.max_deg > 0 ? std::min(p.max_deg, p.cols) : p.cols;
  Coo coo;
  coo.num_rows = p.rows;
  coo.num_cols = p.cols;
  std::vector<bool> used(static_cast<std::size_t>(p.cols), false);
  std::vector<vid_t> picked;
  for (vid_t r = 0; r < p.rows; ++r) {
    const vid_t deg = pareto_deg(rng, p.min_deg, cap, p.alpha);
    picked.clear();
    while (static_cast<vid_t>(picked.size()) < deg) {
      vid_t c;
      if (p.col_skew > 0.0) {
        // Skewed popularity: bias toward low column ids by a power map.
        const double u = rng.uniform();
        c = static_cast<vid_t>(std::pow(u, 1.0 + p.col_skew) *
                               static_cast<double>(p.cols));
        if (c >= p.cols) c = p.cols - 1;
      } else {
        c = static_cast<vid_t>(rng.bounded(static_cast<std::uint64_t>(p.cols)));
      }
      if (used[static_cast<std::size_t>(c)]) continue;
      used[static_cast<std::size_t>(c)] = true;
      picked.push_back(c);
    }
    for (const vid_t c : picked) {
      used[static_cast<std::size_t>(c)] = false;
      coo.add(r, c);
    }
  }
  return coo;
}

Coo gen_clique_union(vid_t n, vid_t num_cliques, vid_t min_clique,
                     vid_t max_clique, double alpha, std::uint64_t seed) {
  require(n > 0 && num_cliques > 0 && min_clique >= 2 && max_clique >= min_clique,
          "gen_clique_union: bad parameters");
  Xoshiro256 rng(seed);
  Coo coo;
  coo.num_rows = coo.num_cols = n;
  std::vector<vid_t> members;
  std::vector<bool> in_clique(static_cast<std::size_t>(n), false);
  for (vid_t q = 0; q < num_cliques; ++q) {
    const vid_t size =
        std::min<vid_t>(n, pareto_deg(rng, min_clique, max_clique, alpha));
    members.clear();
    while (static_cast<vid_t>(members.size()) < size) {
      const vid_t v =
          static_cast<vid_t>(rng.bounded(static_cast<std::uint64_t>(n)));
      if (in_clique[static_cast<std::size_t>(v)]) continue;
      in_clique[static_cast<std::size_t>(v)] = true;
      members.push_back(v);
    }
    for (const vid_t v : members) in_clique[static_cast<std::size_t>(v)] = false;
    for (const vid_t a : members)
      for (const vid_t b : members) coo.add(a, b);  // includes diagonal
  }
  // Ensure every vertex appears (isolated vertices keep a diagonal entry
  // so the matrix has no empty rows/columns).
  for (vid_t v = 0; v < n; ++v) coo.add(v, v);
  coo.sort_and_dedup();
  return coo;
}

Coo gen_preferential_attachment(vid_t n, vid_t edges_per_vertex,
                                std::uint64_t seed) {
  require(n > edges_per_vertex && edges_per_vertex >= 1,
          "gen_preferential_attachment: bad parameters");
  Xoshiro256 rng(seed);
  Coo coo;
  coo.num_rows = coo.num_cols = n;
  // Target list with repetition proportional to current degree.
  std::vector<vid_t> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2) * n * edges_per_vertex);
  const vid_t seed_size = edges_per_vertex + 1;
  for (vid_t v = 0; v < seed_size; ++v) {
    for (vid_t u = 0; u < v; ++u) {
      coo.add(v, u);
      coo.add(u, v);
      endpoints.push_back(v);
      endpoints.push_back(u);
    }
  }
  std::vector<vid_t> targets;
  for (vid_t v = seed_size; v < n; ++v) {
    targets.clear();
    while (static_cast<vid_t>(targets.size()) < edges_per_vertex) {
      const vid_t t = endpoints[static_cast<std::size_t>(
          rng.bounded(endpoints.size()))];
      if (t == v ||
          std::find(targets.begin(), targets.end(), t) != targets.end())
        continue;
      targets.push_back(t);
    }
    for (const vid_t t : targets) {
      coo.add(v, t);
      coo.add(t, v);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  for (vid_t v = 0; v < n; ++v) coo.add(v, v);  // diagonal
  coo.sort_and_dedup();
  return coo;
}

Coo gen_kkt(vid_t nh_x, vid_t nh_y, vid_t nh_z, vid_t na, vid_t a_row_deg,
            std::uint64_t seed) {
  require(na > 0 && a_row_deg >= 1, "gen_kkt: bad parameters");
  Coo h = gen_mesh3d(nh_x, nh_y, nh_z, 1, false);
  const vid_t nh = h.num_rows;
  require(a_row_deg <= nh, "gen_kkt: a_row_deg exceeds H dimension");
  Xoshiro256 rng(seed);
  Coo coo;
  const vid_t n = nh + na;
  coo.num_rows = coo.num_cols = n;
  coo.reserve(h.nnz() + static_cast<eid_t>(2) * na * a_row_deg + na);
  // H block.
  for (std::size_t i = 0; i < h.rows.size(); ++i)
    coo.add(h.rows[i], h.cols[i]);
  // A and Aᵀ blocks: constraint row r touches a_row_deg H-variables,
  // chosen as a contiguous window plus random fill (typical optimization
  // constraint locality).
  std::vector<bool> used(static_cast<std::size_t>(nh), false);
  std::vector<vid_t> picked;
  for (vid_t r = 0; r < na; ++r) {
    picked.clear();
    const vid_t base = static_cast<vid_t>(
        (static_cast<eid_t>(r) * nh) / na);
    for (vid_t k = 0; k < a_row_deg; ++k) {
      vid_t c;
      if (k < a_row_deg / 2) {
        c = static_cast<vid_t>((base + k) % nh);
      } else {
        c = static_cast<vid_t>(rng.bounded(static_cast<std::uint64_t>(nh)));
      }
      if (used[static_cast<std::size_t>(c)]) continue;
      used[static_cast<std::size_t>(c)] = true;
      picked.push_back(c);
    }
    for (const vid_t c : picked) {
      used[static_cast<std::size_t>(c)] = false;
      coo.add(nh + r, c);
      coo.add(c, nh + r);
    }
    coo.add(nh + r, nh + r);  // keep the (2,2) block non-empty rows
  }
  coo.sort_and_dedup();
  return coo;
}

Coo gen_block_rows(vid_t n, vid_t row_deg, vid_t bandwidth,
                   double offband_frac, std::uint64_t seed) {
  require(n > 0 && row_deg >= 1 && bandwidth >= row_deg && bandwidth <= n,
          "gen_block_rows: bad parameters");
  require(offband_frac >= 0.0 && offband_frac <= 1.0,
          "gen_block_rows: offband_frac in [0,1]");
  Xoshiro256 rng(seed);
  Coo coo;
  coo.num_rows = coo.num_cols = n;
  coo.reserve(static_cast<eid_t>(n) * row_deg);
  const vid_t off = static_cast<vid_t>(offband_frac * row_deg);
  const vid_t in_band = row_deg - off;
  for (vid_t r = 0; r < n; ++r) {
    // Contiguous in-band block centered near the diagonal (clipped).
    vid_t start = r - in_band / 2;
    start = std::clamp<vid_t>(start, 0, n - in_band);
    for (vid_t k = 0; k < in_band; ++k) coo.add(r, start + k);
    // Random off-band fill within a window of `bandwidth` (wraps).
    for (vid_t k = 0; k < off; ++k) {
      const vid_t c = static_cast<vid_t>(
          (r + rng.bounded(static_cast<std::uint64_t>(2 * bandwidth)) +
           n - bandwidth) %
          static_cast<std::uint64_t>(n));
      coo.add(r, c);
    }
  }
  coo.sort_and_dedup();
  return coo;
}

Coo gen_random_bipartite(vid_t rows, vid_t cols, eid_t nnz,
                         std::uint64_t seed) {
  require(rows > 0 && cols > 0 && nnz >= 0,
          "gen_random_bipartite: bad parameters");
  require(nnz <= static_cast<eid_t>(rows) * cols,
          "gen_random_bipartite: nnz exceeds capacity");
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(nnz) * 2);
  Coo coo;
  coo.num_rows = rows;
  coo.num_cols = cols;
  coo.reserve(nnz);
  while (static_cast<eid_t>(coo.nnz()) < nnz) {
    const vid_t r =
        static_cast<vid_t>(rng.bounded(static_cast<std::uint64_t>(rows)));
    const vid_t c =
        static_cast<vid_t>(rng.bounded(static_cast<std::uint64_t>(cols)));
    const std::uint64_t key =
        (static_cast<std::uint64_t>(r) << 32) | static_cast<std::uint32_t>(c);
    if (!seen.insert(key).second) continue;
    coo.add(r, c);
  }
  coo.sort_and_dedup();
  return coo;
}

Coo gen_random_geometric(vid_t n, double radius, std::uint64_t seed) {
  require(n > 0 && radius > 0.0, "gen_random_geometric: bad parameters");
  Xoshiro256 rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n)),
      ys(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    xs[static_cast<std::size_t>(v)] = rng.uniform();
    ys[static_cast<std::size_t>(v)] = rng.uniform();
  }
  // Grid-bucketed neighbor search keeps this O(n) for fixed density.
  const int grid = std::max(1, static_cast<int>(1.0 / radius));
  std::vector<std::vector<vid_t>> cells(
      static_cast<std::size_t>(grid) * grid);
  auto cell_of = [&](vid_t v) {
    const int cx = std::min(grid - 1, static_cast<int>(
                                          xs[static_cast<std::size_t>(v)] * grid));
    const int cy = std::min(grid - 1, static_cast<int>(
                                          ys[static_cast<std::size_t>(v)] * grid));
    return cy * grid + cx;
  };
  for (vid_t v = 0; v < n; ++v)
    cells[static_cast<std::size_t>(cell_of(v))].push_back(v);
  Coo coo;
  coo.num_rows = coo.num_cols = n;
  const double r2 = radius * radius;
  for (vid_t v = 0; v < n; ++v) {
    coo.add(v, v);
    const int c = cell_of(v);
    const int cx = c % grid, cy = c / grid;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nxc = cx + dx, nyc = cy + dy;
        if (nxc < 0 || nxc >= grid || nyc < 0 || nyc >= grid) continue;
        for (const vid_t u : cells[static_cast<std::size_t>(nyc * grid + nxc)]) {
          if (u == v) continue;
          const double ddx = xs[static_cast<std::size_t>(u)] -
                             xs[static_cast<std::size_t>(v)];
          const double ddy = ys[static_cast<std::size_t>(u)] -
                             ys[static_cast<std::size_t>(v)];
          if (ddx * ddx + ddy * ddy <= r2) coo.add(v, u);
        }
      }
    }
  }
  coo.sort_and_dedup();
  return coo;
}

}  // namespace gcol
