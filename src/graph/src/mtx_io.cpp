#include "greedcolor/graph/mtx_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gcol {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(const std::string& why) {
  throw std::runtime_error("MatrixMarket: " + why);
}

}  // namespace

Coo read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) fail("empty stream");

  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (lower(tag) != "%%matrixmarket") fail("missing %%MatrixMarket banner");
  if (lower(object) != "matrix") fail("unsupported object: " + object);
  if (lower(format) != "coordinate")
    fail("only coordinate format is supported");
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  const bool complex_field = field == "complex";
  if (!pattern && field != "real" && field != "integer" && !complex_field)
    fail("unsupported field: " + field);
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  const bool hermitian = symmetry == "hermitian";
  if (!symmetric && !skew && !hermitian && symmetry != "general")
    fail("unsupported symmetry: " + symmetry);

  // Skip comments and blank lines to the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long long nrows = 0, ncols = 0, nnz = 0;
  if (!(size_line >> nrows >> ncols >> nnz)) fail("bad size line");
  if (nrows <= 0 || ncols <= 0 || nnz < 0) fail("non-positive dimensions");

  Coo coo;
  coo.num_rows = static_cast<vid_t>(nrows);
  coo.num_cols = static_cast<vid_t>(ncols);
  coo.reserve(nnz);

  for (long long k = 0; k < nnz; ++k) {
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) fail("truncated entry list");
    if (!pattern) {
      if (!(in >> v)) fail("missing value");
      if (complex_field) {
        double imag;
        if (!(in >> imag)) fail("missing imaginary part");
      }
    }
    if (r < 1 || r > nrows || c < 1 || c > ncols)
      fail("entry index out of range");
    const vid_t ri = static_cast<vid_t>(r - 1);
    const vid_t ci = static_cast<vid_t>(c - 1);
    if (pattern)
      coo.add(ri, ci);
    else
      coo.add(ri, ci, v);
    if ((symmetric || skew || hermitian) && ri != ci) {
      if (pattern)
        coo.add(ci, ri);
      else
        coo.add(ci, ri, skew ? -v : v);
    }
  }
  coo.sort_and_dedup();
  return coo;
}

Coo read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Coo& coo) {
  const bool pattern = !coo.has_values();
  out << "%%MatrixMarket matrix coordinate "
      << (pattern ? "pattern" : "real") << " general\n";
  out << coo.num_rows << ' ' << coo.num_cols << ' ' << coo.nnz() << '\n';
  for (std::size_t i = 0; i < coo.rows.size(); ++i) {
    out << coo.rows[i] + 1 << ' ' << coo.cols[i] + 1;
    if (!pattern) out << ' ' << coo.vals[i];
    out << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const Coo& coo) {
  std::ofstream out(path);
  if (!out) fail("cannot open " + path + " for writing");
  write_matrix_market(out, coo);
}

}  // namespace gcol
