#include "greedcolor/graph/mtx_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "greedcolor/robust/error.hpp"

namespace gcol {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(ErrorCode code, const std::string& why) {
  raise(code, "MatrixMarket", why);
}

bool is_blank(const std::string& line) {
  return std::all_of(line.begin(), line.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

/// Entries a corrupt size line may promise; real matrices stay far
/// below this, and entry storage only grows as lines actually parse.
constexpr long long kMaxNnz = 1LL << 40;

/// Upfront reservation cap: a lying nnz field must not translate into a
/// multi-GB allocation before a single entry has been read.
constexpr long long kMaxReserve = 1LL << 22;

}  // namespace

Coo read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) fail(ErrorCode::kTruncatedInput, "empty stream");

  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (lower(tag) != "%%matrixmarket")
    fail(ErrorCode::kBadInput, "missing %%MatrixMarket banner");
  if (lower(object) != "matrix")
    fail(ErrorCode::kBadInput, "unsupported object: " + object);
  if (lower(format) != "coordinate")
    fail(ErrorCode::kBadInput, "only coordinate format is supported");
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  const bool complex_field = field == "complex";
  if (!pattern && field != "real" && field != "integer" && !complex_field)
    fail(ErrorCode::kBadInput, "unsupported field: " + field);
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  const bool hermitian = symmetry == "hermitian";
  if (!symmetric && !skew && !hermitian && symmetry != "general")
    fail(ErrorCode::kBadInput, "unsupported symmetry: " + symmetry);

  // Skip comments and blank lines to the size line.
  bool have_size_line = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%' && !is_blank(line)) {
      have_size_line = true;
      break;
    }
  }
  if (!have_size_line)
    fail(ErrorCode::kTruncatedInput, "missing size line");
  std::istringstream size_line(line);
  long long nrows = 0, ncols = 0, nnz = 0;
  // A >19-digit field overflows long long and sets failbit, so
  // oversized values land here rather than wrapping silently.
  if (!(size_line >> nrows >> ncols >> nnz))
    fail(ErrorCode::kBadInput, "bad size line: '" + line + "'");
  if (nrows <= 0 || ncols <= 0)
    fail(ErrorCode::kOutOfRange, "non-positive dimensions");
  if (nrows > kMaxVertices || ncols > kMaxVertices)
    fail(ErrorCode::kOutOfRange, "dimensions exceed 32-bit vertex ids");
  if (nnz < 0) fail(ErrorCode::kOutOfRange, "negative nnz");
  if (nnz > kMaxNnz) fail(ErrorCode::kOutOfRange, "implausible nnz");

  Coo coo;
  coo.num_rows = static_cast<vid_t>(nrows);
  coo.num_cols = static_cast<vid_t>(ncols);
  coo.reserve(static_cast<eid_t>(std::min(nnz, kMaxReserve)));

  // Entries are parsed line-by-line so a short line ("1" where "1 2" is
  // due) is rejected instead of silently consuming the next line's
  // fields — the classic way a truncated file shifts every later entry.
  for (long long k = 0; k < nnz; ++k) {
    do {
      if (!std::getline(in, line))
        fail(ErrorCode::kTruncatedInput, "truncated entry list");
    } while (is_blank(line));
    std::istringstream entry(line);
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(entry >> r >> c))
      fail(ErrorCode::kBadInput, "short entry line: '" + line + "'");
    if (!pattern) {
      if (!(entry >> v)) fail(ErrorCode::kBadInput, "missing value");
      if (complex_field) {
        double imag;
        if (!(entry >> imag))
          fail(ErrorCode::kBadInput, "missing imaginary part");
      }
    }
    if (r < 1 || r > nrows || c < 1 || c > ncols)
      fail(ErrorCode::kOutOfRange, "entry index out of range");
    const vid_t ri = static_cast<vid_t>(r - 1);
    const vid_t ci = static_cast<vid_t>(c - 1);
    if (pattern)
      coo.add(ri, ci);
    else
      coo.add(ri, ci, v);
    if ((symmetric || skew || hermitian) && ri != ci) {
      if (pattern)
        coo.add(ci, ri);
      else
        coo.add(ci, ri, skew ? -v : v);
    }
  }
  coo.sort_and_dedup();
  return coo;
}

Coo read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(ErrorCode::kIoError, "cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Coo& coo) {
  const bool pattern = !coo.has_values();
  out << "%%MatrixMarket matrix coordinate "
      << (pattern ? "pattern" : "real") << " general\n";
  out << coo.num_rows << ' ' << coo.num_cols << ' ' << coo.nnz() << '\n';
  for (std::size_t i = 0; i < coo.rows.size(); ++i) {
    out << coo.rows[i] + 1 << ' ' << coo.cols[i] + 1;
    if (!pattern) out << ' ' << coo.vals[i];
    out << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const Coo& coo) {
  std::ofstream out(path);
  if (!out) fail(ErrorCode::kIoError, "cannot open " + path + " for writing");
  write_matrix_market(out, coo);
}

}  // namespace gcol
