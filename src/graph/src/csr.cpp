#include "greedcolor/graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace gcol {

Graph::Graph(vid_t n, std::vector<eid_t> ptr, std::vector<vid_t> adj)
    : n_(n), ptr_(std::move(ptr)), adj_(std::move(adj)) {
  if (ptr_.size() != static_cast<std::size_t>(n_) + 1)
    throw std::invalid_argument("Graph: ptr must have n+1 entries");
  if (ptr_.front() != 0 ||
      ptr_.back() != static_cast<eid_t>(adj_.size()))
    throw std::invalid_argument("Graph: ptr endpoints inconsistent with adj");
}

vid_t Graph::max_degree() const {
  vid_t best = 0;
  for (vid_t v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

bool Graph::validate() const {
  for (vid_t v = 0; v < n_; ++v) {
    if (ptr_[static_cast<std::size_t>(v)] >
        ptr_[static_cast<std::size_t>(v) + 1])
      return false;
    const auto nb = neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const vid_t u = nb[i];
      if (u < 0 || u >= n_ || u == v) return false;
      if (i > 0 && nb[i - 1] >= u) return false;  // sorted, unique
      // symmetry: v must appear in adj(u)
      const auto back = neighbors(u);
      if (!std::binary_search(back.begin(), back.end(), v)) return false;
    }
  }
  return true;
}

}  // namespace gcol
