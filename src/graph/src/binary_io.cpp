#include "greedcolor/graph/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

#include "greedcolor/robust/error.hpp"

namespace gcol {

namespace {

constexpr char kMagicBipartite[8] = {'G', 'C', 'O', 'L', 'B', 'P', '0', '1'};
constexpr char kMagicGraph[8] = {'G', 'C', 'O', 'L', 'G', 'R', '0', '1'};

[[noreturn]] void fail(ErrorCode code, const std::string& why) {
  raise(code, "binary_io", why);
}

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  const std::uint64_t n = v.size();
  write_pod(out, n);
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) fail(ErrorCode::kTruncatedInput, "truncated stream");
  return v;
}

constexpr std::uint64_t kUnknownSize = std::numeric_limits<std::uint64_t>::max();

/// Bytes left between the read cursor and end-of-stream, or kUnknownSize
/// when the stream is not seekable. Restores the cursor.
std::uint64_t remaining_bytes(std::istream& in) {
  const auto pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return kUnknownSize;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return kUnknownSize;
  return static_cast<std::uint64_t>(end - pos);
}

/// Read a length-prefixed array. The declared length is validated both
/// against the structural cap AND against the bytes actually left in
/// the stream, so a corrupted header can never trigger a multi-GB
/// allocation: we allocate only after proving the data could exist.
template <typename T>
std::vector<T> read_vec(std::istream& in, std::uint64_t max_len) {
  const auto n = read_pod<std::uint64_t>(in);
  if (n > max_len)
    fail(ErrorCode::kCorruptHeader,
         "implausible array length (corrupt header?)");
  const std::uint64_t avail = remaining_bytes(in);
  if (avail != kUnknownSize && n > avail / sizeof(T))
    fail(ErrorCode::kCorruptHeader,
         "declared array length exceeds the bytes left in the stream");
  std::vector<T> v(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) fail(ErrorCode::kTruncatedInput, "truncated array");
  return v;
}

/// Structural pre-check of one CSR half. BipartiteGraph/Graph::validate
/// assumes the ptr array is monotone and in-range when it builds spans,
/// so corrupted offsets must be rejected BEFORE construction — after
/// it, they are undefined behavior, not a detectable error.
void check_csr_half(const std::vector<eid_t>& ptr, std::size_t expected_len,
                    std::size_t adj_size) {
  if (ptr.size() != expected_len)
    fail(ErrorCode::kCorruptHeader, "ptr array length mismatch");
  if (ptr.front() != 0 || ptr.back() != static_cast<eid_t>(adj_size))
    fail(ErrorCode::kBadInput, "ptr endpoints inconsistent with adjacency");
  for (std::size_t i = 1; i < ptr.size(); ++i)
    if (ptr[i - 1] > ptr[i])
      fail(ErrorCode::kBadInput, "ptr array not monotone");
}

void check_magic(std::istream& in, const char (&magic)[8]) {
  char got[8];
  in.read(got, 8);
  if (!in) fail(ErrorCode::kTruncatedInput, "stream shorter than the magic");
  if (std::memcmp(got, magic, 8) != 0)
    fail(ErrorCode::kCorruptHeader,
         "bad magic (not a greedcolor binary of the expected kind)");
}

}  // namespace

void write_binary(std::ostream& out, const BipartiteGraph& g) {
  out.write(kMagicBipartite, 8);
  write_pod(out, static_cast<std::int64_t>(g.num_vertices()));
  write_pod(out, static_cast<std::int64_t>(g.num_nets()));
  write_vec(out, g.vptr());
  write_vec(out, g.vadj());
  write_vec(out, g.nptr());
  write_vec(out, g.nadj());
  if (!out) fail(ErrorCode::kIoError, "write failed");
}

void write_binary(std::ostream& out, const Graph& g) {
  out.write(kMagicGraph, 8);
  write_pod(out, static_cast<std::int64_t>(g.num_vertices()));
  write_vec(out, g.ptr());
  write_vec(out, g.adj());
  if (!out) fail(ErrorCode::kIoError, "write failed");
}

BipartiteGraph read_binary_bipartite(std::istream& in) {
  check_magic(in, kMagicBipartite);
  const auto nv = read_pod<std::int64_t>(in);
  const auto nn = read_pod<std::int64_t>(in);
  if (nv < 0 || nn < 0 || nv > kMaxVertices || nn > kMaxVertices)
    fail(ErrorCode::kOutOfRange, "bad dimensions");
  constexpr std::uint64_t kMaxEdges = 1ULL << 40;
  auto vptr = read_vec<eid_t>(in, static_cast<std::uint64_t>(nv) + 1);
  auto vadj = read_vec<vid_t>(in, kMaxEdges);
  auto nptr = read_vec<eid_t>(in, static_cast<std::uint64_t>(nn) + 1);
  auto nadj = read_vec<vid_t>(in, kMaxEdges);
  check_csr_half(vptr, static_cast<std::size_t>(nv) + 1, vadj.size());
  check_csr_half(nptr, static_cast<std::size_t>(nn) + 1, nadj.size());
  if (vadj.size() != nadj.size())
    fail(ErrorCode::kBadInput, "halves disagree on |E|");
  BipartiteGraph g(static_cast<vid_t>(nv), static_cast<vid_t>(nn),
                   std::move(vptr), std::move(vadj), std::move(nptr),
                   std::move(nadj));
  if (!g.validate()) fail(ErrorCode::kBadInput, "structural validation failed");
  return g;
}

Graph read_binary_graph(std::istream& in) {
  check_magic(in, kMagicGraph);
  const auto nv = read_pod<std::int64_t>(in);
  if (nv < 0 || nv > kMaxVertices)
    fail(ErrorCode::kOutOfRange, "bad dimensions");
  constexpr std::uint64_t kMaxEdges = 1ULL << 40;
  auto ptr = read_vec<eid_t>(in, static_cast<std::uint64_t>(nv) + 1);
  auto adj = read_vec<vid_t>(in, kMaxEdges);
  check_csr_half(ptr, static_cast<std::size_t>(nv) + 1, adj.size());
  Graph g(static_cast<vid_t>(nv), std::move(ptr), std::move(adj));
  if (!g.validate()) fail(ErrorCode::kBadInput, "structural validation failed");
  return g;
}

std::string binary_kind(std::istream& in) {
  char got[8];
  const auto pos = in.tellg();
  in.read(got, 8);
  in.clear();
  in.seekg(pos);
  if (in.gcount() != 8) return "";
  if (std::memcmp(got, kMagicBipartite, 8) == 0) return "bipartite";
  if (std::memcmp(got, kMagicGraph, 8) == 0) return "graph";
  return "";
}

void write_binary_file(const std::string& path, const BipartiteGraph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(ErrorCode::kIoError, "cannot open " + path);
  write_binary(out, g);
}

void write_binary_file(const std::string& path, const Graph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(ErrorCode::kIoError, "cannot open " + path);
  write_binary(out, g);
}

BipartiteGraph read_binary_bipartite_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(ErrorCode::kIoError, "cannot open " + path);
  return read_binary_bipartite(in);
}

Graph read_binary_graph_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(ErrorCode::kIoError, "cannot open " + path);
  return read_binary_graph(in);
}

}  // namespace gcol
