#include "greedcolor/graph/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace gcol {

namespace {

constexpr char kMagicBipartite[8] = {'G', 'C', 'O', 'L', 'B', 'P', '0', '1'};
constexpr char kMagicGraph[8] = {'G', 'C', 'O', 'L', 'G', 'R', '0', '1'};

[[noreturn]] void fail(const std::string& why) {
  throw std::runtime_error("binary_io: " + why);
}

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  const std::uint64_t n = v.size();
  write_pod(out, n);
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) fail("truncated stream");
  return v;
}

template <typename T>
std::vector<T> read_vec(std::istream& in, std::uint64_t max_len) {
  const auto n = read_pod<std::uint64_t>(in);
  if (n > max_len) fail("implausible array length (corrupt header?)");
  std::vector<T> v(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) fail("truncated array");
  return v;
}

void check_magic(std::istream& in, const char (&magic)[8]) {
  char got[8];
  in.read(got, 8);
  if (!in || std::memcmp(got, magic, 8) != 0)
    fail("bad magic (not a greedcolor binary of the expected kind)");
}

}  // namespace

void write_binary(std::ostream& out, const BipartiteGraph& g) {
  out.write(kMagicBipartite, 8);
  write_pod(out, static_cast<std::int64_t>(g.num_vertices()));
  write_pod(out, static_cast<std::int64_t>(g.num_nets()));
  write_vec(out, g.vptr());
  write_vec(out, g.vadj());
  write_vec(out, g.nptr());
  write_vec(out, g.nadj());
  if (!out) fail("write failed");
}

void write_binary(std::ostream& out, const Graph& g) {
  out.write(kMagicGraph, 8);
  write_pod(out, static_cast<std::int64_t>(g.num_vertices()));
  write_vec(out, g.ptr());
  write_vec(out, g.adj());
  if (!out) fail("write failed");
}

BipartiteGraph read_binary_bipartite(std::istream& in) {
  check_magic(in, kMagicBipartite);
  const auto nv = read_pod<std::int64_t>(in);
  const auto nn = read_pod<std::int64_t>(in);
  if (nv < 0 || nn < 0 || nv > kMaxVertices || nn > kMaxVertices)
    fail("bad dimensions");
  constexpr std::uint64_t kMaxEdges = 1ULL << 40;
  auto vptr = read_vec<eid_t>(in, static_cast<std::uint64_t>(nv) + 1);
  auto vadj = read_vec<vid_t>(in, kMaxEdges);
  auto nptr = read_vec<eid_t>(in, static_cast<std::uint64_t>(nn) + 1);
  auto nadj = read_vec<vid_t>(in, kMaxEdges);
  BipartiteGraph g(static_cast<vid_t>(nv), static_cast<vid_t>(nn),
                   std::move(vptr), std::move(vadj), std::move(nptr),
                   std::move(nadj));
  if (!g.validate()) fail("structural validation failed");
  return g;
}

Graph read_binary_graph(std::istream& in) {
  check_magic(in, kMagicGraph);
  const auto nv = read_pod<std::int64_t>(in);
  if (nv < 0 || nv > kMaxVertices) fail("bad dimensions");
  constexpr std::uint64_t kMaxEdges = 1ULL << 40;
  auto ptr = read_vec<eid_t>(in, static_cast<std::uint64_t>(nv) + 1);
  auto adj = read_vec<vid_t>(in, kMaxEdges);
  Graph g(static_cast<vid_t>(nv), std::move(ptr), std::move(adj));
  if (!g.validate()) fail("structural validation failed");
  return g;
}

std::string binary_kind(std::istream& in) {
  char got[8];
  const auto pos = in.tellg();
  in.read(got, 8);
  in.clear();
  in.seekg(pos);
  if (in.gcount() != 8) return "";
  if (std::memcmp(got, kMagicBipartite, 8) == 0) return "bipartite";
  if (std::memcmp(got, kMagicGraph, 8) == 0) return "graph";
  return "";
}

void write_binary_file(const std::string& path, const BipartiteGraph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open " + path);
  write_binary(out, g);
}

void write_binary_file(const std::string& path, const Graph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open " + path);
  write_binary(out, g);
}

BipartiteGraph read_binary_bipartite_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  return read_binary_bipartite(in);
}

Graph read_binary_graph_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  return read_binary_graph(in);
}

}  // namespace gcol
