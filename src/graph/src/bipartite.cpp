#include "greedcolor/graph/bipartite.hpp"

#include <algorithm>
#include <stdexcept>

namespace gcol {

BipartiteGraph::BipartiteGraph(vid_t num_vertices, vid_t num_nets,
                               std::vector<eid_t> vptr,
                               std::vector<vid_t> vadj,
                               std::vector<eid_t> nptr,
                               std::vector<vid_t> nadj)
    : num_vertices_(num_vertices),
      num_nets_(num_nets),
      vptr_(std::move(vptr)),
      vadj_(std::move(vadj)),
      nptr_(std::move(nptr)),
      nadj_(std::move(nadj)) {
  if (vptr_.size() != static_cast<std::size_t>(num_vertices_) + 1 ||
      nptr_.size() != static_cast<std::size_t>(num_nets_) + 1)
    throw std::invalid_argument("BipartiteGraph: bad ptr array length");
  if (vptr_.back() != static_cast<eid_t>(vadj_.size()) ||
      nptr_.back() != static_cast<eid_t>(nadj_.size()) ||
      vadj_.size() != nadj_.size())
    throw std::invalid_argument("BipartiteGraph: halves disagree on |E|");
}

vid_t BipartiteGraph::max_net_degree() const {
  vid_t best = 0;
  for (vid_t v = 0; v < num_nets_; ++v) best = std::max(best, net_degree(v));
  return best;
}

vid_t BipartiteGraph::max_vertex_degree() const {
  vid_t best = 0;
  for (vid_t u = 0; u < num_vertices_; ++u)
    best = std::max(best, vertex_degree(u));
  return best;
}

bool BipartiteGraph::validate() const {
  for (vid_t u = 0; u < num_vertices_; ++u) {
    const auto ns = nets(u);
    for (std::size_t i = 0; i < ns.size(); ++i) {
      const vid_t v = ns[i];
      if (v < 0 || v >= num_nets_) return false;
      if (i > 0 && ns[i - 1] >= v) return false;
      const auto back = vtxs(v);
      if (!std::binary_search(back.begin(), back.end(), u)) return false;
    }
  }
  for (vid_t v = 0; v < num_nets_; ++v) {
    const auto vs = vtxs(v);
    for (std::size_t i = 0; i < vs.size(); ++i) {
      const vid_t u = vs[i];
      if (u < 0 || u >= num_vertices_) return false;
      if (i > 0 && vs[i - 1] >= u) return false;
      const auto fwd = nets(u);
      if (!std::binary_search(fwd.begin(), fwd.end(), v)) return false;
    }
  }
  return true;
}

}  // namespace gcol
