#include "greedcolor/graph/coo.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <tuple>

namespace gcol {

void Coo::sort_and_dedup() {
  const std::size_t n = rows.size();
  if (cols.size() != n || (has_values() && vals.size() != n))
    throw std::invalid_argument("Coo: inconsistent array lengths");

  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    return std::tie(rows[a], cols[a]) < std::tie(rows[b], cols[b]);
  });

  std::vector<vid_t> r2, c2;
  std::vector<double> v2;
  r2.reserve(n);
  c2.reserve(n);
  if (has_values()) v2.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = perm[k];
    if (!r2.empty() && r2.back() == rows[i] && c2.back() == cols[i]) continue;
    r2.push_back(rows[i]);
    c2.push_back(cols[i]);
    if (has_values()) v2.push_back(vals[i]);
  }
  rows = std::move(r2);
  cols = std::move(c2);
  vals = std::move(v2);
}

bool Coo::is_structurally_symmetric() const {
  if (num_rows != num_cols) return false;
  std::vector<std::pair<vid_t, vid_t>> entries;
  entries.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    entries.emplace_back(rows[i], cols[i]);
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  for (const auto& [r, c] : entries) {
    if (r == c) continue;
    if (!std::binary_search(entries.begin(), entries.end(),
                            std::make_pair(c, r)))
      return false;
  }
  return true;
}

void Coo::symmetrize() {
  if (num_rows != num_cols)
    throw std::invalid_argument("Coo::symmetrize: pattern must be square");
  const bool keep_vals = has_values();
  const std::size_t n = rows.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (rows[i] == cols[i]) continue;
    rows.push_back(cols[i]);
    cols.push_back(rows[i]);
    if (keep_vals) vals.push_back(vals[i]);
  }
  sort_and_dedup();
}

}  // namespace gcol
