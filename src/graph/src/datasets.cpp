#include "greedcolor/graph/datasets.hpp"

#include <stdexcept>

#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"

namespace gcol {

namespace {

std::vector<DatasetInfo> make_registry() {
  std::vector<DatasetInfo> reg;

  // 20M_movielens: rectangular, wildly skewed net degrees (max 67,310,
  // sigma 3,086 in the paper). Stand-in: power-law bipartite with a few
  // nets touching a large fraction of the columns. Not symmetric, BGPC
  // only.
  reg.push_back({"movielens_s", "20M_movielens", false, true, false, [] {
                   PowerLawBipartiteParams p;
                   p.rows = 4000;
                   p.cols = 24000;
                   p.min_deg = 8;
                   p.max_deg = 2500;
                   p.alpha = 0.9;
                   p.col_skew = 0.35;
                   p.seed = 0xA11CE;
                   return gen_powerlaw_bipartite(p);
                 }});

  // af_shell10: 2-D shell FEM, max row degree 35, sigma 1. Stand-in:
  // 2-D mesh with a radius-2 window (<=25 per row, uniform inside).
  reg.push_back({"afshell_s", "af_shell10", true, true, true, [] {
                   return gen_mesh2d(180, 180, 2);
                 }});

  // bone010: 3-D trabecular-bone FEM, max 63, sigma 7.6. Stand-in:
  // 3-D box stencil (27-point) — small near-uniform degrees with border
  // dispersion.
  reg.push_back({"bone_s", "bone010", true, true, true, [] {
                   return gen_mesh3d(34, 34, 34, 1, /*full_box=*/true);
                 }});

  // channel-500x100x100: 3-D channel flow, 7-point-like, max 18,
  // sigma 1. Stand-in: elongated 3-D cross stencil of radius 2
  // (<=13 per row).
  reg.push_back({"channel_s", "channel-500x100x100", true, true, true, [] {
                   return gen_mesh3d(120, 22, 22, 2, /*full_box=*/false);
                 }});

  // coPapersDBLP: co-authorship clique union, max 3,299, sigma 66.
  // Stand-in: union of Pareto-sized cliques (heavy tail up to ~600).
  reg.push_back({"copapers_s", "coPapersDBLP", true, true, true, [] {
                   return gen_clique_union(24000, 8000, 2, 250, 1.7,
                                           0xD8A9);
                 }});

  // HV15R: CFD, large near-constant row degrees (~hundreds), max 484,
  // sigma 54, unsymmetric. Stand-in: banded block rows of degree 120.
  reg.push_back({"hv15r_s", "HV15R", false, true, false, [] {
                   return gen_block_rows(8000, 80, 400, 0.25, 0x47F1);
                 }});

  // nlpkkt120: symmetric KKT system, max 28, sigma 3. Stand-in:
  // [[H Aᵀ];[A 0]] with a 3-D stencil H block.
  reg.push_back({"nlpkkt_s", "nlpkkt120", true, true, true, [] {
                   return gen_kkt(28, 28, 28, 11000, 8, 0x1B2C);
                 }});

  // uk-2002: web crawl, power-law, max net degree 2,450, sigma 28.
  // Stand-in: preferential attachment (hub degrees in the hundreds).
  // The paper uses it for BGPC only (unsymmetric in the original
  // crawl); our PA stand-in is symmetric but we keep the BGPC-only
  // designation to match Table II's last column.
  reg.push_back({"uk2002_s", "uk-2002", true, true, false, [] {
                   return gen_preferential_attachment(60000, 6, 0xF00D);
                 }});

  return reg;
}

}  // namespace

const std::vector<DatasetInfo>& dataset_registry() {
  static const std::vector<DatasetInfo> registry = make_registry();
  return registry;
}

const DatasetInfo& find_dataset(const std::string& name) {
  for (const auto& d : dataset_registry())
    if (d.name == name) return d;
  throw std::out_of_range("unknown dataset: " + name);
}

BipartiteGraph load_bipartite(const std::string& name) {
  return build_bipartite(find_dataset(name).make());
}

Graph load_graph(const std::string& name) {
  const auto& info = find_dataset(name);
  if (!info.structurally_symmetric)
    throw std::invalid_argument("dataset " + name +
                                " is not structurally symmetric");
  return build_graph(info.make());
}

std::vector<std::string> dataset_names(bool d2gc_only) {
  std::vector<std::string> names;
  for (const auto& d : dataset_registry())
    if (!d2gc_only || d.used_for_d2gc) names.push_back(d.name);
  return names;
}

}  // namespace gcol
