#include "greedcolor/graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

#include "greedcolor/analyze/contract.hpp"
#include "greedcolor/analyze/structure.hpp"

namespace gcol {

namespace {

/// Checked-build ingest gate: every graph leaving the builder must pass
/// the structural analyzer (the kernels assume its findings hold and
/// never re-check them on the hot path). Compiles away entirely in
/// release builds.
template <class G>
void contract_check_structure(const G& g) {
  if constexpr (contract::kContractsEnabled) {
    const GraphAnalysis analysis = analyze_graph(g, 1);
    GCOL_CONTRACT(analysis.ok(),
                  analysis.ok()
                      ? ""
                      : analysis.issues.front().to_string().c_str());
  } else {
    (void)g;
  }
}

/// Counting-sort style CSR construction for one direction of a COO
/// pattern. `keys` selects the CSR side, `values` the adjacency payload.
void build_csr_side(vid_t num_keys, const std::vector<vid_t>& keys,
                    const std::vector<vid_t>& values,
                    std::vector<eid_t>& ptr, std::vector<vid_t>& adj) {
  ptr.assign(static_cast<std::size_t>(num_keys) + 1, 0);
  for (const vid_t k : keys) ++ptr[static_cast<std::size_t>(k) + 1];
  for (std::size_t i = 1; i < ptr.size(); ++i) ptr[i] += ptr[i - 1];
  adj.resize(keys.size());
  std::vector<eid_t> cursor(ptr.begin(), ptr.end() - 1);
  for (std::size_t i = 0; i < keys.size(); ++i)
    adj[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(keys[i])]++)] = values[i];
  for (vid_t k = 0; k < num_keys; ++k)
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(ptr[static_cast<std::size_t>(k)]),
              adj.begin() + static_cast<std::ptrdiff_t>(ptr[static_cast<std::size_t>(k) + 1]));
}

void check_bounds(const Coo& coo) {
  for (std::size_t i = 0; i < coo.rows.size(); ++i) {
    if (coo.rows[i] < 0 || coo.rows[i] >= coo.num_rows ||
        coo.cols[i] < 0 || coo.cols[i] >= coo.num_cols)
      throw std::out_of_range("builder: COO entry outside matrix bounds");
  }
}

}  // namespace

BipartiteGraph build_bipartite(Coo coo) {
  check_bounds(coo);
  coo.sort_and_dedup();
  std::vector<eid_t> vptr, nptr;
  std::vector<vid_t> vadj, nadj;
  // Vertex side: cols -> rows (nets of each vertex).
  build_csr_side(coo.num_cols, coo.cols, coo.rows, vptr, vadj);
  // Net side: rows -> cols (vtxs of each net).
  build_csr_side(coo.num_rows, coo.rows, coo.cols, nptr, nadj);
  BipartiteGraph g(coo.num_cols, coo.num_rows, std::move(vptr),
                   std::move(vadj), std::move(nptr), std::move(nadj));
  contract_check_structure(g);
  return g;
}

Graph build_graph(Coo coo) {
  if (coo.num_rows != coo.num_cols)
    throw std::invalid_argument("build_graph: pattern must be square");
  check_bounds(coo);
  coo.vals.clear();
  coo.symmetrize();
  // Drop self loops.
  Coo clean;
  clean.num_rows = coo.num_rows;
  clean.num_cols = coo.num_cols;
  clean.reserve(coo.nnz());
  for (std::size_t i = 0; i < coo.rows.size(); ++i)
    if (coo.rows[i] != coo.cols[i]) clean.add(coo.rows[i], coo.cols[i]);
  std::vector<eid_t> ptr;
  std::vector<vid_t> adj;
  build_csr_side(clean.num_rows, clean.rows, clean.cols, ptr, adj);
  Graph g(clean.num_rows, std::move(ptr), std::move(adj));
  contract_check_structure(g);
  return g;
}

Graph bipartite_to_graph(const BipartiteGraph& bg) {
  if (bg.num_vertices() != bg.num_nets())
    throw std::invalid_argument(
        "bipartite_to_graph: instance must be square");
  Coo coo;
  coo.num_rows = bg.num_nets();
  coo.num_cols = bg.num_vertices();
  coo.reserve(bg.num_edges());
  for (vid_t v = 0; v < bg.num_nets(); ++v)
    for (const vid_t u : bg.vtxs(v)) coo.add(v, u);
  return build_graph(std::move(coo));
}

BipartiteGraph transpose(const BipartiteGraph& g) {
  return BipartiteGraph(g.num_nets(), g.num_vertices(), g.nptr(), g.nadj(),
                        g.vptr(), g.vadj());
}

BipartiteGraph graph_to_bipartite_closed(const Graph& g) {
  Coo coo;
  coo.num_rows = g.num_vertices();
  coo.num_cols = g.num_vertices();
  coo.reserve(g.num_adjacency_entries() + g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    coo.add(v, v);  // closed neighborhood: v belongs to its own net
    for (const vid_t u : g.neighbors(v)) coo.add(v, u);
  }
  return build_bipartite(std::move(coo));
}

}  // namespace gcol
