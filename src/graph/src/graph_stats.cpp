#include "greedcolor/graph/graph_stats.hpp"

#include <cmath>
#include <sstream>

namespace gcol {

namespace {

template <typename DegreeFn>
DegreeStats compute(vid_t n, DegreeFn deg) {
  DegreeStats s;
  if (n == 0) return s;
  double sum = 0.0, sumsq = 0.0;
  for (vid_t v = 0; v < n; ++v) {
    const double d = static_cast<double>(deg(v));
    s.max = std::max<vid_t>(s.max, deg(v));
    sum += d;
    sumsq += d * d;
  }
  s.mean = sum / n;
  const double var = std::max(0.0, sumsq / n - s.mean * s.mean);
  s.stddev = std::sqrt(var);
  return s;
}

std::string human(eid_t v) {
  std::ostringstream os;
  if (v >= 1000000)
    os << static_cast<double>(v) / 1e6 << "M";
  else if (v >= 1000)
    os << static_cast<double>(v) / 1e3 << "k";
  else
    os << v;
  return os.str();
}

}  // namespace

DegreeStats net_degree_stats(const BipartiteGraph& g) {
  return compute(g.num_nets(), [&](vid_t v) { return g.net_degree(v); });
}

DegreeStats vertex_degree_stats(const BipartiteGraph& g) {
  return compute(g.num_vertices(),
                 [&](vid_t u) { return g.vertex_degree(u); });
}

DegreeStats degree_stats(const Graph& g) {
  return compute(g.num_vertices(), [&](vid_t v) { return g.degree(v); });
}

std::string signature(const BipartiteGraph& g) {
  const DegreeStats nd = net_degree_stats(g);
  std::ostringstream os;
  os << g.num_nets() << "x" << g.num_vertices() << " nnz="
     << human(g.num_edges()) << " Lmax=" << nd.max << " sd=" << nd.stddev;
  return os.str();
}

std::string signature(const Graph& g) {
  const DegreeStats d = degree_stats(g);
  std::ostringstream os;
  os << g.num_vertices() << " vts adj=" << human(g.num_adjacency_entries())
     << " dmax=" << d.max << " sd=" << d.stddev;
  return os.str();
}

}  // namespace gcol
