#include "greedcolor/graph/sparse_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace gcol {

namespace {

struct CsArrays {
  std::vector<eid_t> ptr;
  std::vector<vid_t> idx;
  std::vector<double> val;
};

CsArrays build_side(vid_t num_keys, const std::vector<vid_t>& keys,
                    const std::vector<vid_t>& values,
                    const std::vector<double>& vals) {
  CsArrays out;
  out.ptr.assign(static_cast<std::size_t>(num_keys) + 1, 0);
  for (const vid_t k : keys) ++out.ptr[static_cast<std::size_t>(k) + 1];
  for (std::size_t i = 1; i < out.ptr.size(); ++i)
    out.ptr[i] += out.ptr[i - 1];
  out.idx.resize(keys.size());
  out.val.resize(keys.size());
  std::vector<eid_t> cursor(out.ptr.begin(), out.ptr.end() - 1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto slot = static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(keys[i])]++);
    out.idx[slot] = values[i];
    out.val[slot] = vals.empty() ? 1.0 : vals[i];
  }
  return out;
}

void check(const Coo& coo) {
  for (std::size_t i = 0; i < coo.rows.size(); ++i)
    if (coo.rows[i] < 0 || coo.rows[i] >= coo.num_rows || coo.cols[i] < 0 ||
        coo.cols[i] >= coo.num_cols)
      throw std::out_of_range("sparse_matrix: entry outside bounds");
}

}  // namespace

CsrMatrix CsrMatrix::from_coo(Coo coo) {
  check(coo);
  coo.sort_and_dedup();
  CsrMatrix m;
  m.rows_ = coo.num_rows;
  m.cols_ = coo.num_cols;
  auto side = build_side(coo.num_rows, coo.rows, coo.cols, coo.vals);
  m.ptr_ = std::move(side.ptr);
  m.idx_ = std::move(side.idx);
  m.val_ = std::move(side.val);
  return m;
}

void CsrMatrix::multiply(std::span<const double> x,
                         std::vector<double>& y) const {
  if (x.size() != static_cast<std::size_t>(cols_))
    throw std::invalid_argument("CsrMatrix::multiply: x size mismatch");
  y.assign(static_cast<std::size_t>(rows_), 0.0);
  for (vid_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (eid_t k = ptr_[static_cast<std::size_t>(r)];
         k < ptr_[static_cast<std::size_t>(r) + 1]; ++k)
      acc += val_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(idx_[static_cast<std::size_t>(k)])];
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void CsrMatrix::multiply_transpose(std::span<const double> x,
                                   std::vector<double>& y) const {
  if (x.size() != static_cast<std::size_t>(rows_))
    throw std::invalid_argument(
        "CsrMatrix::multiply_transpose: x size mismatch");
  y.assign(static_cast<std::size_t>(cols_), 0.0);
  for (vid_t r = 0; r < rows_; ++r) {
    const double xr = x[static_cast<std::size_t>(r)];
    for (eid_t k = ptr_[static_cast<std::size_t>(r)];
         k < ptr_[static_cast<std::size_t>(r) + 1]; ++k)
      y[static_cast<std::size_t>(idx_[static_cast<std::size_t>(k)])] +=
          val_[static_cast<std::size_t>(k)] * xr;
  }
}

Coo CsrMatrix::to_coo() const {
  Coo coo;
  coo.num_rows = rows_;
  coo.num_cols = cols_;
  coo.reserve(nnz());
  for (vid_t r = 0; r < rows_; ++r)
    for (eid_t k = ptr_[static_cast<std::size_t>(r)];
         k < ptr_[static_cast<std::size_t>(r) + 1]; ++k)
      coo.add(r, idx_[static_cast<std::size_t>(k)],
              val_[static_cast<std::size_t>(k)]);
  return coo;
}

CscMatrix CscMatrix::from_coo(Coo coo) {
  check(coo);
  coo.sort_and_dedup();
  CscMatrix m;
  m.rows_ = coo.num_rows;
  m.cols_ = coo.num_cols;
  auto side = build_side(coo.num_cols, coo.cols, coo.rows, coo.vals);
  m.ptr_ = std::move(side.ptr);
  m.idx_ = std::move(side.idx);
  m.val_ = std::move(side.val);
  return m;
}

double CscMatrix::column_sqnorm(vid_t c) const {
  double s = 0.0;
  for (const double v : col_values(c)) s += v * v;
  return s;
}

void CscMatrix::multiply(std::span<const double> x,
                         std::vector<double>& y) const {
  if (x.size() != static_cast<std::size_t>(cols_))
    throw std::invalid_argument("CscMatrix::multiply: x size mismatch");
  y.assign(static_cast<std::size_t>(rows_), 0.0);
  for (vid_t c = 0; c < cols_; ++c) {
    const double xc = x[static_cast<std::size_t>(c)];
    if (xc == 0.0) continue;
    for (eid_t k = ptr_[static_cast<std::size_t>(c)];
         k < ptr_[static_cast<std::size_t>(c) + 1]; ++k)
      y[static_cast<std::size_t>(idx_[static_cast<std::size_t>(k)])] +=
          val_[static_cast<std::size_t>(k)] * xc;
  }
}

std::vector<double> compress_columns(const CsrMatrix& a,
                                     const std::vector<color_t>& colors,
                                     color_t p) {
  if (colors.size() != static_cast<std::size_t>(a.num_cols()))
    throw std::invalid_argument("compress_columns: colors size mismatch");
  std::vector<double> b(
      static_cast<std::size_t>(a.num_rows()) * static_cast<std::size_t>(p),
      0.0);
  for (vid_t r = 0; r < a.num_rows(); ++r) {
    const auto idx = a.row_indices(r);
    const auto val = a.row_values(r);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      const color_t c = colors[static_cast<std::size_t>(idx[k])];
      if (c < 0 || c >= p)
        throw std::out_of_range("compress_columns: color out of range");
      b[static_cast<std::size_t>(r) * static_cast<std::size_t>(p) +
        static_cast<std::size_t>(c)] += val[k];
    }
  }
  return b;
}

double recovery_error(const CsrMatrix& a, const std::vector<color_t>& colors,
                      color_t p, std::span<const double> compressed) {
  double max_err = 0.0;
  for (vid_t r = 0; r < a.num_rows(); ++r) {
    const auto idx = a.row_indices(r);
    const auto val = a.row_values(r);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      const auto c = static_cast<std::size_t>(
          colors[static_cast<std::size_t>(idx[k])]);
      const double got =
          compressed[static_cast<std::size_t>(r) *
                         static_cast<std::size_t>(p) +
                     c];
      max_err = std::max(max_err, std::abs(got - val[k]));
    }
  }
  return max_err;
}

}  // namespace gcol
