// Numeric sparse-matrix support for the application layer.
//
// The coloring engines are purely structural; the examples (Jacobian
// compression, coordinate descent) and the application tests need the
// values too. This module provides compressed-sparse-row and -column
// views with the handful of kernels those applications use.
#pragma once

#include <span>
#include <vector>

#include "greedcolor/graph/coo.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

/// Compressed sparse rows with values.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from a COO with values (pattern-only input gets value 1.0
  /// per entry). Duplicates are collapsed (first value wins, matching
  /// Coo::sort_and_dedup).
  static CsrMatrix from_coo(Coo coo);

  [[nodiscard]] vid_t num_rows() const { return rows_; }
  [[nodiscard]] vid_t num_cols() const { return cols_; }
  [[nodiscard]] eid_t nnz() const {
    return ptr_.empty() ? 0 : ptr_.back();
  }

  [[nodiscard]] std::span<const vid_t> row_indices(vid_t r) const {
    return {idx_.data() + ptr_[static_cast<std::size_t>(r)],
            idx_.data() + ptr_[static_cast<std::size_t>(r) + 1]};
  }
  [[nodiscard]] std::span<const double> row_values(vid_t r) const {
    return {val_.data() + ptr_[static_cast<std::size_t>(r)],
            val_.data() + ptr_[static_cast<std::size_t>(r) + 1]};
  }

  /// y = A x (y resized to num_rows).
  void multiply(std::span<const double> x, std::vector<double>& y) const;

  /// y = Aᵀ x (y resized to num_cols).
  void multiply_transpose(std::span<const double> x,
                          std::vector<double>& y) const;

  /// Back to coordinate form (sorted by row, col).
  [[nodiscard]] Coo to_coo() const;

 private:
  vid_t rows_ = 0;
  vid_t cols_ = 0;
  std::vector<eid_t> ptr_;
  std::vector<vid_t> idx_;
  std::vector<double> val_;
};

/// Compressed sparse columns with values — the layout coordinate
/// descent and seed-matrix compression walk.
class CscMatrix {
 public:
  CscMatrix() = default;

  static CscMatrix from_coo(Coo coo);

  [[nodiscard]] vid_t num_rows() const { return rows_; }
  [[nodiscard]] vid_t num_cols() const { return cols_; }
  [[nodiscard]] eid_t nnz() const {
    return ptr_.empty() ? 0 : ptr_.back();
  }

  [[nodiscard]] std::span<const vid_t> col_indices(vid_t c) const {
    return {idx_.data() + ptr_[static_cast<std::size_t>(c)],
            idx_.data() + ptr_[static_cast<std::size_t>(c) + 1]};
  }
  [[nodiscard]] std::span<const double> col_values(vid_t c) const {
    return {val_.data() + ptr_[static_cast<std::size_t>(c)],
            val_.data() + ptr_[static_cast<std::size_t>(c) + 1]};
  }

  [[nodiscard]] double column_sqnorm(vid_t c) const;

  /// y = A x (y resized to num_rows).
  void multiply(std::span<const double> x, std::vector<double>& y) const;

 private:
  vid_t rows_ = 0;
  vid_t cols_ = 0;
  std::vector<eid_t> ptr_;
  std::vector<vid_t> idx_;
  std::vector<double> val_;
};

/// B = A * S where S is the 0/1 seed matrix induced by a column
/// coloring (S(j,c) = 1 iff colors[j] == c): the compressed Jacobian of
/// Curtis-Powell-Reid / Coleman-Moré. B is dense num_rows x p,
/// row-major.
[[nodiscard]] std::vector<double> compress_columns(
    const CsrMatrix& a, const std::vector<color_t>& colors, color_t p);

/// Recover all structural nonzeros of A from the compressed product;
/// returns the maximum absolute recovery error (0 for a valid BGPC
/// coloring — structural orthogonality makes each entry the only
/// contributor to its (row, color) cell).
[[nodiscard]] double recovery_error(const CsrMatrix& a,
                                    const std::vector<color_t>& colors,
                                    color_t p,
                                    std::span<const double> compressed);

}  // namespace gcol
