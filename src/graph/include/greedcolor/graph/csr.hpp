// Unipartite CSR graph: the input structure for distance-2 coloring.
#pragma once

#include <span>
#include <vector>

#include "greedcolor/util/types.hpp"

namespace gcol {

/// An undirected simple graph in compressed-sparse-row form. Adjacency
/// lists contain each undirected edge twice (u in adj(v) iff v in
/// adj(u)), are sorted, and hold no self-loops.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of validated CSR arrays. `ptr` has n+1 entries.
  Graph(vid_t n, std::vector<eid_t> ptr, std::vector<vid_t> adj);

  [[nodiscard]] vid_t num_vertices() const { return n_; }

  /// Directed adjacency entries (= 2x undirected edge count).
  [[nodiscard]] eid_t num_adjacency_entries() const {
    return ptr_.empty() ? 0 : ptr_.back();
  }

  [[nodiscard]] vid_t degree(vid_t v) const {
    return static_cast<vid_t>(ptr_[static_cast<std::size_t>(v) + 1] -
                              ptr_[static_cast<std::size_t>(v)]);
  }

  [[nodiscard]] std::span<const vid_t> neighbors(vid_t v) const {
    return {adj_.data() + ptr_[static_cast<std::size_t>(v)],
            adj_.data() + ptr_[static_cast<std::size_t>(v) + 1]};
  }

  [[nodiscard]] vid_t max_degree() const;

  [[nodiscard]] const std::vector<eid_t>& ptr() const { return ptr_; }
  [[nodiscard]] const std::vector<vid_t>& adj() const { return adj_; }

  /// Structural sanity check used by tests and the MatrixMarket loader:
  /// sorted adjacency, no self loops, symmetric, in-range ids.
  [[nodiscard]] bool validate() const;

 private:
  vid_t n_ = 0;
  std::vector<eid_t> ptr_;
  std::vector<vid_t> adj_;
};

}  // namespace gcol
