// MatrixMarket coordinate-format I/O.
//
// The paper's test-bed is eight matrices from the UFL (SuiteSparse)
// collection distributed as `.mtx` files; this reader lets the tools
// and harnesses consume real collection files when available, while the
// synthetic registry (datasets.hpp) provides offline stand-ins.
#pragma once

#include <iosfwd>
#include <string>

#include "greedcolor/graph/coo.hpp"

namespace gcol {

/// Parse a MatrixMarket `coordinate` body (header + entries) into COO.
/// Supports field types real/integer/pattern/complex (complex keeps the
/// real part) and symmetry general/symmetric/skew-symmetric (symmetric
/// variants are expanded). Throws std::runtime_error on malformed input.
[[nodiscard]] Coo read_matrix_market(std::istream& in);

/// File wrapper around read_matrix_market(std::istream&).
[[nodiscard]] Coo read_matrix_market_file(const std::string& path);

/// Write a COO pattern (or real matrix when values are present) in
/// MatrixMarket general coordinate format with 1-based indices.
void write_matrix_market(std::ostream& out, const Coo& coo);

void write_matrix_market_file(const std::string& path, const Coo& coo);

}  // namespace gcol
