// Bipartite CSR graph: the input structure for BGPC.
//
// Following the paper's hypergraph terminology, the V_A side holds the
// *vertices* to color (matrix columns) and the V_B side the *nets*
// (matrix rows). Both directions of the incidence are stored in CSR so
// vertex-based kernels can walk nets(u) and net-based kernels vtxs(v)
// without transposition at run time.
#pragma once

#include <span>
#include <vector>

#include "greedcolor/util/types.hpp"

namespace gcol {

class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Takes ownership of the two CSR halves. `vptr` has num_vertices+1
  /// entries indexing `vadj` (net ids); `nptr` has num_nets+1 entries
  /// indexing `nadj` (vertex ids). Both halves must describe the same
  /// incidence relation.
  BipartiteGraph(vid_t num_vertices, vid_t num_nets,
                 std::vector<eid_t> vptr, std::vector<vid_t> vadj,
                 std::vector<eid_t> nptr, std::vector<vid_t> nadj);

  /// |V_A| — the colored side (matrix columns).
  [[nodiscard]] vid_t num_vertices() const { return num_vertices_; }
  /// |V_B| — the nets (matrix rows).
  [[nodiscard]] vid_t num_nets() const { return num_nets_; }
  [[nodiscard]] eid_t num_edges() const {
    return vptr_.empty() ? 0 : vptr_.back();
  }

  /// nets(u): nets incident to vertex u.
  [[nodiscard]] std::span<const vid_t> nets(vid_t u) const {
    return {vadj_.data() + vptr_[static_cast<std::size_t>(u)],
            vadj_.data() + vptr_[static_cast<std::size_t>(u) + 1]};
  }

  /// vtxs(v): vertices incident to net v.
  [[nodiscard]] std::span<const vid_t> vtxs(vid_t v) const {
    return {nadj_.data() + nptr_[static_cast<std::size_t>(v)],
            nadj_.data() + nptr_[static_cast<std::size_t>(v) + 1]};
  }

  [[nodiscard]] vid_t vertex_degree(vid_t u) const {
    return static_cast<vid_t>(vptr_[static_cast<std::size_t>(u) + 1] -
                              vptr_[static_cast<std::size_t>(u)]);
  }

  [[nodiscard]] vid_t net_degree(vid_t v) const {
    return static_cast<vid_t>(nptr_[static_cast<std::size_t>(v) + 1] -
                              nptr_[static_cast<std::size_t>(v)]);
  }

  /// max_v |vtxs(v)|: the paper's trivial lower bound L on BGPC colors.
  [[nodiscard]] vid_t max_net_degree() const;

  [[nodiscard]] vid_t max_vertex_degree() const;

  /// Consistency check between the two CSR halves (tests, loaders).
  [[nodiscard]] bool validate() const;

  [[nodiscard]] const std::vector<eid_t>& vptr() const { return vptr_; }
  [[nodiscard]] const std::vector<vid_t>& vadj() const { return vadj_; }
  [[nodiscard]] const std::vector<eid_t>& nptr() const { return nptr_; }
  [[nodiscard]] const std::vector<vid_t>& nadj() const { return nadj_; }

 private:
  vid_t num_vertices_ = 0;
  vid_t num_nets_ = 0;
  std::vector<eid_t> vptr_;
  std::vector<vid_t> vadj_;
  std::vector<eid_t> nptr_;
  std::vector<vid_t> nadj_;
};

}  // namespace gcol
