// Binary graph cache.
//
// Parsing a multi-hundred-megabyte MatrixMarket file (uk-2002 is a
// 4.6 GB .mtx) dominates end-to-end time for one-shot colorings; a
// binary CSR dump loads orders of magnitude faster. Format: magic +
// version + dimensions, then the raw CSR arrays, little-endian,
// validated on load.
#pragma once

#include <iosfwd>
#include <string>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"

namespace gcol {

void write_binary(std::ostream& out, const BipartiteGraph& g);
void write_binary(std::ostream& out, const Graph& g);
void write_binary_file(const std::string& path, const BipartiteGraph& g);
void write_binary_file(const std::string& path, const Graph& g);

/// Throws std::runtime_error on bad magic/version/corruption.
[[nodiscard]] BipartiteGraph read_binary_bipartite(std::istream& in);
[[nodiscard]] Graph read_binary_graph(std::istream& in);
[[nodiscard]] BipartiteGraph read_binary_bipartite_file(
    const std::string& path);
[[nodiscard]] Graph read_binary_graph_file(const std::string& path);

/// Peek at the stream kind without consuming it ("bipartite", "graph",
/// or "" when the magic does not match).
[[nodiscard]] std::string binary_kind(std::istream& in);

}  // namespace gcol
