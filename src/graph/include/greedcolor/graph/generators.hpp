// Deterministic synthetic sparse-pattern generators.
//
// The paper's evaluation uses eight SuiteSparse/MovieLens matrices that
// are unavailable in this offline environment. These generators produce
// patterns with the same *structural signatures* — net-degree maximum,
// net-degree dispersion, aspect ratio, symmetry — which are the
// quantities the BGPC/D2GC kernels are sensitive to (the first-iteration
// work of the vertex-based kernel is Θ(Σ_v |vtxs(v)|²), the net-based
// one Θ(|V|+|E|), and conflict rates follow the overlap structure).
// Every generator is fully determined by its arguments and seed.
#pragma once

#include <cstdint>

#include "greedcolor/graph/coo.hpp"

namespace gcol {

/// 2-D structured mesh matrix: node (i,j) is adjacent to every node in
/// the (2r+1)×(2r+1) window around it (clipped at borders), diagonal
/// included. Symmetric, tiny and near-uniform row degrees — the
/// af_shell10 / channel signature. radius >= 1.
[[nodiscard]] Coo gen_mesh2d(vid_t nx, vid_t ny, int radius);

/// 3-D structured mesh matrix over an nx×ny×nz grid; radius=1 gives the
/// 7-point stencil, radius>=1 with `full_box=true` the (2r+1)³ box
/// stencil. Symmetric — bone010 / channel-flow signature.
[[nodiscard]] Coo gen_mesh3d(vid_t nx, vid_t ny, vid_t nz, int radius,
                             bool full_box = false);

/// Rectangular bipartite pattern with Pareto (power-law) net degrees:
/// each of `rows` nets draws a degree from a truncated Pareto with
/// minimum `min_deg`, exponent `alpha` (smaller = heavier tail), and cap
/// `max_deg`, then picks that many distinct columns; column popularity
/// itself is mildly skewed. The 20M_movielens signature: few nets with
/// tens of thousands of vertices.
struct PowerLawBipartiteParams {
  vid_t rows = 0;
  vid_t cols = 0;
  vid_t min_deg = 2;
  vid_t max_deg = 0;  // 0 = no cap beyond `cols`
  double alpha = 2.0;
  double col_skew = 0.0;  // 0 = uniform columns; >0 Zipf-ish popularity
  std::uint64_t seed = 1;
};
[[nodiscard]] Coo gen_powerlaw_bipartite(const PowerLawBipartiteParams& p);

/// Union of cliques over n vertices: `num_cliques` cliques with Pareto
/// sizes are unioned into a symmetric adjacency matrix (diagonal
/// included). Co-authorship signature (coPapersDBLP): moderate average
/// degree with a heavy clique-driven tail.
[[nodiscard]] Coo gen_clique_union(vid_t n, vid_t num_cliques,
                                   vid_t min_clique, vid_t max_clique,
                                   double alpha, std::uint64_t seed);

/// Preferential-attachment (Barabási–Albert style) symmetric adjacency
/// with `edges_per_vertex` links per arriving vertex; web-graph
/// signature (uk-2002): power-law degrees, large hubs.
[[nodiscard]] Coo gen_preferential_attachment(vid_t n,
                                              vid_t edges_per_vertex,
                                              std::uint64_t seed);

/// KKT-structured symmetric matrix [[H Aᵀ];[A 0]] where H is an
/// nh-node 3-D stencil Hessian block and A is an na×nh Jacobian block
/// with `a_row_deg` entries per row. nlpkkt signature.
[[nodiscard]] Coo gen_kkt(vid_t nh_x, vid_t nh_y, vid_t nh_z, vid_t na,
                          vid_t a_row_deg, std::uint64_t seed);

/// Square unsymmetric pattern with near-constant large row degrees laid
/// out in bands (each row: a contiguous block around the diagonal plus
/// random fill). CFD signature (HV15R): hundreds of nonzeros per row,
/// low relative dispersion, unsymmetric.
[[nodiscard]] Coo gen_block_rows(vid_t n, vid_t row_deg, vid_t bandwidth,
                                 double offband_frac, std::uint64_t seed);

/// Uniform random bipartite pattern with `nnz` distinct entries.
[[nodiscard]] Coo gen_random_bipartite(vid_t rows, vid_t cols, eid_t nnz,
                                       std::uint64_t seed);

/// Random geometric graph on the unit square: vertices within `radius`
/// are adjacent. Symmetric adjacency with diagonal; used by the
/// distance-2 scheduling example (wireless-interference model).
[[nodiscard]] Coo gen_random_geometric(vid_t n, double radius,
                                       std::uint64_t seed);

}  // namespace gcol
