// Structural statistics used by Table II and the harness banners.
#pragma once

#include <string>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"

namespace gcol {

struct DegreeStats {
  vid_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Net-degree (row nonzero count) statistics: Table II's "Column deg."
/// columns — `max` is the trivial BGPC color lower bound L.
[[nodiscard]] DegreeStats net_degree_stats(const BipartiteGraph& g);

[[nodiscard]] DegreeStats vertex_degree_stats(const BipartiteGraph& g);

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// One-line signature, e.g. "4000x24000 nnz=391k Lmax=5804 sd=712.4".
[[nodiscard]] std::string signature(const BipartiteGraph& g);
[[nodiscard]] std::string signature(const Graph& g);

}  // namespace gcol
