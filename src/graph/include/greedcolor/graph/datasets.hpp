// The offline stand-in for the paper's eight-matrix test-bed (Table II).
//
// Each registry entry is a deterministic synthetic matrix whose
// structural signature mimics one UFL/MovieLens matrix, scaled down so
// the full benchmark suite completes in seconds on a laptop-class
// machine. DESIGN.md §5 documents the substitution rationale.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/coo.hpp"
#include "greedcolor/graph/csr.hpp"

namespace gcol {

struct DatasetInfo {
  std::string name;    ///< registry key, e.g. "copapers_s"
  std::string mimics;  ///< the Table II matrix this stands in for
  bool structurally_symmetric = false;
  bool used_for_bgpc = true;
  bool used_for_d2gc = false;  ///< Table II last column (5 of 8 matrices)
  std::function<Coo()> make;
};

/// The eight Table II stand-ins, in the paper's row order.
[[nodiscard]] const std::vector<DatasetInfo>& dataset_registry();

/// Look up a registry entry by name; throws std::out_of_range if absent.
[[nodiscard]] const DatasetInfo& find_dataset(const std::string& name);

/// Convenience: generate and convert in one call.
[[nodiscard]] BipartiteGraph load_bipartite(const std::string& name);
[[nodiscard]] Graph load_graph(const std::string& name);

/// Names of all datasets (optionally restricted to the D2GC subset).
[[nodiscard]] std::vector<std::string> dataset_names(bool d2gc_only = false);

}  // namespace gcol
