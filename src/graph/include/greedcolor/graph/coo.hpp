// Coordinate-format sparse pattern: the interchange format between the
// MatrixMarket reader, the synthetic generators, and the CSR builders.
#pragma once

#include <vector>

#include "greedcolor/util/types.hpp"

namespace gcol {

/// A sparse matrix pattern in coordinate (triplet) form. Rows play the
/// role of nets (V_B) and columns the role of vertices to color (V_A)
/// in the BGPC view. Values are optional and only carried for the
/// numerical examples (Jacobian compression); structural algorithms
/// ignore them.
struct Coo {
  vid_t num_rows = 0;
  vid_t num_cols = 0;
  std::vector<vid_t> rows;
  std::vector<vid_t> cols;
  std::vector<double> vals;  // empty for pattern-only matrices

  [[nodiscard]] eid_t nnz() const { return static_cast<eid_t>(rows.size()); }
  [[nodiscard]] bool has_values() const { return !vals.empty(); }

  void reserve(eid_t n) {
    rows.reserve(static_cast<std::size_t>(n));
    cols.reserve(static_cast<std::size_t>(n));
  }

  void add(vid_t r, vid_t c) {
    rows.push_back(r);
    cols.push_back(c);
  }

  void add(vid_t r, vid_t c, double v) {
    rows.push_back(r);
    cols.push_back(c);
    vals.push_back(v);
  }

  /// Sort entries by (row, col) and drop duplicate coordinates (keeping
  /// the first value). Generators may emit duplicates; CSR construction
  /// requires none.
  void sort_and_dedup();

  /// True when every entry (r,c) has a counterpart (c,r). Requires a
  /// square pattern; used to select D2GC-eligible datasets (the paper
  /// runs D2GC only on structurally symmetric matrices).
  [[nodiscard]] bool is_structurally_symmetric() const;

  /// Make the pattern structurally symmetric by adding missing
  /// transposed entries (square patterns only).
  void symmetrize();
};

}  // namespace gcol
