// Builders converting COO patterns into the CSR containers.
#pragma once

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/coo.hpp"
#include "greedcolor/graph/csr.hpp"

namespace gcol {

/// Build a bipartite graph from a (deduplicated or not) matrix pattern:
/// rows become nets, columns become the vertices to color. Duplicate
/// entries are removed; the input is consumed.
[[nodiscard]] BipartiteGraph build_bipartite(Coo coo);

/// Build an undirected simple graph from a square pattern: entry (r,c)
/// becomes edge {r,c}; the pattern is symmetrized and self-loops
/// (diagonal entries) are dropped. The input is consumed.
[[nodiscard]] Graph build_graph(Coo coo);

/// View a structurally symmetric square bipartite instance as the
/// unipartite graph D2GC runs on: the matrix adjacency minus diagonal.
[[nodiscard]] Graph bipartite_to_graph(const BipartiteGraph& bg);

/// Interpret an undirected graph as a BGPC instance whose nets are the
/// closed neighborhoods N[v]; BGPC on it equals D2GC on the graph.
/// Used by tests to cross-validate the two engines.
[[nodiscard]] BipartiteGraph graph_to_bipartite_closed(const Graph& g);

/// Swap the two sides: vertices become nets and vice versa. Coloring
/// the transpose colors the matrix ROWS instead of the columns —
/// ColPack's row-partial-coloring mode (used for Jacobians evaluated
/// with reverse-mode/adjoint products).
[[nodiscard]] BipartiteGraph transpose(const BipartiteGraph& g);

}  // namespace gcol
