// Replayable schedule traces for gcol-mc.
//
// A trace is the complete decision sequence of one checked execution:
// the tid chosen at every juncture where >= 2 virtual threads were
// runnable. Together with the fixture, options and seed (recorded
// free-form in `label`), it pins the interleaving bit-for-bit — feeding
// it back through the replay strategy reproduces the same terminal
// state and therefore the same violation.
//
// Text format (one directive per line, '#' comments ignored):
//
//   gcol-mc-trace v1
//   label=bgpc V-V threads=2 seed=7
//   choices=0,1,1,0,2
//
// `choices` may be empty (a schedule with no real decision points).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gcol::check {

struct McTrace {
  std::uint32_t version = 1;
  std::string label;                  ///< provenance, never interpreted
  std::vector<std::uint8_t> choices;  ///< chosen tid per decision point

  [[nodiscard]] bool empty() const { return choices.empty(); }
  bool operator==(const McTrace& o) const {
    return version == o.version && choices == o.choices;
  }
};

[[nodiscard]] std::string encode_trace(const McTrace& trace);

/// Parse the text format; throws Error(kBadInput) on malformed input or
/// an unsupported version.
[[nodiscard]] McTrace decode_trace(const std::string& text);

/// File wrappers; throw Error(kIoError) on open/write failure.
[[nodiscard]] McTrace read_trace_file(const std::string& path);
void write_trace_file(const McTrace& trace, const std::string& path);

}  // namespace gcol::check
