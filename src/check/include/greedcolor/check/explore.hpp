// Schedule-space exploration drivers for gcol-mc.
//
// explore() repeatedly runs one checked coloring under an McContext,
// letting a Strategy pick the interleaving each time:
//
//   kExhaustive — DFS over every decision point, optional state-hash
//                 pruning; complete on tiny fixtures.
//   kDpor       — the same DFS with a sleep-set reduction over
//                 same-vertex access dependencies (DPOR-lite): schedules
//                 that only permute independent accesses are explored
//                 once. The default.
//   kRandom     — seeded random schedules, a fixed budget; for fixtures
//                 too big to exhaust.
//   kReplay     — one execution driven by a recorded McTrace.
//
// On the first violating execution the explorer minimizes the witness
// (shortest decision prefix that still reproduces the same violation)
// and returns it as a replayable trace.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "greedcolor/check/mc.hpp"
#include "greedcolor/check/trace.hpp"
#include "greedcolor/core/options.hpp"
#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol::check {

enum class ExploreMode : std::uint8_t { kExhaustive, kDpor, kRandom, kReplay };

[[nodiscard]] const char* to_string(ExploreMode mode);
/// Parse "exhaustive" / "dpor" / "random" / "replay"; throws
/// Error(kInvalidArgument) otherwise.
[[nodiscard]] ExploreMode explore_mode_from_string(const std::string& name);

struct McOptions {
  ExploreMode mode = ExploreMode::kDpor;
  /// Virtual threads = the kernel's OpenMP team size (clamped to >= 2;
  /// one thread has exactly one schedule).
  int virtual_threads = 2;
  std::uint64_t seed = 1;                  ///< kRandom
  std::uint64_t random_schedules = 256;    ///< kRandom budget
  std::uint64_t max_schedules = 1u << 20;  ///< DFS safety valve
  double time_budget_seconds = 0.0;        ///< 0 = uncapped
  /// kExhaustive only: prune decision subtrees whose pre-decision state
  /// (colors + thread positions) hashes equal to one already explored.
  /// Hash collisions could in principle hide a schedule, so this is a
  /// pruning heuristic, not part of the completeness argument; disable
  /// for a ground-truth run.
  bool hash_prune = true;
  bool stop_on_violation = true;
  bool minimize = true;  ///< shrink the witness trace before returning
  /// Rounds after which the speculative loop counts as livelocked; also
  /// clamps ColoringOptions::max_rounds so diverging schedules fail
  /// fast instead of spinning to the engine's own cap.
  int convergence_round_limit = 32;
  McTrace replay;  ///< kReplay input
};

struct McResult {
  std::uint64_t schedules_explored = 0;
  std::uint64_t decisions_total = 0;
  std::uint64_t sleep_pruned = 0;  ///< branches skipped by sleep sets
  std::uint64_t hash_pruned = 0;   ///< subtrees skipped by state hashing
  /// True when the DFS exhausted the (reduced) schedule space; always
  /// false for kRandom (sampling) — budget runs end budget_exhausted.
  bool complete = false;
  bool budget_exhausted = false;
  int max_team = 0;  ///< largest kernel team actually observed
  std::vector<McViolation> violations;  ///< from the witness execution
  McTrace witness;                      ///< replayable violating schedule

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Exploration core. `run_one` must perform one complete coloring that
/// (a) attaches `ctx` as ColoringOptions::checker and (b) is a
/// deterministic function of the schedule decisions. Throws
/// Error(kInvalidArgument) when the build lacks GCOL_MC.
[[nodiscard]] McResult explore(
    McContext& ctx, const McOptions& opts,
    const std::function<void(McContext&)>& run_one);

/// Model-check one BGPC / D2GC configuration on a (small) fixture.
/// `base` is copied; its num_threads is overridden by virtual_threads,
/// its max_rounds clamped by convergence_round_limit, and a
/// sequential-fallback result is reported as a kLivelock violation.
[[nodiscard]] McResult model_check_bgpc(const BipartiteGraph& g,
                                        const ColoringOptions& base,
                                        const std::vector<vid_t>& order,
                                        const McOptions& opts);
[[nodiscard]] McResult model_check_d2gc(const Graph& g,
                                        const ColoringOptions& base,
                                        const std::vector<vid_t>& order,
                                        const McOptions& opts);

}  // namespace gcol::check
