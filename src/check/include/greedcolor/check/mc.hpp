// gcol-mc: deterministic schedule exploration for the speculative
// coloring kernels.
//
// The paper's engines (Algs. 4-8) race on the shared color array by
// design and trust conflict removal to catch every clash. The auditor
// (greedcolor/analyze/audit.hpp) checks that property on whatever
// interleavings the OS scheduler happens to produce; ThreadSanitizer
// cannot check it at all (every access is a relaxed atomic). gcol-mc
// closes the remaining gap: it runs the *real* kernel bodies under a
// controlled cooperative scheduler and explores interleavings
// systematically, so "conflict removal catches every clash" becomes a
// property checked over the whole schedule space of a small fixture,
// not over one lucky run.
//
// Mechanism: in GCOL_MC builds every color accessor in
// src/core/src/kernels_common.hpp calls GCOL_MC_YIELD() before the
// access, and every kernel parallel region registers its threads with
// GCOL_MC_REGION(). While a checker is armed, exactly one kernel
// thread runs at a time; at each yield the armed Strategy decides who
// runs next. Execution is then a deterministic function of the
// decision sequence — libgomp's dynamic loop dispatch, the shared work
// queue's push order, and every speculative read/write all derive from
// it — which is what makes exhaustive DFS, DPOR-lite sleep sets, and
// bit-for-bit schedule replay possible. Without GCOL_MC both macros
// compile to nothing and the hot path is byte-identical to a release
// build.
//
// One checked coloring at a time: the kernels reach the context
// through a process-global registry (armed by McContext::arm, cleared
// by disarm), exactly like the auditor's AuditScope. This is
// checked-build tooling, not a hot-path feature.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol::check {

#if defined(GCOL_MC)
inline constexpr bool kMcEnabled = true;
#else
inline constexpr bool kMcEnabled = false;
#endif

/// What a virtual thread is about to do at a schedule point. kStart is
/// the pseudo-access of a freshly registered thread (its first real
/// access is not known yet).
enum class AccessKind : std::uint8_t { kStart, kLoad, kStore, kExchange };

[[nodiscard]] const char* to_string(AccessKind kind);

struct PendingAccess {
  vid_t v = kInvalidVertex;
  AccessKind kind = AccessKind::kStart;
};

/// Dependency relation for the DPOR-lite reduction: two pending
/// accesses conflict iff they touch the same vertex and at least one
/// writes. kStart conflicts with nothing.
[[nodiscard]] inline bool accesses_conflict(const PendingAccess& a,
                                            const PendingAccess& b) {
  if (a.kind == AccessKind::kStart || b.kind == AccessKind::kStart)
    return false;
  if (a.v != b.v) return false;
  return a.kind != AccessKind::kLoad || b.kind != AccessKind::kLoad;
}

enum class McViolationKind : std::uint8_t {
  kEscapedConflict,  ///< two colored distance-2 neighbors share a color
                     ///< after conflict removal (the audit invariant)
  kQueueLoss,        ///< an uncolored vertex was not re-queued
  kColorBound,       ///< a color at/above the driver's marker capacity
  kLivelock,         ///< speculative loop failed to converge in bound
  kNondeterminism,   ///< replayed decision not enabled (broken replay)
  kEngineError,      ///< the engine threw during a checked execution
};

[[nodiscard]] const char* to_string(McViolationKind kind);

struct McViolation {
  McViolationKind kind = McViolationKind::kEscapedConflict;
  int round = 0;
  vid_t a = kInvalidVertex;
  vid_t b = kInvalidVertex;
  vid_t via = kInvalidVertex;
  color_t color = kNoColor;
  std::string detail;

  [[nodiscard]] std::string to_string() const;
  /// Replay equivalence: same kind/round/color and the same unordered
  /// vertex pair (detail text is allowed to differ).
  [[nodiscard]] bool same_shape(const McViolation& o) const;
};

/// One scheduling juncture, as shown to a Strategy. `pending` is
/// indexed by virtual-thread id (the OpenMP tid); only tids listed in
/// `enabled` are runnable.
struct SchedulePoint {
  std::uint64_t step = 0;            ///< steps executed so far this run
  std::uint64_t decision_index = 0;  ///< decisions (>=2 enabled) so far
  const std::vector<int>* enabled = nullptr;
  const std::vector<PendingAccess>* pending = nullptr;
  std::uint64_t state_hash = 0;  ///< colors + thread positions; only
                                 ///< computed when wants_state_hash()
};

/// Schedule-decision policy. pick() is consulted only at real decision
/// points (>= 2 enabled threads); on_execute() observes every step,
/// forced or chosen, so reductions can track dependencies.
class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual void begin_execution() {}
  [[nodiscard]] virtual bool wants_state_hash() const { return false; }
  /// Must return a member of *p.enabled.
  virtual int pick(const SchedulePoint& p) = 0;
  virtual void on_execute(const SchedulePoint& p, int chosen) {
    (void)p;
    (void)chosen;
  }
  /// Advance to the next schedule; false when the space is exhausted.
  virtual bool next_execution() { return false; }
};

struct McLimits {
  /// Hard cap on recorded decisions per execution (runaway guard; the
  /// execution still runs to completion, the overflow is just flagged).
  std::uint64_t max_decisions_per_run = 1u << 20;
  /// Cap on materialized violations per execution (counting continues).
  std::size_t max_violations = 64;
};

/// Everything one checked execution produced.
struct ExecutionLog {
  std::vector<std::uint8_t> decisions;  ///< chosen tid per decision point
  std::vector<McViolation> violations;
  std::uint64_t steps = 0;
  std::uint64_t violation_count = 0;  ///< uncapped tally
  int max_team = 0;                   ///< largest region team observed
  int rounds = 0;
  bool decision_overflow = false;

  [[nodiscard]] bool violating() const { return violation_count > 0; }
};

/// The schedule-exploration context. Attach to ColoringOptions::checker
/// (mirroring ColoringOptions::auditor); the engine calls begin_round /
/// end_round, the kernels' region scopes and accessor yields drive the
/// cooperative scheduler. Arm/disarm bracket one explored execution.
class McContext {
 public:
  McContext() = default;
  McContext(const McContext&) = delete;
  McContext& operator=(const McContext&) = delete;

  // ---- controller (explorer) side ----

  /// Install this context as the process-global checker and reset the
  /// per-execution state. Throws Error(kInvalidArgument) when the build
  /// lacks GCOL_MC (the kernels would never yield and every "explored"
  /// schedule would silently be the free-running one).
  void arm(Strategy& strategy, const McLimits& limits = {});

  /// Clear the global registry and return this execution's log.
  ExecutionLog disarm();

  [[nodiscard]] bool armed() const noexcept { return armed_; }

  /// Record a violation found outside the per-round sweeps (e.g. the
  /// explorer mapping a sequential fallback to kLivelock).
  void add_violation(McViolation v);

  /// Rounds after which the speculative loop counts as livelocked.
  int convergence_round_limit = 32;

  // ---- driver side (color_bgpc / color_d2gc round loop) ----

  void begin_round(int round, const color_t* c, std::size_t n);
  /// Audit the partial coloring after conflict removal + fault
  /// injection. `next_queue` is the work queue of the following round
  /// (the no-loss invariant: every uncolored vertex must be in it).
  void end_round(const BipartiteGraph& g, const color_t* c,
                 const std::vector<vid_t>& next_queue);
  void end_round(const Graph& g, const color_t* c,
                 const std::vector<vid_t>& next_queue);

  // ---- kernel side (region scopes and accessor yields) ----

  void region_enter(int tid, int team_size);
  void region_exit(int tid);
  void yield_access(int tid, vid_t v, AccessKind kind);

 private:
  enum class ThreadState : std::uint8_t {
    kAbsent,
    kWaiting,
    kRunning,
    kFinished
  };
  struct VThread {
    ThreadState state = ThreadState::kAbsent;
    PendingAccess pending;
    std::uint64_t steps = 0;
  };

  /// Pick and wake the next runnable thread (mu_ held). No-op until the
  /// whole team registered; closes the episode when everyone finished.
  void schedule_locked();
  [[nodiscard]] std::uint64_t state_hash_locked() const;
  void record_violation_nolock(McViolation v);
  void check_color_bound(const color_t* c, std::size_t n, color_t cap);

  std::mutex mu_;
  std::condition_variable cv_;
  Strategy* strategy_ = nullptr;
  McLimits limits_;
  bool armed_ = false;

  // Episode (one kernel parallel region) state, all under mu_.
  bool episode_open_ = false;
  int expected_ = 0;
  int registered_ = 0;
  int running_ = -1;
  std::vector<VThread> vthreads_;
  std::vector<int> enabled_scratch_;
  std::vector<PendingAccess> pending_scratch_;

  // Execution-wide state.
  ExecutionLog log_;
  int round_ = 0;
  bool livelock_flagged_ = false;
  const color_t* colors_ = nullptr;
  std::size_t num_colors_ = 0;
  std::vector<std::uint8_t> queue_mark_;  // end_round scratch
};

/// The globally armed context, or nullptr (kernel-side fast path).
[[nodiscard]] McContext* active() noexcept;

#if defined(GCOL_MC)
/// Registers the calling OpenMP worker as a virtual thread for the
/// duration of one kernel parallel region. Place right after the
/// region's `current_thread()` call; compiles to nothing without
/// GCOL_MC.
class McRegionScope {
 public:
  McRegionScope();
  ~McRegionScope();
  McRegionScope(const McRegionScope&) = delete;
  McRegionScope& operator=(const McRegionScope&) = delete;

 private:
  McContext* engaged_ = nullptr;
};

/// Accessor schedule point; no-op unless the calling thread is a
/// registered virtual thread of the armed checker.
void mc_yield(vid_t v, AccessKind kind);
#endif

}  // namespace gcol::check
