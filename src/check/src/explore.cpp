// gcol-mc exploration strategies and drivers.
//
// Everything here is re-execution based: a strategy never rewinds the
// engine, it just steers the next full coloring run. The DFS keeps a
// stack of decision nodes and replays the prefix below the current
// frontier on every run; because a checked execution is a deterministic
// function of its decision sequence, the replayed prefix lands in
// exactly the state it left.
#include "greedcolor/check/explore.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <sstream>
#include <unordered_set>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/robust/error.hpp"
#include "greedcolor/util/timer.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace gcol::check {

namespace {

constexpr std::uint64_t bit(int tid) { return std::uint64_t{1} << tid; }

/// Depth-first enumeration of the decision tree, optionally with the
/// sleep-set reduction (kDpor) or state-hash pruning (kExhaustive).
///
/// Sleep sets (Godefroid): when the DFS backtracks from candidate c at
/// a node, c joins the sleep set of the node's remaining branches; a
/// sleeping thread is woken the moment an executed access is dependent
/// (same vertex, at least one write) with its pending access. A branch
/// whose thread is still asleep would only replay an already-explored
/// interleaving with independent accesses permuted, so it is skipped.
/// Round boundaries are global barriers every execution passes, so the
/// per-round invariant sweeps still see one representative of every
/// Mazurkiewicz trace.
class DfsStrategy final : public Strategy {
 public:
  DfsStrategy(bool sleep_sets, bool hash_prune)
      : sleep_sets_(sleep_sets), hash_prune_(hash_prune) {}

  void begin_execution() override {
    depth_ = 0;
    sleep_ = 0;
  }

  [[nodiscard]] bool wants_state_hash() const override {
    return hash_prune_;
  }

  int pick(const SchedulePoint& p) override {
    if (depth_ < stack_.size()) {
      // Replay below the frontier: sleep set = value at first visit
      // plus every sibling already explored at this node.
      Node& nd = stack_[depth_];
      sleep_ = nd.sleep_entry;
      for (std::size_t k = 0; k < nd.cur; ++k)
        sleep_ |= bit(nd.candidates[k]);
      ++depth_;
      return nd.candidates[nd.cur];
    }
    Node nd;
    nd.sleep_entry = sleep_;
    for (const int tid : *p.enabled)
      if (!sleep_sets_ || (sleep_ & bit(tid)) == 0)
        nd.candidates.push_back(tid);
    if (nd.candidates.empty()) {
      // Every enabled thread is asleep: this state is redundant, but a
      // run in flight cannot be aborted — take any branch and do not
      // branch further here.
      nd.candidates.push_back(p.enabled->front());
      sleep_pruned_ += p.enabled->size() - 1;
    } else {
      sleep_pruned_ += p.enabled->size() - nd.candidates.size();
    }
    if (hash_prune_ && nd.candidates.size() > 1 &&
        !seen_hashes_.insert(p.state_hash).second) {
      // Pre-decision state already expanded once: keep a single branch.
      hash_pruned_ += nd.candidates.size() - 1;
      nd.candidates.resize(1);
    }
    stack_.push_back(std::move(nd));
    ++depth_;
    return stack_.back().candidates.front();
  }

  void on_execute(const SchedulePoint& p, int chosen) override {
    if (!sleep_sets_ || sleep_ == 0) return;
    sleep_ &= ~bit(chosen);
    const PendingAccess& acc = (*p.pending)[static_cast<std::size_t>(chosen)];
    std::uint64_t rest = sleep_;
    while (rest != 0) {
      const int tid = std::countr_zero(rest);
      rest &= rest - 1;
      if (accesses_conflict(acc,
                            (*p.pending)[static_cast<std::size_t>(tid)]))
        sleep_ &= ~bit(tid);
    }
  }

  bool next_execution() override {
    while (!stack_.empty()) {
      Node& nd = stack_.back();
      if (nd.cur + 1 < nd.candidates.size()) {
        ++nd.cur;
        return true;
      }
      stack_.pop_back();
    }
    return false;
  }

  [[nodiscard]] std::uint64_t sleep_pruned() const { return sleep_pruned_; }
  [[nodiscard]] std::uint64_t hash_pruned() const { return hash_pruned_; }

 private:
  struct Node {
    std::vector<int> candidates;
    std::size_t cur = 0;
    std::uint64_t sleep_entry = 0;
  };

  bool sleep_sets_;
  bool hash_prune_;
  std::vector<Node> stack_;
  std::size_t depth_ = 0;
  std::uint64_t sleep_ = 0;
  std::unordered_set<std::uint64_t> seen_hashes_;
  std::uint64_t sleep_pruned_ = 0;
  std::uint64_t hash_pruned_ = 0;
};

/// Seeded schedule fuzzing: every run draws from splitmix64 streams
/// derived from (seed, run index), so a seed pins the whole campaign.
class RandomStrategy final : public Strategy {
 public:
  RandomStrategy(std::uint64_t seed, std::uint64_t budget)
      : seed_(seed), budget_(budget > 0 ? budget : 1) {}

  void begin_execution() override {
    state_ = seed_ + (run_ + 1) * 0x9e3779b97f4a7c15ULL;
  }

  int pick(const SchedulePoint& p) override {
    return (*p.enabled)[static_cast<std::size_t>(
        next() % p.enabled->size())];
  }

  bool next_execution() override {
    ++run_;
    return run_ < budget_;
  }

 private:
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t seed_;
  std::uint64_t budget_;
  std::uint64_t run_ = 0;
  std::uint64_t state_ = 0;
};

/// Drive one execution from a recorded decision sequence. Once the
/// recording runs out (a deliberately truncated prefix during witness
/// minimization) the lowest enabled tid is taken — deterministic, so a
/// prefix still pins a unique execution. A recorded choice that is not
/// enabled is surfaced by the scheduler as kNondeterminism.
class ReplayStrategy final : public Strategy {
 public:
  explicit ReplayStrategy(std::vector<std::uint8_t> choices)
      : choices_(std::move(choices)) {}

  void begin_execution() override { pos_ = 0; }

  int pick(const SchedulePoint& p) override {
    if (pos_ < choices_.size()) {
      const int want = choices_[pos_++];
      return want;  // scheduler validates membership in enabled
    }
    return p.enabled->front();
  }

 private:
  std::vector<std::uint8_t> choices_;
  std::size_t pos_ = 0;
};

/// One checked execution; engine exceptions become kEngineError.
ExecutionLog run_checked(McContext& ctx, Strategy& strategy,
                         const std::function<void(McContext&)>& run_one) {
  ctx.arm(strategy);
  try {
    run_one(ctx);
  } catch (const std::exception& e) {
    ctx.add_violation({McViolationKind::kEngineError, 0, kInvalidVertex,
                       kInvalidVertex, kInvalidVertex, kNoColor, e.what()});
  }
  return ctx.disarm();
}

std::vector<std::uint8_t> prefix(const std::vector<std::uint8_t>& full,
                                 std::size_t len) {
  return {full.begin(),
          full.begin() + static_cast<std::ptrdiff_t>(len)};
}

/// Shrink the witness to the shortest decision prefix that still
/// reproduces the same violation shape, then re-record that execution's
/// full decision list so the returned trace is self-contained.
void minimize_witness(McContext& ctx, McResult& res,
                      const std::function<void(McContext&)>& run_one) {
  const McViolation target = res.violations.front();
  const std::vector<std::uint8_t> full = res.witness.choices;

  auto reproduces = [&](std::size_t len, ExecutionLog* out) {
    ReplayStrategy replay(prefix(full, len));
    ExecutionLog log = run_checked(ctx, replay, run_one);
    ++res.schedules_explored;
    const bool hit =
        std::any_of(log.violations.begin(), log.violations.end(),
                    [&](const McViolation& v) { return v.same_shape(target); });
    if (hit && out != nullptr) *out = std::move(log);
    return hit;
  };

  std::size_t best = full.size();
  if (reproduces(0, nullptr)) {
    best = 0;
  } else if (full.size() > 1) {
    // Invariant: reproduces(lo) failed, reproduces(hi) assumed to hold
    // (hi = full.size() is the recorded execution itself).
    std::size_t lo = 0;
    std::size_t hi = full.size();
    while (lo + 1 < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (reproduces(mid, nullptr))
        hi = mid;
      else
        lo = mid;
    }
    best = hi;
  }

  ExecutionLog final_log;
  if (reproduces(best, &final_log)) {
    res.violations = std::move(final_log.violations);
    res.witness.choices = std::move(final_log.decisions);
  }
  // else: non-monotone shrink (a shorter prefix diverged); keep the
  // original full witness, which reproduces by construction.
}

std::unique_ptr<Strategy> make_strategy(const McOptions& opts) {
  switch (opts.mode) {
    case ExploreMode::kExhaustive:
      return std::make_unique<DfsStrategy>(false, opts.hash_prune);
    case ExploreMode::kDpor:
      return std::make_unique<DfsStrategy>(true, false);
    case ExploreMode::kRandom:
      return std::make_unique<RandomStrategy>(opts.seed,
                                              opts.random_schedules);
    case ExploreMode::kReplay:
      return std::make_unique<ReplayStrategy>(opts.replay.choices);
  }
  raise(ErrorCode::kInvalidArgument, "gcol-mc", "unknown explore mode");
}

}  // namespace

const char* to_string(ExploreMode mode) {
  switch (mode) {
    case ExploreMode::kExhaustive: return "exhaustive";
    case ExploreMode::kDpor: return "dpor";
    case ExploreMode::kRandom: return "random";
    case ExploreMode::kReplay: return "replay";
  }
  return "?";
}

ExploreMode explore_mode_from_string(const std::string& name) {
  if (name == "exhaustive") return ExploreMode::kExhaustive;
  if (name == "dpor") return ExploreMode::kDpor;
  if (name == "random") return ExploreMode::kRandom;
  if (name == "replay") return ExploreMode::kReplay;
  raise(ErrorCode::kInvalidArgument, "gcol-mc",
        "unknown explore mode '" + name +
            "' (want exhaustive|dpor|random|replay)");
}

std::string McResult::summary() const {
  std::ostringstream os;
  os << "schedules=" << schedules_explored
     << " decisions=" << decisions_total << " team=" << max_team
     << " sleep-pruned=" << sleep_pruned << " hash-pruned=" << hash_pruned
     << (complete ? " complete" : "")
     << (budget_exhausted ? " budget-exhausted" : "");
  if (violations.empty()) {
    os << " clean";
  } else {
    os << " VIOLATION: " << violations.front().to_string()
       << " [witness: " << witness.choices.size() << " decisions]";
  }
  return os.str();
}

McResult explore(McContext& ctx, const McOptions& opts,
                 const std::function<void(McContext&)>& run_one) {
  if (!kMcEnabled)
    raise(ErrorCode::kInvalidArgument, "gcol-mc",
          "this build lacks GCOL_MC; configure with -DGCOL_MC=ON "
          "(the modelcheck preset) to model-check");
#if defined(_OPENMP)
  // The scheduler needs the team size it was announced; dynamic team
  // shrinking would change the schedule space between runs.
  omp_set_dynamic(0);
#endif
  ctx.convergence_round_limit = opts.convergence_round_limit;
  const std::unique_ptr<Strategy> strategy = make_strategy(opts);
  auto* dfs = dynamic_cast<DfsStrategy*>(strategy.get());

  McResult res;
  WallTimer timer;
  bool space_exhausted = false;
  for (;;) {
    ExecutionLog log = run_checked(ctx, *strategy, run_one);
    ++res.schedules_explored;
    res.decisions_total += log.decisions.size();
    res.max_team = std::max(res.max_team, log.max_team);
    const bool violated = log.violating();
    if (violated && res.violations.empty()) {
      res.violations = log.violations;
      res.witness.choices = log.decisions;
    }
    if (violated && opts.stop_on_violation) break;
    if (opts.mode == ExploreMode::kReplay) {
      space_exhausted = true;
      break;
    }
    if (!strategy->next_execution()) {
      space_exhausted = true;
      break;
    }
    if (res.schedules_explored >= opts.max_schedules) {
      res.budget_exhausted = true;
      break;
    }
    if (opts.time_budget_seconds > 0.0 &&
        timer.seconds() >= opts.time_budget_seconds) {
      res.budget_exhausted = true;
      break;
    }
  }
  if (dfs != nullptr) {
    res.sleep_pruned = dfs->sleep_pruned();
    res.hash_pruned = dfs->hash_pruned();
  }
  if (opts.mode == ExploreMode::kRandom) {
    // Sampling never proves coverage; a finished budget is just that.
    if (space_exhausted) res.budget_exhausted = true;
  } else {
    res.complete = space_exhausted;
  }

  if (!res.violations.empty() && opts.minimize &&
      opts.mode != ExploreMode::kReplay)
    minimize_witness(ctx, res, run_one);
  return res;
}

namespace {

/// Shared setup for the model_check_* entry points: pin the virtual
/// team size, fail diverging schedules fast, and surface a sequential
/// fallback as the livelock it is under exploration.
ColoringOptions checked_options(const ColoringOptions& base,
                                const McOptions& opts, McContext& ctx) {
  ColoringOptions opt = base;
  opt.num_threads = std::max(2, opts.virtual_threads);
  opt.max_rounds =
      std::min(opt.max_rounds, std::max(1, opts.convergence_round_limit));
  opt.collect_iteration_stats = false;
  // Locality would rewrite the graph; the invariant sweeps must see the
  // same ids the caller handed in.
  opt.locality = LocalityMode::kNone;
  opt.checker = &ctx;
  return opt;
}

std::string witness_label(const char* engine, const ColoringOptions& opt,
                          const McOptions& opts) {
  std::ostringstream os;
  os << engine << " " << opt.name << " mode=" << to_string(opts.mode)
     << " vthreads=" << std::max(2, opts.virtual_threads)
     << " seed=" << opts.seed;
  return os.str();
}

}  // namespace

McResult model_check_bgpc(const BipartiteGraph& g,
                          const ColoringOptions& base,
                          const std::vector<vid_t>& order,
                          const McOptions& opts) {
  McContext ctx;
  const ColoringOptions opt = checked_options(base, opts, ctx);
  McResult res =
      explore(ctx, opts, [&g, &opt, &order](McContext& c) {
        const ColoringResult r = color_bgpc(g, opt, order);
        if (r.sequential_fallback)
          c.add_violation({McViolationKind::kLivelock, r.rounds,
                           kInvalidVertex, kInvalidVertex, kInvalidVertex,
                           kNoColor,
                           "speculative loop hit its round cap; "
                           "sequential cleanup engaged"});
      });
  res.witness.label = witness_label("bgpc", opt, opts);
  return res;
}

McResult model_check_d2gc(const Graph& g, const ColoringOptions& base,
                          const std::vector<vid_t>& order,
                          const McOptions& opts) {
  McContext ctx;
  const ColoringOptions opt = checked_options(base, opts, ctx);
  McResult res =
      explore(ctx, opts, [&g, &opt, &order](McContext& c) {
        const ColoringResult r = color_d2gc(g, opt, order);
        if (r.sequential_fallback)
          c.add_violation({McViolationKind::kLivelock, r.rounds,
                           kInvalidVertex, kInvalidVertex, kInvalidVertex,
                           kNoColor,
                           "speculative loop hit its round cap; "
                           "sequential cleanup engaged"});
      });
  res.witness.label = witness_label("d2gc", opt, opts);
  return res;
}

}  // namespace gcol::check
