// gcol-mc cooperative scheduler: serializes the real OpenMP kernel
// threads through a run token so a Strategy can dictate the
// interleaving, and sweeps the audit invariants at every round
// boundary. See mc.hpp for the design overview.
#include "greedcolor/check/mc.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/robust/error.hpp"
#include "greedcolor/util/parallel.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace gcol::check {

namespace {

// The armed checker. Kernels reach it lock-free; arming is exclusive
// (arm() throws when another context is installed).
std::atomic<McContext*> g_active{nullptr};

#if defined(GCOL_MC)
// Virtual-thread identity of the calling OpenMP worker, set for the
// lifetime of one McRegionScope. The null check is the whole fast path
// of mc_yield for unregistered threads (driver init loops, sequential
// cleanup, user code).
thread_local McContext* t_ctx = nullptr;
thread_local int t_tid = -1;
#endif

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline void fnv_mix(std::uint64_t& h, std::uint64_t x) {
  h = (h ^ x) * kFnvPrime;
}

}  // namespace

const char* to_string(AccessKind kind) {
  switch (kind) {
    case AccessKind::kStart: return "start";
    case AccessKind::kLoad: return "load";
    case AccessKind::kStore: return "store";
    case AccessKind::kExchange: return "exchange";
  }
  return "?";
}

const char* to_string(McViolationKind kind) {
  switch (kind) {
    case McViolationKind::kEscapedConflict: return "escaped-conflict";
    case McViolationKind::kQueueLoss: return "queue-loss";
    case McViolationKind::kColorBound: return "color-bound";
    case McViolationKind::kLivelock: return "livelock";
    case McViolationKind::kNondeterminism: return "nondeterminism";
    case McViolationKind::kEngineError: return "engine-error";
  }
  return "?";
}

std::string McViolation::to_string() const {
  std::ostringstream os;
  os << check::to_string(kind) << " round=" << round;
  if (a != kInvalidVertex) os << " a=" << a;
  if (b != kInvalidVertex) os << " b=" << b;
  if (via != kInvalidVertex) os << " via=" << via;
  if (color != kNoColor) os << " color=" << color;
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

bool McViolation::same_shape(const McViolation& o) const {
  if (kind != o.kind || round != o.round || color != o.color) return false;
  return (a == o.a && b == o.b) || (a == o.b && b == o.a);
}

McContext* active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

void McContext::arm(Strategy& strategy, const McLimits& limits) {
  if (!kMcEnabled)
    raise(ErrorCode::kInvalidArgument, "gcol-mc",
          "this build lacks GCOL_MC; configure with -DGCOL_MC=ON "
          "(the modelcheck preset) to model-check");
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (armed_)
      raise(ErrorCode::kInvalidArgument, "gcol-mc",
            "McContext is already armed");
    strategy_ = &strategy;
    limits_ = limits;
    log_ = ExecutionLog{};
    round_ = 0;
    livelock_flagged_ = false;
    colors_ = nullptr;
    num_colors_ = 0;
    episode_open_ = false;
    expected_ = 0;
    registered_ = 0;
    running_ = -1;
    vthreads_.clear();
    armed_ = true;
    strategy_->begin_execution();
  }
  McContext* expect = nullptr;
  if (!g_active.compare_exchange_strong(expect, this,
                                        std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lk(mu_);
    armed_ = false;
    raise(ErrorCode::kInvalidArgument, "gcol-mc",
          "another McContext is already armed (one checked coloring "
          "at a time)");
  }
}

ExecutionLog McContext::disarm() {
  g_active.store(nullptr, std::memory_order_release);
  std::lock_guard<std::mutex> lk(mu_);
  armed_ = false;
  strategy_ = nullptr;
  ExecutionLog out = std::move(log_);
  log_ = ExecutionLog{};
  out.rounds = round_;
  cv_.notify_all();  // release any straggler (defensive; none expected)
  return out;
}

void McContext::add_violation(McViolation v) {
  std::lock_guard<std::mutex> lk(mu_);
  record_violation_nolock(std::move(v));
}

void McContext::record_violation_nolock(McViolation v) {
  ++log_.violation_count;
  if (log_.violations.size() < limits_.max_violations)
    log_.violations.push_back(std::move(v));
}

// ---- cooperative scheduler ------------------------------------------

void McContext::region_enter(int tid, int team_size) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!armed_) return;
  if (!episode_open_) {
    episode_open_ = true;
    expected_ = team_size > 0 ? team_size : 1;
    registered_ = 0;
    running_ = -1;
    vthreads_.assign(static_cast<std::size_t>(expected_), VThread{});
    log_.max_team = std::max(log_.max_team, expected_);
  }
  if (tid < 0 || tid >= expected_) {
    record_violation_nolock(
        {McViolationKind::kEngineError, round_, kInvalidVertex,
         kInvalidVertex, kInvalidVertex, kNoColor,
         "region_enter: tid outside the announced team"});
    return;
  }
  VThread& t = vthreads_[static_cast<std::size_t>(tid)];
  t.state = ThreadState::kWaiting;
  t.pending = PendingAccess{kInvalidVertex, AccessKind::kStart};
  ++registered_;
  if (registered_ == expected_) schedule_locked();
  cv_.wait(lk, [&] { return !armed_ || running_ == tid; });
  t.state = ThreadState::kRunning;
}

void McContext::region_exit(int tid) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!armed_ || !episode_open_) return;
  if (tid < 0 || tid >= expected_) return;
  vthreads_[static_cast<std::size_t>(tid)].state = ThreadState::kFinished;
  if (running_ == tid) running_ = -1;
  schedule_locked();
}

void McContext::yield_access(int tid, vid_t v, AccessKind kind) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!armed_ || !episode_open_) return;
  if (tid < 0 || tid >= expected_) return;
  VThread& t = vthreads_[static_cast<std::size_t>(tid)];
  t.pending = PendingAccess{v, kind};
  t.state = ThreadState::kWaiting;
  if (running_ == tid) running_ = -1;
  schedule_locked();
  cv_.wait(lk, [&] { return !armed_ || running_ == tid; });
  t.state = ThreadState::kRunning;
}

void McContext::schedule_locked() {
  // Hold every thread until the whole team announced itself: the first
  // decision point must see the full enabled set or DFS replay would
  // depend on OS arrival order.
  if (!episode_open_ || registered_ < expected_) return;

  enabled_scratch_.clear();
  bool any_unfinished = false;
  for (int i = 0; i < expected_; ++i) {
    const VThread& t = vthreads_[static_cast<std::size_t>(i)];
    if (t.state == ThreadState::kWaiting) enabled_scratch_.push_back(i);
    if (t.state != ThreadState::kFinished) any_unfinished = true;
  }
  if (enabled_scratch_.empty()) {
    if (!any_unfinished) {
      // Episode over: every virtual thread ran to the region barrier.
      episode_open_ = false;
      expected_ = 0;
      registered_ = 0;
      running_ = -1;
    }
    return;
  }

  pending_scratch_.assign(vthreads_.size(), PendingAccess{});
  for (std::size_t i = 0; i < vthreads_.size(); ++i)
    pending_scratch_[i] = vthreads_[i].pending;

  SchedulePoint p;
  p.step = log_.steps;
  p.decision_index = log_.decisions.size();
  p.enabled = &enabled_scratch_;
  p.pending = &pending_scratch_;

  int chosen;
  if (enabled_scratch_.size() == 1) {
    chosen = enabled_scratch_.front();
  } else {
    if (strategy_->wants_state_hash()) p.state_hash = state_hash_locked();
    chosen = strategy_->pick(p);
    if (std::find(enabled_scratch_.begin(), enabled_scratch_.end(),
                  chosen) == enabled_scratch_.end()) {
      record_violation_nolock(
          {McViolationKind::kNondeterminism, round_, kInvalidVertex,
           kInvalidVertex, kInvalidVertex, kNoColor,
           "strategy picked a thread that is not enabled"});
      chosen = enabled_scratch_.front();
    }
    if (log_.decisions.size() <
        static_cast<std::size_t>(limits_.max_decisions_per_run))
      log_.decisions.push_back(static_cast<std::uint8_t>(chosen));
    else
      log_.decision_overflow = true;
  }
  strategy_->on_execute(p, chosen);
  ++vthreads_[static_cast<std::size_t>(chosen)].steps;
  ++log_.steps;
  running_ = chosen;
  cv_.notify_all();
}

std::uint64_t McContext::state_hash_locked() const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(round_));
  fnv_mix(h, static_cast<std::uint64_t>(expected_));
  for (const VThread& t : vthreads_) {
    fnv_mix(h, static_cast<std::uint64_t>(t.state));
    fnv_mix(h, static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(t.pending.v)));
    fnv_mix(h, static_cast<std::uint64_t>(t.pending.kind));
    fnv_mix(h, t.steps);
  }
  // All kernel threads are parked on the condvar here, so the plain
  // reads cannot race the kernels' relaxed atomics.
  for (std::size_t i = 0; i < num_colors_; ++i)
    fnv_mix(h, static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(colors_[i])));
  return h;
}

// ---- round-boundary invariant sweeps --------------------------------

void McContext::begin_round(int round, const color_t* c, std::size_t n) {
  if (!armed_) return;
  std::lock_guard<std::mutex> lk(mu_);
  round_ = round;
  colors_ = c;
  num_colors_ = n;
  if (round > convergence_round_limit && !livelock_flagged_) {
    livelock_flagged_ = true;
    record_violation_nolock(
        {McViolationKind::kLivelock, round, kInvalidVertex, kInvalidVertex,
         kInvalidVertex, kNoColor,
         "speculative loop exceeded the convergence round limit"});
  }
}

void McContext::check_color_bound(const color_t* c, std::size_t n,
                                  color_t cap) {
  // Forbidden-set / first-fit consistency: the drivers size their
  // marker sets to the color bound + 2; any color at or past that
  // capacity means a first-fit scan escaped its forbidden set (a later
  // MarkerSet::insert of it would write out of bounds).
  for (std::size_t u = 0; u < n; ++u) {
    const color_t col = c[u];
    if (col == kNoColor || col < cap) continue;
    record_violation_nolock(
        {McViolationKind::kColorBound, round_, static_cast<vid_t>(u),
         kInvalidVertex, kInvalidVertex, col,
         "color at/above the driver's marker capacity"});
  }
}

void McContext::end_round(const BipartiteGraph& g, const color_t* c,
                          const std::vector<vid_t>& next_queue) {
  if (!armed_) return;
  std::lock_guard<std::mutex> lk(mu_);
  const auto n = static_cast<std::size_t>(g.num_vertices());

  // 1. Escaped conflicts: two colored vertices of one net sharing a
  // color after conflict removal. O(deg^2) per net — fixtures are tiny.
  for (vid_t v = 0; v < g.num_nets(); ++v) {
    const auto vt = g.vtxs(v);
    for (std::size_t i = 0; i < vt.size(); ++i) {
      const color_t ci = c[static_cast<std::size_t>(vt[i])];
      if (ci == kNoColor) continue;
      for (std::size_t j = i + 1; j < vt.size(); ++j) {
        if (vt[i] == vt[j]) continue;  // multiplicity edge
        if (c[static_cast<std::size_t>(vt[j])] != ci) continue;
        record_violation_nolock(
            {McViolationKind::kEscapedConflict, round_,
             std::min(vt[i], vt[j]), std::max(vt[i], vt[j]), v, ci,
             "distance-2 neighbors share a color after conflict removal"});
      }
    }
  }

  // 2. Work-queue no-loss: every uncolored non-isolated vertex must be
  // in the next round's queue, or it will never be colored.
  queue_mark_.assign(n, 0);
  for (const vid_t u : next_queue)
    if (u >= 0 && static_cast<std::size_t>(u) < n)
      queue_mark_[static_cast<std::size_t>(u)] = 1;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    if (c[static_cast<std::size_t>(u)] != kNoColor) continue;
    if (g.vertex_degree(u) == 0) continue;
    if (queue_mark_[static_cast<std::size_t>(u)]) continue;
    record_violation_nolock(
        {McViolationKind::kQueueLoss, round_, u, kInvalidVertex,
         kInvalidVertex, kNoColor, "uncolored vertex missing from the "
                                   "next work queue"});
  }

  // 3. First-fit / forbidden-set consistency.
  check_color_bound(c, n, static_cast<color_t>(bgpc_color_bound(g) + 2));
}

void McContext::end_round(const Graph& g, const color_t* c,
                          const std::vector<vid_t>& next_queue) {
  if (!armed_) return;
  std::lock_guard<std::mutex> lk(mu_);
  const auto n = static_cast<std::size_t>(g.num_vertices());

  // 1. Escaped conflicts under distance-2 adjacency: v vs its
  // neighbors (distance 1) and every neighbor pair through v
  // (distance 2).
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    const color_t cv = c[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const color_t ci = c[static_cast<std::size_t>(nb[i])];
      if (cv != kNoColor && nb[i] != v && ci == cv && nb[i] > v) {
        record_violation_nolock(
            {McViolationKind::kEscapedConflict, round_, v, nb[i],
             kInvalidVertex, cv,
             "adjacent vertices share a color after conflict removal"});
      }
      if (ci == kNoColor) continue;
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        if (nb[i] == nb[j]) continue;
        if (c[static_cast<std::size_t>(nb[j])] != ci) continue;
        record_violation_nolock(
            {McViolationKind::kEscapedConflict, round_,
             std::min(nb[i], nb[j]), std::max(nb[i], nb[j]), v, ci,
             "distance-2 neighbors share a color after conflict removal"});
      }
    }
  }

  // 2. Work-queue no-loss.
  queue_mark_.assign(n, 0);
  for (const vid_t u : next_queue)
    if (u >= 0 && static_cast<std::size_t>(u) < n)
      queue_mark_[static_cast<std::size_t>(u)] = 1;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    if (c[static_cast<std::size_t>(u)] != kNoColor) continue;
    if (g.degree(u) == 0) continue;
    if (queue_mark_[static_cast<std::size_t>(u)]) continue;
    record_violation_nolock(
        {McViolationKind::kQueueLoss, round_, u, kInvalidVertex,
         kInvalidVertex, kNoColor, "uncolored vertex missing from the "
                                   "next work queue"});
  }

  // 3. First-fit / forbidden-set consistency.
  check_color_bound(c, n, static_cast<color_t>(d2gc_color_bound(g) + 2));
}

// ---- kernel-side hooks ----------------------------------------------

#if defined(GCOL_MC)

McRegionScope::McRegionScope() {
  McContext* m = active();
  if (m == nullptr) return;
  const int tid = current_thread();
#if defined(_OPENMP)
  const int team = omp_get_num_threads();
#else
  const int team = 1;
#endif
  t_ctx = m;
  t_tid = tid;
  engaged_ = m;
  m->region_enter(tid, team);
}

McRegionScope::~McRegionScope() {
  if (engaged_ == nullptr) return;
  engaged_->region_exit(t_tid);
  t_ctx = nullptr;
  t_tid = -1;
}

void mc_yield(vid_t v, AccessKind kind) {
  if (t_ctx != nullptr) t_ctx->yield_access(t_tid, v, kind);
}

#endif  // GCOL_MC

}  // namespace gcol::check
