#include "greedcolor/check/trace.hpp"

#include <fstream>
#include <sstream>

#include "greedcolor/robust/error.hpp"

namespace gcol::check {

namespace {

constexpr const char* kMagic = "gcol-mc-trace";

/// Strip trailing CR (files written on Windows) and surrounding spaces.
std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::uint8_t parse_choice(const std::string& tok, std::size_t index) {
  if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos)
    raise(ErrorCode::kBadInput, "gcol-mc trace",
          "choice #" + std::to_string(index) + " is not a number: '" +
              tok + "'");
  const unsigned long value = std::stoul(tok);
  if (value > 255)
    raise(ErrorCode::kBadInput, "gcol-mc trace",
          "choice #" + std::to_string(index) + " out of range: " + tok);
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::string encode_trace(const McTrace& trace) {
  std::ostringstream os;
  os << kMagic << " v" << trace.version << "\n";
  if (!trace.label.empty()) os << "label=" << trace.label << "\n";
  os << "choices=";
  for (std::size_t i = 0; i < trace.choices.size(); ++i) {
    if (i != 0) os << ",";
    os << static_cast<unsigned>(trace.choices[i]);
  }
  os << "\n";
  return os.str();
}

McTrace decode_trace(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  McTrace trace;
  bool saw_magic = false;
  bool saw_choices = false;
  while (std::getline(is, line)) {
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;
    if (!saw_magic) {
      // Header: "gcol-mc-trace v<N>".
      std::istringstream hs(line);
      std::string magic, ver;
      hs >> magic >> ver;
      if (magic != kMagic || ver.size() < 2 || ver.front() != 'v')
        raise(ErrorCode::kBadInput, "gcol-mc trace",
              "missing 'gcol-mc-trace v1' header (got '" + line + "')");
      const std::string digits = ver.substr(1);
      if (digits.find_first_not_of("0123456789") != std::string::npos)
        raise(ErrorCode::kBadInput, "gcol-mc trace",
              "bad version '" + ver + "'");
      trace.version = static_cast<std::uint32_t>(std::stoul(digits));
      if (trace.version != 1)
        raise(ErrorCode::kBadInput, "gcol-mc trace",
              "unsupported version " + std::to_string(trace.version));
      saw_magic = true;
      continue;
    }
    if (line.rfind("label=", 0) == 0) {
      trace.label = line.substr(6);
      continue;
    }
    if (line.rfind("choices=", 0) == 0) {
      saw_choices = true;
      const std::string body = line.substr(8);
      if (trim(body).empty()) continue;  // decision-free schedule
      std::istringstream cs(body);
      std::string tok;
      while (std::getline(cs, tok, ','))
        trace.choices.push_back(
            parse_choice(trim(tok), trace.choices.size()));
      continue;
    }
    raise(ErrorCode::kBadInput, "gcol-mc trace",
          "unrecognized directive: '" + line + "'");
  }
  if (!saw_magic)
    raise(ErrorCode::kBadInput, "gcol-mc trace", "empty trace input");
  if (!saw_choices)
    raise(ErrorCode::kBadInput, "gcol-mc trace", "missing choices= line");
  return trace;
}

McTrace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    raise(ErrorCode::kIoError, "gcol-mc trace", "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return decode_trace(buf.str());
}

void write_trace_file(const McTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out)
    raise(ErrorCode::kIoError, "gcol-mc trace",
          "cannot open " + path + " for writing");
  out << encode_trace(trace);
  if (!out)
    raise(ErrorCode::kIoError, "gcol-mc trace", "write failed: " + path);
}

}  // namespace gcol::check
