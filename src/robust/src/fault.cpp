#include "greedcolor/robust/fault.hpp"

#include <chrono>
#include <sstream>
#include <thread>

#include "greedcolor/robust/error.hpp"
#include "greedcolor/util/prng.hpp"

namespace gcol {

namespace {

// Distinct stream tags keep the per-kind decision sequences independent
// even for equal (round, item) pairs.
constexpr std::uint64_t kStreamStale = 0x5741'4c45'0000'0001ULL;
constexpr std::uint64_t kStreamDrop = 0x4452'4f50'0000'0002ULL;
constexpr std::uint64_t kStreamReorder = 0x5245'4f52'0000'0003ULL;
constexpr std::uint64_t kStreamFlip = 0x464c'4950'0000'0004ULL;
constexpr std::uint64_t kStreamDup = 0x4455'504c'0000'0005ULL;

/// Bernoulli(rate) as a pure function of the mixed key.
bool hit(std::uint64_t seed, std::uint64_t stream, std::uint64_t a,
         std::uint64_t b, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  const std::uint64_t h =
      mix64(seed ^ stream ^ mix64(a * 0x9e3779b97f4a7c15ULL + b));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
}

double parse_rate(const std::string& key, const std::string& value) {
  std::istringstream in(value);
  double rate = 0.0;
  if (!(in >> rate) || rate < 0.0 || rate > 1.0)
    raise(ErrorCode::kInvalidArgument, "FaultPlan",
          key + " must be a rate in [0, 1], got '" + value + "'");
  return rate;
}

std::int64_t parse_count(const std::string& key, const std::string& value) {
  std::istringstream in(value);
  std::int64_t n = 0;
  if (!(in >> n) || n < 0)
    raise(ErrorCode::kInvalidArgument, "FaultPlan",
          key + " must be a non-negative integer, got '" + value + "'");
  return n;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos)
      raise(ErrorCode::kInvalidArgument, "FaultPlan",
            "expected key=value, got '" + item + "'");
    std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    for (auto& ch : key)
      if (ch == '_') ch = '-';
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_count(key, value));
    } else if (key == "stale") {
      plan.stale_color_rate = parse_rate(key, value);
    } else if (key == "drop") {
      plan.drop_update_rate = parse_rate(key, value);
    } else if (key == "reorder") {
      plan.reorder_update_rate = parse_rate(key, value);
    } else if (key == "dup") {
      plan.duplicate_update_rate = parse_rate(key, value);
    } else if (key == "delay-steps") {
      plan.delay_update_supersteps = static_cast<int>(parse_count(key, value));
    } else if (key == "part") {
      plan.partition_shard = static_cast<int>(parse_count(key, value));
    } else if (key == "part-start") {
      plan.partition_start_superstep =
          static_cast<int>(parse_count(key, value));
    } else if (key == "part-steps") {
      plan.partition_supersteps = static_cast<int>(parse_count(key, value));
    } else if (key == "delay-rounds") {
      plan.delay_rounds = static_cast<int>(parse_count(key, value));
    } else if (key == "delay-ms") {
      plan.delay_ms = static_cast<int>(parse_count(key, value));
    } else if (key == "flip") {
      plan.flip_byte_rate = parse_rate(key, value);
    } else if (key == "trunc") {
      plan.truncate_fraction = parse_rate(key, value);
    } else {
      raise(ErrorCode::kInvalidArgument, "FaultPlan",
            "unknown fault key '" + key + "'");
    }
  }
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::ostringstream out;
  out << "seed=" << seed;
  if (stale_color_rate > 0) out << ",stale=" << stale_color_rate;
  if (drop_update_rate > 0) out << ",drop=" << drop_update_rate;
  if (reorder_update_rate > 0) out << ",reorder=" << reorder_update_rate;
  if (duplicate_update_rate > 0) out << ",dup=" << duplicate_update_rate;
  if (delay_update_supersteps > 0)
    out << ",delay-steps=" << delay_update_supersteps;
  if (partition_supersteps > 0) {
    out << ",part=" << partition_shard;
    if (partition_start_superstep > 0)
      out << ",part-start=" << partition_start_superstep;
    out << ",part-steps=" << partition_supersteps;
  }
  if (delay_rounds > 0) out << ",delay-rounds=" << delay_rounds;
  if (delay_ms > 0) out << ",delay-ms=" << delay_ms;
  if (flip_byte_rate > 0) out << ",flip=" << flip_byte_rate;
  if (truncate_fraction > 0) out << ",trunc=" << truncate_fraction;
  return out.str();
}

bool FaultPlan::corrupt_color(int round, vid_t u) const {
  return hit(seed, kStreamStale, static_cast<std::uint64_t>(round),
             static_cast<std::uint64_t>(u), stale_color_rate);
}

bool FaultPlan::drop_update(int superstep, vid_t u) const {
  return hit(seed, kStreamDrop, static_cast<std::uint64_t>(superstep),
             static_cast<std::uint64_t>(u), drop_update_rate);
}

bool FaultPlan::reorder_update(int superstep, vid_t u) const {
  return hit(seed, kStreamReorder, static_cast<std::uint64_t>(superstep),
             static_cast<std::uint64_t>(u), reorder_update_rate);
}

bool FaultPlan::duplicate_update(int superstep, vid_t u) const {
  return hit(seed, kStreamDup, static_cast<std::uint64_t>(superstep),
             static_cast<std::uint64_t>(u), duplicate_update_rate);
}

std::string FaultPlan::corrupt_bytes(const std::string& bytes,
                                     std::uint64_t variant) const {
  std::string out = bytes;
  if (truncate_fraction > 0.0 && !out.empty()) {
    // Cut between (1 - trunc) and 1.0 of the length; the variant jitters
    // the point so a corpus sweep cuts headers, size lines, and entry
    // lists alike (trunc=1 spans the whole file).
    const double r = static_cast<double>(
                         mix64(seed ^ kStreamFlip ^ mix64(variant)) >> 11) *
                     0x1.0p-53;
    const double keep = 1.0 - truncate_fraction * r;
    out.resize(static_cast<std::size_t>(
        static_cast<double>(out.size()) * keep));
  }
  if (flip_byte_rate > 0.0) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (hit(seed, kStreamFlip, variant, i, flip_byte_rate)) {
        const auto bit = static_cast<unsigned>(
            mix64(seed ^ variant ^ (i * 0x9e3779b97f4a7c15ULL)) % 8);
        out[i] = static_cast<char>(
            static_cast<unsigned char>(out[i]) ^ (1u << bit));
      }
    }
  }
  return out;
}

namespace {

/// Overwrite c[u] with the color of the first distance-2 partner that
/// currently holds a different color; both endpoints stay colored, so
/// the speculative loop's own conflict detection (which only scans the
/// live work queue in vertex mode) can miss it — exactly the hazard a
/// delayed thread creates.
template <typename PartnerScan>
vid_t inject_with(const FaultPlan& plan, vid_t n, int round,
                  std::span<color_t> colors, PartnerScan scan) {
  if (plan.stale_color_rate <= 0.0) return 0;
  vid_t corrupted = 0;
  for (vid_t u = 0; u < n; ++u) {
    if (colors[static_cast<std::size_t>(u)] == kNoColor) continue;
    if (!plan.corrupt_color(round, u)) continue;
    const color_t stale = scan(u);
    if (stale == kNoColor) continue;
    colors[static_cast<std::size_t>(u)] = stale;
    ++corrupted;
  }
  return corrupted;
}

}  // namespace

vid_t inject_stale_colors(const FaultPlan& plan, const BipartiteGraph& g,
                          int round, std::span<color_t> colors) {
  return inject_with(
      plan, g.num_vertices(), round, colors, [&](vid_t u) -> color_t {
        const color_t cu = colors[static_cast<std::size_t>(u)];
        for (const vid_t v : g.nets(u)) {
          for (const vid_t w : g.vtxs(v)) {
            if (w == u) continue;
            const color_t cw = colors[static_cast<std::size_t>(w)];
            if (cw != kNoColor && cw != cu) return cw;
          }
        }
        return kNoColor;
      });
}

vid_t inject_stale_colors(const FaultPlan& plan, const Graph& g, int round,
                          std::span<color_t> colors) {
  return inject_with(
      plan, g.num_vertices(), round, colors, [&](vid_t u) -> color_t {
        const color_t cu = colors[static_cast<std::size_t>(u)];
        for (const vid_t v : g.neighbors(u)) {
          const color_t cv = colors[static_cast<std::size_t>(v)];
          if (cv != kNoColor && cv != cu) return cv;
          for (const vid_t w : g.neighbors(v)) {
            if (w == u) continue;
            const color_t cw = colors[static_cast<std::size_t>(w)];
            if (cw != kNoColor && cw != cu) return cw;
          }
        }
        return kNoColor;
      });
}

bool inject_round_delay(const FaultPlan& plan, int round) {
  if (!plan.delay_round(round)) return false;
  std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
  return true;
}

}  // namespace gcol
