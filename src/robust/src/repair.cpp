#include "greedcolor/robust/repair.hpp"

#include <algorithm>

#include "greedcolor/robust/error.hpp"
#include "greedcolor/util/marker_set.hpp"

namespace gcol {

namespace {

/// Reset entries no valid greedy coloring could contain. Any color id
/// >= cap would force the forbidden-marker arrays (and a malicious
/// input could force multi-GB ones), so such entries are treated as
/// damage and recolored rather than trusted.
vid_t sanitize(std::vector<color_t>& colors, color_t cap) {
  vid_t reset = 0;
  for (auto& c : colors) {
    if (c == kNoColor) continue;
    if (c < 0 || c >= cap) {
      c = kNoColor;
      ++reset;
    }
  }
  return reset;
}

}  // namespace

RepairStats repair_bgpc(const BipartiteGraph& g,
                        std::vector<color_t>& colors) {
  if (colors.size() != static_cast<std::size_t>(g.num_vertices()))
    raise(ErrorCode::kInvalidArgument, "repair_bgpc",
          "color array size mismatch");
  RepairStats stats;
  // A first-fit coloring never needs more than num_vertices colors; the
  // cap also bounds marker growth against garbage input.
  const color_t cap = std::max<color_t>(g.num_vertices(), 1);
  stats.sanitized = sanitize(colors, cap);

  // Net-side conflict sweep: the first holder of each color in a net
  // keeps it, later duplicates are uncolored (the static smallest-id
  // tie-break of the distributed lineage).
  MarkerSet seen(static_cast<std::size_t>(cap));
  for (vid_t v = 0; v < g.num_nets(); ++v) {
    seen.clear();
    for (const vid_t u : g.vtxs(v)) {
      color_t& cu = colors[static_cast<std::size_t>(u)];
      if (cu == kNoColor) continue;
      if (seen.contains(cu)) {
        cu = kNoColor;
        ++stats.conflicted;
      } else {
        seen.insert(cu);
      }
    }
  }

  // Sequential first-fit over the damage only, reading live colors.
  MarkerSet forbidden(static_cast<std::size_t>(cap));
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    color_t& cu = colors[static_cast<std::size_t>(u)];
    if (cu != kNoColor) continue;
    forbidden.clear();
    for (const vid_t v : g.nets(u))
      for (const vid_t w : g.vtxs(v))
        if (w != u && colors[static_cast<std::size_t>(w)] != kNoColor)
          forbidden.insert(colors[static_cast<std::size_t>(w)]);
    color_t col = 0;
    while (forbidden.contains(col)) ++col;
    cu = col;
    ++stats.repaired;
  }
  return stats;
}

RepairStats repair_d2gc(const Graph& g, std::vector<color_t>& colors) {
  if (colors.size() != static_cast<std::size_t>(g.num_vertices()))
    raise(ErrorCode::kInvalidArgument, "repair_d2gc",
          "color array size mismatch");
  RepairStats stats;
  const color_t cap = std::max<color_t>(g.num_vertices(), 1);
  stats.sanitized = sanitize(colors, cap);

  // Closed-neighborhood sweep: checking distinctness inside each N[v]
  // covers every distance-<=2 pair (the same argument check_d2gc uses).
  MarkerSet seen(static_cast<std::size_t>(cap));
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    seen.clear();
    const color_t cv = colors[static_cast<std::size_t>(v)];
    if (cv != kNoColor) seen.insert(cv);
    for (const vid_t u : g.neighbors(v)) {
      color_t& cu = colors[static_cast<std::size_t>(u)];
      if (cu == kNoColor) continue;
      if (seen.contains(cu)) {
        cu = kNoColor;
        ++stats.conflicted;
      } else {
        seen.insert(cu);
      }
    }
  }

  MarkerSet forbidden(static_cast<std::size_t>(cap));
  for (vid_t w = 0; w < g.num_vertices(); ++w) {
    color_t& cw = colors[static_cast<std::size_t>(w)];
    if (cw != kNoColor) continue;
    forbidden.clear();
    for (const vid_t u : g.neighbors(w)) {
      if (colors[static_cast<std::size_t>(u)] != kNoColor)
        forbidden.insert(colors[static_cast<std::size_t>(u)]);
      for (const vid_t x : g.neighbors(u))
        if (x != w && colors[static_cast<std::size_t>(x)] != kNoColor)
          forbidden.insert(colors[static_cast<std::size_t>(x)]);
    }
    color_t col = 0;
    while (forbidden.contains(col)) ++col;
    cw = col;
    ++stats.repaired;
  }
  return stats;
}

}  // namespace gcol
