#include "greedcolor/robust/verified.hpp"

#include <stdexcept>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/obs/trace.hpp"
#include "greedcolor/robust/error.hpp"
#include "greedcolor/robust/repair.hpp"

namespace gcol {

namespace {

/// The engines report caller mistakes as std::invalid_argument; the
/// robust contract promises typed errors, so translate at the boundary.
template <typename Fn>
auto translate_invalid_argument(Fn&& fn) {
  try {
    return fn();
  } catch (const std::invalid_argument& e) {
    throw Error(ErrorCode::kInvalidArgument, e.what());
  }
}

template <typename Graph, typename Checker, typename Repairer>
void verify_or_repair(const Graph& g, std::vector<color_t>& colors,
                      Checker check, Repairer repair, bool& degraded,
                      vid_t& repaired, obs::Tracer* tracer) {
  if (!check(g, colors).has_value()) return;
  GCOL_TRACE_BEGIN(tracer, "robust.repair",
                   static_cast<std::uint64_t>(colors.size()));
  const RepairStats stats = repair(g, colors);
  GCOL_TRACE_END(tracer, "robust.repair");
  GCOL_TRACE_EVENT(tracer, "robust.repaired",
                   static_cast<std::uint64_t>(stats.repaired));
  degraded = true;
  repaired = stats.repaired;
  if (const auto violation = check(g, colors))
    raise(ErrorCode::kInternalInvariant, "verify-and-repair",
          "coloring still invalid after repair: " + violation->to_string());
}

}  // namespace

ColoringResult color_bgpc_verified(const BipartiteGraph& g,
                                   const ColoringOptions& options,
                                   const std::vector<vid_t>& order) {
  ColoringResult result = translate_invalid_argument(
      [&] { return color_bgpc(g, options, order); });
  verify_or_repair(g, result.colors, check_bgpc, repair_bgpc,
                   result.degraded, result.repaired_vertices,
                   options.tracer);
  if (result.repaired_vertices > 0)
    result.num_colors = count_colors(result.colors);
  return result;
}

ColoringResult color_d2gc_verified(const Graph& g,
                                   const ColoringOptions& options,
                                   const std::vector<vid_t>& order) {
  ColoringResult result = translate_invalid_argument(
      [&] { return color_d2gc(g, options, order); });
  verify_or_repair(g, result.colors, check_d2gc, repair_d2gc,
                   result.degraded, result.repaired_vertices,
                   options.tracer);
  if (result.repaired_vertices > 0)
    result.num_colors = count_colors(result.colors);
  return result;
}

DistResult color_bgpc_distributed_verified(const BipartiteGraph& g,
                                           const DistOptions& options) {
  DistResult result = translate_invalid_argument(
      [&] { return color_bgpc_distributed(g, options); });
  verify_or_repair(g, result.colors, check_bgpc, repair_bgpc,
                   result.degraded, result.repaired_vertices,
                   options.tracer);
  if (result.repaired_vertices > 0)
    result.num_colors = count_colors(result.colors);
  return result;
}

}  // namespace gcol
