#include "greedcolor/robust/error.hpp"

namespace gcol {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kIoError:
      return "io-error";
    case ErrorCode::kBadInput:
      return "bad-input";
    case ErrorCode::kTruncatedInput:
      return "truncated-input";
    case ErrorCode::kCorruptHeader:
      return "corrupt-header";
    case ErrorCode::kOutOfRange:
      return "out-of-range";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kInternalInvariant:
      return "internal-invariant";
  }
  return "unknown";
}

void raise(ErrorCode code, const std::string& context,
           const std::string& why) {
  throw Error(code, context + ": " + why);
}

}  // namespace gcol
