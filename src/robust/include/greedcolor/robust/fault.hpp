// Deterministic fault-injection harness.
//
// A FaultPlan is a seeded description of the failure modes the robust
// pipeline must survive: stale speculative color writes in the parallel
// kernels (a delayed thread publishing a decision computed from an old
// view), dropped or out-of-order superstep color exchanges in the
// distributed simulation, artificial straggler stalls that trip the
// convergence watchdog, and truncated / bit-flipped bytes on the ingest
// path. Every decision is a pure function of (seed, fault kind, round,
// item), so a failing scenario replays bit-for-bit from its spec string.
//
// Plans are attached to ColoringOptions / DistOptions by pointer and are
// never consulted on the happy path beyond one null check per round.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

struct FaultPlan {
  std::uint64_t seed = 1;

  // --- parallel kernels (color_bgpc / color_d2gc round loop) ---
  /// Fraction of colored vertices whose color is overwritten with a
  /// conflicting distance-2 neighbor's color after each round's conflict
  /// removal (simulating a delayed thread's stale speculative write).
  double stale_color_rate = 0.0;
  /// Rounds 1..delay_rounds suffer an artificial straggler stall.
  int delay_rounds = 0;
  /// Stall length per delayed round, in milliseconds.
  int delay_ms = 0;

  // --- sharded runtime (color_bgpc_distributed boundary exchange) ---
  /// Fraction of end-of-superstep boundary batches that are silently
  /// dropped (remote shards keep reading stale ghost colors until a
  /// retry or a later cumulative batch gets through).
  double drop_update_rate = 0.0;
  /// Fraction delivered late (out of order); the ghost-version guard
  /// keeps a late batch from overwriting newer state.
  double reorder_update_rate = 0.0;
  /// Fraction of delivered batches that arrive twice (the duplicate is
  /// detected by the version guard and counted as stale).
  double duplicate_update_rate = 0.0;
  /// How many supersteps a reorder victim is withheld (0 behaves as 1).
  int delay_update_supersteps = 0;
  /// Partition window: every batch shard `partition_shard` sends during
  /// supersteps [partition_start_superstep, partition_start_superstep +
  /// partition_supersteps) is dropped, retries included — the full
  /// outage that forces the dirty/repair path. Disabled while
  /// partition_supersteps == 0.
  int partition_shard = 0;
  int partition_start_superstep = 0;
  int partition_supersteps = 0;

  // --- ingest (harness-side corruption of byte streams) ---
  /// Per-byte bit-flip probability applied by corrupt_bytes().
  double flip_byte_rate = 0.0;
  /// Fraction of the tail corrupt_bytes() cuts off (0 keeps everything).
  double truncate_fraction = 0.0;

  /// Parse a comma-separated spec: "seed=42,stale=0.05,drop=0.2,
  /// reorder=0.1,dup=0.1,delay-steps=2,part=1,part-start=0,part-steps=3,
  /// delay-rounds=3,delay-ms=10,flip=0.01,trunc=0.5".
  /// Unknown keys or unparsable values throw Error(kInvalidArgument).
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Canonical spec string (parse(to_spec()) round-trips).
  [[nodiscard]] std::string to_spec() const;

  [[nodiscard]] bool any_kernel_faults() const {
    return stale_color_rate > 0.0 || delay_rounds > 0;
  }
  [[nodiscard]] bool any_dist_faults() const {
    return drop_update_rate > 0.0 || reorder_update_rate > 0.0 ||
           duplicate_update_rate > 0.0 || partition_supersteps > 0;
  }

  // Deterministic per-item decisions.
  [[nodiscard]] bool corrupt_color(int round, vid_t u) const;
  [[nodiscard]] bool delay_round(int round) const {
    return delay_ms > 0 && round <= delay_rounds;
  }
  [[nodiscard]] bool drop_update(int superstep, vid_t u) const;
  [[nodiscard]] bool reorder_update(int superstep, vid_t u) const;
  [[nodiscard]] bool duplicate_update(int superstep, vid_t u) const;

  /// Corrupted copy of `bytes`: truncated to (1 - truncate_fraction) of
  /// its length, then bit-flipped per flip_byte_rate. `variant` selects
  /// one member of the corruption corpus for this plan.
  [[nodiscard]] std::string corrupt_bytes(const std::string& bytes,
                                          std::uint64_t variant = 0) const;
};

/// Overwrite a deterministic subset of colored vertices with the color
/// of a conflicting distance-2 partner (BGPC: another vertex of a shared
/// net). Returns the number of vertices actually corrupted. Called by
/// color_bgpc after each round when a plan is attached.
vid_t inject_stale_colors(const FaultPlan& plan, const BipartiteGraph& g,
                          int round, std::span<color_t> colors);

/// D2GC flavor: the stale color comes from a distance-<=2 neighbor.
vid_t inject_stale_colors(const FaultPlan& plan, const Graph& g, int round,
                          std::span<color_t> colors);

/// Sleep for delay_ms when the plan stalls this round. Returns true if
/// a stall happened (so callers can count them).
bool inject_round_delay(const FaultPlan& plan, int round);

}  // namespace gcol
