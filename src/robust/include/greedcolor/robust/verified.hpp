// Fail-safe coloring entry points: the contract of the robust pipeline.
//
// Each wrapper runs the underlying engine (watchdog options and fault
// plans included), verifies the result with the check_* oracles, and —
// when anything leaked through (injected faults, speculative races, a
// degraded fallback interleaving) — repairs only the damaged vertices
// and re-verifies. The guarantee: the returned coloring ALWAYS passes
// check_* or a typed gcol::Error is thrown; never an invalid coloring,
// never a crash, never a hang (deadline + round budgets bound the run).
// API misuse (bad options, size-mismatched orders) surfaces as
// Error(kInvalidArgument); a post-repair verification failure — which
// would be a greedcolor bug — as Error(kInternalInvariant).
#pragma once

#include <vector>

#include "greedcolor/core/options.hpp"
#include "greedcolor/core/result.hpp"
#include "greedcolor/dist/dist_bgpc.hpp"
#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"

namespace gcol {

/// color_bgpc + verify + incremental repair. degraded/repaired_vertices
/// report whether and how much recovery was needed.
[[nodiscard]] ColoringResult color_bgpc_verified(
    const BipartiteGraph& g, const ColoringOptions& options = {},
    const std::vector<vid_t>& order = {});

/// color_d2gc + verify + incremental repair.
[[nodiscard]] ColoringResult color_d2gc_verified(
    const Graph& g, const ColoringOptions& options = {},
    const std::vector<vid_t>& order = {});

/// color_bgpc_distributed + verify + incremental repair.
[[nodiscard]] DistResult color_bgpc_distributed_verified(
    const BipartiteGraph& g, const DistOptions& options = {});

}  // namespace gcol
