// Verify-and-repair: incremental recovery of an invalid coloring.
//
// Given a color array that may contain conflicts, holes, or outright
// garbage (after injected faults, a crashed worker, or an untrusted
// cache), repair_* restores validity by recoloring ONLY the offending
// vertices instead of rerunning the full coloring: one net-side conflict
// sweep (the same detection the speculative kernels use) uncolors the
// later duplicate of every clashing pair, then a sequential first-fit
// pass — the guaranteed-termination cleanup — recolors the pending set
// against live colors. The result always passes check_*; the cost is
// proportional to the damage, not to the graph.
#pragma once

#include <vector>

#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/util/types.hpp"

namespace gcol {

struct RepairStats {
  vid_t sanitized = 0;   ///< garbage entries (negative / absurdly large) reset
  vid_t conflicted = 0;  ///< colored vertices uncolored by the conflict sweep
  vid_t repaired = 0;    ///< vertices (re)colored by the first-fit pass
  [[nodiscard]] bool clean() const {
    return sanitized == 0 && conflicted == 0 && repaired == 0;
  }
};

/// Repair `colors` in place into a valid BGPC coloring of g. Throws
/// Error(kInvalidArgument) when colors.size() != g.num_vertices().
RepairStats repair_bgpc(const BipartiteGraph& g, std::vector<color_t>& colors);

/// Repair `colors` in place into a valid D2GC coloring of g.
RepairStats repair_d2gc(const Graph& g, std::vector<color_t>& colors);

}  // namespace gcol
