// Typed error layer for every greedcolor entry point.
//
// The ingest path (MatrixMarket, binary caches) and the robust coloring
// wrappers all throw gcol::Error so callers — color_tool today, a
// service front-end tomorrow — can distinguish "your input is bad"
// (reject the request) from "a library invariant broke" (page someone)
// without string-matching what() messages. Error derives from
// std::runtime_error, so existing catch sites keep working unchanged.
#pragma once

#include <stdexcept>
#include <string>

namespace gcol {

enum class ErrorCode {
  kInvalidArgument,   ///< caller API misuse (bad options, size mismatch)
  kIoError,           ///< open/read/write failure on a file or stream
  kBadInput,          ///< malformed input content (parse errors)
  kTruncatedInput,    ///< input ends before the promised data
  kCorruptHeader,     ///< header fields inconsistent with the stream
  kOutOfRange,        ///< sizes or indices outside the representable range
  kDeadlineExceeded,  ///< a watchdog deadline expired before completion
  kInternalInvariant, ///< "cannot happen": a greedcolor bug, not bad input
};

/// Stable lower-case identifier ("bad-input", "io-error", ...).
[[nodiscard]] const char* to_string(ErrorCode code);

class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

  /// True for the caller's-fault family (reject with a 4xx); false for
  /// kDeadlineExceeded / kInternalInvariant (the service's problem).
  [[nodiscard]] bool is_input_error() const noexcept {
    return code_ != ErrorCode::kDeadlineExceeded &&
           code_ != ErrorCode::kInternalInvariant;
  }

 private:
  ErrorCode code_;
};

/// Throw an Error with a "context: why" message.
[[noreturn]] void raise(ErrorCode code, const std::string& context,
                        const std::string& why);

}  // namespace gcol
