// Micro-benchmarks for the runtime substrate: marker sets (the
// forbidden-color arrays), the two work-queue strategies, orderings,
// and generators. google-benchmark based.
#include <benchmark/benchmark.h>

#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/order/ordering.hpp"
#include "greedcolor/util/marker_set.hpp"
#include "greedcolor/util/prng.hpp"
#include "greedcolor/util/work_queue.hpp"

namespace {

using namespace gcol;

void BM_MarkerSet_ClearInsertProbe(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MarkerSet set(n);
  Xoshiro256 rng(1);
  std::vector<std::int64_t> keys(n);
  for (auto& k : keys) k = static_cast<std::int64_t>(rng.bounded(n));
  for (auto _ : state) {
    set.clear();
    for (const auto k : keys) set.insert(k);
    std::int64_t hits = 0;
    for (const auto k : keys) hits += set.contains(k);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_MarkerSet_ClearInsertProbe)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SharedQueue_Push(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SharedWorkQueue q(n);
  for (auto _ : state) {
    q.reset(n);
    for (std::size_t i = 0; i < n; ++i) q.push(static_cast<vid_t>(i));
    benchmark::DoNotOptimize(q.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SharedQueue_Push)->Arg(1 << 12)->Arg(1 << 16);

void BM_LazyQueue_PushMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  LocalWorkQueues q(1);
  std::vector<vid_t> out;
  for (auto _ : state) {
    q.begin_round();
    for (std::size_t i = 0; i < n; ++i) q.push(0, static_cast<vid_t>(i));
    q.merge_into(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LazyQueue_PushMerge)->Arg(1 << 12)->Arg(1 << 16);

void BM_Ordering(benchmark::State& state, OrderingKind kind) {
  PowerLawBipartiteParams p;
  p.rows = 2000;
  p.cols = 8000;
  p.min_deg = 3;
  p.max_deg = 200;
  p.seed = 5;
  const BipartiteGraph g = build_bipartite(gen_powerlaw_bipartite(p));
  for (auto _ : state) {
    auto order = make_ordering(g, kind, 1);
    benchmark::DoNotOptimize(order.data());
  }
}
BENCHMARK_CAPTURE(BM_Ordering, natural, OrderingKind::kNatural);
BENCHMARK_CAPTURE(BM_Ordering, random, OrderingKind::kRandom);
BENCHMARK_CAPTURE(BM_Ordering, largest_first, OrderingKind::kLargestFirst);
BENCHMARK_CAPTURE(BM_Ordering, smallest_last, OrderingKind::kSmallestLast);
BENCHMARK_CAPTURE(BM_Ordering, incidence_degree,
                  OrderingKind::kIncidenceDegree);

void BM_Generator_Mesh2d(benchmark::State& state) {
  for (auto _ : state) {
    auto coo = gen_mesh2d(128, 128, 2);
    benchmark::DoNotOptimize(coo.rows.data());
  }
}
BENCHMARK(BM_Generator_Mesh2d);

void BM_Build_Bipartite(benchmark::State& state) {
  const Coo coo = gen_mesh2d(128, 128, 2);
  for (auto _ : state) {
    Coo copy = coo;
    auto g = build_bipartite(std::move(copy));
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_Build_Bipartite);

void BM_Prng_Bounded(benchmark::State& state) {
  Xoshiro256 rng(9);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += rng.bounded(12345);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Prng_Bounded);

}  // namespace
