// Micro-benchmarks for the coloring kernels themselves: sequential
// baseline, each parallel preset at one thread (pure work comparison),
// balancing overhead, verification, and recoloring.
//
// Every kernel benchmark runs a 100 ms warmup and reports the
// median/mean/stddev of 3 repetitions — single-shot numbers on a
// shared box are dominated by scheduler noise.
//
// With --report=FILE the collected rows are also written as a
// gcol-report-v1 document (timings under the "bench" section), the same
// envelope color_tool --report and chaos_sweep --json emit, so
// tools/bench_gate.py and tools/check_trace.py parse one format.
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/recolor.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/obs/json.hpp"
#include "greedcolor/obs/report.hpp"

namespace {

using namespace gcol;

const BipartiteGraph& bench_graph() {
  static const BipartiteGraph g =
      build_bipartite(gen_clique_union(8000, 2800, 2, 120, 1.7, 77));
  return g;
}

const Graph& bench_unigraph() {
  static const Graph g = build_graph(gen_mesh2d(60, 60, 1));
  return g;
}

// Shared stability settings: warmup + median-of-3 (see file comment).
#define GCOL_BENCH_STABLE \
  ->MinWarmUpTime(0.1)->Repetitions(3)->ReportAggregatesOnly(true)

void BM_Bgpc_Sequential(benchmark::State& state) {
  const auto& g = bench_graph();
  for (auto _ : state) {
    auto r = color_bgpc_sequential(g);
    benchmark::DoNotOptimize(r.num_colors);
  }
  state.counters["edges"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_Bgpc_Sequential) GCOL_BENCH_STABLE;

void BM_Bgpc_Preset(benchmark::State& state, const char* name, int threads,
                    ForbiddenSetKind fset = ForbiddenSetKind::kStamped) {
  const auto& g = bench_graph();
  ColoringOptions opt = bgpc_preset(name);
  opt.num_threads = threads;
  opt.forbidden_set = fset;
  opt.collect_iteration_stats = false;
  for (auto _ : state) {
    auto r = color_bgpc(g, opt);
    benchmark::DoNotOptimize(r.num_colors);
  }
}
BENCHMARK_CAPTURE(BM_Bgpc_Preset, VV_t1, "V-V", 1) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, VV64D_t1, "V-V-64D", 1) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, VN2_t1, "V-N2", 1) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, N1N2_t1, "N1-N2", 1) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, N2N2_t1, "N2-N2", 1) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, VN2_t4, "V-N2", 4) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, N1N2_t4, "N1-N2", 4) GCOL_BENCH_STABLE;
// Same kernels with the word-parallel forbidden sets: the _bitmap /
// _twolevel rows against their stamped twins above are the wall-clock
// side of the probe-count reduction tracked in BENCH_kernels.json, and
// the _adaptive rows time the per-phase engine's choices.
BENCHMARK_CAPTURE(BM_Bgpc_Preset, VV_t1_bitmap, "V-V", 1,
                  ForbiddenSetKind::kBitmap) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, VV64D_t1_bitmap, "V-V-64D", 1,
                  ForbiddenSetKind::kBitmap) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, N1N2_t1_bitmap, "N1-N2", 1,
                  ForbiddenSetKind::kBitmap) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, VN2_t4_bitmap, "V-N2", 4,
                  ForbiddenSetKind::kBitmap) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, N1N2_t4_bitmap, "N1-N2", 4,
                  ForbiddenSetKind::kBitmap) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, N1N2_t1_twolevel, "N1-N2", 1,
                  ForbiddenSetKind::kTwoLevel) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, VV_t1_adaptive, "V-V", 1,
                  ForbiddenSetKind::kAdaptive) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, VN2_t4_adaptive, "V-N2", 4,
                  ForbiddenSetKind::kAdaptive) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Preset, N1N2_t4_adaptive, "N1-N2", 4,
                  ForbiddenSetKind::kAdaptive) GCOL_BENCH_STABLE;

void BM_Bgpc_Balance(benchmark::State& state, BalancePolicy policy) {
  const auto& g = bench_graph();
  ColoringOptions opt = bgpc_preset("V-N2");
  opt.balance = policy;
  opt.num_threads = 1;
  opt.collect_iteration_stats = false;
  for (auto _ : state) {
    auto r = color_bgpc(g, opt);
    benchmark::DoNotOptimize(r.num_colors);
  }
}
BENCHMARK_CAPTURE(BM_Bgpc_Balance, U, BalancePolicy::kNone)
GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Balance, B1, BalancePolicy::kB1)
GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_Bgpc_Balance, B2, BalancePolicy::kB2)
GCOL_BENCH_STABLE;

void BM_D2gc_Preset(benchmark::State& state, const char* name,
                    ForbiddenSetKind fset = ForbiddenSetKind::kStamped) {
  const auto& g = bench_unigraph();
  ColoringOptions opt = d2gc_preset(name);
  opt.num_threads = 1;
  opt.forbidden_set = fset;
  opt.collect_iteration_stats = false;
  for (auto _ : state) {
    auto r = color_d2gc(g, opt);
    benchmark::DoNotOptimize(r.num_colors);
  }
}
BENCHMARK_CAPTURE(BM_D2gc_Preset, VV64D, "V-V-64D") GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_D2gc_Preset, N1N2, "N1-N2") GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_D2gc_Preset, VV64D_bitmap, "V-V-64D",
                  ForbiddenSetKind::kBitmap) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_D2gc_Preset, N1N2_bitmap, "N1-N2",
                  ForbiddenSetKind::kBitmap) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_D2gc_Preset, VV64D_adaptive, "V-V-64D",
                  ForbiddenSetKind::kAdaptive) GCOL_BENCH_STABLE;
BENCHMARK_CAPTURE(BM_D2gc_Preset, N1N2_adaptive, "N1-N2",
                  ForbiddenSetKind::kAdaptive) GCOL_BENCH_STABLE;

void BM_Verify_Bgpc(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto r = color_bgpc_sequential(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_valid_bgpc(g, r.colors));
  }
}
BENCHMARK(BM_Verify_Bgpc);

void BM_Recolor_Bgpc(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto base = color_bgpc_sequential(g);
  for (auto _ : state) {
    auto colors = base.colors;
    benchmark::DoNotOptimize(recolor_bgpc(g, colors));
  }
}
BENCHMARK(BM_Recolor_Bgpc);

/// Console output as usual, plus every reported row collected for the
/// gcol-report-v1 document (--report=FILE).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    std::string aggregate;  ///< "" for plain rows, else mean/median/...
    std::int64_t iterations = 0;
    double real_time = 0.0;
    double cpu_time = 0.0;
    std::string unit;
    bool error = false;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      Row row;
      row.name = run.benchmark_name();
      row.aggregate = run.aggregate_name;
      row.iterations = static_cast<std::int64_t>(run.iterations);
      row.real_time = run.GetAdjustedRealTime();
      row.cpu_time = run.GetAdjustedCPUTime();
      row.unit = benchmark::GetTimeUnitString(run.time_unit);
      row.error = run.error_occurred;
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Row> rows;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip --report=FILE before benchmark::Initialize sees (and rejects)
  // it; everything else is standard Google Benchmark flag handling.
  std::string report_path;
  std::vector<char*> argv_rest;
  for (int i = 0; i < argc; ++i) {
    constexpr const char* kFlag = "--report=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0)
      report_path = argv[i] + std::strlen(kFlag);
    else
      argv_rest.push_back(argv[i]);
  }
  int argc_rest = static_cast<int>(argv_rest.size());
  argv_rest.push_back(nullptr);
  benchmark::Initialize(&argc_rest, argv_rest.data());
  if (benchmark::ReportUnrecognizedArguments(argc_rest, argv_rest.data()))
    return 1;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!report_path.empty()) {
    gcol::obs::RunReport rep("micro_coloring");
    gcol::obs::Json& bench = rep.section("bench");
    bench.set("kind", "micro_coloring");
    gcol::obs::Json rows = gcol::obs::Json::array();
    for (const auto& row : reporter.rows) {
      gcol::obs::Json jr = gcol::obs::Json::object();
      jr.set("name", row.name);
      if (!row.aggregate.empty()) jr.set("aggregate", row.aggregate);
      jr.set("iterations", row.iterations);
      jr.set("real_time", row.real_time);
      jr.set("cpu_time", row.cpu_time);
      jr.set("unit", row.unit);
      if (row.error) jr.set("error", true);
      rows.push_back(std::move(jr));
    }
    bench.set("rows", std::move(rows));
    rep.write_file(report_path);
    std::cout << "report written to " << report_path << "\n";
  }
  return 0;
}
