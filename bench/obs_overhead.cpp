// Tracing-overhead gate: the cost of gcol-trace when compiled in.
//
// Runs the same N1-N2 BGPC workload with and without a Tracer attached
// (same GCOL_TRACE=ON build — the macro cost is one null check per site
// when detached, ring pushes when attached) and compares medians. The
// subsystem's contract is that attaching a tracer costs <= ~3% wall
// time; the gate enforces a much wider band (default 25%) because
// tier-1 runs on arbitrary shared boxes where scheduler noise alone
// exceeds 3%. Interleaves the two modes so thermal/frequency drift
// hits both equally.
//
// Exit 0 when median(traced) <= median(untraced) * (1 + band), 1
// otherwise. --reps N (default 9) and --max-overhead-pct P (default
// 25) tune the gate.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/obs/trace.hpp"
#include "greedcolor/util/argparse.hpp"

namespace {

using namespace gcol;

double run_once(const BipartiteGraph& g, obs::Tracer* tracer) {
  ColoringOptions opt = bgpc_preset("N1-N2");
  opt.num_threads = 4;
  opt.collect_iteration_stats = false;
  opt.tracer = tracer;
  // The kernel times itself; no extra clock needed here.
  return color_bgpc(g, opt).total_seconds * 1e3;
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 9));
  const double band =
      static_cast<double>(args.get_int("max-overhead-pct", 25)) / 100.0;

  const BipartiteGraph g =
      build_bipartite(gen_clique_union(8000, 2800, 2, 120, 1.7, 77));
  std::cout << "obs_overhead: " << (obs::kTraceEnabled ? "GCOL_TRACE=ON"
                                                       : "GCOL_TRACE=OFF")
            << " build, " << reps << " reps per mode\n";

  obs::Tracer tracer;
  run_once(g, nullptr);   // warmup
  run_once(g, &tracer);
  std::vector<double> plain_ms, traced_ms;
  for (int i = 0; i < reps; ++i) {
    plain_ms.push_back(run_once(g, nullptr));
    tracer.clear();
    traced_ms.push_back(run_once(g, &tracer));
  }

  const double base = median(plain_ms);
  const double traced = median(traced_ms);
  const double overhead = traced / base - 1.0;
  std::cout << "untraced median  " << base << " ms\n"
            << "traced median    " << traced << " ms (" << tracer.recorded()
            << " events last run)\n"
            << "overhead         " << overhead * 100.0 << "% (gate "
            << band * 100.0 << "%)\n";
  if (traced > base * (1.0 + band)) {
    std::cout << "FAIL: tracing overhead above the gate band\n";
    return 1;
  }
  std::cout << "tracing overhead within the band\n";
  return 0;
}
