// The paper's introductory motivation, measured: "the execution time of
// a sequential D1GC algorithm is less than a second for many real-life
// graphs. However, for D2GC and BGPC, the overhead can be in the order
// of minutes." This harness prints the sequential D1GC / BGPC / D2GC
// times and work counts side by side, plus the parallel D1 baselines
// (speculative and Jones-Plassmann) for context.
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/core/d1gc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/env.hpp"
#include "greedcolor/util/table.hpp"
#include "greedcolor/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const auto datasets =
      args.has("datasets")
          ? std::vector<std::string>{args.get_string("datasets", "")}
          : dataset_names(/*d2gc_only=*/true);

  std::cout << "=== Intro claim: D1GC is cheap, BGPC/D2GC are not ===\n"
            << env_banner() << "\n\n";

  TextTable t;
  t.set_header({"graph", "D1 ms", "D1 col", "BGPC ms", "BGPC col",
                "D2 ms", "D2 col", "D2/D1 work"},
               {TextTable::Align::kLeft});
  for (const auto& name : datasets) {
    const Graph g = load_graph(name);
    const BipartiteGraph bg = load_bipartite(name);

    const auto d1 = color_d1gc_sequential(g);
    const auto bgpc = color_bgpc_sequential(bg);
    const auto d2 = color_d2gc_sequential(g);
    const auto w1 = d1.total_color_counters().total_work();
    const auto w2 = d2.total_color_counters().total_work();
    t.add_row({name, TextTable::fmt(d1.total_seconds * 1e3),
               TextTable::fmt_sep(d1.num_colors),
               TextTable::fmt(bgpc.total_seconds * 1e3),
               TextTable::fmt_sep(bgpc.num_colors),
               TextTable::fmt(d2.total_seconds * 1e3),
               TextTable::fmt_sep(d2.num_colors),
               TextTable::fmt(w1 ? static_cast<double>(w2) /
                                       static_cast<double>(w1)
                                 : 0.0)});
  }
  std::cout << t.to_string() << "\n";

  // Parallel D1 context: speculative loop vs Jones-Plassmann.
  TextTable p;
  p.set_header({"graph", "spec ms", "spec col", "JP ms", "JP col",
                "JP rounds"},
               {TextTable::Align::kLeft});
  const int threads = static_cast<int>(args.get_int("threads", 16));
  for (const auto& name : datasets) {
    const Graph g = load_graph(name);
    ColoringOptions opt = bgpc_preset("V-V-64D");
    opt.num_threads = threads;
    WallTimer timer;
    const auto spec = color_d1gc(g, opt);
    const double spec_ms = timer.milliseconds();
    timer.reset();
    const auto jp = color_d1gc_jones_plassmann(g, 1, threads);
    const double jp_ms = timer.milliseconds();
    const bool ok = is_valid_d1gc(g, spec.colors) &&
                    is_valid_d1gc(g, jp.colors);
    p.add_row({name, TextTable::fmt(spec_ms),
               TextTable::fmt_sep(spec.num_colors), TextTable::fmt(jp_ms),
               TextTable::fmt_sep(jp.num_colors) + (ok ? "" : "!"),
               TextTable::fmt(static_cast<std::int64_t>(jp.rounds))});
  }
  std::cout << p.to_string()
            << "\nexpected shape: D2/BGPC are one to two orders of "
               "magnitude more work than D1\non the same graph (the "
               "D2/D1 work column), which is why the paper bothers\n"
               "parallelizing them.\n";
  return 0;
}
