#include "bench_common.hpp"

#include <cmath>
#include <iostream>
#include <stdexcept>

#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/graph/graph_stats.hpp"
#include "greedcolor/util/env.hpp"
#include "greedcolor/util/table.hpp"

namespace gcol::bench {

namespace {

std::uint64_t total_work(const ColoringResult& r) {
  return r.total_color_counters().total_work() +
         r.total_conflict_counters().total_work();
}

template <typename RunFn, typename VerifyFn>
SweepRecord best_of(const std::string& dataset, const std::string& algo,
                    int threads, int reps, RunFn run, VerifyFn check) {
  SweepRecord rec;
  rec.dataset = dataset;
  rec.algo = algo;
  rec.threads = threads;
  rec.seconds = 1e300;
  for (int rep = 0; rep < std::max(reps, 1); ++rep) {
    const ColoringResult r = run();
    if (r.total_seconds < rec.seconds) {
      rec.seconds = r.total_seconds;
      rec.colors = r.num_colors;
      rec.rounds = r.rounds;
      rec.work = total_work(r);
    }
    if (!check(r)) rec.valid = false;
  }
  return rec;
}

}  // namespace

SweepRecord run_bgpc_once(const BipartiteGraph& g, const std::string& dataset,
                          const ColoringOptions& options,
                          const std::vector<vid_t>& order, int reps,
                          bool verify) {
  return best_of(
      dataset, options.name, options.num_threads, reps,
      [&] { return color_bgpc(g, options, order); },
      [&](const ColoringResult& r) {
        return !verify || is_valid_bgpc(g, r.colors);
      });
}

SweepRecord run_bgpc_sequential(const BipartiteGraph& g,
                                const std::string& dataset,
                                const std::vector<vid_t>& order, int reps) {
  return best_of(
      dataset, "seq", 1, reps,
      [&] { return color_bgpc_sequential(g, order); },
      [&](const ColoringResult& r) { return is_valid_bgpc(g, r.colors); });
}

std::vector<SweepRecord> run_bgpc_sweep(const SweepConfig& config) {
  std::vector<SweepRecord> records;
  for (const auto& name : config.datasets) {
    const BipartiteGraph g = load_bipartite(name);
    const auto order = make_ordering(g, config.order);
    records.push_back(run_bgpc_sequential(g, name, order, config.reps));
    for (const auto& algo : config.algos) {
      for (const int t : config.threads) {
        ColoringOptions opt = bgpc_preset(algo);
        opt.num_threads = t;
        opt.balance = config.balance;
        opt.forbidden_set = config.forbidden_set;
        records.push_back(
            run_bgpc_once(g, name, opt, order, config.reps, config.verify));
      }
    }
  }
  return records;
}

SweepRecord run_d2gc_once(const Graph& g, const std::string& dataset,
                          const ColoringOptions& options,
                          const std::vector<vid_t>& order, int reps,
                          bool verify) {
  return best_of(
      dataset, options.name, options.num_threads, reps,
      [&] { return color_d2gc(g, options, order); },
      [&](const ColoringResult& r) {
        return !verify || is_valid_d2gc(g, r.colors);
      });
}

SweepRecord run_d2gc_sequential(const Graph& g, const std::string& dataset,
                                const std::vector<vid_t>& order, int reps) {
  return best_of(
      dataset, "seq", 1, reps,
      [&] { return color_d2gc_sequential(g, order); },
      [&](const ColoringResult& r) { return is_valid_d2gc(g, r.colors); });
}

std::vector<SweepRecord> run_d2gc_sweep(const SweepConfig& config) {
  std::vector<SweepRecord> records;
  for (const auto& name : config.datasets) {
    const Graph g = load_graph(name);
    const auto order = make_ordering(g, config.order);
    records.push_back(run_d2gc_sequential(g, name, order, config.reps));
    for (const auto& algo : config.algos) {
      for (const int t : config.threads) {
        ColoringOptions opt = d2gc_preset(algo);
        opt.num_threads = t;
        opt.balance = config.balance;
        opt.forbidden_set = config.forbidden_set;
        records.push_back(
            run_d2gc_once(g, name, opt, order, config.reps, config.verify));
      }
    }
  }
  return records;
}

ForbiddenSetKind forbidden_set_from_args(const ArgParser& args) {
  return forbidden_set_from_string(
      args.get_string("forbidden-set", "stamped"));
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

const SweepRecord& find(const std::vector<SweepRecord>& records,
                        const std::string& dataset, const std::string& algo,
                        int threads) {
  for (const auto& r : records)
    if (r.dataset == dataset && r.algo == algo && r.threads == threads)
      return r;
  throw std::out_of_range("no sweep record for " + dataset + "/" + algo +
                          "/t" + std::to_string(threads));
}

void print_banner(const std::string& title, const SweepConfig& config) {
  std::cout << "=== " << title << " ===\n" << env_banner() << "\n";
  std::cout << "order=" << to_string(config.order)
            << " fset=" << to_string(config.forbidden_set)
            << " reps=" << config.reps << " threads=";
  for (std::size_t i = 0; i < config.threads.size(); ++i)
    std::cout << (i ? "," : "") << config.threads[i];
  std::cout << "\nNOTE: on hosts with fewer physical cores than the "
               "thread sweep, wall-clock\nparallel speedups are "
               "oversubscribed; the work-counter columns are the\n"
               "machine-independent comparison (see EXPERIMENTS.md).\n";
  for (const auto& name : config.datasets) {
    const auto& info = find_dataset(name);
    std::cout << "  " << name << " (" << info.mimics << "): "
              << signature(load_bipartite(name)) << "\n";
  }
  std::cout << "\n";
}

void print_bgpc_speedup_table(const SweepConfig& config,
                              const std::string& title) {
  print_banner(title, config);
  const auto records = run_bgpc_sweep(config);
  const int t_max = config.threads.back();

  TextTable t;
  std::vector<std::string> header = {"Algorithm", "colors/V-V"};
  for (const int th : config.threads)
    header.push_back("t=" + std::to_string(th));
  header.push_back("vs V-V t=" + std::to_string(t_max));
  header.push_back("work V-V/alg");
  t.set_header(std::move(header), {TextTable::Align::kLeft});

  for (const auto& algo : config.algos) {
    std::vector<double> color_ratio, vs_par, work_ratio;
    std::map<int, std::vector<double>> vs_seq;
    for (const auto& dataset : config.datasets) {
      const auto& seq = find(records, dataset, "seq", 1);
      const auto& vv = find(records, dataset, "V-V", t_max);
      const auto& at_max = find(records, dataset, algo, t_max);
      color_ratio.push_back(static_cast<double>(at_max.colors) /
                            static_cast<double>(vv.colors));
      vs_par.push_back(vv.seconds / at_max.seconds);
      work_ratio.push_back(static_cast<double>(vv.work) /
                           static_cast<double>(at_max.work));
      for (const int th : config.threads) {
        const auto& r = find(records, dataset, algo, th);
        vs_seq[th].push_back(seq.seconds / r.seconds);
      }
    }
    std::vector<std::string> row = {algo,
                                    TextTable::fmt(geomean(color_ratio))};
    for (const int th : config.threads)
      row.push_back(TextTable::fmt(geomean(vs_seq[th])));
    row.push_back(TextTable::fmt(geomean(vs_par)));
    row.push_back(TextTable::fmt(geomean(work_ratio)));
    t.add_row(std::move(row));
  }
  std::cout << t.to_string();
}

}  // namespace gcol::bench
