// Shared machinery for the table/figure reproduction harnesses.
//
// Every harness prints (a) an environment banner, (b) the measured
// table in the paper's layout, and (c) where relevant, the
// machine-independent work-counter view that reproduces the paper's
// relative results on hosts without 16 physical cores.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "greedcolor/core/bgpc.hpp"
#include "greedcolor/core/d2gc.hpp"
#include "greedcolor/core/options.hpp"
#include "greedcolor/graph/bipartite.hpp"
#include "greedcolor/graph/csr.hpp"
#include "greedcolor/order/ordering.hpp"
#include "greedcolor/util/argparse.hpp"

namespace gcol::bench {

struct SweepRecord {
  std::string dataset;
  std::string algo;
  int threads = 1;
  double seconds = 0.0;       ///< best-of-reps wall time
  color_t colors = 0;
  int rounds = 0;
  std::uint64_t work = 0;     ///< edges visited + color probes, all phases
  bool valid = true;
};

struct SweepConfig {
  std::vector<std::string> datasets;
  std::vector<std::string> algos;
  std::vector<int> threads = {2, 4, 8, 16};
  OrderingKind order = OrderingKind::kNatural;
  BalancePolicy balance = BalancePolicy::kNone;
  /// Reproduction harnesses default to the paper's stamped arrays so
  /// the measured shapes stay comparable to the published tables; pass
  /// --forbidden-set bitmap to re-run them with the fast kernels.
  ForbiddenSetKind forbidden_set = ForbiddenSetKind::kStamped;
  int reps = 1;       ///< wall time is the minimum over reps
  bool verify = true; ///< run the O(|E|) checker on every coloring
};

/// One parallel BGPC run (best of `reps`).
SweepRecord run_bgpc_once(const BipartiteGraph& g, const std::string& dataset,
                          const ColoringOptions& options,
                          const std::vector<vid_t>& order, int reps,
                          bool verify);

/// Sequential baseline (V-V with one thread is identical; we use the
/// dedicated sequential path, as the paper's Table II does).
SweepRecord run_bgpc_sequential(const BipartiteGraph& g,
                                const std::string& dataset,
                                const std::vector<vid_t>& order, int reps);

/// Full BGPC sweep over datasets x algos x threads. Graphs and
/// orderings are constructed once per dataset.
std::vector<SweepRecord> run_bgpc_sweep(const SweepConfig& config);

/// D2GC analogues (datasets restricted to the symmetric subset by the
/// caller).
SweepRecord run_d2gc_once(const Graph& g, const std::string& dataset,
                          const ColoringOptions& options,
                          const std::vector<vid_t>& order, int reps,
                          bool verify);
SweepRecord run_d2gc_sequential(const Graph& g, const std::string& dataset,
                                const std::vector<vid_t>& order, int reps);
std::vector<SweepRecord> run_d2gc_sweep(const SweepConfig& config);

/// Read the shared `--forbidden-set stamped|bitmap` harness switch
/// (default stamped — the paper-faithful mode the tables assume).
ForbiddenSetKind forbidden_set_from_args(const ArgParser& args);

/// Geometric mean (the aggregation used by Tables III-V).
double geomean(const std::vector<double>& values);

/// Look up a record; throws if absent.
const SweepRecord& find(const std::vector<SweepRecord>& records,
                        const std::string& dataset, const std::string& algo,
                        int threads);

/// Standard harness intro: env banner + dataset signatures + config.
void print_banner(const std::string& title, const SweepConfig& config);

/// Tables III / IV: geometric-mean speedups over the sequential V-V
/// baseline per thread count, speedup over parallel V-V at the largest
/// thread count, normalized color counts, and the machine-independent
/// work ratio vs. V-V. The ordering inside `config` selects between the
/// natural-order (Table III) and smallest-last (Table IV) variants.
void print_bgpc_speedup_table(const SweepConfig& config,
                              const std::string& title);

}  // namespace gcol::bench
