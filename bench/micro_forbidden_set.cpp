// Forbidden-set micro-benchmark and kernel A/B harness.
//
// Phase A times raw data-structure operations (insert / contains /
// first-fit scan) on the paper's stamped MarkerSet vs. the word-parallel
// BitMarkerSet. Phase B runs the full BGPC/D2GC kernels over the
// Table II stand-in registry in both forbidden-set modes and records
// wall time plus the machine-independent work counters.
//
// With --json PATH the harness writes a gcol-bench-kernels-v1 document
// (the committed BENCH_kernels.json perf trajectory); the summary block
// includes the geometric-mean probe reduction of bitmap over stamped,
// which tier-1 asserts stays >= 25%.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/env.hpp"
#include "greedcolor/util/marker_set.hpp"
#include "greedcolor/util/prng.hpp"
#include "greedcolor/util/table.hpp"
#include "greedcolor/util/timer.hpp"

namespace {

using namespace gcol;

struct OpRecord {
  std::string op;
  double stamped_ms = 0.0;
  double bitmap_ms = 0.0;
};

struct KernelRecord {
  std::string kind;  ///< "bgpc" | "d2gc"
  std::string dataset;
  std::string algo;
  std::string fset;
  int threads = 1;
  double wall_ms = 0.0;  ///< best-of-reps
  color_t colors = 0;
  int rounds = 0;
  KernelCounters color_counters;
  KernelCounters conflict_counters;
  bool valid = true;

  [[nodiscard]] std::uint64_t probes() const {
    return color_counters.color_probes + conflict_counters.color_probes;
  }
  [[nodiscard]] std::uint64_t edges() const {
    return color_counters.edges_visited + conflict_counters.edges_visited;
  }
};

// --- Phase A: raw structure ops -------------------------------------

// Deterministic key stream with first-fit-like locality: mostly small
// colors, occasional large ones, as kernels produce.
std::vector<int> make_keys(std::size_t count, int universe,
                           std::uint64_t seed) {
  std::vector<int> keys;
  keys.reserve(count);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t r = rng.next();
    const int span = (r & 7u) ? universe / 8 : universe;  // skew small
    keys.push_back(static_cast<int>((r >> 8) % static_cast<unsigned>(
                                                   std::max(span, 1))));
  }
  return keys;
}

template <class Set>
double time_inserts(const std::vector<int>& keys, int rounds) {
  Set set;
  set.ensure_capacity(2048);
  volatile std::uint64_t sink = 0;
  WallTimer t;
  for (int r = 0; r < rounds; ++r) {
    set.clear();
    for (const int k : keys) set.insert(k);
    sink += static_cast<std::uint64_t>(set.contains(keys.front()));
  }
  (void)sink;
  return t.milliseconds();
}

template <class Set>
double time_contains(const std::vector<int>& keys, int rounds) {
  Set set;
  set.ensure_capacity(2048);
  set.clear();
  for (std::size_t i = 0; i < keys.size(); i += 2) set.insert(keys[i]);
  volatile std::uint64_t hits = 0;
  WallTimer t;
  for (int r = 0; r < rounds; ++r)
    for (const int k : keys)
      hits += static_cast<std::uint64_t>(set.contains(k));
  (void)hits;
  return t.milliseconds();
}

// First-fit scan over a mostly-full set: the hot operation the bitmap
// accelerates 64 colors per probe.
double time_first_fit_stamped(const std::vector<int>& keys, int universe,
                              int rounds) {
  MarkerSet set;
  set.ensure_capacity(static_cast<std::size_t>(universe) + 64);
  set.clear();
  for (const int k : keys) set.insert(k);
  volatile std::uint64_t sink = 0;
  WallTimer t;
  for (int r = 0; r < rounds; ++r) {
    // The paper's linear probe: first color not in the set.
    color_t c = 0;
    while (set.contains(c)) ++c;
    sink += static_cast<std::uint64_t>(c);
  }
  (void)sink;
  return t.milliseconds();
}

double time_first_fit_bitmap(const std::vector<int>& keys, int universe,
                             int rounds) {
  BitMarkerSet set;
  set.ensure_capacity(static_cast<std::size_t>(universe) + 64);
  set.clear();
  for (const int k : keys) set.insert(k);
  volatile std::uint64_t sink = 0;
  std::uint64_t probes = 0;
  WallTimer t;
  for (int r = 0; r < rounds; ++r)
    sink += static_cast<std::uint64_t>(set.first_free_at_or_above(0, probes));
  (void)sink;
  return t.milliseconds();
}

std::vector<OpRecord> run_phase_a(bool smoke) {
  const std::size_t count = smoke ? 20000 : 200000;
  const int universe = 4096;
  const int rounds = smoke ? 20 : 200;
  const auto keys = make_keys(count, universe, 0x5eedULL);
  // Dense prefix so the first-fit scan has real work to do.
  std::vector<int> dense = keys;
  for (int k = 0; k < universe / 2; ++k) dense.push_back(k);

  std::vector<OpRecord> ops;
  ops.push_back({"insert", time_inserts<MarkerSet>(keys, rounds),
                 time_inserts<BitMarkerSet>(keys, rounds)});
  ops.push_back({"contains", time_contains<MarkerSet>(keys, rounds),
                 time_contains<BitMarkerSet>(keys, rounds)});
  ops.push_back({"first_fit",
                 time_first_fit_stamped(dense, universe, rounds * 64),
                 time_first_fit_bitmap(dense, universe, rounds * 64)});
  return ops;
}

// --- Phase B: kernel sweep ------------------------------------------

KernelRecord run_bgpc_mode(const BipartiteGraph& g,
                           const std::string& dataset,
                           const std::string& algo, ForbiddenSetKind fset,
                           int threads, int reps) {
  KernelRecord rec;
  rec.kind = "bgpc";
  rec.dataset = dataset;
  rec.algo = algo;
  rec.fset = to_string(fset);
  rec.threads = threads;
  rec.wall_ms = 1e300;
  ColoringOptions opt = bgpc_preset(algo);
  opt.num_threads = threads;
  opt.forbidden_set = fset;
  for (int rep = 0; rep < std::max(reps, 1); ++rep) {
    const ColoringResult r = color_bgpc(g, opt);
    if (r.total_seconds * 1e3 < rec.wall_ms) rec.wall_ms = r.total_seconds * 1e3;
    rec.colors = r.num_colors;
    rec.rounds = r.rounds;
    rec.color_counters = r.total_color_counters();
    rec.conflict_counters = r.total_conflict_counters();
    if (!is_valid_bgpc(g, r.colors)) rec.valid = false;
  }
  return rec;
}

KernelRecord run_d2gc_mode(const Graph& g, const std::string& dataset,
                           const std::string& algo, ForbiddenSetKind fset,
                           int threads, int reps) {
  KernelRecord rec;
  rec.kind = "d2gc";
  rec.dataset = dataset;
  rec.algo = algo;
  rec.fset = to_string(fset);
  rec.threads = threads;
  rec.wall_ms = 1e300;
  ColoringOptions opt = d2gc_preset(algo);
  opt.num_threads = threads;
  opt.forbidden_set = fset;
  for (int rep = 0; rep < std::max(reps, 1); ++rep) {
    const ColoringResult r = color_d2gc(g, opt);
    if (r.total_seconds * 1e3 < rec.wall_ms) rec.wall_ms = r.total_seconds * 1e3;
    rec.colors = r.num_colors;
    rec.rounds = r.rounds;
    rec.color_counters = r.total_color_counters();
    rec.conflict_counters = r.total_conflict_counters();
    if (!is_valid_d2gc(g, r.colors)) rec.valid = false;
  }
  return rec;
}

std::vector<KernelRecord> run_phase_b(bool smoke, int threads, int reps) {
  const std::vector<std::string> bgpc_algos = {"V-V", "V-N2", "N1-N2"};
  const std::vector<std::string> d2gc_algos = {"V-V-64D", "N1-N2"};
  std::vector<std::string> bgpc_sets = dataset_names(false);
  std::vector<std::string> d2gc_sets = dataset_names(true);
  if (smoke) {
    // Two structurally distinct stand-ins keep the smoke run under a
    // few seconds while still exercising mesh- and overlap-style rows.
    bgpc_sets = {"bone_s", "copapers_s"};
    if (d2gc_sets.size() > 1) d2gc_sets.resize(1);
  }

  std::vector<KernelRecord> records;
  for (const auto& name : bgpc_sets) {
    const BipartiteGraph g = load_bipartite(name);
    for (const auto& algo : bgpc_algos)
      for (const ForbiddenSetKind fset :
           {ForbiddenSetKind::kStamped, ForbiddenSetKind::kBitmap})
        records.push_back(run_bgpc_mode(g, name, algo, fset, threads, reps));
  }
  for (const auto& name : d2gc_sets) {
    const Graph g = load_graph(name);
    for (const auto& algo : d2gc_algos)
      for (const ForbiddenSetKind fset :
           {ForbiddenSetKind::kStamped, ForbiddenSetKind::kBitmap})
        records.push_back(run_d2gc_mode(g, name, algo, fset, threads, reps));
  }
  return records;
}

// --- Reporting ------------------------------------------------------

const KernelRecord* find_twin(const std::vector<KernelRecord>& records,
                              const KernelRecord& rec,
                              const std::string& fset) {
  for (const auto& r : records)
    if (r.kind == rec.kind && r.dataset == rec.dataset &&
        r.algo == rec.algo && r.threads == rec.threads && r.fset == fset)
      return &r;
  return nullptr;
}

double probe_reduction_geomean(const std::vector<KernelRecord>& records) {
  std::vector<double> ratios;
  for (const auto& rec : records) {
    if (rec.fset != "bitmap") continue;
    const KernelRecord* twin = find_twin(records, rec, "stamped");
    if (!twin || twin->probes() == 0 || rec.probes() == 0) continue;
    ratios.push_back(static_cast<double>(twin->probes()) /
                     static_cast<double>(rec.probes()));
  }
  return bench::geomean(ratios);
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s)
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  return out;
}

void write_json(const std::string& path, const std::vector<OpRecord>& ops,
                const std::vector<KernelRecord>& records, bool smoke,
                int threads, int reps) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  os << "{\n  \"schema\": \"gcol-bench-kernels-v1\",\n";
  os << "  \"config\": {\"smoke\": " << (smoke ? "true" : "false")
     << ", \"threads\": " << threads << ", \"reps\": " << reps << "},\n";
  os << "  \"structure_ops\": [\n";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto& op = ops[i];
    os << "    {\"op\": \"" << json_escape(op.op) << "\", \"stamped_ms\": "
       << op.stamped_ms << ", \"bitmap_ms\": " << op.bitmap_ms << "}"
       << (i + 1 < ops.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    os << "    {\"kind\": \"" << r.kind << "\", \"dataset\": \""
       << json_escape(r.dataset) << "\", \"algo\": \""
       << json_escape(r.algo) << "\", \"fset\": \"" << r.fset
       << "\", \"threads\": " << r.threads << ", \"wall_ms\": " << r.wall_ms
       << ", \"colors\": " << r.colors << ", \"rounds\": " << r.rounds
       << ", \"edges_visited\": " << r.edges()
       << ", \"color_probes\": " << r.probes()
       << ", \"conflicts\": " << r.conflict_counters.conflicts
       << ", \"valid\": " << (r.valid ? "true" : "false") << "}"
       << (i + 1 < records.size() ? "," : "") << "\n";
  }
  const double geo = probe_reduction_geomean(records);
  os << "  ],\n  \"summary\": {\"probe_reduction_geomean\": " << geo
     << ", \"probe_reduction_pct\": "
     << (geo > 0.0 ? (1.0 - 1.0 / geo) * 100.0 : 0.0) << "}\n}\n";
  std::ofstream out(path);
  out << os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const bool smoke = args.has("smoke");
  const int threads = static_cast<int>(args.get_int("threads", 4));
  const int reps = static_cast<int>(args.get_int("reps", smoke ? 1 : 3));
  const std::string json_path = args.get_string("json", "");

  std::cout << "=== forbidden-set micro-benchmark ===\n"
            << env_banner() << "\n"
            << (smoke ? "smoke" : "full") << " run, threads=" << threads
            << " reps=" << reps << "\n\n";

  const auto ops = run_phase_a(smoke);
  TextTable ta;
  ta.set_header({"op", "stamped ms", "bitmap ms", "speedup"},
                {TextTable::Align::kLeft});
  for (const auto& op : ops)
    ta.add_row({op.op, TextTable::fmt(op.stamped_ms),
                TextTable::fmt(op.bitmap_ms),
                TextTable::fmt(op.bitmap_ms > 0.0
                                   ? op.stamped_ms / op.bitmap_ms
                                   : 0.0)});
  std::cout << ta.to_string() << "\n";

  const auto records = run_phase_b(smoke, threads, reps);
  TextTable tb;
  tb.set_header({"kernel", "dataset", "algo", "fset", "wall ms", "colors",
                 "probes", "edges", "ok"},
                {TextTable::Align::kLeft});
  bool all_valid = true;
  for (const auto& r : records) {
    all_valid = all_valid && r.valid;
    tb.add_row({r.kind, r.dataset, r.algo, r.fset, TextTable::fmt(r.wall_ms),
                TextTable::fmt(static_cast<std::int64_t>(r.colors)),
                TextTable::fmt_sep(static_cast<std::int64_t>(r.probes())),
                TextTable::fmt_sep(static_cast<std::int64_t>(r.edges())),
                r.valid ? "yes" : "NO"});
  }
  std::cout << tb.to_string();

  const double geo = probe_reduction_geomean(records);
  const double pct = geo > 0.0 ? (1.0 - 1.0 / geo) * 100.0 : 0.0;
  std::cout << "\nprobe-count reduction (bitmap vs stamped, geomean): "
            << TextTable::fmt(geo) << "x (" << TextTable::fmt(pct)
            << "% fewer probes)\n";

  if (!json_path.empty()) {
    write_json(json_path, ops, records, smoke, threads, reps);
    std::cout << "json written to " << json_path << "\n";
  }

  if (!all_valid) {
    std::cerr << "FAIL: at least one coloring was invalid\n";
    return 1;
  }
  if (kCountersEnabled && pct < 25.0) {
    std::cerr << "FAIL: probe reduction " << pct
              << "% below the 25% floor\n";
    return 1;
  }
  return 0;
}
