// Forbidden-set micro-benchmark and kernel A/B harness.
//
// Phase A times raw data-structure operations (insert / contains /
// first-fit scan) on the paper's stamped MarkerSet vs. the word-parallel
// BitMarkerSet and the two-level TwoLevelBitMarkerSet. The L-sweep
// repeats the same ops across color bounds 16..8192 and reports the
// per-op crossover points the adaptive engine's thresholds are derived
// from (greedcolor/core/adaptive.hpp). Phase B runs the full BGPC/D2GC
// kernels over the Table II stand-in registry in stamped, bitmap, and
// adaptive modes and records wall time plus the machine-independent
// work counters.
//
// Every timing is a median of `reps` after one untimed warmup pass —
// single-shot numbers on an oversubscribed box are noise, and the
// committed trajectory gates on these values.
//
// With --json PATH the harness writes a gcol-bench-kernels-v2 document
// (the committed BENCH_kernels.json perf trajectory); the summary block
// includes the geometric-mean probe reduction of bitmap over stamped,
// which tier-1 asserts stays >= 25%.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "greedcolor/core/adaptive.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/env.hpp"
#include "greedcolor/util/marker_set.hpp"
#include "greedcolor/util/prng.hpp"
#include "greedcolor/util/table.hpp"
#include "greedcolor/util/timer.hpp"

namespace {

using namespace gcol;

struct OpRecord {
  std::string op;
  double stamped_ms = 0.0;
  double bitmap_ms = 0.0;
  double twolevel_ms = 0.0;
};

/// One (op, L) point of the color-bound sweep.
struct LSweepRecord {
  std::string op;
  int l = 0;
  double stamped_ms = 0.0;
  double bitmap_ms = 0.0;
  double twolevel_ms = 0.0;
};

/// Smallest sweep L from which a word-parallel structure beats stamped
/// for the rest of the sweep (0 = wins everywhere, -1 = never settles).
struct Crossover {
  std::string op;
  int bitmap_l = -1;
  int twolevel_l = -1;
};

struct KernelRecord {
  std::string kind;  ///< "bgpc" | "d2gc"
  std::string dataset;
  std::string algo;
  std::string fset;
  int threads = 1;
  double wall_ms = 0.0;  ///< median over reps, after one warmup run
  color_t colors = 0;
  int rounds = 0;
  KernelCounters color_counters;
  KernelCounters conflict_counters;
  bool valid = true;

  [[nodiscard]] std::uint64_t probes() const {
    return color_counters.color_probes + conflict_counters.color_probes;
  }
  [[nodiscard]] std::uint64_t edges() const {
    return color_counters.edges_visited + conflict_counters.edges_visited;
  }
};

/// Median of a sample (the harness-wide aggregation; best-of hides
/// systematic slowness, means are dragged by scheduler stalls).
double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return xs.size() % 2 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
}

/// Warmup once, then return the median of `reps` timed runs of `fn`.
template <class Fn>
double warm_median(int reps, Fn&& fn) {
  (void)fn();  // warmup: touch the structures, fault the pages
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(std::max(reps, 1)));
  for (int r = 0; r < std::max(reps, 1); ++r) times.push_back(fn());
  return median(std::move(times));
}

// --- Phase A: raw structure ops -------------------------------------

// Deterministic key stream with first-fit-like locality: mostly small
// colors, occasional large ones, as kernels produce.
std::vector<int> make_keys(std::size_t count, int universe,
                           std::uint64_t seed) {
  std::vector<int> keys;
  keys.reserve(count);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t r = rng.next();
    const int span = (r & 7u) ? universe / 8 : universe;  // skew small
    keys.push_back(static_cast<int>((r >> 8) % static_cast<unsigned>(
                                                   std::max(span, 1))));
  }
  return keys;
}

template <class Set>
double time_inserts(const std::vector<int>& keys, int rounds) {
  Set set;
  set.ensure_capacity(16384);
  volatile std::uint64_t sink = 0;
  WallTimer t;
  for (int r = 0; r < rounds; ++r) {
    set.clear();
    for (const int k : keys) set.insert(k);
    sink = sink + static_cast<std::uint64_t>(set.contains(keys.front()));
  }
  (void)sink;
  return t.milliseconds();
}

template <class Set>
double time_contains(const std::vector<int>& keys, int rounds) {
  Set set;
  set.ensure_capacity(16384);
  set.clear();
  for (std::size_t i = 0; i < keys.size(); i += 2) set.insert(keys[i]);
  volatile std::uint64_t hits = 0;
  WallTimer t;
  for (int r = 0; r < rounds; ++r)
    for (const int k : keys)
      hits = hits + static_cast<std::uint64_t>(set.contains(k));
  (void)hits;
  return t.milliseconds();
}

// First-fit scan over a mostly-full set: the hot operation the word
// scans accelerate 64 colors (one word) or 4096 colors (one full
// two-level block) per probe.
double time_first_fit_stamped(const std::vector<int>& keys, int universe,
                              int rounds) {
  MarkerSet set;
  set.ensure_capacity(static_cast<std::size_t>(universe) + 64);
  set.clear();
  for (const int k : keys) set.insert(k);
  volatile std::uint64_t sink = 0;
  WallTimer t;
  for (int r = 0; r < rounds; ++r) {
    // The paper's linear probe: first color not in the set.
    color_t c = 0;
    while (set.contains(c)) ++c;
    sink = sink + static_cast<std::uint64_t>(c);
  }
  (void)sink;
  return t.milliseconds();
}

template <class Set>
double time_first_fit_words(const std::vector<int>& keys, int universe,
                            int rounds) {
  Set set;
  set.ensure_capacity(static_cast<std::size_t>(universe) + 64);
  set.clear();
  for (const int k : keys) set.insert(k);
  volatile std::uint64_t sink = 0;
  std::uint64_t probes = 0;
  WallTimer t;
  for (int r = 0; r < rounds; ++r)
    sink = sink + static_cast<std::uint64_t>(set.first_free_at_or_above(0, probes));
  (void)sink;
  return t.milliseconds();
}

/// Time the three structures on one op family at color bound `l`.
LSweepRecord sweep_point(const std::string& op, int l, std::size_t count,
                         int rounds, int reps) {
  // Work stays proportional to `count`, not to L: the kernels issue the
  // same number of inserts regardless of the color bound; only the key
  // range (and hence the structure's resident footprint) widens.
  const auto keys = make_keys(count, l, 0x5eedULL + static_cast<unsigned>(l));
  LSweepRecord rec;
  rec.op = op;
  rec.l = l;
  if (op == "insert") {
    rec.stamped_ms =
        warm_median(reps, [&] { return time_inserts<MarkerSet>(keys, rounds); });
    rec.bitmap_ms = warm_median(
        reps, [&] { return time_inserts<BitMarkerSet>(keys, rounds); });
    rec.twolevel_ms = warm_median(
        reps, [&] { return time_inserts<TwoLevelBitMarkerSet>(keys, rounds); });
  } else if (op == "contains") {
    rec.stamped_ms = warm_median(
        reps, [&] { return time_contains<MarkerSet>(keys, rounds); });
    rec.bitmap_ms = warm_median(
        reps, [&] { return time_contains<BitMarkerSet>(keys, rounds); });
    rec.twolevel_ms = warm_median(
        reps, [&] { return time_contains<TwoLevelBitMarkerSet>(keys, rounds); });
  } else {  // first_fit over a dense ~3/4-full prefix
    std::vector<int> dense = keys;
    for (int k = 0; k < l - l / 4; ++k) dense.push_back(k);
    const int ff_rounds = rounds * 16;
    rec.stamped_ms = warm_median(
        reps, [&] { return time_first_fit_stamped(dense, l, ff_rounds); });
    rec.bitmap_ms = warm_median(reps, [&] {
      return time_first_fit_words<BitMarkerSet>(dense, l, ff_rounds);
    });
    rec.twolevel_ms = warm_median(reps, [&] {
      return time_first_fit_words<TwoLevelBitMarkerSet>(dense, l, ff_rounds);
    });
  }
  return rec;
}

std::vector<OpRecord> run_phase_a(bool smoke, int reps) {
  const std::size_t count = smoke ? 20000 : 200000;
  const int universe = 4096;
  const int rounds = smoke ? 20 : 200;
  const auto keys = make_keys(count, universe, 0x5eedULL);
  // Dense prefix so the first-fit scan has real work to do.
  std::vector<int> dense = keys;
  for (int k = 0; k < universe / 2; ++k) dense.push_back(k);

  std::vector<OpRecord> ops;
  ops.push_back(
      {"insert",
       warm_median(reps, [&] { return time_inserts<MarkerSet>(keys, rounds); }),
       warm_median(reps,
                   [&] { return time_inserts<BitMarkerSet>(keys, rounds); }),
       warm_median(reps, [&] {
         return time_inserts<TwoLevelBitMarkerSet>(keys, rounds);
       })});
  ops.push_back(
      {"contains",
       warm_median(reps,
                   [&] { return time_contains<MarkerSet>(keys, rounds); }),
       warm_median(reps,
                   [&] { return time_contains<BitMarkerSet>(keys, rounds); }),
       warm_median(reps, [&] {
         return time_contains<TwoLevelBitMarkerSet>(keys, rounds);
       })});
  ops.push_back({"first_fit",
                 warm_median(reps,
                             [&] {
                               return time_first_fit_stamped(dense, universe,
                                                             rounds * 64);
                             }),
                 warm_median(reps,
                             [&] {
                               return time_first_fit_words<BitMarkerSet>(
                                   dense, universe, rounds * 64);
                             }),
                 warm_median(reps, [&] {
                   return time_first_fit_words<TwoLevelBitMarkerSet>(
                       dense, universe, rounds * 64);
                 })});
  return ops;
}

// --- L-sweep: where does each representation start paying off? ------

std::vector<LSweepRecord> run_lsweep(bool smoke, int reps) {
  const std::size_t count = smoke ? 20000 : 100000;
  const int rounds = smoke ? 10 : 50;
  std::vector<LSweepRecord> out;
  for (const char* op : {"insert", "contains", "first_fit"})
    for (int l = 16; l <= 8192; l *= 2)
      out.push_back(sweep_point(op, l, count, rounds, reps));
  return out;
}

std::vector<Crossover> lsweep_crossovers(
    const std::vector<LSweepRecord>& sweep) {
  std::vector<Crossover> out;
  for (const char* op : {"insert", "contains", "first_fit"}) {
    Crossover c;
    c.op = op;
    // Scan from the top of the sweep down: the crossover is the
    // smallest L such that the structure wins at every point >= L.
    int bitmap_l = 0, twolevel_l = 0;
    bool bitmap_live = true, twolevel_live = true;
    for (auto it = sweep.rbegin(); it != sweep.rend(); ++it) {
      if (it->op != op) continue;
      if (bitmap_live && it->bitmap_ms < it->stamped_ms)
        bitmap_l = it->l;
      else
        bitmap_live = bitmap_l == 0;
      if (twolevel_live && it->twolevel_ms < it->stamped_ms)
        twolevel_l = it->l;
      else
        twolevel_live = twolevel_l == 0;
    }
    c.bitmap_l = bitmap_l == 0 ? -1 : bitmap_l;
    c.twolevel_l = twolevel_l == 0 ? -1 : twolevel_l;
    // A structure that wins at the smallest sweep point too wins
    // "everywhere" in the measured range.
    out.push_back(c);
  }
  return out;
}

// --- Phase B: kernel sweep ------------------------------------------

KernelRecord run_bgpc_mode(const BipartiteGraph& g,
                           const std::string& dataset,
                           const std::string& algo, ForbiddenSetKind fset,
                           int threads, int reps) {
  KernelRecord rec;
  rec.kind = "bgpc";
  rec.dataset = dataset;
  rec.algo = algo;
  rec.fset = to_string(fset);
  rec.threads = threads;
  ColoringOptions opt = bgpc_preset(algo);
  opt.num_threads = threads;
  opt.forbidden_set = fset;
  std::vector<double> times;
  for (int rep = 0; rep <= std::max(reps, 1); ++rep) {
    const ColoringResult r = color_bgpc(g, opt);
    if (rep == 0) continue;  // warmup: graph + color pages now hot
    times.push_back(r.total_seconds * 1e3);
    rec.colors = r.num_colors;
    rec.rounds = r.rounds;
    rec.color_counters = r.total_color_counters();
    rec.conflict_counters = r.total_conflict_counters();
    if (!is_valid_bgpc(g, r.colors)) rec.valid = false;
  }
  rec.wall_ms = median(std::move(times));
  return rec;
}

KernelRecord run_d2gc_mode(const Graph& g, const std::string& dataset,
                           const std::string& algo, ForbiddenSetKind fset,
                           int threads, int reps) {
  KernelRecord rec;
  rec.kind = "d2gc";
  rec.dataset = dataset;
  rec.algo = algo;
  rec.fset = to_string(fset);
  rec.threads = threads;
  ColoringOptions opt = d2gc_preset(algo);
  opt.num_threads = threads;
  opt.forbidden_set = fset;
  std::vector<double> times;
  for (int rep = 0; rep <= std::max(reps, 1); ++rep) {
    const ColoringResult r = color_d2gc(g, opt);
    if (rep == 0) continue;  // warmup
    times.push_back(r.total_seconds * 1e3);
    rec.colors = r.num_colors;
    rec.rounds = r.rounds;
    rec.color_counters = r.total_color_counters();
    rec.conflict_counters = r.total_conflict_counters();
    if (!is_valid_d2gc(g, r.colors)) rec.valid = false;
  }
  rec.wall_ms = median(std::move(times));
  return rec;
}

std::vector<KernelRecord> run_phase_b(bool smoke, int threads, int reps) {
  const std::vector<std::string> bgpc_algos = {"V-V", "V-N2", "N1-N2"};
  const std::vector<std::string> d2gc_algos = {"V-V-64D", "N1-N2"};
  std::vector<std::string> bgpc_sets = dataset_names(false);
  std::vector<std::string> d2gc_sets = dataset_names(true);
  if (smoke) {
    // Two structurally distinct stand-ins keep the smoke run under a
    // minute while still exercising mesh- and overlap-style rows.
    bgpc_sets = {"bone_s", "copapers_s"};
    if (d2gc_sets.size() > 1) d2gc_sets.resize(1);
  }

  // stamped/bitmap are the probe-reduction twins the summary gates on;
  // adaptive is the mode the wall-time gate (tools/bench_gate.py)
  // compares against both of them.
  const ForbiddenSetKind modes[] = {ForbiddenSetKind::kStamped,
                                    ForbiddenSetKind::kBitmap,
                                    ForbiddenSetKind::kAdaptive};
  std::vector<KernelRecord> records;
  for (const auto& name : bgpc_sets) {
    const BipartiteGraph g = load_bipartite(name);
    for (const auto& algo : bgpc_algos)
      for (const ForbiddenSetKind fset : modes)
        records.push_back(run_bgpc_mode(g, name, algo, fset, threads, reps));
  }
  for (const auto& name : d2gc_sets) {
    const Graph g = load_graph(name);
    for (const auto& algo : d2gc_algos)
      for (const ForbiddenSetKind fset : modes)
        records.push_back(run_d2gc_mode(g, name, algo, fset, threads, reps));
  }
  return records;
}

// --- Reporting ------------------------------------------------------

const KernelRecord* find_twin(const std::vector<KernelRecord>& records,
                              const KernelRecord& rec,
                              const std::string& fset) {
  for (const auto& r : records)
    if (r.kind == rec.kind && r.dataset == rec.dataset &&
        r.algo == rec.algo && r.threads == rec.threads && r.fset == fset)
      return &r;
  return nullptr;
}

double probe_reduction_geomean(const std::vector<KernelRecord>& records) {
  std::vector<double> ratios;
  for (const auto& rec : records) {
    if (rec.fset != "bitmap") continue;
    const KernelRecord* twin = find_twin(records, rec, "stamped");
    if (!twin || twin->probes() == 0 || rec.probes() == 0) continue;
    ratios.push_back(static_cast<double>(twin->probes()) /
                     static_cast<double>(rec.probes()));
  }
  return bench::geomean(ratios);
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s)
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  return out;
}

void write_json(const std::string& path, const std::vector<OpRecord>& ops,
                const std::vector<LSweepRecord>& sweep,
                const std::vector<Crossover>& crossovers,
                const std::vector<KernelRecord>& records, bool smoke,
                int threads, int reps) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  os << "{\n  \"schema\": \"gcol-bench-kernels-v2\",\n";
  os << "  \"config\": {\"smoke\": " << (smoke ? "true" : "false")
     << ", \"threads\": " << threads << ", \"reps\": " << reps
     << ", \"aggregation\": \"median\"},\n";
  os << "  \"structure_ops\": [\n";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto& op = ops[i];
    os << "    {\"op\": \"" << json_escape(op.op) << "\", \"stamped_ms\": "
       << op.stamped_ms << ", \"bitmap_ms\": " << op.bitmap_ms
       << ", \"twolevel_ms\": " << op.twolevel_ms << "}"
       << (i + 1 < ops.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"lsweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& r = sweep[i];
    os << "    {\"op\": \"" << json_escape(r.op) << "\", \"l\": " << r.l
       << ", \"stamped_ms\": " << r.stamped_ms
       << ", \"bitmap_ms\": " << r.bitmap_ms
       << ", \"twolevel_ms\": " << r.twolevel_ms << "}"
       << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"crossovers\": [\n";
  for (std::size_t i = 0; i < crossovers.size(); ++i) {
    const auto& c = crossovers[i];
    os << "    {\"op\": \"" << json_escape(c.op)
       << "\", \"bitmap_beats_stamped_from_l\": " << c.bitmap_l
       << ", \"twolevel_beats_stamped_from_l\": " << c.twolevel_l << "}"
       << (i + 1 < crossovers.size() ? "," : "") << "\n";
  }
  // The thresholds the shipped adaptive engine actually uses — kept in
  // the trajectory next to the sweep they were derived from.
  const AdaptiveFsThresholds& t = adaptive_fs_thresholds();
  os << "  ],\n  \"thresholds\": {"
     << "\"net_color_bitmap_max_l\": " << t.net_color_bitmap_max_l
     << ", \"vertex_bitmap_max_l\": " << t.vertex_bitmap_max_l
     << ", \"vertex_bitmap_min_colored_frac\": "
     << t.vertex_bitmap_min_colored_frac
     << ", \"vertex_twolevel_min_l\": " << t.vertex_twolevel_min_l
     << ", \"switch_margin\": " << t.switch_margin << "},\n";
  os << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    os << "    {\"kind\": \"" << r.kind << "\", \"dataset\": \""
       << json_escape(r.dataset) << "\", \"algo\": \""
       << json_escape(r.algo) << "\", \"fset\": \"" << r.fset
       << "\", \"threads\": " << r.threads << ", \"wall_ms\": " << r.wall_ms
       << ", \"colors\": " << r.colors << ", \"rounds\": " << r.rounds
       << ", \"edges_visited\": " << r.edges()
       << ", \"color_probes\": " << r.probes()
       << ", \"conflicts\": " << r.conflict_counters.conflicts
       << ", \"valid\": " << (r.valid ? "true" : "false") << "}"
       << (i + 1 < records.size() ? "," : "") << "\n";
  }
  const double geo = probe_reduction_geomean(records);
  os << "  ],\n  \"summary\": {\"probe_reduction_geomean\": " << geo
     << ", \"probe_reduction_pct\": "
     << (geo > 0.0 ? (1.0 - 1.0 / geo) * 100.0 : 0.0) << "}\n}\n";
  std::ofstream out(path);
  out << os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const bool smoke = args.has("smoke");
  const int threads = static_cast<int>(args.get_int("threads", 4));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const std::string json_path = args.get_string("json", "");

  std::cout << "=== forbidden-set micro-benchmark ===\n"
            << env_banner() << "\n"
            << (smoke ? "smoke" : "full") << " run, threads=" << threads
            << " reps=" << reps << " (median, 1 warmup)\n\n";

  const auto ops = run_phase_a(smoke, reps);
  TextTable ta;
  ta.set_header({"op", "stamped ms", "bitmap ms", "twolevel ms", "speedup"},
                {TextTable::Align::kLeft});
  for (const auto& op : ops)
    ta.add_row({op.op, TextTable::fmt(op.stamped_ms),
                TextTable::fmt(op.bitmap_ms), TextTable::fmt(op.twolevel_ms),
                TextTable::fmt(op.bitmap_ms > 0.0
                                   ? op.stamped_ms / op.bitmap_ms
                                   : 0.0)});
  std::cout << ta.to_string() << "\n";

  const auto sweep = run_lsweep(smoke, reps);
  const auto crossovers = lsweep_crossovers(sweep);
  TextTable tc;
  tc.set_header({"op", "bitmap wins from L", "twolevel wins from L"},
                {TextTable::Align::kLeft});
  const auto fmt_l = [](int l) {
    return l < 0 ? std::string("never")
                 : (l <= 16 ? std::string("always") : TextTable::fmt(
                       static_cast<std::int64_t>(l)));
  };
  for (const auto& c : crossovers)
    tc.add_row({c.op, fmt_l(c.bitmap_l), fmt_l(c.twolevel_l)});
  std::cout << tc.to_string() << "\n";

  const auto records = run_phase_b(smoke, threads, reps);
  TextTable tb;
  tb.set_header({"kernel", "dataset", "algo", "fset", "wall ms", "colors",
                 "probes", "edges", "ok"},
                {TextTable::Align::kLeft});
  bool all_valid = true;
  for (const auto& r : records) {
    all_valid = all_valid && r.valid;
    tb.add_row({r.kind, r.dataset, r.algo, r.fset, TextTable::fmt(r.wall_ms),
                TextTable::fmt(static_cast<std::int64_t>(r.colors)),
                TextTable::fmt_sep(static_cast<std::int64_t>(r.probes())),
                TextTable::fmt_sep(static_cast<std::int64_t>(r.edges())),
                r.valid ? "yes" : "NO"});
  }
  std::cout << tb.to_string();

  const double geo = probe_reduction_geomean(records);
  const double pct = geo > 0.0 ? (1.0 - 1.0 / geo) * 100.0 : 0.0;
  std::cout << "\nprobe-count reduction (bitmap vs stamped, geomean): "
            << TextTable::fmt(geo) << "x (" << TextTable::fmt(pct)
            << "% fewer probes)\n";

  if (!json_path.empty()) {
    write_json(json_path, ops, sweep, crossovers, records, smoke, threads,
               reps);
    std::cout << "json written to " << json_path << "\n";
  }

  if (!all_valid) {
    std::cerr << "FAIL: at least one coloring was invalid\n";
    return 1;
  }
  if (kCountersEnabled && pct < 25.0) {
    std::cerr << "FAIL: probe reduction " << pct
              << "% below the 25% floor\n";
    return 1;
  }
  return 0;
}
