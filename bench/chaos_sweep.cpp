// Chaos benchmark: degradation curves of BGPC under injected faults.
//
// Sweeps FaultPlan drop / reorder / duplicate rates over two execution
// modes — the shared-memory verified pipeline (stale speculative writes
// at the same rate, its native fault kind) and the sharded superstep
// runtime (lossy boundary exchange) — and records how color count,
// wall time, retries, and repair volume degrade as the fault rate
// rises. The robust analogue of bench/fig2_bgpc_sweep: the claim under
// test is not speed but that validity never degrades, only cost.
//
// With --json PATH writes a gcol-report-v1 document (the committed
// BENCH_chaos.json; degradation curves live under the "bench" section,
// aggregate run counters under "metrics"). With --trace-out PATH the
// whole sweep is traced through gcol-trace and written as Chrome
// trace-event JSON. Exit status is nonzero if any run produced an
// invalid coloring or a sharded drop-curve lost monotonicity (the
// Bernoulli streams are threshold-coupled per seed, so the dropped
// volume must be nondecreasing in the rate).
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/dist/dist_bgpc.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/obs/json.hpp"
#include "greedcolor/obs/metrics.hpp"
#include "greedcolor/obs/report.hpp"
#include "greedcolor/obs/trace.hpp"
#include "greedcolor/robust/fault.hpp"
#include "greedcolor/robust/verified.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/table.hpp"

namespace {

using namespace gcol;

struct Point {
  double rate = 0.0;
  color_t colors = 0;
  double wall_ms = 0.0;
  int supersteps = 0;
  std::uint64_t retries = 0;
  vid_t dirty_boundary = 0;
  vid_t repaired = 0;
  std::uint64_t dropped = 0;
  bool degraded = false;
  bool valid = true;
};

struct Curve {
  std::string mode;  ///< "shared" | "sharded"
  std::string kind;  ///< "stale" | "drop" | "reorder" | "dup" | "mixed"
  std::vector<Point> points;

  [[nodiscard]] bool dropped_monotone() const {
    for (std::size_t i = 1; i < points.size(); ++i)
      if (points[i].dropped < points[i - 1].dropped) return false;
    return true;
  }
};

std::string plan_spec(const std::string& kind, double rate) {
  std::ostringstream os;
  os << "seed=13";
  if (rate <= 0.0) return os.str();
  if (kind == "drop") os << ",drop=" << rate;
  if (kind == "reorder") os << ",reorder=" << rate << ",delay-steps=2";
  if (kind == "dup") os << ",dup=" << rate;
  if (kind == "mixed")
    os << ",drop=" << rate << ",reorder=" << rate << ",dup=" << rate;
  return os.str();
}

/// The degradation curves as the "bench" section of a gcol-report-v1
/// document: {kind: "chaos", datasets: [{name, curves: [{mode, kind,
/// dropped_monotone, points: [...]}]}]}.
obs::Json bench_section(
    bool smoke, int ranks,
    const std::vector<std::pair<std::string, std::vector<Curve>>>& sets) {
  obs::Json bench = obs::Json::object();
  bench.set("kind", "chaos");
  bench.set("smoke", smoke);
  bench.set("ranks", ranks);
  obs::Json datasets = obs::Json::array();
  for (const auto& [name, curves] : sets) {
    obs::Json dset = obs::Json::object();
    dset.set("name", name);
    obs::Json jcurves = obs::Json::array();
    for (const Curve& cv : curves) {
      obs::Json jcurve = obs::Json::object();
      jcurve.set("mode", cv.mode);
      jcurve.set("kind", cv.kind);
      jcurve.set("dropped_monotone", cv.dropped_monotone());
      obs::Json points = obs::Json::array();
      for (const Point& p : cv.points) {
        obs::Json jp = obs::Json::object();
        jp.set("rate", p.rate);
        jp.set("colors", static_cast<std::uint64_t>(p.colors));
        jp.set("wall_ms", p.wall_ms);
        jp.set("supersteps", static_cast<std::int64_t>(p.supersteps));
        jp.set("retries", p.retries);
        jp.set("dirty_boundary", static_cast<std::uint64_t>(p.dirty_boundary));
        jp.set("repaired", static_cast<std::uint64_t>(p.repaired));
        jp.set("dropped", p.dropped);
        jp.set("degraded", p.degraded);
        jp.set("valid", p.valid);
        points.push_back(std::move(jp));
      }
      jcurve.set("points", std::move(points));
      jcurves.push_back(std::move(jcurve));
    }
    dset.set("curves", std::move(jcurves));
    datasets.push_back(std::move(dset));
  }
  bench.set("datasets", std::move(datasets));
  return bench;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const bool smoke = args.has("smoke");
  const int ranks = static_cast<int>(args.get_int("ranks", 8));
  const std::string json_path = args.get_string("json", "");
  const std::string trace_path = args.get_string("trace-out", "");
  const bool want_trace = !trace_path.empty();
  gcol::obs::Tracer tracer;
  // Aggregated across every run of the sweep — the report's "metrics"
  // section records total work, not per-point curves (those live under
  // "bench").
  gcol::obs::MetricsRegistry metrics;
  const auto datasets =
      args.has("datasets")
          ? std::vector<std::string>{args.get_string("datasets", "")}
          : (smoke ? std::vector<std::string>{"afshell_s"}
                   : std::vector<std::string>{"afshell_s", "copapers_s",
                                              "movielens_s"});
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.25, 0.5}
            : std::vector<double>{0.0, 0.1, 0.25, 0.5};
  const std::vector<std::string> kinds = {"drop", "reorder", "dup",
                                          "mixed"};

  bench::SweepConfig banner;
  banner.datasets = datasets;
  banner.threads = {1};
  bench::print_banner("Chaos sweep: fault rate vs degradation", banner);

  bool all_valid = true;
  bool all_monotone = true;
  std::vector<std::pair<std::string, std::vector<Curve>>> sets;
  for (const auto& name : datasets) {
    const BipartiteGraph g = load_bipartite(name);
    std::vector<Curve> curves;

    // Shared-memory mode: the verified pipeline's native fault is the
    // stale speculative write; repair is its degradation channel.
    Curve shared{"shared", "stale", {}};
    for (const double rate : rates) {
      const FaultPlan plan =
          FaultPlan::parse(plan_spec("", 0.0) +
                           (rate > 0.0 ? ",stale=" + std::to_string(rate)
                                       : ""));
      ColoringOptions opt = bgpc_preset("N1-N2");
      if (rate > 0.0) opt.fault_plan = &plan;
      if (want_trace) opt.tracer = &tracer;
      const auto r = color_bgpc_verified(g, opt);
      metrics.record_result(r);
      Point p;
      p.rate = rate;
      p.colors = r.num_colors;
      p.wall_ms = r.total_seconds * 1e3;
      p.repaired = r.repaired_vertices;
      p.degraded = r.degraded;
      p.valid = is_valid_bgpc(g, r.colors);
      all_valid = all_valid && p.valid;
      shared.points.push_back(p);
    }
    curves.push_back(shared);

    // Sharded mode: one curve per transport fault kind.
    for (const auto& kind : kinds) {
      Curve curve{"sharded", kind, {}};
      for (const double rate : rates) {
        const FaultPlan plan = FaultPlan::parse(plan_spec(kind, rate));
        DistOptions opt;
        opt.num_ranks = ranks;
        if (rate > 0.0) opt.fault_plan = &plan;
        if (want_trace) opt.tracer = &tracer;
        const auto r = color_bgpc_distributed(g, opt);
        metrics.record_dist(r);
        Point p;
        p.rate = rate;
        p.colors = r.num_colors;
        p.wall_ms = r.total_seconds * 1e3;
        p.supersteps = r.stats.supersteps;
        p.retries = r.stats.retries;
        p.dirty_boundary = r.stats.dirty_boundary;
        p.repaired = r.stats.repair_recolored;
        p.dropped = r.stats.messages_dropped;
        p.degraded = r.degraded;
        p.valid = is_valid_bgpc(g, r.colors) && !r.stats.fallback;
        all_valid = all_valid && p.valid;
        curve.points.push_back(p);
      }
      all_monotone = all_monotone && curve.dropped_monotone();
      curves.push_back(curve);
    }

    std::cout << "--- " << name << " ---\n";
    TextTable t;
    t.set_header({"mode", "kind", "rate", "colors", "ms", "supersteps",
                  "retries", "dirty", "repaired", "valid"});
    for (const auto& cv : curves) {
      for (const auto& p : cv.points)
        t.add_row({cv.mode, cv.kind, TextTable::fmt(p.rate),
                   TextTable::fmt_sep(p.colors), TextTable::fmt(p.wall_ms),
                   TextTable::fmt(static_cast<std::int64_t>(p.supersteps)),
                   TextTable::fmt_sep(static_cast<std::int64_t>(p.retries)),
                   TextTable::fmt_sep(static_cast<std::int64_t>(
                       p.dirty_boundary)),
                   TextTable::fmt_sep(static_cast<std::int64_t>(p.repaired)),
                   p.valid ? "yes" : "NO"});
    }
    std::cout << t.to_string() << "\n";
    sets.emplace_back(name, std::move(curves));
  }

  if (!json_path.empty() || want_trace) {
    obs::RunReport rep("chaos_sweep");
    rep.set_option("smoke", smoke);
    rep.set_option("ranks", ranks);
    rep.section("bench") = bench_section(smoke, ranks, sets);
    metrics.record_tracer(tracer);
    rep.set_metrics(metrics);
    rep.set_tracer(tracer, trace_path);
    if (want_trace) {
      tracer.write_chrome_trace_file(trace_path);
      std::cout << "trace written to " << trace_path << " ("
                << tracer.recorded() << " events)\n";
    }
    if (!json_path.empty()) {
      rep.write_file(json_path);
      std::cout << "json written to " << json_path << "\n";
    }
  }
  if (!all_valid) {
    std::cout << "FAIL: an injected-fault run produced an invalid "
                 "coloring or hit the sequential fallback\n";
    return 1;
  }
  if (!all_monotone) {
    std::cout << "FAIL: dropped-message volume not monotone in the fault "
                 "rate\n";
    return 1;
  }
  std::cout << "expected shape: colors and repair volume drift up with "
               "the fault rate;\nvalidity holds at every point (the "
               "degradation ladder absorbs the loss).\n";
  return 0;
}
