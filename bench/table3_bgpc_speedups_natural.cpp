// Table III reproduction: geometric-mean BGPC speedups over the
// sequential and parallel V-V baselines with the NATURAL column order.
//
// Paper reference (16 physical cores): V-V 2.76x over seq, V-V-64D
// 4.05x, V-N2 6.01x, N1-N2 11.38x (4.12x over parallel V-V) with a
// 1.08x color increase for N1-N2.
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  bench::SweepConfig config;
  config.datasets = args.has("datasets")
                        ? std::vector<std::string>{args.get_string(
                              "datasets", "")}
                        : dataset_names();
  config.algos = bgpc_preset_names();
  config.threads = args.get_int_list("threads", {2, 4, 8, 16});
  config.order = OrderingKind::kNatural;
  config.reps = static_cast<int>(args.get_int("reps", 1));
  config.forbidden_set = bench::forbidden_set_from_args(args);
  bench::print_bgpc_speedup_table(
      config, "Table III: BGPC speedups, natural order");
  std::cout
      << "\npaper (16 cores): colors/V-V: 1.00..1.08; t=16 speedups "
         "2.76 (V-V), 4.00 (V-V-64),\n4.05 (V-V-64D), 5.84 (V-Ninf), "
         "5.85 (V-N1), 6.01 (V-N2), 11.38 (N1-N2), 7.50 (N2-N2).\n"
         "On a single physical core the wall-clock columns flatten; "
         "the 'work V-V/alg'\ncolumn carries the machine-independent "
         "ordering (V-N* > 1, N1-N2 largest on\nskewed data).\n";
  return 0;
}
