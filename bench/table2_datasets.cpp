// Table II reproduction: dataset properties plus the sequential BGPC
// execution time and color count under the natural and smallest-last
// column orders (ordering time excluded, as in the paper).
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/graph/graph_stats.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/env.hpp"
#include "greedcolor/util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 3));

  std::cout << "=== Table II: datasets and sequential BGPC baselines ===\n"
            << env_banner() << "\n\n";

  TextTable t;
  t.set_header({"Matrix-Graph", "mimics", "#rows", "#cols", "#nnz",
                "deg.max", "deg.sd", "nat. s", "nat. #col", "SL s",
                "SL #col", "BGPC/D2GC"},
               {TextTable::Align::kLeft, TextTable::Align::kLeft});
  for (const auto& info : dataset_registry()) {
    const BipartiteGraph g = load_bipartite(info.name);
    const DegreeStats nd = net_degree_stats(g);

    const auto natural =
        bench::run_bgpc_sequential(g, info.name, {}, reps);
    const auto sl_order = make_ordering(g, OrderingKind::kSmallestLast);
    const auto sl = bench::run_bgpc_sequential(g, info.name, sl_order, reps);

    t.add_row({info.name, info.mimics, TextTable::fmt_sep(g.num_nets()),
               TextTable::fmt_sep(g.num_vertices()),
               TextTable::fmt_sep(g.num_edges()),
               TextTable::fmt_sep(nd.max), TextTable::fmt(nd.stddev),
               TextTable::fmt(natural.seconds, 3),
               TextTable::fmt_sep(natural.colors),
               TextTable::fmt(sl.seconds, 3), TextTable::fmt_sep(sl.colors),
               std::string(info.used_for_bgpc ? "Y" : "-") + "/" +
                   (info.used_for_d2gc ? "Y" : "-")});
  }
  std::cout << t.to_string()
            << "\npaper shape: deg.max is the color lower bound; "
               "smallest-last lowers #colors\non the irregular graphs "
               "while costing sequential time (the natural numbering\n"
               "of the synthetic meshes is already lexicographic-optimal,"
               " so SL gains show\nmainly on movielens_s/copapers_s-style "
               "skew).\n";
  return 0;
}
