// Table IV reproduction: geometric-mean BGPC speedups over the
// sequential and parallel V-V baselines with ColPack's SMALLEST-LAST
// column order (ordering time excluded, as in the paper).
//
// Paper reference (16 physical cores): V-V 3.78x over seq, V-V-64D
// 6.86x, V-N2 10.09x, N1-N2 16.76x (4.43x over parallel V-V, +9%
// colors).
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  bench::SweepConfig config;
  config.datasets = args.has("datasets")
                        ? std::vector<std::string>{args.get_string(
                              "datasets", "")}
                        : dataset_names();
  config.algos = bgpc_preset_names();
  config.threads = args.get_int_list("threads", {2, 4, 8, 16});
  config.order = OrderingKind::kSmallestLast;
  config.reps = static_cast<int>(args.get_int("reps", 1));
  config.forbidden_set = bench::forbidden_set_from_args(args);
  bench::print_bgpc_speedup_table(
      config, "Table IV: BGPC speedups, smallest-last order");
  std::cout
      << "\npaper (16 cores): colors/V-V: 0.99..1.10; t=16 speedups "
         "3.78 (V-V), 6.41 (V-V-64),\n6.86 (V-V-64D), 9.20 (V-Ninf), "
         "10.07 (V-N1), 10.09 (V-N2), 16.76 (N1-N2),\n11.19 (N2-N2). "
         "SL makes the sequential baseline slower, so all speedups "
         "rise\nrelative to Table III.\n";
  return 0;
}
