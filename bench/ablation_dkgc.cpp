// Ablation: distance-k coloring for k = 1..4 — the paper's Section VIII
// future-work direction ("the optimistic techniques ... can be extended
// to the distance-k graph coloring problem"). Sequential BFS-ball
// greedy vs the parallel engine running BGPC on ball nets.
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/core/d1gc.hpp"
#include "greedcolor/core/dkgc.hpp"
#include "greedcolor/graph/builder.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/graph/generators.hpp"
#include "greedcolor/graph/graph_stats.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/env.hpp"
#include "greedcolor/util/table.hpp"
#include "greedcolor/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const ForbiddenSetKind fset = bench::forbidden_set_from_args(args);
  const int threads = static_cast<int>(args.get_int("threads", 16));
  const int kmax = static_cast<int>(args.get_int("kmax", 4));

  std::cout << "=== Ablation: distance-k coloring (paper SVIII) ===\n"
            << env_banner() << "\n\n";

  struct Instance {
    std::string name;
    Graph graph;
  };
  std::vector<Instance> instances;
  instances.push_back(
      {"geometric-12k", build_graph(gen_random_geometric(
                            static_cast<vid_t>(args.get_int("nodes", 12000)),
                            0.012, 3))});
  instances.push_back({"mesh-90x90", build_graph(gen_mesh2d(90, 90, 1))});

  for (const auto& inst : instances) {
    std::cout << "--- " << inst.name << ": " << signature(inst.graph)
              << " ---\n";
    TextTable t;
    t.set_header({"k", "seq colors", "seq ms", "par colors", "par ms",
                  "par rounds", "valid"});
    for (int k = 1; k <= kmax; ++k) {
      WallTimer timer;
      const auto seq = color_dkgc_sequential(inst.graph, k);
      const double seq_ms = timer.milliseconds();

      ColoringOptions opt = bgpc_preset("N1-N2");
      opt.num_threads = threads;
      opt.forbidden_set = fset;
      timer.reset();
      const auto par = color_dkgc(inst.graph, k, opt);
      const double par_ms = timer.milliseconds();
      const bool ok = is_valid_dkgc(inst.graph, k, par.colors) &&
                      is_valid_dkgc(inst.graph, k, seq.colors);
      t.add_row({TextTable::fmt(static_cast<std::int64_t>(k)),
                 TextTable::fmt_sep(seq.num_colors), TextTable::fmt(seq_ms),
                 TextTable::fmt_sep(par.num_colors), TextTable::fmt(par_ms),
                 TextTable::fmt(static_cast<std::int64_t>(par.rounds)),
                 ok ? "yes" : "NO"});
    }
    std::cout << t.to_string() << "\n";
  }
  std::cout << "expected shape: colors and cost grow steeply with k "
               "(ball sizes explode);\nthe parallel engine over-colors "
               "odd k (it enforces distance k+1) but stays valid.\n"
               "NOTE: the parallel column includes the one-off ball-net "
               "construction, which\ndominates for large k.\n";
  return 0;
}
