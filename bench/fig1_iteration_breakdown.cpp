// Figure 1 reproduction: per-iteration coloring and conflict-removal
// times for six algorithms on the coPapersDBLP stand-in, 16 threads.
//
// The paper's observations this harness re-checks:
//   1. most time is spent in the coloring phases,
//   2. most time is spent in the first iterations,
//   3. net-based conflict removal at EVERY iteration can hurt (V-Ninf),
//   4. net-based coloring helps in the first iteration (N1-N2),
//   5. a second net-based coloring round adds little (N2-N2).
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/csv.hpp"
#include "greedcolor/util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const std::string dataset = args.get_string("dataset", "copapers_s");
  const int threads = static_cast<int>(args.get_int("threads", 16));
  const int max_rounds_shown = static_cast<int>(args.get_int("rounds", 5));
  const std::string csv_path =
      args.get_string("csv", "fig1_iteration_breakdown.csv");

  bench::SweepConfig config;
  config.datasets = {dataset};
  config.threads = {threads};
  config.forbidden_set = bench::forbidden_set_from_args(args);
  bench::print_banner("Figure 1: per-iteration phase times", config);

  const std::vector<std::string> algos = {"V-V-64D", "V-Ninf", "V-N1",
                                          "V-N2",    "N1-N2",  "N2-N2"};
  const BipartiteGraph g = load_bipartite(dataset);

  CsvWriter csv(csv_path);
  csv.write_row({"algorithm", "round", "phase", "msec", "queue", "conflicts"});

  TextTable t;
  t.set_header({"algorithm", "round", "|W|", "coloring ms", "conflict ms",
                "kernels"},
               {TextTable::Align::kLeft});
  for (const auto& algo : algos) {
    ColoringOptions opt = bgpc_preset(algo);
    opt.num_threads = threads;
    opt.forbidden_set = config.forbidden_set;
    const auto r = color_bgpc(g, opt);
    for (const auto& it : r.iterations) {
      if (it.round > max_rounds_shown) break;
      std::string kernels = it.net_based_coloring ? "N-" : "V-";
      kernels += it.net_based_conflict ? "N" : "V";
      t.add_row({algo, TextTable::fmt(static_cast<std::int64_t>(it.round)),
                 TextTable::fmt_sep(static_cast<std::int64_t>(it.queue_size)),
                 TextTable::fmt(it.color_seconds * 1e3),
                 TextTable::fmt(it.conflict_seconds * 1e3), kernels});
      csv.row(algo, it.round, "color", it.color_seconds * 1e3,
              it.queue_size, it.conflicts);
      csv.row(algo, it.round, "conflict", it.conflict_seconds * 1e3,
              it.queue_size, it.conflicts);
    }
    t.add_rule();
  }
  std::cout << t.to_string() << "\nseries written to " << csv_path << "\n";
  return 0;
}
