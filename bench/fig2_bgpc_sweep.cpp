// Figure 2 reproduction: execution times (t = 2,4,8,16) and color
// counts for all eight BGPC algorithms on all eight datasets, natural
// order. Prints one block per dataset (the figure's subplots) and
// writes the full series to CSV for plotting.
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/csv.hpp"
#include "greedcolor/util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  bench::SweepConfig config;
  config.datasets = args.has("datasets")
                        ? std::vector<std::string>{args.get_string(
                              "datasets", "")}
                        : dataset_names();
  config.algos = bgpc_preset_names();
  config.threads = args.get_int_list("threads", {2, 4, 8, 16});
  config.reps = static_cast<int>(args.get_int("reps", 1));
  config.forbidden_set = bench::forbidden_set_from_args(args);
  const std::string csv_path = args.get_string("csv", "fig2_bgpc_sweep.csv");

  bench::print_banner("Figure 2: BGPC time & colors, all algorithms",
                      config);
  const auto records = bench::run_bgpc_sweep(config);

  CsvWriter csv(csv_path);
  csv.write_row({"dataset", "algorithm", "threads", "seconds", "colors",
                 "rounds", "work"});

  for (const auto& dataset : config.datasets) {
    std::cout << "--- " << dataset << " ---\n";
    TextTable t;
    std::vector<std::string> header = {"algorithm"};
    for (const int th : config.threads)
      header.push_back("t=" + std::to_string(th) + " ms");
    header.push_back("#colors(t=max)");
    header.push_back("work(t=max)");
    t.set_header(std::move(header), {TextTable::Align::kLeft});

    const auto& seq = bench::find(records, dataset, "seq", 1);
    t.add_row({"seq V-V", TextTable::fmt(seq.seconds * 1e3), "", "", "",
               TextTable::fmt_sep(seq.colors),
               TextTable::fmt_sep(static_cast<std::int64_t>(seq.work))});
    t.add_rule();
    for (const auto& algo : config.algos) {
      std::vector<std::string> row = {algo};
      const bench::SweepRecord* last = nullptr;
      for (const int th : config.threads) {
        const auto& r = bench::find(records, dataset, algo, th);
        row.push_back(TextTable::fmt(r.seconds * 1e3) +
                      (r.valid ? "" : "!"));
        last = &r;
      }
      row.push_back(TextTable::fmt_sep(last->colors));
      row.push_back(TextTable::fmt_sep(static_cast<std::int64_t>(last->work)));
      t.add_row(std::move(row));
      for (const int th : config.threads) {
        const auto& r = bench::find(records, dataset, algo, th);
        csv.row(dataset, algo, r.threads, r.seconds, r.colors, r.rounds,
                r.work);
      }
    }
    std::cout << t.to_string() << "\n";
  }
  std::cout << "series written to " << csv_path << "\n"
            << "paper shape: V-N* beat V-V everywhere; N1-N2 is the "
               "fastest on 16 real cores\n(here the work column carries "
               "that comparison; '!' marks an invalid run).\n";
  return 0;
}
