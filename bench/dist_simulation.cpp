// Related-work context bench: the distributed-memory BSP formulation
// (Bozdağ et al.) that the paper's net-based approach descends from,
// run on the sharded superstep runtime per rank count. Reports the
// quantities that motivated a shared-memory redesign: boundary
// fraction, supersteps, messages per vertex, and the color cost
// relative to the shared-memory N1-N2.
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/dist/dist_bgpc.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const auto datasets =
      args.has("datasets")
          ? std::vector<std::string>{args.get_string("datasets", "")}
          : std::vector<std::string>{"afshell_s", "copapers_s",
                                     "movielens_s"};
  const std::vector<int> ranks = args.get_int_list("ranks", {2, 4, 8, 16});

  bench::SweepConfig banner;
  banner.datasets = datasets;
  banner.threads = {1};
  bench::print_banner(
      "Distributed-memory BSP simulation (related-work baseline)", banner);

  for (const auto& name : datasets) {
    const BipartiteGraph g = load_bipartite(name);
    const auto shared = color_bgpc(g, bgpc_preset("N1-N2"));
    std::cout << "--- " << name << " (shared-memory N1-N2: "
              << shared.num_colors << " colors) ---\n";
    TextTable t;
    t.set_header({"ranks", "boundary %", "supersteps", "msgs/vertex",
                  "conflicts", "colors", "ms", "valid"});
    for (const int p : ranks) {
      DistOptions opt;
      opt.num_ranks = p;
      const auto r = color_bgpc_distributed(g, opt);
      const bool ok = is_valid_bgpc(g, r.colors);
      t.add_row(
          {TextTable::fmt(static_cast<std::int64_t>(p)),
           TextTable::fmt(100.0 * r.stats.boundary_vertices /
                          g.num_vertices()),
           TextTable::fmt(static_cast<std::int64_t>(r.stats.supersteps)),
           TextTable::fmt(static_cast<double>(r.stats.messages_sent) /
                          g.num_vertices()),
           TextTable::fmt_sep(static_cast<std::int64_t>(r.stats.conflicts)),
           TextTable::fmt_sep(r.num_colors),
           TextTable::fmt(r.total_seconds * 1e3), ok ? "yes" : "NO"});
    }
    std::cout << t.to_string() << "\n";
  }
  std::cout << "expected shape: boundary fraction and message volume grow "
               "with rank count —\nthe communication cost the paper's "
               "shared-memory optimism avoids entirely.\n";
  return 0;
}
