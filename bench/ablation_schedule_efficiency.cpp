// Ablation: what balanced colorings buy the downstream computation.
//
// Section V argues the cardinality imbalance barely hurts on one
// multicore CPU but "the impact of the imbalance increases with the
// number of processors/cores". ColorSchedule::stats quantifies that:
// for each balancing policy we report the schedule's parallel
// efficiency (items / (P x span)) across a sweep of core counts P —
// the many-core projection the paper reasons about.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/sched/color_schedule.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const ForbiddenSetKind fset = bench::forbidden_set_from_args(args);
  const auto datasets =
      args.has("datasets")
          ? std::vector<std::string>{args.get_string("datasets", "")}
          : std::vector<std::string>{"copapers_s", "movielens_s",
                                     "uk2002_s"};
  const int threads = static_cast<int>(args.get_int("threads", 16));
  const std::vector<int> cores =
      args.get_int_list("cores", {2, 8, 16, 64, 256});

  bench::SweepConfig banner;
  banner.forbidden_set = fset;
  banner.datasets = datasets;
  banner.threads = {threads};
  bench::print_banner(
      "Ablation: schedule efficiency vs core count (Section V)", banner);

  for (const auto& name : datasets) {
    const BipartiteGraph g = load_bipartite(name);
    std::cout << "--- " << name << " ---\n";
    TextTable t;
    std::vector<std::string> header = {"run", "#sets", "sd"};
    for (const int p : cores)
      header.push_back("eff P=" + std::to_string(p));
    t.set_header(std::move(header), {TextTable::Align::kLeft});
    for (const auto policy : {BalancePolicy::kNone, BalancePolicy::kB1,
                              BalancePolicy::kB2}) {
      ColoringOptions opt = bgpc_preset("N1-N2");
      opt.num_threads = threads;
      opt.forbidden_set = fset;
      opt.balance = policy;
      const auto r = color_bgpc(g, opt);
      if (!is_valid_bgpc(g, r.colors)) {
        std::cerr << "invalid coloring\n";
        continue;
      }
      const ColorSchedule sched = ColorSchedule::build(r.colors);
      double sd = 0.0;
      {
        // stddev of class sizes, for context
        double sum = 0, sumsq = 0;
        for (color_t c = 0; c < sched.num_classes(); ++c) {
          const double s = sched.class_size(c);
          sum += s;
          sumsq += s * s;
        }
        const double mean = sum / sched.num_classes();
        sd = std::sqrt(std::max(0.0, sumsq / sched.num_classes() -
                                         mean * mean));
      }
      std::vector<std::string> row = {
          "N1-N2-" + to_string(policy),
          TextTable::fmt_sep(sched.num_classes()), TextTable::fmt(sd)};
      for (const int p : cores)
        row.push_back(TextTable::fmt(sched.stats(p).efficiency));
      t.add_row(std::move(row));
    }
    std::cout << t.to_string() << "\n";
  }
  std::cout << "expected shape: efficiencies are close at small P and "
               "diverge as P grows —\nB1/B2 hold up longer, which is "
               "Section V's many-core argument.\n";
  return 0;
}
