// Ablation: vertex orderings (and the dynamic DSATUR baseline) against
// coloring quality and cost — the menu behind Tables III vs IV.
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/core/dsatur.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/table.hpp"
#include "greedcolor/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const ForbiddenSetKind fset = bench::forbidden_set_from_args(args);
  const auto datasets =
      args.has("datasets")
          ? std::vector<std::string>{args.get_string("datasets", "")}
          : std::vector<std::string>{"movielens_s", "copapers_s",
                                     "afshell_s", "uk2002_s"};
  const int threads = static_cast<int>(args.get_int("threads", 16));

  bench::SweepConfig banner;
  banner.forbidden_set = fset;
  banner.datasets = datasets;
  banner.threads = {threads};
  bench::print_banner("Ablation: orderings vs colors and cost", banner);

  const std::vector<OrderingKind> kinds = {
      OrderingKind::kNatural, OrderingKind::kRandom,
      OrderingKind::kLargestFirst, OrderingKind::kSmallestLast,
      OrderingKind::kIncidenceDegree};

  for (const auto& name : datasets) {
    const BipartiteGraph g = load_bipartite(name);
    std::cout << "--- " << name << " (L=" << g.max_net_degree() << ") ---\n";
    TextTable t;
    t.set_header({"ordering", "order ms", "seq colors", "N1-N2 colors",
                  "N1-N2 ms"},
                 {TextTable::Align::kLeft});
    for (const auto kind : kinds) {
      WallTimer timer;
      const auto order = make_ordering(g, kind, 1);
      const double order_ms = timer.milliseconds();
      const auto seq = color_bgpc_sequential(g, order);
      ColoringOptions opt = bgpc_preset("N1-N2");
      opt.num_threads = threads;
      opt.forbidden_set = fset;
      const auto par = color_bgpc(g, opt, order);
      const bool ok = is_valid_bgpc(g, par.colors);
      t.add_row({to_string(kind), TextTable::fmt(order_ms),
                 TextTable::fmt_sep(seq.num_colors),
                 TextTable::fmt_sep(par.num_colors) + (ok ? "" : "!"),
                 TextTable::fmt(par.total_seconds * 1e3)});
    }
    // DSATUR: the ordering is dynamic, so it is its own (sequential)
    // coloring algorithm; shown as the quality reference line.
    const auto ds = color_bgpc_dsatur(g);
    t.add_row({"dsatur (seq)", "-", TextTable::fmt_sep(ds.num_colors), "-",
               TextTable::fmt(ds.total_seconds * 1e3)});
    std::cout << t.to_string() << "\n";
  }
  std::cout << "expected shape: smallest-last and incidence-degree lower "
               "colors vs random;\nDSATUR is the quality ceiling at the "
               "highest sequential cost.\n";
  return 0;
}
