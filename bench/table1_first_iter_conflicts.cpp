// Table I reproduction: number of uncolored (remaining) vertices after
// the first iteration when the most-optimistic net coloring (Alg. 6),
// its reverse-first-fit variant, and the two-pass Alg. 8 are used.
//
// Paper reference (16 threads):
//   bone010        |V_B| = 986,703: 863,785 / 806,264 / 610,924
//   coPapersDBLP   |V_B| = 540,486: 409,621 / 303,152 / 133,874
// Expected shape: Alg. 6 >> Alg. 6+reverse > Alg. 8.
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  bench::SweepConfig config;
  config.datasets =
      args.has("datasets")
          ? std::vector<std::string>{args.get_string("datasets", "")}
          : std::vector<std::string>{"bone_s", "copapers_s"};
  const int threads = static_cast<int>(args.get_int("threads", 16));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  config.threads = {threads};
  config.reps = reps;
  config.forbidden_set = bench::forbidden_set_from_args(args);
  bench::print_banner("Table I: |W_next| after the first iteration",
                      config);

  TextTable t;
  t.set_header({"Matrix-Graph", "|VB|", "Alg.6", "Alg.6+reverse", "Alg.8"},
               {TextTable::Align::kLeft});
  for (const auto& name : config.datasets) {
    const BipartiteGraph g = load_bipartite(name);
    auto remaining_after_round1 = [&](bool v1, bool v1_reverse) {
      ColoringOptions opt = bgpc_preset("N1-N2");
      opt.net_v1 = v1;
      opt.net_v1_reverse = v1_reverse;
      opt.num_threads = threads;
      opt.forbidden_set = config.forbidden_set;
      std::size_t worst = 0;
      for (int rep = 0; rep < reps; ++rep) {
        const auto r = color_bgpc(g, opt);
        worst = std::max(worst, r.iterations.front().conflicts);
      }
      return worst;
    };
    const auto alg6 = remaining_after_round1(true, false);
    const auto alg6r = remaining_after_round1(true, true);
    const auto alg8 = remaining_after_round1(false, false);
    t.add_row({name, TextTable::fmt_sep(g.num_nets()),
               TextTable::fmt_sep(static_cast<std::int64_t>(alg6)),
               TextTable::fmt_sep(static_cast<std::int64_t>(alg6r)),
               TextTable::fmt_sep(static_cast<std::int64_t>(alg8))});
  }
  std::cout << t.to_string()
            << "\npaper (16 threads): bone010 863,785 / 806,264 / "
               "610,924 of 986,703;\n"
               "coPapersDBLP 409,621 / 303,152 / 133,874 of 540,486.\n"
               "Expected shape: Alg.6 >> Alg.6+reverse > Alg.8.\n"
               "CAVEAT: the paper's mesh-graph (bone010) conflicts are "
               "dominated by *races*\nbetween truly concurrent threads "
               "reusing the same small first-fit colors; on a\nhost with "
               "a single physical core OpenMP threads serialize and that "
               "mechanism\nvanishes, so the shape only reproduces on the "
               "overlap-driven copapers_s row.\nSee EXPERIMENTS.md.\n";
  return 0;
}
