// Ablation: the ADAPTIVE hybrid (paper SVIII's "better net-based (or
// hybrid) coloring approach" direction) against the fixed schedules it
// generalizes. The hybrid picks net kernels from the live queue size:
// net coloring while |W| is a majority (at most twice), net conflict
// removal while |W| >= 5% of the vertices.
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const ForbiddenSetKind fset = bench::forbidden_set_from_args(args);
  const auto datasets = args.has("datasets")
                            ? std::vector<std::string>{args.get_string(
                                  "datasets", "")}
                            : dataset_names();
  const int threads = static_cast<int>(args.get_int("threads", 16));
  const int reps = static_cast<int>(args.get_int("reps", 3));

  bench::SweepConfig banner;
  banner.forbidden_set = fset;
  banner.datasets = datasets;
  banner.threads = {threads};
  banner.reps = reps;
  bench::print_banner("Ablation: ADAPTIVE hybrid vs fixed schedules",
                      banner);

  TextTable t;
  t.set_header({"dataset", "algo", "ms", "colors", "rounds", "work"},
               {TextTable::Align::kLeft, TextTable::Align::kLeft});
  for (const auto& name : datasets) {
    const BipartiteGraph g = load_bipartite(name);
    for (const std::string algo : {"V-N2", "N1-N2", "N2-N2", "ADAPTIVE"}) {
      ColoringOptions opt = bgpc_preset(algo);
      opt.num_threads = threads;
      opt.forbidden_set = fset;
      const auto rec = bench::run_bgpc_once(g, name, opt, {}, reps, true);
      t.add_row({name, algo, TextTable::fmt(rec.seconds * 1e3) +
                                 (rec.valid ? "" : "!"),
                 TextTable::fmt_sep(rec.colors),
                 TextTable::fmt(static_cast<std::int64_t>(rec.rounds)),
                 TextTable::fmt_sep(static_cast<std::int64_t>(rec.work))});
    }
    t.add_rule();
  }
  std::cout << t.to_string()
            << "\nexpected shape: ADAPTIVE tracks the best fixed schedule "
               "per instance —\nN1/N2-like on skewed graphs, V-N2-like "
               "once conflicts are sparse — without tuning.\n";
  return 0;
}
