// Table VI reproduction: effect of the balancing heuristics B1/B2 on
// coloring time, number of color sets, average cardinality, and the
// cardinality standard deviation for V-N2 and N1-N2, normalized to the
// unbalanced (-U) runs. Geometric means across the dataset suite.
//
// Paper reference (16 threads): V-N2-B1 0.95/1.04/0.96/0.69,
// V-N2-B2 0.95/1.13/0.89/0.25, N1-N2-B1 0.99/1.04/0.96/0.84,
// N1-N2-B2 0.99/1.09/0.91/0.62 (time / #sets / avg card / stddev).
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/core/color_stats.hpp"
#include "greedcolor/core/recolor.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/table.hpp"
#include "greedcolor/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const ForbiddenSetKind fset = bench::forbidden_set_from_args(args);
  const auto datasets = args.has("datasets")
                            ? std::vector<std::string>{args.get_string(
                                  "datasets", "")}
                            : dataset_names();
  const int threads = static_cast<int>(args.get_int("threads", 16));
  const int reps = static_cast<int>(args.get_int("reps", 3));

  bench::SweepConfig banner_cfg;
  banner_cfg.forbidden_set = fset;
  banner_cfg.datasets = datasets;
  banner_cfg.threads = {threads};
  banner_cfg.reps = reps;
  bench::print_banner("Table VI: balancing heuristics B1/B2", banner_cfg);

  struct Outcome {
    double seconds = 0.0;
    double num_sets = 0.0;
    double avg_card = 0.0;
    double stddev = 0.0;
  };
  auto measure = [&](const BipartiteGraph& g, const std::string& algo,
                     BalancePolicy policy) {
    ColoringOptions opt = bgpc_preset(algo);
    opt.num_threads = threads;
    opt.forbidden_set = fset;
    opt.balance = policy;
    Outcome best;
    best.seconds = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      const auto r = color_bgpc(g, opt);
      if (!is_valid_bgpc(g, r.colors))
        std::cerr << "WARNING: invalid coloring " << algo << "\n";
      const auto s = color_class_stats(r.colors);
      if (r.total_seconds < best.seconds)
        best = {r.total_seconds, static_cast<double>(s.num_colors), s.mean,
                s.stddev};
    }
    return best;
  };

  // The offline "least-used" post-pass: the expensive alternative the
  // paper's Section V declines to run online — shown as the balance
  // ceiling. Time includes the base U coloring plus the post-pass.
  auto measure_lu = [&](const BipartiteGraph& g, const std::string& algo) {
    ColoringOptions opt = bgpc_preset(algo);
    opt.num_threads = threads;
    opt.forbidden_set = fset;
    Outcome best;
    best.seconds = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      auto r = color_bgpc(g, opt);
      WallTimer post;
      balanced_recolor_bgpc(g, r.colors);
      const double seconds = r.total_seconds + post.seconds();
      if (!is_valid_bgpc(g, r.colors))
        std::cerr << "WARNING: invalid LU coloring\n";
      const auto s = color_class_stats(r.colors);
      if (seconds < best.seconds)
        best = {seconds, static_cast<double>(s.num_colors), s.mean,
                s.stddev};
    }
    return best;
  };

  TextTable t;
  t.set_header({"Algorithm", "time", "#sets", "avg card", "stddev"},
               {TextTable::Align::kLeft});
  for (const std::string algo : {"V-N2", "N1-N2"}) {
    t.add_row({algo + "-U", "1.00", "1.00", "1.00", "1.00"});
    for (int variant = 0; variant < 3; ++variant) {
      std::vector<double> rt, rsets, rcard, rsd;
      for (const auto& dataset : datasets) {
        const BipartiteGraph g = load_bipartite(dataset);
        const Outcome u = measure(g, algo, BalancePolicy::kNone);
        const Outcome b =
            variant == 0   ? measure(g, algo, BalancePolicy::kB1)
            : variant == 1 ? measure(g, algo, BalancePolicy::kB2)
                           : measure_lu(g, algo);
        rt.push_back(b.seconds / u.seconds);
        rsets.push_back(b.num_sets / u.num_sets);
        rcard.push_back(b.avg_card / u.avg_card);
        // A perfectly uniform unbalanced run (stddev 0, e.g. on a
        // regular mesh) has nothing to improve; count it as ratio 1.
        rsd.push_back(u.stddev > 0.0 ? b.stddev / u.stddev : 1.0);
      }
      const std::string label =
          variant == 0 ? "-B1" : variant == 1 ? "-B2" : "-LU (offline)";
      t.add_row({algo + label, TextTable::fmt(bench::geomean(rt)),
                 TextTable::fmt(bench::geomean(rsets)),
                 TextTable::fmt(bench::geomean(rcard)),
                 TextTable::fmt(bench::geomean(rsd))});
    }
    t.add_rule();
  }
  std::cout << t.to_string()
            << "\npaper (16 threads, normalized to -U): B1 time ~1.0 "
               "with stddev 0.69-0.84x;\nB2 time ~1.0 with stddev "
               "0.25-0.62x at ~1.1x color sets — balancing is free.\n";
  return 0;
}
