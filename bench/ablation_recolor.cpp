// Ablation: iterated-greedy recoloring after each parallel algorithm —
// how much of the optimistic variants' color inflation (paper: +8% for
// N1-N2) a cheap sequential post-pass can claw back.
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/core/recolor.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/table.hpp"
#include "greedcolor/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const ForbiddenSetKind fset = bench::forbidden_set_from_args(args);
  const auto datasets =
      args.has("datasets")
          ? std::vector<std::string>{args.get_string("datasets", "")}
          : std::vector<std::string>{"copapers_s", "movielens_s",
                                     "bone_s"};
  const int threads = static_cast<int>(args.get_int("threads", 16));

  bench::SweepConfig banner;
  banner.forbidden_set = fset;
  banner.datasets = datasets;
  banner.threads = {threads};
  bench::print_banner("Ablation: iterated-greedy recoloring", banner);

  for (const auto& name : datasets) {
    const BipartiteGraph g = load_bipartite(name);
    std::cout << "--- " << name << " (L=" << g.max_net_degree() << ") ---\n";
    TextTable t;
    t.set_header({"algorithm", "colors", "after 1 pass", "at fixpoint",
                  "color ms", "recolor ms"},
                 {TextTable::Align::kLeft});
    for (const std::string algo : {"V-V-64D", "V-N2", "N1-N2", "N2-N2"}) {
      ColoringOptions opt = bgpc_preset(algo);
      opt.num_threads = threads;
      opt.forbidden_set = fset;
      auto r = color_bgpc(g, opt);
      if (!is_valid_bgpc(g, r.colors)) {
        std::cerr << "invalid base coloring for " << algo << "\n";
        continue;
      }
      auto once = r.colors;
      WallTimer timer;
      const color_t after_one = recolor_bgpc(g, once);
      const double one_ms = timer.milliseconds();
      auto fix = r.colors;
      const color_t after_fix = recolor_bgpc_to_fixpoint(g, fix);
      t.add_row({algo, TextTable::fmt_sep(r.num_colors),
                 TextTable::fmt_sep(after_one),
                 TextTable::fmt_sep(after_fix),
                 TextTable::fmt(r.total_seconds * 1e3),
                 TextTable::fmt(one_ms)});
    }
    std::cout << t.to_string() << "\n";
  }
  std::cout << "expected shape: one pass recovers most of the optimistic "
               "variants' color\ninflation at roughly the cost of one "
               "sequential coloring.\n";
  return 0;
}
