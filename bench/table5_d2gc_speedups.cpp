// Table V reproduction: D2GC speedups on the five structurally
// symmetric matrices, natural order, averaged over repetitions.
//
// Paper reference (16 cores, 10 reps): V-V-64D 6.11x over sequential
// V-V, V-N1 8.97x, V-N2 8.87x, N1-N2 13.20x (2.00x over V-V-64D, +9%
// colors).
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  bench::SweepConfig config;
  config.datasets = args.has("datasets")
                        ? std::vector<std::string>{args.get_string(
                              "datasets", "")}
                        : dataset_names(/*d2gc_only=*/true);
  config.algos = d2gc_preset_names();  // V-V-64D, V-N1, V-N2, N1-N2
  config.threads = args.get_int_list("threads", {2, 4, 8, 16});
  config.reps = static_cast<int>(args.get_int("reps", 3));
  config.forbidden_set = bench::forbidden_set_from_args(args);
  bench::print_banner("Table V: D2GC speedups, natural order", config);

  const auto records = bench::run_d2gc_sweep(config);
  const int t_max = config.threads.back();

  TextTable t;
  std::vector<std::string> header = {"Algorithm", "colors/V-V-64D"};
  for (const int th : config.threads)
    header.push_back("t=" + std::to_string(th));
  header.push_back("vs 64D t=" + std::to_string(t_max));
  header.push_back("work 64D/alg");
  t.set_header(std::move(header), {TextTable::Align::kLeft});

  for (const auto& algo : config.algos) {
    std::vector<double> color_ratio, vs_64d, work_ratio;
    std::map<int, std::vector<double>> vs_seq;
    for (const auto& dataset : config.datasets) {
      const auto& seq = bench::find(records, dataset, "seq", 1);
      const auto& base = bench::find(records, dataset, "V-V-64D", t_max);
      const auto& at_max = bench::find(records, dataset, algo, t_max);
      color_ratio.push_back(static_cast<double>(at_max.colors) /
                            static_cast<double>(base.colors));
      vs_64d.push_back(base.seconds / at_max.seconds);
      work_ratio.push_back(static_cast<double>(base.work) /
                           static_cast<double>(at_max.work));
      for (const int th : config.threads)
        vs_seq[th].push_back(
            seq.seconds / bench::find(records, dataset, algo, th).seconds);
    }
    std::vector<std::string> row = {
        algo, TextTable::fmt(bench::geomean(color_ratio))};
    for (const int th : config.threads)
      row.push_back(TextTable::fmt(bench::geomean(vs_seq[th])));
    row.push_back(TextTable::fmt(bench::geomean(vs_64d)));
    row.push_back(TextTable::fmt(bench::geomean(work_ratio)));
    t.add_row(std::move(row));
  }
  std::cout << t.to_string()
            << "\npaper (16 cores): t=16 speedups over sequential V-V "
               "6.11 (V-V-64D), 8.97 (V-N1),\n8.87 (V-N2), 13.20 "
               "(N1-N2); N1-N2 = 2.00x over V-V-64D with ~1.05x "
               "colors.\n";
  return 0;
}
