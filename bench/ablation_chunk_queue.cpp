// Ablation: OpenMP dynamic chunk size x conflict-queue strategy.
//
// Decomposes the paper's V-V -> V-V-64 -> V-V-64D progression (its
// "basic optimizations", worth 1.47x on 16 cores) into its two axes:
// scheduling granularity and shared-atomic vs thread-private lazy
// queues.
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const ForbiddenSetKind fset = bench::forbidden_set_from_args(args);
  const auto datasets =
      args.has("datasets")
          ? std::vector<std::string>{args.get_string("datasets", "")}
          : std::vector<std::string>{"copapers_s", "movielens_s"};
  const int threads = static_cast<int>(args.get_int("threads", 16));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const std::vector<int> chunks = args.get_int_list(
      "chunks", {1, 16, 64, 256, 1024});

  bench::SweepConfig banner;
  banner.forbidden_set = fset;
  banner.datasets = datasets;
  banner.threads = {threads};
  banner.reps = reps;
  bench::print_banner("Ablation: chunk size x queue policy (V-V family)",
                      banner);

  for (const auto& name : datasets) {
    const BipartiteGraph g = load_bipartite(name);
    std::cout << "--- " << name << " ---\n";
    TextTable t;
    t.set_header({"chunk", "shared ms", "lazy ms", "shared colors",
                  "lazy colors"});
    for (const int chunk : chunks) {
      std::vector<std::string> row = {TextTable::fmt(
          static_cast<std::int64_t>(chunk))};
      std::vector<std::string> colors;
      for (const auto queue : {QueuePolicy::kShared, QueuePolicy::kLazy}) {
        ColoringOptions opt;
        opt.name = "V-V-c" + std::to_string(chunk) +
                   (queue == QueuePolicy::kLazy ? "D" : "");
        opt.chunk_size = chunk;
        opt.queue = queue;
        opt.num_threads = threads;
        opt.forbidden_set = fset;
        const auto rec = bench::run_bgpc_once(g, name, opt, {}, reps, true);
        row.push_back(TextTable::fmt(rec.seconds * 1e3) +
                      (rec.valid ? "" : "!"));
        colors.push_back(TextTable::fmt_sep(rec.colors));
      }
      row.insert(row.end(), colors.begin(), colors.end());
      t.add_row(std::move(row));
    }
    std::cout << t.to_string() << "\n";
  }
  std::cout << "paper: chunk 64 + lazy queues ('64D') buys 1.47x over "
               "chunk-1 shared on 16\ncores; on one core the gap is "
               "scheduling overhead only.\n";
  return 0;
}
