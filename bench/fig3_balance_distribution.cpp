// Figure 3 reproduction: color-set cardinality distributions (sorted
// descending, log-scale y in the paper) for V-N2 and N1-N2 under U /
// B1 / B2 on the coPapersDBLP stand-in, 16 threads. Prints summary
// percentiles and writes the full curves to CSV.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "greedcolor/core/color_stats.hpp"
#include "greedcolor/core/verify.hpp"
#include "greedcolor/graph/datasets.hpp"
#include "greedcolor/util/argparse.hpp"
#include "greedcolor/util/csv.hpp"
#include "greedcolor/util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcol;
  const ArgParser args(argc, argv);
  const ForbiddenSetKind fset = bench::forbidden_set_from_args(args);
  const std::string dataset = args.get_string("dataset", "copapers_s");
  const int threads = static_cast<int>(args.get_int("threads", 16));
  const std::string csv_path =
      args.get_string("csv", "fig3_balance_distribution.csv");

  bench::SweepConfig banner_cfg;
  banner_cfg.forbidden_set = fset;
  banner_cfg.datasets = {dataset};
  banner_cfg.threads = {threads};
  bench::print_banner("Figure 3: color-set cardinality distributions",
                      banner_cfg);

  const BipartiteGraph g = load_bipartite(dataset);
  CsvWriter csv(csv_path);
  csv.write_row({"algorithm", "balance", "rank", "cardinality"});

  TextTable t;
  t.set_header({"run", "#sets", "max", "p50", "p90", "p99", "singletons",
                "stddev"},
               {TextTable::Align::kLeft});
  for (const std::string algo : {"V-N2", "N1-N2"}) {
    for (const auto policy :
         {BalancePolicy::kNone, BalancePolicy::kB1, BalancePolicy::kB2}) {
      ColoringOptions opt = bgpc_preset(algo);
      opt.num_threads = threads;
      opt.forbidden_set = fset;
      opt.balance = policy;
      const auto r = color_bgpc(g, opt);
      if (!is_valid_bgpc(g, r.colors))
        std::cerr << "WARNING: invalid coloring\n";
      const auto stats = color_class_stats(r.colors);
      const auto sorted = stats.sorted_cardinalities();
      auto pct = [&](double q) {
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(sorted.size() - 1));
        return sorted[idx];
      };
      const std::string label = algo + "-" + to_string(policy);
      t.add_row({label, TextTable::fmt_sep(stats.num_colors),
                 TextTable::fmt_sep(stats.max), TextTable::fmt_sep(pct(0.5)),
                 TextTable::fmt_sep(pct(0.9)), TextTable::fmt_sep(pct(0.99)),
                 TextTable::fmt_sep(stats.singleton_sets),
                 TextTable::fmt(stats.stddev)});
      for (std::size_t rank = 0; rank < sorted.size(); ++rank)
        csv.row(algo, to_string(policy), rank, sorted[rank]);
    }
    t.add_rule();
  }
  std::cout << t.to_string() << "\ncurves written to " << csv_path
            << "\npaper shape: U curves have a few huge sets and a long "
               "singleton tail; B1\nflattens moderately, B2 flattens "
               "aggressively (max set and stddev drop, a few\nmore "
               "sets appear).\n";
  return 0;
}
