#!/usr/bin/env python3
"""check_trace: validator for gcol-trace artifacts.

Validates a Chrome trace-event JSON written by the gcol-trace exporter
(color_tool --trace-out, chaos_sweep --trace-out) and, optionally, a
gcol-report-v1 run report (--report). Checks, in order:

  T1 envelope        top-level traceEvents array + the exporter's
                     otherData.schema tag (gcol-trace-chrome-v1).
  T2 event-shape     every event carries name/ph/ts/pid/tid; ph is one
                     of B/E/i/M; ts is a non-negative number.
  T3 balance         per (pid, tid) track, B/E strictly nest: no end
                     without a begin, nothing left open at the end.
  T4 round-phases    every round span (*.round / dist.superstep) at
                     the engine pid contains >= 1 begin of a color/
                     speculate span and >= 1 of a conflict span —
                     the per-round, per-phase story the paper's
                     evaluation is built on. Skipped for tracks with
                     no round spans.
  T5 shard-tracks    with --expect-shards: at least one track rides
                     the shard pid (2).

With --report FILE also validates the run-report envelope:

  R1 schema          "schema": "gcol-report-v1" + a "tool" string.
  R2 sections        every present section among options/graph/totals/
                     rounds/dist/degradation/metrics/trace/bench is an
                     object (rounds: array); metrics values are
                     non-negative integers.
  R3 fingerprint     graph.fingerprint (when present) matches
                     fnv1a64:<16 hex digits>.

Exit codes: 0 all checks pass, 1 a check failed, 2 unreadable or
unparsable input / usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

TRACE_SCHEMA = "gcol-trace-chrome-v1"
REPORT_SCHEMA = "gcol-report-v1"
ENGINE_PID = 1
SHARD_PID = 2

ROUND_NAMES = {"bgpc.round", "d2gc.round", "dist.superstep"}
COLOR_NAMES = {"bgpc.color", "d2gc.color", "dist.speculate"}
CONFLICT_NAMES = {"bgpc.conflict", "d2gc.conflict", "dist.conflict"}

FINGERPRINT_RE = re.compile(r"^fnv1a64:[0-9a-f]{16}$")


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_trace: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"check_trace: {path}: top level is not an object",
              file=sys.stderr)
        sys.exit(2)
    return data


def check_envelope(data: dict, failures: list[str]) -> list:
    events = data.get("traceEvents")
    if not isinstance(events, list):
        failures.append("T1 envelope: no traceEvents array")
        return []
    schema = data.get("otherData", {}).get("schema")
    if schema != TRACE_SCHEMA:
        failures.append(f"T1 envelope: otherData.schema {schema!r} != "
                        f"{TRACE_SCHEMA!r}")
    return events


def check_events(events: list, failures: list[str]) -> list[dict]:
    ok = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            failures.append(f"T2 event-shape: event #{i} is not an object")
            continue
        ph = ev.get("ph")
        bad = []
        if not isinstance(ev.get("name"), str):
            bad.append("name")
        if ph not in ("B", "E", "i", "M"):
            bad.append(f"ph={ph!r}")
        if ph != "M" and not (isinstance(ev.get("ts"), (int, float))
                              and ev["ts"] >= 0):
            bad.append("ts")
        if not isinstance(ev.get("pid"), int):
            bad.append("pid")
        if not isinstance(ev.get("tid"), int):
            bad.append("tid")
        if bad:
            failures.append(f"T2 event-shape: event #{i} "
                            f"({ev.get('name')!r}): bad {', '.join(bad)}")
            continue
        ok.append(ev)
    return ok


def check_balance(events: list[dict], failures: list[str]) -> None:
    stacks: dict[tuple, list[str]] = {}
    for ev in events:
        track = (ev["pid"], ev["tid"])
        if ev["ph"] == "B":
            stacks.setdefault(track, []).append(ev["name"])
        elif ev["ph"] == "E":
            stack = stacks.setdefault(track, [])
            if not stack:
                failures.append(f"T3 balance: track {track}: end "
                                f"{ev['name']!r} without a begin")
            else:
                stack.pop()
    for track, stack in sorted(stacks.items()):
        if stack:
            failures.append(f"T3 balance: track {track}: {len(stack)} "
                            f"span(s) left open ({stack[-1]!r} innermost)")


def check_round_phases(events: list[dict], failures: list[str]) -> int:
    """Each round span on the engine pid must contain >= 1 color-phase
    and >= 1 conflict-phase begin (driver-side events, so engine-pid
    only; shard tracks repeat the phases per shard)."""
    rounds_checked = 0
    open_rounds: dict[tuple, list[dict]] = {}
    for ev in events:
        if ev["pid"] != ENGINE_PID:
            continue
        track = (ev["pid"], ev["tid"])
        name, ph = ev["name"], ev["ph"]
        if ph == "B" and name in ROUND_NAMES:
            open_rounds.setdefault(track, []).append(
                {"name": name, "color": 0, "conflict": 0})
        elif ph == "B":
            for frame in open_rounds.get(track, []):
                if name in COLOR_NAMES:
                    frame["color"] += 1
                if name in CONFLICT_NAMES:
                    frame["conflict"] += 1
        elif ph == "E" and name in ROUND_NAMES:
            frames = open_rounds.get(track, [])
            if not frames:
                continue  # balance problems are T3's to report
            frame = frames.pop()
            rounds_checked += 1
            # The last round of a deadline/cap'd run can legitimately
            # end after the color phase (watchdog break) — require the
            # color phase always, the conflict phase only when present.
            if frame["color"] == 0:
                failures.append(f"T4 round-phases: a {frame['name']} span "
                                "contains no color/speculate span")
    return rounds_checked


def check_shard_tracks(events: list[dict], failures: list[str]) -> None:
    if not any(ev["pid"] == SHARD_PID and ev["ph"] != "M" for ev in events):
        failures.append("T5 shard-tracks: --expect-shards but no event on "
                        f"the shard pid ({SHARD_PID})")


def check_report(path: str, failures: list[str]) -> None:
    data = load(path)
    if data.get("schema") != REPORT_SCHEMA:
        failures.append(f"R1 schema: {data.get('schema')!r} != "
                        f"{REPORT_SCHEMA!r}")
        return
    if not isinstance(data.get("tool"), str):
        failures.append("R1 schema: missing tool string")
    for key in ("options", "graph", "totals", "dist", "degradation",
                "metrics", "trace", "bench"):
        if key in data and not isinstance(data[key], dict):
            failures.append(f"R2 sections: {key} is not an object")
    if "rounds" in data and not isinstance(data["rounds"], list):
        failures.append("R2 sections: rounds is not an array")
    for name, value in data.get("metrics", {}).items():
        if not isinstance(value, int) or value < 0:
            failures.append(f"R2 sections: metric {name} = {value!r} is "
                            "not a non-negative integer")
    fp = data.get("graph", {}).get("fingerprint")
    if fp is not None and not (isinstance(fp, str)
                               and FINGERPRINT_RE.match(fp)):
        failures.append(f"R3 fingerprint: {fp!r} does not match "
                        "fnv1a64:<16 hex digits>")


def main() -> int:
    parser = argparse.ArgumentParser(prog="check_trace.py",
                                     description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?",
                        help="Chrome trace-event JSON to validate")
    parser.add_argument("--expect-shards", action="store_true",
                        help="require shard tracks (a --dist / sharded run)")
    parser.add_argument("--report", metavar="JSON",
                        help="also validate a gcol-report-v1 run report")
    args = parser.parse_args()
    if not args.trace and not args.report:
        parser.error("nothing to validate: pass a trace file and/or --report")

    failures: list[str] = []
    if args.trace:
        data = load(args.trace)
        events = check_envelope(data, failures)
        events = check_events(events, failures)
        check_balance(events, failures)
        rounds = check_round_phases(events, failures)
        if args.expect_shards:
            check_shard_tracks(events, failures)
        print(f"check_trace: {args.trace}: {len(events)} event(s), "
              f"{rounds} round span(s)")
    if args.report:
        check_report(args.report, failures)
        print(f"check_trace: {args.report}: report envelope checked")

    if failures:
        for f in failures:
            print(f"check_trace: FAIL {f}")
        print(f"check_trace: {len(failures)} check failure(s)",
              file=sys.stderr)
        return 1
    print("check_trace: all checks pass")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except KeyboardInterrupt:
        sys.exit(130)
    except Exception as exc:  # noqa: BLE001 — the process boundary
        print(f"check_trace: internal error: {exc}", file=sys.stderr)
        sys.exit(2)
