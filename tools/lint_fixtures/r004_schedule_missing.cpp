// Lint fixture: must trigger exactly one R004 (schedule-missing)
// violation. The chunk size is part of the algorithm (the paper's
// "-64" variants); an omp for may not inherit the implementation
// default.
void fixture_r004(double* out, const double* in, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) out[i] = in[i] * 2.0;
}
