// Lint fixture (regex-lint blind spot): must pass every rule. The
// `#pragma omp critical` below lives inside a raw string literal — it
// is documentation text, not a directive. The old regex lint's string
// stripper bailed out at the first newline inside the raw string and
// then read the pragma as real code, reporting a false R001.
const char* kKernelDoc = R"(
Usage note: never add
#pragma omp critical
to a kernel; counters merge through CounterSlots instead.
)";

int fixture_rawstring_doc() {
  return kKernelDoc[0] == '\n' ? 1 : 0;
}
