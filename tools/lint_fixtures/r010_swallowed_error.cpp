// Lint fixture: must trigger exactly one R010 (swallowed-error)
// finding. ErrorCode::kShardSkew is constructed but no to_string /
// is_input_error / exit-code mapping anywhere handles it — the error
// kind would be silently swallowed at the 4xx-vs-5xx boundary.
enum class ErrorCode { kBadDegree, kShardSkew };

struct Error {
  Error(ErrorCode c, const char* what);
};

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kBadDegree:
      return "bad-degree";
  }
  return "unknown";  // kShardSkew falls through anonymously
}

void fixture_r010(int skew) {
  if (skew > 3) throw Error(ErrorCode::kShardSkew, "shard skew too high");
}
