// Lint fixture: the R015-clean counterpart — the hot loop calls a
// helper whose effect summary is empty (pure arithmetic, no I/O, no
// allocation, no unknown callees), so the call is free to inline and
// free of serialization. No finding.
int saturate(int v, int lo, int hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

void fixture_clean_r015(const int* vals, int* out, int n) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    out[i] = saturate(vals[i], 0, 255);
  }
}
