// Lint fixture: must trigger exactly one R003 (kernel-alloc) violation.
// A bounds-checked .at() inside the body of an omp for — one branch per
// adjacency entry in the hottest loop of the program.
#include <cstddef>
#include <vector>

int fixture_r003(const std::vector<int>& deg, int n) {
  int sum = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : sum)
  for (int v = 0; v < n; ++v) {
    sum += deg.at(static_cast<std::size_t>(v));
  }
  return sum;
}
