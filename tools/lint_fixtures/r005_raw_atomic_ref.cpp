// Lint fixture: R005 — a raw std::atomic_ref on the shared color array
// outside the kernels_common.hpp accessor seam. The access itself is
// race-free, which is exactly why the rule exists: it silently bypasses
// every instrument hooked on load_color/store_color (audit ledgers,
// gcol-mc schedule points) while looking correct.
#include <atomic>

void fixture_r005(int* c, int n) {
#pragma omp parallel for schedule(dynamic, 32)
  for (int v = 0; v < n; ++v) {
    std::atomic_ref<int>(c[v]).store(1, std::memory_order_relaxed);
  }
}
