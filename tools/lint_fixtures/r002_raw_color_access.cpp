// Lint fixture: must trigger exactly one R002 (raw-color-access)
// violation. A plain write to the shared color array inside a parallel
// region — the unsanctioned race the accessors exist to prevent.
void fixture_r002(int* c, int n) {
#pragma omp parallel
  {
    for (int v = 0; v < n; ++v) c[v] = v % 7;
  }
}
