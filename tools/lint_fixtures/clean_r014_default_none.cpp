// Lint fixture: the R014-clean counterpart — same loop as
// r014_default_sharing.cpp with the data-sharing contract fully
// spelled: default(none) forces every capture to be listed, and every
// capture is. No finding.
int fixture_clean_r014(const int* vals, int n) {
  int acc = 0;
#pragma omp parallel for schedule(static) default(none) \
    reduction(+ : acc) firstprivate(vals, n)
  for (int i = 0; i < n; ++i) {
    if (vals[i] > 0) acc += 1;
  }
  return acc;
}
