// Lint fixture: the R010-clean counterpart — every constructed
// ErrorCode enumerator is reachable from the to_string mapping, so the
// error-propagation rule finds nothing.
enum class ErrorCode { kBadDegree, kShardSkew };

struct Error {
  Error(ErrorCode c, const char* what);
};

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kBadDegree:
      return "bad-degree";
    case ErrorCode::kShardSkew:
      return "shard-skew";
  }
  return "unknown";
}

void fixture_clean_r010(int skew) {
  if (skew > 3) throw Error(ErrorCode::kShardSkew, "shard skew too high");
}
