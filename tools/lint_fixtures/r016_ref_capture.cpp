// Lint fixture: must trigger exactly one R016 (ref-capture-escape)
// finding. The lambda's capture list grabs the shared `shared_flags`
// parameter by reference inside the parallel loop — the closure
// smuggles shared state past the data-sharing clauses, where neither
// the compiler's default(none) check nor a clause audit can see it.
void fixture_r016(const int* shared_flags, int* out, int n) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    auto probe = [&shared_flags](int v) {  // R016: &-capture of shared state
      return shared_flags[v % 8];
    };
    out[i] = probe(i);
  }
}
