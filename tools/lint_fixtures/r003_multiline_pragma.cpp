// Lint fixture (regex-lint blind spot): must trigger exactly one R003
// (kernel-alloc) finding. The omp pragma spans two physical lines with
// a backslash continuation, putting the `for` on the continuation
// line. The old regex lint tracked regions per physical line, never
// saw the `for`, and missed the .at() in the hot loop body entirely.
#include <cstddef>
#include <vector>

int fixture_r003_multiline(const std::vector<int>& deg, int n) {
  int sum = 0;
#pragma omp parallel \
    for schedule(dynamic, 64) reduction(+ : sum)
  for (int v = 0; v < n; ++v) {
    sum += deg.at(static_cast<std::size_t>(v));
  }
  return sum;
}
