// Lint fixture: a well-behaved kernel-shaped function that must pass
// every rule — explicit schedule, color access only through a relaxed
// atomic_ref, no allocation in the loop body, no critical sections.
#include <atomic>

void fixture_clean(int* c, int n) {
#pragma omp parallel for schedule(dynamic, 32)
  for (int v = 0; v < n; ++v) {
    std::atomic_ref<int>(c[v]).store(v % 3, std::memory_order_relaxed);
  }
}
