// Lint fixture: a well-behaved kernel-shaped function that must pass
// every rule — explicit schedule, color access only through the
// kernels_common.hpp accessor seam (no raw atomic_ref: R005), no
// allocation in the loop body, no critical sections.
void store_color(int* c, int v, int x);  // the accessor seam

void fixture_clean(int* c, int n) {
#pragma omp parallel for schedule(dynamic, 32)
  for (int v = 0; v < n; ++v) {
    store_color(c, v, v % 3);
  }
}
