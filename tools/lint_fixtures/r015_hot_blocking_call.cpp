// Lint fixture: must trigger exactly one R015 (hot-call-effects)
// finding. The omp-for body calls log_progress(), which looks cheap at
// the call site — but its summary carries blocks-I/O (fprintf), so
// every iteration can serialize on the stdio lock. The finding lands
// on the hot call site, where the decision to call is made.
#include <cstdio>

void log_progress(int i) {
  std::fprintf(stderr, "at %d\n", i);  // the effect R015 propagates up
}

void fixture_r015(const int* vals, int* out, int n) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    out[i] = vals[i] * 2;
    if (vals[i] < 0) log_progress(i);  // R015: blocking callee in hot loop
  }
}
