// Lint fixture: must trigger exactly one R009 (interproc-alloc) finding.
// The omp-for body calls append_result(), whose push_back allocates —
// one call level deep, which the regex lint fundamentally could not
// see: it only matched allocation spellings directly inside the loop.
#include <vector>

void append_result(std::vector<int>& out, int v) {
  out.push_back(v);  // reachable allocation: R009
}

void fixture_r009(std::vector<int>& out, int n) {
#pragma omp parallel for schedule(static, 64)
  for (int v = 0; v < n; ++v) {
    if ((v & 1) == 0) append_result(out, v);
  }
}
