// Lint fixture: the R011-clean counterpart — every control-flow path
// (loop iteration, early break, fallthrough) closes exactly the span it
// opened, matching the round-loop instrumentation in src/core/bgpc.cpp.
#define GCOL_TRACE_BEGIN(tr, name) (void)0
#define GCOL_TRACE_END(tr, name) (void)0

void fixture_clean_r011(int rounds) {
  for (int r = 0; r < rounds; ++r) {
    GCOL_TRACE_BEGIN(tr, "round");
    if (r + 1 == rounds) {
      GCOL_TRACE_END(tr, "round");
      break;
    }
    GCOL_TRACE_END(tr, "round");
  }
}
