// Lint fixture: must trigger exactly one R001 (omp-critical) violation.
// A critical section used for a counter merge — the exact pattern
// CounterSlots exists to avoid.
#include <cstdint>

void fixture_r001(std::uint64_t* total, int n) {
  std::uint64_t shared_sum = 0;
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    std::uint64_t local = static_cast<std::uint64_t>(i);
#pragma omp critical
    shared_sum += local;
  }
  *total = shared_sum;
}
