// Lint fixture: must trigger exactly one R001 (omp-critical) finding.
// The raw string above the kernel is a decoy the tokenizer must step
// over cleanly; the real `#pragma omp critical` below it is the one
// and only violation.
const char* kNote = R"(histogram merge notes)";

void fixture_r001_decoy(int* hist, int n) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
#pragma omp critical
    { hist[0] += i; }
  }
}
