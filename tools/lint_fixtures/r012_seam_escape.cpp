// Lint fixture: must trigger exactly one R012 (seam-escape) finding.
// scatter_color() touches the color array raw, and it is reachable
// from the parallel region one call level down — outside the
// kernels_common.hpp accessor seam, so the audit ledgers and gcol-mc
// schedule points never see the access.
void scatter_color(int* c, int v, int x) {
  c[v] = x;  // raw color write escaping the accessor seam: R012
}

void fixture_r012(int* c, int n) {
#pragma omp parallel for schedule(static, 32)
  for (int v = 0; v < n; ++v) {
    scatter_color(c, v, v % 5);
  }
}
