// Lint fixture: must trigger exactly one R013 (unblessed-shared-write)
// finding. `total` is a reference parameter — every thread in the
// parallel loop stores through it with no reduction, atomic, critical,
// or seam justification: the textbook lost-update race.
void fixture_r013(int& total, const int* vals, int n) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    if (vals[i] > 0) total += vals[i];  // R013: racy accumulate
  }
}
