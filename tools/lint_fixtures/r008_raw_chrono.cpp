// R008 fixture: raw std::chrono timing in an engine layer. The
// sanctioned forms — WallTimer for result totals, GCOL_TRACE_SPAN for
// phase timing — keep the measurement visible to the trace timeline;
// an ad-hoc steady_clock read here is invisible to both. The word
// "synchronous" in this comment must NOT match (word-bounded regex),
// and neither must the chrono mention in this sentence.
#include <chrono>

double elapsed_seconds_raw() {
  const auto t0 = std::chrono::steady_clock::now();  // the one violation
  return static_cast<double>(t0.time_since_epoch().count());
}
