// Lint fixture: R007 — a kernel driver constructing its own forbidden
// set instead of binding a reference to the ThreadWorkspace scratch
// through the ForbiddenSet policy seam (kernels_common.hpp). The code
// works, which is why the rule exists: it silently pins one
// representation, so the adaptive engine's per-phase choice (and the
// scratch reuse across rounds) never applies to this loop.
void fixture_r007(int n) {
  gcol::MarkerSet forbidden(static_cast<unsigned long>(n));
  forbidden.insert(3);
}
