// Lint fixture: the R013-clean counterpart — the same accumulate
// shape as r013_shared_write.cpp, but the pragma carries a
// reduction(+:) clause, so each thread owns a private copy and the
// combine is the runtime's job. No finding.
int fixture_clean_r013(const int* vals, int n) {
  int total = 0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (int i = 0; i < n; ++i) {
    if (vals[i] > 0) total += vals[i];  // blessed: reduction private copy
  }
  return total;
}
