// Lint fixture: must trigger exactly one R014 (implicit-data-sharing)
// finding. The pragma names the reduction but says nothing about
// `vals` or `n` — they ride in as implicitly shared, invisible to
// review. The write itself is blessed (reduction), so only R014 fires.
int fixture_r014(const int* vals, int n) {
  int acc = 0;
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (int i = 0; i < n; ++i) {
    if (vals[i] > 0) acc += 1;  // R014: vals, n implicitly shared
  }
  return acc;
}
