// Lint fixture: must trigger exactly one R013 finding. Models the
// FaultPlan stale-ghost-write fault from the dist layer: a shard
// writes its *partner's* slot in the shared color table directly
// instead of sending a batch — exactly the cross-owner store the
// superstep protocol exists to prevent. The subscript is not the
// iteration index, so ownership cannot justify it.
void fixture_r013_faultplan(int* shard_colors, const int* stale, int n) {
#pragma omp parallel for schedule(static)
  for (int s = 0; s < n; ++s) {
    const int partner = (s + 1) % n;
    shard_colors[partner] = stale[s];  // R013: stale write to a peer slot
  }
}
