// Lint fixture: the R016-clean counterpart — the lambda still captures
// by reference, but everything it touches is declared inside the
// region (thread-private by construction), so nothing shared escapes
// into the closure. No finding.
void fixture_clean_r016(int* out, const int* vals, int n) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    int acc = 0;
    auto add = [&acc](int v) { acc += v; };  // region-local: thread-owned
    add(vals[i]);
    out[i] = acc;
  }
}
