// Lint fixture: must trigger exactly one R013 finding. Decoy: the
// pragma spells a full default(none) data-sharing contract — which
// satisfies R014 — but an explicit shared() clause only *names* the
// sharing, it does not make the store safe. R013 must see through it.
void fixture_r013_decoy(int& total, const int* vals, int n) {
#pragma omp parallel for schedule(static) default(none) \
    shared(total) firstprivate(vals, n)
  for (int i = 0; i < n; ++i) {
    if (vals[i] > 0) total += vals[i];  // R013: shared() is not a blessing
  }
}
