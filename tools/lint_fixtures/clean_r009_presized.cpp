// Lint fixture: the R009-clean counterpart — the helper called from the
// omp-for body writes into a driver-pre-sized buffer and never touches
// the heap, so interprocedural reachability finds nothing to flag.
void write_result(int* out, int v) {
  out[v] = v;  // pre-sized by the driver; no allocation anywhere
}

void fixture_clean_r009(int* out, int n) {
#pragma omp parallel for schedule(static, 64)
  for (int v = 0; v < n; ++v) {
    write_result(out, v);
  }
}
