// Lint fixture: R006 — a Transport implementation instantiated outside
// src/dist. The type name alone is the violation: the boundary-exchange
// layer (Transport and its mailbox/loopback/lossy implementations) is
// private to the sharded runtime, and everything else must go through
// DistOptions::transport (TransportKind), which keeps the fault
// plumbing, retry accounting, and versioned delivery in the loop.
// TransportKind itself is fine — the selector below must not fire.
namespace gcol {
enum class TransportKind { kMailbox, kSocket };
}

void fixture_r006() {
  gcol::TransportKind kind = gcol::TransportKind::kMailbox;
  (void)kind;
  void* mbox = nullptr;  // stands in for: new gcol::MailboxTransport()
  (void)mbox;
  gcol::MailboxTransport* leaked = nullptr;
  (void)leaked;
}
