// Lint fixture (regex-lint blind spot): must trigger exactly one R002
// (raw-color-access) finding. The raw color write hides in the `else`
// branch of a braceless omp-for body; the old regex lint popped its
// single-statement scope at the first `;` and never saw the else.
void store_color(int* c, int v, int x);  // the accessor seam

void fixture_r002_braceless(int* c, int n) {
#pragma omp parallel for schedule(static)
  for (int v = 0; v < n; ++v)
    if (v % 3 == 0) store_color(c, v, 1);
    else c[v] = 2;  // raw access in the region: R002
}
