// Lint fixture: must trigger exactly one R013 finding — two call
// levels below the region. The loop body calls tally(), tally() calls
// bump(), and bump() stores through the shared reference. No single
// function shows both the pragma and the store, so only the
// interprocedural effect propagation can see the race.
void bump(int& slot) {
  slot += 1;  // the shared store, two frames from the pragma
}

void tally(int& slot) {
  bump(slot);
}

void fixture_r013_chain(int& total, int n) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    tally(total);
  }
}
