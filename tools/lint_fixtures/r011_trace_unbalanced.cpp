// Lint fixture: must trigger exactly one R011 (trace-unbalanced)
// finding. The early return leaves the "color.phase" span open on one
// control-flow path; the exporter's runtime orphan handling is a
// diagnostic, not a license to leak spans.
#define GCOL_TRACE_BEGIN(tr, name) (void)0
#define GCOL_TRACE_END(tr, name) (void)0

int fixture_r011(int x) {
  GCOL_TRACE_BEGIN(tr, "color.phase");
  if (x < 0) return -1;  // span "color.phase" still open here: R011
  GCOL_TRACE_END(tr, "color.phase");
  return x;
}
