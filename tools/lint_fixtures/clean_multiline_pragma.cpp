// Lint fixture (regex-lint blind spot, clean side): must pass every
// rule. The schedule(...) clause lives on the continuation line of a
// multi-line pragma; a scanner that tokenizes physical lines would
// report a false R004 here.
void store_color(int* c, int v, int x);  // the accessor seam

void fixture_clean_multiline(int* c, int* buf, int n) {
#pragma omp parallel for \
    schedule(static, 64)
  for (int v = 0; v < n; ++v) {
    buf[v] = v;
    store_color(c, v, v % 3);
  }
}
